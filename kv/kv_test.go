package kv_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro"
	"repro/kv"
)

// newCluster builds a small replicated single-group deployment.
func newCluster(t testing.TB, cfg repro.Config) repro.DB {
	t.Helper()
	if cfg.Version == 0 {
		cfg.Version = repro.V3InlineLog
	}
	if cfg.Backup == 0 {
		cfg.Backup = repro.ActiveBackup
	}
	if cfg.DBSize == 0 {
		cfg.DBSize = 1 << 20
	}
	c, err := repro.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newSharded(t testing.TB, shards int, cfg repro.Config) repro.DB {
	t.Helper()
	if cfg.Version == 0 {
		cfg.Version = repro.V3InlineLog
	}
	if cfg.Backup == 0 {
		cfg.Backup = repro.ActiveBackup
	}
	if cfg.DBSize == 0 {
		cfg.DBSize = 1 << 20
	}
	sc, err := repro.NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// deployments returns the facade matrix the kv layer must behave
// identically on.
func deployments(t *testing.T) map[string]repro.DB {
	return map[string]repro.DB{
		"cluster":  newCluster(t, repro.Config{}),
		"sharded1": newSharded(t, 1, repro.Config{}),
		"sharded4": newSharded(t, 4, repro.Config{}),
	}
}

func TestPutGetDelete(t *testing.T) {
	for name, db := range deployments(t) {
		t.Run(name, func(t *testing.T) {
			s, err := kv.Open(db)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get([]byte("missing")); !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
			}
			if err := s.Put([]byte("alice"), []byte("100")); err != nil {
				t.Fatal(err)
			}
			v, err := s.Get([]byte("alice"))
			if err != nil || string(v) != "100" {
				t.Fatalf("Get(alice) = %q, %v", v, err)
			}
			// Overwrite.
			if err := s.Put([]byte("alice"), []byte("250")); err != nil {
				t.Fatal(err)
			}
			if v, _ := s.Get([]byte("alice")); string(v) != "250" {
				t.Fatalf("after overwrite Get = %q", v)
			}
			if s.Len() != 1 {
				t.Fatalf("Len = %d, want 1", s.Len())
			}
			if err := s.Delete([]byte("alice")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get([]byte("alice")); !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
			}
			if err := s.Delete([]byte("alice")); !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("double Delete = %v, want ErrNotFound", err)
			}
			if s.Len() != 0 {
				t.Fatalf("Len after delete = %d", s.Len())
			}
		})
	}
}

func TestValidation(t *testing.T) {
	s, err := kv.Open(newCluster(t, repro.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(nil, []byte("v")); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("empty key Put = %v", err)
	}
	if _, err := s.Get(nil); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("empty key Get = %v", err)
	}
	big := make([]byte, s.SlotPayload()+1)
	if err := s.Put([]byte("k"), big[:len(big)-1]); !errors.Is(err, kv.ErrTooLarge) {
		t.Fatalf("oversized Put (key+val) = %v", err)
	}
	// Exactly at the payload bound fits.
	if err := s.Put(big[:8], big[8:s.SlotPayload()]); err != nil {
		t.Fatalf("payload-sized Put = %v", err)
	}
}

func TestManyKeysAndReopen(t *testing.T) {
	db := newCluster(t, repro.Config{DBSize: 1 << 20})
	s, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	key := func(i int) []byte { return []byte(fmt.Sprintf("user%06d", i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%d", i*7)) }
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// Delete a third, overwrite a third.
	for i := 0; i < n; i += 3 {
		if err := s.Delete(key(i)); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	for i := 1; i < n; i += 3 {
		if err := s.Put(key(i), []byte("updated")); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}

	verify := func(s *kv.Store) {
		t.Helper()
		for i := 0; i < n; i++ {
			v, err := s.Get(key(i))
			switch {
			case i%3 == 0:
				if !errors.Is(err, kv.ErrNotFound) {
					t.Fatalf("deleted key %d: got %q, %v", i, v, err)
				}
			case i%3 == 1:
				if err != nil || string(v) != "updated" {
					t.Fatalf("overwritten key %d: got %q, %v", i, v, err)
				}
			default:
				if err != nil || !bytes.Equal(v, val(i)) {
					t.Fatalf("key %d: got %q, %v", i, v, err)
				}
			}
		}
	}
	verify(s)
	want := s.Len()

	// Reopen over the same bytes: the index is recovered, not recreated.
	s2, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != want {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), want)
	}
	verify(s2)
}

func TestTombstoneReuse(t *testing.T) {
	s, err := kv.Open(newCluster(t, repro.Config{DBSize: 256 << 10}))
	if err != nil {
		t.Fatal(err)
	}
	// Churn far more operations than the store has slots: deletes must
	// free slots and inserts must reuse tombstoned buckets.
	slots := s.Slots()
	for i := 0; i < 4*slots; i++ {
		k := []byte(fmt.Sprintf("churn%05d", i))
		if err := s.Put(k, []byte("x")); err != nil {
			t.Fatalf("Put %d (slots=%d): %v", i, slots, err)
		}
		if err := s.Delete(k); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len after churn = %d", s.Len())
	}
}

func TestFull(t *testing.T) {
	s, err := kv.Open(newCluster(t, repro.Config{DBSize: 64 << 10}))
	if err != nil {
		t.Fatal(err)
	}
	var filled int
	for i := 0; ; i++ {
		err := s.Put([]byte(fmt.Sprintf("fill%06d", i)), bytes.Repeat([]byte("v"), 100))
		if errors.Is(err, kv.ErrFull) {
			filled = i
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i > 1<<20 {
			t.Fatal("store never filled")
		}
	}
	if filled != s.Slots() {
		t.Fatalf("filled %d keys, slot capacity %d", filled, s.Slots())
	}
	// Deleting one key makes room for exactly one more.
	if err := s.Delete([]byte("fill000000")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("replacement"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("overflow"), []byte("v")); !errors.Is(err, kv.ErrFull) {
		t.Fatalf("Put past capacity = %v", err)
	}
	// Updates are out of place, so at exact slot capacity even an
	// overwrite of an existing key needs a free slot — the documented
	// ErrFull contract.
	if err := s.Put([]byte("replacement"), []byte("w")); !errors.Is(err, kv.ErrFull) {
		t.Fatalf("overwrite at capacity = %v", err)
	}
}

func TestScan(t *testing.T) {
	s, err := kv.Open(newCluster(t, repro.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 64; i++ {
		k, v := fmt.Sprintf("scan%03d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	// A full scan visits every live entry exactly once.
	got := map[string]string{}
	n, err := s.Scan(nil, 1<<30, func(k, v []byte) error {
		got[string(k)] = string(v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("scan visited %d entries (%d distinct), want %d", n, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("scan[%s] = %q, want %q", k, got[k], v)
		}
	}
	// A bounded scan from a seed key visits exactly limit entries.
	n, err = s.Scan([]byte("scan010"), 5, func(k, v []byte) error { return nil })
	if err != nil || n != 5 {
		t.Fatalf("bounded scan = %d, %v", n, err)
	}
	// A callback error stops the scan.
	stop := errors.New("stop")
	n, err = s.Scan(nil, 1<<30, func(k, v []byte) error { return stop })
	if !errors.Is(err, stop) || n != 1 {
		t.Fatalf("aborted scan = %d, %v", n, err)
	}
}

func TestTxn(t *testing.T) {
	for name, db := range deployments(t) {
		t.Run(name, func(t *testing.T) {
			s, err := kv.Open(db)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put([]byte("a"), []byte("1")); err != nil {
				t.Fatal(err)
			}

			// Buffered reads-your-writes, delete shadowing, abort.
			txn, err := s.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := txn.Put([]byte("b"), []byte("2")); err != nil {
				t.Fatal(err)
			}
			if v, err := txn.Get([]byte("b")); err != nil || string(v) != "2" {
				t.Fatalf("txn read-your-write = %q, %v", v, err)
			}
			if err := txn.Delete([]byte("a")); err != nil {
				t.Fatal(err)
			}
			if _, err := txn.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("txn shadowed delete Get = %v", err)
			}
			if err := txn.Abort(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get([]byte("b")); !errors.Is(err, kv.ErrNotFound) {
				t.Fatal("aborted txn leaked a write")
			}
			if v, _ := s.Get([]byte("a")); string(v) != "1" {
				t.Fatal("aborted txn leaked a delete")
			}

			// Commit applies everything: puts, an overwrite, a delete,
			// and a delete of an absent key (no-op).
			txn, err = s.Begin()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				if err := txn.Put([]byte(fmt.Sprintf("t%02d", i)), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			if err := txn.Put([]byte("a"), []byte("overwritten")); err != nil {
				t.Fatal(err)
			}
			if err := txn.Delete([]byte("absent")); err != nil {
				t.Fatal(err)
			}
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
			if v, _ := s.Get([]byte("a")); string(v) != "overwritten" {
				t.Fatalf("txn overwrite lost: %q", v)
			}
			for i := 0; i < 20; i++ {
				if v, err := s.Get([]byte(fmt.Sprintf("t%02d", i))); err != nil || string(v) != "v" {
					t.Fatalf("txn put t%02d = %q, %v", i, v, err)
				}
			}
			if err := txn.Commit(); !errors.Is(err, kv.ErrTxnDone) {
				t.Fatalf("double commit = %v", err)
			}

			// Put-then-delete of the same key inside one txn: latest wins.
			txn, _ = s.Begin()
			txn.Put([]byte("ephemeral"), []byte("x"))
			txn.Delete([]byte("ephemeral"))
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get([]byte("ephemeral")); !errors.Is(err, kv.ErrNotFound) {
				t.Fatal("put-then-delete left the key behind")
			}
		})
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	db := newCluster(t, repro.Config{})
	if err := db.Load(0, []byte("this is not a kv store header, clearly")); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Open(db); !errors.Is(err, kv.ErrBadFormat) {
		t.Fatalf("Open over garbage = %v, want ErrBadFormat", err)
	}
}

func TestTooSmall(t *testing.T) {
	// 8 KB cannot hold the minimum geometry at a huge slot size.
	db := newCluster(t, repro.Config{DBSize: 8 << 10})
	if _, err := kv.OpenWith(db, kv.Options{SlotSize: 8 << 10}); !errors.Is(err, kv.ErrTooSmall) {
		t.Fatalf("Open on tiny db = %v, want ErrTooSmall", err)
	}
}

// TestBrokenAfterObservedCrash: once any operation sees the deployment
// crashed, the Store refuses further work with ErrBroken — its free list
// may be ahead of the survivor's bytes — until a fresh Open.
func TestBrokenAfterObservedCrash(t *testing.T) {
	db := newCluster(t, repro.Config{Backups: 1})
	s, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	db.Settle() // close the 1-safe window so the crash loses nothing
	admin := db.(repro.Admin)
	if err := admin.CrashPrimary(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, repro.ErrCrashed) {
		t.Fatalf("Get on crashed deployment = %v", err)
	}
	if err := admin.Failover(); err != nil {
		t.Fatal(err)
	}
	// The old handle stays broken even though the deployment serves
	// again; a fresh Open recovers.
	if err := s.Put([]byte("k2"), []byte("v2")); !errors.Is(err, kv.ErrBroken) {
		t.Fatalf("Put on broken store = %v", err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, kv.ErrBroken) {
		t.Fatalf("Get on broken store = %v", err)
	}
	s2, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := s2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("reopened Get = %q, %v", v, err)
	}
}

// TestCrashFailoverRecovery is the deterministic core of the committed-
// prefix guarantee at key level: acked puts at quorum survive a primary
// crash, failover, and re-Open.
func TestCrashFailoverRecovery(t *testing.T) {
	for name, mk := range map[string]func(t *testing.T) repro.DB{
		"cluster": func(t *testing.T) repro.DB { return newCluster(t, repro.Config{Backups: 2, Safety: repro.QuorumSafe}) },
		"sharded4": func(t *testing.T) repro.DB {
			return newSharded(t, 4, repro.Config{Backups: 2, Safety: repro.QuorumSafe})
		},
	} {
		t.Run(name, func(t *testing.T) {
			db := mk(t)
			s, err := kv.Open(db)
			if err != nil {
				t.Fatal(err)
			}
			const n = 200
			for i := 0; i < n; i++ {
				if err := s.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatalf("Put %d: %v", i, err)
				}
			}
			admin := db.(repro.Admin)
			for shard := 0; shard < db.Shards(); shard++ {
				if err := admin.CrashPrimary(shard); err != nil {
					t.Fatal(err)
				}
				if err := admin.Failover(shard); err != nil {
					t.Fatal(err)
				}
			}
			s2, err := kv.Open(db)
			if err != nil {
				t.Fatal(err)
			}
			if s2.Len() != n {
				t.Fatalf("recovered Len = %d, want %d", s2.Len(), n)
			}
			for i := 0; i < n; i++ {
				v, err := s2.Get([]byte(fmt.Sprintf("k%05d", i)))
				if err != nil || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("recovered Get k%05d = %q, %v", i, v, err)
				}
			}
		})
	}
}
