// Replica-served lookups: GetAt and ScanAt are Get and Scan with the
// charged reads routed through the deployment's replica read views
// (repro.ReadOpts), so backups serve the read traffic the primary would
// otherwise absorb.
//
// One operation, one view: the first routed read picks a serving replica
// (or the primary) per the consistency mode, and every subsequent read of
// the operation is pinned to that same replica — the probe chain and the
// value bytes come from a single consistent snapshot, never a mix of
// views. A backup's copy is transaction-consistent at every applied
// commit (active scheme), and its applied sequence only advances during
// the operation, so the pinned walk observes a monotone view that already
// satisfies the mode's floor:
//
//   - ReadYourWrites with the session's token (repro.DB.Token captured
//     after the session's last commit) observes every write the session
//     made — including the probe chain the write went through.
//   - ReadBounded may miss recent writes, but never more than the
//     advertised bound (in commit sequences, per shard).
//   - ReadQuorum's first read inspects a majority of the replica group,
//     so the pinned view has seen every acknowledged commit.
//
// If the pinned replica loses eligibility mid-operation (crashed, paused,
// deposed by a membership change, or — on another shard of a sharded
// deployment — unable to satisfy the mode's floor there), the operation
// observes repro.ErrReplicaUnavailable and transparently restarts on the
// primary, which can always serve.
package kv

import (
	"errors"

	"repro"
)

// view routes one operation's charged reads per the caller's ReadOpts,
// pinning the replica the first routed read chose. It is recycled under
// the Store mutex (Store.vw/vwRead), so GetAt/ScanAt stay allocation-free.
type view struct {
	s    *Store
	opts repro.ReadOpts
	res  repro.ReadResult
}

// begin arms the recycled view for one operation.
func (v *view) begin(opts repro.ReadOpts) {
	v.opts = opts
	v.res = repro.ReadResult{}
}

// read is the operation's readFn.
func (v *view) read(off int, dst []byte) error {
	if v.opts.Mode == repro.ReadPrimary && v.opts.Replica == 0 {
		return v.s.db.Read(off, dst)
	}
	res, err := v.s.db.ReadAt(off, dst, v.opts)
	if err != nil {
		return err
	}
	if v.opts.Replica == 0 {
		if res.Replica > 0 {
			// Pin the chosen replica: the rest of the operation reads the
			// same view (re-validated per shard against the mode's floor).
			v.opts.Replica = res.Replica
		} else {
			// The primary served; keep the whole operation there.
			v.opts.Mode = repro.ReadPrimary
		}
	}
	v.res = res
	return nil
}

// GetAt returns the value stored under key, served under opts' consistency
// discipline (see repro.ReadOpts), plus where the lookup was served. The
// returned slice is freshly allocated. The zero ReadOpts is exactly Get.
func (s *Store) GetAt(key []byte, opts repro.ReadOpts) ([]byte, repro.ReadResult, error) {
	val, res, err := s.GetAppendAt(key, nil, opts)
	if err != nil {
		return nil, res, err
	}
	if val == nil {
		val = []byte{}
	}
	return val, res, nil
}

// GetAppendAt is the allocation-free GetAt: it appends the value to dst
// and returns the extended slice (unextended on error), the serving
// replica, and any error. A lookup whose pinned replica cannot serve
// restarts on the primary; callers never see ErrReplicaUnavailable.
func (s *Store) GetAppendAt(key, dst []byte, opts repro.ReadOpts) ([]byte, repro.ReadResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(key); err != nil {
		return dst, repro.ReadResult{}, err
	}
	if opts.Mode == repro.ReadPrimary && opts.Replica == 0 {
		out, err := s.getAppend(s.readPrimary, key, dst)
		return out, repro.ReadResult{}, err
	}
	s.vw.begin(opts)
	out, err := s.getAppend(s.vwRead, key, dst)
	if err != nil && errors.Is(err, repro.ErrReplicaUnavailable) {
		out, err = s.getAppend(s.readPrimary, key, dst)
		return out, repro.ReadResult{}, err
	}
	return out, s.vw.res, err
}

// ScanAt is Scan served under opts' consistency discipline: the staged
// snapshot comes from one replica view (or the primary), with the same
// restart-on-primary fallback as GetAt. fn runs after the store lock is
// released, on slices reused between calls.
func (s *Store) ScanAt(start []byte, limit int, opts repro.ReadOpts, fn func(key, value []byte) error) (int, repro.ReadResult, error) {
	s.mu.Lock()
	var (
		flat   []byte
		bounds []scanEntry
		res    repro.ReadResult
		err    error
	)
	if opts.Mode == repro.ReadPrimary && opts.Replica == 0 {
		flat, bounds, err = s.stageScan(s.readPrimary, start, limit)
	} else {
		s.vw.begin(opts)
		flat, bounds, err = s.stageScan(s.vwRead, start, limit)
		if err != nil && errors.Is(err, repro.ErrReplicaUnavailable) {
			flat, bounds, err = s.stageScan(s.readPrimary, start, limit)
		} else {
			res = s.vw.res
		}
	}
	s.mu.Unlock()
	if err != nil {
		return 0, res, err
	}
	for i, bd := range bounds {
		if err := fn(flat[bd.off:bd.off+bd.kl], flat[bd.off+bd.kl:bd.off+bd.kl+bd.vl]); err != nil {
			return i + 1, res, err
		}
	}
	return len(bounds), res, nil
}
