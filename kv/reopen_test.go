package kv_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro"
	"repro/kv"
)

// TestScanReentrant: the Scan callback runs outside the store's lock, so
// it may call back into the Store — the scan-and-get pattern of a read
// path that joins related records — without deadlocking. (Before the
// fix, fn ran under s.mu and any re-entrant call hung forever.)
func TestScanReentrant(t *testing.T) {
	db := newCluster(t, repro.Config{})
	s, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() {
		done <- func() error {
			n, err := s.Scan(nil, 10, func(key, value []byte) error {
				// Re-enter the store from inside the callback: a Get of
				// the entry just delivered, a Put of a side record, and
				// a nested Scan.
				got, err := s.Get(key)
				if err != nil {
					return fmt.Errorf("re-entrant Get(%q): %w", key, err)
				}
				if string(got) != string(value) {
					return fmt.Errorf("re-entrant Get(%q) = %q, want %q", key, got, value)
				}
				if err := s.Put(append([]byte("seen-"), key...), value); err != nil {
					return fmt.Errorf("re-entrant Put: %w", err)
				}
				if _, err := s.Scan(key, 2, func(_, _ []byte) error { return nil }); err != nil {
					return fmt.Errorf("re-entrant Scan: %w", err)
				}
				return nil
			})
			if err != nil {
				return err
			}
			if n != 10 {
				return fmt.Errorf("scan visited %d entries, want 10", n)
			}
			return nil
		}()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("re-entrant Scan deadlocked (callback invoked under the store lock)")
	}

	// The staged snapshot delivered entries that existed at scan time;
	// the re-entrant Puts are visible afterwards.
	if _, err := s.Get([]byte("seen-k00")); err != nil && !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("post-scan Get: %v", err)
	}
}

// TestScanCallbackError: a failing callback stops delivery and reports
// the number of entries delivered, error included.
func TestScanCallbackError(t *testing.T) {
	db := newCluster(t, repro.Config{})
	s, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	calls := 0
	n, err := s.Scan(nil, 8, func(_, _ []byte) error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 3 || calls != 3 {
		t.Fatalf("delivered %d entries over %d calls, want 3", n, calls)
	}
}

// TestReopenAfterFailover: a Store broken by a primary crash heals in
// place — crash, manual failover, Reopen — with every acknowledged Put
// readable and the handle writable again, no new Open required.
func TestReopenAfterFailover(t *testing.T) {
	// K=3 at quorum needs 2 backup acks, so the group keeps its safety
	// level through the loss of the primary (2 backups survive the
	// failover) and Reopen can heal without a Repair first.
	db := newCluster(t, repro.Config{Backups: 3, Safety: repro.QuorumSafe})
	admin := db.(repro.Admin)
	s, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	const acked = 300
	for i := 0; i < acked; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := admin.CrashPrimary(); err != nil {
		t.Fatal(err)
	}
	// The crash surfaces on the next operation; the store breaks.
	if err := s.Put([]byte("post-crash"), []byte("x")); !errors.Is(err, repro.ErrCrashed) {
		t.Fatalf("Put on a dead primary = %v, want ErrCrashed", err)
	}
	if _, err := s.Get([]byte("key0000")); !errors.Is(err, kv.ErrBroken) {
		t.Fatalf("Get on a broken store = %v, want ErrBroken", err)
	}
	// Reopen before the failover fails and leaves the store broken.
	if err := s.Reopen(); !errors.Is(err, repro.ErrCrashed) {
		t.Fatalf("Reopen before failover = %v, want ErrCrashed", err)
	}
	if _, err := s.Get([]byte("key0000")); !errors.Is(err, kv.ErrBroken) {
		t.Fatalf("store healed without a failover: %v", err)
	}

	if err := admin.Failover(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reopen(); err != nil {
		t.Fatalf("Reopen after failover: %v", err)
	}
	if s.Len() != acked {
		t.Fatalf("reopened store has %d live keys, want %d", s.Len(), acked)
	}
	for i := 0; i < acked; i++ {
		v, err := s.Get([]byte(fmt.Sprintf("key%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("val%04d", i) {
			t.Fatalf("acked key %d after Reopen: %q, %v", i, v, err)
		}
	}
	// The healed handle serves writes.
	if err := s.Put([]byte("after-heal"), []byte("y")); err != nil {
		t.Fatalf("Put after Reopen: %v", err)
	}
}

// TestReopenAutopilot: with AutoFailover configured, Reopen's admission
// probe itself triggers the unattended takeover — no manual Failover
// call anywhere.
func TestReopenAutopilot(t *testing.T) {
	db := newCluster(t, repro.Config{
		Backups: 3,
		Safety:  repro.QuorumSafe,
		Autopilot: repro.AutopilotConfig{
			HeartbeatPeriod: 500 * time.Microsecond,
			AutoFailover:    true,
		},
	})
	admin := db.(repro.Admin)
	s, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	const acked = 200
	for i := 0; i < acked; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := admin.CrashPrimary(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("post-crash"), []byte("x")); err == nil {
		t.Fatal("Put on a dead primary succeeded")
	}
	if err := s.Reopen(); err != nil {
		t.Fatalf("Reopen with autopilot: %v", err)
	}
	for i := 0; i < acked; i++ {
		v, err := s.Get([]byte(fmt.Sprintf("key%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("val%04d", i) {
			t.Fatalf("acked key %d after autopilot Reopen: %q, %v", i, v, err)
		}
	}
	if err := s.Put([]byte("after-heal"), []byte("y")); err != nil {
		t.Fatalf("Put after autopilot Reopen: %v", err)
	}
}
