package kv_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/kv"
)

// TestColdRestartKeyspace: a keyspace persisted through the disk tier
// survives a full-cluster power loss — kv.Open over the cold-restarted
// deployment recovers its index from the replayed bytes, on both
// facades.
func TestColdRestartKeyspace(t *testing.T) {
	mk := func(dir string, shards int) (repro.DB, error) {
		cfg := repro.Config{
			Version: repro.V3InlineLog,
			Backup:  repro.ActiveBackup,
			DBSize:  1 << 20,
			Backups: 2,
			Safety:  repro.QuorumSafe,
			Durability: repro.DurabilityConfig{
				Dir:           dir,
				SnapshotEvery: 50,
			},
		}
		if shards == 0 {
			return repro.New(cfg)
		}
		return repro.NewSharded(cfg, shards)
	}
	for _, shards := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			db, err := mk(dir, shards)
			if err != nil {
				t.Fatal(err)
			}
			s, err := kv.Open(db)
			if err != nil {
				t.Fatal(err)
			}
			const n = 250
			for i := 0; i < n; i++ {
				if err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// Delete a slice so recovery proves tombstones persist too.
			for i := 0; i < n; i += 10 {
				if err := s.Delete([]byte(fmt.Sprintf("key%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			db.Settle()
			admin := db.(repro.Admin)
			for i := 0; i < db.Shards(); i++ {
				if err := admin.PowerFail(i); err != nil {
					t.Fatalf("shard %d: PowerFail: %v", i, err)
				}
			}

			db2, err := mk(dir, shards)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := kv.Open(db2)
			if err != nil {
				t.Fatalf("kv.Open after cold restart: %v", err)
			}
			if want := n - n/10; s2.Len() != want {
				t.Fatalf("recovered keyspace has %d live keys, want %d", s2.Len(), want)
			}
			for i := 0; i < n; i++ {
				v, err := s2.Get([]byte(fmt.Sprintf("key%04d", i)))
				if i%10 == 0 {
					if err == nil {
						t.Fatalf("deleted key %d resurrected as %q", i, v)
					}
					continue
				}
				if err != nil || string(v) != fmt.Sprintf("val%04d", i) {
					t.Fatalf("key %d after cold restart: %q, %v", i, v, err)
				}
			}
			// The recovered store serves writes, and another clean
			// shutdown/restart round-trips them.
			if err := s2.Put([]byte("post-restart"), []byte("z")); err != nil {
				t.Fatal(err)
			}
			db2.Settle()
			if err := db2.(repro.Admin).Close(); err != nil {
				t.Fatal(err)
			}
			db3, err := mk(dir, shards)
			if err != nil {
				t.Fatal(err)
			}
			s3, err := kv.Open(db3)
			if err != nil {
				t.Fatal(err)
			}
			if v, err := s3.Get([]byte("post-restart")); err != nil || string(v) != "z" {
				t.Fatalf("post-restart key after clean shutdown: %q, %v", v, err)
			}
			if err := db3.(repro.Admin).Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
