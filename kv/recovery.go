package kv

import (
	"encoding/binary"
	"fmt"

	"repro"
)

// recover rebuilds the in-memory acceleration (free list, live and
// tombstone counts) from the database bytes and repairs the damage an
// interrupted operation can leave behind. It runs on every Open of a
// formatted store — in particular on the promoted survivor after a crash
// and failover, where it makes the committed-prefix guarantee observable
// at the key level: every record whose bucket flip committed is kept,
// everything else is reclaimed.
//
// Damage taxonomy (only possible for operations whose commit was never
// acknowledged):
//
//   - A record slot written but never flipped reachable: the slot is
//     simply free (slot used-ness is defined by bucket references).
//   - A bucket flip torn away from its record phase (possible only on a
//     multi-shard deployment at 1-safe, where the two commits land on
//     different shards): the bucket may reference an out-of-range slot,
//     a slot with an implausible record header, or a stale record of a
//     key that is also live elsewhere. Such buckets are tombstoned; for
//     duplicate keys the entry earlier in the key's own probe order wins
//     — the same record a Get would return.
//
// The repair writes go through one ordinary transaction, so they are
// themselves replicated.
func (s *Store) recover() error {
	g := s.geo
	used := make([]bool, g.slotCount)
	type entry struct {
		bucket uint64
		slot   uint64
		dist   uint64
	}
	keys := make(map[string]entry)
	var clears []uint64
	s.live, s.tombs = 0, 0

	// Walk the bucket array in raw chunks (recovery is management plane:
	// it charges no simulated time).
	const chunk = 1 << 16
	total := int(g.bucketCount) * bucketWidth
	buf := make([]byte, chunk)
	var hdr [slotHeader]byte
	for off := 0; off < total; off += chunk {
		n := chunk
		if total-off < n {
			n = total - off
		}
		s.db.ReadRaw(int(g.bucketsOff)+off, buf[:n])
		for i := 0; i+bucketWidth <= n; i += bucketWidth {
			b := uint64(off+i) / bucketWidth
			w := binary.LittleEndian.Uint64(buf[i:])
			switch {
			case w == bucketEmpty:
			case w == bucketTomb:
				s.tombs++
			default:
				slot := w - bucketBase
				if slot >= g.slotCount {
					clears = append(clears, b)
					continue
				}
				s.db.ReadRaw(g.slotOff(slot), hdr[:])
				kl := int(binary.LittleEndian.Uint32(hdr[:4]))
				vl := int(binary.LittleEndian.Uint32(hdr[4:]))
				if kl <= 0 || kl+vl > g.payload() {
					clears = append(clears, b)
					continue
				}
				key := make([]byte, kl)
				s.db.ReadRaw(g.slotOff(slot)+slotHeader, key)
				dist := (b - hash(key)) & g.mask()
				if prev, dup := keys[string(key)]; dup {
					// Two buckets claim the same key: keep the one a Get
					// would reach first (smaller probe distance from the
					// key's natural bucket), tombstone the other.
					if dist < prev.dist {
						clears = append(clears, prev.bucket)
						used[prev.slot] = false
						keys[string(key)] = entry{bucket: b, slot: slot, dist: dist}
						used[slot] = true
					} else {
						clears = append(clears, b)
					}
					continue
				}
				keys[string(key)] = entry{bucket: b, slot: slot, dist: dist}
				used[slot] = true
				s.live++
			}
		}
	}
	s.resetFree(used)

	if len(clears) > 0 {
		err := s.runTx(func(tx repro.Tx) error {
			var word [bucketWidth]byte
			binary.LittleEndian.PutUint64(word[:], bucketTomb)
			for _, b := range clears {
				off := g.bucketOff(b)
				if err := tx.SetRange(off, bucketWidth); err != nil {
					return err
				}
				if err := tx.Write(off, word[:]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("kv: recovery repair: %w", err)
		}
		s.tombs += len(clears)
	}
	return nil
}
