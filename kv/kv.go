// Package kv is a replicated key-value store laid out inside the bytes of
// a repro.DB. The index — an open-addressed hash table with linear
// probing — and the record heap — a slab of fixed-size slots — both live
// in the replicated database itself and are mutated only through the
// DB's transactional SetRange/Write path, so the entire keyspace inherits
// the deployment's fault tolerance with zero new replication code: crash
// the primary at any instant, fail over, Open the survivor, and every
// acknowledged Put is readable (at quorum or 2-safe commit; 1-safe keeps
// the paper's lost-window semantics, now observable at the key level).
//
// # Layout
//
// The database bytes are carved into three areas at format time:
//
//	[0, 64)              header: magic, geometry
//	[64, slotsOff)       bucket array: one 8-byte word per bucket
//	[slotsOff, ...)      slot slab: fixed-size key+value records
//
// A bucket word is 0 (empty), 1 (tombstone) or slotIndex+2 (live). A slot
// holds an 8-byte record header (key length, value length) followed by
// the key and value bytes. Geometry is chosen so the table's load factor
// stays at or below one half.
//
// # Crash consistency
//
// Every mutation is a transaction (or two) on the underlying DB, and the
// replication layer guarantees a committed prefix — so consistency
// reduces to write ordering. A bucket word is 8-byte aligned and never
// spans a shard boundary, making the bucket flip the atomic commit point
// of every operation. New and updated records are written out of place
// into a free slot and committed *before* the bucket flip that makes them
// reachable; on a sharded deployment the two writes may land on different
// shards, so they are issued as two transactions in that order (a
// single-shard deployment merges them into one atomic transaction). A
// crash between the two leaks at most a slot, which Open reclaims; it
// never corrupts a reachable record. Open validates every reachable
// bucket (slot range, record-header sanity, duplicate references and
// duplicate keys from torn multi-shard flips) and tombstones the losers.
//
// # Errors
//
//	Call            Errors
//	----            ------
//	Open            ErrBadFormat, ErrTooSmall, plus repro errors
//	Get             ErrNotFound, ErrEmptyKey, ErrBroken, repro.ErrCrashed
//	Put             ErrTooLarge, ErrEmptyKey, ErrFull, ErrBroken,
//	                repro.ErrCrashed, repro.ErrSafetyUnavailable
//	Delete          ErrNotFound, ErrEmptyKey, ErrBroken, repro errors
//	Scan            ErrBroken, repro.ErrCrashed
//	Txn.Commit      ErrTxnDone plus everything Put and Delete return
//
// A repro.ErrSafetyUnavailable from Put, Delete or Txn.Commit means the
// mutation is durable on the serving node but its acknowledgement
// discipline was not met — the key-level analogue of the facade's
// degraded commit. After repro.ErrCrashed the Store is broken: fail the
// deployment over and Open it again, or call Reopen on the existing
// handle to re-run the same recovery in place (what a long-lived server
// does after the autopilot promotes a survivor).
package kv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro"
)

// Store errors.
var (
	// ErrBadFormat is returned by Open when the database bytes are
	// neither zeroed (formattable) nor a kv store.
	ErrBadFormat = errors.New("kv: database bytes are not a kv store")
	// ErrTooSmall is returned by Open when the database cannot hold the
	// header, a minimal bucket array and at least one slot.
	ErrTooSmall = errors.New("kv: database too small for a kv store")
	// ErrEmptyKey is returned for a zero-length key.
	ErrEmptyKey = errors.New("kv: empty key")
	// ErrTooLarge is returned by Put when key+value exceed the slot
	// payload (SlotPayload bytes).
	ErrTooLarge = errors.New("kv: key+value exceed the slot payload")
	// ErrFull is returned by Put when no free slot (or no reusable
	// bucket) remains. Updates are out of place, so even an overwrite
	// of an existing key transiently needs one free slot: a store
	// filled to exact slot capacity rejects every write until a
	// Delete makes room.
	ErrFull = errors.New("kv: store is full")
	// ErrNotFound is returned by Get and Delete for an absent key.
	ErrNotFound = errors.New("kv: key not found")
	// ErrBroken is returned once a commit failed mid-operation (the
	// primary crashed under the store): the in-memory index may be ahead
	// of the database. Fail over and Open the database again.
	ErrBroken = errors.New("kv: store invalidated by a failed commit; Open the database again")
	// ErrTxnDone is returned by operations on a committed or aborted
	// Txn.
	ErrTxnDone = errors.New("kv: transaction already completed")
)

// Layout constants. The header is one 64-byte line: an 8-byte magic
// followed by five 8-byte geometry words.
const (
	headerSize  = 64
	bucketWidth = 8
	slotHeader  = 8 // key length u32 + value length u32

	hMagic       = 0
	hBucketCount = 8
	hSlotSize    = 16
	hSlotCount   = 24
	hBucketsOff  = 32
	hSlotsOff    = 40
)

// magic identifies a formatted store; the trailing digit versions the
// layout.
var magic = []byte("REPROKV1")

// Bucket-word states; a live word is slotIndex+bucketBase.
const (
	bucketEmpty = 0
	bucketTomb  = 1
	bucketBase  = 2
)

// DefaultSlotSize is the record slot size Open formats with: an 8-byte
// record header plus up to 248 bytes of key+value.
const DefaultSlotSize = 256

// Options tunes Open's format-time geometry. Opening an already
// formatted store ignores it (geometry is read from the header).
type Options struct {
	// SlotSize is the fixed record slot size in bytes (default
	// DefaultSlotSize, minimum 64). Key length + value length is capped
	// at SlotSize-8.
	SlotSize int
}

// geometry is the persisted layout, cached from the header.
type geometry struct {
	bucketCount uint64 // power of two
	slotSize    uint64
	slotCount   uint64
	bucketsOff  uint64
	slotsOff    uint64
}

func (g geometry) bucketOff(b uint64) int { return int(g.bucketsOff + b*bucketWidth) }
func (g geometry) slotOff(i uint64) int   { return int(g.slotsOff + i*g.slotSize) }
func (g geometry) payload() int           { return int(g.slotSize) - slotHeader }
func (g geometry) mask() uint64           { return g.bucketCount - 1 }

// Store is a key-value view over a repro.DB. All state of record lives in
// the replicated database bytes; the Store itself holds only derived
// acceleration (the free-slot list and live counters), rebuilt by Open.
// A Store is safe for concurrent use; operations serialize on its mutex
// (the underlying deployment runs one transaction at a time per shard
// anyway). Once any operation observes the deployment crashed, the Store
// is broken — fail over and Open again. An unattended takeover
// (Config.Autopilot with AutoFailover) surfaces no error the Store can
// observe, so a caller running the autopilot at 1-safe must watch the
// deployment's AutopilotEvents (or Generation) and re-Open after a
// takeover before issuing more writes; at quorum or 2-safe the
// survivor's bytes match everything the Store acknowledged, and
// continuing is safe.
type Store struct {
	mu     sync.Mutex
	db     repro.DB
	geo    geometry
	free   []uint32 // free slot indices, LIFO
	live   int      // live keys
	tombs  int      // tombstoned buckets
	broken bool

	// scratch buffers recycled across operations.
	word [bucketWidth]byte
	hdr  [slotHeader]byte
	kbuf []byte
	vbuf []byte

	// readPrimary is db.Read bound once, so the hot paths stay
	// allocation-free; vw/vwRead are the recycled replica read view for
	// GetAt/ScanAt (valid under mu, like the scratch buffers).
	readPrimary readFn
	vw          view
	vwRead      readFn
}

// Open opens (or, on an all-zero database, formats) a key-value store
// over db with default options. Recovery is Open: after a crash and
// failover, Open on the promoted survivor rebuilds the store from the
// replicated bytes, validating every reachable record and reclaiming
// slots leaked by interrupted operations.
func Open(db repro.DB) (*Store, error) { return OpenWith(db, Options{}) }

// OpenWith opens or formats a store with explicit options.
func OpenWith(db repro.DB, opt Options) (*Store, error) {
	if opt.SlotSize == 0 {
		opt.SlotSize = DefaultSlotSize
	}
	if opt.SlotSize < 64 {
		return nil, fmt.Errorf("kv: slot size %d below the 64-byte minimum", opt.SlotSize)
	}
	s := &Store{db: db}
	s.readPrimary = db.Read
	s.vwRead = s.vw.read
	s.vw.s = s
	var head [headerSize]byte
	if db.DBSize() < headerSize {
		return nil, ErrTooSmall
	}
	db.ReadRaw(0, head[:])
	switch {
	case bytes.Equal(head[hMagic:hMagic+8], magic):
		if err := s.adoptHeader(head[:]); err != nil {
			return nil, err
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
	case bytes.Equal(head[:], make([]byte, headerSize)):
		if err := s.format(opt); err != nil {
			return nil, err
		}
	default:
		return nil, ErrBadFormat
	}
	return s, nil
}

// Reopen re-runs Open-time recovery in place: it probes the deployment
// for admission (which pumps the autopilot, so a dead primary with
// AutoFailover configured is promoted by the probe itself), re-adopts
// the persisted header, clears the broken flag and rebuilds the
// in-memory acceleration from the replicated bytes — exactly what a
// fresh Open would do, without invalidating the handle callers hold.
//
// It is the serving-path heal: a Store that observed ErrBroken after a
// primary crash (or a lease-fenced deposition) becomes usable again once
// the cluster has failed over, with every acknowledged mutation intact.
// If the deployment still is not servable — no failover yet, lease still
// expired, safety level unmet — Reopen returns that error and the Store
// stays broken; retry after the cluster heals.
func (s *Store) Reopen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, err := s.db.Begin()
	if err != nil {
		return err
	}
	if err := tx.Abort(); err != nil {
		return err
	}
	var head [headerSize]byte
	s.db.ReadRaw(0, head[:])
	if !bytes.Equal(head[hMagic:hMagic+8], magic) {
		return ErrBadFormat
	}
	if err := s.adoptHeader(head[:]); err != nil {
		return err
	}
	wasBroken := s.broken
	s.broken = false
	if err := s.recover(); err != nil {
		s.broken = s.broken || wasBroken
		return err
	}
	return nil
}

// format computes the geometry for the database size and persists the
// header in one transaction. The bucket array and slab are already zero
// (empty) on a fresh database.
func (s *Store) format(opt Options) error {
	geo, err := computeGeometry(s.db.DBSize(), opt.SlotSize)
	if err != nil {
		return err
	}
	s.geo = geo
	var head [headerSize]byte
	copy(head[hMagic:], magic)
	binary.LittleEndian.PutUint64(head[hBucketCount:], geo.bucketCount)
	binary.LittleEndian.PutUint64(head[hSlotSize:], geo.slotSize)
	binary.LittleEndian.PutUint64(head[hSlotCount:], geo.slotCount)
	binary.LittleEndian.PutUint64(head[hBucketsOff:], geo.bucketsOff)
	binary.LittleEndian.PutUint64(head[hSlotsOff:], geo.slotsOff)
	if err := s.runTx(func(tx repro.Tx) error {
		if err := tx.SetRange(0, headerSize); err != nil {
			return err
		}
		return tx.Write(0, head[:])
	}); err != nil {
		return err
	}
	s.resetFree(nil)
	return nil
}

// adoptHeader validates a persisted header and caches its geometry.
func (s *Store) adoptHeader(head []byte) error {
	g := geometry{
		bucketCount: binary.LittleEndian.Uint64(head[hBucketCount:]),
		slotSize:    binary.LittleEndian.Uint64(head[hSlotSize:]),
		slotCount:   binary.LittleEndian.Uint64(head[hSlotCount:]),
		bucketsOff:  binary.LittleEndian.Uint64(head[hBucketsOff:]),
		slotsOff:    binary.LittleEndian.Uint64(head[hSlotsOff:]),
	}
	size := uint64(s.db.DBSize())
	ok := g.bucketCount >= 8 && g.bucketCount&(g.bucketCount-1) == 0 &&
		g.slotSize >= 64 && g.slotCount >= 1 &&
		g.bucketsOff == headerSize &&
		g.slotsOff == g.bucketsOff+g.bucketCount*bucketWidth &&
		g.slotsOff+g.slotCount*g.slotSize <= size
	if !ok {
		return fmt.Errorf("kv: corrupt header geometry: %w", ErrBadFormat)
	}
	s.geo = g
	return nil
}

// computeGeometry carves size bytes into a header, a power-of-two bucket
// array and a slot slab, keeping bucketCount at least twice slotCount so
// the load factor never exceeds one half.
func computeGeometry(size, slotSize int) (geometry, error) {
	usable := size - headerSize
	slotCount := usable / slotSize
	var buckets int
	for i := 0; i < 64; i++ {
		buckets = nextPow2(2 * slotCount)
		if buckets < 8 {
			buckets = 8
		}
		fit := (usable - buckets*bucketWidth) / slotSize
		if fit >= slotCount {
			break
		}
		slotCount = fit
	}
	if slotCount < 1 {
		return geometry{}, ErrTooSmall
	}
	return geometry{
		bucketCount: uint64(buckets),
		slotSize:    uint64(slotSize),
		slotCount:   uint64(slotCount),
		bucketsOff:  headerSize,
		slotsOff:    uint64(headerSize + buckets*bucketWidth),
	}, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// hash is FNV-1a 64.
func hash(key []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// resetFree rebuilds the free list from a used-slot set (nil = all free).
func (s *Store) resetFree(used []bool) {
	s.free = s.free[:0]
	// LIFO from the top so low slots are handed out first.
	for i := int(s.geo.slotCount) - 1; i >= 0; i-- {
		if used == nil || !used[i] {
			s.free = append(s.free, uint32(i))
		}
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// Slots returns the record-slot capacity of the store.
func (s *Store) Slots() int { return int(s.geo.slotCount) }

// SlotPayload returns the maximum key length + value length one record
// can hold.
func (s *Store) SlotPayload() int { return s.geo.payload() }

// Buckets returns the index size (for observability and tests).
func (s *Store) Buckets() int { return int(s.geo.bucketCount) }

// DB returns the underlying deployment.
func (s *Store) DB() repro.DB { return s.db }

// fail records a broken commit path: the in-memory index can no longer be
// trusted against the database bytes.
func (s *Store) fail(err error) error {
	if errors.Is(err, repro.ErrSafetyUnavailable) {
		// The mutation is durable on the serving node; only the
		// acknowledgement discipline failed. The index is still correct.
		return err
	}
	s.broken = true
	return err
}

// observe inspects an error flowing out of any operation: once the
// deployment is seen crashed, the Store marks itself broken — after the
// failover the survivor's bytes may sit behind the in-memory free list
// (a 1-safe loss window), so continuing to allocate from it could
// overwrite reachable records. Re-Open rebuilds the index from the
// recovered bytes. (An unattended autopilot takeover that surfaces no
// error at all cannot be caught here; see the package comment.)
func (s *Store) observe(err error) error {
	if errors.Is(err, repro.ErrCrashed) || errors.Is(err, repro.ErrLeaseExpired) {
		// A lease expiry is a deposition: the surviving majority may
		// already serve behind a takeover this Store never saw.
		s.broken = true
	}
	return err
}

// runTx runs body inside one transaction on the underlying DB, aborting
// on body errors and marking the store broken on commit failures.
func (s *Store) runTx(body func(tx repro.Tx) error) error {
	tx, err := s.db.Begin()
	if err != nil {
		return s.observe(err)
	}
	if err := body(tx); err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return s.observe(fmt.Errorf("%w (abort also failed: %v)", err, abortErr))
		}
		return s.observe(err)
	}
	if err := tx.Commit(); err != nil {
		return s.fail(err)
	}
	return nil
}

// readFn is one operation's charged-read routing: the primary's
// serialized read (Store.readPrimary) or a replica read view (see
// readat.go). Injected so the probe and scan walks are identical — same
// offsets, same charges — wherever they are served.
type readFn func(off int, dst []byte) error

// readBucket reads bucket b's word with a charged read.
func (s *Store) readBucket(rd readFn, b uint64) (uint64, error) {
	if err := rd(s.geo.bucketOff(b), s.word[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(s.word[:]), nil
}

// readSlotHeader reads slot i's record header with a charged read.
func (s *Store) readSlotHeader(rd readFn, i uint64) (keyLen, valLen int, err error) {
	if err := rd(s.geo.slotOff(i), s.hdr[:]); err != nil {
		return 0, 0, err
	}
	return int(binary.LittleEndian.Uint32(s.hdr[:4])), int(binary.LittleEndian.Uint32(s.hdr[4:])), nil
}

// probeResult is where a key's probe ended.
type probeResult struct {
	found      bool
	bucket     uint64 // the key's bucket (found) — else the insert position
	slot       uint64 // the key's slot (found only)
	valLen     int    // the record's value length (found only)
	reusedTomb bool   // the insert position is a tombstone
	full       bool   // no insert position exists
}

// probe walks key's chain from its natural bucket: first matching live
// entry wins; the insert position is the first tombstone seen, else the
// terminating empty bucket. overlay, when non-nil, shadows bucket words
// with a transaction's planned flips — a planned live word never matches
// (a transaction probes each distinct key once), so it only occupies the
// bucket.
func (s *Store) probe(rd readFn, key []byte, overlay map[uint64]uint64) (probeResult, error) {
	h := hash(key)
	mask := s.geo.mask()
	firstFree := uint64(0)
	haveFree := false
	for i := uint64(0); i < s.geo.bucketCount; i++ {
		b := (h + i) & mask
		w, fromOverlay := overlay[b]
		if !fromOverlay {
			var err error
			if w, err = s.readBucket(rd, b); err != nil {
				return probeResult{}, err
			}
		}
		switch {
		case w == bucketEmpty:
			if haveFree {
				return probeResult{bucket: firstFree, reusedTomb: true}, nil
			}
			return probeResult{bucket: b}, nil
		case w == bucketTomb:
			if !haveFree {
				firstFree, haveFree = b, true
			}
		case fromOverlay:
			// Another key's planned record: occupied, cannot match.
		default:
			slot := w - bucketBase
			kl, vl, err := s.readSlotHeader(rd, slot)
			if err != nil {
				return probeResult{}, err
			}
			if kl == len(key) {
				s.kbuf = grow(s.kbuf, kl)
				if err := rd(s.geo.slotOff(slot)+slotHeader, s.kbuf); err != nil {
					return probeResult{}, err
				}
				if bytes.Equal(s.kbuf, key) {
					return probeResult{found: true, bucket: b, slot: slot, valLen: vl}, nil
				}
			}
		}
	}
	if haveFree {
		return probeResult{bucket: firstFree, reusedTomb: true}, nil
	}
	return probeResult{full: true}, nil
}

// grow returns buf resized to n, reallocating only when needed.
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// Get returns the value stored under key. The returned slice is freshly
// allocated.
func (s *Store) Get(key []byte) ([]byte, error) {
	val, err := s.GetAppend(key, nil)
	if err != nil {
		return nil, err
	}
	if val == nil {
		val = []byte{}
	}
	return val, nil
}

// GetAppend appends the value stored under key to dst and returns the
// extended slice — the allocation-free variant of Get for serving paths
// that copy the value straight into a pooled response buffer. On any
// error dst is returned unextended.
func (s *Store) GetAppend(key, dst []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(key); err != nil {
		return dst, err
	}
	return s.getAppend(s.readPrimary, key, dst)
}

// getAppend is the lookup body — probe, then the value read — with the
// charged reads routed through rd. Callers hold s.mu and have validated
// the key.
func (s *Store) getAppend(rd readFn, key, dst []byte) ([]byte, error) {
	p, err := s.probe(rd, key, nil)
	if err != nil {
		return dst, s.observe(err)
	}
	if !p.found {
		return dst, ErrNotFound
	}
	off := len(dst)
	out := slices.Grow(dst, p.valLen)[:off+p.valLen]
	if err := rd(s.geo.slotOff(p.slot)+slotHeader+len(key), out[off:]); err != nil {
		return dst, s.observe(err)
	}
	return out, nil
}

// Put stores value under key, overwriting any previous value. The record
// is written out of place and made reachable by an atomic bucket flip, so
// a crash mid-Put never damages the previous value.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(key); err != nil {
		return err
	}
	if len(key)+len(value) > s.geo.payload() {
		return ErrTooLarge
	}
	p, err := s.probe(s.readPrimary, key, nil)
	if err != nil {
		return s.observe(err)
	}
	if !p.found && p.full {
		return ErrFull
	}
	w := write{key: key, val: value}
	if err := s.alloc(&w); err != nil {
		return err
	}
	if err := s.commitWrites([]*write{&w}, map[uint64]*write{p.bucket: &w}); err != nil {
		if !errors.Is(err, repro.ErrSafetyUnavailable) {
			s.unalloc([]*write{&w})
			return err
		}
		s.applyWrite(&w, p)
		return err
	}
	s.applyWrite(&w, p)
	return nil
}

// Delete removes key. The tombstoned bucket keeps later entries of the
// chain reachable; its slot returns to the free list.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(key); err != nil {
		return err
	}
	p, err := s.probe(s.readPrimary, key, nil)
	if err != nil {
		return s.observe(err)
	}
	if !p.found {
		return ErrNotFound
	}
	w := write{key: key, del: true}
	if err := s.commitWrites([]*write{&w}, map[uint64]*write{p.bucket: &w}); err != nil {
		if !errors.Is(err, repro.ErrSafetyUnavailable) {
			return err
		}
		s.applyWrite(&w, p)
		return err
	}
	s.applyWrite(&w, p)
	return nil
}

// check validates the key and the store's health.
func (s *Store) check(key []byte) error {
	if s.broken {
		return ErrBroken
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	return nil
}

// write is one planned mutation: a record landing in slot (puts) and a
// bucket flip.
type write struct {
	key, val []byte
	del      bool
	slot     uint32 // allocated slot (puts)
}

// alloc reserves a free slot for a put.
func (s *Store) alloc(w *write) error {
	if len(s.free) == 0 {
		return ErrFull
	}
	w.slot = s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	return nil
}

// unalloc returns planned puts' slots to the pool after a failed commit.
func (s *Store) unalloc(writes []*write) {
	for i := len(writes) - 1; i >= 0; i-- {
		if !writes[i].del {
			s.free = append(s.free, writes[i].slot)
		}
	}
}

// commitWrites persists a batch of planned writes: phase one writes every
// new record into its allocated slot, phase two flips every bucket word.
// On a single-shard deployment both phases share one atomic transaction;
// on a sharded deployment they are two transactions in record-then-flip
// order, so a crash between them leaks at most slots (reclaimed by the
// next Open) and never tears a reachable record. flips maps bucket index
// → the write that owns it.
func (s *Store) commitWrites(writes []*write, flips map[uint64]*write) error {
	records := func(tx repro.Tx) error {
		for _, w := range writes {
			if w.del {
				continue
			}
			off := s.geo.slotOff(uint64(w.slot))
			n := slotHeader + len(w.key) + len(w.val)
			if err := tx.SetRange(off, n); err != nil {
				return err
			}
			s.vbuf = grow(s.vbuf, n)
			binary.LittleEndian.PutUint32(s.vbuf[:4], uint32(len(w.key)))
			binary.LittleEndian.PutUint32(s.vbuf[4:8], uint32(len(w.val)))
			copy(s.vbuf[slotHeader:], w.key)
			copy(s.vbuf[slotHeader+len(w.key):], w.val)
			if err := tx.Write(off, s.vbuf); err != nil {
				return err
			}
		}
		return nil
	}
	// Flip in ascending bucket order: map iteration order is randomized
	// and the charged write sequence must stay deterministic.
	buckets := make([]uint64, 0, len(flips))
	for b := range flips {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	flipsBody := func(tx repro.Tx) error {
		for _, b := range buckets {
			w := flips[b]
			word := uint64(bucketTomb)
			if !w.del {
				word = uint64(w.slot) + bucketBase
			}
			off := s.geo.bucketOff(b)
			if err := tx.SetRange(off, bucketWidth); err != nil {
				return err
			}
			var buf [bucketWidth]byte
			binary.LittleEndian.PutUint64(buf[:], word)
			if err := tx.Write(off, buf[:]); err != nil {
				return err
			}
		}
		return nil
	}

	if s.singleTx() {
		return s.runTx(func(tx repro.Tx) error {
			if err := records(tx); err != nil {
				return err
			}
			return flipsBody(tx)
		})
	}
	err := s.runTx(records)
	if err != nil && !errors.Is(err, repro.ErrSafetyUnavailable) {
		return err
	}
	degraded := err
	if err := s.runTx(flipsBody); err != nil {
		return err
	}
	return degraded
}

// singleTx reports whether the commit protocol may collapse record
// writes and bucket flips into one atomic transaction. Evaluated per
// commit, not at Open: an elastic deployment opened at one shard can
// grow mid-lifetime, after which the two-phase order (records first,
// flips second) is what keeps partially committed batches recoverable.
func (s *Store) singleTx() bool { return s.db.Shards() == 1 }

// applyWrite folds one committed write into the in-memory acceleration.
func (s *Store) applyWrite(w *write, p probeResult) {
	switch {
	case w.del:
		s.free = append(s.free, uint32(p.slot))
		s.live--
		s.tombs++
	case p.found:
		// Overwrite: the displaced record's slot returns to the pool.
		s.free = append(s.free, uint32(p.slot))
	default:
		s.live++
		if p.reusedTomb {
			s.tombs--
		}
	}
}

// Scan visits up to limit live entries in bucket order, starting at
// start's natural bucket (or bucket 0 when start is nil), wrapping once
// around the table — the short range scan of YCSB-style workloads.
// Iteration order is hash order, not key order. The entries are staged
// under the store's lock and fn runs after it is released, so a callback
// is free to call back into the Store (Get, Put, even another Scan)
// without deadlocking; what it sees is a consistent snapshot taken at
// the Scan call, not the live table. fn's slices are reused between
// calls; copy what must outlive the callback. Returns the number of
// entries delivered to fn; a non-nil fn error stops the scan and is
// returned. A read error during staging delivers nothing.
func (s *Store) Scan(start []byte, limit int, fn func(key, value []byte) error) (int, error) {
	s.mu.Lock()
	flat, bounds, err := s.stageScan(s.readPrimary, start, limit)
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	for i, bd := range bounds {
		if err := fn(flat[bd.off:bd.off+bd.kl], flat[bd.off+bd.kl:bd.off+bd.kl+bd.vl]); err != nil {
			return i + 1, err
		}
	}
	return len(bounds), nil
}

// scanEntry locates one staged entry inside a scan's flat buffer.
type scanEntry struct {
	off, kl, vl int
}

// stageScan copies up to limit live entries out of the table into one
// flat buffer, under s.mu. The buffer is call-local: it must survive
// after the lock is released, and concurrent Scans must not share it, so
// it cannot live in the Store's recycled scratch space.
func (s *Store) stageScan(rd readFn, start []byte, limit int) ([]byte, []scanEntry, error) {
	if s.broken {
		return nil, nil, ErrBroken
	}
	if limit <= 0 {
		return nil, nil, nil
	}
	b0 := uint64(0)
	if len(start) > 0 {
		b0 = hash(start) & s.geo.mask()
	}
	var flat []byte
	var bounds []scanEntry
	for i := uint64(0); i < s.geo.bucketCount && len(bounds) < limit; i++ {
		b := (b0 + i) & s.geo.mask()
		w, err := s.readBucket(rd, b)
		if err != nil {
			return nil, nil, s.observe(err)
		}
		if w == bucketEmpty || w == bucketTomb {
			continue
		}
		slot := w - bucketBase
		kl, vl, err := s.readSlotHeader(rd, slot)
		if err != nil {
			return nil, nil, s.observe(err)
		}
		off := len(flat)
		flat = slices.Grow(flat, kl+vl)[:off+kl+vl]
		if err := rd(s.geo.slotOff(slot)+slotHeader, flat[off:]); err != nil {
			return nil, nil, s.observe(err)
		}
		bounds = append(bounds, scanEntry{off: off, kl: kl, vl: vl})
	}
	return flat, bounds, nil
}
