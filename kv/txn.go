package kv

import (
	"errors"

	"repro"
)

// Txn is a multi-key transaction: reads see the store plus the
// transaction's own buffered writes; Put and Delete buffer until Commit,
// which persists the whole set through the store's two-phase protocol —
// every record lands in its slot before any bucket flips, so a crash
// mid-commit never exposes a half-written record. On a single-shard
// deployment (a Cluster, or a one-shard ShardedCluster) the commit is one
// underlying transaction and therefore atomic: all of the transaction's
// keys become visible together or not at all. On a multi-shard deployment
// the bucket flips commit shard by shard — the underlying layer has no
// cross-shard atomic commit — so a crash at the wrong instant can expose
// a prefix of the transaction's keys; each individual key still flips
// atomically.
type Txn struct {
	s     *Store
	done  bool
	order []string        // distinct keys in first-touch order
	ops   map[string]txOp // latest buffered op per key
}

type txOp struct {
	val []byte
	del bool
}

// Begin opens a multi-key transaction. The store stays usable for
// independent operations while the transaction buffers; conflicting
// writes outside the transaction are last-writer-wins at Commit.
func (s *Store) Begin() (*Txn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		return nil, ErrBroken
	}
	return &Txn{s: s, ops: make(map[string]txOp)}, nil
}

// Get returns the value under key as the transaction sees it: a buffered
// Put or Delete wins over the store.
func (t *Txn) Get(key []byte) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if len(key) == 0 {
		return nil, ErrEmptyKey
	}
	if op, ok := t.ops[string(key)]; ok {
		if op.del {
			return nil, ErrNotFound
		}
		out := make([]byte, len(op.val))
		copy(out, op.val)
		return out, nil
	}
	return t.s.Get(key)
}

// Put buffers a write of value under key.
func (t *Txn) Put(key, value []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key)+len(value) > t.s.geo.payload() {
		return ErrTooLarge
	}
	t.track(key)
	t.ops[string(key)] = txOp{val: append([]byte(nil), value...)}
	return nil
}

// Delete buffers a deletion of key; deleting an absent key is a no-op at
// Commit.
func (t *Txn) Delete(key []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	t.track(key)
	t.ops[string(key)] = txOp{del: true}
	return nil
}

func (t *Txn) track(key []byte) {
	if _, seen := t.ops[string(key)]; !seen {
		t.order = append(t.order, string(key))
	}
}

// Abort discards the buffered writes.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	return nil
}

// Commit persists every buffered write. On error nothing is applied
// (single-shard deployments) or at most a shard-prefix of the flips is
// (multi-shard; see the type comment). A repro.ErrSafetyUnavailable
// return means the writes are durable on the serving node but were not
// acknowledged at the configured safety level.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		return ErrBroken
	}
	if len(t.order) == 0 {
		return nil
	}

	// Plan: probe every key against the live table shadowed by the flips
	// planned so far, allocating slots as puts are laid out.
	overlay := make(map[uint64]uint64, len(t.order))
	writes := make([]*write, 0, len(t.order))
	probes := make([]probeResult, 0, len(t.order))
	flips := make(map[uint64]*write, len(t.order))
	fail := func(err error) error {
		s.unalloc(writes)
		return err
	}
	for _, k := range t.order {
		op := t.ops[k]
		key := []byte(k)
		p, err := s.probe(s.readPrimary, key, overlay)
		if err != nil {
			return fail(s.observe(err))
		}
		if op.del {
			if !p.found {
				continue // deleting an absent key: no-op
			}
			w := &write{key: key, del: true}
			writes = append(writes, w)
			probes = append(probes, p)
			flips[p.bucket] = w
			overlay[p.bucket] = bucketTomb
			continue
		}
		if !p.found && p.full {
			return fail(ErrFull)
		}
		w := &write{key: key, val: op.val}
		if err := s.alloc(w); err != nil {
			return fail(err)
		}
		writes = append(writes, w)
		probes = append(probes, p)
		flips[p.bucket] = w
		overlay[p.bucket] = uint64(w.slot) + bucketBase
	}
	if len(writes) == 0 {
		return nil
	}

	err := s.commitWrites(writes, flips)
	if err != nil && !errors.Is(err, repro.ErrSafetyUnavailable) {
		return fail(err)
	}
	for i, w := range writes {
		s.applyWrite(w, probes[i])
	}
	return err
}
