package repro_test

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
)

// TestConcurrentShardDriving hammers a 4-shard cluster from 8 writer
// goroutines (two per shard) while a monitor samples every lock-free
// aggregate and a chaos goroutine repeatedly crashes, fails over and
// repairs shard 3. Run under -race this validates the concurrency
// discipline end to end: per-shard locks serialize same-shard
// transactions, disjoint shards run in parallel, management operations
// land on transaction boundaries, and the atomic counters never tear.
func TestConcurrentShardDriving(t *testing.T) {
	const (
		shards     = 4
		writers    = 8
		txnsPerW   = 120
		chaosShard = 3
	)
	sc, err := repro.NewSharded(repro.Config{
		Version:     repro.V3InlineLog,
		Backup:      repro.ActiveBackup,
		DBSize:      testDB,
		CommitBatch: 4, // exercise the batched commit path concurrently too
	}, shards)
	if err != nil {
		t.Fatal(err)
	}

	var work sync.WaitGroup
	var committed atomic.Int64
	for w := 0; w < writers; w++ {
		work.Add(1)
		go func(w int) {
			defer work.Done()
			shard := w % shards
			base := shard * sc.ShardSize()
			slots := sc.ShardSize() / 128
			buf := make([]byte, 64)
			for i := range buf {
				buf[i] = byte(w + 1)
			}
			got := make([]byte, 64)
			for i := 0; i < txnsPerW; i++ {
				off := base + ((w/shards)*txnsPerW+i)%slots*128
				tx, err := sc.Begin()
				if err != nil {
					t.Errorf("writer %d: begin: %v", w, err)
					return
				}
				if err := tx.SetRange(off, 64); err != nil {
					// The chaos goroutine crashed this shard: roll back
					// and keep going, like a client retrying elsewhere.
					_ = tx.Abort()
					continue
				}
				if err := tx.Write(off, buf); err != nil {
					_ = tx.Abort()
					continue
				}
				if err := tx.Read(off, got); err != nil {
					_ = tx.Abort()
					continue
				}
				if err := tx.Commit(); err == nil {
					committed.Add(1)
				}
			}
		}(w)
	}

	// Monitor: sample every never-blocking aggregate while traffic runs.
	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = sc.Stats()
			_ = sc.Committed()
			_ = sc.NetTraffic()
			_ = sc.Elapsed()
		}
	}()

	// Chaos: crash/failover/repair one shard, repeatedly, mid-traffic.
	work.Add(1)
	go func() {
		defer work.Done()
		for round := 0; round < 3; round++ {
			if err := sc.CrashPrimary(chaosShard); err != nil {
				t.Errorf("chaos crash: %v", err)
				return
			}
			if err := sc.Failover(chaosShard); err != nil {
				t.Errorf("chaos failover: %v", err)
				return
			}
			if err := sc.Repair(chaosShard); err != nil {
				t.Errorf("chaos repair: %v", err)
				return
			}
		}
	}()

	work.Wait()
	close(stop)
	monitor.Wait()

	if committed.Load() == 0 {
		t.Fatal("no transaction committed under concurrency")
	}
	// Every shard still serves; the chaos shard repaired back to its
	// configured degree.
	sc.Settle()
	for i := 0; i < shards; i++ {
		off := i * sc.ShardSize()
		tx, err := sc.Begin()
		if err != nil {
			t.Fatalf("post-run begin: %v", err)
		}
		if err := tx.SetRange(off, 8); err != nil {
			t.Fatalf("post-run shard %d: %v", i, err)
		}
		if err := tx.Write(off, []byte("post-run")); err != nil {
			t.Fatalf("post-run shard %d write: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("post-run shard %d commit: %v", i, err)
		}
		got := make([]byte, 8)
		sc.ReadRaw(off, got)
		if !bytes.Equal(got, []byte("post-run")) {
			t.Fatalf("post-run shard %d readback mismatch", i)
		}
	}
	if got := sc.Shard(chaosShard).Backups(); got != 1 {
		t.Fatalf("chaos shard has %d backups after repair, want 1", got)
	}
}

// TestCrashMidTransaction pins the crash-anywhere semantics under the
// per-operation locking: the primary dies while a transaction is open,
// the dead handle's calls fail with ErrCrashed, and failover serves the
// committed prefix with the in-flight transaction rolled back — Begin is
// not blocked by the dead transaction's slot.
func TestCrashMidTransaction(t *testing.T) {
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  testDB,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(0, 16); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(0, []byte("committed-first!")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Settle()

	doomed, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := doomed.SetRange(64, 8); err != nil {
		t.Fatal(err)
	}
	if err := doomed.Write(64, []byte("in-fligh")); err != nil {
		t.Fatal(err)
	}
	// The crash lands between the open transaction's operations.
	if err := c.CrashPrimary(); err != nil {
		t.Fatal(err)
	}
	if err := doomed.Commit(); err == nil {
		t.Fatal("commit on a crashed primary accepted")
	}
	if err := c.Failover(); err != nil {
		t.Fatal(err)
	}
	// The slot freed: a fresh transaction serves immediately.
	tx, err = c.Begin()
	if err != nil {
		t.Fatalf("begin after mid-tx crash failover: %v", err)
	}
	if err := tx.SetRange(128, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(128, []byte("takeover")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.ReadRaw(0, got)
	if string(got) != "committed-first!" {
		t.Fatalf("committed data lost: %q", got)
	}
	c.ReadRaw(64, got[:8])
	if !bytes.Equal(got[:8], make([]byte, 8)) {
		t.Fatalf("in-flight write survived the crash: %q", got[:8])
	}
}

// TestConcurrentSingleShard drives one cluster from many goroutines:
// Begin blocks until the previous transaction completes, so every
// transaction executes alone and the committed count equals the attempts.
func TestConcurrentSingleShard(t *testing.T) {
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  testDB,
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const each = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(g + 1)}, 64)
			for i := 0; i < each; i++ {
				off := (g*each + i) * 64
				tx, err := c.Begin()
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if err := tx.SetRange(off, 64); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					_ = tx.Abort()
					return
				}
				if err := tx.Write(off, payload); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					_ = tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Committed(); got != goroutines*each {
		t.Fatalf("Committed() = %d, want %d", got, goroutines*each)
	}
	// The interleaving is arbitrary but every committed write is intact.
	got := make([]byte, 64)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < each; i++ {
			c.ReadRaw((g*each+i)*64, got)
			if !bytes.Equal(got, bytes.Repeat([]byte{byte(g + 1)}, 64)) {
				t.Fatalf("goroutine %d txn %d: write torn", g, i)
			}
		}
	}
	// A handle used after completion fails cleanly instead of corrupting
	// the recycled transaction.
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
	c.Settle()
	if err := c.CrashPrimary(); err != nil {
		t.Fatalf("crash after concurrent run: %v", err)
	}
	if err := c.Failover(); err != nil {
		t.Fatalf("failover after concurrent run: %v", err)
	}
	if got := c.Committed(); got < goroutines*each {
		t.Fatalf("failover lost settled commits: %d < %d", got, goroutines*each)
	}
}
