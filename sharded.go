package repro

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/placement"
)

// ShardedCluster stripes a database across N independent replica groups.
// At construction shard i owns database offsets [i*ShardSize,
// (i+1)*ShardSize); the deployment is elastic, so AddShards + Rebalance
// (or RemoveShard) later re-home partition-aligned ranges onto other
// groups while the deployment serves — see rebalance.go. Each shard is a
// full Cluster — its own primary, backups, SAN link and simulated clocks
// — so the shards progress in parallel and aggregate throughput scales
// with the shard count (the ROADMAP's sharding lever).
//
// Operations are routed by offset through a versioned placement table
// (internal/placement): readers load the current table through an atomic
// pointer — no locks on the hot path — and a rebalance publishes a new
// version only at each range's cut-over. Ranges spanning an ownership
// boundary are split. A transaction that touches several shards commits
// on each touched shard independently, in shard order — there is no
// cross-shard atomic commit (the paper's API leaves concurrency control,
// and a fortiori distributed commit, to a separate layer); a mid-commit
// failure surfaces as a *PartialCommitError naming the shards that did
// and did not commit.
//
// # Concurrency
//
// A ShardedCluster may be driven from many goroutines at once: each shard
// serializes its own transactions on its per-shard lock, and transactions
// on different shards run genuinely in parallel — wall-clock throughput
// scales with min(shards, GOMAXPROCS). A sharded transaction holds every
// shard it has touched until Commit/Abort, acquiring shards in the order
// it first touches them; concurrent multi-shard transactions must touch
// shards in a consistent (ascending) order or risk deadlock, exactly like
// any ordered-locking scheme. Aggregate readers (Stats, Committed,
// NetTraffic, Elapsed) sample atomic counters and never block the shards.
type ShardedCluster struct {
	cfg       Config
	shardSize int
	dbSize    int

	// view is the atomically published routing state: the shard list and
	// the placement table, swapped together so a reader's (shards, table)
	// pair is always consistent. Hot paths load it once per span and
	// compare table pointers — not epochs — to detect a cut-over that
	// raced their shard acquisition.
	view atomic.Pointer[placeView]

	// admin serializes topology mutation (AddShards, RemoveShard, the
	// planning half of Rebalance) and guards layout + pending.
	admin   sync.Mutex
	layout  *placement.Layout
	pending []int // shards added since the last rebalance plan

	// mig is the range mover's state; see rebalance.go.
	mig migState

	// finishing counts sharded transactions inside finish(): between
	// releasing their per-shard transactions and publishing their dirty
	// marks. The cut-over barrier spin-waits it to zero after taking the
	// source's transaction slot, closing the release-before-mark window.
	finishing atomic.Int64

	// reg is the deployment-level metrics registry (rebalance
	// instruments and ring events live here; per-shard registries hang
	// off the member clusters). Nil with Config.Metrics off.
	reg     *obs.Registry
	mRanges *obs.Counter
	mBytes  *obs.Counter
	mStalls *obs.Counter
	mEpoch  *obs.Gauge

	// txPool recycles shardedTx values (with their per-shard open tables)
	// across Begin/Commit cycles so the steady-state transaction path
	// allocates nothing. The usual pool hazard applies: a Tx must not be
	// used after Commit/Abort.
	txPool sync.Pool
}

// placeView is one immutable routing snapshot: the shard list (tombstoned
// slots included, so shard ids index it forever) plus the placement table
// mapping global offsets onto it.
type placeView struct {
	shards []*Cluster
	table  *placement.Table
}

// v returns the current routing snapshot.
func (s *ShardedCluster) v() *placeView { return s.view.Load() }

// shardAlign keeps shard sizes page-friendly.
const shardAlign = 4096

// NewSharded builds a cluster of shards independent replica groups, each
// configured per cfg with a DBSize slice of the total. cfg.DBSize is the
// total database size across all shards; the per-shard slice is rounded up
// to a 4 KB multiple, so the deployment's Capacity may exceed DBSize —
// offsets are validated against the configured DBSize, and the rounding
// tail of the last shard is unused.
func NewSharded(cfg Config, shards int) (*ShardedCluster, error) {
	if shards < 1 {
		return nil, ErrShardCount
	}
	if cfg.DBSize <= 0 {
		return nil, fmt.Errorf("repro: invalid database size %d", cfg.DBSize)
	}
	size := (cfg.DBSize + shards - 1) / shards
	size = (size + shardAlign - 1) &^ (shardAlign - 1)
	sc := &ShardedCluster{cfg: cfg, shardSize: size, dbSize: cfg.DBSize}
	list := make([]*Cluster, 0, shards)
	for i := 0; i < shards; i++ {
		c, err := sc.newShard(i)
		if err != nil {
			return nil, err
		}
		list = append(list, c)
	}
	sc.layout = placement.NewLayout(shards, size, 0)
	sc.view.Store(&placeView{shards: list, table: sc.layout.Compile(1)})
	sc.mig.curFrom.Store(-1)
	sc.mig.curTo.Store(-1)
	if cfg.Metrics {
		sc.reg = obs.NewRegistry()
		sc.mRanges = sc.reg.Counter("place.ranges_moved")
		sc.mBytes = sc.reg.Counter("place.bytes_shipped")
		sc.mStalls = sc.reg.Counter("place.cutover_stalls")
		sc.mEpoch = sc.reg.Gauge("place.epoch")
		sc.mEpoch.Set(1)
	}
	sc.txPool.New = func() any {
		return &shardedTx{s: sc, open: make([]Tx, shards)}
	}
	return sc, nil
}

// newShard builds member cluster id from the deployment's template
// configuration (shared by construction and AddShards).
func (s *ShardedCluster) newShard(id int) (*Cluster, error) {
	scfg := s.cfg
	scfg.DBSize = s.shardSize
	if s.cfg.Durability.Enabled() {
		scfg.Durability.Dir = shardDurabilityDir(s.cfg.Durability.Dir, id)
	}
	c, err := New(scfg)
	if err != nil {
		return nil, fmt.Errorf("repro: shard %d: %w", id, err)
	}
	return c, nil
}

// Shards returns the shard slot count, drained tombstones included (ids
// stay valid for Token and the Admin selectors).
func (s *ShardedCluster) Shards() int { return len(s.v().shards) }

// Safety returns the commit discipline every shard was configured with.
func (s *ShardedCluster) Safety() Safety { return s.cfg.Safety }

// ShardSize returns the per-shard database size in bytes.
func (s *ShardedCluster) ShardSize() int { return s.shardSize }

// DBSize returns the configured total database size — the bound all
// offsets are validated against.
func (s *ShardedCluster) DBSize() int { return s.dbSize }

// Capacity returns the allocated size across all shards: ShardSize times
// Shards, at least DBSize (per-shard sizes are rounded up to 4 KB).
func (s *ShardedCluster) Capacity() int { return s.shardSize * len(s.v().shards) }

// ShardFor returns the shard currently owning database offset off, per
// the live placement table; the answer can change across a rebalance.
func (s *ShardedCluster) ShardFor(off int) int {
	sh, _, _ := s.v().table.Locate(off)
	return sh
}

// Shard exposes one shard's cluster (crash injection, traffic inspection,
// or single-shard transaction streams that skip the routing layer).
func (s *ShardedCluster) Shard(i int) *Cluster {
	v := s.v()
	if i < 0 || i >= len(v.shards) {
		return nil
	}
	return v.shards[i]
}

// checkRange validates [off, off+n) against the configured database size.
// The returned error wraps ErrBounds — the same sentinel a Cluster's
// out-of-range accesses return, keeping the two facades' error taxonomy
// identical.
func (s *ShardedCluster) checkRange(off, n int) error {
	if off < 0 || n < 0 || off+n > s.dbSize {
		return fmt.Errorf("repro: range [%d,+%d) outside the sharded database of %d bytes: %w", off, n, s.dbSize, ErrBounds)
	}
	return nil
}

// checkShard validates the Admin surface's optional shard selector
// against the shard count, defaulting to shard 0.
func (s *ShardedCluster) checkShard(shard []int) (int, error) {
	i, err := shardArg(shard)
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= len(s.v().shards) {
		return 0, ErrNoSuchShard
	}
	return i, nil
}

// split walks [off, off+n) ownership run by ownership run under one
// routing snapshot.
func (s *ShardedCluster) split(v *placeView, off, n int, f func(shard, shardOff, n int) error) error {
	for n > 0 {
		i, so, run := v.table.Locate(off)
		cnt := run
		if cnt > n {
			cnt = n
		}
		if err := f(i, so, cnt); err != nil {
			return err
		}
		off += cnt
		n -= cnt
	}
	return nil
}

// Load installs initial content across the owning shards. Loads landing
// on a range mid-migration are marked dirty for the delta resync; a load
// that raced a cut-over redoes itself against the new table (raw installs
// are idempotent), so the flipped-to shard never misses the bytes.
func (s *ShardedCluster) Load(off int, data []byte) error {
	if err := s.checkRange(off, len(data)); err != nil {
		return err
	}
	for {
		v := s.v()
		pos := 0
		err := s.split(v, off, len(data), func(i, so, n int) error {
			err := v.shards[i].Load(so, data[pos:pos+n])
			pos += n
			return err
		})
		if err != nil {
			return err
		}
		s.markDirty(off, len(data))
		if s.v().table == v.table {
			return nil
		}
	}
}

// Read performs a charged read across the owning shards. A read that
// raced a cut-over retries whole against the new table, so one call never
// mixes two placement epochs.
func (s *ShardedCluster) Read(off int, dst []byte) error {
	if err := s.checkRange(off, len(dst)); err != nil {
		return err
	}
	for {
		v := s.v()
		pos := 0
		err := s.split(v, off, len(dst), func(i, so, n int) error {
			err := v.shards[i].Read(so, dst[pos:pos+n])
			pos += n
			return err
		})
		if err != nil {
			return err
		}
		if s.v().table == v.table {
			return nil
		}
	}
}

// ReadAt performs a charged read across the owning shards under opts'
// consistency discipline. Each sub-span is routed on its own shard with
// that shard's token element as the floor (a token shorter than the shard
// count leaves the missing shards unconstrained, so any token — including
// one minted before a rebalance grew the deployment — is valid on any
// shard). The result reports the last sub-span's server; when
// ReadOpts.Replica pins a backup index, the pin applies on every shard.
func (s *ShardedCluster) ReadAt(off int, dst []byte, opts ReadOpts) (ReadResult, error) {
	if err := s.checkRange(off, len(dst)); err != nil {
		return ReadResult{}, err
	}
	for {
		var res ReadResult
		v := s.v()
		pos := 0
		err := s.split(v, off, len(dst), func(i, so, n int) error {
			var minSeq uint64
			if i < len(opts.Token) {
				minSeq = opts.Token[i]
			}
			r, err := v.shards[i].readAt(so, dst[pos:pos+n], opts, minSeq)
			pos += n
			if err != nil {
				return err
			}
			res = r
			return nil
		})
		if err != nil {
			return res, err
		}
		if s.v().table == v.table {
			return res, nil
		}
	}
}

// Token fills dst (growing it as needed) with the per-shard commit-
// sequence vector: element i is shard i's committed counter. Lock-free.
// After AddShards the vector grows; earlier (shorter) tokens stay valid —
// the missing shards are simply unconstrained.
func (s *ShardedCluster) Token(dst Token) Token {
	v := s.v()
	n := len(v.shards)
	if cap(dst) < n {
		dst = make(Token, n)
	}
	dst = dst[:n]
	for i, c := range v.shards {
		dst[i] = c.Committed()
	}
	return dst
}

// ReadRaw copies database bytes without charging simulated time. It
// panics if the span falls outside the database — the DB contract,
// identical on both facades (an out-of-range span used to no-op
// silently here, diverging from Cluster.ReadRaw).
func (s *ShardedCluster) ReadRaw(off int, dst []byte) {
	if off < 0 || off+len(dst) > s.dbSize {
		panic(fmt.Sprintf("repro: ReadRaw [%d,+%d) outside the database of %d bytes", off, len(dst), s.dbSize))
	}
	for {
		v := s.v()
		pos := 0
		_ = s.split(v, off, len(dst), func(i, so, n int) error {
			v.shards[i].ReadRaw(so, dst[pos:pos+n])
			pos += n
			return nil
		})
		if s.v().table == v.table {
			return
		}
	}
}

// Begin opens a sharded transaction: per-shard transactions open lazily on
// first touch — taking that shard's lock until the sharded transaction
// completes — and all touched shards commit (or abort) together, though
// not atomically across shards. The returned handle is recycled after
// Commit/Abort and must not be used past that point.
func (s *ShardedCluster) Begin() (Tx, error) {
	t := s.txPool.Get().(*shardedTx)
	t.done = false
	return t, nil
}

// dirtySpan records one global range a transaction mutated while a
// rebalance was active; finish() republishes them as dirty marks after
// the commits make the bytes visible.
type dirtySpan struct{ off, n int }

// shardedTx routes transactional operations by offset. The hot-path
// methods walk the placement split inline (closure-free) so a warmed
// transaction performs no allocation; marks is only appended while a
// rebalance is active.
type shardedTx struct {
	s     *ShardedCluster
	open  []Tx
	marks []dirtySpan
	done  bool
}

var _ Tx = (*shardedTx)(nil)

// at returns the transaction's handle on shard i, opening it on first
// touch. The open table grows lazily when a rebalance added shards after
// this handle was pooled.
func (t *shardedTx) at(v *placeView, i int) (Tx, error) {
	for len(t.open) < len(v.shards) {
		t.open = append(t.open, nil)
	}
	if t.open[i] == nil {
		tx, err := v.shards[i].Begin()
		if err != nil {
			return nil, fmt.Errorf("repro: shard %d: %w", i, err)
		}
		t.open[i] = tx
	}
	return t.open[i], nil
}

// mark records a mutated span for the delta resync when a range move is
// in flight. Appending here is op-time bookkeeping only; the spans become
// dirty marks in finish(), after commit makes the bytes visible.
func (t *shardedTx) mark(off, n int) {
	if !t.s.migActive() {
		return
	}
	t.marks = append(t.marks, dirtySpan{off: off, n: n})
}

// route resolves one span under the current snapshot and acquires the
// owning shard. Acquiring can block behind a cut-over barrier holding the
// shard's transaction slot; if routing flipped meanwhile, ok is false and
// the caller re-routes the span on the new table (the speculatively
// acquired shard simply stays open and idle until finish).
func (t *shardedTx) route(off int) (tx Tx, so, run int, ok bool, err error) {
	v := t.s.v()
	i, so, run := v.table.Locate(off)
	tx, err = t.at(v, i)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if t.s.v().table != v.table {
		return nil, 0, 0, false, nil
	}
	return tx, so, run, true, nil
}

func (t *shardedTx) SetRange(off, n int) error {
	if err := t.s.checkRange(off, n); err != nil {
		return err
	}
	for n > 0 {
		tx, so, run, ok, err := t.route(off)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		cnt := run
		if cnt > n {
			cnt = n
		}
		if err := tx.SetRange(so, cnt); err != nil {
			return err
		}
		off += cnt
		n -= cnt
	}
	return nil
}

func (t *shardedTx) Write(off int, src []byte) error {
	if err := t.s.checkRange(off, len(src)); err != nil {
		return err
	}
	pos := 0
	for pos < len(src) {
		tx, so, run, ok, err := t.route(off)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		cnt := run
		if cnt > len(src)-pos {
			cnt = len(src) - pos
		}
		if err := tx.Write(so, src[pos:pos+cnt]); err != nil {
			return err
		}
		t.mark(off, cnt)
		off += cnt
		pos += cnt
	}
	return nil
}

func (t *shardedTx) Read(off int, dst []byte) error {
	if err := t.s.checkRange(off, len(dst)); err != nil {
		return err
	}
	pos := 0
	for pos < len(dst) {
		tx, so, run, ok, err := t.route(off)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		cnt := run
		if cnt > len(dst)-pos {
			cnt = len(dst) - pos
		}
		if err := tx.Read(so, dst[pos:pos+cnt]); err != nil {
			return err
		}
		off += cnt
		pos += cnt
	}
	return nil
}

// Commit commits every touched shard in shard order. A mid-list failure
// leaves earlier shards committed and later ones aborted — cross-shard
// atomicity is out of scope (see the type comment) — and is reported as a
// *PartialCommitError naming both sets.
func (t *shardedTx) Commit() error { return t.finish(true) }

// Abort rolls every touched shard back.
func (t *shardedTx) Abort() error { return t.finish(false) }

func (t *shardedTx) finish(commit bool) error {
	if t.done {
		// Same sentinel a Cluster's completed handle returns, keeping the
		// facades' error taxonomy identical.
		return ErrTxDone
	}
	t.done = true
	s := t.s
	// Enter the finishing window before any per-shard release: the
	// cut-over barrier holds the source's transaction slot and then waits
	// for this counter, so every span below is marked dirty before the
	// mover trusts its dirty set. Aborted spans re-mark too — harmless
	// over-copy, never a miss.
	fin := len(t.marks) > 0
	if fin {
		s.finishing.Add(1)
	}
	var firstErr, ackErr error
	var pce *PartialCommitError
	for i, tx := range t.open {
		if tx == nil {
			continue
		}
		switch {
		case commit && firstErr == nil:
			err := tx.Commit()
			switch {
			case err == nil:
			case errors.Is(err, ErrSafetyUnavailable):
				// The shard committed locally but could not collect the
				// configured acknowledgements (backups failed
				// mid-transaction): its data is durable and visible, so
				// it belongs to the committed set. Keep committing the
				// remaining shards and surface the degradation.
				if ackErr == nil {
					ackErr = fmt.Errorf("repro: shard %d: %w", i, err)
				}
			default:
				// Build the partial-commit report only on the failure
				// path: the clean path stays allocation-free.
				pce = &PartialCommitError{Failed: i, Err: err}
				for j := 0; j < i; j++ {
					if t.open[j] != nil {
						pce.Committed = append(pce.Committed, j)
					}
				}
				firstErr = pce
			}
		default:
			err := tx.Abort()
			if pce != nil {
				pce.Aborted = append(pce.Aborted, i)
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("repro: shard %d: %w", i, err)
			}
		}
	}
	for i := range t.open {
		t.open[i] = nil
	}
	if fin {
		for _, m := range t.marks {
			s.markDirty(m.off, m.n)
		}
		s.finishing.Add(-1)
	}
	t.marks = t.marks[:0]
	s.txPool.Put(t)
	if s.migActive() {
		// Ride the commit stream: every completed transaction buys the
		// range mover a pacing slice (non-blocking; skipped when another
		// goroutine is already pumping).
		s.pump(false, false)
	}
	if firstErr == nil {
		firstErr = ackErr
	}
	return firstErr
}

// Settle lets every shard's pending write buffers (and any open
// group-commit batches) drain, and gives an active rebalance a paced
// pump — so single-stream drivers that settle between phases keep the
// mover deterministic.
func (s *ShardedCluster) Settle() {
	if s.migActive() {
		s.pump(true, false)
	}
	for _, c := range s.v().shards {
		c.Settle()
	}
}

// Flush seals and ships every shard's open group-commit batch.
func (s *ShardedCluster) Flush() error {
	var firstErr error
	for i, c := range s.v().shards {
		if err := c.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repro: shard %d: %w", i, err)
		}
	}
	return firstErr
}

// CrashPrimary kills the selected shard's primary (default shard 0); the
// other shards keep serving.
func (s *ShardedCluster) CrashPrimary(shard ...int) error {
	i, err := s.checkShard(shard)
	if err != nil {
		return err
	}
	return s.v().shards[i].CrashPrimary()
}

// Failover performs takeover on the selected shard (default shard 0).
func (s *ShardedCluster) Failover(shard ...int) error {
	i, err := s.checkShard(shard)
	if err != nil {
		return err
	}
	return s.v().shards[i].Failover()
}

// Repair restores the selected shard (default 0) to its configured
// replication degree, blocking until the transfer completes (the other
// shards keep serving throughout; so does the shard's own commit stream,
// which interleaves with the chunked transfer).
func (s *ShardedCluster) Repair(shard ...int) error {
	i, err := s.checkShard(shard)
	if err != nil {
		return err
	}
	return s.v().shards[i].Repair()
}

// RepairAsync starts an online repair of the selected shard (default 0)
// and returns immediately: the state transfer runs in the background of
// the shard's commit stream. Watch RepairProgress for completion.
func (s *ShardedCluster) RepairAsync(shard ...int) error {
	i, err := s.checkShard(shard)
	if err != nil {
		return err
	}
	return s.v().shards[i].RepairAsync()
}

// RepairProgress reports the selected shard's current (or most recent)
// online repair; the zero value is returned for an out-of-range selector.
func (s *ShardedCluster) RepairProgress(shard ...int) RepairProgress {
	i, err := s.checkShard(shard)
	if err != nil {
		return RepairProgress{}
	}
	return s.v().shards[i].RepairProgress()
}

// CrashBackup kills backup i of the selected shard (default shard 0).
func (s *ShardedCluster) CrashBackup(i int, shard ...int) error {
	si, err := s.checkShard(shard)
	if err != nil {
		return err
	}
	return s.v().shards[si].CrashBackup(i)
}

// PauseBackup partitions backup i of the selected shard (default 0) away
// from its SAN; ResumeBackup reconnects it.
func (s *ShardedCluster) PauseBackup(i int, shard ...int) error {
	si, err := s.checkShard(shard)
	if err != nil {
		return err
	}
	return s.v().shards[si].PauseBackup(i)
}

// ResumeBackup reconnects a paused backup of the selected shard (default
// 0); it stays gated until Repair or RepairAsync re-enrolls it.
func (s *ShardedCluster) ResumeBackup(i int, shard ...int) error {
	si, err := s.checkShard(shard)
	if err != nil {
		return err
	}
	return s.v().shards[si].ResumeBackup(i)
}

// Backups returns the selected shard's current backup count (default
// shard 0; every shard is configured to the same degree); zero for an
// out-of-range selector.
func (s *ShardedCluster) Backups(shard ...int) int {
	i, err := s.checkShard(shard)
	if err != nil {
		return 0
	}
	return s.v().shards[i].Backups()
}

// AutopilotEnabled reports whether the unattended failure loop is on
// (configured uniformly across shards).
func (s *ShardedCluster) AutopilotEnabled() bool {
	return s.v().shards[0].AutopilotEnabled()
}

// Committed returns the committed-transaction total across all shards.
// Never blocks the shards: per-shard counts are atomic.
func (s *ShardedCluster) Committed() uint64 {
	var total uint64
	for _, c := range s.v().shards {
		total += c.Committed()
	}
	return total
}

// Stats aggregates the per-shard transaction counters. Never blocks the
// shards.
func (s *ShardedCluster) Stats() Stats {
	var out Stats
	for _, c := range s.v().shards {
		st := c.Stats()
		out.Begins += st.Begins
		out.Commits += st.Commits
		out.Aborts += st.Aborts
	}
	return out
}

// NetTraffic aggregates SAN traffic across all shards' links.
func (s *ShardedCluster) NetTraffic() Traffic {
	var out Traffic
	for _, c := range s.v().shards {
		tr := c.NetTraffic()
		out.ModifiedBytes += tr.ModifiedBytes
		out.UndoBytes += tr.UndoBytes
		out.MetaBytes += tr.MetaBytes
		out.SyncBytes += tr.SyncBytes
		out.ControlBytes += tr.ControlBytes
	}
	return out
}

// PartitionPrimary severs the selected shard's primary (default shard 0)
// from the SAN (see Cluster.PartitionPrimary).
func (s *ShardedCluster) PartitionPrimary(shard ...int) error {
	i, err := s.checkShard(shard)
	if err != nil {
		return err
	}
	return s.v().shards[i].PartitionPrimary()
}

// AutopilotEvents aggregates the fault timelines of every shard's
// autopilot, with each event stamped with its owning shard.
func (s *ShardedCluster) AutopilotEvents() []FailureEvent {
	var out []FailureEvent
	for i, c := range s.v().shards {
		for _, e := range c.AutopilotEvents() {
			e.Shard = i
			out = append(out, e)
		}
	}
	return out
}

// Elapsed returns the wall-clock of the sharded deployment: the slowest
// shard's simulated time since the last measurement reset. Shards run in
// parallel on disjoint hardware, so aggregate throughput is total commits
// divided by this maximum — which is why it grows with the shard count.
// Never blocks the shards.
func (s *ShardedCluster) Elapsed() time.Duration {
	var max time.Duration
	for _, c := range s.v().shards {
		if e := c.Elapsed(); e > max {
			max = e
		}
	}
	return max
}

// ReplicaElapsed returns the wall-clock of the sharded deployment with
// replica reads in play: the maximum over every shard's ReplicaElapsed.
// Equals Elapsed when no backup served a read this interval.
func (s *ShardedCluster) ReplicaElapsed() time.Duration {
	var max time.Duration
	for _, c := range s.v().shards {
		if e := c.ReplicaElapsed(); e > max {
			max = e
		}
	}
	return max
}

// ResetMeasurement starts a fresh measured interval on every shard and
// zeroes the deployment-level counters (placement gauges persist).
func (s *ShardedCluster) ResetMeasurement() {
	for _, c := range s.v().shards {
		c.ResetMeasurement()
	}
	if s.reg != nil {
		s.reg.Reset()
	}
}

// Metrics merges every shard's observability snapshot plus the
// deployment-level registry (rebalance instruments and placement events,
// stamped shard -1): counters and gauges sum, same-name histograms merge
// bucket-wise, and each per-shard event is stamped with its owning shard
// before the timelines concatenate. The zero Snapshot with Config.Metrics
// off. Never blocks the shards.
func (s *ShardedCluster) Metrics() Metrics {
	var out Metrics
	for i, c := range s.v().shards {
		snap := c.Metrics()
		for j := range snap.Events {
			snap.Events[j].Shard = i
		}
		out.Merge(snap)
	}
	if s.reg != nil {
		snap := s.reg.Snapshot()
		for j := range snap.Events {
			snap.Events[j].Shard = -1
		}
		out.Merge(snap)
	}
	return out
}
