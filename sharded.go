package repro

import (
	"errors"
	"fmt"
	"time"
)

// ShardedCluster stripes a database across N independent replica groups by
// offset range: shard i owns database offsets [i*ShardSize, (i+1)*ShardSize).
// Each shard is a full Cluster — its own primary, backups, SAN link and
// simulated clocks — so the shards progress in parallel and aggregate
// throughput scales with the shard count (the ROADMAP's sharding lever).
//
// Operations are routed by offset; ranges spanning a shard boundary are
// split. A transaction that touches several shards commits on each touched
// shard independently, in shard order — there is no cross-shard atomic
// commit (the paper's API leaves concurrency control, and a fortiori
// distributed commit, to a separate layer).
type ShardedCluster struct {
	cfg       Config
	shards    []*Cluster
	shardSize int
	dbSize    int
}

// Sharded-cluster errors.
var (
	// ErrShardCount is returned for a non-positive shard count.
	ErrShardCount = errors.New("repro: shard count must be at least 1")
	// ErrNoSuchShard is returned for an out-of-range shard index.
	ErrNoSuchShard = errors.New("repro: no such shard")
)

// shardAlign keeps shard sizes page-friendly.
const shardAlign = 4096

// NewSharded builds a cluster of shards independent replica groups, each
// configured per cfg with a DBSize slice of the total. cfg.DBSize is the
// total database size across all shards.
func NewSharded(cfg Config, shards int) (*ShardedCluster, error) {
	if shards < 1 {
		return nil, ErrShardCount
	}
	if cfg.DBSize <= 0 {
		return nil, fmt.Errorf("repro: invalid database size %d", cfg.DBSize)
	}
	size := (cfg.DBSize + shards - 1) / shards
	size = (size + shardAlign - 1) &^ (shardAlign - 1)
	sc := &ShardedCluster{cfg: cfg, shardSize: size, dbSize: cfg.DBSize}
	for i := 0; i < shards; i++ {
		scfg := cfg
		scfg.DBSize = size
		c, err := New(scfg)
		if err != nil {
			return nil, fmt.Errorf("repro: shard %d: %w", i, err)
		}
		sc.shards = append(sc.shards, c)
	}
	return sc, nil
}

// Shards returns the shard count.
func (s *ShardedCluster) Shards() int { return len(s.shards) }

// ShardSize returns the per-shard database size in bytes.
func (s *ShardedCluster) ShardSize() int { return s.shardSize }

// DBSize returns the total database size across all shards.
func (s *ShardedCluster) DBSize() int { return s.shardSize * len(s.shards) }

// ShardFor returns the shard owning database offset off.
func (s *ShardedCluster) ShardFor(off int) int { return off / s.shardSize }

// Shard exposes one shard's cluster (crash injection, traffic inspection).
func (s *ShardedCluster) Shard(i int) *Cluster {
	if i < 0 || i >= len(s.shards) {
		return nil
	}
	return s.shards[i]
}

// split walks [off, off+n) shard by shard.
func (s *ShardedCluster) split(off, n int, f func(shard, shardOff, n int) error) error {
	if off < 0 || n < 0 || off+n > s.DBSize() {
		return fmt.Errorf("repro: range [%d,+%d) outside the sharded database", off, n)
	}
	for n > 0 {
		i := off / s.shardSize
		so := off % s.shardSize
		cnt := s.shardSize - so
		if cnt > n {
			cnt = n
		}
		if err := f(i, so, cnt); err != nil {
			return err
		}
		off += cnt
		n -= cnt
	}
	return nil
}

// Load installs initial content across the owning shards.
func (s *ShardedCluster) Load(off int, data []byte) error {
	pos := 0
	return s.split(off, len(data), func(i, so, n int) error {
		err := s.shards[i].Load(so, data[pos:pos+n])
		pos += n
		return err
	})
}

// Read performs a charged read across the owning shards.
func (s *ShardedCluster) Read(off int, dst []byte) error {
	pos := 0
	return s.split(off, len(dst), func(i, so, n int) error {
		err := s.shards[i].Read(so, dst[pos:pos+n])
		pos += n
		return err
	})
}

// ReadRaw copies database bytes without charging simulated time.
func (s *ShardedCluster) ReadRaw(off int, dst []byte) {
	pos := 0
	_ = s.split(off, len(dst), func(i, so, n int) error {
		s.shards[i].ReadRaw(so, dst[pos:pos+n])
		pos += n
		return nil
	})
}

// Begin opens a sharded transaction: per-shard transactions open lazily on
// first touch and all touched shards commit (or abort) together — though
// not atomically across shards.
func (s *ShardedCluster) Begin() (Tx, error) {
	return &shardedTx{s: s, open: make([]Tx, len(s.shards))}, nil
}

// shardedTx routes transactional operations by offset.
type shardedTx struct {
	s    *ShardedCluster
	open []Tx
	done bool
}

var _ Tx = (*shardedTx)(nil)

func (t *shardedTx) at(i int) (Tx, error) {
	if t.open[i] == nil {
		tx, err := t.s.shards[i].Begin()
		if err != nil {
			return nil, fmt.Errorf("repro: shard %d: %w", i, err)
		}
		t.open[i] = tx
	}
	return t.open[i], nil
}

func (t *shardedTx) SetRange(off, n int) error {
	return t.s.split(off, n, func(i, so, cnt int) error {
		tx, err := t.at(i)
		if err != nil {
			return err
		}
		return tx.SetRange(so, cnt)
	})
}

func (t *shardedTx) Write(off int, src []byte) error {
	pos := 0
	return t.s.split(off, len(src), func(i, so, cnt int) error {
		tx, err := t.at(i)
		if err != nil {
			return err
		}
		err = tx.Write(so, src[pos:pos+cnt])
		pos += cnt
		return err
	})
}

func (t *shardedTx) Read(off int, dst []byte) error {
	pos := 0
	return t.s.split(off, len(dst), func(i, so, cnt int) error {
		tx, err := t.at(i)
		if err != nil {
			return err
		}
		err = tx.Read(so, dst[pos:pos+cnt])
		pos += cnt
		return err
	})
}

// Commit commits every touched shard in shard order. An error leaves
// earlier shards committed and later ones aborted: cross-shard atomicity
// is out of scope (see the type comment).
func (t *shardedTx) Commit() error { return t.finish(true) }

// Abort rolls every touched shard back.
func (t *shardedTx) Abort() error { return t.finish(false) }

func (t *shardedTx) finish(commit bool) error {
	if t.done {
		return fmt.Errorf("repro: sharded transaction already completed")
	}
	t.done = true
	var firstErr error
	for i, tx := range t.open {
		if tx == nil {
			continue
		}
		var err error
		if commit && firstErr == nil {
			err = tx.Commit()
		} else {
			err = tx.Abort()
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repro: shard %d: %w", i, err)
		}
		t.open[i] = nil
	}
	return firstErr
}

// Settle lets every shard's pending write buffers drain.
func (s *ShardedCluster) Settle() {
	for _, c := range s.shards {
		c.Settle()
	}
}

// CrashPrimary kills shard i's primary; the other shards keep serving.
func (s *ShardedCluster) CrashPrimary(i int) error {
	if i < 0 || i >= len(s.shards) {
		return ErrNoSuchShard
	}
	return s.shards[i].CrashPrimary()
}

// Failover performs takeover on shard i.
func (s *ShardedCluster) Failover(i int) error {
	if i < 0 || i >= len(s.shards) {
		return ErrNoSuchShard
	}
	return s.shards[i].Failover()
}

// Repair restores shard i to its configured replication degree.
func (s *ShardedCluster) Repair(i int) error {
	if i < 0 || i >= len(s.shards) {
		return ErrNoSuchShard
	}
	return s.shards[i].Repair()
}

// Committed returns the committed-transaction total across all shards.
func (s *ShardedCluster) Committed() uint64 {
	var total uint64
	for _, c := range s.shards {
		total += c.Committed()
	}
	return total
}

// Stats aggregates the per-shard transaction counters.
func (s *ShardedCluster) Stats() Stats {
	var out Stats
	for _, c := range s.shards {
		st := c.Stats()
		out.Begins += st.Begins
		out.Commits += st.Commits
		out.Aborts += st.Aborts
	}
	return out
}

// NetTraffic aggregates SAN traffic across all shards' links.
func (s *ShardedCluster) NetTraffic() Traffic {
	var out Traffic
	for _, c := range s.shards {
		tr := c.NetTraffic()
		out.ModifiedBytes += tr.ModifiedBytes
		out.UndoBytes += tr.UndoBytes
		out.MetaBytes += tr.MetaBytes
	}
	return out
}

// Elapsed returns the wall-clock of the sharded deployment: the slowest
// shard's simulated time since the last measurement reset. Shards run in
// parallel on disjoint hardware, so aggregate throughput is total commits
// divided by this maximum — which is why it grows with the shard count.
func (s *ShardedCluster) Elapsed() time.Duration {
	var max time.Duration
	for _, c := range s.shards {
		if e := c.Elapsed(); e > max {
			max = e
		}
	}
	return max
}

// ResetMeasurement starts a fresh measured interval on every shard.
func (s *ShardedCluster) ResetMeasurement() {
	for _, c := range s.shards {
		c.ResetMeasurement()
	}
}
