// Crash-during-replica-read suite: randomized workloads where the primary
// or the currently serving backup dies between replica reads, exercising
// the re-route + failover path of every consistency mode. The session
// property under test is read monotonicity: a session's reads of a slot
// never go backwards — never older than the session's last acknowledged
// write of that slot, never older than a version the session has already
// observed, and never a version nobody wrote.
package repro_test

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"testing"

	"repro"
)

// TestCrashDuringQuorumReadRandomized: ≥40 randomized iterations; in each,
// a mixed write/quorum-read/ryw-read session loses its primary or the
// backup that served its last replica read at a random point mid-stream,
// fails over when needed, and keeps reading. Every acknowledged write
// (QuorumSafe, no group commit: Commit returns acked) must stay visible
// and session reads must stay monotonic across the crash.
func TestCrashDuringQuorumReadRandomized(t *testing.T) {
	const (
		iters = 44
		slots = 48
	)
	for it := 0; it < iters; it++ {
		t.Run(fmt.Sprintf("seed%d", it), func(t *testing.T) {
			db, err := repro.New(repro.Config{
				Version: repro.V3InlineLog,
				Backup:  repro.ActiveBackup,
				DBSize:  64 << 10,
				Backups: 3,
				Safety:  repro.QuorumSafe,
			})
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewPCG(0x9e3779b9, uint64(it)))

			var (
				tok      repro.Token
				acked    [slots]uint64 // last version this session committed, per slot
				seen     [slots]uint64 // highest version this session has read, per slot
				nextVer  uint64
				lastRead repro.ReadResult // where the last replica read was served
				buf      = make([]byte, 64)
			)
			write := func(slot int) {
				t.Helper()
				nextVer++
				tx, err := db.Begin()
				if err != nil {
					t.Fatal(err)
				}
				if err := tx.SetRange(slot*64, 64); err != nil {
					t.Fatal(err)
				}
				binary.BigEndian.PutUint64(buf[:8], nextVer)
				if err := tx.Write(slot*64, buf); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				acked[slot] = nextVer
				tok = db.Token(tok)
			}
			read := func(slot int, opts repro.ReadOpts) {
				t.Helper()
				res, err := db.ReadAt(slot*64, buf, opts)
				if err != nil {
					t.Fatalf("%v read slot %d: %v", opts.Mode, slot, err)
				}
				v := binary.BigEndian.Uint64(buf[:8])
				switch {
				case v > nextVer:
					t.Fatalf("%v read slot %d: version %d was never written (max %d)", opts.Mode, slot, v, nextVer)
				case v < acked[slot]:
					t.Fatalf("%v read slot %d: version %d older than acked write %d (served %+v)", opts.Mode, slot, v, acked[slot], res)
				case v < seen[slot]:
					t.Fatalf("%v read slot %d: version %d went backwards from %d (served %+v)", opts.Mode, slot, v, seen[slot], res)
				}
				seen[slot] = v
				lastRead = res
			}

			ops := 60 + r.IntN(60)
			crashAt := 10 + r.IntN(ops-10)
			crashPrimary := r.IntN(2) == 0
			crashed := false
			for i := 0; i < ops; i++ {
				if i == crashAt {
					// The crash lands between two reads of the same
					// session: either under the primary, or under the
					// backup that served the session's last replica read.
					if crashPrimary {
						if err := db.CrashPrimary(); err != nil {
							t.Fatal(err)
						}
						if err := db.Failover(); err != nil {
							t.Fatal(err)
						}
					} else {
						victim := lastRead.Replica - 1
						if victim < 0 {
							victim = r.IntN(3)
						}
						if err := db.CrashBackup(victim); err != nil {
							t.Fatal(err)
						}
					}
					crashed = true
				}
				slot := r.IntN(slots)
				switch r.IntN(4) {
				case 0:
					write(slot)
				case 1:
					read(slot, repro.ReadOpts{Mode: repro.ReadYourWrites, Token: tok})
				default:
					read(slot, repro.ReadOpts{Mode: repro.ReadQuorum})
				}
			}
			if !crashed {
				t.Fatal("crash point never fired")
			}

			// Final audit: on the degraded group every slot the session
			// wrote still reads back at exactly its last acked version,
			// through the quorum path.
			for slot := 0; slot < slots; slot++ {
				if acked[slot] == 0 {
					continue
				}
				res, err := db.ReadAt(slot*64, buf, repro.ReadOpts{Mode: repro.ReadQuorum})
				if err != nil {
					t.Fatalf("final quorum read slot %d: %v", slot, err)
				}
				if v := binary.BigEndian.Uint64(buf[:8]); v != acked[slot] {
					t.Fatalf("final quorum read slot %d: version %d, want %d (served %+v)", slot, v, acked[slot], res)
				}
			}
		})
	}
}
