package repro_test

import (
	"bytes"
	"errors"
	"testing"

	"repro"
)

const testDB = 4 << 20

func newCluster(t *testing.T, v repro.Version, b repro.BackupMode) *repro.Cluster {
	t.Helper()
	c, err := repro.New(repro.Config{Version: v, Backup: b, DBSize: testDB})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterLifecycleAllConfigs(t *testing.T) {
	configs := []struct {
		v repro.Version
		b repro.BackupMode
	}{
		{repro.V0Vista, repro.Standalone},
		{repro.V1MirrorCopy, repro.Standalone},
		{repro.V2MirrorDiff, repro.Standalone},
		{repro.V3InlineLog, repro.Standalone},
		{repro.V0Vista, repro.PassiveBackup},
		{repro.V1MirrorCopy, repro.PassiveBackup},
		{repro.V2MirrorDiff, repro.PassiveBackup},
		{repro.V3InlineLog, repro.PassiveBackup},
		{repro.V3InlineLog, repro.ActiveBackup},
	}
	for _, cfg := range configs {
		t.Run(cfg.v.String()+"/"+cfg.b.String(), func(t *testing.T) {
			c := newCluster(t, cfg.v, cfg.b)
			if err := c.Load(64, []byte("preloaded")); err != nil {
				t.Fatal(err)
			}
			tx, err := c.Begin()
			if err != nil {
				t.Fatal(err)
			}
			must(t, tx.SetRange(0, 16))
			must(t, tx.Write(0, []byte("first-txn-write!")))
			must(t, tx.Commit())

			tx, err = c.Begin()
			if err != nil {
				t.Fatal(err)
			}
			must(t, tx.SetRange(0, 16))
			must(t, tx.Write(0, []byte("aborted-garbage!")))
			must(t, tx.Abort())

			got := make([]byte, 16)
			c.ReadRaw(0, got)
			if string(got) != "first-txn-write!" {
				t.Fatalf("state %q", got)
			}
			if c.Committed() != 1 {
				t.Fatalf("Committed() = %d", c.Committed())
			}
			s := c.Stats()
			if s.Begins != 2 || s.Commits != 1 || s.Aborts != 1 {
				t.Fatalf("stats %+v", s)
			}
			if c.Elapsed() <= 0 {
				t.Fatal("no simulated time elapsed")
			}
		})
	}
}

func TestSettledFailoverKeepsEverything(t *testing.T) {
	for _, b := range []repro.BackupMode{repro.PassiveBackup, repro.ActiveBackup} {
		c := newCluster(t, repro.V3InlineLog, b)
		want := make([]byte, 64)
		for i := 0; i < 25; i++ {
			tx, err := c.Begin()
			if err != nil {
				t.Fatal(err)
			}
			must(t, tx.SetRange(i*64, 64))
			payload := bytes.Repeat([]byte{byte(i + 1)}, 64)
			must(t, tx.Write(i*64, payload))
			must(t, tx.Commit())
		}
		c.Settle()
		must(t, c.CrashPrimary())
		must(t, c.Failover())

		if got := c.Committed(); got != 25 {
			t.Fatalf("%s: %d commits survived, want 25", b, got)
		}
		for i := 0; i < 25; i++ {
			got := make([]byte, 64)
			c.ReadRaw(i*64, got)
			copy(want, bytes.Repeat([]byte{byte(i + 1)}, 64))
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: slot %d corrupted after failover", b, i)
			}
		}

		// The cluster keeps serving from the backup.
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		must(t, tx.SetRange(0, 8))
		must(t, tx.Write(0, []byte("takeover")))
		must(t, tx.Commit())
		if c.Committed() != 26 {
			t.Fatalf("post-takeover commit not counted: %d", c.Committed())
		}
	}
}

func TestCrashErrorFlow(t *testing.T) {
	c := newCluster(t, repro.V3InlineLog, repro.PassiveBackup)
	must(t, c.CrashPrimary())
	if _, err := c.Begin(); !errors.Is(err, repro.ErrCrashed) {
		t.Fatalf("Begin after crash: %v", err)
	}
	must(t, c.Failover())
	if _, err := c.Begin(); err != nil {
		t.Fatalf("Begin after failover: %v", err)
	}
}

func TestStandaloneFailoverRejected(t *testing.T) {
	c := newCluster(t, repro.V3InlineLog, repro.Standalone)
	must(t, c.CrashPrimary())
	if err := c.Failover(); !errors.Is(err, repro.ErrNoBackup) {
		t.Fatalf("standalone Failover: %v", err)
	}
}

func TestActiveRequiresV3(t *testing.T) {
	if _, err := repro.New(repro.Config{
		Version: repro.V1MirrorCopy,
		Backup:  repro.ActiveBackup,
		DBSize:  testDB,
	}); err == nil {
		t.Fatal("active backup with V1 accepted")
	}
}

func TestTrafficAccounting(t *testing.T) {
	c := newCluster(t, repro.V3InlineLog, repro.PassiveBackup)
	for i := 0; i < 50; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		must(t, tx.SetRange(i*128, 32))
		must(t, tx.Write(i*128, bytes.Repeat([]byte{7}, 32)))
		must(t, tx.Commit())
	}
	c.Settle()
	tr := c.NetTraffic()
	if tr.ModifiedBytes <= 0 || tr.UndoBytes <= 0 || tr.MetaBytes <= 0 {
		t.Fatalf("traffic breakdown %+v", tr)
	}
	if tr.Total() != tr.ModifiedBytes+tr.UndoBytes+tr.MetaBytes {
		t.Fatal("Total() inconsistent")
	}
	// Undo data is a before-image of every declared range: at least the
	// modified volume here (ranges == writes).
	if tr.UndoBytes < tr.ModifiedBytes {
		t.Fatalf("undo (%d) below modified (%d)", tr.UndoBytes, tr.ModifiedBytes)
	}

	c.ResetMeasurement()
	if got := c.NetTraffic().Total(); got != 0 {
		t.Fatalf("traffic after reset: %d", got)
	}
}

func TestReadChargesTime(t *testing.T) {
	c := newCluster(t, repro.V3InlineLog, repro.Standalone)
	c.ResetMeasurement()
	buf := make([]byte, 4096)
	must(t, c.Read(0, buf))
	if c.Elapsed() <= 0 {
		t.Fatal("charged read consumed no simulated time")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestFacadeChainedFailover exercises the full cluster life through the
// public API: commit, crash, fail over, repair, commit more, crash again,
// fail over again — nothing committed is ever lost (after settling).
func TestFacadeChainedFailover(t *testing.T) {
	c := newCluster(t, repro.V3InlineLog, repro.PassiveBackup)
	commit := func(slot int, payload string) {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		must(t, tx.SetRange(slot*32, 32))
		buf := make([]byte, 32)
		copy(buf, payload)
		must(t, tx.Write(slot*32, buf))
		must(t, tx.Commit())
	}
	for i := 0; i < 20; i++ {
		commit(i, "era-one")
	}
	c.Settle()
	must(t, c.CrashPrimary())
	must(t, c.Failover())
	must(t, c.Repair())
	for i := 20; i < 40; i++ {
		commit(i, "era-two")
	}
	c.Settle()
	must(t, c.CrashPrimary())
	must(t, c.Failover())
	if got := c.Committed(); got != 40 {
		t.Fatalf("%d commits survived two failovers, want 40", got)
	}
	buf := make([]byte, 7)
	c.ReadRaw(0, buf)
	if string(buf) != "era-one" {
		t.Fatalf("era-one data lost: %q", buf)
	}
	c.ReadRaw(39*32, buf)
	if string(buf) != "era-two" {
		t.Fatalf("era-two data lost: %q", buf)
	}
}

// TestFacadeTwoSafe: with 2-safe commits even an unsettled crash loses
// nothing.
func TestFacadeTwoSafe(t *testing.T) {
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  testDB,
		TwoSafe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		must(t, tx.SetRange(i*64, 8))
		must(t, tx.Write(i*64, []byte("2safe!!!")))
		must(t, tx.Commit())
	}
	must(t, c.CrashPrimary()) // no Settle on purpose
	must(t, c.Failover())
	if got := c.Committed(); got != 30 {
		t.Fatalf("2-safe cluster lost commits: %d of 30", got)
	}
}
