// Benchmarks regenerating every exhibit of the paper's evaluation, plus
// per-configuration throughput benchmarks that report both the simulated
// result (sim-tps — the paper's metric) and the simulator's own wall-clock
// speed (ns/op per transaction).
//
// Run all exhibits:
//
//	go test -bench=Benchmark -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/replication"
	"repro/internal/tpc"
	"repro/internal/vista"
)

// benchCfg keeps exhibit regeneration around a second per iteration.
var benchCfg = harness.RunConfig{
	DBSize:     16 << 20,
	DCTxns:     3000,
	OETxns:     1200,
	Warmup:     300,
	Seed:       1,
	SMPStreams: []int{1, 2, 4},
	SMPDBSize:  10 << 20,
}

// benchExhibit regenerates one paper table or figure per iteration.
func benchExhibit(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for b.Loop() {
		harness.ResetCache()
		if _, err := e.Run(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per exhibit in the paper's evaluation section.

func BenchmarkFig1Bandwidth(b *testing.B)         { benchExhibit(b, "fig1") }
func BenchmarkTable1Straightforward(b *testing.B) { benchExhibit(b, "table1") }
func BenchmarkTable2TrafficV0(b *testing.B)       { benchExhibit(b, "table2") }
func BenchmarkTable3Standalone(b *testing.B)      { benchExhibit(b, "table3") }
func BenchmarkTable4Passive(b *testing.B)         { benchExhibit(b, "table4") }
func BenchmarkTable5PassiveTraffic(b *testing.B)  { benchExhibit(b, "table5") }
func BenchmarkTable6PassiveVsActive(b *testing.B) { benchExhibit(b, "table6") }
func BenchmarkTable7ActiveTraffic(b *testing.B)   { benchExhibit(b, "table7") }
func BenchmarkTable8DatabaseSizes(b *testing.B)   { benchExhibit(b, "table8") }
func BenchmarkFig2SMPDebitCredit(b *testing.B)    { benchExhibit(b, "fig2") }
func BenchmarkFig3SMPOrderEntry(b *testing.B)     { benchExhibit(b, "fig3") }

// BenchmarkThroughput drives b.N transactions through each configuration
// of the paper's comparison, reporting the simulated throughput alongside
// the harness's wall-clock cost per transaction.
func BenchmarkThroughput(b *testing.B) {
	const db = 16 << 20
	cells := []struct {
		name string
		ver  vista.Version
		mode replication.Mode
		dc   bool
	}{
		{"DebitCredit/V0-Standalone", vista.V0Vista, replication.Standalone, true},
		{"DebitCredit/V3-Standalone", vista.V3InlineLog, replication.Standalone, true},
		{"DebitCredit/V0-Passive", vista.V0Vista, replication.Passive, true},
		{"DebitCredit/V1-Passive", vista.V1MirrorCopy, replication.Passive, true},
		{"DebitCredit/V2-Passive", vista.V2MirrorDiff, replication.Passive, true},
		{"DebitCredit/V3-Passive", vista.V3InlineLog, replication.Passive, true},
		{"DebitCredit/V3-Active", vista.V3InlineLog, replication.Active, true},
		{"OrderEntry/V3-Passive", vista.V3InlineLog, replication.Passive, false},
		{"OrderEntry/V3-Active", vista.V3InlineLog, replication.Active, false},
	}
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			pair, err := replication.NewPair(replication.Config{
				Mode:  c.mode,
				Store: vista.Config{Version: c.ver, DBSize: db},
			})
			if err != nil {
				b.Fatal(err)
			}
			var w tpc.Workload
			if c.dc {
				w, err = tpc.NewDebitCredit(db)
			} else {
				w, err = tpc.NewOrderEntry(db)
			}
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res, err := tpc.Run(pair, w, tpc.Options{
				Txns:      int64(b.N),
				Warmup:    200,
				Seed:      1,
				WarmCache: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.TPS, "sim-tps")
			b.ReportMetric(res.PerTxn(res.NetTotal()), "SAN-B/txn")
			b.ReportMetric(res.PerTxn(res.Net[mem.CatMeta]), "meta-B/txn")
		})
	}
}

// BenchmarkReplicationDegree drives the active N-replica group at each
// commit-safety level, reporting the simulated throughput cost of waiting
// for quorum (median backup) versus 2-safe (slowest backup) acks.
func BenchmarkReplicationDegree(b *testing.B) {
	const db = 16 << 20
	cells := []struct {
		name    string
		backups int
		safety  replication.Safety
	}{
		{"K3-1safe", 3, replication.OneSafe},
		{"K3-quorum", 3, replication.QuorumSafe},
		{"K3-2safe", 3, replication.TwoSafe},
		{"K1-1safe", 1, replication.OneSafe},
	}
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			group, err := replication.NewGroup(replication.Config{
				Mode:    replication.Active,
				Store:   vista.Config{Version: vista.V3InlineLog, DBSize: db},
				Backups: c.backups,
				Safety:  c.safety,
			})
			if err != nil {
				b.Fatal(err)
			}
			w, err := tpc.NewDebitCredit(db)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res, err := tpc.Run(group, w, tpc.Options{
				Txns: int64(b.N), Warmup: 200, Seed: 1, WarmCache: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.TPS, "sim-tps")
		})
	}
}

// BenchmarkShardedCluster measures the sharded front-end's aggregate
// throughput at 1 and 4 shards (same per-transaction work).
func BenchmarkShardedCluster(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(map[int]string{1: "1shard", 4: "4shards"}[shards], func(b *testing.B) {
			sc, err := repro.NewSharded(repro.Config{
				Version: repro.V3InlineLog,
				Backup:  repro.ActiveBackup,
				DBSize:  16 << 20,
			}, shards)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 64)
			for i := range payload {
				payload[i] = byte(i + 1)
			}
			sc.ResetMeasurement()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shard := i % shards
				slot := i / shards % (sc.ShardSize() / 64)
				off := shard*sc.ShardSize() + slot*64
				tx, err := sc.Begin()
				if err != nil {
					b.Fatal(err)
				}
				if err := tx.SetRange(off, 64); err != nil {
					b.Fatal(err)
				}
				if err := tx.Write(off, payload); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			if sec := sc.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "sim-tps")
			}
		})
	}
}

// BenchmarkParallelShards measures the simulator's own wall-clock
// transaction rate when shards are driven from parallel goroutines
// (b.RunParallel): each worker pins itself to one shard, so with S shards
// and at least S workers the txn/s metric scales with min(S, GOMAXPROCS).
// Compare the 1-shard and 4-shard txn/s on a multi-core host to see the
// wall-clock scaling the per-shard locking buys; ns/op is per transaction.
func BenchmarkParallelShards(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dshards", shards), func(b *testing.B) {
			sc, err := repro.NewSharded(repro.Config{
				Version: repro.V3InlineLog,
				Backup:  repro.ActiveBackup,
				DBSize:  16 << 20,
			}, shards)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 64)
			for i := range payload {
				payload[i] = byte(i + 1)
			}
			var nextWorker atomic.Int64
			slots := sc.ShardSize() / 128
			// Guarantee at least one worker per shard even when
			// GOMAXPROCS < shards, so the sim-tps aggregate always
			// covers the whole cluster.
			b.SetParallelism((shards + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			sc.ResetMeasurement()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Pin this worker to one shard: workers round-robin over
				// the shards, so disjoint shards run truly in parallel
				// and same-shard workers serialize on the shard's lock.
				shard := int(nextWorker.Add(1)-1) % shards
				base := shard * sc.ShardSize()
				slot := 0
				for pb.Next() {
					off := base + (slot%slots)*128
					slot++
					tx, err := sc.Begin()
					if err != nil {
						b.Error(err)
						return
					}
					if err := tx.SetRange(off, 64); err != nil {
						b.Error(err)
						return
					}
					if err := tx.Write(off, payload); err != nil {
						b.Error(err)
						return
					}
					if err := tx.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "wall-txn/s")
			}
			if sec := sc.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "sim-tps")
			}
		})
	}
}

// BenchmarkRebalance grows a 2-shard deployment to 4 and then 8 shards
// under the live Debit-Credit stream (tpc.RunRebalance) and reports the
// elasticity metrics: ranges and bytes migrated, baseline and worst
// mid-migration window throughput, and the exact acked-write audit —
// which must be zero for the rebalance to be sound. `make bench` parses
// these into BENCH_rebalance.json.
func BenchmarkRebalance(b *testing.B) {
	const db = 8 << 20
	var res tpc.RebalanceResult
	for b.Loop() {
		sc, err := repro.NewSharded(repro.Config{
			Version: repro.V3InlineLog,
			Backup:  repro.ActiveBackup,
			DBSize:  db,
			Backups: 2,
			Safety:  repro.QuorumSafe,
		}, 2)
		if err != nil {
			b.Fatal(err)
		}
		res, err = tpc.RunRebalance(sc, func(dbSize int) (tpc.Workload, error) {
			return tpc.NewDebitCredit(dbSize)
		}, tpc.RebalanceOptions{Warmup: 300, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.RangesMoved), "ranges-moved")
	b.ReportMetric(float64(res.BytesShipped), "bytes-shipped")
	b.ReportMetric(res.BaseTPS, "base-tps")
	b.ReportMetric(res.MinTPS, "min-window-tps")
	b.ReportMetric(float64(res.PlacementEpoch), "placement-epoch")
	b.ReportMetric(float64(res.LostAckedWrites), "lost-acked-writes")
}

// BenchmarkAvailability runs the crash→failover→online-repair timeline
// and reports the availability metrics of the recovering cluster: repair
// duration and bytes shipped, the worst throughput window while the state
// transfer shares the SAN with the commit stream, and the time back to
// full redundancy. `make bench` parses these into BENCH_availability.json.
func BenchmarkAvailability(b *testing.B) {
	const db = 8 << 20
	var res tpc.AvailabilityResult
	for b.Loop() {
		c, err := repro.New(repro.Config{
			Version: repro.V3InlineLog,
			Backup:  repro.ActiveBackup,
			DBSize:  db,
			Backups: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		w, err := tpc.NewDebitCredit(db)
		if err != nil {
			b.Fatal(err)
		}
		res, err = tpc.RunAvailability(c, w, tpc.AvailabilityOptions{Warmup: 300, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RepairDur.Seconds()*1e3, "sim-ms-repair")
	b.ReportMetric(float64(res.RepairBytes), "repair-bytes")
	b.ReportMetric(res.MinTPS, "min-window-tps")
	b.ReportMetric((res.RestoredAt-res.CrashAt).Seconds()*1e3, "sim-ms-to-restored")
}

// BenchmarkChaos runs the seeded unattended fault schedule against the
// autopilot and reports the chaos availability metrics: mean/max detection
// latency (MTTD), mean time-to-restored (MTTR), the worst throughput
// window, and the committed total. `make bench` parses these into
// BENCH_chaos.json.
func BenchmarkChaos(b *testing.B) {
	const db = 8 << 20
	var res tpc.ChaosResult
	for b.Loop() {
		c, err := repro.New(repro.Config{
			Version: repro.V3InlineLog,
			Backup:  repro.ActiveBackup,
			DBSize:  db,
			Backups: 3,
			Autopilot: repro.AutopilotConfig{
				HeartbeatPeriod: 50 * time.Microsecond,
				SuspectTimeout:  200 * time.Microsecond,
				AutoFailover:    true,
				AutoRepair:      true,
				Spares:          8,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		w, err := tpc.NewDebitCredit(db)
		if err != nil {
			b.Fatal(err)
		}
		res, err = tpc.RunChaos(c, w, tpc.ChaosOptions{Warmup: 300, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanMTTD.Seconds()*1e6, "sim-us-mttd")
	b.ReportMetric(res.MaxMTTD.Seconds()*1e6, "sim-us-mttd-max")
	b.ReportMetric(res.MeanMTTR.Seconds()*1e3, "sim-ms-mttr")
	b.ReportMetric(res.MinTPS, "min-window-tps")
	b.ReportMetric(float64(len(res.Events)), "faults-handled")
	b.ReportMetric(float64(res.Committed), "committed")
}

// BenchmarkKV drives the YCSB-style key-value mixes (tpc.RunKV over the
// kv layer) against a replicated cluster through the DB interface,
// reporting simulated operations per second and SAN bytes per operation.
// `make bench` parses all three mixes into BENCH_kv.json.
func BenchmarkKV(b *testing.B) {
	const db = 4 << 20
	for _, mix := range tpc.KVMixes() {
		b.Run(mix, func(b *testing.B) {
			c, err := repro.New(repro.Config{
				Version: repro.V3InlineLog,
				Backup:  repro.ActiveBackup,
				DBSize:  db,
				Backups: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			// RunKV preloads the keyspace and warms up internally, so
			// ns/op includes that fixed setup and is not comparable
			// across -benchtime settings; the reported sim-ops/s and
			// SAN-B/op metrics are measured after RunKV's own
			// ResetMeasurement and are the numbers to track.
			res, err := tpc.RunKV(c, tpc.KVOptions{
				Mix:     mix,
				Records: 2000,
				Ops:     int64(b.N),
				Warmup:  200,
				Seed:    1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.OPS, "sim-ops/s")
			b.ReportMetric(res.BytesPerOp(), "SAN-B/op")
			b.ReportMetric(float64(res.Keys), "live-keys")
		})
	}
}

// BenchmarkReadScale is the read-scaling acceptance cell: the read-heavy
// mix on a K=3 QuorumSafe group with group commit, once per read mode.
// The primary sub-bench is the baseline (all reads serialized through the
// primary); ryw/bounded/quorum route reads to backup views, and the
// reported sim-ops/s uses the replica-aware wall clock (primary and read-
// serving backups run in parallel). RunKV's built-in staleness audit
// feeds stale-read-violations, which `benchjson -check` requires to be
// exactly zero — every replica-served read must honor its mode's
// advertised bound. `make bench` parses these into BENCH_readscale.json.
func BenchmarkReadScale(b *testing.B) {
	const db = 8 << 20
	for _, mode := range []string{"primary", "ryw", "bounded", "quorum"} {
		b.Run(mode, func(b *testing.B) {
			c, err := repro.New(repro.Config{
				Version:     repro.V3InlineLog,
				Backup:      repro.ActiveBackup,
				DBSize:      db,
				Backups:     3,
				Safety:      repro.QuorumSafe,
				CommitBatch: 96,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := tpc.RunKV(c, tpc.KVOptions{
				Mix:            tpc.MixReadHeavy,
				Records:        2000,
				Ops:            int64(b.N),
				Warmup:         200,
				Seed:           1,
				ReadMode:       mode,
				StalenessBound: 128,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.OPS, "sim-ops/s")
			b.ReportMetric(3, "replicas")
			b.ReportMetric(float64(res.StaleViolations), "stale-read-violations")
			b.ReportMetric(float64(res.ReplicaReads), "replica-reads")
			b.ReportMetric(float64(res.PrimaryReads), "primary-reads")
		})
	}
}

// BenchmarkDurability runs the full-cluster kill-and-restart drill of
// the disk tier at three snapshot intervals: commit a seeded workload,
// power-fail every machine at once, tear the unsynced WAL tails (seeded
// mixed mode), and cold-restart over the same directory. Reported per
// interval: host wall time to recover, WAL records replayed on top of
// the winning snapshot, and — the enforced invariant — lost acked
// writes, which `benchjson -check` requires to be exactly zero.
// `make bench` parses these into BENCH_durability.json.
func BenchmarkDurability(b *testing.B) {
	const db = 4 << 20
	for _, every := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("snap%d", every), func(b *testing.B) {
			var res tpc.DurabilityResult
			for b.Loop() {
				dir := b.TempDir()
				open := func() (tpc.FaultDB, error) {
					return repro.New(repro.Config{
						Version:     repro.V3InlineLog,
						Backup:      repro.ActiveBackup,
						DBSize:      db,
						Backups:     2,
						Safety:      repro.QuorumSafe,
						CommitBatch: 8,
						Durability: repro.DurabilityConfig{
							Dir:           dir,
							SnapshotEvery: every,
						},
					})
				}
				w, err := tpc.NewDebitCredit(db)
				if err != nil {
					b.Fatal(err)
				}
				res, err = tpc.RunDurability(open, w, tpc.DurabilityOptions{
					Txns: 240,
					Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.RecoveryWall.Seconds()*1e3, "recovery-ms")
			b.ReportMetric(float64(res.Replayed), "replayed-records")
			b.ReportMetric(float64(res.LostAckedWrites), "lost-acked-writes")
		})
	}
}

// BenchmarkObs prices the observability layer where it matters: the K=3
// quorum batch-16 Debit-Credit commit path with the registry detached
// (commit-bare) and attached (commit-instrumented) — the acceptance
// bound is instrumented sim-tps within 5% of bare — and the wall-clock
// cost of one full Metrics() scrape against hot instruments and a
// populated event ring. Every cell reports metric-names (the registered
// instruments visible in the snapshot: zero bare, the full catalog
// instrumented), which `benchjson -check` requires in BENCH_obs.json.
func BenchmarkObs(b *testing.B) {
	const db = 8 << 20
	build := func(b *testing.B, metrics bool) (*repro.Cluster, func(int64)) {
		c, err := repro.New(repro.Config{
			Version:     repro.V3InlineLog,
			Backup:      repro.ActiveBackup,
			DBSize:      db,
			Backups:     3,
			Safety:      repro.QuorumSafe,
			CommitBatch: 16,
			Metrics:     metrics,
		})
		if err != nil {
			b.Fatal(err)
		}
		w, err := tpc.NewDebitCredit(db)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Populate(c.Load); err != nil {
			b.Fatal(err)
		}
		r := tpc.NewRand(1)
		return c, func(i int64) {
			tx, err := c.Begin()
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Txn(r, tx, i); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, metrics := range []bool{false, true} {
		name := "commit-bare"
		if metrics {
			name = "commit-instrumented"
		}
		b.Run(name, func(b *testing.B) {
			c, txn := build(b, metrics)
			for i := int64(0); i < 200; i++ {
				txn(i)
			}
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			c.Settle()
			c.ResetMeasurement()
			b.ResetTimer()
			for i := int64(0); i < int64(b.N); i++ {
				txn(200 + i)
			}
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if sec := c.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "sim-tps")
			}
			b.ReportMetric(float64(len(c.Metrics().Names())), "metric-names")
		})
	}
	b.Run("scrape", func(b *testing.B) {
		c, txn := build(b, true)
		for i := int64(0); i < 500; i++ {
			txn(i)
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
		c.Settle()
		// A failover and a repair put a realistic trace in the ring.
		if err := c.CrashPrimary(); err != nil {
			b.Fatal(err)
		}
		if err := c.Failover(); err != nil {
			b.Fatal(err)
		}
		if err := c.Repair(); err != nil {
			b.Fatal(err)
		}
		var snap repro.Metrics
		b.ResetTimer()
		for b.Loop() {
			snap = c.Metrics()
		}
		b.StopTimer()
		b.ReportMetric(float64(len(snap.Names())), "metric-names")
		b.ReportMetric(float64(len(snap.Events)), "ring-events")
	})
}

// BenchmarkFailover measures takeover cost: crash after a burst of
// transactions and time the backup's recovery, reporting the simulated
// takeover latency.
func BenchmarkFailover(b *testing.B) {
	const db = 8 << 20
	modes := []struct {
		name string
		ver  vista.Version
		mode replication.Mode
	}{
		{"Passive-V0", vista.V0Vista, replication.Passive},
		{"Passive-V1-FullCopy", vista.V1MirrorCopy, replication.Passive},
		{"Passive-V3", vista.V3InlineLog, replication.Passive},
		{"Active", vista.V3InlineLog, replication.Active},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			// The whole crash/failover cycle is timed (pausing the
			// timer around the setup would make Go's auto-scaling pay
			// thousands of unmeasured setups); the simulated takeover
			// latency is the reported metric of interest.
			var takeoverUS float64
			for b.Loop() {
				pair, err := replication.NewPair(replication.Config{
					Mode:  m.mode,
					Store: vista.Config{Version: m.ver, DBSize: db},
				})
				if err != nil {
					b.Fatal(err)
				}
				w, err := tpc.NewDebitCredit(db)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tpc.Run(pair, w, tpc.Options{Txns: 200, Seed: 1}); err != nil {
					b.Fatal(err)
				}
				if err := pair.Crash(); err != nil {
					b.Fatal(err)
				}
				if _, err := pair.Failover(); err != nil {
					b.Fatal(err)
				}
				// Failover promotes the backup to Primary() (with K=1
				// there are no remaining backups afterwards).
				takeoverUS = pair.Primary().Clock.Now().Duration().Seconds() * 1e6
			}
			b.ReportMetric(takeoverUS, "sim-us-takeover")
		})
	}
}
