package repro

import "time"

// DB is the package's storage abstraction: the full data-plane and
// observability surface of one replicated deployment, satisfied by both
// Cluster and ShardedCluster. Drivers, harness cells and applications
// written against DB run unchanged over a single replica group or a
// sharded front-end — a one-shard ShardedCluster and a Cluster are
// interchangeable, down to the error taxonomy (see errors.go).
//
// The kv layer (package repro/kv) builds a typed key-value API on top of
// any DB, laying its index and record heap out inside the replicated
// bytes so the whole keyspace inherits the deployment's fault tolerance.
type DB interface {
	// Begin opens a transaction on the serving node; the handle is valid
	// until Commit or Abort. A dead primary refuses with ErrCrashed, a
	// group below its safety level with ErrSafetyUnavailable, a deposed
	// primary with ErrLeaseExpired. A Cluster refuses at Begin itself; a
	// ShardedCluster opens per-shard transactions lazily, so the same
	// sentinels surface at the first operation touching the affected
	// shard — test with errors.Is either way.
	Begin() (Tx, error)
	// Read performs a charged, non-transactional read, serialized with
	// the deployment's transactions. Returns ErrBounds outside the
	// database and ErrCrashed on a dead primary.
	Read(off int, dst []byte) error
	// ReadAt performs a charged read under an explicit consistency
	// discipline, letting backup replicas serve when the mode permits
	// (active scheme, fully enrolled replicas only — a mid-join replica
	// never serves). The zero ReadOpts is exactly Read, bit-for-bit in
	// the sim metrics. ReadYourWrites routes to any backup whose applied
	// sequence has reached the caller's token, ReadBounded to any within
	// ReadOpts.Bound commit sequences of the primary, ReadQuorum reads a
	// majority and serves the max-sequence view with read repair; each
	// falls back to the primary when no backup qualifies. Errors as Read,
	// plus ErrReplicaUnavailable for pinned reads (ReadOpts.Replica > 0)
	// the pinned replica cannot serve.
	ReadAt(off int, dst []byte, opts ReadOpts) (ReadResult, error)
	// Token fills dst (growing it as needed) with the deployment's
	// per-shard commit-sequence vector — the floor a subsequent
	// ReadYourWrites read must observe. Capture it after Commit returns;
	// merge tokens across shards/sessions with Token.Merge. Never blocks.
	Token(dst Token) Token
	// ReplicaElapsed returns the longest simulated time any node —
	// primary or read-serving backup, across all shards — has accumulated
	// since the last measurement reset: the wall time of a read-scaled
	// workload. Equals Elapsed when no backup served a read. Never
	// blocks the shards.
	ReplicaElapsed() time.Duration
	// ReadRaw copies database bytes without charging simulated time
	// (test oracles, state dumps). It panics if [off, off+len(dst))
	// falls outside DBSize() — identically on both facades.
	ReadRaw(off int, dst []byte)
	// Load installs initial content without charging simulated time,
	// keeping every replica's copy in sync (the initial transfer that
	// precedes failure-free operation). Returns ErrBounds outside the
	// database.
	Load(off int, data []byte) error
	// Flush seals and ships any open group-commit batch (see
	// Config.CommitBatch); a no-op when group commit is off.
	Flush() error
	// Settle lets the deployment sit idle long enough for everything in
	// flight to drain; a crash after Settle loses nothing.
	Settle()
	// Committed returns the committed-transaction count recorded in the
	// serving node's reliable memory (summed across shards). Never
	// blocks.
	Committed() uint64
	// Stats returns the serving deployment's transaction counters.
	// Never blocks.
	Stats() Stats
	// NetTraffic returns the SAN bytes shipped since the last
	// measurement reset, by category. Never blocks.
	NetTraffic() Traffic
	// Elapsed returns the simulated time consumed since the last
	// measurement reset (the slowest shard's clock on a sharded
	// deployment). Never blocks.
	Elapsed() time.Duration
	// ResetMeasurement starts a fresh measured interval: statistics
	// zeroed, cache and link state preserved.
	ResetMeasurement()
	// AutopilotEvents returns the fault timeline the unattended failure
	// loop recorded; empty with Config.Autopilot off.
	AutopilotEvents() []FailureEvent
	// Metrics snapshots the deployment's observability registry —
	// counters, gauges, latency histograms and the failure/repair event
	// ring; the zero Snapshot with Config.Metrics off. A sharded
	// deployment merges its per-shard registries, stamping each event
	// with its owning shard. Never blocks.
	Metrics() Metrics
	// DBSize returns the configured database size — the bound every
	// offset is validated against.
	DBSize() int
	// Capacity returns the allocated size, at least DBSize (a sharded
	// deployment rounds each shard up to a 4 KB multiple; the rounding
	// tail is unaddressable).
	Capacity() int
	// Shards returns the number of independent replica groups serving
	// the database: 1 for a Cluster.
	Shards() int
}

// Admin is the harmonized fault-injection and recovery surface both
// facades share. Every method takes an optional trailing shard selector:
// omitted, it targets shard 0 — which on a Cluster is the whole
// deployment, making a Cluster and a one-shard ShardedCluster
// interchangeable for chaos drivers and conformance suites. An
// out-of-range selector (any index above 0 on a Cluster) returns
// ErrNoSuchShard; methods without an error return the zero value.
type Admin interface {
	// CrashPrimary kills the selected shard's primary mid-flight;
	// doubled stores still sitting in its write buffers are lost (the
	// paper's 1-safe vulnerability window).
	CrashPrimary(shard ...int) error
	// PartitionPrimary severs the selected shard's primary from the SAN
	// without killing it (the no-split-brain demonstration; see
	// Config.Autopilot).
	PartitionPrimary(shard ...int) error
	// Failover promotes the most-caught-up surviving backup of the
	// selected shard. Returns ErrNoBackup when no survivor exists.
	Failover(shard ...int) error
	// Repair restores the selected shard to its configured replication
	// degree, blocking until the incremental transfer completes.
	Repair(shard ...int) error
	// RepairAsync starts an online repair of the selected shard and
	// returns immediately; watch RepairProgress for completion.
	RepairAsync(shard ...int) error
	// RepairProgress reports the selected shard's current (or most
	// recent) online repair.
	RepairProgress(shard ...int) RepairProgress
	// CrashBackup kills backup i of the selected shard.
	CrashBackup(i int, shard ...int) error
	// PauseBackup partitions backup i of the selected shard away from
	// the SAN; ResumeBackup reconnects it (gated until re-enrolled by
	// Repair or RepairAsync).
	PauseBackup(i int, shard ...int) error
	// ResumeBackup reconnects a paused backup of the selected shard.
	ResumeBackup(i int, shard ...int) error
	// Backups returns the selected shard's current backup count.
	Backups(shard ...int) int
	// AutopilotEnabled reports whether the unattended failure loop is
	// on (per-shard on a sharded deployment, configured uniformly).
	AutopilotEnabled() bool
	// Durability returns the disk tier's status for the selected shard;
	// the zero value with Config.Durability off.
	Durability(shard ...int) DurabilityStatus
	// PowerFail kills every machine of the selected shard at once —
	// backups included; nothing past each replica's last fdatasync is
	// guaranteed on disk. Returns ErrNoDurability without the disk
	// tier. A fresh New/NewSharded over the same Durability.Dir
	// performs the cold restart.
	PowerFail(shard ...int) error
	// WALTails returns, after a PowerFail, the selected shard's live
	// WAL segments and their synced offsets — the handles a crash
	// harness uses to tear the unsynced tail.
	WALTails(shard ...int) []WALTail
	// Close cleanly shuts the disk tier (flush + close every WAL);
	// a no-op without Config.Durability.
	Close() error

	// AddShards appends n empty shard groups to an elastic deployment
	// and returns their ids. The new shards serve no data until a
	// Rebalance moves ranges onto them. ErrNotElastic on a Cluster.
	AddShards(n int) ([]int, error)
	// RemoveShard drains every range off the selected shard (an online
	// rebalance onto the survivors) and tombstones it: the id stays
	// valid for Token/Stats indexing but owns no data and joins no
	// future plan. ErrNotElastic on a Cluster.
	RemoveShard(shard int) error
	// Rebalance plans the minimal-move redistribution toward the shards
	// added since the last rebalance and blocks until every range has
	// migrated and cut over. A no-op (nil) when the placement is already
	// balanced. ErrNotElastic on a Cluster.
	Rebalance() error
	// RebalanceAsync starts the rebalance and returns immediately; the
	// range mover then rides the deployment's commit stream (each
	// Commit/Abort and Settle pumps it). Watch RebalanceProgress.
	RebalanceAsync() error
	// RebalanceProgress reports the current (or most recent) rebalance.
	RebalanceProgress() RebalanceProgress
	// PlacementEpoch returns the routing table's version: 1 at
	// construction, +1 at every range cut-over. Constant 1 on a Cluster.
	PlacementEpoch() uint64
}

// Compile-time assertions: both facades satisfy the full redesigned
// surface.
var (
	_ DB    = (*Cluster)(nil)
	_ DB    = (*ShardedCluster)(nil)
	_ Admin = (*Cluster)(nil)
	_ Admin = (*ShardedCluster)(nil)
)

// shardArg resolves the optional trailing shard selector of the Admin
// surface: no argument targets shard 0, one argument targets that shard,
// more than one is rejected. Validation against the shard count is the
// caller's.
func shardArg(shard []int) (int, error) {
	switch len(shard) {
	case 0:
		return 0, nil
	case 1:
		return shard[0], nil
	default:
		return 0, ErrNoSuchShard
	}
}
