// Conformance suite for the DB contract: one table-driven set of
// behavioral assertions — begin/commit/read-back, settle semantics, the
// error taxonomy of errors.go, the harmonized Admin fault surface — run
// identically against a Cluster, a 1-shard ShardedCluster and a 4-shard
// ShardedCluster. Anything that passes here is interchangeable behind the
// repro.DB + repro.Admin interfaces.
package repro_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"

	"repro"
	"repro/kv"
)

// fullDB is the combined surface the suite exercises.
type fullDB interface {
	repro.DB
	repro.Admin
}

// conformanceTargets builds the facade matrix for one configuration.
func conformanceTargets(t *testing.T, cfg repro.Config) map[string]fullDB {
	t.Helper()
	mk := func(shards int) fullDB {
		if shards == 0 {
			c, err := repro.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		sc, err := repro.NewSharded(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	// rebalanced4 reaches the 4-shard shape through the elastic path — a
	// 2-shard deployment grown online (AddShards + Rebalance) — so every
	// contract assertion also holds on a placement the range mover built.
	mkReb := func() fullDB {
		sc, err := repro.NewSharded(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.AddShards(2); err != nil {
			t.Fatal(err)
		}
		if err := sc.Rebalance(); err != nil {
			t.Fatal(err)
		}
		return sc
	}
	return map[string]fullDB{
		"cluster":     mk(0),
		"sharded1":    mk(1),
		"sharded4":    mk(4),
		"rebalanced4": mkReb(),
	}
}

func replicatedCfg() repro.Config {
	return repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  256 << 10,
		Backups: 2,
		Safety:  repro.QuorumSafe,
	}
}

// TestDBConformanceReadBack: transactional writes spanning the whole
// offset space (including shard boundaries) commit and read back through
// every read path, and the observability counters move.
func TestDBConformanceReadBack(t *testing.T) {
	for name, db := range conformanceTargets(t, replicatedCfg()) {
		t.Run(name, func(t *testing.T) {
			size := db.DBSize()
			if size != 256<<10 {
				t.Fatalf("DBSize = %d", size)
			}
			if db.Capacity() < size {
				t.Fatalf("Capacity %d below DBSize %d", db.Capacity(), size)
			}
			// A spanning write: one record every 8 KB plus one straddling
			// the middle (a shard boundary on the sharded facades).
			pattern := func(i int) []byte { return []byte(fmt.Sprintf("record-%04d!", i)) }
			offs := []int{0}
			for off := 8 << 10; off+16 < size; off += 8 << 10 {
				if off == size/2 {
					continue // the straddling record below covers it
				}
				offs = append(offs, off)
			}
			offs = append(offs, size/2-6, size-12)
			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			for i, off := range offs {
				if err := tx.SetRange(off, 12); err != nil {
					t.Fatal(err)
				}
				if err := tx.Write(off, pattern(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Transactional read-back before commit.
			buf := make([]byte, 12)
			if err := tx.Read(offs[1], buf); err != nil || !bytes.Equal(buf, pattern(1)) {
				t.Fatalf("tx.Read = %q, %v", buf, err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if got := db.Committed(); got == 0 {
				t.Fatal("Committed did not move")
			}
			if st := db.Stats(); st.Commits == 0 || st.Begins == 0 {
				t.Fatalf("Stats did not move: %+v", st)
			}
			if db.Elapsed() <= 0 {
				t.Fatal("Elapsed did not move")
			}
			if db.NetTraffic().Total() == 0 {
				t.Fatal("replicated deployment shipped no SAN bytes")
			}
			for i, off := range offs {
				if err := db.Read(off, buf); err != nil || !bytes.Equal(buf, pattern(i)) {
					t.Fatalf("Read(%d) = %q, %v", off, buf, err)
				}
				db.ReadRaw(off, buf)
				if !bytes.Equal(buf, pattern(i)) {
					t.Fatalf("ReadRaw(%d) = %q", off, buf)
				}
			}
			db.ResetMeasurement()
			if db.Elapsed() != 0 {
				t.Fatal("ResetMeasurement did not re-pin the clock")
			}
		})
	}
}

// TestDBConformanceSettleAndFailover: commit, settle, crash, fail over —
// everything committed before Settle is on the survivor, on every facade,
// through the no-argument Admin surface (shard 0).
func TestDBConformanceSettleAndFailover(t *testing.T) {
	for name, db := range conformanceTargets(t, replicatedCfg()) {
		t.Run(name, func(t *testing.T) {
			payload := []byte("must survive the crash")
			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.SetRange(64, len(payload)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(64, payload); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			db.Settle()
			if err := db.CrashPrimary(); err != nil {
				t.Fatal(err)
			}
			if err := db.Failover(); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(payload))
			if err := db.Read(64, got); err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("after failover Read = %q, %v", got, err)
			}
			// The cluster is degraded but repairable.
			if err := db.Repair(); err != nil {
				t.Fatalf("Repair after failover: %v", err)
			}
			if got := db.Backups(); got != 2 {
				t.Fatalf("Backups after repair = %d, want 2", got)
			}
		})
	}
}

// TestDBConformanceErrorTaxonomy: the errors.go table, facade by facade.
func TestDBConformanceErrorTaxonomy(t *testing.T) {
	for name, db := range conformanceTargets(t, replicatedCfg()) {
		t.Run(name, func(t *testing.T) {
			size := db.DBSize()
			buf := make([]byte, 16)

			// Bounds: every access path returns ErrBounds.
			if err := db.Read(size-8, buf); !errors.Is(err, repro.ErrBounds) {
				t.Fatalf("out-of-range Read = %v", err)
			}
			if err := db.Load(-1, buf); !errors.Is(err, repro.ErrBounds) {
				t.Fatalf("out-of-range Load = %v", err)
			}
			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.SetRange(size-8, 16); !errors.Is(err, repro.ErrBounds) {
				t.Fatalf("out-of-range SetRange = %v", err)
			}
			if err := tx.Read(size, buf); !errors.Is(err, repro.ErrBounds) {
				t.Fatalf("out-of-range tx.Read = %v", err)
			}
			// Writes outside any declared range.
			if err := tx.SetRange(0, 8); err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(1024, buf[:8]); !errors.Is(err, repro.ErrWriteOutsideRange) {
				t.Fatalf("undeclared Write = %v", err)
			}
			if err := tx.Write(0, buf[:8]); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Completed handles refuse further work.
			if err := tx.Commit(); !errors.Is(err, repro.ErrTxDone) {
				t.Fatalf("double Commit = %v", err)
			}
			if err := tx.Abort(); !errors.Is(err, repro.ErrTxDone) {
				t.Fatalf("Abort after Commit = %v", err)
			}

			// Shard selectors: out of range on every Admin method.
			bad := db.Shards() + 3
			if err := db.CrashPrimary(bad); !errors.Is(err, repro.ErrNoSuchShard) {
				t.Fatalf("CrashPrimary(bad shard) = %v", err)
			}
			if err := db.Failover(bad); !errors.Is(err, repro.ErrNoSuchShard) {
				t.Fatalf("Failover(bad shard) = %v", err)
			}
			if err := db.Repair(bad); !errors.Is(err, repro.ErrNoSuchShard) {
				t.Fatalf("Repair(bad shard) = %v", err)
			}
			if err := db.RepairAsync(bad); !errors.Is(err, repro.ErrNoSuchShard) {
				t.Fatalf("RepairAsync(bad shard) = %v", err)
			}
			if err := db.PartitionPrimary(bad); !errors.Is(err, repro.ErrNoSuchShard) {
				t.Fatalf("PartitionPrimary(bad shard) = %v", err)
			}
			if err := db.CrashBackup(0, bad); !errors.Is(err, repro.ErrNoSuchShard) {
				t.Fatalf("CrashBackup(bad shard) = %v", err)
			}
			if err := db.PauseBackup(0, bad); !errors.Is(err, repro.ErrNoSuchShard) {
				t.Fatalf("PauseBackup(bad shard) = %v", err)
			}
			if err := db.ResumeBackup(0, bad); !errors.Is(err, repro.ErrNoSuchShard) {
				t.Fatalf("ResumeBackup(bad shard) = %v", err)
			}
			if got := db.Backups(bad); got != 0 {
				t.Fatalf("Backups(bad shard) = %d", got)
			}
			if p := db.RepairProgress(bad); p != (repro.RepairProgress{}) {
				t.Fatalf("RepairProgress(bad shard) = %+v", p)
			}

			// Nothing to repair on a healthy deployment.
			if err := db.Repair(); !errors.Is(err, repro.ErrNotRepairable) {
				t.Fatalf("Repair on healthy = %v", err)
			}

			// Crash: the transaction path and reads refuse with
			// ErrCrashed until failover. A Cluster refuses at Begin; a
			// ShardedCluster's lazy per-shard Begin defers the same
			// sentinel to the first touch of the dead shard (the DB
			// contract admits both).
			if err := db.CrashPrimary(); err != nil {
				t.Fatal(err)
			}
			if ctx, err := db.Begin(); err == nil {
				if err := ctx.SetRange(0, 8); !errors.Is(err, repro.ErrCrashed) {
					t.Fatalf("first touch on crashed shard = %v", err)
				}
				_ = ctx.Abort()
			} else if !errors.Is(err, repro.ErrCrashed) {
				t.Fatalf("Begin on crashed = %v", err)
			}
			if err := db.Read(0, buf); !errors.Is(err, repro.ErrCrashed) {
				t.Fatalf("Read on crashed = %v", err)
			}
			if err := db.Failover(); err != nil {
				t.Fatal(err)
			}
			// Quorum still refuses service on the degraded group — the
			// admission-side face of the same sentinel (deferred to the
			// first shard touch on the lazy sharded Begin).
			if dtx, err := db.Begin(); err == nil {
				if err := dtx.SetRange(0, 8); !errors.Is(err, repro.ErrSafetyUnavailable) {
					t.Fatalf("first touch on degraded quorum group = %v", err)
				}
				_ = dtx.Abort()
			} else if !errors.Is(err, repro.ErrSafetyUnavailable) {
				t.Fatalf("Begin on degraded quorum group = %v", err)
			}
			if err := db.Repair(); err != nil {
				t.Fatal(err)
			}
			tx2, err := db.Begin()
			if err != nil {
				t.Fatalf("Begin after repair = %v", err)
			}
			if err := tx2.Abort(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDBConformanceReadRawBounds: an out-of-range ReadRaw panics with the
// same contract on both facades (it used to silently no-op on the sharded
// one).
func TestDBConformanceReadRawBounds(t *testing.T) {
	for name, db := range conformanceTargets(t, replicatedCfg()) {
		t.Run(name, func(t *testing.T) {
			mustPanic := func(f func()) {
				t.Helper()
				defer func() {
					if recover() == nil {
						t.Fatal("out-of-range ReadRaw did not panic")
					}
				}()
				f()
			}
			buf := make([]byte, 32)
			mustPanic(func() { db.ReadRaw(db.DBSize()-8, buf) })
			mustPanic(func() { db.ReadRaw(-1, buf) })
			// In range is fine, to the last byte.
			db.ReadRaw(db.DBSize()-len(buf), buf)
		})
	}
}

// TestDBConformanceNoBackup: Failover without a survivor returns
// ErrNoBackup on every facade.
func TestDBConformanceNoBackup(t *testing.T) {
	cfg := repro.Config{Version: repro.V3InlineLog, Backup: repro.Standalone, DBSize: 64 << 10}
	for name, db := range conformanceTargets(t, cfg) {
		t.Run(name, func(t *testing.T) {
			if err := db.CrashPrimary(); err != nil {
				t.Fatal(err)
			}
			if err := db.Failover(); !errors.Is(err, repro.ErrNoBackup) {
				t.Fatalf("standalone Failover = %v", err)
			}
		})
	}
}

// TestKVRecoveryRandomized is the key-level committed-prefix property:
// across randomized workloads and crash points, every acknowledged Put is
// readable after crash → failover → kv.Open on the survivor (quorum
// commit), and every acknowledged Delete stays deleted. Runs the same
// property over a Cluster and a 4-shard ShardedCluster.
func TestKVRecoveryRandomized(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	for _, shards := range []int{1, 4} {
		for it := 0; it < iters; it++ {
			name := fmt.Sprintf("shards%d/seed%d", shards, it)
			t.Run(name, func(t *testing.T) {
				cfg := replicatedCfg()
				var db fullDB
				var err error
				if shards == 1 {
					db, err = repro.New(cfg)
				} else {
					db, err = repro.NewSharded(cfg, shards)
				}
				if err != nil {
					t.Fatal(err)
				}
				store, err := kv.Open(db)
				if err != nil {
					t.Fatal(err)
				}
				r := rand.New(rand.NewPCG(uint64(it)*2654435761, uint64(shards)))
				model := map[string]string{}
				key := func() []byte { return []byte(fmt.Sprintf("key%03d", r.IntN(150))) }

				ops := 100 + r.IntN(200)
				crashAt := r.IntN(ops)
				for i := 0; i < ops; i++ {
					if i == crashAt {
						// Crash a random shard's primary mid-workload,
						// promote its survivor, and restore the replica
						// degree (quorum refuses degraded service);
						// acked state must hold across all of it.
						shard := r.IntN(db.Shards())
						if err := db.CrashPrimary(shard); err != nil {
							t.Fatal(err)
						}
						if err := db.Failover(shard); err != nil {
							t.Fatal(err)
						}
						if err := db.Repair(shard); err != nil {
							t.Fatal(err)
						}
						store, err = kv.Open(db)
						if err != nil {
							t.Fatalf("kv.Open on survivor: %v", err)
						}
					}
					k := key()
					switch r.IntN(10) {
					case 0, 1: // delete
						err := store.Delete(k)
						switch {
						case err == nil:
							delete(model, string(k))
						case errors.Is(err, kv.ErrNotFound):
						default:
							t.Fatalf("op %d Delete: %v", i, err)
						}
					case 2: // multi-key txn
						txn, err := store.Begin()
						if err != nil {
							t.Fatal(err)
						}
						n := 1 + r.IntN(4)
						staged := map[string]string{}
						for j := 0; j < n; j++ {
							kk, vv := key(), fmt.Sprintf("txn%d-%d", i, j)
							if err := txn.Put(kk, []byte(vv)); err != nil {
								t.Fatal(err)
							}
							staged[string(kk)] = vv
						}
						if err := txn.Commit(); err != nil {
							t.Fatalf("op %d txn commit: %v", i, err)
						}
						for kk, vv := range staged {
							model[kk] = vv
						}
					default: // put
						v := fmt.Sprintf("val%d", i)
						if err := store.Put(k, []byte(v)); err != nil {
							t.Fatalf("op %d Put: %v", i, err)
						}
						model[string(k)] = v
					}
				}

				// Final verification pass on a freshly recovered store.
				store, err = kv.Open(db)
				if err != nil {
					t.Fatal(err)
				}
				if store.Len() != len(model) {
					t.Fatalf("recovered Len = %d, model has %d", store.Len(), len(model))
				}
				for k, v := range model {
					got, err := store.Get([]byte(k))
					if err != nil || string(got) != v {
						t.Fatalf("acked key %q: got %q, %v (want %q)", k, got, err, v)
					}
				}
			})
		}
	}
}

// writeAt commits one record through the DB facade and returns it.
func writeAt(t *testing.T, db repro.DB, off int, fill byte) []byte {
	t.Helper()
	payload := bytes.Repeat([]byte{fill}, 12)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(off, len(payload)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(off, payload); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestDBConformanceReadOpts: the ReadAt consistency surface behaves
// identically on a Cluster and on both ShardedCluster arities — the zero
// ReadOpts is exactly Read, every mode returns committed bytes under its
// advertised floor, and a pinned unavailable replica surfaces
// ErrReplicaUnavailable instead of silently falling back.
func TestDBConformanceReadOpts(t *testing.T) {
	for name, db := range conformanceTargets(t, replicatedCfg()) {
		t.Run(name, func(t *testing.T) {
			const off = 64
			want := writeAt(t, db, off, 0x5A)
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			db.Settle()
			tok := db.Token(nil)
			if len(tok) != db.Shards() {
				t.Fatalf("token length %d, shards %d", len(tok), db.Shards())
			}

			buf := make([]byte, len(want))
			// The zero ReadOpts is exactly Read: primary-served.
			res, err := db.ReadAt(off, buf, repro.ReadOpts{})
			if err != nil || !bytes.Equal(buf, want) {
				t.Fatalf("default ReadAt = %q, %v", buf, err)
			}
			if res.Replica != 0 || res.Seq != res.Primary {
				t.Fatalf("default ReadAt not primary-served: %+v", res)
			}

			// Every mode returns the committed bytes within its floor.
			for _, opts := range []repro.ReadOpts{
				{Mode: repro.ReadYourWrites, Token: tok},
				{Mode: repro.ReadBounded, Bound: 1 << 20},
				{Mode: repro.ReadQuorum},
			} {
				clear(buf)
				res, err := db.ReadAt(off, buf, opts)
				if err != nil || !bytes.Equal(buf, want) {
					t.Fatalf("%v ReadAt = %q, %v", opts.Mode, buf, err)
				}
				if opts.Mode == repro.ReadYourWrites && res.Replica > 0 && res.Seq < tok[0] {
					t.Fatalf("ryw served below the token floor: %+v (token %d)", res, tok[0])
				}
				if opts.Mode == repro.ReadBounded && res.Primary-res.Seq > opts.Bound {
					t.Fatalf("bounded served outside the bound: %+v", res)
				}
				if opts.Mode == repro.ReadQuorum && res.Seq < tok[0] {
					t.Fatalf("quorum view missed an acked commit: %+v (token %d)", res, tok[0])
				}
			}

			// A settled backup serves a pinned read; a nonexistent replica
			// index refuses rather than falling back.
			if res, err := db.ReadAt(off, buf, repro.ReadOpts{Replica: 1}); err != nil || res.Replica != 1 {
				t.Fatalf("pinned read on healthy backup: %+v, %v", res, err)
			}
			if _, err := db.ReadAt(off, buf, repro.ReadOpts{Replica: 9}); !errors.Is(err, repro.ErrReplicaUnavailable) {
				t.Fatalf("pinned read on nonexistent replica = %v", err)
			}
		})
	}
}

// TestDBConformanceMidJoinNeverServes: a replica being rebuilt by the
// online repair holds a fuzzy copy — a pinned ReadAt must refuse it for
// the whole transfer, on every facade.
func TestDBConformanceMidJoinNeverServes(t *testing.T) {
	cfg := replicatedCfg()
	cfg.Safety = repro.OneSafe // commits must keep flowing while degraded
	for name, db := range conformanceTargets(t, cfg) {
		t.Run(name, func(t *testing.T) {
			const off = 64
			writeAt(t, db, off, 0x11)
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			db.Settle()
			if err := db.CrashBackup(0); err != nil {
				t.Fatal(err)
			}
			if err := db.RepairAsync(); err != nil {
				t.Fatal(err)
			}

			buf := make([]byte, 12)
			probes := 0
			for i := 0; i < 200000 && db.RepairProgress().Active; i++ {
				writeAt(t, db, off+64+(i%32)*16, byte(i))
				if db.RepairProgress().Joining > 0 {
					probes++
					// The repair drops the crashed backup and appends the
					// joiner after the survivors: it is replica index 2.
					if _, err := db.ReadAt(off, buf, repro.ReadOpts{Replica: 2}); !errors.Is(err, repro.ErrReplicaUnavailable) {
						t.Fatalf("mid-join replica served a pinned read: %v", err)
					}
					// The surviving enrolled backup keeps serving throughout.
					if res, err := db.ReadAt(off, buf, repro.ReadOpts{Replica: 1}); err != nil || res.Replica != 1 {
						t.Fatalf("survivor refused a pinned read mid-repair: %+v, %v", res, err)
					}
				}
				if i%100 == 0 {
					db.Settle()
				}
			}
			if db.RepairProgress().Active {
				t.Fatal("repair never completed")
			}
			if probes == 0 {
				t.Fatal("never observed the joiner mid-transfer")
			}
			db.Settle()
			if res, err := db.ReadAt(off, buf, repro.ReadOpts{Replica: 2}); err != nil || res.Replica != 2 {
				t.Fatalf("re-enrolled replica refuses pinned reads: %+v, %v", res, err)
			}
		})
	}
}

// TestDBConformanceTokenPortability: tokens are plain data, portable
// across deployments and shard counts — a token from shard A is always
// valid on shard B (missing elements are unconstrained, over-large floors
// just fall back to the primary), and sessions merge by element-wise max.
func TestDBConformanceTokenPortability(t *testing.T) {
	mk4, err := repro.NewSharded(replicatedCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	mk1, err := repro.New(replicatedCfg())
	if err != nil {
		t.Fatal(err)
	}
	shardSize := mk4.DBSize() / 4

	// Populate both deployments and capture their tokens.
	w4 := writeAt(t, mk4, 3*shardSize+64, 0xC4) // shard 3 of the wide one
	w1 := writeAt(t, mk1, 64, 0xC1)
	for _, db := range []repro.DB{mk4, mk1} {
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		db.Settle()
	}
	tok4, tok1 := mk4.Token(nil), mk1.Token(nil)
	if len(tok4) != 4 || len(tok1) != 1 {
		t.Fatalf("token lengths %d/%d", len(tok4), len(tok1))
	}

	// The wide token on the narrow deployment: element 0 may exceed the
	// narrow committed counter — the read falls back to the primary, it
	// never errors.
	buf := make([]byte, 12)
	if _, err := mk1.ReadAt(64, buf, repro.ReadOpts{Mode: repro.ReadYourWrites, Token: tok4}); err != nil || !bytes.Equal(buf, w1) {
		t.Fatalf("wide token on narrow deployment: %q, %v", buf, err)
	}
	// The narrow token on shard 3 of the wide deployment: no element for
	// shard 3, so that shard is unconstrained.
	clear(buf)
	if _, err := mk4.ReadAt(3*shardSize+64, buf, repro.ReadOpts{Mode: repro.ReadYourWrites, Token: tok1}); err != nil || !bytes.Equal(buf, w4) {
		t.Fatalf("narrow token on wide deployment: %q, %v", buf, err)
	}
	// A nil token constrains nothing.
	clear(buf)
	if _, err := mk4.ReadAt(3*shardSize+64, buf, repro.ReadOpts{Mode: repro.ReadYourWrites}); err != nil || !bytes.Equal(buf, w4) {
		t.Fatalf("nil token: %q, %v", buf, err)
	}

	// Sessions merge tokens by element-wise max, growing as needed.
	got := repro.Token{5, 1}.Merge(repro.Token{2, 7, 3})
	want := repro.Token{5, 7, 3}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Merge = %v, want %v", got, want)
	}

	// A token captured before an elastic grow stays valid after the
	// rebalance: the new shards have no element, so they serve
	// unconstrained, and the old elements still floor their shards.
	el, err := repro.NewSharded(replicatedCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	wantEl := writeAt(t, el, 64, 0xE1)
	if err := el.Flush(); err != nil {
		t.Fatal(err)
	}
	el.Settle()
	pre := el.Token(nil)
	if len(pre) != 2 {
		t.Fatalf("pre-grow token length %d, want 2", len(pre))
	}
	if _, err := el.AddShards(2); err != nil {
		t.Fatal(err)
	}
	if err := el.Rebalance(); err != nil {
		t.Fatal(err)
	}
	clear(buf)
	if _, err := el.ReadAt(64, buf, repro.ReadOpts{Mode: repro.ReadYourWrites, Token: pre}); err != nil || !bytes.Equal(buf, wantEl) {
		t.Fatalf("pre-grow token after rebalance: %q, %v", buf, err)
	}
	if post := el.Token(nil); len(post) != 4 {
		t.Fatalf("post-grow token length %d, want 4", len(post))
	}
}
