package repro_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/obs"
)

// elasticConfig is the deployment template the rebalance tests share:
// quorum commits over three-way replication, so a crashed primary never
// takes an acknowledged write with it.
func elasticConfig(dbSize int, metrics bool) repro.Config {
	return repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  dbSize,
		Backups: 2,
		Safety:  repro.QuorumSafe,
		Metrics: metrics,
	}
}

// shadowFill loads a deterministic pattern and returns the in-memory
// shadow copy the tests audit against.
func shadowFill(t *testing.T, sc *repro.ShardedCluster, dbSize int, seed int64) []byte {
	t.Helper()
	shadow := make([]byte, dbSize)
	rand.New(rand.NewSource(seed)).Read(shadow)
	const chunk = 256 << 10
	for off := 0; off < dbSize; off += chunk {
		end := off + chunk
		if end > dbSize {
			end = dbSize
		}
		if err := sc.Load(off, shadow[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	return shadow
}

// shadowAudit compares the whole database against the shadow copy.
func shadowAudit(t *testing.T, sc *repro.ShardedCluster, shadow []byte, phase string) {
	t.Helper()
	got := make([]byte, len(shadow))
	sc.ReadRaw(0, got)
	if !bytes.Equal(got, shadow) {
		for i := range got {
			if got[i] != shadow[i] {
				t.Fatalf("%s: first divergence at offset %d (shard %d): got %#x want %#x",
					phase, i, sc.ShardFor(i), got[i], shadow[i])
			}
		}
	}
}

// shadowTxn commits one 64-byte write at off, mirrored into the shadow.
func shadowTxn(t *testing.T, sc *repro.ShardedCluster, shadow []byte, r *rand.Rand, off int) {
	t.Helper()
	var val [64]byte
	r.Read(val[:])
	tx, err := sc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(off, len(val)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(off, val[:]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	copy(shadow[off:], val[:])
}

// TestRebalanceGrowMovesData: the tentpole end to end — grow 2→4, a
// blocking Rebalance, and a byte-exact audit that the moved ranges
// carried every committed write with them. Routing, tokens, and the
// instruments all reflect the new placement.
func TestRebalanceGrowMovesData(t *testing.T) {
	const dbSize = 1 << 20
	sc, err := repro.NewSharded(elasticConfig(dbSize, true), 2)
	if err != nil {
		t.Fatal(err)
	}
	shadow := shadowFill(t, sc, dbSize, 1)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 64; i++ {
		shadowTxn(t, sc, shadow, r, r.Intn(dbSize-64))
	}
	oldToken := sc.Token(nil)

	ids, err := sc.AddShards(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("AddShards ids = %v", ids)
	}
	if sc.Shards() != 4 {
		t.Fatalf("Shards() = %d after AddShards", sc.Shards())
	}
	if sc.PlacementEpoch() != 1 {
		t.Fatalf("epoch %d moved before Rebalance", sc.PlacementEpoch())
	}
	if err := sc.Rebalance(); err != nil {
		t.Fatal(err)
	}
	prog := sc.RebalanceProgress()
	if prog.Active || prog.MovesDone != prog.Moves || prog.Moves == 0 {
		t.Fatalf("progress after sync rebalance: %+v", prog)
	}
	if prog.BytesShipped < prog.BytesTotal || prog.BytesTotal == 0 {
		t.Fatalf("shipped %d of %d planned bytes", prog.BytesShipped, prog.BytesTotal)
	}
	if got := sc.PlacementEpoch(); got != uint64(1+prog.Moves) {
		t.Fatalf("epoch %d after %d cut-overs", got, prog.Moves)
	}
	shadowAudit(t, sc, shadow, "post-rebalance")

	// The new shards now own real ranges and serve reads and writes.
	onNew := 0
	for off := 0; off < dbSize; off += 4096 {
		if s := sc.ShardFor(off); s >= 2 {
			onNew++
		}
	}
	if onNew == 0 {
		t.Fatal("no range routed to the added shards")
	}
	for i := 0; i < 64; i++ {
		shadowTxn(t, sc, shadow, r, r.Intn(dbSize-64))
	}
	sc.Settle()
	shadowAudit(t, sc, shadow, "post-rebalance writes")

	// A token minted on the 2-shard deployment stays valid: the missing
	// shards are unconstrained.
	buf := make([]byte, 512)
	if _, err := sc.ReadAt(0, buf, repro.ReadOpts{Token: oldToken}); err != nil {
		t.Fatalf("pre-rebalance token rejected: %v", err)
	}

	// Instruments: the migration counters and ring events fired.
	snap := sc.Metrics()
	if snap.Counter("place.ranges_moved") != uint64(prog.Moves) {
		t.Fatalf("place.ranges_moved = %d, want %d", snap.Counter("place.ranges_moved"), prog.Moves)
	}
	if snap.Counter("place.bytes_shipped") == 0 {
		t.Fatal("place.bytes_shipped = 0")
	}
	if snap.Gauge("place.epoch") != int64(sc.PlacementEpoch()) {
		t.Fatalf("place.epoch gauge = %d, want %d", snap.Gauge("place.epoch"), sc.PlacementEpoch())
	}
	for _, kind := range []string{obs.EventRebalanceStart, obs.EventRangeCutover, obs.EventRebalanceDone} {
		if len(snap.EventsKind(kind)) == 0 {
			t.Fatalf("no %s event in the merged snapshot", kind)
		}
	}
	// The moved bytes were charged to the SANs as sync-category traffic.
	if tr := sc.NetTraffic(); tr.SyncBytes < prog.BytesShipped {
		t.Fatalf("SyncBytes %d below shipped %d", tr.SyncBytes, prog.BytesShipped)
	}
}

// TestRebalanceAsyncRidesCommitStream: an asynchronous rebalance makes
// paced progress purely from the foreground commit stream, transactions
// keep committing on every shard throughout, and the final placement
// carries every committed byte.
func TestRebalanceAsyncRidesCommitStream(t *testing.T) {
	const dbSize = 512 << 10
	sc, err := repro.NewSharded(elasticConfig(dbSize, false), 2)
	if err != nil {
		t.Fatal(err)
	}
	shadow := shadowFill(t, sc, dbSize, 3)
	if _, err := sc.AddShards(2); err != nil {
		t.Fatal(err)
	}
	if err := sc.RebalanceAsync(); err != nil {
		t.Fatal(err)
	}
	if err := sc.RebalanceAsync(); !errors.Is(err, repro.ErrRebalanceActive) {
		t.Fatalf("second RebalanceAsync = %v, want ErrRebalanceActive", err)
	}
	if _, err := sc.AddShards(1); !errors.Is(err, repro.ErrRebalanceActive) {
		t.Fatalf("AddShards during rebalance = %v, want ErrRebalanceActive", err)
	}

	r := rand.New(rand.NewSource(4))
	var lastShipped int64
	progressed := false
	for i := 0; i < 100000 && sc.RebalanceProgress().Active; i++ {
		shadowTxn(t, sc, shadow, r, r.Intn(dbSize-64))
		if p := sc.RebalanceProgress(); p.BytesShipped > lastShipped {
			progressed = true
			lastShipped = p.BytesShipped
		}
	}
	if !progressed {
		t.Fatal("commit stream never pumped the mover")
	}
	if sc.RebalanceProgress().Active {
		// The stream alone didn't finish it in bounded iterations; the
		// blocking form adopts and completes the active plan.
		if err := sc.Rebalance(); err != nil {
			t.Fatal(err)
		}
	}
	sc.Settle()
	if sc.PlacementEpoch() == 1 {
		t.Fatal("placement epoch never advanced")
	}
	shadowAudit(t, sc, shadow, "async rebalance")
}

// TestRebalanceCrashDuringMove is the randomized crash suite: while a
// 2→4 rebalance is mid-move, the source primary or the migration target
// dies; after failover + repair the rebalance resumes from the fence and
// completes with zero acknowledged-write loss (quorum commits).
func TestRebalanceCrashDuringMove(t *testing.T) {
	const dbSize = 512 << 10
	crashes := 0
	for seed := int64(0); seed < 4; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		sc, err := repro.NewSharded(elasticConfig(dbSize, false), 2)
		if err != nil {
			t.Fatal(err)
		}
		shadow := shadowFill(t, sc, dbSize, 200+seed)
		for i := 0; i < 32; i++ {
			shadowTxn(t, sc, shadow, r, r.Intn(dbSize-64))
		}
		if _, err := sc.AddShards(2); err != nil {
			t.Fatal(err)
		}
		if err := sc.RebalanceAsync(); err != nil {
			t.Fatal(err)
		}
		// Pump from the commit stream until the mover is mid-move with
		// bytes on the wire.
		for i := 0; i < 50000; i++ {
			p := sc.RebalanceProgress()
			if !p.Active {
				break
			}
			if p.CurrentFrom >= 0 && p.BytesShipped > 0 {
				break
			}
			shadowTxn(t, sc, shadow, r, r.Intn(dbSize-64))
		}
		p := sc.RebalanceProgress()
		if p.Active && p.CurrentFrom >= 0 {
			crashes++
			// Kill one end of the in-flight move, randomly.
			victim := p.CurrentFrom
			if r.Intn(2) == 1 {
				victim = p.CurrentTo
			}
			if err := sc.CrashPrimary(victim); err != nil {
				t.Fatalf("seed %d: crash shard %d: %v", seed, victim, err)
			}
			// The mover parks on the dead group; a blocking Rebalance
			// surfaces that as ErrCrashed without losing the plan.
			if err := sc.Rebalance(); !errors.Is(err, repro.ErrCrashed) {
				t.Fatalf("seed %d: parked rebalance = %v, want ErrCrashed", seed, err)
			}
			if err := sc.Failover(victim); err != nil {
				t.Fatalf("seed %d: failover shard %d: %v", seed, victim, err)
			}
			if err := sc.Repair(victim); err != nil {
				t.Fatalf("seed %d: repair shard %d: %v", seed, victim, err)
			}
		}
		if err := sc.Rebalance(); err != nil {
			t.Fatalf("seed %d: resumed rebalance: %v", seed, err)
		}
		sc.Settle()
		shadowAudit(t, sc, shadow, "post-crash rebalance")
		// The deployment still serves transactions on every range.
		for i := 0; i < 32; i++ {
			shadowTxn(t, sc, shadow, r, r.Intn(dbSize-64))
		}
		sc.Settle()
		shadowAudit(t, sc, shadow, "post-crash writes")
	}
	if crashes == 0 {
		t.Fatal("no seed ever caught the mover mid-move; the crash path went untested")
	}
}

// TestRemoveShardDrains: draining re-homes every range onto the ring
// successors, the tombstoned id stays valid for indexing but owns
// nothing, and the data survives byte-exact.
func TestRemoveShardDrains(t *testing.T) {
	const dbSize = 1 << 20
	sc, err := repro.NewSharded(elasticConfig(dbSize, false), 2)
	if err != nil {
		t.Fatal(err)
	}
	shadow := shadowFill(t, sc, dbSize, 5)
	// Grow to 4 and rebalance so the newcomers own ranges and shard 0
	// has free slots to absorb a drain.
	if _, err := sc.AddShards(2); err != nil {
		t.Fatal(err)
	}
	if err := sc.Rebalance(); err != nil {
		t.Fatal(err)
	}
	shadowAudit(t, sc, shadow, "post-grow")

	if err := sc.RemoveShard(3); err != nil {
		t.Fatal(err)
	}
	if sc.Shards() != 4 {
		t.Fatalf("Shards() = %d: a tombstone must keep its slot", sc.Shards())
	}
	for off := 0; off < dbSize; off += 4096 {
		if sc.ShardFor(off) == 3 {
			t.Fatalf("offset %d still routed to the removed shard", off)
		}
	}
	shadowAudit(t, sc, shadow, "post-remove")
	if err := sc.RemoveShard(3); !errors.Is(err, repro.ErrNoSuchShard) {
		t.Fatalf("double remove = %v, want ErrNoSuchShard", err)
	}
	if err := sc.RemoveShard(9); !errors.Is(err, repro.ErrNoSuchShard) {
		t.Fatalf("out-of-range remove = %v, want ErrNoSuchShard", err)
	}
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 64; i++ {
		shadowTxn(t, sc, shadow, r, r.Intn(dbSize-64))
	}
	sc.Settle()
	shadowAudit(t, sc, shadow, "post-remove writes")
	// Tokens still index all four slots.
	if tok := sc.Token(nil); len(tok) != 4 {
		t.Fatalf("token length %d", len(tok))
	}
}

// TestElasticDegenerate: the static layout is the degenerate
// single-epoch ring — without elastic calls the routing is bit-for-bit
// the fixed off/ShardSize arithmetic, and a Cluster rejects the surface.
func TestElasticDegenerate(t *testing.T) {
	sc := newSharded(t, 3)
	if sc.PlacementEpoch() != 1 {
		t.Fatalf("fresh epoch = %d", sc.PlacementEpoch())
	}
	for _, off := range []int{0, 1, 4095, 4096, testDB / 2, testDB - 1} {
		if got, want := sc.ShardFor(off), off/sc.ShardSize(); got != want {
			t.Fatalf("ShardFor(%d) = %d, want the uniform %d", off, got, want)
		}
	}
	if p := sc.RebalanceProgress(); p.Active || p.CurrentFrom != -1 || p.CurrentTo != -1 {
		t.Fatalf("idle progress = %+v", p)
	}
	if err := sc.Rebalance(); err != nil {
		t.Fatalf("no-op rebalance = %v", err)
	}
	if _, err := sc.AddShards(0); !errors.Is(err, repro.ErrShardCount) {
		t.Fatalf("AddShards(0) = %v", err)
	}

	c, err := repro.New(repro.Config{Version: repro.V3InlineLog, Backup: repro.ActiveBackup, DBSize: testDB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddShards(1); !errors.Is(err, repro.ErrNotElastic) {
		t.Fatalf("Cluster.AddShards = %v", err)
	}
	if err := c.Rebalance(); !errors.Is(err, repro.ErrNotElastic) {
		t.Fatalf("Cluster.Rebalance = %v", err)
	}
	if c.PlacementEpoch() != 1 {
		t.Fatalf("Cluster epoch = %d", c.PlacementEpoch())
	}
}
