package repro_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// durCfg is the facade matrix's durable configuration: a replicated
// cluster persisting under dir.
func durCfg(dir string) repro.Config {
	return repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.PassiveBackup,
		DBSize:  1 << 20,
		Backups: 2,
		Safety:  repro.TwoSafe,
		Durability: repro.DurabilityConfig{
			Dir:           dir,
			SnapshotEvery: 64,
		},
	}
}

func durPut(t *testing.T, db repro.DB, k int) {
	t.Helper()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	off := (k % 512) * 128
	val := []byte(fmt.Sprintf("txn-%08d", k))
	if err := tx.SetRange(off, len(val)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(off, val); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func durCheck(t *testing.T, db repro.DB, k int) {
	t.Helper()
	off := (k % 512) * 128
	want := fmt.Sprintf("txn-%08d", k)
	got := make([]byte, len(want))
	db.ReadRaw(off, got)
	if string(got) != want {
		t.Fatalf("txn %d: read %q, want %q", k, got, want)
	}
}

// TestClusterDurabilityOff: without Config.Durability the disk surface is
// inert on both facades.
func TestClusterDurabilityOff(t *testing.T) {
	for name, admin := range conformanceTargets(t, replicatedCfg()) {
		t.Run(name, func(t *testing.T) {
			if st := admin.Durability(); st.Enabled {
				t.Fatal("durability enabled without configuration")
			}
			if err := admin.PowerFail(); !errors.Is(err, repro.ErrNoDurability) {
				t.Fatalf("PowerFail = %v, want ErrNoDurability", err)
			}
			if tails := admin.WALTails(); tails != nil {
				t.Fatalf("WALTails = %v without the tier", tails)
			}
			if err := admin.Close(); err != nil {
				t.Fatalf("Close = %v", err)
			}
		})
	}
}

// TestClusterPowerFailRestart: a Cluster power-failed mid-run comes back
// over the same directory with every settled transaction.
func TestClusterPowerFailRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := repro.New(durCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 150
	for k := 1; k <= n; k++ {
		durPut(t, db, k)
	}
	db.Settle()
	st := db.Durability()
	if !st.Enabled || st.DurableSeq != n {
		t.Fatalf("status = %+v, want %d durable", st, n)
	}
	if err := db.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if len(db.WALTails()) == 0 {
		t.Fatal("no WAL tails after PowerFail")
	}
	// The dead deployment refuses service.
	if _, err := db.Begin(); !errors.Is(err, repro.ErrCrashed) {
		t.Fatalf("Begin after PowerFail = %v, want ErrCrashed", err)
	}

	db2, err := repro.New(durCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := db2.Durability().Recovery
	if !rec.Recovered || rec.Seq != n {
		t.Fatalf("recovery = %+v, want seq %d", rec, n)
	}
	if got := db2.Committed(); got != n {
		t.Fatalf("recovered %d commits, want %d", got, n)
	}
	for k := 1; k <= n; k++ {
		durCheck(t, db2, k)
	}
	durPut(t, db2, n+1)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedPowerFailRestart: every shard persists under its own
// subdirectory; a whole-deployment power loss (PowerFail per shard) cold
// restarts shard by shard with the full keyspace intact.
func TestShardedPowerFailRestart(t *testing.T) {
	dir := t.TempDir()
	const shards = 3
	db, err := repro.NewSharded(durCfg(dir), shards)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for k := 1; k <= n; k++ {
		durPut(t, db, k)
	}
	db.Settle()
	for i := 0; i < shards; i++ {
		if st := db.Durability(i); !st.Enabled {
			t.Fatalf("shard %d: durability off", i)
		}
		if err := db.PowerFail(i); err != nil {
			t.Fatalf("shard %d: PowerFail: %v", i, err)
		}
	}
	// One subdirectory per shard on disk.
	for i := 0; i < shards; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%03d", i))); err != nil {
			t.Fatalf("shard %d subdirectory: %v", i, err)
		}
	}

	db2, err := repro.NewSharded(durCfg(dir), shards)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Committed(); got != n {
		t.Fatalf("recovered %d commits, want %d", got, n)
	}
	for k := 1; k <= n; k++ {
		durCheck(t, db2, k)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}
