// KV: the replicated key-value layer end to end — a typed keyspace laid
// out inside the replicated database bytes, driven through the one DB
// interface. The program opens a kv store over a quorum-commit replica
// group, streams writes into it, kills the primary mid-stream, fails
// over, re-Opens the store on the promoted survivor, and audits it:
// every acknowledged Put is present with its exact value — zero loss —
// because the index and records live in the replicated bytes and every
// mutation rode the same commit path the paper's transactions do.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
	"repro/kv"
)

const (
	keys      = 2_000
	crashWhen = 1_234 // acked puts before the primary dies
)

func key(i int) []byte { return []byte(fmt.Sprintf("user%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("profile-%d-v1", i*31)) }

func main() {
	// A 3-node group (primary + 2 backups) at quorum commit: an acked
	// write survives the loss of the primary plus any minority of
	// backups. Both facades satisfy repro.DB — swap in NewSharded and
	// nothing below changes.
	var db repro.DB
	db, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  4 << 20,
		Backups: 2,
		Safety:  repro.QuorumSafe,
	})
	if err != nil {
		log.Fatal(err)
	}
	store, err := kv.Open(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kv store formatted inside the replicated bytes: %d slots, %d buckets\n",
		store.Slots(), store.Buckets())

	// Stream the keyspace in; the primary dies mid-stream.
	acked := 0
	for i := 0; i < keys; i++ {
		if i == crashWhen {
			fmt.Printf("\n*** crashing the primary after %d acked puts ***\n", acked)
			if err := db.(repro.Admin).CrashPrimary(); err != nil {
				log.Fatal(err)
			}
			break
		}
		if err := store.Put(key(i), val(i)); err != nil {
			log.Fatalf("put %d: %v", i, err)
		}
		acked++
	}

	// The dead store refuses; fail over and re-open the survivor.
	if _, err := store.Get(key(0)); err == nil {
		log.Fatal("store kept serving on a dead primary")
	}
	admin := db.(repro.Admin)
	if err := admin.Failover(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("failed over to the most-caught-up backup")
	store, err = kv.Open(db)
	if err != nil {
		log.Fatalf("kv.Open on the survivor: %v", err)
	}
	fmt.Printf("kv.Open recovered the index from the replicated bytes: %d live keys\n", store.Len())

	// Audit: every acked put is present, byte for byte.
	missing, wrong := 0, 0
	for i := 0; i < acked; i++ {
		got, err := store.Get(key(i))
		switch {
		case errors.Is(err, kv.ErrNotFound):
			missing++
		case err != nil:
			log.Fatalf("audit get %d: %v", i, err)
		case string(got) != string(val(i)):
			wrong++
		}
	}
	fmt.Printf("audit: %d acked keys, %d missing, %d corrupt\n", acked, missing, wrong)
	if missing != 0 || wrong != 0 {
		log.Fatal("FAILED: quorum-acked writes were lost")
	}

	// The recovered store is fully writable; heal the group back to its
	// configured degree while writing.
	if err := admin.Repair(); err != nil {
		log.Fatal(err)
	}
	for i := acked; i < keys; i++ {
		if err := store.Put(key(i), val(i)); err != nil {
			log.Fatalf("post-recovery put %d: %v", i, err)
		}
	}
	fmt.Printf("resumed the stream on the new primary: %d live keys, %d backups\n",
		store.Len(), admin.Backups())
	fmt.Println("OK: zero acknowledged writes lost across crash, failover and recovery")
}
