// Inventory: an Order-Entry-style warehouse service comparing the paper's
// replication strategies head to head on the same workload — the choice
// the paper's evaluation is about. For each configuration the program
// reports simulated throughput and the SAN traffic breakdown, reproducing
// the paper's central finding: the locality-friendly log ships more bytes
// than mirroring-by-diff yet delivers the highest throughput, and the
// active backup beats them all.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand/v2"

	"repro"
)

const (
	products  = 50_000
	recSize   = 64 // product record: stock u32, reserved u32, ytd u32
	dbSize    = products*recSize + ledgerBytes
	ledgerOff = products * recSize
	ledgerRec = 48
	// ledgerBytes is a 1 MB circular order ledger.
	ledgerBytes = 1 << 20
	orders      = 4_000
)

func main() {
	type config struct {
		name    string
		version repro.Version
		backup  repro.BackupMode
	}
	configs := []config{
		{"standalone (no backup)", repro.V3InlineLog, repro.Standalone},
		{"passive, mirror-by-copy", repro.V1MirrorCopy, repro.PassiveBackup},
		{"passive, mirror-by-diff", repro.V2MirrorDiff, repro.PassiveBackup},
		{"passive, inline log", repro.V3InlineLog, repro.PassiveBackup},
		{"active redo log", repro.V3InlineLog, repro.ActiveBackup},
	}

	fmt.Printf("%-26s %12s %14s %s\n", "configuration", "sim-TPS", "bytes->backup", "breakdown (mod/undo/meta)")
	for _, cfg := range configs {
		tps, tr := run(cfg.version, cfg.backup)
		fmt.Printf("%-26s %12.0f %14d %d/%d/%d\n",
			cfg.name, tps, tr.Total(), tr.ModifiedBytes, tr.UndoBytes, tr.MetaBytes)
	}
}

// run processes the order stream on one configuration and returns
// simulated throughput plus SAN traffic.
func run(v repro.Version, b repro.BackupMode) (float64, repro.Traffic) {
	cluster, err := repro.New(repro.Config{Version: v, Backup: b, DBSize: dbSize})
	if err != nil {
		log.Fatal(err)
	}
	// Stock the warehouse.
	rec := make([]byte, recSize)
	binary.LittleEndian.PutUint32(rec, 10_000)
	for p := 0; p < products; p++ {
		if err := cluster.Load(p*recSize, rec); err != nil {
			log.Fatal(err)
		}
	}

	r := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < orders; i++ {
		if err := placeOrder(cluster, r, i); err != nil {
			log.Fatalf("order %d: %v", i, err)
		}
	}
	tps := float64(cluster.Committed()) / cluster.Elapsed().Seconds()
	return tps, cluster.NetTraffic()
}

// placeOrder decrements stock for 1-5 products and appends a ledger
// entry. It takes the DB interface: the order path is deployment-shape
// agnostic.
func placeOrder(c repro.DB, r *rand.Rand, seq int) error {
	tx, err := c.Begin()
	if err != nil {
		return err
	}
	items := 1 + r.IntN(5)
	for l := 0; l < items; l++ {
		p := r.IntN(products)
		off := p * recSize
		if err := tx.SetRange(off, 16); err != nil {
			return err
		}
		var cur [8]byte
		if err := tx.Read(off, cur[:]); err != nil {
			return err
		}
		stock := binary.LittleEndian.Uint32(cur[0:4])
		qty := uint32(1 + r.IntN(5))
		if stock < qty {
			stock += 10_000 // restock
		}
		binary.LittleEndian.PutUint32(cur[0:4], stock-qty)
		binary.LittleEndian.PutUint32(cur[4:8], qty)
		if err := tx.Write(off, cur[:]); err != nil {
			return err
		}
	}
	slot := ledgerOff + (seq%(ledgerBytes/ledgerRec))*ledgerRec
	if err := tx.SetRange(slot, ledgerRec); err != nil {
		return err
	}
	entry := make([]byte, ledgerRec)
	binary.LittleEndian.PutUint32(entry, uint32(seq))
	binary.LittleEndian.PutUint32(entry[4:], uint32(items))
	if err := tx.Write(slot, entry); err != nil {
		return err
	}
	return tx.Commit()
}
