// Banking: a Debit-Credit-style funds-transfer service on a passive
// primary-backup pair — the paper's motivating scenario. The program runs
// transfers between accounts, crashes the primary mid-stream, fails over,
// and audits the backup: every committed transfer is present, money is
// conserved, and the in-flight transfer is rolled back.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand/v2"

	"repro"
)

const (
	accounts       = 10_000
	recordSize     = 64 // account record: balance u64 + padding
	initialBalance = 1_000
	transfers      = 5_000
)

// bank is written against the DB interface: the same service code runs
// over a Cluster or a ShardedCluster.
type bank struct {
	c repro.DB
}

func (b *bank) balanceOf(tx repro.Tx, acct int) (uint64, error) {
	var buf [8]byte
	if err := tx.Read(acct*recordSize, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func (b *bank) setBalance(tx repro.Tx, acct int, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return tx.Write(acct*recordSize, buf[:])
}

// transfer moves amount between two accounts in one transaction.
func (b *bank) transfer(from, to int, amount uint64) error {
	tx, err := b.c.Begin()
	if err != nil {
		return err
	}
	if err := tx.SetRange(from*recordSize, 8); err != nil {
		return err
	}
	if err := tx.SetRange(to*recordSize, 8); err != nil {
		return err
	}
	fb, err := b.balanceOf(tx, from)
	if err != nil {
		return err
	}
	if fb < amount {
		return tx.Abort() // insufficient funds
	}
	tb, err := b.balanceOf(tx, to)
	if err != nil {
		return err
	}
	if err := b.setBalance(tx, from, fb-amount); err != nil {
		return err
	}
	if err := b.setBalance(tx, to, tb+amount); err != nil {
		return err
	}
	return tx.Commit()
}

func main() {
	cluster, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.PassiveBackup,
		DBSize:  accounts * recordSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	b := &bank{c: cluster}

	// Fund the accounts (raw load: initial state precedes replication).
	buf := make([]byte, recordSize)
	binary.LittleEndian.PutUint64(buf, initialBalance)
	for a := 0; a < accounts; a++ {
		if err := cluster.Load(a*recordSize, buf); err != nil {
			log.Fatal(err)
		}
	}

	r := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < transfers; i++ {
		from, to := r.IntN(accounts), r.IntN(accounts)
		if from == to {
			continue
		}
		if err := b.transfer(from, to, uint64(1+r.IntN(200))); err != nil {
			log.Fatalf("transfer %d: %v", i, err)
		}
	}
	committed := cluster.Committed()
	traffic := cluster.NetTraffic()
	fmt.Printf("committed %d transfers; shipped %d bytes to the backup "+
		"(%dB modified, %dB undo, %dB metadata)\n",
		committed, traffic.Total(), traffic.ModifiedBytes, traffic.UndoBytes, traffic.MetaBytes)

	// Leave one transfer in flight and pull the plug.
	tx, err := cluster.Begin()
	if err != nil {
		log.Fatal(err)
	}
	must(tx.SetRange(0, 8))
	must(tx.Write(0, []byte{0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0}))
	must(cluster.CrashPrimary())
	must(cluster.Failover())

	// Audit the surviving state.
	var total uint64
	rec := make([]byte, 8)
	for a := 0; a < accounts; a++ {
		cluster.ReadRaw(a*recordSize, rec)
		total += binary.LittleEndian.Uint64(rec)
	}
	fmt.Printf("after failover: %d committed transactions survive\n", cluster.Committed())
	fmt.Printf("audit: total money = %d (expected %d) — %s\n",
		total, uint64(accounts*initialBalance), verdict(total == accounts*initialBalance))
	if cluster.Committed() < committed {
		fmt.Printf("1-safe window: last %d commit(s) were lost with the primary, as designed\n",
			committed-cluster.Committed())
	}
}

func verdict(ok bool) string {
	if ok {
		return "conserved"
	}
	return "CORRUPTED"
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
