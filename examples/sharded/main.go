// Example sharded: a sharded cluster of quorum-commit replica groups.
//
// The database is striped across four shards; each shard is an independent
// replica group with one primary and three active backups committing under
// quorum safety (2 of 3 backup acks). The demo shows the two headline
// properties of the design:
//
//  1. Throughput scales with the shard count: the shards run on disjoint
//     simulated hardware, so the aggregate rate is the sum.
//  2. A quorum-acked commit survives the simultaneous crash of a shard's
//     primary AND one of its backups, with zero loss and no settling
//     grace — while the other shards keep serving undisturbed.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

const (
	dbSize  = 16 << 20
	shards  = 4
	backups = 3
	txns    = 2000
)

func main() {
	cfg := repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  dbSize,
		Backups: backups,
		Safety:  repro.QuorumSafe,
	}

	fmt.Printf("== sharded cluster: %d shards x (1 primary + %d backups), %s commit ==\n\n",
		shards, backups, cfg.Safety)

	// --- 1. Throughput scales with the shard count. ---
	for _, n := range []int{1, shards} {
		sc, err := repro.NewSharded(cfg, n)
		if err != nil {
			log.Fatal(err)
		}
		drive(sc, txns)
		tps := float64(txns) / sc.Elapsed().Seconds()
		fmt.Printf("%d shard(s): %6d commits in %8v simulated  =>  %9.0f txn/s aggregate\n",
			n, txns, sc.Elapsed(), tps)
	}

	// --- 2. Quorum commit survives primary + one backup dying. ---
	sc, err := repro.NewSharded(cfg, shards)
	if err != nil {
		log.Fatal(err)
	}
	drive(sc, txns)
	committedBefore := sc.Committed()
	victim := 1
	fmt.Printf("\ncrashing shard %d's primary AND backup 0 (no settling)...\n", victim)
	if err := sc.Shard(victim).CrashPrimary(); err != nil {
		log.Fatal(err)
	}
	if err := sc.Shard(victim).CrashBackup(0); err != nil {
		log.Fatal(err)
	}

	// The other shards never notice.
	tx, err := sc.Shard(0).Begin()
	if err != nil {
		log.Fatal(err)
	}
	check(tx.SetRange(0, 8))
	check(tx.Write(0, []byte("healthy!")))
	check(tx.Commit())
	fmt.Println("shard 0 committed a transaction while shard 1 was down")

	// Failover promotes the most-caught-up surviving backup.
	if err := sc.Failover(victim); err != nil {
		log.Fatal(err)
	}
	if got := sc.Committed(); got != committedBefore+1 {
		log.Fatalf("lost commits: %d before the crash, %d after failover", committedBefore, got-1)
	}
	fmt.Printf("failover done: all %d quorum-acked commits survived (zero loss)\n", committedBefore)

	// Verify a spot value on the recovered shard, then repair it back to
	// full redundancy and keep going.
	// Transaction i=victim was the shard's first write: fill byte i%250+1.
	buf := make([]byte, 8)
	sc.ReadRaw(victim*sc.ShardSize(), buf)
	want := bytes.Repeat([]byte{byte(victim%250 + 1)}, 8)
	if !bytes.Equal(buf, want) {
		log.Fatalf("recovered shard serves wrong bytes: %v, want %v", buf, want)
	}
	if err := sc.Repair(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard %d repaired: %d backups enrolled again, cluster at full degree\n",
		victim, sc.Shard(victim).Backups())

	tr := sc.NetTraffic()
	fmt.Printf("\nSAN traffic across all shards: %d KB modified, %d KB meta\n",
		tr.ModifiedBytes>>10, tr.MetaBytes>>10)
}

// drive spreads slot-writes round-robin across the shards: transaction i
// writes 64 bytes into shard i%N.
func drive(sc *repro.ShardedCluster, n int) {
	sc.ResetMeasurement()
	for i := 0; i < n; i++ {
		shard := i % sc.Shards()
		slot := i / sc.Shards() % (sc.ShardSize() / 64)
		off := shard*sc.ShardSize() + slot*64
		tx, err := sc.Begin()
		if err != nil {
			log.Fatal(err)
		}
		check(tx.SetRange(off, 64))
		check(tx.Write(off, bytes.Repeat([]byte{byte(i%250 + 1)}, 64)))
		check(tx.Commit())
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
