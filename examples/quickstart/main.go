// Quickstart: open a replicated transaction store, commit a transaction,
// crash the primary, fail over, and read the data back from the backup.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 8 MB database with the paper's best design: the inline undo log
	// (Version 3) locally, and an active backup consuming a redo log.
	cluster, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  8 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The RVM-style API: declare the range, write in place, commit.
	tx, err := cluster.Begin()
	if err != nil {
		log.Fatal(err)
	}
	must(tx.SetRange(0, 32))
	must(tx.Write(0, []byte("hello, primary-backup cluster!\n")))
	must(tx.Commit())

	// Give the SAN a quiet microsecond to drain (a crash in the instant
	// after a commit can lose that commit — the paper's 1-safe window).
	cluster.Settle()

	// An uncommitted transaction, doomed by the crash below.
	tx, err = cluster.Begin()
	if err != nil {
		log.Fatal(err)
	}
	must(tx.SetRange(64, 16))
	must(tx.Write(64, []byte("never committed")))

	// The primary dies; the backup takes over with exactly the
	// committed state.
	must(cluster.CrashPrimary())
	must(cluster.Failover())

	got := make([]byte, 32)
	cluster.ReadRaw(0, got)
	fmt.Printf("after failover, committed data : %q\n", got)

	lost := make([]byte, 16)
	cluster.ReadRaw(64, lost)
	fmt.Printf("uncommitted bytes rolled back  : %q\n", lost)
	fmt.Printf("transactions surviving failover: %d\n", cluster.Committed())
	fmt.Printf("simulated time consumed        : %v\n", cluster.Elapsed())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
