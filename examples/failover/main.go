// Failover torture: for every engine version and backup architecture,
// commit a workload, crash the primary at a point chosen by the seed, fail
// over, and check the recovered state against 1-safe semantics — all
// committed transactions survive except possibly the last few that were
// still crossing the SAN.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand/v2"

	"repro"
)

const (
	slots   = 4_096
	recSize = 32
	dbSize  = slots * recSize
	txns    = 2_000
)

func main() {
	type scenario struct {
		version repro.Version
		backup  repro.BackupMode
	}
	scenarios := []scenario{
		{repro.V0Vista, repro.PassiveBackup},
		{repro.V1MirrorCopy, repro.PassiveBackup},
		{repro.V2MirrorDiff, repro.PassiveBackup},
		{repro.V3InlineLog, repro.PassiveBackup},
		{repro.V3InlineLog, repro.ActiveBackup},
	}
	for _, sc := range scenarios {
		for seed := uint64(1); seed <= 3; seed++ {
			lost, window := torture(sc.version, sc.backup, seed)
			fmt.Printf("%-28s %-8s seed=%d: committed=%d survived=%d lost=%d (window %s)\n",
				sc.version, sc.backup, seed, txns, txns-lost, lost, window)
		}
	}
}

// torture runs the scenario and returns how many committed transactions
// the backup lost (the 1-safe window) plus a verdict string. It aborts the
// process on any real inconsistency.
func torture(v repro.Version, b repro.BackupMode, seed uint64) (int, string) {
	cluster, err := repro.New(repro.Config{Version: v, Backup: b, DBSize: dbSize})
	if err != nil {
		log.Fatal(err)
	}

	// Each transaction overwrites one slot with its sequence number and
	// a seed-derived fill; the model mirrors every commit.
	model := make([]byte, dbSize)
	r := rand.New(rand.NewPCG(seed, seed))
	rec := make([]byte, recSize)
	for i := 0; i < txns; i++ {
		slot := r.IntN(slots)
		binary.LittleEndian.PutUint32(rec, uint32(i))
		for j := 4; j < recSize; j++ {
			rec[j] = byte(i) ^ byte(seed)
		}
		tx, err := cluster.Begin()
		if err != nil {
			log.Fatal(err)
		}
		must(tx.SetRange(slot*recSize, recSize))
		must(tx.Write(slot*recSize, rec))
		must(tx.Commit())
		copy(model[slot*recSize:], rec)
	}

	// One in-flight transaction, then the plug.
	tx, err := cluster.Begin()
	if err != nil {
		log.Fatal(err)
	}
	must(tx.SetRange(0, recSize))
	must(tx.Write(0, []byte("UNCOMMITTED-GARBAGE-DATA-32-byte")))
	must(cluster.CrashPrimary())
	must(cluster.Failover())

	survived := int(cluster.Committed())
	if survived > txns {
		log.Fatalf("%s/%s: backup claims %d commits, only %d happened", v, b, survived, txns)
	}
	lost := txns - survived

	// The recovered image must equal the model; slots whose last
	// committed write was lost in the 1-safe window are exempt (their
	// content is the previous committed value, which the model no
	// longer remembers — a full replay oracle lives in the test suite).
	got := make([]byte, dbSize)
	cluster.ReadRaw(0, got)
	dirty := 0
	for s := 0; s < slots; s++ {
		if !equal(got[s*recSize:(s+1)*recSize], model[s*recSize:(s+1)*recSize]) {
			dirty++
		}
	}
	if dirty > lost+1 { // +1 for the in-flight transaction's slot
		log.Fatalf("%s/%s: %d divergent slots for %d lost commits — corruption", v, b, dirty, lost)
	}
	return lost, fmt.Sprintf("%d slot(s) at pre-crash values", dirty)
}

func equal(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
