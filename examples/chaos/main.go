// Chaos, unattended: one primary, two backups and one spare run under the
// autopilot. Mid-workload the primary is killed — and nothing else is done.
// No Failover call, no Repair call: the heartbeat detector declares the
// primary dead, the most-caught-up backup is promoted under the lease rule,
// the spare enrolls through the online-repair engine, and commits resume.
// The program prints the cluster's own account of the incident (detection
// latency, failover latency, repair duration, time-to-restored) and proves
// the committed prefix survived.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	slots   = 4_096
	recSize = 32
	dbSize  = slots * recSize
)

func main() {
	cluster, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  dbSize,
		Backups: 2, // 1 primary + 2 backups
		Autopilot: repro.AutopilotConfig{
			HeartbeatPeriod: 50 * time.Microsecond,
			SuspectTimeout:  200 * time.Microsecond,
			AutoFailover:    true,
			AutoRepair:      true,
			Spares:          1, // + 1 spare on the shelf
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	commit := func(i uint64) {
		tx, err := cluster.Begin()
		if err != nil {
			log.Fatalf("txn %d: %v", i, err)
		}
		slot := int(i % slots)
		var rec [recSize]byte
		binary.LittleEndian.PutUint64(rec[:], i)
		must(tx.SetRange(slot*recSize, recSize))
		must(tx.Write(slot*recSize, rec[:]))
		must(tx.Commit())
	}

	fmt.Println("phase 1: healthy workload on primary + 2 backups (autopilot on)")
	var txns uint64
	for ; txns < 3_000; txns++ {
		commit(txns)
	}
	cluster.Settle()
	before := cluster.Committed()
	fmt.Printf("  committed=%d backups=%d generation=%d\n\n", before, cluster.Backups(), cluster.Generation())

	fmt.Println("phase 2: kill the primary mid-workload — and do nothing about it")
	must(cluster.CrashPrimary())
	commit(txns) // this Begin performs detection + takeover itself
	txns++

	// The promoted primary serves the committed prefix: check the last
	// pre-crash transaction before the wrapping workload overwrites it.
	var rec [recSize]byte
	cluster.ReadRaw(int(before-1)%slots*recSize, rec[:])
	if got := binary.LittleEndian.Uint64(rec[:]); got != before-1 {
		log.Fatalf("pre-crash commit lost in takeover: slot holds txn %d, want %d", got, before-1)
	}

	for end := txns + 3_000; txns < end; txns++ {
		commit(txns)
		if txns%100 == 0 {
			cluster.Settle() // idle time streams the spare's state transfer
		}
	}
	for cluster.RepairProgress().Active {
		commit(txns)
		txns++
		cluster.Settle()
	}
	fmt.Printf("  committed=%d backups=%d generation=%d (no Failover/Repair call was made)\n\n",
		cluster.Committed(), cluster.Backups(), cluster.Generation())

	fmt.Println("phase 3: the cluster's own incident report")
	for _, ev := range cluster.AutopilotEvents() {
		fmt.Printf("  %-7s %-9s detected in %7.1fus  failover %6.1fus  repair %6.2fms  restored in %6.2fms\n",
			ev.Kind, ev.Node,
			ev.MTTD().Seconds()*1e6,
			ev.FailoverLatency().Seconds()*1e6,
			ev.RepairDuration().Seconds()*1e3,
			ev.MTTR().Seconds()*1e3)
	}

	if cluster.Generation() != 1 || cluster.Backups() != 2 {
		log.Fatalf("cluster did not heal itself: generation=%d backups=%d",
			cluster.Generation(), cluster.Backups())
	}
	fmt.Printf("\npre-crash txn %d verified on the promoted primary; redundancy restored unattended\n", before-1)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
