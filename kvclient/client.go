// Package kvclient is the Go client for cmd/kvserver: a connection-
// pooled, pipelining, retrying front door to a replicated kv keyspace
// served over the kvwire protocol.
//
// A Client owns a small pool of TCP connections. Each connection
// pipelines: any number of goroutines may issue operations through the
// same connection, requests are written back to back, and responses —
// which the server returns strictly in order — are matched to callers
// by position. With Options.ReadMode set, reads are served under an
// explicit consistency discipline (read-your-writes, bounded staleness
// or quorum) by the deployment's backup replicas: the client tracks the
// commit tokens mutation responses carry and sends the merged session
// floor with every read. Operations that fail with the retryable wire class
// (StatusRetry: the deployment is failing over) or with a transport
// error are retried with exponential backoff against a fresh connection
// until RetryBudget is exhausted; PUT, DELETE and TXN are last-writer-
// wins idempotent, so re-sending a request whose response was lost is
// safe.
//
// Error taxonomy mirrors the wire statuses: ErrNotFound (absent key),
// ErrDegraded (safety level unmet — the mutation may be durable but was
// not acknowledged at the deployment's configured discipline),
// ErrRetryBudget (the failover outlasted the client's patience, wrapped
// around the last underlying error), ErrOpTimeout (one attempt outlived
// Options.OpTimeout; the outcome is unknown and the connection is
// abandoned) and ServerError (terminal operation errors, message
// carried from the server).
package kvclient

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvwire"
	"repro/internal/obs"
)

// Client errors.
var (
	// ErrNotFound is returned by Get and Delete for an absent key.
	ErrNotFound = errors.New("kvclient: key not found")
	// ErrDegraded is returned when the deployment cannot meet its
	// configured safety level: the operation may be durable on the
	// serving node but was not acknowledged at full strength.
	ErrDegraded = errors.New("kvclient: deployment degraded below its safety level")
	// ErrRetryBudget is returned when retryable failures (failover in
	// progress, dropped connections) outlast Options.RetryBudget.
	ErrRetryBudget = errors.New("kvclient: retry budget exhausted")
	// ErrClosed is returned by operations on a closed Client.
	ErrClosed = errors.New("kvclient: client is closed")
	// ErrOpTimeout is returned when a single attempt outlives
	// Options.OpTimeout. The operation's outcome is unknown: the request
	// may have been applied and its response lost with the poisoned
	// connection.
	ErrOpTimeout = errors.New("kvclient: operation timed out")
	// ErrTooLarge is returned for keys or values beyond the protocol
	// limits, before anything hits the wire.
	ErrTooLarge = errors.New("kvclient: key or value exceeds the protocol limit")
)

// ServerError is a terminal operation error reported by the server
// (StatusErr): retrying the identical request fails identically.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "kvclient: server: " + e.Msg }

// Read modes for Options.ReadMode: where GETs and SCANs may be served.
// They mirror the repro facade's consistency knob (see repro.ReadOpts).
const (
	// ReadPrimary serializes every read through the primary — the
	// protocol's classic behavior and the default.
	ReadPrimary byte = kvwire.ModePrimary
	// ReadYourWrites lets backup replicas serve reads that have caught
	// up to the session's last acknowledged mutation (the client tracks
	// the commit tokens mutation responses carry and sends the merged
	// floor with every read).
	ReadYourWrites byte = kvwire.ModeRYW
	// ReadBounded lets any backup within Options.StalenessBound commit
	// sequences of the primary serve.
	ReadBounded byte = kvwire.ModeBounded
	// ReadQuorum reads a majority of the replica group and serves the
	// freshest view, read-repairing laggards.
	ReadQuorum byte = kvwire.ModeQuorum
)

// Options tunes a Client. The zero value is serviceable.
type Options struct {
	// Conns is the connection-pool size (default 4). Operations are
	// spread across the pool round-robin; each connection pipelines
	// independently.
	Conns int
	// ReadMode routes GETs and SCANs through the deployment's replica
	// read views (ReadYourWrites, ReadBounded, ReadQuorum). The default
	// ReadPrimary sends byte-identical classic frames; any other mode
	// appends the kvwire consistency tail, which pre-extension servers
	// reject as malformed — point non-default modes only at servers
	// that speak it.
	ReadMode byte
	// StalenessBound is ReadBounded's advertised lag bound in commit
	// sequences (default 128).
	StalenessBound uint64
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
	// RetryBudget bounds the total time one operation may spend
	// retrying the retryable error class (default 15s). Zero uses the
	// default; negative disables retries.
	RetryBudget time.Duration
	// RetryDegraded additionally retries ErrDegraded responses.
	// Mutations are idempotent, so this is safe — but a deployment
	// stuck below its safety level turns every call into a full budget
	// wait, so it is off by default.
	RetryDegraded bool
	// OpTimeout bounds one attempt's round trip on the wire (0 = no
	// deadline). Responses are matched to callers by position, so a
	// timed-out waiter cannot be skipped: the deadline poisons the
	// connection — failing every operation in flight on it, which
	// retry on fresh connections — and the timed-out call itself
	// returns ErrOpTimeout without retrying, since its outcome is
	// unknown and the caller asked for bounded latency.
	OpTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 15 * time.Second
	}
	if o.StalenessBound == 0 {
		o.StalenessBound = 128
	}
	return o
}

// Entry is one key/value pair returned by Scan.
type Entry struct {
	Key []byte
	Val []byte
}

// Op is one operation of a Txn: a put (Val set) or a delete.
type Op struct {
	Key    []byte
	Val    []byte
	Delete bool
}

// Stats mirrors the server's OpStats document.
type Stats = kvwire.Stats

// Metrics mirrors the server's OpMetrics document: the served
// deployment's observability snapshot merged with the server's own
// instruments (the same type repro.Metrics aliases).
type Metrics = obs.Snapshot

// Client is a pooled, pipelining kvserver client. Safe for concurrent
// use.
type Client struct {
	addr   string
	opts   Options
	next   atomic.Uint64
	closed atomic.Bool

	mu    sync.Mutex
	conns []*conn

	// Session commit token (non-default ReadMode only): the element-wise
	// maximum over every mutation response's token. Pipelined responses
	// may land out of order across the pool, so merging — never
	// overwriting — keeps the floor monotone.
	tokMu sync.Mutex
	tok   []uint64

	retries atomic.Uint64
	redials atomic.Uint64
}

// Dial connects a Client to a kvserver address. Connections are
// established lazily, so Dial succeeds even while the server is still
// coming up; the first operation pays the dial.
func Dial(addr string, opts Options) *Client {
	opts = opts.withDefaults()
	return &Client{addr: addr, opts: opts, conns: make([]*conn, opts.Conns)}
}

// Retries returns the number of operation retries performed (failovers
// ridden out, connections re-dialed mid-operation).
func (c *Client) Retries() uint64 { return c.retries.Load() }

// Redials returns the number of pool connections re-established after
// a transport failure.
func (c *Client) Redials() uint64 { return c.redials.Load() }

// Close tears down the pool. In-flight operations fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cn := range c.conns {
		if cn != nil {
			cn.close(ErrClosed)
			c.conns[i] = nil
		}
	}
	return nil
}

// mergeToken folds a mutation response's commit token into the session
// floor, element-wise maximum (see Client.tok).
func (c *Client) mergeToken(t []uint64) {
	c.tokMu.Lock()
	for len(c.tok) < len(t) {
		c.tok = append(c.tok, 0)
	}
	for i, v := range t {
		if v > c.tok[i] {
			c.tok[i] = v
		}
	}
	c.tokMu.Unlock()
}

// trackToken is the mutation parseOK when a read mode is in play: it
// harvests the response's commit token. Old servers send an empty body,
// which parses to no token.
func (c *Client) trackToken(body []byte) error {
	tok, err := kvwire.ParseTokenBody(body, nil)
	if err != nil {
		return err
	}
	c.mergeToken(tok)
	return nil
}

// mutParse returns the StatusOK body parser for mutations: token
// harvesting with a read mode configured, nil (body ignored) otherwise.
func (c *Client) mutParse() func([]byte) error {
	if c.opts.ReadMode == ReadPrimary {
		return nil
	}
	return c.trackToken
}

// Token returns a copy of the session's commit token — the floor a
// subsequent read-your-writes read is guaranteed to observe. Empty until
// the first mutation under a non-default ReadMode.
func (c *Client) Token() []uint64 {
	c.tokMu.Lock()
	defer c.tokMu.Unlock()
	return append([]uint64(nil), c.tok...)
}

// Put stores value under key.
func (c *Client) Put(key, value []byte) error {
	if len(key) > kvwire.MaxKey || len(value) > kvwire.MaxValue {
		return ErrTooLarge
	}
	_, err := c.do(func(buf []byte) []byte { return kvwire.AppendPut(buf, key, value) }, c.mutParse())
	return err
}

// Get returns the value under key (freshly allocated), served per
// Options.ReadMode.
func (c *Client) Get(key []byte) ([]byte, error) {
	if len(key) > kvwire.MaxKey {
		return nil, ErrTooLarge
	}
	var val []byte
	var tokBuf []uint64
	_, err := c.do(
		func(buf []byte) []byte {
			if c.opts.ReadMode == ReadPrimary {
				return kvwire.AppendGet(buf, key)
			}
			c.tokMu.Lock()
			tokBuf = append(tokBuf[:0], c.tok...)
			c.tokMu.Unlock()
			return kvwire.AppendGetAt(buf, key, c.opts.ReadMode, c.opts.StalenessBound, tokBuf)
		},
		func(body []byte) error {
			val = append([]byte(nil), body...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return val, nil
}

// Delete removes key.
func (c *Client) Delete(key []byte) error {
	if len(key) > kvwire.MaxKey {
		return ErrTooLarge
	}
	_, err := c.do(func(buf []byte) []byte { return kvwire.AppendDelete(buf, key) }, c.mutParse())
	return err
}

// Scan returns up to limit entries in the store's bucket order starting
// at start's natural position (nil = the beginning), served per
// Options.ReadMode. limit is capped at kvwire.MaxScan; the server may
// return fewer entries than exist if the response would outgrow a frame.
func (c *Client) Scan(start []byte, limit int) ([]Entry, error) {
	if len(start) > kvwire.MaxKey {
		return nil, ErrTooLarge
	}
	if limit > kvwire.MaxScan {
		limit = kvwire.MaxScan
	}
	var entries []Entry
	var tokBuf []uint64
	_, err := c.do(
		func(buf []byte) []byte {
			if c.opts.ReadMode == ReadPrimary {
				return kvwire.AppendScan(buf, start, limit)
			}
			c.tokMu.Lock()
			tokBuf = append(tokBuf[:0], c.tok...)
			c.tokMu.Unlock()
			return kvwire.AppendScanAt(buf, start, limit, c.opts.ReadMode, c.opts.StalenessBound, tokBuf)
		},
		func(body []byte) error {
			entries = entries[:0]
			return kvwire.ParseScanBody(body, func(k, v []byte) error {
				entries = append(entries, Entry{
					Key: append([]byte(nil), k...),
					Val: append([]byte(nil), v...),
				})
				return nil
			})
		})
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// Txn applies a batch of puts and deletes through the server's
// multi-key transaction: on a single-shard deployment the batch commits
// atomically.
func (c *Client) Txn(ops []Op) error {
	if len(ops) > kvwire.MaxTxn {
		return fmt.Errorf("%w: %d ops (max %d)", ErrTooLarge, len(ops), kvwire.MaxTxn)
	}
	wireOps := make([]kvwire.Op, len(ops))
	for i, op := range ops {
		if len(op.Key) > kvwire.MaxKey || len(op.Val) > kvwire.MaxValue {
			return ErrTooLarge
		}
		wireOps[i] = kvwire.Op{Kind: kvwire.TxnPut, Key: op.Key, Val: op.Val}
		if op.Delete {
			wireOps[i].Kind = kvwire.TxnDelete
		}
	}
	_, err := c.do(func(buf []byte) []byte { return kvwire.AppendTxn(buf, wireOps) }, c.mutParse())
	return err
}

// Stats fetches the server's serving counters.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	_, err := c.do(
		func(buf []byte) []byte { return kvwire.AppendEmpty(buf, kvwire.OpStats) },
		func(body []byte) error { return json.Unmarshal(body, &st) })
	return st, err
}

// Metrics fetches the server's merged observability snapshot: per-opcode
// latency histograms, the deployment's commit/WAL/read-route instruments
// and the failure/repair event ring. Empty when neither the server nor
// the deployment behind it is instrumented. Old servers reject the
// opcode as malformed, which surfaces as a terminal ServerError.
func (c *Client) Metrics() (Metrics, error) {
	var m Metrics
	_, err := c.do(
		func(buf []byte) []byte { return kvwire.AppendEmpty(buf, kvwire.OpMetrics) },
		func(body []byte) error { return json.Unmarshal(body, &m) })
	return m, err
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.do(func(buf []byte) []byte { return kvwire.AppendEmpty(buf, kvwire.OpPing) }, nil)
	return err
}

// do runs one operation with the client's retry policy: encode sends
// the request (into a pooled buffer), parseOK consumes a StatusOK body
// (nil for empty-bodied operations).
func (c *Client) do(encode func([]byte) []byte, parseOK func([]byte) error) (status byte, err error) {
	deadline := time.Now().Add(c.opts.RetryBudget)
	backoff := 200 * time.Microsecond
	for attempt := 0; ; attempt++ {
		if c.closed.Load() {
			return 0, ErrClosed
		}
		status, err = c.doOnce(encode, parseOK)
		if err == nil {
			return status, nil
		}
		if !c.retryable(err) || c.opts.RetryBudget < 0 || time.Now().After(deadline) {
			if c.retryable(err) {
				return status, fmt.Errorf("%w (last error: %v)", ErrRetryBudget, err)
			}
			return status, err
		}
		c.retries.Add(1)
		time.Sleep(backoff)
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}

// retryable classifies an error for the retry loop: the wire's retry
// class and transport failures are retryable; ErrDegraded only when
// configured.
func (c *Client) retryable(err error) bool {
	var se *ServerError
	switch {
	case errors.Is(err, errWireRetry), errors.Is(err, errTransport):
		return true
	case errors.Is(err, ErrDegraded):
		return c.opts.RetryDegraded
	case errors.As(err, &se), errors.Is(err, ErrNotFound), errors.Is(err, ErrClosed),
		errors.Is(err, ErrTooLarge), errors.Is(err, ErrOpTimeout):
		return false
	default:
		return false
	}
}

// Sentinel classes used inside the retry loop.
var (
	errWireRetry = errors.New("kvclient: server failing over")
	errTransport = errors.New("kvclient: connection failure")
)

// doOnce performs one attempt over one pooled connection.
func (c *Client) doOnce(encode func([]byte) []byte, parseOK func([]byte) error) (byte, error) {
	cn, err := c.conn(int(c.next.Add(1)))
	if err != nil {
		return 0, fmt.Errorf("%w: dial: %v", errTransport, err)
	}
	body, err := cn.roundTrip(encode, c.opts.OpTimeout)
	if err != nil {
		return 0, err
	}
	defer kvwire.PutBuf(body)
	status := body[0]
	switch status {
	case kvwire.StatusOK:
		if parseOK != nil {
			if err := parseOK(body[1:]); err != nil {
				return status, err
			}
		}
		return status, nil
	case kvwire.StatusNotFound:
		return status, ErrNotFound
	case kvwire.StatusRetry:
		return status, fmt.Errorf("%w: %s", errWireRetry, body[1:])
	case kvwire.StatusDegraded:
		return status, fmt.Errorf("%w: %s", ErrDegraded, body[1:])
	case kvwire.StatusErr:
		return status, &ServerError{Msg: string(body[1:])}
	case kvwire.StatusBad:
		// The server is about to close the connection; surface as a
		// terminal protocol error.
		return status, &ServerError{Msg: "protocol: " + string(body[1:])}
	default:
		return status, &ServerError{Msg: fmt.Sprintf("unknown status %d", status)}
	}
}

// conn returns pool slot i%Conns, dialing or re-dialing it if needed.
func (c *Client) conn(i int) (*conn, error) {
	slot := i % c.opts.Conns
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if cn := c.conns[slot]; cn != nil && !cn.dead() {
		return cn, nil
	}
	if c.conns[slot] != nil {
		c.redials.Add(1)
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cn := newConn(nc)
	c.conns[slot] = cn
	return cn, nil
}

// conn is one pipelining connection: writes serialize on mu, responses
// are matched to callers in FIFO order by the reader goroutine. The
// waiter is enqueued before its request bytes go out, so a response can
// never outrun its waiter.
type conn struct {
	c  net.Conn
	mu sync.Mutex // serializes request writes + pending enqueue
	bw *bufio.Writer
	// pending is the client-side in-flight window: a caller issuing
	// request N+cap blocks until response N has been read, bounding
	// per-connection pipelining depth.
	pending chan chan result
	once    sync.Once
	dying   chan struct{}         // closed on first failure
	errp    atomic.Pointer[error] // set before dying closes
}

type result struct {
	body []byte // pooled; receiver recycles
	err  error
}

func newConn(nc net.Conn) *conn {
	cn := &conn{
		c:       nc,
		bw:      bufio.NewWriterSize(nc, 16<<10),
		pending: make(chan chan result, 128),
		dying:   make(chan struct{}),
	}
	go cn.readLoop()
	return cn
}

func (cn *conn) dead() bool { return cn.errp.Load() != nil }

func (cn *conn) close(err error) {
	cn.once.Do(func() {
		cn.errp.Store(&err)
		close(cn.dying)
		cn.c.Close()
	})
}

// roundTrip writes one request and waits for its response body (pooled;
// caller recycles). A positive opTimeout bounds the wait; on expiry the
// connection is poisoned (see Options.OpTimeout) and ErrOpTimeout is
// returned.
func (cn *conn) roundTrip(encode func([]byte) []byte, opTimeout time.Duration) ([]byte, error) {
	waiter := make(chan result, 1)
	buf := encode(kvwire.GetBuf())
	cn.mu.Lock()
	if cn.dead() {
		cn.mu.Unlock()
		kvwire.PutBuf(buf)
		return nil, fmt.Errorf("%w: %v", errTransport, *cn.errp.Load())
	}
	// Enqueue before writing: the read loop matches responses to
	// waiters positionally, so the waiter must exist before the server
	// can possibly answer. The dying case keeps a full window from
	// deadlocking against a read loop that has stopped draining.
	select {
	case cn.pending <- waiter:
	case <-cn.dying:
		cn.mu.Unlock()
		kvwire.PutBuf(buf)
		return nil, fmt.Errorf("%w: %v", errTransport, *cn.errp.Load())
	}
	_, werr := cn.bw.Write(buf)
	if werr == nil {
		werr = cn.bw.Flush()
	}
	cn.mu.Unlock()
	kvwire.PutBuf(buf)
	if werr != nil {
		// The waiter is already queued; poisoning the connection makes
		// the read loop fail it (and everything else in flight).
		cn.close(werr)
		return nil, fmt.Errorf("%w: write: %v", errTransport, werr)
	}
	var res result
	if opTimeout > 0 {
		timer := time.NewTimer(opTimeout)
		select {
		case res = <-waiter:
			timer.Stop()
		case <-timer.C:
			// The read loop matches responses to waiters positionally, so
			// an abandoned waiter cannot be skipped: kill the connection.
			// Its read loop then settles this waiter (and fails the rest
			// of the in-flight window, which retries elsewhere).
			terr := fmt.Errorf("%w after %v", ErrOpTimeout, opTimeout)
			cn.close(terr)
			if res = <-waiter; res.body != nil {
				// The response raced the close; the outcome still counts
				// as unknown to the caller, who asked for bounded latency.
				kvwire.PutBuf(res.body)
			}
			return nil, terr
		}
	} else {
		res = <-waiter
	}
	if res.err != nil {
		return nil, fmt.Errorf("%w: %v", errTransport, res.err)
	}
	return res.body, nil
}

// readLoop delivers responses to waiters in order; on any read error it
// poisons the connection and fails every pending waiter (their
// operations retry on a fresh connection). The drain runs under mu:
// once it holds the lock, every enqueued waiter is in the channel and
// no new one can enter (roundTrip checks dead() under the same lock),
// so nothing is orphaned.
func (cn *conn) readLoop() {
	br := bufio.NewReaderSize(cn.c, 16<<10)
	for {
		buf, err := kvwire.ReadFrame(br, kvwire.GetBuf(), kvwire.MaxFrame)
		if err == nil {
			select {
			case w := <-cn.pending:
				w <- result{body: buf}
				continue
			default:
				// A response nobody asked for: protocol desync.
				err = errors.New("kvclient: unsolicited response")
				kvwire.PutBuf(buf)
			}
		}
		cn.close(err)
		cn.mu.Lock()
		for {
			select {
			case w := <-cn.pending:
				w <- result{err: err}
			default:
				cn.mu.Unlock()
				return
			}
		}
	}
}
