package kvclient

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/kvwire"
)

// mute accepts one connection and reads (discards) everything written to
// it without ever answering — the shape of a server that hangs mid-
// failover. Returns the listen address and a stop func.
func mute(t *testing.T) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var (
		mu    sync.Mutex
		conns []net.Conn
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String(), func() {
		l.Close()
		<-done
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}

// TestConnDeathFailsAllInFlight pins the positional-FIFO failure
// contract directly at the conn layer: many pipelined round trips are
// parked on one connection; when the peer dies, every one of them must
// fail promptly — none may hang waiting for a response slot that will
// never be read.
func TestConnDeathFailsAllInFlight(t *testing.T) {
	addr, stop := mute(t)
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cn := newConn(nc)
	defer cn.close(errors.New("test over"))

	const inflight = 32
	errs := make(chan error, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cn.roundTrip(func(buf []byte) []byte {
				return kvwire.AppendEmpty(buf, kvwire.OpPing)
			}, 0)
			errs <- err
		}()
	}
	// Let the requests land in the pending window, then kill the peer.
	time.Sleep(50 * time.Millisecond)
	stop()

	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight operations still blocked 5s after the connection died")
	}
	close(errs)
	n := 0
	for err := range errs {
		n++
		if err == nil {
			t.Fatal("an in-flight operation succeeded against a dead connection")
		}
		if !errors.Is(err, errTransport) {
			t.Fatalf("in-flight failure class = %v, want errTransport", err)
		}
	}
	if n != inflight {
		t.Fatalf("%d of %d in-flight operations reported", n, inflight)
	}
	if !cn.dead() {
		t.Fatal("connection not marked dead after peer loss")
	}
}

// TestOpTimeout pins the per-operation deadline: against a server that
// never answers, an operation with OpTimeout set returns ErrOpTimeout
// in bounded time (no retry — the outcome is unknown), other operations
// in flight on the poisoned connection fail over, and the client dials
// a fresh connection for the next call instead of reusing the corpse.
func TestOpTimeout(t *testing.T) {
	addr, stop := mute(t)
	defer stop()

	c := Dial(addr, Options{Conns: 1, OpTimeout: 100 * time.Millisecond, RetryBudget: -1})
	defer c.Close()

	start := time.Now()
	err := c.Ping()
	if !errors.Is(err, ErrOpTimeout) {
		t.Fatalf("Ping against a mute server = %v, want ErrOpTimeout", err)
	}
	if wait := time.Since(start); wait > 3*time.Second {
		t.Fatalf("deadline took %v to fire with OpTimeout=100ms", wait)
	}

	// The poisoned connection must not be handed out again: the next
	// operation redials (and times out the same way — the server is
	// still mute — rather than failing instantly on a dead conn).
	if err := c.Ping(); !errors.Is(err, ErrOpTimeout) {
		t.Fatalf("second Ping = %v, want ErrOpTimeout on a fresh connection", err)
	}
	if c.Redials() == 0 {
		t.Fatal("client never re-dialed after the poisoned connection")
	}
}

// TestOpTimeoutZeroMeansNoDeadline double-checks the default: with no
// OpTimeout a waiter parks until the connection itself dies, and the
// failure surfaces as the retryable transport class, not a timeout.
func TestOpTimeoutZeroMeansNoDeadline(t *testing.T) {
	addr, stop := mute(t)
	defer stop()

	c := Dial(addr, Options{Conns: 1, RetryBudget: -1})
	defer c.Close()

	done := make(chan error, 1)
	go func() { done <- c.Ping() }()
	select {
	case err := <-done:
		t.Fatalf("Ping returned %v before the connection died", err)
	case <-time.After(300 * time.Millisecond):
	}
	stop()
	select {
	case err := <-done:
		if errors.Is(err, ErrOpTimeout) {
			t.Fatalf("conn death surfaced as ErrOpTimeout: %v", err)
		}
		if err == nil {
			t.Fatal("Ping succeeded against a mute server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Ping still blocked 5s after the connection died")
	}
}
