package repro_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/tpc"
)

// obsRun drives a deterministic Debit-Credit interval — commits, a
// crash/failover/repair cycle, more commits — against one cluster and
// returns the sim metrics a PR 1–8 bench would scrape.
func obsRun(t *testing.T, metrics bool) (repro.DB, repro.Stats, repro.Traffic, time.Duration) {
	t.Helper()
	const db = 4 << 20
	c, err := repro.New(repro.Config{
		Version:     repro.V3InlineLog,
		Backup:      repro.ActiveBackup,
		DBSize:      db,
		Backups:     3,
		Safety:      repro.QuorumSafe,
		CommitBatch: 8,
		Metrics:     metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tpc.NewDebitCredit(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(c.Load); err != nil {
		t.Fatal(err)
	}
	r := tpc.NewRand(7)
	txn := func(i int64) {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Txn(r, tx, i); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 300; i++ {
		txn(i)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	if err := c.CrashPrimary(); err != nil {
		t.Fatal(err)
	}
	if err := c.Failover(); err != nil {
		t.Fatal(err)
	}
	if err := c.Repair(); err != nil {
		t.Fatal(err)
	}
	for i := int64(300); i < 600; i++ {
		txn(i)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	return c, c.Stats(), c.NetTraffic(), c.Elapsed()
}

// TestMetricsOffBitForBit is the off-switch contract: the same
// deterministic interval — commits, group-commit flushes, a full
// crash/failover/repair cycle — produces bit-for-bit identical sim
// metrics (Stats, NetTraffic, Elapsed) with and without the obs registry
// attached, and with Config.Metrics off the Metrics() snapshot is empty.
// Instrumentation observes the simulation; it must never perturb it.
func TestMetricsOffBitForBit(t *testing.T) {
	off, offStats, offNet, offElapsed := obsRun(t, false)
	on, onStats, onNet, onElapsed := obsRun(t, true)

	if offStats != onStats {
		t.Errorf("Stats diverge: off %+v, on %+v", offStats, onStats)
	}
	if offNet != onNet {
		t.Errorf("NetTraffic diverges: off %+v, on %+v", offNet, onNet)
	}
	if offElapsed != onElapsed {
		t.Errorf("Elapsed diverges: off %v, on %v", offElapsed, onElapsed)
	}

	if snap := off.Metrics(); !snap.Empty() {
		t.Errorf("Metrics off: non-empty snapshot %+v", snap.Names())
	}
	snap := on.Metrics()
	if snap.Empty() {
		t.Fatal("Metrics on: empty snapshot")
	}
	// Stats is a measured-interval counter (failover cuts it); the obs
	// counter, like Committed(), spans the deployment's whole life.
	if got := snap.Counter(replication.MetricCommitTxns); got != on.Committed() {
		t.Errorf("repl.commit.txns = %d, want %d committed", got, on.Committed())
	}
	if h := snap.Hist("repl.commit.latency.quorum"); h.Count == 0 {
		t.Error("quorum commit latency histogram never observed")
	}
	if len(snap.EventsKind(obs.EventFailover)) != 1 {
		t.Errorf("failover events = %d, want 1", len(snap.EventsKind(obs.EventFailover)))
	}
	if len(snap.EventsKind(obs.EventRepairCutover)) == 0 {
		t.Error("repair cutover never traced")
	}
}

// TestMetricsResetWindow: ResetMeasurement cuts an obs window atomically —
// counters and histograms zero, the window epoch bumps so a scraper can
// tell deltas across the cut apart, and the event ring (a timeline, like
// the FailureEvent record) survives.
func TestMetricsResetWindow(t *testing.T) {
	c, _, _, _ := obsRun(t, true)
	before := c.Metrics()
	if before.Counter(replication.MetricCommitTxns) == 0 {
		t.Fatal("no commits recorded before reset")
	}
	events := len(before.Events)

	c.ResetMeasurement()
	after := c.Metrics()
	if after.Window != before.Window+1 {
		t.Errorf("window epoch %d after reset, want %d", after.Window, before.Window+1)
	}
	if got := after.Counter(replication.MetricCommitTxns); got != 0 {
		t.Errorf("repl.commit.txns = %d after reset, want 0", got)
	}
	if h := after.Hist("repl.commit.latency.quorum"); h.Count != 0 {
		t.Errorf("commit latency count = %d after reset, want 0", h.Count)
	}
	if len(after.Events) != events {
		t.Errorf("reset dropped events: %d -> %d", events, len(after.Events))
	}
}

// TestMetricsScrapeRace is the issue's concurrency drill: 4 goroutines
// scrape DB.Metrics() while 8 writers commit and chaos crashes the
// primary under the autopilot. Run under -race this pins the scrape path
// (registry snapshot, ring copy, hist buckets) as data-race-free against
// the hot path; the assertions check scrape coherence — event sequence
// numbers never run backwards and the final timeline holds the
// detect→failover trace.
func TestMetricsScrapeRace(t *testing.T) {
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  4 << 20,
		Backups: 3,
		Safety:  repro.QuorumSafe,
		Metrics: true,
		Autopilot: repro.AutopilotConfig{
			HeartbeatPeriod: 200 * time.Microsecond,
			AutoFailover:    true,
			AutoRepair:      true,
			Spares:          1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 8
		each    = 150
	)
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	var (
		wg        sync.WaitGroup
		committed atomic.Int64
		done      = make(chan struct{})
	)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				off := (g*each + i) * 64
				deadline := time.Now().Add(10 * time.Second)
				for {
					err := func() error {
						tx, err := c.Begin()
						if err != nil {
							return err
						}
						if err := tx.SetRange(off, 64); err != nil {
							_ = tx.Abort()
							return err
						}
						if err := tx.Write(off, payload); err != nil {
							_ = tx.Abort()
							return err
						}
						return tx.Commit()
					}()
					if err == nil {
						committed.Add(1)
						break
					}
					// Mid-failover refusals (crashed, lease fenced, below
					// safety) are retryable; anything persisting past the
					// deadline is a real failure. The detector runs on the
					// simulated clock, so a refused writer settles the
					// deployment — idle sim time is what lets the autopilot
					// declare the primary dead and promote.
					if time.Now().After(deadline) {
						t.Errorf("writer %d op %d never recovered: %v", g, i, err)
						return
					}
					c.Settle()
				}
			}
		}(g)
	}

	// 4 concurrent scrapers: every snapshot must be internally coherent.
	var swg sync.WaitGroup
	for s := 0; s < 4; s++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			var lastSeq uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := c.Metrics()
				if n := len(snap.Events); n > 0 {
					if seq := snap.Events[n-1].Seq; seq < lastSeq {
						t.Errorf("event seq ran backwards: %d after %d", seq, lastSeq)
						return
					} else {
						lastSeq = seq
					}
				}
				time.Sleep(50 * time.Microsecond)
			}
		}()
	}

	// Chaos: kill the primary once a quarter of the load has landed; the
	// autopilot promotes and repairs while writers retry through it.
	for committed.Load() < writers*each/8 {
		time.Sleep(10 * time.Microsecond)
	}
	if err := c.CrashPrimary(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The load may have drained before the crash landed; the unattended
	// takeover rides on admission, so keep knocking (Begin pumps the
	// failure loop) until the promotion reaches the ring.
	for i := 0; i < 1000 && len(c.Metrics().EventsKind(obs.EventFailover)) == 0; i++ {
		if tx, err := c.Begin(); err == nil {
			_ = tx.Abort()
		}
		c.Settle()
	}
	close(done)
	swg.Wait()

	snap := c.Metrics()
	if len(snap.EventsKind(obs.EventDetectDead)) == 0 {
		t.Error("crash never traced as detect.dead")
	}
	if len(snap.EventsKind(obs.EventFailover)) == 0 {
		t.Error("promotion never traced as failover")
	}
	if got := snap.Counter(replication.MetricCommitTxns); got < uint64(committed.Load()) {
		t.Errorf("repl.commit.txns = %d, want >= %d acked commits", got, committed.Load())
	}
}

// TestShardedMetricsMerge: the sharded facade merges its per-shard
// registries into one snapshot — counters sum, and every event is
// stamped with its owning shard so a trace reads unambiguously.
func TestShardedMetricsMerge(t *testing.T) {
	sc, err := repro.NewSharded(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  4 << 20,
		Backups: 2,
		Metrics: true,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	const txns = 40
	for i := 0; i < txns; i++ {
		off := (i % 2) * sc.ShardSize() // alternate shards
		tx, err := sc.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.SetRange(off, 64); err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(off, payload); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	sc.Settle()
	// Fail shard 1 only: its events must carry Shard == 1.
	if err := sc.CrashPrimary(1); err != nil {
		t.Fatal(err)
	}
	if err := sc.Failover(1); err != nil {
		t.Fatal(err)
	}

	snap := sc.Metrics()
	if got := snap.Counter(replication.MetricCommitTxns); got != txns {
		t.Errorf("merged repl.commit.txns = %d, want %d", got, txns)
	}
	fails := snap.EventsKind(obs.EventFailover)
	if len(fails) != 1 {
		t.Fatalf("failover events = %d, want 1", len(fails))
	}
	if fails[0].Shard != 1 {
		t.Errorf("failover stamped shard %d, want 1", fails[0].Shard)
	}
}

// TestChaosEventTimeline is the live-scrape acceptance drill: the seeded
// unattended chaos run (tpc.RunChaos) with the registry attached, scraped
// concurrently, must expose each injected fault as a detector transition
// followed by a failover and a repair cutover in the event ring.
func TestChaosEventTimeline(t *testing.T) {
	const db = 4 << 20
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  db,
		Backups: 3,
		Metrics: true,
		Autopilot: repro.AutopilotConfig{
			HeartbeatPeriod: 50 * time.Microsecond,
			SuspectTimeout:  200 * time.Microsecond,
			AutoFailover:    true,
			AutoRepair:      true,
			Spares:          8,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tpc.NewDebitCredit(db)
	if err != nil {
		t.Fatal(err)
	}

	// Live scraper riding along with the chaos run.
	done := make(chan struct{})
	var scrapes atomic.Int64
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			if !c.Metrics().Empty() {
				scrapes.Add(1)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	res, err := tpc.RunChaos(c, w, tpc.ChaosOptions{Warmup: 300, Seed: 1})
	close(done)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("chaos run injected no faults")
	}
	if scrapes.Load() == 0 {
		t.Error("live scraper never saw a populated snapshot")
	}

	snap := c.Metrics()
	detects := append(snap.EventsKind(obs.EventDetectSuspect), snap.EventsKind(obs.EventDetectDead)...)
	fails := snap.EventsKind(obs.EventFailover)
	cuts := snap.EventsKind(obs.EventRepairCutover)
	// Every handled fault opens a repair job; an enrolled member's death
	// additionally crosses the detector (a mid-join replica's crash is
	// noticed by its repair job instead — repair.abort — because the
	// detector only watches enrolled members).
	repairs := len(snap.EventsKind(obs.EventRepairStart))
	if repairs < len(res.Events) {
		t.Errorf("repair jobs traced: %d, want >= %d handled faults", repairs, len(res.Events))
	}
	primaryCrashes := 0
	for _, f := range res.Injected {
		if f.Kind == "crash-primary" {
			primaryCrashes++
		}
	}
	if len(fails) < primaryCrashes {
		t.Errorf("failovers traced: %d, want >= %d primary crashes", len(fails), primaryCrashes)
	}
	if len(detects) == 0 || len(cuts) == 0 {
		t.Fatalf("incomplete fault trace: %d detector transitions, %d cutovers", len(detects), len(cuts))
	}
	// Causality in the ring: something was detected before the first
	// promotion, and the first repair completed after it.
	firstDetect, firstFail := detects[0].Seq, fails[0].Seq
	for _, e := range detects[1:] {
		if e.Seq < firstDetect {
			firstDetect = e.Seq
		}
	}
	if firstDetect > firstFail {
		t.Errorf("first failover (seq %d) precedes every detection (first seq %d)", firstFail, firstDetect)
	}
	if cuts[0].Seq < firstFail {
		t.Errorf("first repair cutover (seq %d) precedes first failover (seq %d)", cuts[0].Seq, firstFail)
	}
}
