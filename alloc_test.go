package repro_test

import (
	"testing"

	"repro"
	"repro/internal/tpc"
)

// TestCommitPathZeroAllocs pins the steady-state Debit-Credit commit path
// to zero allocations per transaction: the recycled vista.Tx, the redo
// channel's staged buffers, the accessor word scratch and the batched ack
// scratch together mean a warmed transaction touches the allocator not at
// all. Any regression here is a performance bug on the hottest path in the
// repository. The instrumented variant attaches the obs registry
// (Config.Metrics) and must hold the same zero: instruments are plain
// atomics recording into preallocated buckets, so observability costs
// cycles, never allocations.
func TestCommitPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	for _, metrics := range []bool{false, true} {
		name := "bare"
		if metrics {
			name = "instrumented"
		}
		t.Run(name, func(t *testing.T) {
			c, err := repro.New(repro.Config{
				Version: repro.V3InlineLog,
				Backup:  repro.ActiveBackup,
				DBSize:  8 << 20,
				Metrics: metrics,
			})
			if err != nil {
				t.Fatal(err)
			}
			w, err := tpc.NewDebitCredit(8 << 20)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Populate(c.Load); err != nil {
				t.Fatal(err)
			}
			r := tpc.NewRand(1)
			i := int64(0)
			txn := func() {
				tx, err := c.Begin()
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Txn(r, tx, i); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				i++
			}
			// Warm every pool and slice capacity on the path (ring scratch,
			// redo staging, write-buffer tables) before counting.
			for k := 0; k < 2000; k++ {
				txn()
			}
			if allocs := testing.AllocsPerRun(500, txn); allocs != 0 {
				t.Fatalf("steady-state Debit-Credit commit path (%s) allocates %.1f times per txn, want 0", name, allocs)
			}
		})
	}
}

// TestShardedCommitPathZeroAllocs pins the sharded front-end's
// single-shard transaction path (pooled shardedTx, closure-free routing)
// to zero allocations per transaction — with and without per-shard obs
// registries attached.
func TestShardedCommitPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	for _, metrics := range []bool{false, true} {
		name := "bare"
		if metrics {
			name = "instrumented"
		}
		t.Run(name, func(t *testing.T) {
			sc, err := repro.NewSharded(repro.Config{
				Version: repro.V3InlineLog,
				Backup:  repro.ActiveBackup,
				DBSize:  8 << 20,
				Metrics: metrics,
			}, 4)
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 64)
			for i := range payload {
				payload[i] = byte(i + 1)
			}
			slots := sc.ShardSize() / 128
			i := 0
			txn := func() {
				off := (i%4)*sc.ShardSize() + (i/4%slots)*128
				i++
				tx, err := sc.Begin()
				if err != nil {
					t.Fatal(err)
				}
				if err := tx.SetRange(off, 64); err != nil {
					t.Fatal(err)
				}
				if err := tx.Write(off, payload); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			for k := 0; k < 2000; k++ {
				txn()
			}
			if allocs := testing.AllocsPerRun(500, txn); allocs != 0 {
				t.Fatalf("sharded commit path (%s) allocates %.1f times per txn, want 0", name, allocs)
			}
		})
	}
}
