package repro_test

import (
	"errors"
	"testing"
	"time"

	"repro"
)

func durNS(ns int64) time.Duration { return time.Duration(ns) * time.Nanosecond }

// TestFacadeRepairAsync drives the online repair through the public API:
// crash, fail over, RepairAsync, keep committing while the transfer is in
// flight, watch RepairProgress to completion, and verify the healed
// cluster fails over again with nothing lost.
func TestFacadeRepairAsync(t *testing.T) {
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  testDB,
		Backups: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RepairAsync(); !errors.Is(err, repro.ErrNotRepairable) {
		t.Fatalf("repair of a healthy cluster: %v", err)
	}

	commit := func(slot int, payload string) {
		t.Helper()
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		must(t, tx.SetRange(slot*32, 32))
		buf := make([]byte, 32)
		copy(buf, payload)
		must(t, tx.Write(slot*32, buf))
		must(t, tx.Commit())
	}
	for i := 0; i < 20; i++ {
		commit(i, "before")
	}
	c.Settle()
	must(t, c.CrashPrimary())
	must(t, c.Failover())
	must(t, c.RepairAsync())

	p := c.RepairProgress()
	if !p.Active || p.BytesPlanned == 0 {
		t.Fatalf("repair not in flight after RepairAsync: %+v", p)
	}
	syncTraffic := c.NetTraffic().SyncBytes
	for i := 0; i < 500000 && c.RepairProgress().Active; i++ {
		commit(20+i%1000, "during")
		if i%100 == 0 {
			c.Settle()
		}
	}
	p = c.RepairProgress()
	if p.Active {
		t.Fatalf("repair never completed: %+v", p)
	}
	if p.BytesShipped == 0 || p.Elapsed <= 0 {
		t.Fatalf("completed repair reports no work: %+v", p)
	}
	if got := c.NetTraffic().SyncBytes; got <= syncTraffic {
		t.Fatalf("state-transfer traffic not accounted in NetTraffic: %d", got)
	}
	if c.Backups() != 2 {
		t.Fatalf("repair left %d backups, want 2", c.Backups())
	}

	// The healed cluster survives another crash with everything intact.
	c.Settle()
	total := c.Committed()
	must(t, c.CrashPrimary())
	must(t, c.Failover())
	if got := c.Committed(); got != total {
		t.Fatalf("failover after online repair lost commits: %d of %d", got, total)
	}
	buf := make([]byte, 6)
	c.ReadRaw(0, buf)
	if string(buf) != "before" {
		t.Fatalf("pre-crash data lost: %q", buf)
	}
}

// TestShardedRepairAsync: per-shard online repair through the sharded
// front-end — the other shards keep serving while one heals.
func TestShardedRepairAsync(t *testing.T) {
	sc, err := repro.NewSharded(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  testDB,
		Backups: 1,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	commitAt := func(off int) {
		t.Helper()
		tx, err := sc.Begin()
		if err != nil {
			t.Fatal(err)
		}
		must(t, tx.SetRange(off, 8))
		must(t, tx.Write(off, []byte("sharded!")))
		must(t, tx.Commit())
	}
	for i := 0; i < 4; i++ {
		commitAt(i * sc.ShardSize())
	}
	sc.Settle()
	must(t, sc.CrashPrimary(1))
	must(t, sc.Failover(1))
	must(t, sc.RepairAsync(1))
	if !sc.RepairProgress(1).Active {
		t.Fatal("shard 1 repair not in flight")
	}
	if sc.RepairProgress(0).Active {
		t.Fatal("shard 0 reports a repair it never started")
	}
	// Other shards serve while shard 1 heals; shard 1's own stream pumps
	// its transfer along.
	for i := 0; i < 200000 && sc.RepairProgress(1).Active; i++ {
		commitAt((i % 4) * sc.ShardSize())
		if i%100 == 0 {
			sc.Settle()
		}
	}
	if p := sc.RepairProgress(1); p.Active {
		t.Fatalf("shard repair never completed: %+v", p)
	}
	if sc.Shard(1).Backups() != 1 {
		t.Fatalf("shard 1 has %d backups after repair, want 1", sc.Shard(1).Backups())
	}
	if err := sc.RepairAsync(9); !errors.Is(err, repro.ErrNoSuchShard) {
		t.Fatalf("out-of-range shard repair: %v", err)
	}
}

// TestSettleGraceKnob: the quiesce duration is a Config knob, and the
// derived default still closes the 1-safe window.
func TestSettleGraceKnob(t *testing.T) {
	for _, grace := range []int64{0, 50_000} { // derived, explicit 50us
		c, err := repro.New(repro.Config{
			Version:     repro.V3InlineLog,
			Backup:      repro.ActiveBackup,
			DBSize:      testDB,
			SettleGrace: durNS(grace),
		})
		if err != nil {
			t.Fatal(err)
		}
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		must(t, tx.SetRange(0, 8))
		must(t, tx.Write(0, []byte("settled!")))
		must(t, tx.Commit())
		c.Settle()
		must(t, c.CrashPrimary())
		must(t, c.Failover())
		if got := c.Committed(); got != 1 {
			t.Fatalf("grace %dns: settled commit lost (%d)", grace, got)
		}
	}
}
