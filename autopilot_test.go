package repro_test

import (
	"errors"
	"testing"
	"time"

	"repro"
)

var apConfig = repro.AutopilotConfig{
	HeartbeatPeriod: 50 * time.Microsecond,
	SuspectTimeout:  200 * time.Microsecond,
	AutoFailover:    true,
	AutoRepair:      true,
	Spares:          2,
}

// TestAutopilotUnattended is the acceptance run: with AutoFailover and
// AutoRepair on, a primary crash mid-workload is detected, a new primary is
// promoted, a spare is enrolled, and committed throughput recovers — with
// zero manual Failover/Repair/RepairAsync calls from this test — while
// quorum-acknowledged commits survive the crash.
func TestAutopilotUnattended(t *testing.T) {
	c, err := repro.New(repro.Config{
		Version:   repro.V3InlineLog,
		Backup:    repro.ActiveBackup,
		DBSize:    testDB,
		Backups:   3,
		Safety:    repro.QuorumSafe,
		Autopilot: apConfig,
	})
	if err != nil {
		t.Fatal(err)
	}

	commit := func(slot int, payload string) error {
		tx, err := c.Begin()
		if err != nil {
			return err
		}
		must(t, tx.SetRange(slot*32, 32))
		buf := make([]byte, 32)
		copy(buf, payload)
		must(t, tx.Write(slot*32, buf))
		return tx.Commit()
	}

	// Quorum-acknowledged workload before the fault.
	acked := uint64(0)
	for i := 0; i < 200; i++ {
		if err := commit(i, "before"); err != nil {
			t.Fatal(err)
		}
		acked++
	}

	must(t, c.CrashPrimary())

	// Mid-workload recovery: the test only keeps committing. Quorum may
	// refuse a few admissions while the spare is still joining; idle time
	// (Settle) both heals and re-evaluates.
	recovered := 0
	for i := 0; i < 500000; i++ {
		err := commit(200+i%1000, "after")
		switch {
		case err == nil:
			recovered++
		case errors.Is(err, repro.ErrSafetyUnavailable):
			c.Settle()
		default:
			t.Fatalf("commit %d: %v", i, err)
		}
		if i%100 == 0 {
			c.Settle() // stream the healing transfer
		}
		if recovered > 100 && c.Generation() > 0 && !c.RepairProgress().Active && c.Backups() == 3 {
			break
		}
	}
	if recovered <= 100 {
		t.Fatalf("throughput never recovered: %d commits after the crash", recovered)
	}
	if c.Generation() != 1 {
		t.Fatalf("generation %d, want 1 unattended failover", c.Generation())
	}
	if c.Backups() != 3 {
		t.Fatalf("spare not enrolled: %d backups", c.Backups())
	}

	// Quorum zero-loss: every commit acknowledged before the crash is in
	// the recovered image.
	if got := c.Committed(); got < acked {
		t.Fatalf("recovered image lost acked commits: %d < %d", got, acked)
	}
	buf := make([]byte, 6)
	c.ReadRaw(199*32, buf)
	if string(buf) != "before" {
		t.Fatalf("acked commit content lost: %q", buf)
	}

	// The event record carries the full unattended timeline.
	evs := c.AutopilotEvents()
	if len(evs) == 0 {
		t.Fatal("no autopilot events")
	}
	ev := evs[0]
	if ev.Kind != "primary" {
		t.Fatalf("first event %+v, want primary fault", ev)
	}
	bound := apConfig.SuspectTimeout + apConfig.HeartbeatPeriod
	if ev.MTTD() <= 0 || ev.MTTD() > bound {
		t.Fatalf("MTTD %v outside (0, %v]", ev.MTTD(), bound)
	}
	if ev.MTTR() <= 0 || ev.RestoredAt < ev.DetectedAt {
		t.Fatalf("restoration timeline broken: %+v", ev)
	}
}

// TestAutopilotControlTraffic: heartbeat bytes surface as
// Traffic.ControlBytes — and stay zero with the autopilot off.
func TestAutopilotControlTraffic(t *testing.T) {
	run := func(ap repro.AutopilotConfig) repro.Traffic {
		c, err := repro.New(repro.Config{
			Version:   repro.V3InlineLog,
			Backup:    repro.ActiveBackup,
			DBSize:    testDB,
			Backups:   2,
			Autopilot: ap,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Enough commit time for several heartbeat periods to elapse.
		for i := 0; i < 200; i++ {
			tx, err := c.Begin()
			must(t, err)
			must(t, tx.SetRange(i%64*64, 32))
			must(t, tx.Write(i%64*64, make([]byte, 32)))
			must(t, tx.Commit())
		}
		c.Settle()
		return c.NetTraffic()
	}
	off := run(repro.AutopilotConfig{})
	if off.ControlBytes != 0 {
		t.Fatalf("control bytes with autopilot off: %d", off.ControlBytes)
	}
	on := run(apConfig)
	if on.ControlBytes == 0 {
		t.Fatal("no control bytes with autopilot on")
	}
	if on.Total() != on.ModifiedBytes+on.UndoBytes+on.MetaBytes+on.SyncBytes+on.ControlBytes {
		t.Fatal("Traffic.Total does not include ControlBytes")
	}
}

// TestShardedAutopilot: Config.Autopilot applies per shard — each shard
// runs its own detector and heals its own faults while the other shards
// serve undisturbed.
func TestShardedAutopilot(t *testing.T) {
	sc, err := repro.NewSharded(repro.Config{
		Version:   repro.V3InlineLog,
		Backup:    repro.ActiveBackup,
		DBSize:    testDB,
		Backups:   2,
		Autopilot: apConfig,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32)
	copy(payload, "shard")
	commitAt := func(off int) error {
		tx, err := sc.Begin()
		if err != nil {
			return err
		}
		if err := tx.SetRange(off, 32); err != nil {
			return err
		}
		if err := tx.Write(off, payload); err != nil {
			return err
		}
		return tx.Commit()
	}
	for i := 0; i < 50; i++ {
		must(t, commitAt(i*32))                // shard 0
		must(t, commitAt(sc.ShardSize()+i*32)) // shard 1
	}
	must(t, sc.CrashPrimary(0))

	// Shard 1 is untouched; shard 0 heals itself on the next touch.
	must(t, commitAt(sc.ShardSize()))
	for i := 0; i < 500; i++ {
		if err := commitAt(i % 100 * 32); err != nil {
			t.Fatalf("shard 0 commit: %v", err)
		}
		sc.Settle()
		if !sc.RepairProgress(0).Active && sc.Shard(0).Backups() == 2 {
			break
		}
	}
	if sc.Shard(0).Generation() != 1 {
		t.Fatalf("shard 0 generation %d, want 1", sc.Shard(0).Generation())
	}
	evs := sc.AutopilotEvents()
	if len(evs) == 0 || evs[0].Shard != 0 || evs[0].Kind != "primary" {
		t.Fatalf("sharded events = %+v", evs)
	}
	tr := sc.NetTraffic()
	if tr.ControlBytes == 0 {
		t.Fatal("sharded NetTraffic misses control bytes")
	}
}
