package repro_test

import (
	"bytes"
	"errors"
	"testing"

	"repro"
)

func newSharded(t *testing.T, shards int) *repro.ShardedCluster {
	t.Helper()
	sc, err := repro.NewSharded(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  testDB,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestShardedValidation(t *testing.T) {
	if _, err := repro.NewSharded(repro.Config{Version: repro.V3InlineLog, DBSize: testDB}, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	sc := newSharded(t, 4)
	if sc.Shards() != 4 {
		t.Fatalf("Shards() = %d", sc.Shards())
	}
	if sc.DBSize() != testDB {
		t.Fatalf("DBSize() = %d, want the configured %d", sc.DBSize(), testDB)
	}
	if sc.Capacity() < sc.DBSize() {
		t.Fatalf("Capacity() %d below DBSize() %d", sc.Capacity(), sc.DBSize())
	}
	if sc.Shard(4) != nil || sc.Shard(-1) != nil {
		t.Fatal("out-of-range Shard() not nil")
	}
	if got := sc.ShardFor(sc.ShardSize() + 1); got != 1 {
		t.Fatalf("ShardFor = %d", got)
	}
}

// TestShardedDBSizeBound: per-shard sizes round up to 4 KB, so the
// allocated capacity can exceed the configured size — but offsets are
// validated against the configured DBSize, never the rounding tail.
func TestShardedDBSizeBound(t *testing.T) {
	// 3 shards of a 4 MB database: 1398101.33.. rounds up to 1400832,
	// so Capacity (4202496) exceeds DBSize (4194304).
	sc, err := repro.NewSharded(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  testDB,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sc.DBSize() != testDB {
		t.Fatalf("DBSize() = %d, want %d", sc.DBSize(), testDB)
	}
	if sc.Capacity() <= testDB {
		t.Fatalf("Capacity() = %d, expected rounding above %d", sc.Capacity(), testDB)
	}
	// The last configured byte is writable...
	tx, err := sc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	must(t, tx.SetRange(testDB-8, 8))
	must(t, tx.Write(testDB-8, []byte("lastbyte")))
	must(t, tx.Commit())
	// ...but the rounding tail past DBSize is not addressable.
	tx, err = sc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(testDB, 8); err == nil {
		t.Fatal("write into the rounding tail accepted")
	}
	must(t, tx.Abort())
	if err := sc.Read(testDB-8, make([]byte, 16)); err == nil {
		t.Fatal("read across the configured end accepted")
	}
}

// TestShardedPartialCommit: a shard crashing between a multi-shard
// transaction's writes and its commit leaves the earlier shards
// committed; the failure surfaces as a *PartialCommitError naming the
// committed and aborted shards.
func TestShardedPartialCommit(t *testing.T) {
	sc := newSharded(t, 3)
	tx, err := sc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Touch all three shards in order.
	for shard := 0; shard < 3; shard++ {
		off := shard * sc.ShardSize()
		must(t, tx.SetRange(off, 8))
		must(t, tx.Write(off, []byte("spanning")))
	}
	// Shard 1 dies before the commit fan-out reaches it.
	must(t, sc.CrashPrimary(1))
	err = tx.Commit()
	var pce *repro.PartialCommitError
	if !errors.As(err, &pce) {
		t.Fatalf("commit error %v (%T), want *PartialCommitError", err, err)
	}
	if pce.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", pce.Failed)
	}
	if len(pce.Committed) != 1 || pce.Committed[0] != 0 {
		t.Fatalf("Committed = %v, want [0]", pce.Committed)
	}
	if len(pce.Aborted) != 1 || pce.Aborted[0] != 2 {
		t.Fatalf("Aborted = %v, want [2]", pce.Aborted)
	}
	// The committed shard's write is visible; the aborted shard's is not.
	got := make([]byte, 8)
	sc.Shard(0).ReadRaw(0, got)
	if !bytes.Equal(got, []byte("spanning")) {
		t.Fatal("committed shard 0 lost its write")
	}
	sc.Shard(2).ReadRaw(0, got)
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatal("aborted shard 2 kept the write")
	}
	if sc.Shard(0).Committed() != 1 || sc.Shard(2).Committed() != 0 {
		t.Fatal("per-shard commit counts wrong after partial commit")
	}
}

// TestShardedAckDegradation: a shard that commits locally but cannot
// collect its configured acknowledgements (backups died mid-transaction)
// is NOT a failed shard — its data is durable and visible, later shards
// still commit, and the degradation surfaces as ErrSafetyUnavailable
// rather than a PartialCommitError.
func TestShardedAckDegradation(t *testing.T) {
	sc, err := repro.NewSharded(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  testDB,
		Backups: 3,
		Safety:  repro.QuorumSafe,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := sc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < 3; shard++ {
		off := shard * sc.ShardSize()
		must(t, tx.SetRange(off, 8))
		must(t, tx.Write(off, []byte("spanning")))
	}
	// Kill a majority of shard 1's backups mid-transaction: its local
	// commit succeeds but the quorum cannot acknowledge.
	must(t, sc.Shard(1).CrashBackup(0))
	must(t, sc.Shard(1).CrashBackup(1))
	err = tx.Commit()
	if !errors.Is(err, repro.ErrSafetyUnavailable) {
		t.Fatalf("commit error %v, want ErrSafetyUnavailable", err)
	}
	var pce *repro.PartialCommitError
	if errors.As(err, &pce) {
		t.Fatalf("ack degradation misreported as partial commit: %v", pce)
	}
	// Every shard committed, the degraded one included.
	for shard := 0; shard < 3; shard++ {
		if got := sc.Shard(shard).Committed(); got != 1 {
			t.Fatalf("shard %d Committed() = %d, want 1", shard, got)
		}
	}
}

// TestShardedRouting: writes and reads spanning shard boundaries land on
// the right shards' databases.
func TestShardedRouting(t *testing.T) {
	sc := newSharded(t, 4)
	boundary := sc.ShardSize() // straddles shards 0 and 1
	payload := bytes.Repeat([]byte{0xAB}, 128)

	tx, err := sc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	must(t, tx.SetRange(boundary-64, 128))
	must(t, tx.Write(boundary-64, payload))
	must(t, tx.Commit())

	got := make([]byte, 128)
	sc.ReadRaw(boundary-64, got)
	if !bytes.Equal(got, payload) {
		t.Fatal("spanning write not readable back")
	}
	// Each side is on its own shard.
	half := make([]byte, 64)
	sc.Shard(0).ReadRaw(sc.ShardSize()-64, half)
	if !bytes.Equal(half, payload[:64]) {
		t.Fatal("left half missing on shard 0")
	}
	sc.Shard(1).ReadRaw(0, half)
	if !bytes.Equal(half, payload[64:]) {
		t.Fatal("right half missing on shard 1")
	}
	// Both touched shards committed; untouched shards did not.
	if sc.Shard(0).Committed() != 1 || sc.Shard(1).Committed() != 1 {
		t.Fatal("touched shards did not commit")
	}
	if sc.Shard(2).Committed() != 0 || sc.Shard(3).Committed() != 0 {
		t.Fatal("untouched shards committed")
	}
	if sc.Committed() != 2 {
		t.Fatalf("Committed() = %d", sc.Committed())
	}
	s := sc.Stats()
	if s.Commits != 2 || s.Begins != 2 {
		t.Fatalf("stats %+v", s)
	}
	// Charged read across the boundary.
	must(t, sc.Read(boundary-64, got))
	if !bytes.Equal(got, payload) {
		t.Fatal("charged read mismatch")
	}
}

func TestShardedAbort(t *testing.T) {
	sc := newSharded(t, 2)
	tx, err := sc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	must(t, tx.SetRange(0, 8))
	must(t, tx.Write(0, []byte("garbage!")))
	must(t, tx.Abort())
	got := make([]byte, 8)
	sc.ReadRaw(0, got)
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatal("aborted write visible")
	}
	if sc.Stats().Aborts != 1 {
		t.Fatalf("stats %+v", sc.Stats())
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after abort accepted")
	}
}

// TestShardedThroughputScales: the same total work finishes in less
// simulated wall-clock on more shards, so aggregate txn/s goes up.
func TestShardedThroughputScales(t *testing.T) {
	const txns = 400
	run := func(shards int) float64 {
		sc := newSharded(t, shards)
		sc.ResetMeasurement()
		// Spread single-shard transactions round-robin across shards.
		for i := 0; i < txns; i++ {
			shard := i % shards
			off := shard*sc.ShardSize() + (i/shards)*64
			tx, err := sc.Begin()
			if err != nil {
				t.Fatal(err)
			}
			must(t, tx.SetRange(off, 64))
			must(t, tx.Write(off, bytes.Repeat([]byte{byte(i + 1)}, 64)))
			must(t, tx.Commit())
		}
		elapsed := sc.Elapsed().Seconds()
		if elapsed <= 0 {
			t.Fatal("no simulated time elapsed")
		}
		return txns / elapsed
	}
	one, four := run(1), run(4)
	if four < 2*one {
		t.Fatalf("4 shards at %.0f txn/s, not clearly above 1 shard at %.0f", four, one)
	}
}

// TestShardedFailoverIsolation: a crash takes down one shard; the others
// keep serving, and failover brings the crashed shard back with all its
// committed data.
func TestShardedFailoverIsolation(t *testing.T) {
	sc := newSharded(t, 3)
	write := func(shard, slot int, fill byte) {
		off := shard*sc.ShardSize() + slot*64
		tx, err := sc.Begin()
		if err != nil {
			t.Fatal(err)
		}
		must(t, tx.SetRange(off, 64))
		must(t, tx.Write(off, bytes.Repeat([]byte{fill}, 64)))
		must(t, tx.Commit())
	}
	for i := 0; i < 10; i++ {
		for shard := 0; shard < 3; shard++ {
			write(shard, i, byte(i+1))
		}
	}
	sc.Settle()
	must(t, sc.CrashPrimary(1))
	if err := sc.CrashPrimary(7); err == nil {
		t.Fatal("bogus shard crash accepted")
	}

	// Shard 1 refuses, others serve.
	tx, err := sc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(sc.ShardSize()+2048, 8); err == nil {
		t.Fatal("crashed shard served a transaction")
	}
	must(t, tx.Abort())
	write(0, 20, 99)
	write(2, 20, 99)

	must(t, sc.Failover(1))
	buf := make([]byte, 64)
	for i := 0; i < 10; i++ {
		sc.ReadRaw(sc.ShardSize()+i*64, buf)
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte(i + 1)}, 64)) {
			t.Fatalf("shard 1 slot %d lost after failover", i)
		}
	}
	write(1, 20, 99) // the failed-over shard serves again
	must(t, sc.Repair(1))
	write(1, 21, 100)
}

// TestFacadeQuorumGroup drives the N-replica group through the public
// API: 3 backups, quorum commit, primary plus one backup die, nothing
// acked is lost.
func TestFacadeQuorumGroup(t *testing.T) {
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  testDB,
		Backups: 3,
		Safety:  repro.QuorumSafe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Backups() != 3 {
		t.Fatalf("Backups() = %d", c.Backups())
	}
	for i := 0; i < 40; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		must(t, tx.SetRange(i*64, 64))
		must(t, tx.Write(i*64, bytes.Repeat([]byte{byte(i + 1)}, 64)))
		must(t, tx.Commit())
	}
	must(t, c.CrashPrimary()) // no Settle: quorum acks are the guarantee
	must(t, c.CrashBackup(1))
	must(t, c.Failover())
	if got := c.Committed(); got != 40 {
		t.Fatalf("quorum group lost commits: %d of 40", got)
	}
	buf := make([]byte, 64)
	c.ReadRaw(39*64, buf)
	if !bytes.Equal(buf, bytes.Repeat([]byte{40}, 64)) {
		t.Fatal("last acked commit's data lost")
	}
}
