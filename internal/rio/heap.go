package rio

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// Heap is the persistent first-fit allocator Vista keeps inside Rio memory
// for its undo-log records (paper Section 4.1). It is the engine behind the
// straightforward implementation's metadata storm: every header update,
// free-list link and boundary tag is a real store through the accessor, so
// in a primary-backup configuration each one is doubled onto the SAN — the
// paper measured 6.7 GB of metadata for 140 MB of modified data.
//
// Layout (offsets relative to the heap's base address):
//
//	root:  [0]  freeHead  (absolute address of first free block, 0 = none)
//	       [8]  heapSize  (bytes, for recovery sanity checks)
//	blocks at base+rootSize ... base+heapSize:
//	       [b]        header  = blockSize | usedBit
//	       [b+8]      payload (free blocks: next, prev pointers)
//	       [b+size-8] footer  = blockSize | usedBit
//
// All block sizes are multiples of 8, at least minBlock bytes.
type Heap struct {
	acc  *mem.Accessor
	base uint64
	size int

	region *mem.Region // for uncharged diagnostics only
}

const (
	rootSize = 32
	usedBit  = 1
	minBlock = 32
)

// ErrOutOfMemory is returned by Alloc when no free block fits.
var ErrOutOfMemory = errors.New("rio: heap out of memory")

// NewHeap formats a fresh heap of size bytes at base and returns it. The
// formatting stores go through the accessor (they are part of Vista's
// initialization, charged but tiny).
func NewHeap(acc *mem.Accessor, region *mem.Region, base uint64, size int) (*Heap, error) {
	if size < rootSize+minBlock {
		return nil, fmt.Errorf("rio: heap size %d too small", size)
	}
	size &^= 7
	h := &Heap{acc: acc, base: base, size: size, region: region}
	first := base + rootSize
	blockSize := uint64(size - rootSize)
	h.writeTag(first, blockSize, false)
	acc.WriteU64(first+8, 0, mem.CatMeta)  // next
	acc.WriteU64(first+16, 0, mem.CatMeta) // prev
	acc.WriteU64(base, first, mem.CatMeta) // freeHead
	acc.WriteU64(base+8, uint64(size), mem.CatMeta)
	return h, nil
}

// OpenHeap attaches to an existing heap after a crash; the free list and
// boundary tags are taken as found in reliable memory.
func OpenHeap(acc *mem.Accessor, region *mem.Region, base uint64) (*Heap, error) {
	h := &Heap{acc: acc, base: base, region: region}
	size := acc.ReadU64(base + 8)
	if size < rootSize+minBlock {
		return nil, fmt.Errorf("rio: heap root at %#x is corrupt (size %d)", base, size)
	}
	h.size = int(size)
	return h, nil
}

// Alloc returns the absolute address of a payload of at least n bytes.
func (h *Heap) Alloc(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("rio: invalid allocation size %d", n)
	}
	need := (n+7)&^7 + 16
	if need < minBlock {
		need = minBlock
	}
	h.acc.Charge(h.acc.Params.Alloc)

	cur := h.acc.ReadU64(h.base)
	for cur != 0 {
		hdr := h.acc.ReadU64(cur)
		bsz := hdr &^ usedBit
		if bsz >= uint64(need) {
			break
		}
		h.acc.Charge(h.acc.Params.ListOp)
		cur = h.acc.ReadU64(cur + 8)
	}
	if cur == 0 {
		return 0, ErrOutOfMemory
	}
	bsz := h.acc.ReadU64(cur) &^ usedBit
	h.unlink(cur)

	if bsz-uint64(need) >= minBlock {
		rem := cur + uint64(need)
		h.writeTag(rem, bsz-uint64(need), false)
		h.linkFront(rem)
		bsz = uint64(need)
	}
	h.writeTag(cur, bsz, true)
	return cur + 8, nil
}

// Free returns the payload at addr (from Alloc) to the heap, coalescing
// with free neighbours.
func (h *Heap) Free(addr uint64) {
	h.acc.Charge(h.acc.Params.Free)
	b := addr - 8
	bsz := h.acc.ReadU64(b) &^ usedBit

	// Coalesce with the following block.
	if nb := b + bsz; nb < h.end() {
		nhdr := h.acc.ReadU64(nb)
		if nhdr&usedBit == 0 {
			h.unlink(nb)
			bsz += nhdr
		}
	}
	// Coalesce with the preceding block via its footer.
	if b > h.start() {
		pftr := h.acc.ReadU64(b - 8)
		if pftr&usedBit == 0 {
			psz := pftr
			pb := b - psz
			h.unlink(pb)
			b = pb
			bsz += psz
		}
	}
	h.writeTag(b, bsz, false)
	h.linkFront(b)
}

func (h *Heap) start() uint64 { return h.base + rootSize }
func (h *Heap) end() uint64   { return h.base + uint64(h.size) }

// writeTag stores header and footer for a block.
func (h *Heap) writeTag(b, size uint64, used bool) {
	v := size
	if used {
		v |= usedBit
	}
	h.acc.WriteU64(b, v, mem.CatMeta)
	h.acc.WriteU64(b+size-8, v, mem.CatMeta)
}

// linkFront pushes a free block onto the head of the free list.
func (h *Heap) linkFront(b uint64) {
	next := h.acc.ReadU64(h.base)
	h.acc.WriteU64(b+8, next, mem.CatMeta)
	h.acc.WriteU64(b+16, 0, mem.CatMeta)
	if next != 0 {
		h.acc.WriteU64(next+16, b, mem.CatMeta)
	}
	h.acc.WriteU64(h.base, b, mem.CatMeta)
}

// unlink removes a free block from the free list.
func (h *Heap) unlink(b uint64) {
	next := h.acc.ReadU64(b + 8)
	prev := h.acc.ReadU64(b + 16)
	if prev == 0 {
		h.acc.WriteU64(h.base, next, mem.CatMeta)
	} else {
		h.acc.WriteU64(prev+8, next, mem.CatMeta)
	}
	if next != 0 {
		h.acc.WriteU64(next+16, prev, mem.CatMeta)
	}
}

// CheckInvariants walks the heap without charging simulated time and
// reports the first inconsistency found: overlapping or mis-tagged blocks,
// free-list entries that are not free, or unreachable free blocks. Used by
// tests and by recovery sanity checks.
func (h *Heap) CheckInvariants() error {
	if h.region == nil {
		return errors.New("rio: heap has no diagnostic region")
	}
	raw := func(addr uint64) uint64 {
		var b [8]byte
		h.region.ReadRaw(int(addr-h.region.Base), b[:])
		return leU64(b[:])
	}
	freeBytes := uint64(0)
	freeBlocks := map[uint64]bool{}
	for b := h.start(); b < h.end(); {
		hdr := raw(b)
		size := hdr &^ usedBit
		if size < minBlock || b+size > h.end() {
			return fmt.Errorf("rio: block %#x has bad size %d", b, size)
		}
		ftr := raw(b + size - 8)
		if ftr != hdr {
			return fmt.Errorf("rio: block %#x footer %#x != header %#x", b, ftr, hdr)
		}
		if hdr&usedBit == 0 {
			freeBytes += size
			freeBlocks[b] = true
		}
		b += size
	}
	seen := uint64(0)
	for cur := raw(h.base); cur != 0; cur = raw(cur + 8) {
		if !freeBlocks[cur] {
			return fmt.Errorf("rio: free list contains non-free block %#x", cur)
		}
		delete(freeBlocks, cur)
		seen += raw(cur) &^ usedBit
	}
	if len(freeBlocks) != 0 {
		return fmt.Errorf("rio: %d free blocks unreachable from free list", len(freeBlocks))
	}
	if seen != freeBytes {
		return fmt.Errorf("rio: free list bytes %d != tagged free bytes %d", seen, freeBytes)
	}
	return nil
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
