// Package rio models the Rio reliable main memory system (Chen et al.,
// ASPLOS'96) that Vista builds on: memory segments whose contents survive a
// crash of the software running above them.
//
// A Memory owns the recoverable segments of one node. Crashing the node
// (see the replication package) discards every piece of volatile program
// state — transaction objects, engine caches — but the segments' bytes
// remain and are handed to the recovery code, exactly as Rio hands
// protected memory back to Vista after an operating system crash.
package rio

import (
	"fmt"

	"repro/internal/mem"
)

// Memory is one node's reliable memory: a registry of recoverable segments
// living inside the node's simulated address space.
type Memory struct {
	space *mem.Space
}

// New returns a reliable memory backed by the given address space.
func New(space *mem.Space) *Memory {
	return &Memory{space: space}
}

// Space returns the underlying address space.
func (m *Memory) Space() *mem.Space { return m.space }

// Segment creates a recoverable segment as a region in the address space.
// sparse selects page-on-demand backing for very large segments.
func (m *Memory) Segment(name string, base uint64, size int, sparse bool) (*mem.Region, error) {
	var b mem.Backing
	if sparse {
		b = mem.NewSparse(size)
	} else {
		b = mem.NewDense(size)
	}
	r := mem.NewRegion(name, base, b)
	if err := m.space.Add(r); err != nil {
		return nil, fmt.Errorf("rio: %w", err)
	}
	return r, nil
}

// Attach registers an externally-constructed region (used by the
// replication layer to install the backup's copies).
func (m *Memory) Attach(r *mem.Region) error {
	if err := m.space.Add(r); err != nil {
		return fmt.Errorf("rio: %w", err)
	}
	return nil
}

// Lookup returns the named segment, or an error if it does not exist —
// recovery code uses this to find its roots after a crash.
func (m *Memory) Lookup(name string) (*mem.Region, error) {
	r := m.space.ByName(name)
	if r == nil {
		return nil, fmt.Errorf("rio: no segment %q", name)
	}
	return r, nil
}
