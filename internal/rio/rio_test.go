package rio

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newTestMemory(t *testing.T) (*Memory, *mem.Accessor) {
	t.Helper()
	p := sim.Default()
	clk := &sim.Clock{}
	sp := mem.NewSpace()
	return New(sp), mem.NewAccessor(&p, clk, cache.New(&p, clk), sp)
}

func TestSegmentCreateAndLookup(t *testing.T) {
	m, _ := newTestMemory(t)
	r, err := m.Segment("db", 0x1000, 4096, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Lookup("db")
	if err != nil || got != r {
		t.Fatalf("Lookup: %v %v", got, err)
	}
	if _, err := m.Lookup("nope"); err == nil {
		t.Fatal("missing segment found")
	}
	if _, err := m.Segment("db", 0x9000, 64, false); err == nil {
		t.Fatal("duplicate segment accepted")
	}
}

func TestSegmentSparse(t *testing.T) {
	m, _ := newTestMemory(t)
	r, err := m.Segment("big", 0x100000, 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Backing().(*mem.Sparse); !ok {
		t.Fatal("sparse segment has dense backing")
	}
}

func TestAttach(t *testing.T) {
	m, _ := newTestMemory(t)
	r := mem.NewRegion("x", 0x5000, mem.NewDense(64))
	if err := m.Attach(r); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Lookup("x"); got != r {
		t.Fatal("attached region not found")
	}
}

func newTestHeap(t *testing.T, size int) (*Heap, *mem.Accessor, *mem.Region) {
	t.Helper()
	m, acc := newTestMemory(t)
	reg, err := m.Segment("heap", 0x10000, size, false)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(acc, reg, reg.Base, size)
	if err != nil {
		t.Fatal(err)
	}
	return h, acc, reg
}

func TestHeapAllocFreeRoundtrip(t *testing.T) {
	h, acc, _ := newTestHeap(t, 4096)
	a, err := h.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
	acc.WriteU64(a, 0x1111, mem.CatMeta)
	acc.WriteU64(b, 0x2222, mem.CatMeta)
	if acc.ReadU64(a) != 0x1111 || acc.ReadU64(b) != 0x2222 {
		t.Fatal("allocations alias")
	}
	h.Free(a)
	h.Free(b)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapCoalescing(t *testing.T) {
	h, _, _ := newTestHeap(t, 4096)
	// Allocate everything in chunks, free all, then the full block must
	// be allocatable again — proof of coalescing.
	var ptrs []uint64
	for {
		p, err := h.Alloc(256)
		if err != nil {
			break
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) < 10 {
		t.Fatalf("only %d allocations fit", len(ptrs))
	}
	for _, p := range ptrs {
		h.Free(p)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(3000); err != nil {
		t.Fatalf("large alloc after coalescing: %v", err)
	}
}

func TestHeapOutOfMemory(t *testing.T) {
	h, _, _ := newTestHeap(t, 512)
	if _, err := h.Alloc(1 << 20); err == nil {
		t.Fatal("oversized alloc succeeded")
	}
	if _, err := h.Alloc(-1); err == nil {
		t.Fatal("negative alloc succeeded")
	}
}

func TestHeapOpenAfterRestart(t *testing.T) {
	h, acc, reg := newTestHeap(t, 4096)
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	acc.WriteU64(p, 0xFEED, mem.CatMeta)

	// Reopen over the same reliable memory: the allocation survives.
	h2, err := OpenHeap(acc, reg, reg.Base)
	if err != nil {
		t.Fatal(err)
	}
	if acc.ReadU64(p) != 0xFEED {
		t.Fatal("allocation lost across reopen")
	}
	q, err := h2.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if q == p {
		t.Fatal("reopened heap re-issued a live block")
	}
	if err := h2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapOpenCorruptRoot(t *testing.T) {
	m, acc := newTestMemory(t)
	reg, err := m.Segment("heap", 0x10000, 4096, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenHeap(acc, reg, reg.Base); err == nil {
		t.Fatal("zeroed root opened as a heap")
	}
}

// TestHeapRandomOpsKeepInvariants: arbitrary interleavings of allocations
// and frees preserve boundary tags and free-list consistency, and live
// payloads never overlap.
func TestHeapRandomOpsKeepInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		h, _, _ := newTestHeap(t, 1<<16)
		r := rand.New(rand.NewPCG(seed, 5))
		type blk struct {
			at uint64
			n  int
		}
		var live []blk
		for op := 0; op < 300; op++ {
			if len(live) == 0 || r.IntN(5) < 3 {
				n := 1 + r.IntN(400)
				at, err := h.Alloc(n)
				if err != nil {
					continue // heap momentarily full: fine
				}
				// No overlap with any live block.
				for _, l := range live {
					if at < l.at+uint64(l.n)+8 && l.at < at+uint64(n)+8 {
						return false
					}
				}
				live = append(live, blk{at: at, n: n})
			} else {
				i := r.IntN(len(live))
				h.Free(live[i].at)
				live = append(live[:i], live[i+1:]...)
			}
		}
		return h.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapMetadataIsCharged(t *testing.T) {
	// The whole point of the V0 reproduction: allocator bookkeeping is
	// real memory traffic through the accessor.
	h, acc, _ := newTestHeap(t, 4096)
	before := acc.Stats().BytesWritten
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	h.Free(p)
	if delta := acc.Stats().BytesWritten - before; delta < 32 {
		t.Fatalf("alloc+free wrote only %d metadata bytes", delta)
	}
}
