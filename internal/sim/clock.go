// Package sim provides the simulated-time substrate for the reproduction:
// a picosecond-resolution clock, the calibrated cost parameters of the
// modelled hardware (Alpha 21164A + Memory Channel II), a FIFO link model
// with per-packet costs, a redo-ring flow-control model, and a trace
// capture/replay engine used for the shared-SAN multiprocessor experiments
// (paper Figures 2 and 3).
//
// All performance results in this repository are expressed in simulated
// time: state changes (databases, logs, mirrors) are real, but the clock is
// advanced by calibrated per-operation costs rather than by wall time. This
// makes every experiment deterministic and host-independent while keeping
// the causal mechanisms of the paper (cache locality, write-buffer
// coalescing, packet-size-dependent SAN bandwidth) intact.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Time is an absolute simulated timestamp in picoseconds since the start of
// the experiment.
type Time int64

// Dur is a simulated duration in picoseconds. Sub-nanosecond costs (for
// example per-byte copy charges) are representable exactly, which keeps the
// simulation deterministic across platforms.
type Dur int64

// Duration unit constants, expressed in picoseconds.
const (
	Picosecond  Dur = 1
	Nanosecond  Dur = 1000 * Picosecond
	Microsecond Dur = 1000 * Nanosecond
	Millisecond Dur = 1000 * Microsecond
	Second      Dur = 1000 * Millisecond
)

// Seconds converts an absolute timestamp to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the timestamp (interpreted as time since the epoch) to
// a time.Duration, rounding to nanoseconds.
func (t Time) Duration() time.Duration {
	return time.Duration(int64(t) / int64(Nanosecond))
}

// String formats the timestamp with microsecond resolution.
func (t Time) String() string {
	return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
}

// Seconds converts a duration to floating-point seconds.
func (d Dur) Seconds() float64 { return float64(d) / float64(Second) }

// Nanoseconds converts a duration to floating-point nanoseconds.
func (d Dur) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// DurOf converts floating-point nanoseconds into a Dur, rounding to the
// nearest picosecond.
func DurOf(ns float64) Dur { return Dur(ns*1000 + 0.5) }

// Clock is a simulated clock owned by exactly one execution stream (one
// simulated CPU). The zero value is a clock at time zero, ready to use.
//
// Exactly one goroutine may advance a Clock at any time — each simulated
// processor owns its clock, mirroring the paper's configuration where
// every transaction stream runs on a dedicated CPU — but Now may be called
// from any goroutine: the timestamp is stored atomically so monitoring
// code (aggregate throughput, Elapsed) can sample a running stream's clock
// without synchronizing with it.
type Clock struct {
	now atomic.Int64 // Time in picoseconds
}

// Now returns the current simulated time. Safe for concurrent use.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d. Negative durations are ignored so
// that cost expressions built from differences can never move time
// backwards. Only the owning stream may call Advance.
func (c *Clock) Advance(d Dur) {
	if d > 0 {
		c.now.Store(c.now.Load() + int64(d))
	}
}

// AdvanceTo moves the clock forward to t if t is in the future; a stall
// until an earlier time is a no-op. Only the owning stream may call it.
func (c *Clock) AdvanceTo(t Time) {
	if int64(t) > c.now.Load() {
		c.now.Store(int64(t))
	}
}

// Reset rewinds the clock to time zero. Used between measurement phases so
// that warm-up work is excluded from the reported interval.
func (c *Clock) Reset() { c.now.Store(0) }
