package sim

// EventKind discriminates trace events captured from one transaction
// stream for later replay against a contended SAN.
type EventKind uint8

// Trace event kinds.
const (
	// EvCompute is local CPU progress (cache charges, copies, API costs)
	// between two SAN interactions. Its duration is independent of link
	// contention, which is what makes capture/replay exact.
	EvCompute EventKind = iota + 1
	// EvPacket is the submission of one SAN packet.
	EvPacket
	// EvReserve is a producer-side reservation of redo-ring space
	// (active backup only); it may stall the stream at replay time.
	EvReserve
	// EvPublish marks a redo record as published; the record becomes
	// consumable when the immediately preceding EvPacket (the producer
	// pointer update) is delivered.
	EvPublish
)

// Event is one entry in a captured stream trace.
type Event struct {
	Kind EventKind
	// Dur is the compute duration for EvCompute events.
	Dur Dur
	// Size is the payload size in bytes: packet size for EvPacket,
	// record size for EvReserve/EvPublish.
	Size int
	// Sync marks an EvPacket as a synchronous partial-buffer eviction
	// (see Link.Submit).
	Sync bool
}

// Trace is the SAN-interaction skeleton of one transaction stream, captured
// by running the stream alone and recording its link activity with compute
// time in between. Replaying N traces against one shared Link reproduces
// the SMP-primary contention of paper Section 8.
type Trace struct {
	Events []Event
	// Txns is the number of transactions the stream committed, carried
	// along so replays can report aggregate throughput.
	Txns int64
}

// AddCompute appends local compute time, merging with a preceding compute
// event to keep traces compact.
func (t *Trace) AddCompute(d Dur) {
	if d <= 0 {
		return
	}
	if n := len(t.Events); n > 0 && t.Events[n-1].Kind == EvCompute {
		t.Events[n-1].Dur += d
		return
	}
	t.Events = append(t.Events, Event{Kind: EvCompute, Dur: d})
}

// AddPacket appends a SAN packet submission of the given payload size.
func (t *Trace) AddPacket(size int, sync bool) {
	t.Events = append(t.Events, Event{Kind: EvPacket, Size: size, Sync: sync})
}

// AddReserve appends a redo-ring reservation.
func (t *Trace) AddReserve(bytes int) {
	t.Events = append(t.Events, Event{Kind: EvReserve, Size: bytes})
}

// AddPublish appends a redo-record publication.
func (t *Trace) AddPublish(bytes int) {
	t.Events = append(t.Events, Event{Kind: EvPublish, Size: bytes})
}
