package sim

import "testing"

func testParams() *Params {
	p := Default()
	return &p
}

func TestPacketTimeMatchesFigure1(t *testing.T) {
	// The affine cost model must land on the paper's Figure 1 points.
	p := testParams()
	cases := []struct {
		size    int
		minMBps float64
		maxMBps float64
	}{
		{4, 13, 15},
		{8, 24, 28},
		{16, 45, 50},
		{32, 78, 82},
	}
	for _, c := range cases {
		got := p.EffectiveBandwidth(c.size) / 1e6
		if got < c.minMBps || got > c.maxMBps {
			t.Errorf("EffectiveBandwidth(%dB) = %.1f MB/s, want within [%v, %v]",
				c.size, got, c.minMBps, c.maxMBps)
		}
	}
}

func TestLinkFIFOServiceAndDelivery(t *testing.T) {
	p := testParams()
	l := NewLink(p)
	_, d1 := l.Submit(0, 32, false)
	_, d2 := l.Submit(0, 32, false)
	svc := Time(p.PacketTime(32))
	lat := Time(p.LinkLatency)
	if d1 != svc+lat {
		t.Fatalf("first delivery at %v, want %v", d1, svc+lat)
	}
	if d2 != 2*svc+lat {
		t.Fatalf("second delivery at %v, want %v (FIFO serialization)", d2, 2*svc+lat)
	}
}

func TestLinkAsyncWindowStall(t *testing.T) {
	p := testParams()
	p.PostedDepth = 2
	l := NewLink(p)
	svc := Time(p.PacketTime(32))

	// First two packets post without stalling; the third must wait for
	// the first to drain.
	r1, _ := l.Submit(0, 32, false)
	r2, _ := l.Submit(0, 32, false)
	r3, _ := l.Submit(0, 32, false)
	if r1 != 0 || r2 != 0 {
		t.Fatalf("posted window stalled too early: %v, %v", r1, r2)
	}
	if r3 != svc {
		t.Fatalf("third packet ready at %v, want %v", r3, svc)
	}
	if st := l.Stats().StallTime; st != Dur(svc) {
		t.Fatalf("stall time %v, want %v", st, svc)
	}
}

func TestLinkSyncWaitsForPriorDrain(t *testing.T) {
	p := testParams()
	l := NewLink(p)
	l.Submit(0, 32, false)
	l.Submit(0, 32, false)
	busy := l.Drained()

	r, _ := l.Submit(0, 4, true)
	if r != busy {
		t.Fatalf("sync submit ready at %v, want %v (all prior drained)", r, busy)
	}
}

func TestLinkSyncBackToBackPacesAtLinkRate(t *testing.T) {
	// The Figure 1 mechanism: back-to-back scattered 4-byte stores pace
	// the CPU at one packet per PacketTime.
	p := testParams()
	l := NewLink(p)
	var now Time
	const n = 100
	for i := 0; i < n; i++ {
		now, _ = l.Submit(now, 4, true)
	}
	perPacket := Dur(now) / (n - 1)
	if want := p.PacketTime(4); perPacket != want {
		t.Fatalf("paced at %v per packet, want %v", perPacket, want)
	}
}

func TestLinkStats(t *testing.T) {
	p := testParams()
	l := NewLink(p)
	l.Submit(0, 4, true)
	l.Submit(0, 32, false)
	s := l.Stats()
	if s.Packets != 2 || s.Bytes != 36 {
		t.Fatalf("stats packets=%d bytes=%d, want 2/36", s.Packets, s.Bytes)
	}
	if s.SizeHist[4] != 1 || s.SizeHist[32] != 1 {
		t.Fatalf("size histogram wrong: %v", s.SizeHist)
	}
	if got := s.AvgPacketSize(); got != 18 {
		t.Fatalf("AvgPacketSize() = %v, want 18", got)
	}
	l.ResetStats()
	if got := l.Stats(); got.Packets != 0 || got.Bytes != 0 {
		t.Fatalf("ResetStats left %+v", got)
	}
	if l.Drained() == 0 {
		t.Fatal("ResetStats must keep link state (busyUntil)")
	}
}

func TestLinkDegenerateSubmits(t *testing.T) {
	p := testParams()
	l := NewLink(p)
	if r, d := l.Submit(7, 0, false); r != 7 || d != 7 {
		t.Fatalf("zero-size submit advanced time: %v %v", r, d)
	}
	// Oversized packets are clamped rather than overcharged.
	_, d := l.Submit(0, 64, false)
	if want := Time(p.PacketTime(32) + p.LinkLatency); d != want {
		t.Fatalf("oversize packet delivered at %v, want clamped %v", d, want)
	}
	if got := l.Stats().Bytes; got != 32 {
		t.Fatalf("oversize packet accounted %d bytes, want 32", got)
	}
}

func TestAvgPacketSizeEmpty(t *testing.T) {
	var s LinkStats
	if got := s.AvgPacketSize(); got != 0 {
		t.Fatalf("empty AvgPacketSize() = %v", got)
	}
}
