package sim

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v, want 0", c.Now())
	}
	c.Advance(5 * Microsecond)
	if got := c.Now(); got != Time(5*Microsecond) {
		t.Fatalf("Now() = %v, want 5us", got)
	}
	c.Advance(-time1000())
	if got := c.Now(); got != Time(5*Microsecond) {
		t.Fatalf("negative Advance moved the clock to %v", got)
	}
}

func time1000() Dur { return 1000 * Nanosecond }

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(10 * Nanosecond)
	c.AdvanceTo(Time(5 * Nanosecond)) // in the past: no-op
	if got := c.Now(); got != Time(10*Nanosecond) {
		t.Fatalf("AdvanceTo past moved clock to %v", got)
	}
	c.AdvanceTo(Time(25 * Nanosecond))
	if got := c.Now(); got != Time(25*Nanosecond) {
		t.Fatalf("AdvanceTo future: clock at %v, want 25ns", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind to zero")
	}
}

func TestTimeConversions(t *testing.T) {
	tm := Time(2500 * Millisecond)
	if got := tm.Seconds(); got != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", got)
	}
	if got := tm.Duration(); got != 2500*time.Millisecond {
		t.Fatalf("Duration() = %v, want 2.5s", got)
	}
	if got := Time(1500 * Nanosecond).String(); got != "1.500us" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDurOf(t *testing.T) {
	cases := []struct {
		ns   float64
		want Dur
	}{
		{1.0, Nanosecond},
		{0.9, Dur(900)},
		{3.5, Dur(3500)},
		{0.0004, 0}, // rounds to zero picoseconds
	}
	for _, c := range cases {
		if got := DurOf(c.ns); got != c.want {
			t.Errorf("DurOf(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
	if got := (1500 * Nanosecond).Nanoseconds(); got != 1500 {
		t.Fatalf("Nanoseconds() = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds() = %v", got)
	}
}
