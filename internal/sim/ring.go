package sim

import "fmt"

// Ring models the timing behaviour of the active backup's redo-log circular
// buffer (paper Section 6.1): the primary (producer) reserves space, writes
// the record through the SAN, and advances its end-of-buffer pointer; the
// backup CPU (consumer) busy-waits for the pointer, applies the record to
// its database copy, and writes its own pointer back through the reverse
// mapping so the producer can reuse the space.
//
// State truth for the ring's *contents* lives in the memchannel/replication
// layers; Ring only answers the timing question "when may the producer
// reuse these bytes", which is what creates back-pressure when the SAN or
// the backup CPU cannot keep up.
type Ring struct {
	params   *Params
	capacity int

	reserved int       // bytes reserved by the producer, not yet published
	pending  []ringSeg // published records not yet known free
	inFlight int       // bytes in pending
	consDone Time      // backup CPU finishes its last applied record here
}

type ringSeg struct {
	bytes  int
	freeAt Time
}

// NewRing returns a ring timing model of the given capacity in bytes.
func NewRing(p *Params, capacity int) *Ring {
	return &Ring{params: p, capacity: capacity}
}

// Reserve blocks the producer until bytes of ring space are available at or
// after time now, and returns the time at which the producer may proceed.
func (r *Ring) Reserve(now Time, bytes int) Time {
	if bytes > r.capacity {
		panic(fmt.Sprintf("sim: redo record of %d bytes exceeds ring capacity %d", bytes, r.capacity))
	}
	r.collect(now)
	for r.reserved+r.inFlight+bytes > r.capacity {
		if len(r.pending) == 0 {
			// Cannot happen given the capacity check above: reserved
			// space is bounded by one in-flight record.
			panic("sim: ring reservation deadlock")
		}
		seg := r.pending[0]
		copy(r.pending, r.pending[1:])
		r.pending = r.pending[:len(r.pending)-1]
		r.inFlight -= seg.bytes
		if seg.freeAt > now {
			now = seg.freeAt
		}
	}
	r.reserved += bytes
	return now
}

// Publish marks a reserved record of the given size as fully written
// through the SAN, with the producer-pointer update delivered to the backup
// at deliveredAt. The backup applies the record (serially, after its
// previous work) and releases the space after its consumer-pointer
// write-back crosses the reverse link.
func (r *Ring) Publish(deliveredAt Time, bytes int) {
	if bytes > r.reserved {
		panic("sim: ring publish without matching reservation")
	}
	r.reserved -= bytes

	start := deliveredAt
	if r.consDone > start {
		start = r.consDone
	}
	apply := r.params.ApplyPerRecord + Dur(bytes)*r.params.ApplyPerByte
	done := start + Time(apply)
	r.consDone = done

	freeAt := done + Time(r.params.LinkLatency)
	r.pending = append(r.pending, ringSeg{bytes: bytes, freeAt: freeAt})
	r.inFlight += bytes
}

// ConsumerDone reports when the backup CPU finishes applying everything
// published so far.
func (r *Ring) ConsumerDone() Time { return r.consDone }

// collect releases every published segment already freed by time now.
// Freed segments are dropped by shifting the queue in place so the backing
// array is reused instead of leaking forward (see Reserve).
func (r *Ring) collect(now Time) {
	i := 0
	for ; i < len(r.pending) && r.pending[i].freeAt <= now; i++ {
		r.inFlight -= r.pending[i].bytes
	}
	if i > 0 {
		n := copy(r.pending, r.pending[i:])
		r.pending = r.pending[:n]
	}
}
