package sim

import "container/heap"

// ReplayResult reports the outcome of replaying N stream traces against a
// single shared SAN link.
type ReplayResult struct {
	// Finish holds each stream's completion time.
	Finish []Time
	// Makespan is the latest completion time.
	Makespan Time
	// Txns is the total number of transactions across all streams.
	Txns int64
	// Link holds the shared link's counters for the replay.
	Link LinkStats
}

// AggregateTPS returns total transactions divided by the makespan.
func (r *ReplayResult) AggregateTPS() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Txns) / r.Makespan.Seconds()
}

// Replay runs the captured traces concurrently (in simulated time) against
// one shared link, reproducing the paper's SMP-primary configuration: every
// stream has its own CPU (compute advances independently) and, for the
// active backup, its own redo ring and backup applier, while all packets
// serialize through the single Memory Channel adapter.
//
// Streams interact only through the link, so a conservative event-driven
// merge is exact: the stream with the earliest next packet submission is
// advanced first, guaranteeing the link sees submissions in time order.
func Replay(p *Params, traces []*Trace) ReplayResult {
	link := NewLink(p)
	res := ReplayResult{Finish: make([]Time, len(traces))}

	h := make(streamHeap, 0, len(traces))
	for i, tr := range traces {
		s := &replayStream{id: i, trace: tr, ring: NewRing(p, p.RingBytes)}
		res.Txns += tr.Txns
		s.runToNextPacket()
		if !s.done {
			h = append(h, s)
		}
		res.Finish[i] = s.now // final if the trace had no packets
	}
	heap.Init(&h)

	for h.Len() > 0 {
		s := heap.Pop(&h).(*replayStream)
		ev := s.trace.Events[s.idx]
		readyAt, deliveredAt := link.Submit(s.now, ev.Size, ev.Sync)
		s.now = readyAt
		s.lastDelivered = deliveredAt
		s.idx++
		s.runToNextPacket()
		if s.done {
			res.Finish[s.id] = s.now
			continue
		}
		heap.Push(&h, s)
	}

	for _, t := range res.Finish {
		if t > res.Makespan {
			res.Makespan = t
		}
	}
	res.Link = link.Stats()
	return res
}

// replayStream is the cursor of one trace during replay.
type replayStream struct {
	id            int
	trace         *Trace
	idx           int
	now           Time
	lastDelivered Time
	ring          *Ring
	done          bool
}

// runToNextPacket consumes local events (compute, ring operations) until
// the cursor rests on the next EvPacket or the trace ends.
func (s *replayStream) runToNextPacket() {
	evs := s.trace.Events
	for s.idx < len(evs) {
		ev := &evs[s.idx]
		switch ev.Kind {
		case EvCompute:
			s.now += Time(ev.Dur)
		case EvReserve:
			s.now = s.ring.Reserve(s.now, ev.Size)
		case EvPublish:
			s.ring.Publish(s.lastDelivered, ev.Size)
		case EvPacket:
			return
		}
		s.idx++
	}
	s.done = true
}

// streamHeap orders streams by the local time of their pending packet.
type streamHeap []*replayStream

func (h streamHeap) Len() int            { return len(h) }
func (h streamHeap) Less(i, j int) bool  { return h[i].now < h[j].now }
func (h streamHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x interface{}) { *h = append(*h, x.(*replayStream)) }
func (h *streamHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}
