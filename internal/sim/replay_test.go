package sim

import (
	"testing"
	"testing/quick"
)

func TestTraceComputeMerging(t *testing.T) {
	var tr Trace
	tr.AddCompute(10 * Nanosecond)
	tr.AddCompute(5 * Nanosecond)
	tr.AddPacket(8, true)
	tr.AddCompute(0) // ignored
	tr.AddCompute(3 * Nanosecond)
	if len(tr.Events) != 3 {
		t.Fatalf("got %d events, want 3 (merged computes): %+v", len(tr.Events), tr.Events)
	}
	if tr.Events[0].Dur != 15*Nanosecond {
		t.Fatalf("merged compute = %v, want 15ns", tr.Events[0].Dur)
	}
	if !tr.Events[1].Sync || tr.Events[1].Size != 8 {
		t.Fatalf("packet event wrong: %+v", tr.Events[1])
	}
}

// seqTime computes the finish time of one trace run alone on a fresh link,
// as a reference for replay.
func seqTime(p *Params, tr *Trace) Time {
	res := Replay(p, []*Trace{tr})
	return res.Finish[0]
}

func mkTrace(packets int, size int, gap Dur) *Trace {
	tr := &Trace{Txns: int64(packets)}
	for i := 0; i < packets; i++ {
		tr.AddCompute(gap)
		tr.AddPacket(size, false)
	}
	return tr
}

func TestReplaySingleStreamMatchesSequential(t *testing.T) {
	p := testParams()
	tr := mkTrace(50, 32, 1000*Nanosecond)
	res := Replay(p, []*Trace{tr})
	if res.Txns != 50 {
		t.Fatalf("txns = %d", res.Txns)
	}
	// With 1us of compute per 32B packet (0.398us service), the link
	// never backs up: finish ~= 50 * 1us.
	want := Time(50 * 1000 * Nanosecond)
	if res.Finish[0] != want {
		t.Fatalf("finish = %v, want %v", res.Finish[0], want)
	}
}

func TestReplayContentionSaturatesLink(t *testing.T) {
	p := testParams()
	// Each stream demands ~0.398us of link per 0.5us of compute: two
	// streams exceed capacity, so aggregate throughput is link-bound.
	mk := func() *Trace { return mkTrace(200, 32, 500*Nanosecond) }
	one := Replay(p, []*Trace{mk()})
	four := Replay(p, []*Trace{mk(), mk(), mk(), mk()})

	if four.Txns != 4*one.Txns {
		t.Fatalf("txns %d, want %d", four.Txns, 4*one.Txns)
	}
	linkBound := 1.0 / p.PacketTime(32).Seconds() // packets/sec capacity
	got := four.AggregateTPS()
	if got > linkBound*1.01 {
		t.Fatalf("aggregate %.0f exceeds link capacity %.0f", got, linkBound)
	}
	if got < linkBound*0.9 {
		t.Fatalf("aggregate %.0f far below link capacity %.0f: lost concurrency", got, linkBound)
	}
}

func TestReplayScalesWhenLinkIdle(t *testing.T) {
	p := testParams()
	mk := func() *Trace { return mkTrace(100, 8, 4000*Nanosecond) }
	one := Replay(p, []*Trace{mk()})
	four := Replay(p, []*Trace{mk(), mk(), mk(), mk()})
	if got, want := four.AggregateTPS(), 3.8*one.AggregateTPS(); got < want {
		t.Fatalf("idle-link replay scaled to %.0f, want >= %.0f (near-linear)", got, want)
	}
}

func TestReplayDeterminism(t *testing.T) {
	p := testParams()
	mk := func(n int) []*Trace {
		out := make([]*Trace, n)
		for i := range out {
			out[i] = mkTrace(50+i, 16, Dur(300+i*13)*Nanosecond)
		}
		return out
	}
	a := Replay(p, mk(4))
	b := Replay(p, mk(4))
	if a.Makespan != b.Makespan || a.Txns != b.Txns {
		t.Fatalf("replay is not deterministic: %+v vs %+v", a, b)
	}
}

func TestReplayWithRingEvents(t *testing.T) {
	p := testParams()
	tr := &Trace{Txns: 100}
	for i := 0; i < 100; i++ {
		tr.AddCompute(200 * Nanosecond)
		tr.AddReserve(64)
		tr.AddPacket(32, false)
		tr.AddPacket(32, false)
		tr.AddPublish(64)
	}
	res := Replay(p, []*Trace{tr})
	if res.Finish[0] <= 0 {
		t.Fatal("ring-event trace did not advance time")
	}
	// Sanity: no deadlock with several streams sharing the link.
	res4 := Replay(p, []*Trace{tr, tr, tr, tr})
	if res4.Makespan < res.Finish[0] {
		t.Fatal("contended makespan shorter than solo run")
	}
}

func TestReplayEmptyAndComputeOnlyTraces(t *testing.T) {
	p := testParams()
	empty := &Trace{}
	computeOnly := &Trace{}
	computeOnly.AddCompute(5 * Microsecond)
	res := Replay(p, []*Trace{empty, computeOnly})
	if res.Finish[0] != 0 {
		t.Fatalf("empty trace finished at %v", res.Finish[0])
	}
	if res.Finish[1] != Time(5*Microsecond) {
		t.Fatalf("compute-only trace finished at %v", res.Finish[1])
	}
}

// TestReplayMakespanProperty: adding streams never shrinks the makespan,
// and the link never serves more than its capacity.
func TestReplayMakespanProperty(t *testing.T) {
	p := testParams()
	f := func(seed uint8, streams uint8) bool {
		n := int(streams)%4 + 1
		traces := make([]*Trace, n)
		for i := range traces {
			traces[i] = mkTrace(20+int(seed)%30, 8+4*(i%3), Dur(100+int(seed))*Nanosecond)
		}
		res := Replay(p, traces)
		// Link can't be over-committed: serialization may lag the CPUs
		// by at most the posted window after the last stream finishes.
		slack := Dur(p.PostedDepth+1) * p.PacketTime(p.MaxPacket)
		if res.Link.Busy > Dur(res.Makespan)+slack {
			return false
		}
		// Every stream finishes no earlier than its uncontended run.
		for i, tr := range traces {
			if res.Finish[i] < seqTime(p, tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
