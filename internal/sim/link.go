package sim

// Link models one direction of the Memory Channel SAN as a FIFO server:
// packets are serialized one at a time, each occupying the link for
// Params.PacketTime(size). A bounded "posted" window models the PCI posted
// writes plus adapter queue: once PostedDepth packets are outstanding the
// submitting CPU stalls until the oldest one drains.
//
// A Link may be shared by several submitting streams (the SMP experiments);
// callers must then present submissions in nondecreasing time order, which
// the replay engine guarantees. The zero value is not usable; construct
// with NewLink.
type Link struct {
	params *Params

	busyUntil Time
	// window holds the completion (serialization-finished) times of the
	// most recent submissions, bounded by PostedDepth; it acts as the
	// posted-write occupancy window.
	window []Time

	stats LinkStats
}

// LinkStats accumulates link-level counters for an experiment.
type LinkStats struct {
	Packets int64
	Bytes   int64
	// SizeHist counts packets by payload size (index = bytes, 0..MaxPacket).
	SizeHist []int64
	// Busy is the total time the link spent serializing packets.
	Busy Dur
	// StallTime is the cumulative time submitting CPUs spent stalled on
	// the posted-write window.
	StallTime Dur
}

// NewLink returns a link with the given parameters.
func NewLink(p *Params) *Link {
	return &Link{
		params: p,
		window: make([]Time, 0, p.PostedDepth),
		stats:  LinkStats{SizeHist: make([]int64, p.MaxPacket+1)},
	}
}

// Submit serializes one packet submitted at time now.
//
// sync distinguishes the two retirement paths of the modelled hardware:
//
//   - sync=false — a naturally full 32-byte write buffer retiring through
//     the posted-write pipeline. The CPU stalls only when PostedDepth
//     packets are already in flight. This is the path sequential stores
//     (Version 3's log, the active backup's ring) enjoy.
//   - sync=true — a forced eviction of a partially filled buffer (buffer
//     pressure from scattered stores, or an explicit memory barrier). The
//     CPU must wait for the bus to accept the partial line, i.e. until
//     every earlier packet has been serialized. Back-to-back scattered
//     4-byte stores therefore pace the CPU at one packet per PacketTime —
//     exactly the paper's Figure 1 measurement of 14 MB/s.
//
// It returns readyAt, the time at which the submitting CPU may proceed,
// and deliveredAt, the time at which the packet's payload is visible in
// the remote node's physical memory.
func (l *Link) Submit(now Time, size int, sync bool) (readyAt, deliveredAt Time) {
	if size <= 0 {
		return now, now
	}
	if size > l.params.MaxPacket {
		// The write-buffer layer never produces oversized packets; guard
		// against misuse by splitting the charge conservatively.
		size = l.params.MaxPacket
	}

	readyAt = now
	if sync {
		// Wait for all earlier packets to drain; this packet then starts
		// immediately and serializes in the background.
		if l.busyUntil > readyAt {
			l.stats.StallTime += Dur(l.busyUntil - readyAt)
			readyAt = l.busyUntil
		}
	} else if len(l.window) >= l.params.PostedDepth {
		oldest := l.window[0]
		// Pop by shifting in place: re-slicing forward and re-appending
		// would walk the backing array and allocate on every PostedDepth
		// packets, putting the allocator on the steady-state commit path.
		copy(l.window, l.window[1:])
		l.window = l.window[:len(l.window)-1]
		if oldest > readyAt {
			l.stats.StallTime += Dur(oldest - readyAt)
			readyAt = oldest
		}
	}

	start := readyAt
	if l.busyUntil > start {
		start = l.busyUntil
	}
	svc := l.params.PacketTime(size)
	done := start + Time(svc)
	l.busyUntil = done
	if !sync {
		l.window = append(l.window, done)
	}

	l.stats.Packets++
	l.stats.Bytes += int64(size)
	l.stats.SizeHist[size]++
	l.stats.Busy += svc

	return readyAt, done + Time(l.params.LinkLatency)
}

// SubmitBulk serializes a bulk background stream — the chunked state
// transfer of an online repair — submitted at time now: full-size packets
// back to back, occupying the link like any other traffic (which is what
// makes concurrent transaction commits queue behind it — the availability
// dip of a recovering cluster) but without stalling the submitting CPU,
// which is the repair copier, not the transaction stream. Returns the
// delivery time of the stream's last byte.
func (l *Link) SubmitBulk(now Time, bytes int) Time {
	if bytes <= 0 {
		return now
	}
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	full := bytes / l.params.MaxPacket
	rem := bytes % l.params.MaxPacket
	svc := Dur(full) * l.params.PacketTime(l.params.MaxPacket)
	packets := int64(full)
	l.stats.SizeHist[l.params.MaxPacket] += int64(full)
	if rem > 0 {
		svc += l.params.PacketTime(rem)
		l.stats.SizeHist[rem]++
		packets++
	}
	done := start + Time(svc)
	l.busyUntil = done
	l.stats.Packets += packets
	l.stats.Bytes += int64(bytes)
	l.stats.Busy += svc
	return done + Time(l.params.LinkLatency)
}

// Drained returns the time at which every packet submitted so far has been
// serialized onto the link.
func (l *Link) Drained() Time { return l.busyUntil }

// Stats returns a copy of the accumulated counters.
func (l *Link) Stats() LinkStats {
	s := l.stats
	s.SizeHist = append([]int64(nil), l.stats.SizeHist...)
	return s
}

// ResetStats clears the counters but keeps the link state (busy time and
// posted window), so a measurement phase can exclude warm-up traffic.
func (l *Link) ResetStats() {
	l.stats = LinkStats{SizeHist: make([]int64, l.params.MaxPacket+1)}
}

// AvgPacketSize returns the mean payload size of all packets, or 0 if no
// packets were sent.
func (s *LinkStats) AvgPacketSize() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.Packets)
}
