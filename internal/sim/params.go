package sim

// Params bundles every calibrated cost constant of the simulated platform.
// The defaults model the paper's testbed: a 600 MHz Alpha 21164A (EV5.6)
// with a three-level cache hierarchy, six 32-byte coalescing write buffers,
// and a second-generation Memory Channel SAN.
//
// Calibration sources, by constant group:
//
//   - Link: the paper's Figure 1 reports effective process-to-process
//     bandwidth of ~14 MB/s at 4-byte packets rising to 80 MB/s at the
//     32-byte maximum. An affine per-packet cost T(s) = PacketOverhead +
//     s*PacketPerByte with 270ns overhead and 4ns/byte reproduces that
//     curve: 4B -> 14.6 MB/s, 8B -> 26.5, 16B -> 48.0, 32B -> 80.4.
//     The 3.3us uncontended latency is quoted in Section 2.3.
//   - Cache: 21164A-era latencies. L1 hits are folded into the base
//     operation costs; L2/L3/memory charges are incremental.
//   - CPU operation costs: chosen so the standalone Debit-Credit and
//     Order-Entry throughputs land in the paper's regime (hundreds of
//     thousands / tens of thousands of transactions per second) and, more
//     importantly, so that the *relative* standings of Versions 0-3 are
//     produced by the modelled mechanisms rather than hand-tuned ratios.
type Params struct {
	// --- Memory Channel link ---

	// MaxPacket is the largest SAN packet, in bytes. The Memory Channel
	// interface converts one PCI write into one packet and does not
	// aggregate across PCI transactions, so this equals the write-buffer
	// size (Section 2.3 of the paper).
	MaxPacket int
	// PacketOverhead is the fixed per-packet occupancy of the link.
	PacketOverhead Dur
	// PacketPerByte is the additional link occupancy per payload byte.
	PacketPerByte Dur
	// LinkLatency is the one-way delivery latency added after a packet
	// has been serialized onto the link.
	LinkLatency Dur
	// PostedDepth is the number of packets that may be in flight (posted
	// PCI writes plus adapter queue) before the issuing CPU stalls.
	PostedDepth int

	// --- Write buffers ---

	// WriteBuffers is the number of 32-byte coalescing write buffers
	// (the Alpha 21164A has six).
	WriteBuffers int
	// DrainAge bounds how long a partially filled write buffer may hold
	// dirty bytes: real write buffers self-drain once the bus goes idle,
	// so a buffer older than this is flushed by the next I/O activity
	// (and survives a crash — it left the CPU before the failure).
	// This is what keeps the paper's 1-safe window at "a few
	// microseconds" rather than unbounded.
	DrainAge Dur

	// --- Cache hierarchy ---

	L1Size, L1Line          int
	L2Size, L2Line, L2Assoc int
	L3Size, L3Line          int
	// L2Hit, L3Hit and MemAccess are the incremental charges for a READ
	// satisfied at that level (L1 hits are free; their cost is folded
	// into the per-operation CPU costs below). WriteMiss is the reduced
	// charge for a store missing all levels: stores retire through the
	// write buffer and rarely stall the processor.
	L2Hit     Dur
	L3Hit     Dur
	MemAccess Dur
	WriteMiss Dur
	// TLBEntries/PageSize size the data TLB; TLBFill is the fill
	// handler's fixed cost (the PTE read itself goes through the data
	// caches and is charged separately).
	TLBEntries int
	PageSize   int
	TLBFill    Dur

	// --- CPU operation costs ---

	// TxBegin/TxCommit/TxAbort/SetRangeCall are fixed per-call software
	// overheads of the transaction API.
	TxBegin      Dur
	TxCommit     Dur
	TxAbort      Dur
	SetRangeCall Dur
	// StoreWord / LoadWord are charged per (up to) 8-byte word moved by
	// an instrumented store/load, on top of cache charges.
	StoreWord Dur
	LoadWord  Dur
	// CopyByte is the per-byte cost of bcopy-style bulk copies; CompareByte
	// is the per-byte cost of the diffing comparison loop (Version 2).
	CopyByte    Dur
	CompareByte Dur
	// IOStoreWord is the CPU cost of one store into uncached I/O space
	// (the second half of a doubled write).
	IOStoreWord Dur
	// PartialDrainPerByte is the extra processor-visible cost, per valid
	// byte, of draining a partially filled write buffer: unlike a full
	// cache line, a partial line cannot leave the chip as a single burst
	// — the bus interface issues discrete cycles with turnaround, and the
	// resulting bus occupancy steals cycles from the processor whether
	// the drain was forced or happened in the background (only a truly
	// idle CPU escapes the charge). Full 32-byte buffers pay nothing,
	// which is the second half of the paper's locality argument:
	// mirroring's scattered small-to-medium writes are penalized per
	// byte, logging's full lines are not (Section 5.2, and Section 8's
	// "below 20 Mbytes/sec" for the mirroring protocols).
	PartialDrainPerByte Dur
	// Alloc/Free are the instruction costs of the persistent-heap
	// allocator entry points (the memory traffic they generate is charged
	// separately through the accessor).
	Alloc Dur
	Free  Dur
	// ListOp is the cost of one linked-list manipulation step (pointer
	// chase plus bookkeeping) in the Version 0 undo list.
	ListOp Dur

	// --- Active backup ---

	// ApplyPerByte and ApplyPerRecord are the backup CPU's costs to apply
	// one redo record to its database copy.
	ApplyPerByte   Dur
	ApplyPerRecord Dur
	// RingBytes is the capacity of the redo-log circular buffer.
	RingBytes int
}

// Default returns the calibrated parameter set described in DESIGN.md.
func Default() Params {
	return Params{
		MaxPacket:      32,
		PacketOverhead: 270 * Nanosecond,
		PacketPerByte:  4 * Nanosecond,
		// 3.0us propagation plus ~0.29us serialization of a 4-byte
		// packet reproduces the paper's 3.3us uncontended 4-byte write
		// latency.
		LinkLatency: 3000 * Nanosecond,
		// PostedDepth applies to the asynchronous retirement of full
		// write buffers only; forced evictions of partial buffers are
		// synchronous (see Link.Submit), which is what paces scattered
		// small stores at the link rate as in the paper's Figure 1.
		PostedDepth: 6,

		WriteBuffers: 6,
		DrainAge:     1 * Microsecond,

		L1Size: 8 << 10, L1Line: 32,
		L2Size: 96 << 10, L2Line: 64, L2Assoc: 3,
		L3Size: 8 << 20, L3Line: 64,
		L2Hit:      8 * Nanosecond,
		L3Hit:      40 * Nanosecond,
		MemAccess:  150 * Nanosecond,
		WriteMiss:  40 * Nanosecond,
		TLBEntries: 64,
		PageSize:   8 << 10,
		TLBFill:    60 * Nanosecond,

		TxBegin:             250 * Nanosecond,
		TxCommit:            400 * Nanosecond,
		TxAbort:             400 * Nanosecond,
		SetRangeCall:        250 * Nanosecond,
		StoreWord:           6 * Nanosecond,
		LoadWord:            4 * Nanosecond,
		CopyByte:            DurOf(3.0),
		CompareByte:         DurOf(3.5),
		IOStoreWord:         25 * Nanosecond,
		PartialDrainPerByte: 20 * Nanosecond,
		Alloc:               150 * Nanosecond,
		Free:                130 * Nanosecond,
		ListOp:              60 * Nanosecond,

		ApplyPerByte:   DurOf(1.0),
		ApplyPerRecord: 200 * Nanosecond,
		RingBytes:      1 << 20,
	}
}

// PacketTime returns the link occupancy of one packet of size bytes.
func (p *Params) PacketTime(size int) Dur {
	return p.PacketOverhead + Dur(size)*p.PacketPerByte
}

// EffectiveBandwidth returns the steady-state bandwidth, in bytes per
// simulated second, achieved by a stream of packets of the given size.
func (p *Params) EffectiveBandwidth(size int) float64 {
	t := p.PacketTime(size)
	if t <= 0 {
		return 0
	}
	return float64(size) / t.Seconds()
}
