package sim

import "testing"

func TestRingReserveNoContention(t *testing.T) {
	p := testParams()
	r := NewRing(p, 1024)
	if got := r.Reserve(100, 512); got != 100 {
		t.Fatalf("uncontended reserve stalled to %v", got)
	}
}

func TestRingBlocksUntilConsumerFrees(t *testing.T) {
	p := testParams()
	r := NewRing(p, 1000)

	now := r.Reserve(0, 600)
	r.Publish(now, 600) // consumer starts at ~now

	// The second record does not fit until the first is consumed and the
	// consumer pointer crosses back.
	applied := Time(p.ApplyPerRecord + 600*p.ApplyPerByte)
	freeAt := applied + Time(p.LinkLatency)
	got := r.Reserve(0, 600)
	if got != freeAt {
		t.Fatalf("reserve unblocked at %v, want %v", got, freeAt)
	}
}

func TestRingConsumerSerializes(t *testing.T) {
	p := testParams()
	r := NewRing(p, 1<<20)
	r.Reserve(0, 100)
	r.Publish(0, 100)
	first := r.ConsumerDone()
	r.Reserve(0, 100)
	r.Publish(0, 100) // delivered while consumer busy
	second := r.ConsumerDone()
	want := first + Time(p.ApplyPerRecord+100*p.ApplyPerByte)
	if second != want {
		t.Fatalf("second apply done at %v, want %v (serialized after first)", second, want)
	}
}

func TestRingOversizedRecordPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized reservation did not panic")
		}
	}()
	r := NewRing(testParams(), 64)
	r.Reserve(0, 65)
}

func TestRingPublishWithoutReservePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("publish without reservation did not panic")
		}
	}()
	r := NewRing(testParams(), 1024)
	r.Publish(0, 10)
}

func TestRingManyCycles(t *testing.T) {
	// Steady-state flow through a small ring must make monotonic
	// progress and never deadlock.
	p := testParams()
	r := NewRing(p, 256)
	var now Time
	for i := 0; i < 1000; i++ {
		now = r.Reserve(now, 128)
		r.Publish(now, 128)
	}
	if now <= 0 {
		t.Fatal("ring cycles did not advance time")
	}
}
