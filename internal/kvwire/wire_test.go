package kvwire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestRequestRoundTrip: every request kind encodes and parses back to
// itself through the frame layer.
func TestRequestRoundTrip(t *testing.T) {
	key := []byte("user00000042")
	val := bytes.Repeat([]byte("v"), 100)
	frames := [][]byte{
		AppendPut(GetBuf(), key, val),
		AppendGet(GetBuf(), key),
		AppendDelete(GetBuf(), key),
		AppendScan(GetBuf(), key, 10),
		AppendScan(GetBuf(), nil, 3),
		AppendTxn(GetBuf(), []Op{
			{Kind: TxnPut, Key: key, Val: val},
			{Kind: TxnDelete, Key: []byte("other")},
		}),
		AppendEmpty(GetBuf(), OpStats),
		AppendEmpty(GetBuf(), OpPing),
	}
	var stream bytes.Buffer
	for _, f := range frames {
		stream.Write(f)
	}
	buf := GetBuf()
	var req Request
	wantOps := []byte{OpPut, OpGet, OpDelete, OpScan, OpScan, OpTxn, OpStats, OpPing}
	for i, want := range wantOps {
		var err error
		buf, err = ReadFrame(&stream, buf, MaxFrame)
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		if err := ParseRequest(buf, &req); err != nil {
			t.Fatalf("frame %d: parse: %v", i, err)
		}
		if req.Op != want {
			t.Fatalf("frame %d: op = %d, want %d", i, req.Op, want)
		}
		switch i {
		case 0:
			if !bytes.Equal(req.Key, key) || !bytes.Equal(req.Val, val) {
				t.Fatalf("put round-trip mismatch")
			}
		case 3:
			if req.Limit != 10 || !bytes.Equal(req.Key, key) {
				t.Fatalf("scan round-trip mismatch: %+v", req)
			}
		case 4:
			if req.Limit != 3 || len(req.Key) != 0 {
				t.Fatalf("empty-start scan mismatch: %+v", req)
			}
		case 5:
			if len(req.Ops) != 2 || req.Ops[0].Kind != TxnPut ||
				!bytes.Equal(req.Ops[0].Val, val) || req.Ops[1].Kind != TxnDelete {
				t.Fatalf("txn round-trip mismatch: %+v", req.Ops)
			}
		}
	}
	if _, err := ReadFrame(&stream, buf, MaxFrame); err != io.EOF {
		t.Fatalf("stream end: err = %v, want io.EOF", err)
	}
}

// TestScanResponseRoundTrip: the incremental scan-response builder and
// its parser agree.
func TestScanResponseRoundTrip(t *testing.T) {
	buf, countOff := BeginScanResponse(GetBuf())
	entries := []Entry{
		{Key: []byte("a"), Val: []byte("1")},
		{Key: []byte("bb"), Val: bytes.Repeat([]byte("x"), 300)},
	}
	for _, e := range entries {
		buf = AppendScanEntry(buf, e.Key, e.Val)
	}
	buf = FinishScanResponse(buf, countOff, len(entries))

	var stream bytes.Buffer
	stream.Write(buf)
	body, err := ReadFrame(&stream, GetBuf(), MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if body[0] != StatusOK {
		t.Fatalf("status = %d", body[0])
	}
	i := 0
	err = ParseScanBody(body[1:], func(key, val []byte) error {
		if !bytes.Equal(key, entries[i].Key) || !bytes.Equal(val, entries[i].Val) {
			t.Fatalf("entry %d mismatch", i)
		}
		i++
		return nil
	})
	if err != nil || i != len(entries) {
		t.Fatalf("parse: err=%v entries=%d", err, i)
	}
}

// TestMalformedFrames: garbage declared lengths and truncated or
// overlong payloads all surface as ErrFrame, never a panic.
func TestMalformedFrames(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
	}{
		{"http-verb length", []byte("GET / HTTP/1.1\r\n")},
		{"zero length", []byte{0, 0, 0, 0}},
		{"huge length", []byte{0xff, 0xff, 0xff, 0xff, 1}},
		{"truncated prefix", []byte{0, 0}},
		{"truncated body", []byte{0, 0, 0, 9, OpGet, 0, 2, 'a'}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(c.raw), GetBuf(), MaxFrame)
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("err = %v, want ErrFrame", err)
			}
		})
	}

	bodies := [][]byte{
		{},                      // no opcode (cannot arrive via ReadFrame, but parse must hold)
		{99},                    // unknown opcode
		{OpGet},                 // missing key length
		{OpGet, 0xff, 0xff},     // key length beyond MaxKey
		{OpGet, 0, 1},           // key bytes missing
		{OpGet, 0, 1, 'a', 'x'}, // trailing garbage
		{OpPut, 0, 1, 'a'},      // missing value length
		{OpPut, 0, 1, 'a', 0xff, 0xff, 0xff, 0xff}, // value length beyond MaxValue
		{OpScan, 0, 0, 0xff, 0xff, 0xff, 0xff},     // scan limit beyond MaxScan
		{OpTxn, 0xff, 0xff},                        // txn count beyond MaxTxn
		{OpTxn, 0, 1, 7, 0, 1, 'a'},                // unknown txn kind
		{OpStats, 1},                               // payload on a payload-free op
	}
	var req Request
	for i, b := range bodies {
		if err := ParseRequest(b, &req); !errors.Is(err, ErrFrame) {
			t.Errorf("body %d: err = %v, want ErrFrame", i, err)
		}
	}
}
