package kvwire

import (
	"bytes"
	"testing"
)

// FuzzParseRequest: arbitrary bytes must decode to a Request or an
// error — never a panic or an out-of-bounds slice. The seed corpus mixes
// valid frames with near-valid corruptions; `go test` replays it on
// every run, and `go test -fuzz FuzzParseRequest ./internal/kvwire`
// explores further.
func FuzzParseRequest(f *testing.F) {
	valid := [][]byte{
		AppendPut(nil, []byte("key"), []byte("value")),
		AppendGet(nil, []byte("key")),
		AppendDelete(nil, []byte("key")),
		AppendScan(nil, []byte("key"), 10),
		AppendTxn(nil, []Op{{Kind: TxnPut, Key: []byte("k"), Val: []byte("v")}, {Kind: TxnDelete, Key: []byte("d")}}),
		AppendEmpty(nil, OpStats),
		AppendEmpty(nil, OpPing),
	}
	for _, frame := range valid {
		f.Add(frame[4:]) // frame body: opcode + payload
	}
	f.Add([]byte{OpTxn, 0, 2, 0, 0, 1, 'a'})
	f.Add([]byte("GET / HTTP/1.1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		var req Request
		if err := ParseRequest(body, &req); err != nil {
			return
		}
		// A successfully decoded request must re-encode within limits.
		if len(req.Key) > MaxKey || len(req.Val) > MaxValue || req.Limit > MaxScan || len(req.Ops) > MaxTxn {
			t.Fatalf("decoded request exceeds protocol limits: %+v", req)
		}
		for _, op := range req.Ops {
			if len(op.Key) > MaxKey || len(op.Val) > MaxValue {
				t.Fatalf("decoded txn op exceeds protocol limits")
			}
		}
	})
}

// FuzzReadFrame: a stream of arbitrary bytes either yields frames or
// errors cleanly; it never reads past the declared body nor panics.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendGet(nil, []byte("key")))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		buf := make([]byte, 0, 64)
		for i := 0; i < 16; i++ {
			var err error
			buf, err = ReadFrame(r, buf, MaxFrame)
			if err != nil {
				return
			}
		}
	})
}
