package kvwire

import (
	"bytes"
	"errors"
	"testing"
)

// TestReadFlagsRoundTrip: GET and SCAN frames carrying a consistency
// block parse back to the mode, bound, and token they were built with.
func TestReadFlagsRoundTrip(t *testing.T) {
	key := []byte("user00000007")
	token := []uint64{42, 0, 7}
	var req Request

	frame := AppendGetAt(GetBuf(), key, ModeRYW, 16, token)
	if err := ParseRequest(frame[4:], &req); err != nil {
		t.Fatalf("parse GetAt: %v", err)
	}
	if req.Op != OpGet || !bytes.Equal(req.Key, key) {
		t.Fatalf("GetAt base fields: %+v", req)
	}
	if req.Mode != ModeRYW || req.Bound != 16 {
		t.Fatalf("GetAt consistency fields: mode %d bound %d", req.Mode, req.Bound)
	}
	if len(req.Token) != 3 || req.Token[0] != 42 || req.Token[2] != 7 {
		t.Fatalf("GetAt token: %v", req.Token)
	}

	// The parsed token slice is recycled across frames, never leaked.
	frame = AppendScanAt(GetBuf(), key[:4], 25, ModeBounded, 1<<40, nil)
	if err := ParseRequest(frame[4:], &req); err != nil {
		t.Fatalf("parse ScanAt: %v", err)
	}
	if req.Op != OpScan || req.Limit != 25 || !bytes.Equal(req.Key, key[:4]) {
		t.Fatalf("ScanAt base fields: %+v", req)
	}
	if req.Mode != ModeBounded || req.Bound != 1<<40 || len(req.Token) != 0 {
		t.Fatalf("ScanAt consistency fields: %+v", req)
	}

	// ModeQuorum with an empty bound.
	frame = AppendGetAt(GetBuf(), key, ModeQuorum, 0, []uint64{9})
	if err := ParseRequest(frame[4:], &req); err != nil {
		t.Fatalf("parse quorum GetAt: %v", err)
	}
	if req.Mode != ModeQuorum || req.Bound != 0 || len(req.Token) != 1 || req.Token[0] != 9 {
		t.Fatalf("quorum GetAt: %+v", req)
	}
}

// TestReadFlagsForwardCompat is the wire-evolution contract: a classic
// GET/SCAN frame (no flags byte) parses as ModePrimary with no token —
// old clients keep working against the extended server bit-for-bit — and
// a frame with an unknown flag bit is rejected, not misread.
func TestReadFlagsForwardCompat(t *testing.T) {
	key := []byte("k")
	var req Request

	// A pre-extension frame: absent tail ≡ flags 0.
	req.Mode, req.Bound, req.Token = ModeQuorum, 99, []uint64{1} // stale state must be cleared
	frame := AppendGet(GetBuf(), key)
	if err := ParseRequest(frame[4:], &req); err != nil {
		t.Fatalf("parse classic GET: %v", err)
	}
	if req.Mode != ModePrimary || req.Bound != 0 || len(req.Token) != 0 {
		t.Fatalf("classic GET not ModePrimary/zero: %+v", req)
	}
	frame = AppendScan(GetBuf(), nil, 5)
	if err := ParseRequest(frame[4:], &req); err != nil {
		t.Fatalf("parse classic SCAN: %v", err)
	}
	if req.Mode != ModePrimary || len(req.Token) != 0 {
		t.Fatalf("classic SCAN not ModePrimary: %+v", req)
	}

	// An explicit flags 0 byte is also the classic read.
	body := append([]byte{OpGet, 0, 1, 'k'}, 0)
	if err := ParseRequest(body, &req); err != nil {
		t.Fatalf("parse flags-0 GET: %v", err)
	}
	if req.Mode != ModePrimary {
		t.Fatalf("flags-0 GET mode %d", req.Mode)
	}

	// Unknown flag bits: a frame from a future protocol revision must be
	// refused so its bytes are never misinterpreted.
	body = append([]byte{OpGet, 0, 1, 'k'}, 1<<5)
	if err := ParseRequest(body, &req); !errors.Is(err, ErrFrame) {
		t.Fatalf("unknown flag bit accepted: %v", err)
	}
}

// TestReadFlagsMalformed: truncated or out-of-range consistency blocks
// surface as ErrFrame, never a panic or a misparse.
func TestReadFlagsMalformed(t *testing.T) {
	get := func(tail ...byte) []byte { return append([]byte{OpGet, 0, 1, 'k'}, tail...) }
	bodies := [][]byte{
		get(FlagConsistency),          // flags announced, block missing
		get(FlagConsistency, ModeRYW), // bound missing
		get(FlagConsistency, ModeQuorum+1, 0, 0, 0, 0, 0, 0, 0, 0, 0),         // undefined mode
		get(FlagConsistency, ModeRYW, 0, 0, 0, 0, 0, 0, 0, 0),                 // token length missing
		get(FlagConsistency, ModeRYW, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0),           // token entries truncated
		append(AppendGetAt(GetBuf(), []byte("k"), ModeRYW, 0, nil)[4:], 0xEE), // trailing garbage after block
	}
	var req Request
	for i, b := range bodies {
		if err := ParseRequest(b, &req); !errors.Is(err, ErrFrame) {
			t.Errorf("body %d: err = %v, want ErrFrame", i, err)
		}
	}
}

// TestTokenTruncation: tokens longer than MaxTokenLen are truncated on
// encode (the floor loses precision, never correctness) and rejected on
// decode if a peer sends them anyway.
func TestTokenTruncation(t *testing.T) {
	long := make([]uint64, MaxTokenLen+40)
	for i := range long {
		long[i] = uint64(i)
	}
	frame := AppendGetAt(GetBuf(), []byte("k"), ModeRYW, 0, long)
	var req Request
	if err := ParseRequest(frame[4:], &req); err != nil {
		t.Fatalf("parse truncated-token GET: %v", err)
	}
	if len(req.Token) != MaxTokenLen || req.Token[MaxTokenLen-1] != MaxTokenLen-1 {
		t.Fatalf("token truncation: len %d", len(req.Token))
	}
}

// TestOKTokenBody: mutation responses carry the session commit token; an
// empty token is the classic empty StatusOK body, so pre-extension
// clients parse both.
func TestOKTokenBody(t *testing.T) {
	frame := AppendOKToken(GetBuf(), []uint64{3, 1, 4})
	if frame[4] != StatusOK {
		t.Fatalf("status byte %d", frame[4])
	}
	tok, err := ParseTokenBody(frame[5:], nil)
	if err != nil || len(tok) != 3 || tok[0] != 3 || tok[2] != 4 {
		t.Fatalf("token body round-trip: %v, %v", tok, err)
	}

	// Empty token: body-free StatusOK, exactly the pre-extension frame.
	frame = AppendOKToken(GetBuf(), nil)
	if !bytes.Equal(frame, AppendEmpty(GetBuf(), StatusOK)) {
		t.Fatalf("empty token body diverges from classic OK: % x", frame)
	}
	if tok, err := ParseTokenBody(nil, tok[:0]); err != nil || len(tok) != 0 {
		t.Fatalf("empty token body: %v, %v", tok, err)
	}

	// Truncated and overlong bodies are refused.
	if _, err := ParseTokenBody([]byte{2, 0}, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("truncated token body: %v", err)
	}
	if _, err := ParseTokenBody([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF}, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("trailing bytes after token: %v", err)
	}
	if _, err := ParseTokenBody(append([]byte{200}, make([]byte, 1600)...), nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("overlong token accepted: %v", err)
	}
}
