package kvwire

import (
	"errors"
	"testing"
)

// TestMetricsFrame: the METRICS request is an empty-payload frame with an
// optional flags byte, evolving exactly like the read-consistency tail —
// absent or zero parses, any assigned bit from a future revision is
// refused rather than misread.
func TestMetricsFrame(t *testing.T) {
	var req Request

	frame := AppendEmpty(GetBuf(), OpMetrics)
	if err := ParseRequest(frame[4:], &req); err != nil {
		t.Fatalf("parse METRICS: %v", err)
	}
	if req.Op != OpMetrics {
		t.Fatalf("op = %d, want OpMetrics", req.Op)
	}

	// An explicit flags 0 byte is the same request.
	if err := ParseRequest([]byte{OpMetrics, 0}, &req); err != nil {
		t.Fatalf("parse flags-0 METRICS: %v", err)
	}

	// Unknown flag bits are a future protocol revision: refuse.
	if err := ParseRequest([]byte{OpMetrics, 1 << 3}, &req); !errors.Is(err, ErrFrame) {
		t.Fatalf("unknown metrics flag accepted: %v", err)
	}
}
