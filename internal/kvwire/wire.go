// Package kvwire is the client/server wire protocol of the kv serving
// stack: a length-prefixed binary framing shared by cmd/kvserver,
// package kvclient and cmd/kvload.
//
// # Framing
//
// Every message — request or response — is one frame:
//
//	u32  length of the body, big-endian (1 ≤ length ≤ MaxFrame)
//	u8   opcode (request) or status (response)
//	...  opcode/status-specific payload
//
// Requests on one connection are answered strictly in order, one
// response per request, which is what makes pipelining work: a client
// may write any number of requests before reading the first response and
// match responses to requests by position alone.
//
// # Request payloads
//
//	OpPut    u16 klen, key, u32 vlen, value
//	OpGet    u16 klen, key [, flags tail]
//	OpDelete u16 klen, key
//	OpScan   u16 klen, start key (may be empty), u32 limit (≤ MaxScan)
//	         [, flags tail]
//	OpTxn    u16 n, then n times: u8 kind (0 put, 1 delete),
//	         u16 klen, key, and for puts u32 vlen, value
//	OpStats  empty
//	OpPing   empty
//	OpMetrics empty [, u8 flags] — the optional flags byte reserves room
//	         for future scrape filters exactly like the read flags tail:
//	         no bits are assigned yet, so a frame ending at the opcode is
//	         flags 0 and any set bit is rejected as malformed (an old
//	         server visibly refuses new-client extensions)
//
// # Read flags tail
//
// OpGet and OpScan accept an optional trailing extension: one flags byte
// followed by the blocks the set bits announce, in bit order. A frame
// ending at the base payload means flags 0 — every frame an old client
// produces parses unchanged — and a flags byte with any bit this decoder
// does not know is rejected as malformed (ErrFrame), so an old server
// visibly refuses new-client extensions instead of silently ignoring
// their semantics. One bit is assigned:
//
//	FlagConsistency (bit 0): u8 read mode (ModePrimary..ModeQuorum),
//	u64 staleness bound, u8 token length n (≤ MaxTokenLen), n × u64
//	per-shard commit-sequence token.
//
// Clients only append the tail when a non-default read mode is in use:
// plain reads stay byte-identical to the pre-extension protocol in both
// directions.
//
// # Response payloads
//
//	StatusOK        Get: value. Scan: u32 n, then n × (u16 klen, key,
//	                u32 vlen, value). Stats: JSON-encoded Stats.
//	                Metrics: JSON-encoded obs.Snapshot (the deployment's
//	                merged metrics registry plus the server's own).
//	                Put/Delete/Txn: empty, or a commit token (u8 length
//	                n, n × u64) — the session floor for read-your-writes
//	                reads. Clients that don't track tokens ignore the
//	                body; old servers send none. Ping: empty.
//	StatusNotFound  empty (Get/Delete of an absent key)
//	StatusRetry     message — the serving deployment is failing over;
//	                the operation was not acknowledged and is safe to
//	                retry against the same address
//	StatusDegraded  message — the mutation is durable on the serving
//	                node but the configured acknowledgement discipline
//	                was not met (repro.ErrSafetyUnavailable)
//	StatusErr       message — terminal operation error (key too large,
//	                store full, ...); retrying the identical request
//	                will fail the same way
//	StatusBad       message — malformed frame; the server closes the
//	                connection after sending it
package kvwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Frame geometry limits. A frame declaring more than MaxFrame body bytes
// is rejected without buffering it — the first line of defense against
// garbage (a stray HTTP request's "GET " reads as a 1.2 GB length).
const (
	MaxFrame = 1 << 20 // largest frame body either side accepts
	MaxKey   = 1 << 10 // largest key the protocol carries
	MaxValue = 1 << 16 // largest value the protocol carries
	MaxScan  = 1 << 10 // largest scan limit
	MaxTxn   = 1 << 10 // most operations in one Txn frame
)

// Request opcodes.
const (
	OpPut byte = iota + 1
	OpGet
	OpDelete
	OpScan
	OpTxn
	OpStats
	OpPing
	OpMetrics
)

// Response status codes.
const (
	StatusOK byte = iota
	StatusNotFound
	StatusRetry
	StatusDegraded
	StatusErr
	StatusBad
)

// Txn operation kinds.
const (
	TxnPut    byte = 0
	TxnDelete byte = 1
)

// Read-flags tail bits (OpGet/OpScan). Unknown bits are rejected.
const (
	// FlagConsistency announces a consistency block: u8 mode, u64
	// staleness bound, u8 token length, n × u64 token.
	FlagConsistency byte = 1 << 0

	knownFlags = FlagConsistency
)

// Read modes carried in the consistency block. Values mirror the repro
// facade's ReadMode so the server forwards them without translation.
const (
	ModePrimary byte = iota
	ModeRYW
	ModeBounded
	ModeQuorum
)

// MaxTokenLen caps the per-shard commit token length carried on the
// wire — far above any real shard count, low enough that a garbage
// length byte cannot stage a large read.
const MaxTokenLen = 128

// ErrFrame reports a malformed frame or payload; the connection that
// produced it cannot be resynchronized and must be closed.
var ErrFrame = errors.New("kvwire: malformed frame")

// Op is one operation of a Txn request.
type Op struct {
	Kind byte // TxnPut or TxnDelete
	Key  []byte
	Val  []byte // TxnPut only
}

// Request is a decoded request frame. Key, Val and Ops alias the frame
// buffer — valid until the buffer is recycled. Token is owned by the
// Request and recycled across ParseRequest calls.
type Request struct {
	Op    byte
	Key   []byte
	Val   []byte
	Limit int  // OpScan
	Ops   []Op // OpTxn

	// Read consistency (OpGet/OpScan flags tail; zero values when the
	// frame carried none).
	Mode  byte     // ModePrimary..ModeQuorum
	Bound uint64   // bounded-staleness lag bound
	Token []uint64 // per-shard commit-sequence floor (nil = none)
}

// Stats is the server-state document an OpStats request returns,
// JSON-encoded in the response body.
type Stats struct {
	// Keys is the live key count of the served store.
	Keys int `json:"keys"`
	// Committed is the deployment's committed-transaction count.
	Committed uint64 `json:"committed"`
	// Conns is the number of currently open client connections.
	Conns int `json:"conns"`
	// Ops counts requests served since the server started.
	Ops uint64 `json:"ops"`
	// Retries counts StatusRetry responses sent (operations arriving
	// while the deployment was failing over).
	Retries uint64 `json:"retries"`
	// Reopens counts successful store heals (failover + Reopen).
	Reopens uint64 `json:"reopens"`
	// BadFrames counts malformed frames received.
	BadFrames uint64 `json:"bad_frames"`
	// Draining reports whether the server has begun its graceful drain.
	Draining bool `json:"draining"`
	// Shards is the number of replica groups serving the store (1 for an
	// unsharded deployment).
	Shards int `json:"shards"`
	// PlacementEpoch is the deployment's routing-table version: 1 at
	// construction, +1 at every elastic range cut-over.
	PlacementEpoch uint64 `json:"placement_epoch"`
}

// bufPool recycles frame buffers across requests and responses — the
// serving path's analogue of the facade's pooled redo encode buffers:
// steady-state request handling allocates no per-op buffers.
var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

// GetBuf returns a pooled zero-length buffer.
func GetBuf() []byte { return bufPool.Get().([]byte)[:0] }

// PutBuf recycles a buffer obtained from GetBuf (or grown from one).
func PutBuf(b []byte) {
	if cap(b) > MaxFrame+8 {
		return // oversized outlier: let it go instead of pinning it
	}
	bufPool.Put(b[:0]) //nolint:staticcheck // slice sizes are pooled intentionally
}

// BeginFrame starts a frame in buf: the 4-byte length placeholder plus
// the opcode/status byte. Append the payload, then seal with EndFrame.
func BeginFrame(buf []byte, code byte) []byte {
	return append(buf[:0], 0, 0, 0, 0, code)
}

// EndFrame seals a frame begun with BeginFrame by writing the body
// length into the placeholder.
func EndFrame(buf []byte) []byte {
	binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
	return buf
}

// appendU16 appends a big-endian u16 length word, which the limits above
// guarantee fits.
func appendU16(buf []byte, v int) []byte {
	return append(buf, byte(v>>8), byte(v))
}

func appendU32(buf []byte, v int) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(buf []byte, v uint64) []byte {
	return append(buf, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendConsistency appends the read-flags tail announcing a consistency
// block. Token lengths beyond MaxTokenLen are truncated: the floor loses
// precision only for shards past the cap, which the protocol does not
// serve anyway.
func appendConsistency(buf []byte, mode byte, bound uint64, token []uint64) []byte {
	buf = append(buf, FlagConsistency)
	buf = append(buf, mode)
	buf = appendU64(buf, bound)
	if len(token) > MaxTokenLen {
		token = token[:MaxTokenLen]
	}
	buf = append(buf, byte(len(token)))
	for _, t := range token {
		buf = appendU64(buf, t)
	}
	return buf
}

// AppendPut appends a sealed OpPut request frame to buf.
func AppendPut(buf, key, val []byte) []byte {
	buf = BeginFrame(buf, OpPut)
	buf = appendU16(buf, len(key))
	buf = append(buf, key...)
	buf = appendU32(buf, len(val))
	buf = append(buf, val...)
	return EndFrame(buf)
}

// AppendGet appends a sealed OpGet request frame to buf.
func AppendGet(buf, key []byte) []byte {
	buf = BeginFrame(buf, OpGet)
	buf = appendU16(buf, len(key))
	buf = append(buf, key...)
	return EndFrame(buf)
}

// AppendDelete appends a sealed OpDelete request frame to buf.
func AppendDelete(buf, key []byte) []byte {
	buf = BeginFrame(buf, OpDelete)
	buf = appendU16(buf, len(key))
	buf = append(buf, key...)
	return EndFrame(buf)
}

// AppendScan appends a sealed OpScan request frame to buf.
func AppendScan(buf, start []byte, limit int) []byte {
	buf = BeginFrame(buf, OpScan)
	buf = appendU16(buf, len(start))
	buf = append(buf, start...)
	buf = appendU32(buf, limit)
	return EndFrame(buf)
}

// AppendGetAt appends a sealed OpGet request frame carrying a
// consistency tail. Old servers reject the tail as trailing bytes and
// close the connection — send it only to servers that advertise (or are
// known to speak) the extension.
func AppendGetAt(buf, key []byte, mode byte, bound uint64, token []uint64) []byte {
	buf = BeginFrame(buf, OpGet)
	buf = appendU16(buf, len(key))
	buf = append(buf, key...)
	buf = appendConsistency(buf, mode, bound, token)
	return EndFrame(buf)
}

// AppendScanAt appends a sealed OpScan request frame carrying a
// consistency tail (see AppendGetAt for the compatibility caveat).
func AppendScanAt(buf, start []byte, limit int, mode byte, bound uint64, token []uint64) []byte {
	buf = BeginFrame(buf, OpScan)
	buf = appendU16(buf, len(start))
	buf = append(buf, start...)
	buf = appendU32(buf, limit)
	buf = appendConsistency(buf, mode, bound, token)
	return EndFrame(buf)
}

// AppendOKToken appends a sealed StatusOK response frame carrying a
// commit token (mutation responses). With an empty token it degrades to
// the classic empty-bodied OK.
func AppendOKToken(buf []byte, token []uint64) []byte {
	buf = BeginFrame(buf, StatusOK)
	if len(token) > 0 {
		if len(token) > MaxTokenLen {
			token = token[:MaxTokenLen]
		}
		buf = append(buf, byte(len(token)))
		for _, t := range token {
			buf = appendU64(buf, t)
		}
	}
	return EndFrame(buf)
}

// ParseTokenBody decodes a mutation StatusOK body into dst (reusing its
// capacity): a commit token when present, dst[:0] for the classic empty
// body (old servers).
func ParseTokenBody(body []byte, dst []uint64) ([]uint64, error) {
	dst = dst[:0]
	if len(body) == 0 {
		return dst, nil
	}
	r := reader{b: body}
	n, err := r.u8()
	if err != nil {
		return dst, err
	}
	if int(n) > MaxTokenLen {
		return dst, fmt.Errorf("%w: token of %d entries (max %d)", ErrFrame, n, MaxTokenLen)
	}
	for i := 0; i < int(n); i++ {
		v, err := r.u64()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	if r.off != len(body) {
		return dst, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(body)-r.off)
	}
	return dst, nil
}

// AppendTxn appends a sealed OpTxn request frame to buf.
func AppendTxn(buf []byte, ops []Op) []byte {
	buf = BeginFrame(buf, OpTxn)
	buf = appendU16(buf, len(ops))
	for _, op := range ops {
		buf = append(buf, op.Kind)
		buf = appendU16(buf, len(op.Key))
		buf = append(buf, op.Key...)
		if op.Kind == TxnPut {
			buf = appendU32(buf, len(op.Val))
			buf = append(buf, op.Val...)
		}
	}
	return EndFrame(buf)
}

// AppendEmpty appends a sealed payload-free frame (OpStats, OpPing, or
// an empty-bodied response status) to buf.
func AppendEmpty(buf []byte, code byte) []byte {
	return EndFrame(BeginFrame(buf, code))
}

// AppendMsg appends a sealed frame whose payload is a message string
// (the error-carrying response statuses).
func AppendMsg(buf []byte, code byte, msg string) []byte {
	buf = BeginFrame(buf, code)
	if len(msg) > 512 {
		msg = msg[:512]
	}
	buf = append(buf, msg...)
	return EndFrame(buf)
}

// ReadFrame reads one frame body (code byte included) from r into buf,
// growing it as needed, and returns the body. io.EOF surfaces unchanged
// when the stream ends cleanly between frames; a declared length outside
// (0, max] returns ErrFrame without consuming the body.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return buf, fmt.Errorf("%w: truncated length prefix", ErrFrame)
		}
		return buf, err
	}
	n := int(binary.BigEndian.Uint32(head[:]))
	if n < 1 || n > max {
		return buf, fmt.Errorf("%w: declared body of %d bytes (max %d)", ErrFrame, n, max)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, fmt.Errorf("%w: truncated body: %v", ErrFrame, err)
	}
	return buf, nil
}

// reader is a bounds-checked cursor over a frame body.
type reader struct {
	b   []byte
	off int
}

func (r *reader) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, ErrFrame
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (int, error) {
	if r.off+2 > len(r.b) {
		return 0, ErrFrame
	}
	v := int(binary.BigEndian.Uint16(r.b[r.off:]))
	r.off += 2
	return v, nil
}

func (r *reader) u32() (int, error) {
	if r.off+4 > len(r.b) {
		return 0, ErrFrame
	}
	v := int(binary.BigEndian.Uint32(r.b[r.off:]))
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, ErrFrame
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, ErrFrame
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

func (r *reader) key(max int) ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n > max {
		return nil, fmt.Errorf("%w: key of %d bytes (max %d)", ErrFrame, n, max)
	}
	return r.bytes(n)
}

func (r *reader) value() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > MaxValue {
		return nil, fmt.Errorf("%w: value of %d bytes (max %d)", ErrFrame, n, MaxValue)
	}
	return r.bytes(n)
}

// ParseRequest decodes a request frame body into req. Every length is
// bounds-checked against the body and the protocol limits, so arbitrary
// garbage decodes to an error, never a panic or an out-of-range slice;
// trailing bytes after the payload are also rejected (a desynchronized
// peer should be disconnected, not humored). The decoded slices alias
// body.
func ParseRequest(body []byte, req *Request) error {
	tok := req.Token[:0:cap(req.Token)]
	*req = Request{Token: tok}
	r := reader{b: body}
	op, err := r.u8()
	if err != nil {
		return err
	}
	req.Op = op
	switch op {
	case OpPut:
		if req.Key, err = r.key(MaxKey); err != nil {
			return err
		}
		if req.Val, err = r.value(); err != nil {
			return err
		}
	case OpGet:
		if req.Key, err = r.key(MaxKey); err != nil {
			return err
		}
		if err = parseReadFlags(&r, req); err != nil {
			return err
		}
	case OpDelete:
		if req.Key, err = r.key(MaxKey); err != nil {
			return err
		}
	case OpScan:
		if req.Key, err = r.key(MaxKey); err != nil {
			return err
		}
		if req.Limit, err = r.u32(); err != nil {
			return err
		}
		if req.Limit > MaxScan {
			return fmt.Errorf("%w: scan limit %d (max %d)", ErrFrame, req.Limit, MaxScan)
		}
		if err = parseReadFlags(&r, req); err != nil {
			return err
		}
	case OpTxn:
		n, err := r.u16()
		if err != nil {
			return err
		}
		if n > MaxTxn {
			return fmt.Errorf("%w: txn of %d ops (max %d)", ErrFrame, n, MaxTxn)
		}
		req.Ops = make([]Op, 0, n)
		for i := 0; i < n; i++ {
			var o Op
			if o.Kind, err = r.u8(); err != nil {
				return err
			}
			if o.Kind != TxnPut && o.Kind != TxnDelete {
				return fmt.Errorf("%w: unknown txn op kind %d", ErrFrame, o.Kind)
			}
			if o.Key, err = r.key(MaxKey); err != nil {
				return err
			}
			if o.Kind == TxnPut {
				if o.Val, err = r.value(); err != nil {
					return err
				}
			}
			req.Ops = append(req.Ops, o)
		}
	case OpStats, OpPing:
		// No payload.
	case OpMetrics:
		// No base payload; the optional flags byte reserves room for
		// future scrape filters. No bits are assigned yet, so only a
		// zero flags byte (or none at all) parses.
		if r.off < len(r.b) {
			flags, err := r.u8()
			if err != nil {
				return err
			}
			if flags != 0 {
				return fmt.Errorf("%w: unknown metrics flags %#x", ErrFrame, flags)
			}
		}
	default:
		return fmt.Errorf("%w: unknown opcode %d", ErrFrame, op)
	}
	if r.off != len(body) {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(body)-r.off)
	}
	return nil
}

// parseReadFlags decodes an OpGet/OpScan frame's optional flags tail. A
// frame ending at the base payload is flags 0 (old clients); unknown
// flag bits are malformed (old servers reject new extensions visibly).
func parseReadFlags(r *reader, req *Request) error {
	if r.off == len(r.b) {
		return nil
	}
	flags, err := r.u8()
	if err != nil {
		return err
	}
	if flags&^knownFlags != 0 {
		return fmt.Errorf("%w: unknown read flags %#x", ErrFrame, flags&^knownFlags)
	}
	if flags&FlagConsistency != 0 {
		if req.Mode, err = r.u8(); err != nil {
			return err
		}
		if req.Mode > ModeQuorum {
			return fmt.Errorf("%w: unknown read mode %d", ErrFrame, req.Mode)
		}
		if req.Bound, err = r.u64(); err != nil {
			return err
		}
		n, err := r.u8()
		if err != nil {
			return err
		}
		if int(n) > MaxTokenLen {
			return fmt.Errorf("%w: token of %d entries (max %d)", ErrFrame, n, MaxTokenLen)
		}
		for i := 0; i < int(n); i++ {
			v, err := r.u64()
			if err != nil {
				return err
			}
			req.Token = append(req.Token, v)
		}
	}
	return nil
}

// Entry is one key/value pair of a scan response.
type Entry struct {
	Key []byte
	Val []byte
}

// AppendScanEntry appends one entry to an open StatusOK scan response
// whose count word was placed with appendU32; the server bumps the count
// in place via FinishScan.
func AppendScanEntry(buf, key, val []byte) []byte {
	buf = appendU16(buf, len(key))
	buf = append(buf, key...)
	buf = appendU32(buf, len(val))
	buf = append(buf, val...)
	return buf
}

// BeginScanResponse starts a StatusOK scan response, returning the buffer
// and the offset of its entry-count word.
func BeginScanResponse(buf []byte) ([]byte, int) {
	buf = BeginFrame(buf, StatusOK)
	off := len(buf)
	buf = appendU32(buf, 0)
	return buf, off
}

// FinishScanResponse seals a scan response: writes the entry count into
// its placeholder and the frame length into the header.
func FinishScanResponse(buf []byte, countOff, n int) []byte {
	binary.BigEndian.PutUint32(buf[countOff:], uint32(n))
	return EndFrame(buf)
}

// ParseScanBody decodes a StatusOK scan response body (status byte
// stripped) by calling fn for every entry; the slices alias body.
func ParseScanBody(body []byte, fn func(key, val []byte) error) error {
	r := reader{b: body}
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		key, err := r.key(MaxKey)
		if err != nil {
			return err
		}
		val, err := r.value()
		if err != nil {
			return err
		}
		if err := fn(key, val); err != nil {
			return err
		}
	}
	if r.off != len(body) {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(body)-r.off)
	}
	return nil
}
