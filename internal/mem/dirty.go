package mem

// DirtyLog tracks which pages of a region have been written, and when, on a
// private logical clock: every mark advances the log's sequence number and
// stamps the covered pages with it. A replica that loses contact with the
// stream snapshots the sequence at the gating instant (its epoch); when it
// rejoins, the pages stamped after that epoch are exactly the delta it
// missed, so re-enrollment ships those pages instead of the whole region.
//
// A DirtyLog is owned by the single stream that writes its region (marks
// happen under the region owner's serialization); it is not safe for
// concurrent use.
type DirtyLog struct {
	pageSize int
	seq      uint64
	pages    []uint64 // last-mark sequence per page; 0 = never written
}

// NewDirtyLog returns a tracker for a region of size bytes at the given
// page granularity.
func NewDirtyLog(size, pageSize int) *DirtyLog {
	if pageSize <= 0 {
		pageSize = 4096
	}
	n := (size + pageSize - 1) / pageSize
	return &DirtyLog{pageSize: pageSize, pages: make([]uint64, n)}
}

// PageSize returns the tracking granularity in bytes.
func (d *DirtyLog) PageSize() int { return d.pageSize }

// Pages returns the number of tracked pages.
func (d *DirtyLog) Pages() int { return len(d.pages) }

// Seq returns the current mark sequence; a replica records it as its epoch
// at the instant it stops receiving the stream.
func (d *DirtyLog) Seq() uint64 { return d.seq }

// Mark records a write covering [off, off+n).
func (d *DirtyLog) Mark(off, n int) {
	if n <= 0 {
		return
	}
	d.seq++
	last := (off + n - 1) / d.pageSize
	if last >= len(d.pages) {
		last = len(d.pages) - 1
	}
	for p := off / d.pageSize; p <= last; p++ {
		d.pages[p] = d.seq
	}
}

// NextDirty returns the first page index >= from stamped after epoch, or -1
// when no such page remains. Epoch 0 walks every page ever written; a full
// (enrollment) transfer does not consult the log at all.
func (d *DirtyLog) NextDirty(from int, epoch uint64) int {
	for p := from; p < len(d.pages); p++ {
		if d.pages[p] > epoch {
			return p
		}
	}
	return -1
}

// BytesSince returns the total size of the pages stamped after epoch — the
// delta a replica gated at that epoch must receive to catch up.
func (d *DirtyLog) BytesSince(epoch uint64) int64 {
	var n int64
	for _, s := range d.pages {
		if s > epoch {
			n += int64(d.pageSize)
		}
	}
	return n
}
