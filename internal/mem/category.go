package mem

// Category classifies replicated bytes the way the paper's Tables 2, 5 and
// 7 break down "data communicated to the backup".
type Category uint8

// Byte categories.
const (
	// CatModified is data actually modified by transactions (in-place
	// database writes, and for the active backup the redo payload).
	CatModified Category = iota + 1
	// CatUndo is undo information: the before-image copies in the undo
	// log (V0/V3) or the mirror updates (V1/V2), which play the same
	// recovery role.
	CatUndo
	// CatMeta is everything else: allocator and list bookkeeping, log
	// record headers, array indices, commit flags and log pointers.
	CatMeta
	// CatSync is state-transfer traffic: the chunked background copy that
	// enrolls (or delta-resyncs) a backup while transactions keep
	// committing. Kept separate from the paper's three categories so the
	// recovery cost is visible next to the steady-state numbers.
	CatSync
	// CatControl is control-plane traffic: the periodic heartbeats (and
	// their acknowledgements) the failure-detection subsystem exchanges
	// over the SAN. Never entered into write buffers or group-commit
	// batches — it occupies the link next to redo and sync bytes but is
	// invisible to the commit pipeline's accounting.
	CatControl

	// NumCategories is the number of valid categories plus one, for
	// dense per-category arrays indexed by Category.
	NumCategories = 6
)

// String returns the table label used in the paper.
func (c Category) String() string {
	switch c {
	case CatModified:
		return "Modified data"
	case CatUndo:
		return "Undo data"
	case CatMeta:
		return "Meta-data"
	case CatSync:
		return "Sync data"
	case CatControl:
		return "Control data"
	default:
		return "unknown"
	}
}

// Valid reports whether c is one of the defined categories.
func (c Category) Valid() bool { return c >= CatModified && c <= CatControl }
