package mem

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cache"
	"repro/internal/sim"
)

// IOSink receives the I/O-space half of doubled writes. It is implemented
// by memchannel.Node; a nil sink means the node runs standalone and
// write-through regions behave like ordinary memory.
type IOSink interface {
	// StoreIO performs an uncached store of src at the simulated address
	// addr, tagged with a traffic category for the paper's byte-
	// breakdown tables.
	StoreIO(addr uint64, src []byte, cat Category)
	// Fence drains the write buffers in allocation order (Alpha wmb),
	// establishing ordering between earlier and later stores.
	Fence()
}

// Accessor is one simulated CPU's instrumented view of its address space.
// Every method charges the owning clock for the work performed; methods
// that touch write-through regions also emit the doubled I/O-space store.
//
// An Accessor is not safe for concurrent use: one per simulated processor.
type Accessor struct {
	Params *sim.Params
	Clock  *sim.Clock
	Cache  *cache.Cache
	Space  *Space
	// IO receives doubled writes; nil when the node has no backup.
	IO IOSink

	stats      AccessStats
	scratchBuf []byte
	// wordBuf stages fixed-width loads and stores. Routing a stack array
	// through the IOSink interface would force a heap allocation per call;
	// the accessor is single-stream and both the backing store and the
	// sink copy the bytes before returning, so one shared buffer keeps the
	// word helpers allocation-free on the commit hot path.
	wordBuf [8]byte
}

// AccessStats counts local traffic issued through the accessor.
type AccessStats struct {
	Loads, Stores   int64
	BytesRead       int64
	BytesWritten    int64
	BytesCompared   int64
	IOStores        int64
	BytesIO         int64
	ChargedCompute  sim.Dur
	ChargedIOStores sim.Dur
}

// NewAccessor wires an accessor; cache may be shared only with the same
// stream's other accessors (there is normally exactly one).
func NewAccessor(p *sim.Params, clk *sim.Clock, ch *cache.Cache, sp *Space) *Accessor {
	return &Accessor{Params: p, Clock: clk, Cache: ch, Space: sp}
}

// Stats returns a copy of the counters.
func (a *Accessor) Stats() AccessStats { return a.stats }

// Charge advances the clock by a fixed software cost (API entry overheads
// and similar), keeping all time accounting behind one type.
func (a *Accessor) Charge(d sim.Dur) {
	a.stats.ChargedCompute += d
	a.Clock.Advance(d)
}

// region resolves the region containing [addr,addr+n) or panics: engines
// compute addresses from their own layout, so a miss is a bug, exactly
// like a stray pointer on the modelled machine.
func (a *Accessor) region(addr uint64, n int) *Region {
	r := a.Space.Lookup(addr, n)
	if r == nil {
		panic(fmt.Sprintf("mem: access [%#x,+%d) outside any region", addr, n))
	}
	return r
}

// Read loads len(dst) bytes from addr.
func (a *Accessor) Read(addr uint64, dst []byte) {
	if len(dst) == 0 {
		return
	}
	r := a.region(addr, len(dst))
	a.chargeLoad(addr, len(dst))
	r.ReadRaw(int(addr-r.Base), dst)
}

// Write stores src at addr, doubling onto the SAN when the region is
// mapped write-through.
func (a *Accessor) Write(addr uint64, src []byte, cat Category) {
	if len(src) == 0 {
		return
	}
	r := a.region(addr, len(src))
	words := Dur8(len(src))
	a.stats.Stores++
	a.stats.BytesWritten += int64(len(src))
	cost := a.Params.StoreWord * sim.Dur(words)
	a.stats.ChargedCompute += cost
	a.Clock.Advance(cost)
	if !r.IOOnly {
		a.Cache.AccessVM(addr, len(src), true)
		r.WriteRaw(int(addr-r.Base), src)
	}
	if (r.WriteThrough || r.IOOnly) && a.IO != nil {
		a.storeIO(addr, src, cat)
	}
}

// Copy performs a bcopy-style bulk move of n bytes from src to dst,
// charging per-byte copy costs plus cache traffic on both ranges. The
// write half is doubled when dst is write-through.
func (a *Accessor) Copy(dst, src uint64, n int, cat Category) {
	if n <= 0 {
		return
	}
	rs := a.region(src, n)
	rd := a.region(dst, n)

	cost := a.Params.CopyByte * sim.Dur(n)
	a.stats.ChargedCompute += cost
	a.Clock.Advance(cost)
	a.stats.BytesRead += int64(n)
	a.stats.BytesWritten += int64(n)
	a.Cache.AccessVM(src, n, false)

	buf := a.scratch(n)
	rs.ReadRaw(int(src-rs.Base), buf)
	if !rd.IOOnly {
		a.Cache.AccessVM(dst, n, true)
		rd.WriteRaw(int(dst-rd.Base), buf)
	}
	if (rd.WriteThrough || rd.IOOnly) && a.IO != nil {
		a.storeIO(dst, buf, cat)
	}
}

// DiffRun is a maximal differing range found by Diff, relative to the
// start of the compared ranges.
type DiffRun struct {
	Off, Len int
}

// DiffGranularity is the comparison granule of mirror-by-diff: the Alpha
// writes the database mostly in 32-bit quantities, so differences are
// detected and written back in 4-byte units (paper Section 4.3).
const DiffGranularity = 4

// Diff compares [aAddr,+n) with [bAddr,+n), charging the comparison loop
// and the cache traffic of reading both operands, and returns the maximal
// runs (multiples of DiffGranularity) where they differ.
func (a *Accessor) Diff(aAddr, bAddr uint64, n int) []DiffRun {
	if n <= 0 {
		return nil
	}
	ra := a.region(aAddr, n)
	rb := a.region(bAddr, n)

	cost := a.Params.CompareByte * sim.Dur(n)
	a.stats.ChargedCompute += cost
	a.stats.BytesCompared += int64(n)
	a.Clock.Advance(cost)
	a.Cache.AccessVM(aAddr, n, false)
	a.Cache.AccessVM(bAddr, n, false)

	bufA := make([]byte, n)
	bufB := make([]byte, n)
	ra.ReadRaw(int(aAddr-ra.Base), bufA)
	rb.ReadRaw(int(bAddr-rb.Base), bufB)

	var runs []DiffRun
	run := -1
	for off := 0; off < n; off += DiffGranularity {
		end := off + DiffGranularity
		if end > n {
			end = n
		}
		if !bytesEqual(bufA[off:end], bufB[off:end]) {
			if run < 0 {
				run = off
			}
			continue
		}
		if run >= 0 {
			runs = append(runs, DiffRun{Off: run, Len: off - run})
			run = -1
		}
	}
	if run >= 0 {
		runs = append(runs, DiffRun{Off: run, Len: n - run})
	}
	return runs
}

// Fence drains the node's write buffers, ordering all earlier doubled
// stores before any later ones (Alpha wmb + Memory Channel FIFO delivery).
func (a *Accessor) Fence() {
	if a.IO != nil {
		a.IO.Fence()
	}
}

// ReadU64 loads a little-endian 64-bit word.
func (a *Accessor) ReadU64(addr uint64) uint64 {
	a.Read(addr, a.wordBuf[:8])
	return binary.LittleEndian.Uint64(a.wordBuf[:8])
}

// WriteU64 stores a little-endian 64-bit word.
func (a *Accessor) WriteU64(addr uint64, v uint64, cat Category) {
	binary.LittleEndian.PutUint64(a.wordBuf[:8], v)
	a.Write(addr, a.wordBuf[:8], cat)
}

// ReadU32 loads a little-endian 32-bit word.
func (a *Accessor) ReadU32(addr uint64) uint32 {
	a.Read(addr, a.wordBuf[:4])
	return binary.LittleEndian.Uint32(a.wordBuf[:4])
}

// WriteU32 stores a little-endian 32-bit word.
func (a *Accessor) WriteU32(addr uint64, v uint32, cat Category) {
	binary.LittleEndian.PutUint32(a.wordBuf[:4], v)
	a.Write(addr, a.wordBuf[:4], cat)
}

func (a *Accessor) chargeLoad(addr uint64, n int) {
	a.stats.Loads++
	a.stats.BytesRead += int64(n)
	cost := a.Params.LoadWord * sim.Dur(Dur8(n))
	a.stats.ChargedCompute += cost
	a.Clock.Advance(cost)
	a.Cache.AccessVM(addr, n, false)
}

func (a *Accessor) storeIO(addr uint64, src []byte, cat Category) {
	words := Dur8(len(src))
	a.stats.IOStores++
	a.stats.BytesIO += int64(len(src))
	cost := a.Params.IOStoreWord * sim.Dur(words)
	a.stats.ChargedIOStores += cost
	a.Clock.Advance(cost)
	a.IO.StoreIO(addr, src, cat)
}

// scratch returns a reusable buffer of n bytes to keep bulk copies off the
// allocator's hot path.
func (a *Accessor) scratch(n int) []byte {
	if cap(a.scratchBuf) < n {
		a.scratchBuf = make([]byte, n)
	}
	a.scratchBuf = a.scratchBuf[:n]
	return a.scratchBuf
}

func bytesEqual(x, y []byte) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// Dur8 returns the number of 8-byte words covering n bytes.
func Dur8(n int) int { return (n + 7) / 8 }
