package mem

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/sim"
)

// fakeSink records I/O-space stores for inspection.
type fakeSink struct {
	stores []fakeStore
	fences int
}

type fakeStore struct {
	addr uint64
	data []byte
	cat  Category
}

func (f *fakeSink) StoreIO(addr uint64, src []byte, cat Category) {
	f.stores = append(f.stores, fakeStore{addr: addr, data: append([]byte(nil), src...), cat: cat})
}

func (f *fakeSink) Fence() { f.fences++ }

var _ IOSink = (*fakeSink)(nil)

func newTestAccessor(t *testing.T) (*Accessor, *Region, *Region, *fakeSink) {
	t.Helper()
	p := sim.Default()
	clk := &sim.Clock{}
	sp := NewSpace()
	local := NewRegion("local", 0x10000, NewDense(4096))
	repl := NewRegion("repl", 0x20000, NewDense(4096))
	repl.WriteThrough = true
	for _, r := range []*Region{local, repl} {
		if err := sp.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	acc := NewAccessor(&p, clk, cache.New(&p, clk), sp)
	sink := &fakeSink{}
	acc.IO = sink
	return acc, local, repl, sink
}

func TestWriteLocalOnly(t *testing.T) {
	acc, local, _, sink := newTestAccessor(t)
	acc.Write(local.Base+8, []byte("abc"), CatModified)
	got := make([]byte, 3)
	local.ReadRaw(8, got)
	if string(got) != "abc" {
		t.Fatalf("local write landed as %q", got)
	}
	if len(sink.stores) != 0 {
		t.Fatal("non-replicated write reached the SAN")
	}
}

func TestWriteThroughDoubles(t *testing.T) {
	acc, _, repl, sink := newTestAccessor(t)
	acc.Write(repl.Base+16, []byte{1, 2, 3, 4}, CatUndo)
	got := make([]byte, 4)
	repl.ReadRaw(16, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatal("local half of doubled write missing")
	}
	if len(sink.stores) != 1 {
		t.Fatalf("%d I/O stores, want 1", len(sink.stores))
	}
	s := sink.stores[0]
	if s.addr != repl.Base+16 || !bytes.Equal(s.data, []byte{1, 2, 3, 4}) || s.cat != CatUndo {
		t.Fatalf("I/O store %+v wrong", s)
	}
}

func TestWriteNoSinkStandalone(t *testing.T) {
	acc, _, repl, _ := newTestAccessor(t)
	acc.IO = nil
	acc.Write(repl.Base, []byte{9}, CatMeta) // must not panic
	got := make([]byte, 1)
	repl.ReadRaw(0, got)
	if got[0] != 9 {
		t.Fatal("standalone write lost")
	}
}

func TestIOOnlyRegionSkipsLocal(t *testing.T) {
	acc, _, _, sink := newTestAccessor(t)
	ioReg := NewRegion("ioonly", 0x30000, NewDense(64))
	ioReg.IOOnly = true
	if err := acc.Space.Add(ioReg); err != nil {
		t.Fatal(err)
	}
	acc.Write(ioReg.Base, []byte{5, 6}, CatModified)
	got := make([]byte, 2)
	ioReg.ReadRaw(0, got)
	if got[0] != 0 || got[1] != 0 {
		t.Fatal("IOOnly write landed locally")
	}
	if len(sink.stores) != 1 {
		t.Fatalf("IOOnly write produced %d I/O stores", len(sink.stores))
	}
}

func TestReadAfterWrite(t *testing.T) {
	acc, local, _, _ := newTestAccessor(t)
	acc.WriteU64(local.Base+24, 0xDEADBEEF01020304, CatMeta)
	if got := acc.ReadU64(local.Base + 24); got != 0xDEADBEEF01020304 {
		t.Fatalf("ReadU64 = %#x", got)
	}
	acc.WriteU32(local.Base+40, 0xCAFE, CatMeta)
	if got := acc.ReadU32(local.Base + 40); got != 0xCAFE {
		t.Fatalf("ReadU32 = %#x", got)
	}
}

func TestCopyMovesBytesAndDoubles(t *testing.T) {
	acc, local, repl, sink := newTestAccessor(t)
	src := []byte("copy me through the SAN!")
	local.WriteRaw(100, src)
	acc.Copy(repl.Base+200, local.Base+100, len(src), CatUndo)

	got := make([]byte, len(src))
	repl.ReadRaw(200, got)
	if !bytes.Equal(got, src) {
		t.Fatalf("copy landed as %q", got)
	}
	if len(sink.stores) != 1 || !bytes.Equal(sink.stores[0].data, src) {
		t.Fatal("copy's doubled write wrong")
	}
}

func TestDiffFindsRuns(t *testing.T) {
	acc, local, _, _ := newTestAccessor(t)
	a := local.Base
	b := local.Base + 512
	buf := make([]byte, 64)
	local.WriteRaw(0, buf)
	local.WriteRaw(512, buf)

	// Perturb granules 1 and 2 (bytes 4..12) and granule 8 (bytes 32..36).
	local.WriteRaw(4, []byte{1, 1, 1, 1, 2, 2, 2, 2})
	local.WriteRaw(32, []byte{3})

	runs := acc.Diff(a, b, 64)
	want := []DiffRun{{Off: 4, Len: 8}, {Off: 32, Len: 4}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %+v, want %+v", runs, want)
	}
	for i := range runs {
		if runs[i] != want[i] {
			t.Fatalf("run %d = %+v, want %+v", i, runs[i], want[i])
		}
	}
}

func TestDiffIdentical(t *testing.T) {
	acc, local, _, _ := newTestAccessor(t)
	if runs := acc.Diff(local.Base, local.Base+1024, 128); runs != nil {
		t.Fatalf("identical ranges diffed: %+v", runs)
	}
}

// TestDiffThenCopyEqualizes: applying the diff's runs as copies makes the
// two ranges byte-identical — the Version 2 commit invariant.
func TestDiffThenCopyEqualizes(t *testing.T) {
	f := func(seed uint64) bool {
		p := sim.Default()
		clk := &sim.Clock{}
		sp := NewSpace()
		reg := NewRegion("r", 0, NewDense(2048))
		if err := sp.Add(reg); err != nil {
			return false
		}
		acc := NewAccessor(&p, clk, cache.New(&p, clk), sp)

		r := rand.New(rand.NewPCG(seed, 7))
		a := make([]byte, 256)
		b := make([]byte, 256)
		for i := range a {
			a[i] = byte(r.Uint32())
			if r.IntN(3) == 0 {
				b[i] = a[i]
			} else {
				b[i] = byte(r.Uint32())
			}
		}
		reg.WriteRaw(0, a)
		reg.WriteRaw(1024, b)

		for _, run := range acc.Diff(0, 1024, 256) {
			acc.Copy(1024+uint64(run.Off), uint64(run.Off), run.Len, CatUndo)
		}
		got := make([]byte, 256)
		reg.ReadRaw(1024, got)
		return bytes.Equal(got, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorChargesTime(t *testing.T) {
	acc, local, _, _ := newTestAccessor(t)
	acc.Charge(100 * sim.Nanosecond)
	if acc.Clock.Now() == 0 {
		t.Fatal("Charge did not advance the clock")
	}
	before := acc.Clock.Now()
	acc.Write(local.Base, make([]byte, 64), CatModified)
	if acc.Clock.Now() <= before {
		t.Fatal("Write charged nothing")
	}
	st := acc.Stats()
	if st.Stores != 1 || st.BytesWritten != 64 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAccessorFencePassThrough(t *testing.T) {
	acc, _, _, sink := newTestAccessor(t)
	acc.Fence()
	if sink.fences != 1 {
		t.Fatal("fence not forwarded")
	}
	acc.IO = nil
	acc.Fence() // must not panic
}

func TestAccessorOutOfRegionPanics(t *testing.T) {
	acc, _, _, _ := newTestAccessor(t)
	defer func() {
		if recover() == nil {
			t.Fatal("wild access did not panic")
		}
	}()
	acc.Read(0xDEAD00000, make([]byte, 4))
}

func TestDur8(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 8: 1, 9: 2, 16: 2, 17: 3}
	for n, want := range cases {
		if got := Dur8(n); got != want {
			t.Errorf("Dur8(%d) = %d, want %d", n, got, want)
		}
	}
}
