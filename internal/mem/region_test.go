package mem

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDenseBacking(t *testing.T) {
	d := NewDense(64)
	d.WriteAt(10, []byte("hello"))
	got := make([]byte, 5)
	d.ReadAt(10, got)
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if d.Size() != 64 {
		t.Fatalf("Size() = %d", d.Size())
	}
}

func TestSparseBackingHolesReadZero(t *testing.T) {
	s := NewSparse(3 * sparsePage)
	got := make([]byte, 16)
	s.ReadAt(sparsePage+100, got)
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatalf("hole read non-zero: %v", got)
	}
	if s.Pages() != 0 {
		t.Fatalf("reading allocated %d pages", s.Pages())
	}
}

func TestSparseBackingPageCrossing(t *testing.T) {
	s := NewSparse(4 * sparsePage)
	data := make([]byte, sparsePage+100)
	for i := range data {
		data[i] = byte(i)
	}
	off := sparsePage - 50 // crosses two boundaries
	s.WriteAt(off, data)
	got := make([]byte, len(data))
	s.ReadAt(off, got)
	if !bytes.Equal(got, data) {
		t.Fatal("page-crossing write/read mismatch")
	}
	if s.Pages() != 3 {
		t.Fatalf("allocated %d pages, want 3", s.Pages())
	}
}

func TestSparseBackingOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range sparse write did not panic")
		}
	}()
	NewSparse(100).WriteAt(90, make([]byte, 20))
}

// TestSparseMatchesDense: a sparse backing behaves exactly like a dense
// one under arbitrary write/read sequences.
func TestSparseMatchesDense(t *testing.T) {
	const size = 4 * sparsePage
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		sp := NewSparse(size)
		de := NewDense(size)
		for i := 0; i < 200; i++ {
			off := r.IntN(size - 64)
			n := 1 + r.IntN(64)
			buf := make([]byte, n)
			for j := range buf {
				buf[j] = byte(r.Uint32())
			}
			sp.WriteAt(off, buf)
			de.WriteAt(off, buf)
		}
		a := make([]byte, size)
		b := make([]byte, size)
		sp.ReadAt(0, a)
		de.ReadAt(0, b)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceAddAndLookup(t *testing.T) {
	s := NewSpace()
	r1 := NewRegion("a", 0x1000, NewDense(256))
	r2 := NewRegion("b", 0x2000, NewDense(256))
	for _, r := range []*Region{r1, r2} {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Lookup(0x1010, 16); got != r1 {
		t.Fatalf("Lookup landed on %v", got)
	}
	if got := s.Lookup(0x10F0, 32); got != nil {
		t.Fatal("Lookup matched a range overrunning the region")
	}
	if got := s.Lookup(0x1500, 1); got != nil {
		t.Fatal("Lookup matched a gap")
	}
	if s.ByName("b") != r2 || s.ByName("zzz") != nil {
		t.Fatal("ByName wrong")
	}
	if got := len(s.Regions()); got != 2 {
		t.Fatalf("Regions() = %d entries", got)
	}
}

func TestSpaceRejectsOverlapAndDuplicates(t *testing.T) {
	s := NewSpace()
	if err := s.Add(NewRegion("a", 0x1000, NewDense(256))); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(NewRegion("a", 0x9000, NewDense(16))); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := s.Add(NewRegion("c", 0x10FF, NewDense(16))); err == nil {
		t.Fatal("overlapping region accepted")
	}
}

func TestRegionContains(t *testing.T) {
	r := NewRegion("r", 100, NewDense(50))
	cases := []struct {
		addr uint64
		n    int
		want bool
	}{
		{100, 50, true},
		{100, 51, false},
		{99, 1, false},
		{149, 1, true},
		{150, 1, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.addr, c.n); got != c.want {
			t.Errorf("Contains(%d,%d) = %v", c.addr, c.n, got)
		}
	}
	if r.End() != 150 {
		t.Fatalf("End() = %d", r.End())
	}
}

func TestCategoryString(t *testing.T) {
	if CatModified.String() != "Modified data" || CatUndo.String() != "Undo data" ||
		CatMeta.String() != "Meta-data" || Category(99).String() != "unknown" {
		t.Fatal("category names changed")
	}
	if !CatUndo.Valid() || Category(0).Valid() || Category(9).Valid() {
		t.Fatal("Valid() wrong")
	}
}
