// Package mem provides the simulated physical address space shared by the
// transaction engines and the replication machinery: named regions with
// real byte backing (dense or sparse), and an instrumented Accessor that
// charges every load/store/copy/compare to the owning stream's simulated
// clock and cache model, and doubles writes to write-through regions into
// the SAN (paper Section 3: "double writes are used to propagate writes to
// the backup").
package mem

import (
	"fmt"
	"sort"
)

// Backing is the real storage behind a region. Implementations must treat
// out-of-range accesses as programmer errors (panic), mirroring a wild
// pointer on the modelled hardware.
type Backing interface {
	ReadAt(off int, dst []byte)
	WriteAt(off int, src []byte)
	Size() int
}

// Dense is a flat in-memory backing.
type Dense []byte

// NewDense allocates a zeroed dense backing of n bytes.
func NewDense(n int) Dense { return make(Dense, n) }

// ReadAt copies len(dst) bytes at off into dst.
func (d Dense) ReadAt(off int, dst []byte) { copy(dst, d[off:off+len(dst)]) }

// WriteAt copies src into the backing at off.
func (d Dense) WriteAt(off int, src []byte) { copy(d[off:off+len(src)], src) }

// Size returns the backing size in bytes.
func (d Dense) Size() int { return len(d) }

// sparsePage is the allocation granule of a Sparse backing.
const sparsePage = 4096

// Sparse is a page-on-demand backing for very large regions (the 1 GB
// database of paper Table 8): unwritten pages read as zero and occupy no
// host memory.
type Sparse struct {
	size  int
	pages map[int][]byte
}

// NewSparse returns a sparse backing of logical size n bytes.
func NewSparse(n int) *Sparse {
	return &Sparse{size: n, pages: make(map[int][]byte)}
}

// ReadAt copies len(dst) bytes at off into dst; holes read as zero.
func (s *Sparse) ReadAt(off int, dst []byte) {
	if off < 0 || off+len(dst) > s.size {
		panic(fmt.Sprintf("mem: sparse read [%d,%d) out of range %d", off, off+len(dst), s.size))
	}
	for len(dst) > 0 {
		pg, po := off/sparsePage, off%sparsePage
		n := sparsePage - po
		if n > len(dst) {
			n = len(dst)
		}
		if p, ok := s.pages[pg]; ok {
			copy(dst[:n], p[po:po+n])
		} else {
			clearBytes(dst[:n])
		}
		dst = dst[n:]
		off += n
	}
}

// WriteAt copies src into the backing at off, allocating pages on demand.
func (s *Sparse) WriteAt(off int, src []byte) {
	if off < 0 || off+len(src) > s.size {
		panic(fmt.Sprintf("mem: sparse write [%d,%d) out of range %d", off, off+len(src), s.size))
	}
	for len(src) > 0 {
		pg, po := off/sparsePage, off%sparsePage
		n := sparsePage - po
		if n > len(src) {
			n = len(src)
		}
		p, ok := s.pages[pg]
		if !ok {
			p = make([]byte, sparsePage)
			s.pages[pg] = p
		}
		copy(p[po:po+n], src[:n])
		src = src[n:]
		off += n
	}
}

// Size returns the logical size in bytes.
func (s *Sparse) Size() int { return s.size }

// Pages returns the number of host pages actually allocated.
func (s *Sparse) Pages() int { return len(s.pages) }

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// Region is a named, contiguous range of the simulated address space.
type Region struct {
	// Name identifies the region ("db", "mirror", "undolog", ...).
	Name string
	// Base is the region's simulated base address. Regions are placed at
	// cache-size-aligned bases so that, e.g., database and mirror lines
	// conflict in the direct-mapped board cache exactly as two 50 MB
	// structures would on the real machine.
	Base uint64
	// WriteThrough marks the region as mapped into Memory Channel space:
	// every store is doubled onto the SAN.
	WriteThrough bool
	// IOOnly marks a region that exists only in I/O space on this node
	// (the active backup's redo ring as seen by the primary): stores are
	// not applied locally and the backing may be nil.
	IOOnly bool
	// Dirty, when non-nil, records every write to the region at page
	// granularity so a re-enrolling replica can ship only the pages that
	// changed while it was away (see DirtyLog).
	Dirty *DirtyLog

	backing Backing
}

// NewRegion returns a region with the given backing.
func NewRegion(name string, base uint64, b Backing) *Region {
	return &Region{Name: name, Base: base, backing: b}
}

// Size returns the region size in bytes.
func (r *Region) Size() int {
	if r.backing == nil {
		return 0
	}
	return r.backing.Size()
}

// End returns the first simulated address past the region.
func (r *Region) End() uint64 { return r.Base + uint64(r.Size()) }

// Contains reports whether [addr, addr+n) lies inside the region.
func (r *Region) Contains(addr uint64, n int) bool {
	return addr >= r.Base && addr+uint64(n) <= r.End()
}

// ReadRaw reads bytes without charging simulated time (initialization,
// oracle checks, recovery-side inspection).
func (r *Region) ReadRaw(off int, dst []byte) { r.backing.ReadAt(off, dst) }

// WriteRaw writes bytes without charging simulated time. Every mutation —
// charged accessor stores, replication deliveries, recovery rewrites —
// lands here, so this is the one choke point where dirty tracking sees the
// whole write stream.
func (r *Region) WriteRaw(off int, src []byte) {
	if r.Dirty != nil {
		r.Dirty.Mark(off, len(src))
	}
	r.backing.WriteAt(off, src)
}

// Backing exposes the raw backing (used by the replication layer to apply
// delivered packets on the remote node).
func (r *Region) Backing() Backing { return r.backing }

// Space is one node's simulated address space: a set of non-overlapping
// regions, looked up by address or name.
type Space struct {
	regions []*Region // sorted by Base
	byName  map[string]*Region
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{byName: make(map[string]*Region)}
}

// Add inserts a region, rejecting overlaps and duplicate names.
func (s *Space) Add(r *Region) error {
	if _, dup := s.byName[r.Name]; dup {
		return fmt.Errorf("mem: duplicate region %q", r.Name)
	}
	for _, o := range s.regions {
		if r.Base < o.End() && o.Base < r.End() {
			return fmt.Errorf("mem: region %q [%#x,%#x) overlaps %q [%#x,%#x)",
				r.Name, r.Base, r.End(), o.Name, o.Base, o.End())
		}
	}
	s.regions = append(s.regions, r)
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
	s.byName[r.Name] = r
	return nil
}

// Lookup returns the region containing [addr, addr+n), or nil.
func (s *Space) Lookup(addr uint64, n int) *Region {
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].End() > addr })
	if i < len(s.regions) && s.regions[i].Contains(addr, n) {
		return s.regions[i]
	}
	return nil
}

// ByName returns the named region, or nil.
func (s *Space) ByName(name string) *Region { return s.byName[name] }

// Regions returns the regions in address order (shared slice; callers must
// not modify it).
func (s *Space) Regions() []*Region { return s.regions }
