// Package kvserver is the TCP front-end over a kv.Store: the piece that
// turns the in-process reproduction into a system real clients can
// talk to. It speaks the kvwire length-prefixed binary protocol
// (PUT/GET/DELETE/SCAN/TXN/STATS/PING), pipelines requests per
// connection behind a bounded in-flight window, recycles every frame
// buffer through kvwire's pool (no per-operation allocations or
// goroutines on the steady-state path — two goroutines per connection,
// period), routes GETs and SCANs carrying a kvwire consistency block
// through the store's replica read views (answering mutations with the
// commit token that anchors read-your-writes sessions), and maps the
// deployment's failure taxonomy onto the wire:
//
//   - kv.ErrBroken / repro.ErrCrashed / repro.ErrLeaseExpired become
//     StatusRetry — the client retries, and the server's healer
//     re-Opens the store in place (kv.Store.Reopen) as soon as the
//     autopilot has promoted a survivor, calling Admin.Failover itself
//     when no autopilot is configured.
//   - repro.ErrSafetyUnavailable becomes StatusDegraded — the
//     deployment cannot currently meet its configured safety level.
//   - terminal operation errors (store full, key too large, ...)
//     become StatusErr; malformed frames become StatusBad and close
//     the connection.
//
// Shutdown is a graceful drain: listeners close, connections finish
// answering every request already read, writers flush, and only then do
// the sockets close.
package kvserver

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/kvwire"
	"repro/internal/obs"
	"repro/kv"
)

// Config tunes a Server. The zero value is serviceable.
type Config struct {
	// Window is the per-connection in-flight window: how many parsed-
	// but-unsent responses may queue before the reader stops consuming
	// requests (backpressure propagates to the client through TCP).
	// Default 64.
	Window int
	// MaxFrame caps the request frame body size (default
	// kvwire.MaxFrame).
	MaxFrame int
	// Logf, when set, receives serving-lifecycle log lines.
	Logf func(format string, args ...any)
	// Obs, when set, attaches the server's own instruments (per-opcode
	// latency, window occupancy, connection churn, error taxonomy) to the
	// registry and routes healer decisions through its event ring. Keep
	// it distinct from the deployment's registry (repro.Config.Metrics):
	// OpMetrics responses merge the two, so sharing one would double-
	// count. Nil (the default) leaves the serving path uninstrumented —
	// it then never reads the wall clock on instrumentation's behalf.
	Obs *obs.Registry
}

// Server serves one kv.Store over any number of listeners.
type Server struct {
	store    *kv.Store
	db       repro.DB
	admin    repro.Admin // nil when the deployment exposes no Admin
	window   int
	maxFrame int
	logf     func(string, ...any)
	obs      *serverObs // nil when uninstrumented

	mu       sync.Mutex
	lns      map[net.Listener]struct{}
	conns    map[net.Conn]struct{}
	draining bool

	connWg sync.WaitGroup
	healWg sync.WaitGroup
	healCh chan struct{}
	done   chan struct{}

	ops       atomic.Uint64
	retries   atomic.Uint64
	reopens   atomic.Uint64
	badFrames atomic.Uint64
}

// New builds a Server over store and starts its healer loop. The
// deployment behind the store is probed for the repro.Admin surface;
// with it, the healer can drive a manual failover when no autopilot is
// configured.
func New(store *kv.Store, cfg Config) *Server {
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = kvwire.MaxFrame
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		store:    store,
		db:       store.DB(),
		window:   cfg.Window,
		maxFrame: cfg.MaxFrame,
		logf:     cfg.Logf,
		obs:      newServerObs(cfg.Obs),
		lns:      make(map[net.Listener]struct{}),
		conns:    make(map[net.Conn]struct{}),
		healCh:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	s.admin, _ = s.db.(repro.Admin)
	s.healWg.Add(1)
	go s.healLoop()
	return s
}

// Serve accepts connections on l until the server drains or the
// listener fails. It blocks; run one goroutine per listener.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return errors.New("kvserver: server is draining")
	}
	s.lns[l] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			delete(s.lns, l)
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWg.Add(1)
		s.mu.Unlock()
		s.obs.connOpened()
		go s.handleConn(c)
	}
}

// Shutdown drains the server: stop accepting, unblock every reader,
// finish writing the responses already owed, close the sockets. It
// returns once every connection has drained or ctx expires (remaining
// connections are then closed hard).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for l := range s.lns {
		l.Close()
	}
	// Wake blocked readers; requests already parsed keep flowing to the
	// writers, new ones are not read.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.connWg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-drained
	}
	close(s.done)
	s.healWg.Wait()
	return err
}

// Close is an immediate Shutdown.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return err
}

// Stats snapshots the serving counters (the payload of an OpStats
// request).
func (s *Server) Stats() kvwire.Stats {
	s.mu.Lock()
	conns := len(s.conns)
	draining := s.draining
	s.mu.Unlock()
	st := kvwire.Stats{
		Keys:      s.store.Len(),
		Committed: s.db.Committed(),
		Conns:     conns,
		Ops:       s.ops.Load(),
		Retries:   s.retries.Load(),
		Reopens:   s.reopens.Load(),
		BadFrames: s.badFrames.Load(),
		Draining:  draining,
		Shards:    s.db.Shards(),
	}
	// The placement epoch sits on the Admin surface; every facade the
	// server fronts carries it, but the DB interface alone is enough to
	// serve, so probe instead of widening the server's dependency.
	if pe, ok := s.db.(interface{ PlacementEpoch() uint64 }); ok {
		st.PlacementEpoch = pe.PlacementEpoch()
	}
	return st
}

// Metrics merges the served deployment's metrics snapshot with the
// server's own registry (the payload of an OpMetrics request and the
// source of the Prometheus text endpoint). Empty when neither layer is
// instrumented.
func (s *Server) Metrics() obs.Snapshot {
	snap := s.db.Metrics()
	if s.obs != nil {
		snap.Merge(s.obs.reg.Snapshot())
	}
	return snap
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// handleConn runs one connection: a reader that parses and executes
// requests in arrival order, and a writer that flushes the bounded
// response queue. No other goroutines ever exist for the connection.
func (s *Server) handleConn(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.obs.connClosed()
		s.connWg.Done()
	}()

	out := make(chan []byte, s.window)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(c, 16<<10)
		var werr error
		for b := range out {
			if werr == nil {
				_, werr = bw.Write(b)
				// Flush only when the queue is empty: pipelined bursts
				// coalesce into one syscall.
				if werr == nil && len(out) == 0 {
					werr = bw.Flush()
				}
			}
			kvwire.PutBuf(b)
		}
		if werr == nil {
			bw.Flush()
		}
	}()

	br := bufio.NewReaderSize(c, 16<<10)
	buf := kvwire.GetBuf()
	var req kvwire.Request
	var sess session
	for {
		if s.isDraining() {
			break
		}
		var err error
		buf, err = kvwire.ReadFrame(br, buf, s.maxFrame)
		if err != nil {
			if errors.Is(err, kvwire.ErrFrame) {
				s.badFrames.Add(1)
				if s.obs != nil {
					s.obs.bad.Inc()
				}
				out <- kvwire.AppendMsg(kvwire.GetBuf(), kvwire.StatusBad, err.Error())
			}
			break
		}
		var start time.Time
		if s.obs != nil {
			start = time.Now()
		}
		resp, fatal := s.execute(buf, &req, &sess)
		if s.obs != nil {
			// Queue depth before this response enqueues: the occupancy the
			// request found, 0..window-1.
			s.obs.observeOp(req.Op, time.Since(start), len(out))
		}
		out <- resp
		if fatal {
			break
		}
	}
	kvwire.PutBuf(buf)
	close(out)
	<-writerDone
}

// errScanTruncated stops a scan whose response frame is about to
// outgrow the protocol limit; the entries already staged are delivered.
var errScanTruncated = errors.New("kvserver: scan response at frame limit")

// session is the per-connection read-consistency state, owned by the
// connection's reader goroutine: the commit token captured after the
// connection's last mutation. A read carrying its own token uses that
// (client-merged session state wins); one carrying a consistency block
// without a token falls back to this floor, giving single-connection
// clients read-your-writes with no client-side bookkeeping.
type session struct {
	tok repro.Token
}

// readOpts assembles the facade ReadOpts for one GET/SCAN request.
func (sess *session) readOpts(req *kvwire.Request) repro.ReadOpts {
	opts := repro.ReadOpts{Mode: repro.ReadMode(req.Mode), Bound: req.Bound}
	if len(req.Token) > 0 {
		opts.Token = repro.Token(req.Token)
	} else {
		opts.Token = sess.tok
	}
	return opts
}

// wrote refreshes the session floor after a successful mutation and
// seals the response carrying it.
func (s *Server) wrote(sess *session) []byte {
	sess.tok = s.db.Token(sess.tok)
	return kvwire.AppendOKToken(kvwire.GetBuf(), sess.tok)
}

// execute runs one decoded request against the store and encodes the
// response into a pooled buffer. fatal reports that the connection must
// close after the response (malformed frame).
func (s *Server) execute(frame []byte, req *kvwire.Request, sess *session) (resp []byte, fatal bool) {
	s.ops.Add(1)
	if err := kvwire.ParseRequest(frame, req); err != nil {
		s.badFrames.Add(1)
		if s.obs != nil {
			s.obs.bad.Inc()
		}
		return kvwire.AppendMsg(kvwire.GetBuf(), kvwire.StatusBad, err.Error()), true
	}
	switch req.Op {
	case kvwire.OpPut:
		if err := s.store.Put(req.Key, req.Val); err != nil {
			return s.errResp(err), false
		}
		return s.wrote(sess), false

	case kvwire.OpGet:
		buf := kvwire.BeginFrame(kvwire.GetBuf(), kvwire.StatusOK)
		var (
			out []byte
			err error
		)
		if req.Mode == kvwire.ModePrimary {
			out, err = s.store.GetAppend(req.Key, buf)
		} else {
			out, _, err = s.store.GetAppendAt(req.Key, buf, sess.readOpts(req))
		}
		if err != nil {
			kvwire.PutBuf(out)
			return s.errResp(err), false
		}
		return kvwire.EndFrame(out), false

	case kvwire.OpDelete:
		if err := s.store.Delete(req.Key); err != nil {
			return s.errResp(err), false
		}
		return s.wrote(sess), false

	case kvwire.OpScan:
		buf, countOff := kvwire.BeginScanResponse(kvwire.GetBuf())
		n := 0
		entry := func(k, v []byte) error {
			if len(buf)+len(k)+len(v)+6 > s.maxFrame {
				return errScanTruncated
			}
			buf = kvwire.AppendScanEntry(buf, k, v)
			n++
			return nil
		}
		var err error
		if req.Mode == kvwire.ModePrimary {
			_, err = s.store.Scan(req.Key, req.Limit, entry)
		} else {
			_, _, err = s.store.ScanAt(req.Key, req.Limit, sess.readOpts(req), entry)
		}
		if err != nil && !errors.Is(err, errScanTruncated) {
			kvwire.PutBuf(buf)
			return s.errResp(err), false
		}
		return kvwire.FinishScanResponse(buf, countOff, n), false

	case kvwire.OpTxn:
		if err := s.executeTxn(req.Ops); err != nil {
			return s.errResp(err), false
		}
		return s.wrote(sess), false

	case kvwire.OpStats:
		data, err := json.Marshal(s.Stats())
		if err != nil {
			return s.errResp(err), false
		}
		buf := kvwire.BeginFrame(kvwire.GetBuf(), kvwire.StatusOK)
		buf = append(buf, data...)
		return kvwire.EndFrame(buf), false

	case kvwire.OpPing:
		return kvwire.AppendEmpty(kvwire.GetBuf(), kvwire.StatusOK), false

	case kvwire.OpMetrics:
		data, err := json.Marshal(s.Metrics())
		if err != nil {
			return s.errResp(err), false
		}
		buf := kvwire.BeginFrame(kvwire.GetBuf(), kvwire.StatusOK)
		buf = append(buf, data...)
		return kvwire.EndFrame(buf), false
	}
	// Unreachable: ParseRequest rejects unknown opcodes.
	return kvwire.AppendMsg(kvwire.GetBuf(), kvwire.StatusBad, "unhandled opcode"), true
}

// executeTxn applies one wire transaction through the store's multi-key
// commit path.
func (s *Server) executeTxn(ops []kvwire.Op) error {
	if len(ops) == 0 {
		return nil
	}
	txn, err := s.store.Begin()
	if err != nil {
		return err
	}
	for _, op := range ops {
		var err error
		if op.Kind == kvwire.TxnPut {
			err = txn.Put(op.Key, op.Val)
		} else {
			err = txn.Delete(op.Key)
		}
		if err != nil {
			txn.Abort()
			return err
		}
	}
	return txn.Commit()
}

// errResp maps a store or deployment error onto the wire taxonomy.
func (s *Server) errResp(err error) []byte {
	switch {
	case errors.Is(err, kv.ErrNotFound):
		if s.obs != nil {
			s.obs.notFound.Inc()
		}
		return kvwire.AppendEmpty(kvwire.GetBuf(), kvwire.StatusNotFound)
	case errors.Is(err, kv.ErrBroken), errors.Is(err, repro.ErrCrashed), errors.Is(err, repro.ErrLeaseExpired):
		// The serving deployment crashed under the store (or this node
		// was deposed): retryable. Kick the healer; the client backs
		// off and retries against the same address.
		s.retries.Add(1)
		if s.obs != nil {
			s.obs.retry.Inc()
		}
		s.triggerHeal()
		return kvwire.AppendMsg(kvwire.GetBuf(), kvwire.StatusRetry, "failing over; retry")
	case errors.Is(err, repro.ErrSafetyUnavailable):
		if s.obs != nil {
			s.obs.degraded.Inc()
		}
		return kvwire.AppendMsg(kvwire.GetBuf(), kvwire.StatusDegraded, err.Error())
	default:
		if s.obs != nil {
			s.obs.terminal.Inc()
		}
		return kvwire.AppendMsg(kvwire.GetBuf(), kvwire.StatusErr, err.Error())
	}
}

// triggerHeal nudges the healer loop; triggers coalesce.
func (s *Server) triggerHeal() {
	select {
	case s.healCh <- struct{}{}:
	default:
	}
}

// healLoop re-Opens the store after a crash: every retryable error
// observed on the serving path lands here, and the loop keeps trying —
// with exponential backoff — until the deployment admits transactions
// again and kv.Store.Reopen rebuilds the index from the survivor's
// bytes. With an autopilot, the Reopen admission probe itself triggers
// the unattended promotion; without one, the healer drives
// Admin.Failover and a background RepairAsync itself.
func (s *Server) healLoop() {
	defer s.healWg.Done()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		select {
		case <-s.done:
			return
		case <-s.healCh:
		}
		backoff := healBackoffBase
		for attempt := 1; ; attempt++ {
			select {
			case <-s.done:
				return
			default:
			}
			if s.tryHeal() {
				s.obs.emit(obs.EventHealed, 0, uint64(attempt), 0)
				break
			}
			var sleep time.Duration
			sleep, backoff = nextBackoff(backoff, rng)
			// The retry decision lands in the event ring: attempt ordinal
			// in A, the jittered backoff (ns) in B.
			s.obs.emit(obs.EventHealRetry, 0, uint64(attempt), uint64(sleep))
			time.Sleep(sleep)
		}
	}
}

// The heal retry delay doubles from healBackoffBase and is capped at
// healBackoffCap, so a long outage (say, a quorum wait) never pushes the
// retry period past the point where recovery detection feels instant.
const (
	healBackoffBase = 500 * time.Microsecond
	healBackoffCap  = 20 * time.Millisecond
)

// nextBackoff returns the jittered delay to sleep now and the doubled,
// capped backoff to carry into the next round. The ±25% jitter keeps a
// fleet of healers (or a healer racing the autopilot's own probes) from
// retrying in lockstep against a deployment that is mid-failover.
func nextBackoff(cur time.Duration, rng *rand.Rand) (sleep, next time.Duration) {
	if cur < healBackoffBase {
		cur = healBackoffBase
	}
	if cur > healBackoffCap {
		cur = healBackoffCap
	}
	spread := int64(cur / 2)
	sleep = cur - cur/4 + time.Duration(rng.Int63n(spread+1))
	next = cur * 2
	if next > healBackoffCap {
		next = healBackoffCap
	}
	return sleep, next
}

// tryHeal attempts one heal round. Reports whether the store serves
// again.
func (s *Server) tryHeal() bool {
	err := s.store.Reopen()
	if errors.Is(err, repro.ErrCrashed) && s.admin != nil && !s.admin.AutopilotEnabled() {
		// No autopilot to promote a survivor: do it ourselves, then
		// heal the keyspace back to full redundancy in the background.
		if ferr := s.admin.Failover(); ferr != nil {
			return false
		}
		if err = s.store.Reopen(); err == nil {
			if rerr := s.admin.RepairAsync(); rerr != nil && !errors.Is(rerr, repro.ErrNotRepairable) {
				s.logf("kvserver: post-failover repair: %v", rerr)
			}
		}
	}
	if err != nil {
		return false
	}
	s.reopens.Add(1)
	if s.obs != nil {
		s.obs.reopenCnt.Inc()
	}
	s.logf("kvserver: store reopened on the promoted survivor (%d live keys)", s.store.Len())
	return true
}

// String names the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("kvserver(window=%d)", s.window)
}
