package kvserver

import (
	"fmt"
	"net"
	"testing"

	"repro"
	"repro/internal/obs"
	"repro/kv"
	"repro/kvclient"
)

// TestMetricsOverWire is the end-to-end scrape contract: an instrumented
// server (deployment registry + serving-tier registry) answers the
// METRICS opcode with one merged snapshot — per-opcode latency
// histograms with real counts, the error taxonomy, connection churn, and
// the replication tier's instruments all flow back through kvclient.
func TestMetricsOverWire(t *testing.T) {
	db, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  4 << 20,
		Backups: 2,
		Safety:  repro.QuorumSafe,
		Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, Config{Logf: t.Logf, Obs: obs.NewRegistry()})
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	cl := kvclient.Dial(l.Addr().String(), kvclient.Options{Conns: 2})
	defer cl.Close()

	const puts = 50
	for i := 0; i < puts; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < puts; i++ {
		if _, err := cl.Get([]byte(fmt.Sprintf("key%04d", i))); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if _, err := cl.Get([]byte("never-written")); err == nil {
		t.Fatal("missing key found")
	}

	m, err := cl.Metrics()
	if err != nil {
		t.Fatalf("metrics scrape: %v", err)
	}
	if m.Empty() {
		t.Fatal("instrumented server returned an empty snapshot")
	}
	if h := m.Hist(MetricOpLatency + "put.latency"); h.Count < puts {
		t.Errorf("put latency observations = %d, want >= %d", h.Count, puts)
	} else if h.Percentile(0.99) <= 0 {
		t.Errorf("put p99 = %v, want > 0", h.Percentile(0.99))
	}
	if h := m.Hist(MetricOpLatency + "get.latency"); h.Count < puts {
		t.Errorf("get latency observations = %d, want >= %d", h.Count, puts)
	}
	if got := m.Counter(MetricErrNotFound); got < 1 {
		t.Errorf("server.err.notfound = %d, want >= 1", got)
	}
	if got := m.Counter("repl.commit.txns"); got == 0 {
		t.Error("deployment registry missing from the merged snapshot")
	}
	if got := m.Counter(MetricConnsOpened); got < 2 {
		t.Errorf("server.conns.opened = %d, want >= 2", got)
	}

	// The scrape itself is an op: a second snapshot sees the first.
	m2, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if h := m2.Hist(MetricOpLatency + "metrics.latency"); h.Count < 1 {
		t.Errorf("metrics-op latency observations = %d, want >= 1", h.Count)
	}
}

// TestMetricsUninstrumented: a server with no registry attached (the
// default) answers METRICS with the empty snapshot — the opcode is part
// of the protocol whether or not observability is on, and an
// uninstrumented deployment stays exactly the pre-observability build.
func TestMetricsUninstrumented(t *testing.T) {
	srv, _, addr := serve(t, repro.Config{Backups: 1})
	defer srv.Close()

	cl := kvclient.Dial(addr, kvclient.Options{Conns: 1})
	defer cl.Close()
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics()
	if err != nil {
		t.Fatalf("metrics scrape: %v", err)
	}
	if !m.Empty() {
		t.Fatalf("uninstrumented server reported instruments: %v", m.Names())
	}
}
