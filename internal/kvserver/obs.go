package kvserver

import (
	"time"

	"repro/internal/kvwire"
	"repro/internal/obs"
)

// Metric names owned by the serving tier. Server latencies are host wall
// time (real sockets, real syscalls), unlike the replication tier's
// simulated-time histograms; the two never share a histogram.
const (
	// MetricOpLatency is the per-opcode latency prefix; the opcode name
	// ("put", "get", ...) completes it. Wall ns from parse to sealed
	// response.
	MetricOpLatency = "server.op."
	// MetricWindowOccupancy samples the per-connection response queue
	// depth at each request (ns-encoded count, like repl.batch.occupancy).
	MetricWindowOccupancy = "server.window.occupancy"
	// MetricConnsOpened / MetricConnsClosed count connection churn.
	MetricConnsOpened = "server.conns.opened"
	MetricConnsClosed = "server.conns.closed"
	// Error-taxonomy counters: one per non-OK wire status class.
	MetricErrNotFound = "server.err.notfound"
	MetricErrRetry    = "server.err.retry"
	MetricErrDegraded = "server.err.degraded"
	MetricErrTerminal = "server.err.terminal"
	MetricErrBad      = "server.err.bad"
	// MetricReopens counts successful heals (failover + Reopen).
	MetricReopens = "server.reopens"
)

// opNames maps wire opcodes to their metric-name component. Index 0 is
// unused (opcodes start at 1).
var opNames = [...]string{
	kvwire.OpPut:     "put",
	kvwire.OpGet:     "get",
	kvwire.OpDelete:  "delete",
	kvwire.OpScan:    "scan",
	kvwire.OpTxn:     "txn",
	kvwire.OpStats:   "stats",
	kvwire.OpPing:    "ping",
	kvwire.OpMetrics: "metrics",
}

// serverObs is the server's attached instrument set; a nil *serverObs
// means uninstrumented, and every method no-ops — the serving path then
// never reads the wall clock on the instrumentation's behalf.
type serverObs struct {
	reg       *obs.Registry
	opLat     [len(opNames)]*obs.Hist
	badOpLat  *obs.Hist // malformed frames have no decodable opcode
	window    *obs.Hist
	opened    *obs.Counter
	closed    *obs.Counter
	notFound  *obs.Counter
	retry     *obs.Counter
	degraded  *obs.Counter
	terminal  *obs.Counter
	bad       *obs.Counter
	reopenCnt *obs.Counter
}

func newServerObs(reg *obs.Registry) *serverObs {
	if reg == nil {
		return nil
	}
	o := &serverObs{
		reg:       reg,
		badOpLat:  reg.Hist(MetricOpLatency + "bad.latency"),
		window:    reg.Hist(MetricWindowOccupancy),
		opened:    reg.Counter(MetricConnsOpened),
		closed:    reg.Counter(MetricConnsClosed),
		notFound:  reg.Counter(MetricErrNotFound),
		retry:     reg.Counter(MetricErrRetry),
		degraded:  reg.Counter(MetricErrDegraded),
		terminal:  reg.Counter(MetricErrTerminal),
		bad:       reg.Counter(MetricErrBad),
		reopenCnt: reg.Counter(MetricReopens),
	}
	for op, name := range opNames {
		if name != "" {
			o.opLat[op] = reg.Hist(MetricOpLatency + name + ".latency")
		}
	}
	return o
}

// observeOp records one executed request: latency under its opcode's
// histogram (the bad-frame histogram when the opcode never decoded) and
// the response-queue depth the request saw.
func (o *serverObs) observeOp(op byte, d time.Duration, queued int) {
	if o == nil {
		return
	}
	h := o.badOpLat
	if int(op) < len(o.opLat) && o.opLat[op] != nil {
		h = o.opLat[op]
	}
	h.Record(d)
	o.window.Record(time.Duration(queued))
}

func (o *serverObs) connOpened() {
	if o != nil {
		o.opened.Inc()
	}
}

func (o *serverObs) connClosed() {
	if o != nil {
		o.closed.Inc()
	}
}

// emit lands one serving-tier event in the ring (host wall time domain).
func (o *serverObs) emit(kind string, node int, a, b uint64) {
	if o != nil {
		o.reg.Emit(kind, time.Now().UnixNano(), node, a, b)
	}
}
