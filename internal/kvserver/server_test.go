package kvserver

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/kvwire"
	"repro/kv"
	"repro/kvclient"
)

// serve builds a deployment, a store, a Server and a live listener.
func serve(t *testing.T, cfg repro.Config) (*Server, repro.Admin, string) {
	t.Helper()
	if cfg.Version == 0 {
		cfg.Version = repro.V3InlineLog
	}
	if cfg.Backup == 0 {
		cfg.Backup = repro.ActiveBackup
	}
	if cfg.DBSize == 0 {
		cfg.DBSize = 4 << 20
	}
	var db repro.DB
	db, err := repro.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, Config{Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	admin, _ := db.(repro.Admin)
	return srv, admin, l.Addr().String()
}

// TestServerConcurrentClients is the end-to-end zero-loss contract over
// real sockets: concurrent clients stream versioned writes, the primary
// is crashed mid-load, the clients ride out the failover on retries,
// the server drains gracefully — and after a re-serve on a fresh
// listener every acknowledged put is readable at or after its acked
// version.
func TestServerConcurrentClients(t *testing.T) {
	// K=3 at quorum keeps the safety level through the loss of the
	// primary; the autopilot performs the promotion unattended.
	srv, admin, addr := serve(t, repro.Config{
		Backups: 3,
		Safety:  repro.QuorumSafe,
		Autopilot: repro.AutopilotConfig{
			HeartbeatPeriod: 500 * time.Microsecond,
			AutoFailover:    true,
		},
	})

	const (
		clients    = 12
		perClient  = 60 // keys per client, written twice (two versions)
		crashAfter = 200
	)
	var (
		acked    [clients * perClient]atomic.Int64 // newest acked version per key
		ackedOps atomic.Int64
		wg       sync.WaitGroup
	)
	for i := range acked {
		acked[i].Store(-1)
	}
	crashed := make(chan struct{})
	go func() {
		defer close(crashed)
		for ackedOps.Load() < crashAfter {
			time.Sleep(100 * time.Microsecond)
		}
		if err := admin.CrashPrimary(); err != nil {
			t.Errorf("crash injection: %v", err)
		}
	}()

	key := func(k int) []byte { return []byte(fmt.Sprintf("key%06d", k)) }
	val := func(k int, ver int64) []byte { return []byte(fmt.Sprintf("val-%d-ver%d", k, ver)) }
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := kvclient.Dial(addr, kvclient.Options{Conns: 2, RetryBudget: 30 * time.Second})
			defer cl.Close()
			for ver := int64(0); ver < 2; ver++ {
				for i := 0; i < perClient; i++ {
					k := c*perClient + i // disjoint ranges: one writer per key
					if err := cl.Put(key(k), val(k, ver)); err != nil {
						t.Errorf("client %d: put key %d ver %d: %v", c, k, ver, err)
						return
					}
					acked[k].Store(ver)
					ackedOps.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	<-crashed
	if srv.Stats().Reopens == 0 {
		t.Error("server never reopened the store (crash not observed?)")
	}

	// Graceful drain, then serve the same store on a fresh listener —
	// the restart a rolling deploy would do.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	srv2 := New(srv.store, Config{Logf: t.Logf})
	defer srv2.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l)

	audit := kvclient.Dial(l.Addr().String(), kvclient.Options{Conns: 2, RetryBudget: 30 * time.Second})
	defer audit.Close()
	for k := range acked {
		want := acked[k].Load()
		if want < 0 {
			continue
		}
		got, err := audit.Get(key(k))
		if err != nil {
			t.Errorf("acked key %d (ver %d) unreadable after drain+reconnect: %v", k, want, err)
			continue
		}
		if !bytes.Equal(got, val(k, want)) && !bytes.Equal(got, val(k, want+1)) {
			t.Errorf("acked key %d: read %q, want version >= %d", k, got, want)
		}
	}
}

// TestServerGarbageFrames throws malformed bytes at the listener —
// random junk, a huge declared length, truncated frames, an unknown
// opcode — and requires StatusBad + connection close for each, with a
// well-formed client still being served throughout.
func TestServerGarbageFrames(t *testing.T) {
	srv, _, addr := serve(t, repro.Config{Backups: 1})
	defer srv.Close()

	good := kvclient.Dial(addr, kvclient.Options{Conns: 1})
	defer good.Close()
	if err := good.Put([]byte("canary"), []byte("alive")); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"http", []byte("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")},
		{"zero-length", []byte{0, 0, 0, 0}},
		{"huge-length", []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}},
		{"unknown-opcode", kvwire.AppendEmpty(nil, 0x7f)},
		{"truncated-put", func() []byte {
			// Declares a 100-byte body, delivers 3, then closes.
			b := []byte{0, 0, 0, 100, byte(kvwire.OpPut), 0}
			return b
		}()},
		{"trailing-bytes", func() []byte {
			b := kvwire.AppendGet(nil, []byte("k"))
			b = append(b, 0xEE) // extra byte inside the declared body
			binary.BigEndian.PutUint32(b, uint32(len(b)-4))
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Write(tc.data); err != nil {
				t.Fatal(err)
			}
			c.SetReadDeadline(time.Now().Add(time.Second))
			// The server either answers StatusBad and closes, or (for a
			// declared-but-undelivered body) just waits; close our side
			// and expect no hang either way.
			buf := make([]byte, 0, 64)
			buf, err = kvwire.ReadFrame(c, buf, kvwire.MaxFrame)
			if err == nil {
				if buf[0] != kvwire.StatusBad {
					t.Fatalf("garbage answered with status %d, want StatusBad", buf[0])
				}
				// After StatusBad the server closes: the next read ends.
				if _, err := kvwire.ReadFrame(c, buf, kvwire.MaxFrame); err == nil {
					t.Fatal("connection still serving after StatusBad")
				}
			} else if !errors.Is(err, io.EOF) && !errors.Is(err, kvwire.ErrFrame) {
				// truncated-put: the server is still waiting for the
				// declared body; our deferred close unblocks it.
				var nerr net.Error
				if !errors.As(err, &nerr) || !nerr.Timeout() {
					t.Fatalf("unexpected read result: %v", err)
				}
			}
		})
	}

	// The well-formed client rode through all of it.
	v, err := good.Get([]byte("canary"))
	if err != nil || string(v) != "alive" {
		t.Fatalf("well-formed client disturbed by garbage peers: %q, %v", v, err)
	}
	if srv.Stats().BadFrames == 0 {
		t.Error("server counted no bad frames")
	}
}

// TestServerScanAndTxn exercises the remaining opcodes through the real
// client: a multi-key transaction lands atomically and Scan pages the
// keyspace back.
func TestServerScanAndTxn(t *testing.T) {
	srv, _, addr := serve(t, repro.Config{Backups: 1})
	defer srv.Close()
	cl := kvclient.Dial(addr, kvclient.Options{Conns: 1})
	defer cl.Close()

	ops := make([]kvclient.Op, 20)
	for i := range ops {
		ops[i] = kvclient.Op{Key: []byte(fmt.Sprintf("t%03d", i)), Val: []byte(fmt.Sprintf("v%03d", i))}
	}
	if err := cl.Txn(ops); err != nil {
		t.Fatalf("txn: %v", err)
	}
	entries, err := cl.Scan(nil, 100)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(entries) != 20 {
		t.Fatalf("scan returned %d entries, want 20", len(entries))
	}
	// Delete half through a txn, confirm.
	del := make([]kvclient.Op, 10)
	for i := range del {
		del[i] = kvclient.Op{Key: []byte(fmt.Sprintf("t%03d", i)), Delete: true}
	}
	if err := cl.Txn(del); err != nil {
		t.Fatalf("delete txn: %v", err)
	}
	if _, err := cl.Get([]byte("t000")); !errors.Is(err, kvclient.ErrNotFound) {
		t.Fatalf("deleted key Get = %v, want ErrNotFound", err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Keys != 10 {
		t.Fatalf("stats.Keys = %d, want 10", st.Keys)
	}
}

// TestServerShardedStats: a server fronting a sharded deployment reports
// the shard count and placement epoch over the wire, and an elastic grow
// + rebalance underneath advances the epoch without losing served keys.
func TestServerShardedStats(t *testing.T) {
	db, err := repro.NewSharded(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  4 << 20,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	store, err := kv.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, Config{Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	cl := kvclient.Dial(l.Addr().String(), kvclient.Options{Conns: 1})
	defer cl.Close()

	for i := 0; i < 50; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.PlacementEpoch != 1 {
		t.Fatalf("stats = shards %d epoch %d, want 2/1", st.Shards, st.PlacementEpoch)
	}

	if _, err := db.AddShards(2); err != nil {
		t.Fatal(err)
	}
	if err := db.Rebalance(); err != nil {
		t.Fatal(err)
	}
	st, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 {
		t.Fatalf("stats.Shards = %d after grow, want 4", st.Shards)
	}
	if st.PlacementEpoch < 2 {
		t.Fatalf("stats.PlacementEpoch = %d after rebalance, want > 1", st.PlacementEpoch)
	}
	for i := 0; i < 50; i++ {
		v, err := cl.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("key %d after rebalance: %q, %v", i, v, err)
		}
	}
}

// TestNextBackoff pins the healer's retry policy: exponential doubling
// from the base, a hard cap, and jitter bounded to ±25% of the current
// delay — never zero, never past 125% of the cap.
func TestNextBackoff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	// Doubling walk: base, 2x, 4x, ... until the cap, then flat.
	cur := healBackoffBase
	want := healBackoffBase
	for i := 0; i < 12; i++ {
		sleep, next := nextBackoff(cur, rng)
		lo, hi := want-want/4, want+want/2
		if sleep < lo || sleep > hi {
			t.Fatalf("round %d: sleep %v outside [%v, %v]", i, sleep, lo, hi)
		}
		want *= 2
		if want > healBackoffCap {
			want = healBackoffCap
		}
		if next != want {
			t.Fatalf("round %d: next backoff %v, want %v", i, next, want)
		}
		cur = next
	}
	if cur != healBackoffCap {
		t.Fatalf("walk never reached the cap: %v", cur)
	}

	// Out-of-range inputs clamp instead of exploding.
	if sleep, next := nextBackoff(0, rng); sleep <= 0 || next != 2*healBackoffBase {
		t.Fatalf("zero input: sleep=%v next=%v", sleep, next)
	}
	if _, next := nextBackoff(time.Hour, rng); next != healBackoffCap {
		t.Fatalf("huge input: next=%v, want cap %v", next, healBackoffCap)
	}

	// Jitter actually spreads: across many draws at the cap we should
	// see at least two distinct sleeps.
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		sleep, _ := nextBackoff(healBackoffCap, rng)
		seen[sleep] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitter produced a constant sleep: %v", seen)
	}
}
