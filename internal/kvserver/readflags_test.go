package kvserver

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro"
	"repro/kvclient"
)

// TestServerReplicaReads is the wire-level consistency contract: clients
// running each read mode against one server see their own writes held to
// the mode's guarantee, session commit tokens flow back on mutations, and
// a pre-extension client (no read mode) keeps working unchanged against
// the extended server.
func TestServerReplicaReads(t *testing.T) {
	srv, _, addr := serve(t, repro.Config{Backups: 3, Safety: repro.QuorumSafe})
	defer srv.Close()

	modes := []struct {
		name   string
		mode   byte
		strict bool // the mode guarantees read-your-writes
	}{
		{"ryw", kvclient.ReadYourWrites, true},
		{"quorum", kvclient.ReadQuorum, true},
		{"bounded", kvclient.ReadBounded, false},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			cl := kvclient.Dial(addr, kvclient.Options{Conns: 1, ReadMode: m.mode, StalenessBound: 1 << 20})
			defer cl.Close()

			for i := 0; i < 40; i++ {
				key := []byte(fmt.Sprintf("%s%04d", m.name, i))
				val := []byte(fmt.Sprintf("val-%s-%04d", m.name, i))
				if err := cl.Put(key, val); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
				got, err := cl.Get(key)
				if m.strict {
					// Read-your-writes over the wire: the token from the
					// Put response anchors the very next Get.
					if err != nil || !bytes.Equal(got, val) {
						t.Fatalf("get %d after put: %q, %v", i, got, err)
					}
				} else if err != nil && !errors.Is(err, kvclient.ErrNotFound) {
					// Bounded reads may serve a lagging (in-bound) view —
					// staleness is legal, errors are not.
					t.Fatalf("bounded get %d: %v", i, err)
				}
			}
			if len(cl.Token()) == 0 {
				t.Fatal("session token never flowed back on mutations")
			}

			// The session's scans see the session's writes too.
			if m.strict {
				entries, err := cl.Scan([]byte(m.name), 100)
				if err != nil {
					t.Fatalf("scan: %v", err)
				}
				n := 0
				for _, e := range entries {
					if bytes.HasPrefix(e.Key, []byte(m.name)) {
						n++
					}
				}
				if n != 40 {
					t.Fatalf("session scan saw %d of its 40 writes", n)
				}
			}
		})
	}

	// A classic client on the same server: no flags byte on its reads, no
	// token tracking, same answers.
	cl := kvclient.Dial(addr, kvclient.Options{Conns: 1})
	defer cl.Close()
	if err := cl.Put([]byte("classic"), []byte("works")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get([]byte("classic"))
	if err != nil || string(got) != "works" {
		t.Fatalf("classic client get: %q, %v", got, err)
	}
	if len(cl.Token()) != 0 {
		t.Fatal("primary-mode client tracked a token")
	}
	// And it reads keys the consistency-mode sessions wrote.
	if got, err := cl.Get([]byte("ryw0007")); err != nil || !bytes.Equal(got, []byte("val-ryw-0007")) {
		t.Fatalf("classic read of ryw write: %q, %v", got, err)
	}
}
