package transport

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/rio"
	"repro/internal/sim"
	"repro/internal/vista"
)

// localNode bundles the per-process simulation plumbing (clock, cache,
// accessor) the vista engines need; in the TCP deployment the simulated
// clock is bookkeeping only — real time governs the processes.
type localNode struct {
	acc *mem.Accessor
	rio *rio.Memory
}

func newLocalNode(space *mem.Space) *localNode {
	p := sim.Default()
	clk := &sim.Clock{}
	return &localNode{
		acc: mem.NewAccessor(&p, clk, cache.New(&p, clk), space),
		rio: rio.New(space),
	}
}

// PrimaryStore is a transaction store wired to a TCP replication sink; its
// Load also performs the initial transfer of database content to the
// backup (the in-process deployments do the same via Pair.Load).
type PrimaryStore struct {
	*vista.Store
	space *mem.Space
	sink  mem.IOSink
}

// NewPrimaryStore builds a transaction store whose doubled writes go to
// sink — for the TCP deployment, a *Primary. The store's region layout
// matches what NewBackup lays out for the same configuration.
func NewPrimaryStore(cfg vista.Config, sink mem.IOSink) (*PrimaryStore, error) {
	specs, err := vista.Layout(cfg)
	if err != nil {
		return nil, err
	}
	space := mem.NewSpace()
	if _, err := vista.PlaceRegions(space, specs, 8<<20); err != nil {
		return nil, err
	}
	node := newLocalNode(space)
	node.acc.IO = sink
	store, err := vista.Open(cfg, node.acc, node.rio)
	if err != nil {
		return nil, err
	}
	return &PrimaryStore{Store: store, space: space, sink: sink}, nil
}

// Load installs initial database content locally and ships it to the
// backup, keeping the mirror (when the version has one) in sync on both
// sides.
func (ps *PrimaryStore) Load(off int, data []byte) error {
	if err := ps.Store.Load(off, data); err != nil {
		return err
	}
	db := ps.space.ByName(vista.RegionDB)
	ps.sink.StoreIO(db.Base+uint64(off), data, mem.CatModified)
	if m := ps.space.ByName(vista.RegionMirror); m != nil {
		ps.sink.StoreIO(m.Base+uint64(off), data, mem.CatUndo)
	}
	return nil
}
