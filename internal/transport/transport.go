// Package transport carries the paper's passive write-through replication
// between two real OS processes over TCP, demonstrating that the engines'
// recovery protocols are not simulation artifacts: kill the primary
// process mid-stream and the backup process reconstructs the committed
// prefix from the bytes that actually arrived.
//
// The primary side implements mem.IOSink, so it slots in exactly where the
// modelled Memory Channel does: every doubled store becomes a Write frame;
// Fence flushes the socket buffer (the posted-write analogue — bytes not
// yet flushed when the primary dies are the 1-safe window). The backup
// side applies frames to its identically laid-out reliable memory and, on
// connection loss or heartbeat timeout, runs the engine's backup recovery.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/vista"
	"repro/internal/wire"
)

// LayoutChecksum fingerprints a region layout; both endpoints must agree
// before replicating by raw address.
func LayoutChecksum(cfg vista.Config) (uint64, error) {
	specs, err := vista.Layout(cfg)
	if err != nil {
		return 0, err
	}
	h := crc32.NewIEEE()
	for _, s := range specs {
		fmt.Fprintf(h, "%s/%d/%t/%t;", s.Name, s.Size, s.Sparse, s.Replicated)
	}
	return uint64(h.Sum32()), nil
}

// Primary is the sending end: a mem.IOSink that frames doubled stores onto
// a TCP connection.
//
// StoreIO and Fence are called from the (single-threaded) transaction
// path; Close may be called once afterwards. A background goroutine emits
// heartbeats so the backup's failure detector stays quiet across think
// time.
type Primary struct {
	mu     sync.Mutex
	conn   net.Conn
	w      *wire.Writer
	err    error
	failN  int64 // test hook: silently drop output after failN frames
	frames int64

	stopHeartbeat chan struct{}
	wg            sync.WaitGroup
}

var _ mem.IOSink = (*Primary)(nil)

// DialPrimary connects to a backup and performs the layout handshake.
func DialPrimary(addr string, cfg vista.Config, timeout time.Duration) (*Primary, error) {
	sum, err := LayoutChecksum(cfg)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial backup: %w", err)
	}
	p := &Primary{
		conn:          conn,
		w:             wire.NewWriter(conn),
		failN:         -1,
		stopHeartbeat: make(chan struct{}),
	}
	var hello [8]byte
	binary.LittleEndian.PutUint64(hello[:], sum)
	if err := p.w.Write(wire.Frame{Type: wire.FrameHello, Data: hello[:]}); err != nil {
		conn.Close()
		return nil, err
	}
	if err := p.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	p.wg.Add(1)
	go p.heartbeatLoop()
	return p, nil
}

func (p *Primary) heartbeatLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-p.stopHeartbeat:
			return
		case <-tick.C:
			p.mu.Lock()
			if p.err == nil && !p.dropping() {
				if err := p.w.Write(wire.Frame{Type: wire.FrameHeartbeat}); err == nil {
					p.err = p.w.Flush()
				} else {
					p.err = err
				}
			}
			p.mu.Unlock()
		}
	}
}

// flushThreshold bounds how much replication data may sit in the user-
// space buffer: it is the TCP deployment's analogue of the write-buffer
// drain, keeping the 1-safe window at a handful of transactions.
const flushThreshold = 4096

// StoreIO implements mem.IOSink: one doubled store becomes one frame.
func (p *Primary) StoreIO(addr uint64, src []byte, _ mem.Category) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames++
	if p.err != nil || p.dropping() {
		return
	}
	p.err = p.w.Write(wire.Frame{Type: wire.FrameWrite, Addr: addr, Data: src})
	if p.err == nil && p.w.Buffered() >= flushThreshold {
		p.err = p.w.Flush()
	}
}

// Fence implements mem.IOSink: flush the socket buffer. Bytes that never
// reached a fence can be lost with the process — the 1-safe window.
func (p *Primary) Fence() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil || p.dropping() {
		return
	}
	p.err = p.w.Flush()
}

// Err returns the first transport error, if any.
func (p *Primary) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// FailAfterFrames silently discards all output after n more frames — a
// deterministic stand-in for SIGKILL in failure-injection tests.
func (p *Primary) FailAfterFrames(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failN = p.frames + n
}

func (p *Primary) dropping() bool { return p.failN >= 0 && p.frames >= p.failN }

// Close announces an orderly shutdown and closes the connection.
func (p *Primary) Close() error {
	close(p.stopHeartbeat)
	p.wg.Wait()
	p.mu.Lock()
	if p.err == nil && !p.dropping() {
		if err := p.w.Write(wire.Frame{Type: wire.FrameBye}); err == nil {
			p.err = p.w.Flush()
		}
	}
	err := p.conn.Close()
	p.w.Release()
	p.mu.Unlock()
	return err
}

// Backup is the receiving end: it owns the backup node's reliable memory
// and applies incoming frames to it.
type Backup struct {
	cfg   vista.Config
	space *mem.Space

	// Timeout is the heartbeat failure-detector window (default 1s).
	Timeout time.Duration

	applied int64
}

// Backup session outcomes.
var (
	// ErrPrimaryDead reports that the session ended by failure (socket
	// error or heartbeat timeout) rather than an orderly Bye.
	ErrPrimaryDead = errors.New("transport: primary presumed dead")
	// ErrLayoutMismatch reports a handshake disagreement.
	ErrLayoutMismatch = errors.New("transport: layout checksum mismatch")
)

// NewBackup builds the receiving node: a fresh address space with the
// configuration's region layout.
func NewBackup(cfg vista.Config) (*Backup, error) {
	specs, err := vista.Layout(cfg)
	if err != nil {
		return nil, err
	}
	space := mem.NewSpace()
	if _, err := vista.PlaceRegions(space, specs, 8<<20); err != nil {
		return nil, err
	}
	return &Backup{cfg: cfg, space: space, Timeout: time.Second}, nil
}

// Space exposes the backup's address space (tests inspect it; Recover
// builds the takeover store from it).
func (b *Backup) Space() *mem.Space { return b.space }

// Applied returns the number of write frames applied.
func (b *Backup) Applied() int64 { return b.applied }

// Serve applies one replication session from conn until the primary says
// goodbye (returns nil) or is presumed dead (returns ErrPrimaryDead). The
// caller then typically invokes Recover.
func (b *Backup) Serve(conn net.Conn) error {
	r := wire.NewReader(conn)
	defer r.Release()

	if err := conn.SetReadDeadline(time.Now().Add(b.Timeout)); err != nil {
		return err
	}
	hello, err := r.Read()
	if err != nil || hello.Type != wire.FrameHello || len(hello.Data) != 8 {
		return fmt.Errorf("%w: bad hello (%v)", ErrPrimaryDead, err)
	}
	sum, err := LayoutChecksum(b.cfg)
	if err != nil {
		return err
	}
	if binary.LittleEndian.Uint64(hello.Data) != sum {
		return ErrLayoutMismatch
	}

	for {
		if err := conn.SetReadDeadline(time.Now().Add(b.Timeout)); err != nil {
			return err
		}
		f, err := r.Read()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrPrimaryDead, err)
		}
		switch f.Type {
		case wire.FrameWrite:
			if err := b.apply(f.Addr, f.Data); err != nil {
				return err
			}
		case wire.FrameHeartbeat:
			// failure detector reset only
		case wire.FrameBye:
			return nil
		default:
			return fmt.Errorf("transport: unexpected frame %d mid-session", f.Type)
		}
	}
}

func (b *Backup) apply(addr uint64, data []byte) error {
	reg := b.space.Lookup(addr, len(data))
	if reg == nil {
		return fmt.Errorf("transport: write [%#x,+%d) outside layout", addr, len(data))
	}
	reg.WriteRaw(int(addr-reg.Base), data)
	b.applied++
	return nil
}

// Recover runs the engine's backup recovery over the received bytes and
// returns a store serving the committed prefix.
func (b *Backup) Recover() (*vista.Store, error) {
	node := newLocalNode(b.space)
	return vista.Recover(b.cfg, node.acc, node.rio, vista.RecoverBackup)
}
