package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/tpc"
	"repro/internal/vista"
)

const testDB = 4 << 20

// session wires a primary store to a backup over a real localhost TCP
// connection and runs the backup's Serve loop in the background.
type session struct {
	store  *PrimaryStore
	sink   *Primary
	backup *Backup

	wg       sync.WaitGroup
	serveErr error
}

// startSession wires a primary to a backup Serve goroutine. The heartbeat
// timeout must be fixed before Serve starts reading it (the race detector
// flags a later mutation), so it is a parameter.
func startSession(t *testing.T, cfg vista.Config, timeout time.Duration) *session {
	t.Helper()
	backup, err := NewBackup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	backup.Timeout = timeout

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &session{backup: backup}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer ln.Close()
		conn, err := ln.Accept()
		if err != nil {
			s.serveErr = err
			return
		}
		defer conn.Close()
		s.serveErr = backup.Serve(conn)
	}()

	sink, err := DialPrimary(ln.Addr().String(), cfg, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewPrimaryStore(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	s.sink = sink
	s.store = store
	return s
}

func (s *session) wait() { s.wg.Wait() }

func runDC(t *testing.T, store *PrimaryStore, txns int64) {
	t.Helper()
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(store.Load); err != nil {
		t.Fatal(err)
	}
	r := tpc.NewRand(21)
	for i := int64(0); i < txns; i++ {
		tx, err := store.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Txn(r, tx, i); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOrderlyShutdownReplicatesEverything(t *testing.T) {
	cfg := vista.Config{Version: vista.V3InlineLog, DBSize: testDB}
	s := startSession(t, cfg, 2*time.Second)
	runDC(t, s.store, 300)
	if err := s.sink.Close(); err != nil {
		t.Fatal(err)
	}
	s.wait()
	if s.serveErr != nil {
		t.Fatalf("serve: %v", s.serveErr)
	}

	recovered, err := s.backup.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := recovered.Committed(); got != 300 {
		t.Fatalf("backup recovered %d commits, want 300", got)
	}
	want := make([]byte, testDB)
	got := make([]byte, testDB)
	s.store.ReadRaw(0, want)
	recovered.ReadRaw(0, got)
	if !bytes.Equal(got, want) {
		t.Fatal("backup database differs from primary after orderly shutdown")
	}
}

func TestHardCrashRecoversCommittedPrefix(t *testing.T) {
	for _, v := range []vista.Version{vista.V0Vista, vista.V1MirrorCopy, vista.V2MirrorDiff, vista.V3InlineLog} {
		t.Run(v.String(), func(t *testing.T) {
			cfg := vista.Config{Version: v, DBSize: testDB}
			s := startSession(t, cfg, 500*time.Millisecond)
			runDC(t, s.store, 200)
			// Die silently mid-stream: some frames of the next
			// transactions never leave the process.
			s.sink.FailAfterFrames(7)
			runDC2 := func() {
				w, _ := tpc.NewDebitCredit(testDB)
				r := tpc.NewRand(99)
				for i := int64(0); i < 20; i++ {
					tx, err := s.store.Begin()
					if err != nil {
						t.Fatal(err)
					}
					if err := w.Txn(r, tx, i); err != nil {
						t.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
				}
			}
			runDC2()
			s.wait()
			if !errors.Is(s.serveErr, ErrPrimaryDead) {
				t.Fatalf("backup verdict: %v, want ErrPrimaryDead", s.serveErr)
			}
			recovered, err := s.backup.Recover()
			if err != nil {
				t.Fatal(err)
			}
			// At least the settled prefix survives; the tail within the
			// unflushed socket buffer is the (real) 1-safe window.
			if got := recovered.Committed(); got < 175 || got > 220 {
				t.Fatalf("recovered %d commits, want roughly 200", got)
			}
			s.sink.Close()
		})
	}
}

func TestLayoutMismatchRejected(t *testing.T) {
	good := vista.Config{Version: vista.V3InlineLog, DBSize: testDB}
	bad := vista.Config{Version: vista.V3InlineLog, DBSize: testDB * 2}

	backup, err := NewBackup(good)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- backup.Serve(conn)
	}()
	sink, err := DialPrimary(ln.Addr().String(), bad, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := <-done; !errors.Is(err, ErrLayoutMismatch) {
		t.Fatalf("mismatched layouts accepted: %v", err)
	}
}

func TestLayoutChecksumDistinguishesConfigs(t *testing.T) {
	a, err := LayoutChecksum(vista.Config{Version: vista.V3InlineLog, DBSize: testDB})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LayoutChecksum(vista.Config{Version: vista.V1MirrorCopy, DBSize: testDB})
	if err != nil {
		t.Fatal(err)
	}
	c, err := LayoutChecksum(vista.Config{Version: vista.V3InlineLog, DBSize: testDB * 2})
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a == c {
		t.Fatal("layout checksums collide across configurations")
	}
}

func TestHeartbeatTimeoutDetectsSilentPeer(t *testing.T) {
	cfg := vista.Config{Version: vista.V3InlineLog, DBSize: testDB}
	s := startSession(t, cfg, 300*time.Millisecond)
	runDC(t, s.store, 10)
	// Silence everything, including heartbeats.
	s.sink.FailAfterFrames(0)
	start := time.Now()
	s.wait()
	if !errors.Is(s.serveErr, ErrPrimaryDead) {
		t.Fatalf("verdict %v", s.serveErr)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("failure detection took %v", elapsed)
	}
	s.sink.Close()
}
