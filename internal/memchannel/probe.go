package memchannel

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// BandwidthPoint is one sample of the paper's Figure 1: effective
// process-to-process bandwidth when the store pattern produces packets of
// the given size.
type BandwidthPoint struct {
	PacketBytes int
	MBPerSec    float64
}

// MeasureBandwidth reproduces the paper's stride test (Section 2.3): large
// regions are written with varying strides, so a stride of one fills whole
// 32-byte blocks (32-byte packets), a stride of two writes every other
// 8-byte word (16-byte packets), and so on. It returns one point per
// requested packet size; sizes must divide blockSize and be multiples of 8.
func MeasureBandwidth(p *sim.Params, totalBytes int, packetSizes []int) []BandwidthPoint {
	out := make([]BandwidthPoint, 0, len(packetSizes))
	for _, size := range packetSizes {
		out = append(out, BandwidthPoint{
			PacketBytes: size,
			MBPerSec:    measureOne(p, totalBytes, size),
		})
	}
	return out
}

// measureOne writes enough strided data to send totalBytes of payload and
// returns payload MB per simulated second.
func measureOne(p *sim.Params, totalBytes, packetBytes int) float64 {
	var clk sim.Clock
	link := sim.NewLink(p)
	node := NewNode(p, &clk, link)

	// A window large enough that the stride pattern never revisits a
	// block within the run; revisits would coalesce across iterations
	// and distort packet sizes.
	const window = 1 << 20
	region := mem.NewRegion("probe", 0, mem.NewDense(window))
	if err := node.Map(Mapping{SrcBase: 0, Size: window, Dst: region}); err != nil {
		panic(err)
	}

	storeSize := 8
	if packetBytes < storeSize {
		storeSize = packetBytes
	}
	storesPerBlock := packetBytes / storeSize
	payload := make([]byte, storeSize)
	sent := 0
	addr := uint64(0)
	for sent < totalBytes {
		// Write storesPerBlock contiguous words at the head of a block,
		// then skip to the next block: exactly the paper's strided
		// store loop.
		for w := 0; w < storesPerBlock && sent < totalBytes; w++ {
			node.StoreIO(addr+uint64(storeSize*w), payload, mem.CatModified)
			sent += storeSize
		}
		addr += blockSize
		if addr+blockSize > window {
			addr = 0
		}
	}
	node.Fence()
	// Steady-state bandwidth is link-bound: the CPU issues stores far
	// faster than the SAN drains them, so elapsed time is the link drain
	// time.
	elapsed := link.Drained()
	if elapsed <= 0 {
		return 0
	}
	return float64(sent) / 1e6 / elapsed.Seconds()
}

// MeasureLatency returns the simulated one-way latency of a single 4-byte
// write on an otherwise idle network (paper: 3.3 microseconds).
func MeasureLatency(p *sim.Params) sim.Dur {
	var clk sim.Clock
	link := sim.NewLink(p)
	node := NewNode(p, &clk, link)
	region := mem.NewRegion("probe", 0, mem.NewDense(64))
	if err := node.Map(Mapping{SrcBase: 0, Size: 64, Dst: region}); err != nil {
		panic(err)
	}
	node.StoreIO(0, []byte{1, 2, 3, 4}, mem.CatModified)
	node.Fence()
	return sim.Dur(node.LastDelivered())
}
