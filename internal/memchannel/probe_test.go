package memchannel

import (
	"testing"

	"repro/internal/sim"
)

func TestMeasureBandwidthMatchesPaperFigure1(t *testing.T) {
	p := sim.Default()
	points := MeasureBandwidth(&p, 1<<20, []int{4, 8, 16, 32})
	want := []struct {
		size     int
		min, max float64
	}{
		{4, 13, 15},  // paper: ~14 MB/s
		{8, 24, 28},  // paper: ~26 MB/s
		{16, 45, 50}, // paper: ~48 MB/s
		{32, 78, 82}, // paper: 80 MB/s
	}
	for i, w := range want {
		got := points[i]
		if got.PacketBytes != w.size {
			t.Fatalf("point %d is %dB", i, got.PacketBytes)
		}
		if got.MBPerSec < w.min || got.MBPerSec > w.max {
			t.Errorf("%dB packets: %.1f MB/s, want [%v,%v]", w.size, got.MBPerSec, w.min, w.max)
		}
	}
	// Monotonic: larger packets, more bandwidth.
	for i := 1; i < len(points); i++ {
		if points[i].MBPerSec <= points[i-1].MBPerSec {
			t.Fatalf("bandwidth not monotonic: %+v", points)
		}
	}
}

func TestMeasureLatencyMatchesPaper(t *testing.T) {
	p := sim.Default()
	got := MeasureLatency(&p).Nanoseconds()
	if got < 3100 || got > 3500 {
		t.Fatalf("4-byte write latency %.0fns, want ~3300ns (paper: 3.3us)", got)
	}
}
