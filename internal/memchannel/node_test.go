package memchannel

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func newTestNode(t *testing.T, size int) (*Node, *mem.Region, *sim.Clock, *sim.Link) {
	t.Helper()
	p := sim.Default()
	clk := &sim.Clock{}
	link := sim.NewLink(&p)
	n := NewNode(&p, clk, link)
	remote := mem.NewRegion("remote", 0, mem.NewDense(size))
	if err := n.Map(Mapping{SrcBase: 0, Size: size, Dst: remote}); err != nil {
		t.Fatal(err)
	}
	return n, remote, clk, link
}

func TestContiguousStoresCoalesceToOnePacket(t *testing.T) {
	n, remote, _, link := newTestNode(t, 4096)
	// Four 8-byte stores filling one aligned 32-byte block: exactly one
	// full packet, emitted at the moment the block fills.
	for i := 0; i < 4; i++ {
		n.StoreIO(uint64(i*8), []byte{byte(i), 1, 2, 3, 4, 5, 6, 7}, mem.CatModified)
	}
	s := link.Stats()
	if s.Packets != 1 || s.SizeHist[32] != 1 {
		t.Fatalf("stats %+v, want one 32-byte packet", s)
	}
	got := make([]byte, 8)
	remote.ReadRaw(24, got)
	if got[0] != 3 {
		t.Fatalf("remote bytes wrong: %v", got)
	}
}

func TestScatteredStoresEmitOnPressure(t *testing.T) {
	n, _, _, link := newTestNode(t, 1<<20)
	p := sim.Default()
	// 7 scattered 4-byte stores: the 7th evicts the oldest buffer.
	for i := 0; i < 7; i++ {
		n.StoreIO(uint64(i*64), []byte{1, 2, 3, 4}, mem.CatModified)
	}
	s := link.Stats()
	if s.Packets != 1 || s.SizeHist[4] != 1 {
		t.Fatalf("stats %+v, want one 4-byte eviction", s)
	}
	_ = p
}

func TestFenceDrainsInAllocationOrder(t *testing.T) {
	n, remote, _, link := newTestNode(t, 4096)
	n.StoreIO(0, []byte{1}, mem.CatMeta)
	n.StoreIO(64, []byte{2}, mem.CatMeta)
	n.StoreIO(128, []byte{3}, mem.CatMeta)
	n.Fence()
	if got := link.Stats().Packets; got != 3 {
		t.Fatalf("fence emitted %d packets, want 3", got)
	}
	for i, off := range []int{0, 64, 128} {
		got := make([]byte, 1)
		remote.ReadRaw(off, got)
		if got[0] != byte(i+1) {
			t.Fatalf("byte at %d = %d", off, got[0])
		}
	}
	n.Fence() // idempotent on empty buffers
	if got := link.Stats().Packets; got != 3 {
		t.Fatalf("second fence emitted packets: %d", got)
	}
}

func TestWriteDoublingVisibleOnlyAfterEmission(t *testing.T) {
	n, remote, _, _ := newTestNode(t, 4096)
	n.StoreIO(100, []byte{42}, mem.CatModified)
	got := make([]byte, 1)
	remote.ReadRaw(100, got)
	if got[0] != 0 {
		t.Fatal("buffered store visible remotely before emission")
	}
	n.Fence()
	remote.ReadRaw(100, got)
	if got[0] != 42 {
		t.Fatal("fenced store not applied remotely")
	}
}

func TestCrashLosesBufferedKeepsEmitted(t *testing.T) {
	n, remote, _, _ := newTestNode(t, 4096)
	n.StoreIO(0, []byte{1}, mem.CatModified)
	n.Fence() // emitted: survives
	n.StoreIO(64, []byte{2}, mem.CatUndo)
	n.Crash() // buffered: lost (young buffer, no drain age reached)

	a := make([]byte, 1)
	b := make([]byte, 1)
	remote.ReadRaw(0, a)
	remote.ReadRaw(64, b)
	if a[0] != 1 {
		t.Fatal("emitted store lost at crash")
	}
	if b[0] != 0 {
		t.Fatal("buffered store survived crash")
	}
	if !n.Crashed() {
		t.Fatal("Crashed() false")
	}
	n.StoreIO(128, []byte{3}, mem.CatMeta) // silently dropped
	n.Fence()
	c := make([]byte, 1)
	remote.ReadRaw(128, c)
	if c[0] != 0 {
		t.Fatal("post-crash store applied")
	}
}

func TestCrashDeliversStaleBuffers(t *testing.T) {
	// A buffer older than DrainAge left the CPU before the crash: it
	// must survive (this keeps the 1-safe window at microseconds).
	n, remote, clk, _ := newTestNode(t, 4096)
	p := sim.Default()
	n.StoreIO(0, []byte{7}, mem.CatModified)
	clk.Advance(p.DrainAge * 2)
	n.Crash()
	got := make([]byte, 1)
	remote.ReadRaw(0, got)
	if got[0] != 7 {
		t.Fatal("stale buffer lost at crash")
	}
}

func TestDrainStaleOnActivity(t *testing.T) {
	n, remote, clk, _ := newTestNode(t, 4096)
	p := sim.Default()
	n.StoreIO(0, []byte{9}, mem.CatModified)
	clk.Advance(p.DrainAge + sim.Nanosecond)
	// Any later I/O activity retires the stale buffer first.
	n.StoreIO(512, []byte{1}, mem.CatModified)
	got := make([]byte, 1)
	remote.ReadRaw(0, got)
	if got[0] != 9 {
		t.Fatal("stale buffer not drained by subsequent activity")
	}
}

func TestIdleDrainsEverything(t *testing.T) {
	n, remote, _, _ := newTestNode(t, 4096)
	n.StoreIO(0, []byte{5}, mem.CatModified)
	n.Idle(sim.Microsecond)
	got := make([]byte, 1)
	remote.ReadRaw(0, got)
	if got[0] != 5 {
		t.Fatal("Idle did not drain")
	}
}

func TestCrashAfterPacketsFreezesMidStream(t *testing.T) {
	n, remote, _, _ := newTestNode(t, 1<<20)
	n.CrashAfterPackets(2)
	for i := 0; i < 10; i++ {
		n.StoreIO(uint64(i*64), []byte{byte(i + 1)}, mem.CatModified)
		n.Fence()
	}
	applied := 0
	for i := 0; i < 10; i++ {
		got := make([]byte, 1)
		remote.ReadRaw(i*64, got)
		if got[0] != 0 {
			applied++
		}
	}
	if applied != 2 {
		t.Fatalf("%d packets applied, want exactly 2", applied)
	}
	if !n.Crashed() {
		t.Fatal("injection did not mark the node crashed")
	}
}

func TestCategoryAccounting(t *testing.T) {
	n, _, _, _ := newTestNode(t, 4096)
	n.StoreIO(0, []byte{1, 2, 3, 4}, mem.CatModified)
	n.StoreIO(4, []byte{5, 6}, mem.CatUndo)
	n.StoreIO(4, []byte{7, 8}, mem.CatMeta) // overwrites the undo bytes in-buffer
	n.Fence()
	got := n.CategoryBytes()
	if got[mem.CatModified] != 4 {
		t.Fatalf("modified = %d", got[mem.CatModified])
	}
	// Overwritten-in-buffer bytes count once, under their final category
	// — wire-accurate accounting.
	if got[mem.CatUndo] != 0 || got[mem.CatMeta] != 2 {
		t.Fatalf("undo/meta = %d/%d, want 0/2", got[mem.CatUndo], got[mem.CatMeta])
	}
	if n.TotalBytes() != 6 {
		t.Fatalf("TotalBytes = %d", n.TotalBytes())
	}
	n.ResetStats()
	if n.TotalBytes() != 0 {
		t.Fatal("ResetStats kept bytes")
	}
}

func TestMappingValidation(t *testing.T) {
	p := sim.Default()
	clk := &sim.Clock{}
	n := NewNode(&p, clk, sim.NewLink(&p))
	r := mem.NewRegion("r", 0, mem.NewDense(128))
	if err := n.Map(Mapping{SrcBase: 0, Size: 256, Dst: r}); err == nil {
		t.Fatal("mapping overrunning destination accepted")
	}
	if err := n.Map(Mapping{SrcBase: 0, Size: 128, Dst: nil}); err == nil {
		t.Fatal("nil destination accepted")
	}
	if err := n.Map(Mapping{SrcBase: 0, Size: 128, Dst: r}); err != nil {
		t.Fatal(err)
	}
	if err := n.Map(Mapping{SrcBase: 64, Size: 64, Dst: r}); err == nil {
		t.Fatal("overlapping window accepted")
	}
}

func TestUnmappedIOStorePanics(t *testing.T) {
	n, _, _, _ := newTestNode(t, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped I/O store did not panic at emission")
		}
	}()
	n.StoreIO(1<<20, []byte{1}, mem.CatMeta)
	n.Fence()
}

// TestRandomStoresMatchShadow: arbitrary store sequences, once fenced,
// leave the remote region byte-identical to a simple shadow model.
func TestRandomStoresMatchShadow(t *testing.T) {
	const size = 1 << 14
	f := func(seed uint64) bool {
		n, remote, _, _ := newTestNode(t, size)
		r := rand.New(rand.NewPCG(seed, 3))
		shadow := make([]byte, size)
		for i := 0; i < 500; i++ {
			off := r.IntN(size - 16)
			ln := 1 + r.IntN(16)
			buf := make([]byte, ln)
			for j := range buf {
				buf[j] = byte(r.Uint32())
			}
			n.StoreIO(uint64(off), buf, mem.CatModified)
			copy(shadow[off:], buf)
		}
		n.Fence()
		got := make([]byte, size)
		remote.ReadRaw(0, got)
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRecording(t *testing.T) {
	n, _, clk, _ := newTestNode(t, 4096)
	tr := &sim.Trace{}
	n.SetTrace(tr)
	clk.Advance(100 * sim.Nanosecond)
	n.StoreIO(0, []byte{1}, mem.CatModified)
	n.Fence()
	if len(tr.Events) < 2 {
		t.Fatalf("trace has %d events", len(tr.Events))
	}
	if tr.Events[0].Kind != sim.EvCompute || tr.Events[0].Dur != 100*sim.Nanosecond {
		t.Fatalf("first event %+v, want 100ns compute", tr.Events[0])
	}
	if tr.Events[1].Kind != sim.EvPacket || tr.Events[1].Size != 1 {
		t.Fatalf("second event %+v, want 1-byte packet", tr.Events[1])
	}
}

func TestAddAndRemoveTargets(t *testing.T) {
	p := sim.Default()
	clk := &sim.Clock{}
	n := NewNode(&p, clk, sim.NewLink(&p))
	first := mem.NewRegion("first", 0, mem.NewDense(64))
	second := mem.NewRegion("second", 0, mem.NewDense(64))
	third := mem.NewRegion("third", 0, mem.NewDense(64))
	var downFirst, downSecond, downThird bool
	if err := n.Map(Mapping{SrcBase: 0, Size: 64, Dst: first, Down: &downFirst}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddTarget(0, Target{Dst: second, Down: &downSecond}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddTarget(0, Target{Dst: third, Down: &downThird}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddTarget(4096, Target{Dst: third}); err == nil {
		t.Fatal("AddTarget on an unmapped window must fail")
	}

	write := func(payload string) {
		n.StoreIO(0, []byte(payload), mem.CatModified)
		n.Fence()
	}
	read := func(r *mem.Region, l int) string {
		buf := make([]byte, l)
		r.ReadRaw(0, buf)
		return string(buf)
	}
	write("broadcast")
	for _, r := range []*mem.Region{first, second, third} {
		if got := read(r, 9); got != "broadcast" {
			t.Fatalf("%s received %q", r.Name, got)
		}
	}

	// Removing the inline receiver promotes a fanout receiver; removing a
	// fanout receiver detaches it. Neither disturbs the remaining one.
	n.RemoveTargets(&downFirst)
	n.RemoveTargets(&downSecond)
	write("survivors")
	if got := read(third, 9); got != "survivors" {
		t.Fatalf("remaining receiver got %q", got)
	}
	if got := read(first, 9); got != "broadcast" {
		t.Fatalf("removed inline receiver still written: %q", got)
	}
	if got := read(second, 9); got != "broadcast" {
		t.Fatalf("removed fanout receiver still written: %q", got)
	}

	// A window stripped of every receiver is permanently gated but still
	// accepts stores (and new targets later).
	n.RemoveTargets(&downThird)
	write("nobody...")
	if got := read(third, 9); got != "survivors" {
		t.Fatalf("fully-detached window still delivered: %q", got)
	}
	fourth := mem.NewRegion("fourth", 0, mem.NewDense(64))
	var downFourth bool
	if err := n.AddTarget(0, Target{Dst: fourth, Down: &downFourth}); err != nil {
		t.Fatal(err)
	}
	write("rejoined!")
	if got := read(fourth, 9); got != "rejoined!" {
		t.Fatalf("re-attached receiver got %q", got)
	}
}
