// Package memchannel models Compaq's Memory Channel II SAN as seen from one
// node: I/O-space mappings onto remote memory, the Alpha's six 32-byte
// coalescing write buffers, and packet emission onto a FIFO link whose
// occupancy depends strongly on packet size (paper Sections 2.3 and 8).
//
// State truth is preserved: a store into a mapped address really lands in
// the remote region's backing bytes once its packet is emitted. Stores
// still sitting in a write buffer when the node crashes are lost, which is
// exactly the paper's 1-safe vulnerability window.
package memchannel

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/sim"
)

// blockSize is the write-buffer/packet granule: the Alpha merges contiguous
// stores within an aligned 32-byte block and the Memory Channel interface
// converts one PCI write into one packet of at most this size.
const blockSize = 32

// Target is one receiver of a mapped window. Memory Channel pages may be
// mapped for broadcast: a single transmitted packet is delivered to every
// node that attached a receive mapping for the page, which is how one
// primary feeds K backups without K transmissions.
type Target struct {
	// Dst is the remote region written by the window; DstOff is the
	// offset within Dst corresponding to the window's SrcBase.
	Dst    *mem.Region
	DstOff int
	// Down, when non-nil and true at delivery time, drops this receiver's
	// copy of the payload: the receiver is partitioned or dead. The sender
	// is unaffected (broadcast has no per-receiver flow control).
	Down *bool
}

// Mapping connects a window of this node's I/O space to one or more remote
// regions (the first receiver inline, extra broadcast receivers in Fanout).
type Mapping struct {
	// SrcBase is the local simulated address of the window.
	SrcBase uint64
	// Size is the window length in bytes.
	Size int
	// Dst is the remote region written by the window; DstOff is the
	// offset within Dst corresponding to SrcBase.
	Dst    *mem.Region
	DstOff int
	// Down gates the primary receiver exactly like Target.Down.
	Down *bool
	// Fanout lists additional broadcast receivers of the same window.
	Fanout []Target
}

// Node is one machine's Memory Channel attachment. It implements
// mem.IOSink so an Accessor can double its writes through it.
//
// Not safe for concurrent use; each simulated node owns one Node.
type Node struct {
	params *sim.Params
	clock  *sim.Clock
	link   *sim.Link

	maps []Mapping // sorted by SrcBase

	bufs    []wbuf // allocation (FIFO) order, len <= params.WriteBuffers
	nextSeq uint64
	// emitScratch stages the buffer being flushed in emit: a stack copy
	// would escape through the Backing interface and charge the allocator
	// one wbuf per emitted packet.
	emitScratch wbuf

	trace    *sim.Trace
	lastMark sim.Time

	lastDelivered sim.Time
	crashed       bool
	idleDrain     bool
	crashAfter    int64 // fail after this many packets (0 = disabled)
	emitted       int64

	// catBytes and lost are atomic so aggregate-traffic readers (a
	// sharded front-end summing NetTraffic across running shards) can
	// sample them without synchronizing with the emitting stream.
	catBytes [mem.NumCategories]atomic.Int64
	lost     [mem.NumCategories]atomic.Int64
}

// wbuf is one pending 32-byte coalescing buffer.
type wbuf struct {
	block    uint64 // aligned base address
	mask     uint32 // valid bytes
	openedAt sim.Time
	data     [blockSize]byte
	cats     [blockSize]mem.Category
}

// NewNode returns a node that emits packets onto link and charges stalls to
// clock. The link may be shared with other nodes (SMP experiments) only via
// trace replay; live submission requires exclusive use.
func NewNode(p *sim.Params, clock *sim.Clock, link *sim.Link) *Node {
	return &Node{params: p, clock: clock, link: link}
}

// Map adds an I/O-space window. Windows must not overlap.
func (n *Node) Map(m Mapping) error {
	if m.Dst == nil {
		return fmt.Errorf("memchannel: mapping %#x has nil destination", m.SrcBase)
	}
	if m.DstOff+m.Size > m.Dst.Size() {
		return fmt.Errorf("memchannel: mapping %#x overruns destination %q", m.SrcBase, m.Dst.Name)
	}
	for _, t := range m.Fanout {
		if t.Dst == nil {
			return fmt.Errorf("memchannel: mapping %#x has nil fanout destination", m.SrcBase)
		}
		if t.DstOff+m.Size > t.Dst.Size() {
			return fmt.Errorf("memchannel: mapping %#x overruns fanout destination %q", m.SrcBase, t.Dst.Name)
		}
	}
	for _, o := range n.maps {
		if m.SrcBase < o.SrcBase+uint64(o.Size) && o.SrcBase < m.SrcBase+uint64(m.Size) {
			return fmt.Errorf("memchannel: mapping %#x overlaps existing window %#x", m.SrcBase, o.SrcBase)
		}
	}
	n.maps = append(n.maps, m)
	sort.Slice(n.maps, func(i, j int) bool { return n.maps[i].SrcBase < n.maps[j].SrcBase })
	return nil
}

// AddTarget enrolls an additional broadcast receiver on the already-mapped
// window at srcBase — how an online repair attaches a joining backup to the
// live replication stream without rewiring (and thereby disturbing) the
// serving node's attachment.
func (n *Node) AddTarget(srcBase uint64, t Target) error {
	if t.Dst == nil {
		return fmt.Errorf("memchannel: nil target for window %#x", srcBase)
	}
	for i := range n.maps {
		m := &n.maps[i]
		if m.SrcBase != srcBase {
			continue
		}
		if t.DstOff+m.Size > t.Dst.Size() {
			return fmt.Errorf("memchannel: target overruns destination %q of window %#x", t.Dst.Name, srcBase)
		}
		m.Fanout = append(m.Fanout, t)
		return nil
	}
	return fmt.Errorf("memchannel: no mapped window at %#x", srcBase)
}

// RemoveTargets detaches every receiver gated by down from all windows —
// the counterpart of AddTarget, used when a dead backup is dropped so its
// regions are not pinned (and iterated) by the live mappings forever. If
// the window's inline receiver is the one removed, the first fanout
// receiver is promoted into its place; a window left with no receivers is
// permanently gated.
func (n *Node) RemoveTargets(down *bool) {
	gone := true
	for i := range n.maps {
		m := &n.maps[i]
		kept := m.Fanout[:0]
		for _, t := range m.Fanout {
			if t.Down != down {
				kept = append(kept, t)
			}
		}
		m.Fanout = kept
		if m.Down == down {
			if len(m.Fanout) > 0 {
				t := m.Fanout[0]
				m.Fanout = append(m.Fanout[:0], m.Fanout[1:]...)
				m.Dst, m.DstOff, m.Down = t.Dst, t.DstOff, t.Down
			} else {
				m.Dst, m.DstOff, m.Down = deadWindow, 0, &gone
			}
		}
	}
}

// deadWindow backs windows whose every receiver has been removed: the
// permanently-gated mapping still needs a non-nil destination to satisfy
// the mapping invariants, but never receives a byte.
var deadWindow = mem.NewRegion("dead-window", 0, nil)

// EmitBulk charges a bulk background transfer (the chunked state copy of an
// online repair) to the SAN: the bytes occupy the link like any other
// traffic and are accounted under cat, but the submitting CPU — the repair
// copier, not the transaction stream — is never stalled. Returns the
// delivery time of the last byte.
func (n *Node) EmitBulk(now sim.Time, bytes int, cat mem.Category) sim.Time {
	if n.crashed || bytes <= 0 {
		return now
	}
	at := n.link.SubmitBulk(now, bytes)
	n.catBytes[cat].Add(int64(bytes))
	return at
}

// AccountControl tallies control-plane bytes that travel the reverse
// direction (heartbeat acknowledgements crossing back from the replicas).
// The model serializes only this node's transmit direction, so reverse
// traffic is accounted under mem.CatControl without occupying the link.
func (n *Node) AccountControl(bytes int) {
	if bytes > 0 {
		n.catBytes[mem.CatControl].Add(int64(bytes))
	}
}

// PendingBufs reports how many write buffers still hold undelivered bytes
// (the 1-safe window); zero means everything stored so far is on the wire.
func (n *Node) PendingBufs() int { return len(n.bufs) }

// SetTrace attaches a trace recorder (SMP capture runs); nil detaches.
func (n *Node) SetTrace(t *sim.Trace) {
	n.trace = t
	n.lastMark = n.clock.Now()
}

// StoreIO implements mem.IOSink: the I/O-space half of a doubled write.
func (n *Node) StoreIO(addr uint64, src []byte, cat mem.Category) {
	if n.crashed {
		return
	}
	n.drainStale()
	for len(src) > 0 {
		block := addr &^ (blockSize - 1)
		off := int(addr - block)
		cnt := blockSize - off
		if cnt > len(src) {
			cnt = len(src)
		}
		n.storeBlock(block, off, src[:cnt], cat)
		addr += uint64(cnt)
		src = src[cnt:]
	}
}

// storeBlock merges one within-block store into the coalescing buffers.
func (n *Node) storeBlock(block uint64, off int, src []byte, cat mem.Category) {
	b := n.findBuf(block)
	if b == nil {
		if len(n.bufs) >= n.params.WriteBuffers {
			// Buffer pressure: the oldest (partial) buffer is forcibly
			// evicted, and the CPU waits for the bus to accept it.
			n.emit(0, true)
		}
		n.bufs = append(n.bufs, wbuf{block: block, openedAt: n.clock.Now()})
		b = &n.bufs[len(n.bufs)-1]
	}
	copy(b.data[off:off+len(src)], src)
	for i := 0; i < len(src); i++ {
		b.mask |= 1 << uint(off+i)
		b.cats[off+i] = cat
	}
	if b.mask == 1<<blockSize-1 {
		// A naturally filled buffer retires asynchronously through the
		// posted-write pipeline.
		n.emitBuf(b, false)
		n.removeBuf(block)
	}
}

func (n *Node) findBuf(block uint64) *wbuf {
	for i := range n.bufs {
		if n.bufs[i].block == block {
			return &n.bufs[i]
		}
	}
	return nil
}

func (n *Node) removeBuf(block uint64) {
	for i := range n.bufs {
		if n.bufs[i].block == block {
			n.bufs = append(n.bufs[:i], n.bufs[i+1:]...)
			return
		}
	}
}

// emit flushes the buffer at index i (in FIFO order bookkeeping).
func (n *Node) emit(i int, sync bool) {
	n.emitScratch = n.bufs[i]
	n.bufs = append(n.bufs[:i], n.bufs[i+1:]...)
	n.emitBuf(&n.emitScratch, sync)
}

// emitBuf turns one buffer into a SAN packet: it charges the link, applies
// the payload to the remote region (posted writes always complete), and
// accounts the bytes per category.
func (n *Node) emitBuf(b *wbuf, sync bool) {
	size := bits.OnesCount32(b.mask)
	if size == 0 {
		return
	}
	if n.crashAfter > 0 && n.emitted >= n.crashAfter {
		// Injected mid-stream failure: from the backup's perspective the
		// primary died here; this and all later packets are lost.
		n.crashed = true
	}
	if n.crashed {
		for i := 0; i < blockSize; i++ {
			if b.mask&(1<<uint(i)) != 0 {
				n.lost[b.cats[i]].Add(1)
			}
		}
		return
	}
	n.emitted++
	// A buffer whose payload exceeds the SAN's packet cap leaves as
	// several packets (the stock Memory Channel II cap equals the
	// buffer size, so this splits only in ablation configurations).
	for sent := 0; sent < size; {
		part := size - sent
		if part > n.params.MaxPacket {
			part = n.params.MaxPacket
		}
		now := n.clock.Now()
		if n.trace != nil {
			n.trace.AddCompute(sim.Dur(now - n.lastMark))
			n.trace.AddPacket(part, sync)
		}
		readyAt, deliveredAt := n.link.Submit(now, part, sync)
		n.clock.AdvanceTo(readyAt)
		if n.trace != nil {
			// Checkpoint excludes the link stall (replay recomputes it
			// under contention) but precedes the drain charge below, so
			// that processor-local cost lands in the next compute
			// segment and replays carry it.
			n.lastMark = n.clock.Now()
		}
		if part < blockSize && !n.idleDrain {
			// Partial-line drain: the bridge issues discrete cycles
			// per valid byte instead of one burst, stealing bus time
			// from the processor. Full 32-byte lines burst for free —
			// the heart of the paper's locality argument.
			n.clock.Advance(sim.Dur(part) * n.params.PartialDrainPerByte)
		}
		n.lastDelivered = deliveredAt
		sent += part
	}

	n.apply(b)
	// Tally per category locally, then publish with one atomic add each:
	// per-byte atomic increments would put 32 RMWs on the hot path.
	var tally [mem.NumCategories]int64
	for i := 0; i < blockSize; i++ {
		if b.mask&(1<<uint(i)) != 0 {
			tally[b.cats[i]]++
		}
	}
	for c, v := range tally {
		if v != 0 {
			n.catBytes[c].Add(v)
		}
	}
}

// apply writes the buffer's valid bytes into the remote region(s).
func (n *Node) apply(b *wbuf) {
	i := 0
	for i < blockSize {
		if b.mask&(1<<uint(i)) == 0 {
			i++
			continue
		}
		j := i
		for j < blockSize && b.mask&(1<<uint(j)) != 0 {
			j++
		}
		n.applyRange(b.block+uint64(i), b.data[i:j])
		i = j
	}
}

func (n *Node) applyRange(addr uint64, data []byte) {
	m := n.mapping(addr, len(data))
	if m == nil {
		panic(fmt.Sprintf("memchannel: I/O store [%#x,+%d) hits no mapping", addr, len(data)))
	}
	off := int(addr - m.SrcBase)
	if m.Down == nil || !*m.Down {
		m.Dst.WriteRaw(m.DstOff+off, data)
	}
	for _, t := range m.Fanout {
		if t.Down == nil || !*t.Down {
			t.Dst.WriteRaw(t.DstOff+off, data)
		}
	}
}

func (n *Node) mapping(addr uint64, sz int) *Mapping {
	i := sort.Search(len(n.maps), func(i int) bool {
		return n.maps[i].SrcBase+uint64(n.maps[i].Size) > addr
	})
	if i < len(n.maps) {
		m := &n.maps[i]
		if addr >= m.SrcBase && addr+uint64(sz) <= m.SrcBase+uint64(m.Size) {
			return m
		}
	}
	return nil
}

// Fence implements mem.IOSink: drain all buffers in allocation order. A
// memory barrier pushes the buffers into the posted-write queue — it does
// not wait for SAN serialization, so fenced sequential streams (the active
// backup's redo records) keep their asynchronous retirement; only queue
// overflow stalls the CPU.
func (n *Node) Fence() {
	for len(n.bufs) > 0 {
		n.emit(0, false)
	}
}

// drainStale flushes buffers that have been open longer than DrainAge:
// the bus has long since gone idle, so real hardware would have retired
// them in the background.
func (n *Node) drainStale() {
	if n.params.DrainAge <= 0 {
		return
	}
	cutoff := n.clock.Now() - sim.Time(n.params.DrainAge)
	for len(n.bufs) > 0 && n.bufs[0].openedAt <= cutoff {
		n.emit(0, false)
	}
}

// Crash drops the contents of the write buffers — stores that had not yet
// been flushed to the bus are lost, exactly the paper's 1-safe window.
// Buffers older than DrainAge left the CPU before the failure instant and
// are delivered first; only genuinely in-flight bytes die with the node.
func (n *Node) Crash() {
	n.drainStale()
	for i := range n.bufs {
		b := &n.bufs[i]
		for j := 0; j < blockSize; j++ {
			if b.mask&(1<<uint(j)) != 0 {
				n.lost[b.cats[j]].Add(1)
			}
		}
	}
	n.bufs = nil
	n.crashed = true
}

// Idle lets simulated time pass with the CPU quiescent; background
// draining retires every pending write buffer without charging the (idle)
// processor.
func (n *Node) Idle(d sim.Dur) {
	n.clock.Advance(d)
	n.idleDrain = true
	for len(n.bufs) > 0 {
		n.emit(0, false)
	}
	n.idleDrain = false
}

// Crashed reports whether the node has failed (explicitly or by injection).
func (n *Node) Crashed() bool { return n.crashed }

// CrashAfterPackets schedules an injected failure: the node dies just
// before emitting its (k+1)-th packet from now, freezing the backup's view
// at an arbitrary packet boundary — possibly in the middle of a commit.
// Zero disables injection.
func (n *Node) CrashAfterPackets(k int64) {
	n.emitted = 0
	n.crashAfter = k
}

// LastDelivered returns the delivery time of the most recently emitted
// packet (used to couple the redo ring's consumer model to the link).
func (n *Node) LastDelivered() sim.Time { return n.lastDelivered }

// RingReserve stalls the producer until the redo ring has room, recording
// the event for replay.
func (n *Node) RingReserve(r *sim.Ring, bytes int) {
	if n.trace != nil {
		now := n.clock.Now()
		n.trace.AddCompute(sim.Dur(now - n.lastMark))
		n.trace.AddReserve(bytes)
	}
	n.clock.AdvanceTo(r.Reserve(n.clock.Now(), bytes))
	if n.trace != nil {
		n.lastMark = n.clock.Now()
	}
}

// RingPublish hands a fully-written record to the consumer model.
func (n *Node) RingPublish(r *sim.Ring, bytes int) {
	if n.trace != nil {
		now := n.clock.Now()
		n.trace.AddCompute(sim.Dur(now - n.lastMark))
		n.trace.AddPublish(bytes)
		n.lastMark = now
	}
	r.Publish(n.lastDelivered, bytes)
}

// CategoryBytes returns the bytes actually sent over the SAN, by category.
// Because accounting happens at packet emission, bytes overwritten while
// still coalescing in a buffer are counted once, like on the real wire.
// Safe for concurrent use with the emitting stream.
func (n *Node) CategoryBytes() map[mem.Category]int64 {
	out := make(map[mem.Category]int64, 5)
	for c := mem.CatModified; c <= mem.CatControl; c++ {
		out[c] = n.catBytes[c].Load()
	}
	return out
}

// TotalBytes returns the total payload bytes sent over the SAN. Safe for
// concurrent use with the emitting stream.
func (n *Node) TotalBytes() int64 {
	var t int64
	for i := range n.catBytes {
		t += n.catBytes[i].Load()
	}
	return t
}

// ResetStats clears the per-category counters (measurement phases).
func (n *Node) ResetStats() {
	for i := range n.catBytes {
		n.catBytes[i].Store(0)
		n.lost[i].Store(0)
	}
}

var _ mem.IOSink = (*Node)(nil)
