// Package wire defines the binary framing used by the TCP transport that
// carries write-through replication between two real processes. Frames are
// length-prefixed and CRC-protected:
//
//	[ type u8 | addr u64 | len u32 | payload ... | crc32c u32 ]
//
// all little-endian. The Write frame reuses the simulated-address
// convention of the in-process SAN: both sides lay their regions out
// identically (vista.Layout), so an address names the same byte on either
// machine — exactly how Memory Channel mappings work.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// FrameType discriminates wire frames.
type FrameType uint8

// Frame types.
const (
	// FrameHello opens a session; the payload is the 8-byte layout
	// checksum both sides must agree on.
	FrameHello FrameType = iota + 1
	// FrameWrite carries a doubled store: addr names the target byte in
	// the shared layout, the payload is the data.
	FrameWrite
	// FrameHeartbeat keeps the failure detector quiet.
	FrameHeartbeat
	// FrameBye announces an orderly shutdown.
	FrameBye
)

// MaxPayload bounds a frame's payload (the largest bulk copy the engines
// issue is a whole mirror region chunk; 1 MiB gives ample headroom).
const MaxPayload = 1 << 20

// Frame is one unit on the wire.
type Frame struct {
	Type FrameType
	Addr uint64
	Data []byte
}

// Framing errors.
var (
	ErrTooLarge = errors.New("wire: payload exceeds MaxPayload")
	ErrChecksum = errors.New("wire: checksum mismatch")
	ErrType     = errors.New("wire: unknown frame type")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const headerLen = 1 + 8 + 4

// encBufPool recycles frame scratch buffers across Writers and Readers:
// replication sessions come and go (failover reconnects, repair enrolls a
// fresh node), and per-connection buffers would otherwise be re-grown to
// the steady-state frame size each time. Buffers start at 4 KB and grow in
// place when a larger frame passes through; oversized ones are still
// returned to the pool (the GC trims the pool under pressure).
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 4<<10)
		return &b
	},
}

// Writer frames onto a buffered writer. Not safe for concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf *[]byte
}

// NewWriter returns a frame writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10), buf: encBufPool.Get().(*[]byte)}
}

// Release returns the writer's encode buffer to the shared pool; the
// Writer must not be used afterwards. Optional — a dropped Writer is
// simply collected — but long-running transports that open many sessions
// should release on close.
func (w *Writer) Release() {
	if w.buf != nil {
		encBufPool.Put(w.buf)
		w.buf = nil
	}
}

// Write frames f. Data is copied before return.
func (w *Writer) Write(f Frame) error {
	if len(f.Data) > MaxPayload {
		return ErrTooLarge
	}
	need := headerLen + len(f.Data) + 4
	if w.buf == nil {
		w.buf = encBufPool.Get().(*[]byte)
	}
	if cap(*w.buf) < need {
		*w.buf = make([]byte, need)
	}
	b := (*w.buf)[:need]
	b[0] = byte(f.Type)
	binary.LittleEndian.PutUint64(b[1:], f.Addr)
	binary.LittleEndian.PutUint32(b[9:], uint32(len(f.Data)))
	copy(b[headerLen:], f.Data)
	crc := crc32.Checksum(b[:headerLen+len(f.Data)], castagnoli)
	binary.LittleEndian.PutUint32(b[headerLen+len(f.Data):], crc)
	_, err := w.w.Write(b)
	return err
}

// Flush pushes buffered frames to the underlying writer (the transport's
// fence).
func (w *Writer) Flush() error { return w.w.Flush() }

// Buffered returns the bytes accumulated since the last Flush.
func (w *Writer) Buffered() int { return w.w.Buffered() }

// Reader decodes frames. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf *[]byte
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10), buf: encBufPool.Get().(*[]byte)}
}

// Release returns the reader's decode buffer to the shared pool; the
// Reader (and any Frame.Data aliasing the buffer) must not be used
// afterwards.
func (r *Reader) Release() {
	if r.buf != nil {
		encBufPool.Put(r.buf)
		r.buf = nil
	}
}

// Read decodes the next frame. The returned frame's Data aliases an
// internal buffer valid until the next Read.
func (r *Reader) Read() (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return Frame{}, err
	}
	ft := FrameType(hdr[0])
	if ft < FrameHello || ft > FrameBye {
		return Frame{}, fmt.Errorf("%w: %d", ErrType, hdr[0])
	}
	n := binary.LittleEndian.Uint32(hdr[9:])
	if n > MaxPayload {
		return Frame{}, ErrTooLarge
	}
	need := int(n) + 4
	if r.buf == nil {
		r.buf = encBufPool.Get().(*[]byte)
	}
	if cap(*r.buf) < headerLen+need {
		*r.buf = make([]byte, headerLen+need)
	}
	b := (*r.buf)[:headerLen+need]
	copy(b, hdr[:])
	if _, err := io.ReadFull(r.r, b[headerLen:]); err != nil {
		return Frame{}, err
	}
	want := binary.LittleEndian.Uint32(b[headerLen+int(n):])
	got := crc32.Checksum(b[:headerLen+int(n)], castagnoli)
	if want != got {
		return Frame{}, ErrChecksum
	}
	return Frame{
		Type: ft,
		Addr: binary.LittleEndian.Uint64(b[1:]),
		Data: b[headerLen : headerLen+int(n)],
	}, nil
}
