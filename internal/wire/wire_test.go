package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := []Frame{
		{Type: FrameHello, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: FrameWrite, Addr: 0xDEADBEEF, Data: []byte("payload")},
		{Type: FrameHeartbeat},
		{Type: FrameBye},
	}
	for _, f := range frames {
		if err := w.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	for i, want := range frames {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Addr != want.Addr || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

func TestChecksumRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Frame{Type: FrameWrite, Addr: 42, Data: []byte("data!")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[15] ^= 0xFF // flip a payload byte

	_, err := NewReader(bytes.NewReader(raw)).Read()
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted frame read: %v", err)
	}
}

func TestRejectsUnknownTypeAndOversize(t *testing.T) {
	raw := make([]byte, 17)
	raw[0] = 0xEE
	if _, err := NewReader(bytes.NewReader(raw)).Read(); !errors.Is(err, ErrType) {
		t.Fatalf("unknown type: %v", err)
	}

	var w Writer
	w = *NewWriter(io.Discard)
	if err := w.Write(Frame{Type: FrameWrite, Data: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize write: %v", err)
	}

	// A length field larger than MaxPayload must be rejected before any
	// allocation.
	hdr := []byte{byte(FrameWrite), 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := NewReader(bytes.NewReader(hdr)).Read(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize length: %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Frame{Type: FrameWrite, Addr: 1, Data: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := NewReader(bytes.NewReader(raw[:cut])).Read(); err == nil {
			t.Fatalf("truncation at %d read successfully", cut)
		}
	}
}

// TestRandomRoundtrip: arbitrary frame sequences survive encode/decode.
func TestRandomRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var frames []Frame
		for i := 0; i < 50; i++ {
			data := make([]byte, r.IntN(200))
			for j := range data {
				data[j] = byte(r.Uint32())
			}
			f := Frame{
				Type: FrameType(1 + r.IntN(4)),
				Addr: r.Uint64(),
				Data: data,
			}
			frames = append(frames, f)
			if err := w.Write(f); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		rd := NewReader(&buf)
		for _, want := range frames {
			got, err := rd.Read()
			if err != nil || got.Type != want.Type || got.Addr != want.Addr ||
				!bytes.Equal(got.Data, want.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
