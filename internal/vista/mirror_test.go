package vista

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// mirrorEquals reports whether the mirror region is byte-identical to the
// database — the invariant both mirroring engines must restore at every
// transaction boundary.
func mirrorEquals(t *testing.T, s *Store) bool {
	t.Helper()
	db := s.mem.Space().ByName(RegionDB)
	mr := s.mem.Space().ByName(RegionMirror)
	if db == nil || mr == nil {
		t.Fatal("store has no mirror")
	}
	a := make([]byte, db.Size())
	b := make([]byte, mr.Size())
	db.ReadRaw(0, a)
	mr.ReadRaw(0, b)
	return bytes.Equal(a, b)
}

// TestMirrorInvariantAcrossTransactions: after every commit AND every
// abort, mirror == database for both V1 and V2 — the property their
// recovery correctness rests on.
func TestMirrorInvariantAcrossTransactions(t *testing.T) {
	const dbSize = 1 << 15
	for _, v := range []Version{V1MirrorCopy, V2MirrorDiff} {
		t.Run(v.String(), func(t *testing.T) {
			s, _, _ := newTestStore(t, Config{Version: v, DBSize: dbSize})
			must(t, s.Load(0, bytes.Repeat([]byte{0x5A}, 4096)))
			if !mirrorEquals(t, s) {
				t.Fatal("mirror differs right after Load")
			}
			r := rand.New(rand.NewPCG(8, 9))
			for i := 0; i < 100; i++ {
				tx, err := s.Begin()
				if err != nil {
					t.Fatal(err)
				}
				for j := 0; j < 1+r.IntN(3); j++ {
					off := r.IntN(dbSize - 64)
					must(t, tx.SetRange(off, 32))
					buf := make([]byte, 1+r.IntN(32))
					for k := range buf {
						buf[k] = byte(r.Uint32())
					}
					must(t, tx.Write(off, buf))
				}
				if r.IntN(3) == 0 {
					must(t, tx.Abort())
				} else {
					must(t, tx.Commit())
				}
				if !mirrorEquals(t, s) {
					t.Fatalf("%s: mirror diverged after txn %d", v, i)
				}
			}
		})
	}
}

// TestMirrorDiffWritesLess: on identical workloads, V2 must move fewer
// bytes into the mirror than V1 (the design's entire point), while ending
// in the same state.
func TestMirrorDiffWritesLess(t *testing.T) {
	const dbSize = 1 << 15
	run := func(v Version) (int64, []byte) {
		s, _, acc := newTestStore(t, Config{Version: v, DBSize: dbSize})
		r := rand.New(rand.NewPCG(4, 2))
		for i := 0; i < 50; i++ {
			tx, err := s.Begin()
			if err != nil {
				t.Fatal(err)
			}
			off := r.IntN(dbSize - 64)
			must(t, tx.SetRange(off, 64))
			// Touch only 4 of the declared 64 bytes: diffing should
			// pay for 4, copying for 64.
			must(t, tx.Write(off, []byte{byte(i), 1, 2, 3}))
			must(t, tx.Commit())
		}
		db := make([]byte, dbSize)
		s.ReadRaw(0, db)
		return acc.Stats().BytesWritten, db
	}
	v1Bytes, v1State := run(V1MirrorCopy)
	v2Bytes, v2State := run(V2MirrorDiff)
	if !bytes.Equal(v1State, v2State) {
		t.Fatal("V1 and V2 diverged on identical input")
	}
	if v2Bytes >= v1Bytes {
		t.Fatalf("diffing wrote %d bytes, copying %d — diff must write less", v2Bytes, v1Bytes)
	}
}
