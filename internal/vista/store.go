package vista

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/rio"
)

// control-region word offsets (all 8-byte words). The control region is a
// recoverable segment: recovery reads its roots to decide what to undo.
const (
	ctlCommitSeq = 0 // number of committed transactions
	ctlRoot      = 8 // V0: undo-list head; V3: undo-log tail; V1/V2: unused
)

// engine is the per-version behaviour behind the public API. Engines
// operate on the Store's accessor so every byte they move is charged and,
// in a replicated configuration, doubled onto the SAN.
type engine interface {
	// begin is called after API-cost accounting, with no transaction open.
	begin(s *Store)
	// setRange captures undo information for [off, off+n) of the database.
	setRange(s *Store, off, n int) error
	// commit makes the open transaction durable and releases undo state.
	commit(s *Store) error
	// abort rolls the open transaction back.
	abort(s *Store) error
	// recoverInFlight undoes a transaction interrupted by a crash, using
	// only reliable-memory state (control roots, heap, log, set-range
	// array). It must be idempotent: recovery can itself be interrupted.
	recoverInFlight(s *Store) error
	// recoverBackup brings a backup's regions to a consistent committed
	// state when the non-replicated structures (the set-range array for
	// V1/V2) are unavailable.
	recoverBackup(s *Store) error
}

// Store is one transaction server instance: an engine over a database held
// in reliable memory, accessed through an instrumented accessor.
//
// A Store's transactional operations are not safe for concurrent use: the
// paper's API assumes concurrency control in a separate layer (Section
// 2.1), and the replication.Group above it serializes all access on one
// per-group mutex. The counter accessors Stats and Committed are the
// exception — they read atomic shadows and may be called from any
// goroutine while a transaction runs (aggregate monitoring over live
// shards).
type Store struct {
	cfg Config
	acc *mem.Accessor
	mem *rio.Memory

	db      *mem.Region
	control *mem.Region

	eng     engine
	tx      *Tx
	crashed bool
	// sink, when set, observes every durable mutation (transactional
	// writes, loads, commit/abort boundaries) — the replication layer's
	// durability tier hangs off it. Nil in the default configuration, so
	// the hot path pays one predictable branch.
	sink Sink

	// freeTx is the recycled transaction handle: exactly one transaction
	// is open at a time, so one cached value keeps Begin allocation-free.
	// The usual pool hazard applies — a handle must not be touched after
	// Commit/Abort — and is enforced for the stale holder only until the
	// handle is reissued.
	freeTx *Tx

	// API counters, atomic so monitors can snapshot them mid-transaction.
	begins  atomic.Int64
	commits atomic.Int64
	aborts  atomic.Int64
	// committed shadows the ctlCommitSeq word in reliable memory: reading
	// the region's bytes would race with the owning stream's writes.
	committed atomic.Uint64
}

// Stats counts API-level activity.
type Stats struct {
	Begins  int64
	Commits int64
	Aborts  int64
}

// Sink observes the store's durable mutations in API order: the spans an
// open transaction writes, followed by exactly one SinkCommit (carrying
// the new committed count) or SinkAbort, plus SinkLoad for initial
// content installs. Calls arrive under the owning replica group's lock —
// a Sink needs no locking of its own but must not call back into the
// store.
type Sink interface {
	SinkWrite(off int, src []byte)
	SinkLoad(off int, data []byte)
	SinkCommit(seq uint64)
	SinkAbort()
}

// SetSink attaches (or with nil detaches) the mutation observer.
func (s *Store) SetSink(sink Sink) { s.sink = sink }

// InTx reports whether a transaction is open — while one is, the
// database bytes may contain uncommitted in-place writes, so they are
// not a consistent image to snapshot.
func (s *Store) InTx() bool { return s.tx != nil }

// AdoptCommitSeq overwrites the committed-transaction counter in reliable
// memory and its atomic shadow, without charging simulated time. Cold
// restart uses it to seed a freshly formatted store with the sequence its
// recovered image corresponds to.
func (s *Store) AdoptCommitSeq(seq uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seq >> (8 * i))
	}
	s.control.WriteRaw(ctlCommitSeq, b[:])
	s.committed.Store(seq)
}

// Open initializes a Store over regions previously placed in rm's address
// space (see Layout/PlaceRegions). It formats the engine's persistent
// structures; the database contents are loaded separately via Load.
func Open(cfg Config, acc *mem.Accessor, rm *rio.Memory) (*Store, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, acc: acc, mem: rm}
	if err := s.bind(); err != nil {
		return nil, err
	}
	if err := s.makeEngine(true); err != nil {
		return nil, err
	}
	s.committed.Store(s.committedRaw())
	return s, nil
}

// RecoverMode selects the recovery path at takeover or restart.
type RecoverMode int

// Recovery modes.
const (
	// RecoverLocal restarts on the same reliable memory (Rio reboot):
	// every structure, including non-replicated ones, is present.
	RecoverLocal RecoverMode = iota + 1
	// RecoverBackup takes over on a backup's replicas, where
	// non-replicated structures hold no usable state.
	RecoverBackup
)

// Recover opens a Store over surviving reliable memory and rolls back any
// transaction that was in flight at the crash, returning the recovered
// store ready to serve new transactions.
func Recover(cfg Config, acc *mem.Accessor, rm *rio.Memory, mode RecoverMode) (*Store, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, acc: acc, mem: rm}
	if err := s.bind(); err != nil {
		return nil, err
	}
	if err := s.makeEngine(false); err != nil {
		return nil, err
	}
	switch mode {
	case RecoverLocal:
		err = s.eng.recoverInFlight(s)
	case RecoverBackup:
		err = s.eng.recoverBackup(s)
	default:
		err = fmt.Errorf("vista: invalid recover mode %d", int(mode))
	}
	if err != nil {
		return nil, fmt.Errorf("vista: recovery failed: %w", err)
	}
	s.acc.Fence()
	s.committed.Store(s.committedRaw())
	return s, nil
}

func (s *Store) bind() error {
	var err error
	if s.db, err = s.mem.Lookup(RegionDB); err != nil {
		return err
	}
	if s.control, err = s.mem.Lookup(RegionControl); err != nil {
		return err
	}
	return nil
}

func (s *Store) makeEngine(format bool) error {
	switch s.cfg.Version {
	case V0Vista:
		e, err := newV0(s, format)
		if err != nil {
			return err
		}
		s.eng = e
	case V1MirrorCopy:
		e, err := newMirror(s, false)
		if err != nil {
			return err
		}
		s.eng = e
	case V2MirrorDiff:
		e, err := newMirror(s, true)
		if err != nil {
			return err
		}
		s.eng = e
	case V3InlineLog:
		e, err := newV3(s)
		if err != nil {
			return err
		}
		s.eng = e
	}
	return nil
}

// Config returns the store's effective configuration.
func (s *Store) Config() Config { return s.cfg }

// Accessor exposes the instrumented accessor (replication and benchmarks
// share it for cost accounting).
func (s *Store) Accessor() *mem.Accessor { return s.acc }

// DBSize returns the database size in bytes.
func (s *Store) DBSize() int { return s.cfg.DBSize }

// Stats returns API activity counters. Safe for concurrent use.
func (s *Store) Stats() Stats {
	return Stats{
		Begins:  s.begins.Load(),
		Commits: s.commits.Load(),
		Aborts:  s.aborts.Load(),
	}
}

// Load installs initial database content without charging simulated time
// (database population happens before the measured interval). It keeps the
// mirror, when present, identical to the database, preserving the mirroring
// engines' invariant.
func (s *Store) Load(off int, data []byte) error {
	if off < 0 || off+len(data) > s.cfg.DBSize {
		return ErrBounds
	}
	s.db.WriteRaw(off, data)
	if m := s.mem.Space().ByName(RegionMirror); m != nil {
		m.WriteRaw(off, data)
	}
	if s.sink != nil {
		s.sink.SinkLoad(off, data)
	}
	return nil
}

// Read performs a non-transactional read of the database (charged).
func (s *Store) Read(off int, dst []byte) error {
	if s.crashed {
		return ErrCrashed
	}
	if off < 0 || off+len(dst) > s.cfg.DBSize {
		return ErrBounds
	}
	s.acc.Read(s.db.Base+uint64(off), dst)
	return nil
}

// ReadRaw reads database bytes without charging simulated time (test
// oracles, state dumps).
func (s *Store) ReadRaw(off int, dst []byte) { s.db.ReadRaw(off, dst) }

// Committed returns the number of committed transactions recorded in
// reliable memory, without charging simulated time. It reads an atomic
// shadow of the control word, so it is safe to call from any goroutine
// while a transaction runs.
func (s *Store) Committed() uint64 { return s.committed.Load() }

// committedRaw reads the committed count from the control region's bytes
// (used to seed the shadow when a store opens over existing memory).
func (s *Store) committedRaw() uint64 {
	var b [8]byte
	s.control.ReadRaw(ctlCommitSeq, b[:])
	return leU64(b[:])
}

// MarkCrashed makes every subsequent API call fail; the replication layer
// calls it when it crashes the node under the store.
func (s *Store) MarkCrashed() { s.crashed = true }

// Begin opens a transaction. Exactly one transaction may be open at a time
// (concurrency control is a separate layer in the paper's design). The
// returned handle is recycled once Commit or Abort completes; holding it
// past that point is a use-after-finish bug.
func (s *Store) Begin() (*Tx, error) {
	if s.crashed {
		return nil, ErrCrashed
	}
	if s.tx != nil {
		return nil, ErrTxActive
	}
	s.acc.Charge(s.acc.Params.TxBegin)
	s.begins.Add(1)
	tx := s.freeTx
	if tx == nil {
		tx = &Tx{}
	}
	s.freeTx = nil
	tx.s = s
	tx.done = false
	tx.ranges = tx.ranges[:0]
	s.tx = tx
	s.eng.begin(s)
	return tx, nil
}

// Tx is an open transaction. Its methods are not safe for concurrent use.
type Tx struct {
	s      *Store
	ranges []rng
	done   bool
}

type rng struct{ off, n int }

// SetRange declares that the transaction may modify [off, off+n) of the
// database, capturing undo information per the engine's design.
func (t *Tx) SetRange(off, n int) error {
	s, err := t.check()
	if err != nil {
		return err
	}
	if off < 0 || n <= 0 || off+n > s.cfg.DBSize {
		return ErrBounds
	}
	s.acc.Charge(s.acc.Params.SetRangeCall)
	if err := s.eng.setRange(s, off, n); err != nil {
		return err
	}
	t.ranges = append(t.ranges, rng{off: off, n: n})
	return nil
}

// Write stores src at database offset off, in place. The bytes must lie
// within a declared range unless the store was configured with
// UncheckedWrites.
func (t *Tx) Write(off int, src []byte) error {
	s, err := t.check()
	if err != nil {
		return err
	}
	if off < 0 || off+len(src) > s.cfg.DBSize {
		return ErrBounds
	}
	if !s.cfg.UncheckedWrites && !t.covered(off, len(src)) {
		return ErrOutOfRange
	}
	s.acc.Write(s.db.Base+uint64(off), src, mem.CatModified)
	if s.sink != nil {
		s.sink.SinkWrite(off, src)
	}
	return nil
}

// Read loads database bytes (transactions may read anywhere).
func (t *Tx) Read(off int, dst []byte) error {
	s, err := t.check()
	if err != nil {
		return err
	}
	if off < 0 || off+len(dst) > s.cfg.DBSize {
		return ErrBounds
	}
	s.acc.Read(s.db.Base+uint64(off), dst)
	return nil
}

// Commit makes the transaction durable. With a 1-safe backup, Commit
// returns as soon as the local commit completes (paper Section 2.1).
func (t *Tx) Commit() error {
	s, err := t.check()
	if err != nil {
		return err
	}
	s.acc.Charge(s.acc.Params.TxCommit)
	if err := s.eng.commit(s); err != nil {
		return err
	}
	if s.sink != nil {
		s.sink.SinkCommit(s.committed.Load())
	}
	t.finish()
	s.commits.Add(1)
	return nil
}

// Abort rolls the transaction back using the engine's undo state.
func (t *Tx) Abort() error {
	s, err := t.check()
	if err != nil {
		return err
	}
	s.acc.Charge(s.acc.Params.TxAbort)
	if err := s.eng.abort(s); err != nil {
		return err
	}
	if s.sink != nil {
		s.sink.SinkAbort()
	}
	t.finish()
	s.aborts.Add(1)
	return nil
}

func (t *Tx) check() (*Store, error) {
	if t.done {
		return nil, ErrTxDone
	}
	if t.s.crashed {
		return nil, ErrCrashed
	}
	return t.s, nil
}

func (t *Tx) covered(off, n int) bool {
	for _, r := range t.ranges {
		if off >= r.off && off+n <= r.off+r.n {
			return true
		}
	}
	return false
}

func (t *Tx) finish() {
	t.done = true
	t.s.tx = nil
	t.s.freeTx = t
}

// bumpCommitSeq advances the committed-transaction counter in reliable
// memory (metadata, replicated) and its atomic shadow.
func (s *Store) bumpCommitSeq() {
	seq := s.acc.ReadU64(s.control.Base + ctlCommitSeq)
	s.acc.WriteU64(s.control.Base+ctlCommitSeq, seq+1, mem.CatMeta)
	s.committed.Store(seq + 1)
}

// dbAddr translates a database offset to a simulated address.
func (s *Store) dbAddr(off int) uint64 { return s.db.Base + uint64(off) }

func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
