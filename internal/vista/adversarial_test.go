package vista

import (
	"encoding/binary"
	"testing"
)

// Adversarial recovery tests: hand-craft the reliable-memory states a
// partially delivered SAN stream can leave behind and check that recovery
// never corrupts committed data. These are the byzantine counterparts of
// the randomized crash tests in the replication package.

// rawU64 writes a word directly into a region (bypassing charging), as the
// SAN delivery path does.
func rawU64(r interface{ WriteRaw(int, []byte) }, off int, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	r.WriteRaw(off, b[:])
}

func TestV3RecoveryIgnoresStaleLogRecords(t *testing.T) {
	cfg := Config{Version: V3InlineLog, DBSize: 1 << 16}
	s, rm, acc := newTestStore(t, cfg)
	must(t, s.Load(0, []byte("committed-bytes!")))

	// Commit transaction #1 so the committed count is 1 and the log
	// contains stale records tagged with txn id 1.
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	must(t, tx.SetRange(0, 16))
	must(t, tx.Write(0, []byte("committed-bytes!")))
	must(t, tx.Commit())

	// A crash arrives with no transaction in flight. The log still holds
	// txn 1's record; recovery must NOT restore it (that would roll back
	// a committed transaction).
	s2, err := Recover(cfg, acc, rm, RecoverBackup)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	s2.ReadRaw(0, got)
	if string(got) != "committed-bytes!" {
		t.Fatalf("recovery restored a stale record: %q", got)
	}
	if s2.Committed() != 1 {
		t.Fatalf("Committed() = %d", s2.Committed())
	}
}

func TestV3RecoveryStopsAtTornHeader(t *testing.T) {
	cfg := Config{Version: V3InlineLog, DBSize: 1 << 16}
	s, rm, acc := newTestStore(t, cfg)
	must(t, s.Load(0, []byte("AAAAAAAABBBBBBBB")))

	// Forge an in-flight transaction: current txn id = committed+1 = 1.
	// Record 0 is valid (covers offset 0..8, before-image "AAAAAAAA");
	// record 1 has a corrupt length that would overrun the database.
	logReg := rm.Space().ByName(RegionUndoLog)
	// Record 0 header: base=0, len|tag<<16 with len=8, tag=1.
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0)
	binary.LittleEndian.PutUint32(hdr[4:8], 8|1<<16)
	logReg.WriteRaw(0, hdr[:])
	logReg.WriteRaw(8, []byte("AAAAAAAA"))
	// Record 1 header: base far out of range, same tag.
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	binary.LittleEndian.PutUint32(hdr[4:8], 8|1<<16)
	logReg.WriteRaw(16, hdr[:])

	// Scribble over the database as the in-flight writes would have.
	must(t, s.Load(0, []byte("XXXXXXXX")))

	s2, err := Recover(cfg, acc, rm, RecoverBackup)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	s2.ReadRaw(0, got)
	if string(got) != "AAAAAAAABBBBBBBB" {
		t.Fatalf("valid prefix not restored / torn record not skipped: %q", got)
	}
}

func TestV0RecoveryRejectsWildPointers(t *testing.T) {
	cfg := Config{Version: V0Vista, DBSize: 1 << 16}
	s, rm, acc := newTestStore(t, cfg)
	must(t, s.Load(0, []byte("precious-commits")))

	// Forge an undo-list root pointing outside the heap region — the
	// kind of garbage a half-delivered control block could name.
	ctl := rm.Space().ByName(RegionControl)
	rawU64(ctl, ctlRoot, 0xDEAD0000)

	s2, err := Recover(cfg, acc, rm, RecoverBackup)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	s2.ReadRaw(0, got)
	if string(got) != "precious-commits" {
		t.Fatalf("wild undo root corrupted the database: %q", got)
	}
}

func TestV0RecoveryRejectsStaleTag(t *testing.T) {
	cfg := Config{Version: V0Vista, DBSize: 1 << 16}
	s, rm, acc := newTestStore(t, cfg)
	must(t, s.Load(0, []byte("precious-commits")))

	// Commit once (tag 1 records now stale), then forge the root to
	// point at a fabricated record tagged 1 while committed count is 1:
	// the in-flight tag would be 2, so recovery must reject it.
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	must(t, tx.SetRange(32, 8))
	must(t, tx.Write(32, []byte("whatever")))
	must(t, tx.Commit())

	heap := rm.Space().ByName(RegionHeap)
	// Fabricate a plausible record at a heap address: next=0, base=0,
	// len=16, dataPtr=heap.Base+512, txnID=1 (stale).
	rec := int(512)
	rawU64(heap, rec+0, 0)
	rawU64(heap, rec+8, 0)
	rawU64(heap, rec+16, 16)
	rawU64(heap, rec+24, heap.Base+1024)
	rawU64(heap, rec+32, 1)
	heap.WriteRaw(1024, []byte("EVIL-BEFOREIMAGE"))
	ctl := rm.Space().ByName(RegionControl)
	rawU64(ctl, ctlRoot, heap.Base+uint64(rec))

	s2, err := Recover(cfg, acc, rm, RecoverBackup)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	s2.ReadRaw(0, got)
	if string(got) != "precious-commits" {
		t.Fatalf("stale-tagged record restored: %q", got)
	}
}

func TestV0RecoveryBoundsListWalk(t *testing.T) {
	// A cyclic undo list must not hang recovery.
	cfg := Config{Version: V0Vista, DBSize: 1 << 16, HeapSize: 64 << 10}
	s, rm, acc := newTestStore(t, cfg)
	_ = s

	heap := rm.Space().ByName(RegionHeap)
	rec := 2048
	// Record points at itself, valid bounds, in-flight tag 1.
	rawU64(heap, rec, heap.Base+uint64(rec))
	rawU64(heap, rec+8, 0)
	rawU64(heap, rec+16, 8)
	rawU64(heap, rec+24, heap.Base+4096)
	rawU64(heap, rec+32, 1)
	ctl := rm.Space().ByName(RegionControl)
	rawU64(ctl, ctlRoot, heap.Base+uint64(rec))

	done := make(chan error, 1)
	go func() {
		_, err := Recover(cfg, acc, rm, RecoverBackup)
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("cyclic list recovery errored: %v", err)
	}
}
