package vista

import (
	"fmt"

	"repro/internal/mem"
)

// mirror implements Versions 1 and 2 (paper Sections 4.2, 4.3): a full
// mirror copy of the database plus a flat array of set-range coordinates.
// Database writes are in place; on commit the set-range areas are brought
// over to the mirror — wholesale in Version 1, by diffing in Version 2.
// Abort (and local recovery) restores the set-range areas from the mirror.
//
// Set-range array layout (its own region, NOT replicated in the passive
// primary-backup configuration — the paper's Section 5.1 optimization):
//
//	[0]  count (u64)
//	[16 + 16*i] entry i: base (u64), len (u64)
//
// Invariant between transactions: mirror content equals database content,
// byte for byte. During a transaction the areas named by the array may
// differ; everything else is equal.
type mirror struct {
	diffing bool // false: Version 1 (copy); true: Version 2 (diff)

	mirrorReg *mem.Region
	srReg     *mem.Region
	srMax     int
}

const srEntriesOff = 16

func newMirror(s *Store, diffing bool) (*mirror, error) {
	mr, err := s.mem.Lookup(RegionMirror)
	if err != nil {
		return nil, err
	}
	sr, err := s.mem.Lookup(RegionSRArray)
	if err != nil {
		return nil, err
	}
	return &mirror{
		diffing:   diffing,
		mirrorReg: mr,
		srReg:     sr,
		srMax:     (sr.Size() - srEntriesOff) / 16,
	}, nil
}

func (e *mirror) begin(*Store) {}

func (e *mirror) setRange(s *Store, off, n int) error {
	cnt := s.acc.ReadU64(e.srReg.Base)
	if int(cnt) >= e.srMax {
		return fmt.Errorf("vista: set-range array full (%d entries)", e.srMax)
	}
	entry := e.srReg.Base + srEntriesOff + cnt*16
	s.acc.WriteU64(entry, uint64(off), mem.CatMeta)
	s.acc.WriteU64(entry+8, uint64(n), mem.CatMeta)
	s.acc.WriteU64(e.srReg.Base, cnt+1, mem.CatMeta)
	return nil
}

func (e *mirror) commit(s *Store) error {
	cnt := s.acc.ReadU64(e.srReg.Base)
	for i := uint64(0); i < cnt; i++ {
		base, n := e.entry(s, i)
		if e.diffing {
			// Version 2: compare database and mirror over the area and
			// write only the differing words to the mirror.
			runs := s.acc.Diff(s.dbAddr(base), e.mirrorAddr(base), n)
			for _, r := range runs {
				s.acc.Copy(e.mirrorAddr(base+r.Off), s.dbAddr(base+r.Off), r.Len, mem.CatUndo)
			}
		} else {
			// Version 1: copy the whole area to the mirror.
			s.acc.Copy(e.mirrorAddr(base), s.dbAddr(base), n, mem.CatUndo)
		}
	}
	s.acc.WriteU64(e.srReg.Base, 0, mem.CatMeta)
	s.bumpCommitSeq()
	return nil
}

func (e *mirror) abort(s *Store) error {
	return e.restoreFromArray(s)
}

// restoreFromArray copies the set-range areas back from the mirror
// (idempotent: the mirror holds pre-transaction content until commit).
func (e *mirror) restoreFromArray(s *Store) error {
	cnt := s.acc.ReadU64(e.srReg.Base)
	if int(cnt) > e.srMax {
		return fmt.Errorf("vista: set-range count %d is corrupt", cnt)
	}
	for i := uint64(0); i < cnt; i++ {
		base, n := e.entry(s, i)
		s.acc.Copy(s.dbAddr(base), e.mirrorAddr(base), n, mem.CatModified)
	}
	s.acc.WriteU64(e.srReg.Base, 0, mem.CatMeta)
	return nil
}

// recoverInFlight uses the locally surviving set-range array for a fast,
// targeted restore (a Rio reboot on the same node).
func (e *mirror) recoverInFlight(s *Store) error {
	return e.restoreFromArray(s)
}

// recoverBackup runs on a backup whose set-range array was never
// replicated: it cannot know which areas are dirty, so it copies the
// entire database from the mirror — the paper's deliberate trade of
// failure-free traffic for a longer takeover (Section 5.1).
func (e *mirror) recoverBackup(s *Store) error {
	const chunk = 1 << 20
	for off := 0; off < s.cfg.DBSize; off += chunk {
		n := chunk
		if off+n > s.cfg.DBSize {
			n = s.cfg.DBSize - off
		}
		s.acc.Copy(s.dbAddr(off), e.mirrorAddr(off), n, mem.CatModified)
	}
	s.acc.WriteU64(e.srReg.Base, 0, mem.CatMeta)
	return nil
}

func (e *mirror) entry(s *Store, i uint64) (base, n int) {
	addr := e.srReg.Base + srEntriesOff + i*16
	b := s.acc.ReadU64(addr)
	l := s.acc.ReadU64(addr + 8)
	return int(b), int(l)
}

func (e *mirror) mirrorAddr(off int) uint64 { return e.mirrorReg.Base + uint64(off) }

var _ engine = (*mirror)(nil)
