package vista

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/rio"
	"repro/internal/sim"
)

// allVersions spans every engine design for table-driven tests.
var allVersions = []Version{V0Vista, V1MirrorCopy, V2MirrorDiff, V3InlineLog}

// newTestStore builds a standalone store plus its reliable memory (for
// recovery tests) over a fresh address space.
func newTestStore(t *testing.T, cfg Config) (*Store, *rio.Memory, *mem.Accessor) {
	t.Helper()
	p := sim.Default()
	clk := &sim.Clock{}
	sp := mem.NewSpace()
	acc := mem.NewAccessor(&p, clk, cache.New(&p, clk), sp)
	rm := rio.New(sp)

	specs, err := Layout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceRegions(sp, specs, 8<<20); err != nil {
		t.Fatal(err)
	}
	s, err := Open(cfg, acc, rm)
	if err != nil {
		t.Fatal(err)
	}
	return s, rm, acc
}

func TestVersionStrings(t *testing.T) {
	want := map[Version]string{
		V0Vista:      "Version 0 (Vista)",
		V1MirrorCopy: "Version 1 (Mirror by Copy)",
		V2MirrorDiff: "Version 2 (Mirror by Diff)",
		V3InlineLog:  "Version 3 (Improved Log)",
	}
	for v, w := range want {
		if v.String() != w {
			t.Errorf("%d.String() = %q", int(v), v.String())
		}
	}
	if Version(9).Valid() || !V3InlineLog.Valid() {
		t.Fatal("Valid() wrong")
	}
}

func TestLayoutPerVersion(t *testing.T) {
	cases := []struct {
		v    Version
		want []string
	}{
		{V0Vista, []string{RegionControl, RegionDB, RegionHeap}},
		{V1MirrorCopy, []string{RegionControl, RegionDB, RegionMirror, RegionSRArray}},
		{V2MirrorDiff, []string{RegionControl, RegionDB, RegionMirror, RegionSRArray}},
		{V3InlineLog, []string{RegionControl, RegionDB, RegionUndoLog}},
	}
	for _, c := range cases {
		specs, err := Layout(Config{Version: c.v, DBSize: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if len(specs) != len(c.want) {
			t.Fatalf("%s: %d regions, want %d", c.v, len(specs), len(c.want))
		}
		for i, name := range c.want {
			if specs[i].Name != name {
				t.Errorf("%s region %d = %s, want %s", c.v, i, specs[i].Name, name)
			}
		}
	}
	// The set-range array is the one deliberately non-replicated region.
	specs, _ := Layout(Config{Version: V1MirrorCopy, DBSize: 1 << 20})
	for _, sp := range specs {
		if sp.Name == RegionSRArray && sp.Replicated {
			t.Fatal("set-range array marked replicated")
		}
		if sp.Name != RegionSRArray && !sp.Replicated {
			t.Fatalf("region %s not replicated", sp.Name)
		}
	}
}

func TestLayoutRejectsBadConfig(t *testing.T) {
	if _, err := Layout(Config{Version: Version(7), DBSize: 1024}); err == nil {
		t.Fatal("invalid version accepted")
	}
	if _, err := Layout(Config{Version: V0Vista, DBSize: 0}); err == nil {
		t.Fatal("zero database accepted")
	}
}

func TestAPIMisuse(t *testing.T) {
	s, _, _ := newTestStore(t, Config{Version: V3InlineLog, DBSize: 1 << 16})

	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Begin(); !errors.Is(err, ErrTxActive) {
		t.Fatalf("second Begin: %v", err)
	}
	if err := tx.SetRange(-1, 8); !errors.Is(err, ErrBounds) {
		t.Fatalf("negative SetRange: %v", err)
	}
	if err := tx.SetRange(1<<16-4, 8); !errors.Is(err, ErrBounds) {
		t.Fatalf("overrunning SetRange: %v", err)
	}
	if err := tx.SetRange(0, 0); !errors.Is(err, ErrBounds) {
		t.Fatalf("empty SetRange: %v", err)
	}
	if err := tx.Write(128, []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("undeclared Write: %v", err)
	}
	if err := tx.SetRange(128, 16); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(136, make([]byte, 9)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Write overrunning the range: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double Commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Abort after Commit: %v", err)
	}
}

func TestUncheckedWrites(t *testing.T) {
	s, _, _ := newTestStore(t, Config{Version: V3InlineLog, DBSize: 1 << 16, UncheckedWrites: true})
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(4096, []byte{1, 2}); err != nil {
		t.Fatalf("unchecked write rejected: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashedStoreRefusesWork(t *testing.T) {
	s, _, _ := newTestStore(t, Config{Version: V0Vista, DBSize: 1 << 16})
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	s.MarkCrashed()
	if err := tx.Commit(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("commit on crashed store: %v", err)
	}
	if _, err := s.Begin(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("begin on crashed store: %v", err)
	}
	if err := s.Read(0, make([]byte, 1)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on crashed store: %v", err)
	}
}

func TestCommitAppliesAbortRestores(t *testing.T) {
	for _, v := range allVersions {
		t.Run(v.String(), func(t *testing.T) {
			s, _, _ := newTestStore(t, Config{Version: v, DBSize: 1 << 16})
			if err := s.Load(100, []byte("original-data")); err != nil {
				t.Fatal(err)
			}

			// Commit persists.
			tx, err := s.Begin()
			if err != nil {
				t.Fatal(err)
			}
			must(t, tx.SetRange(100, 16))
			must(t, tx.Write(100, []byte("committed-data")))
			must(t, tx.Commit())

			got := make([]byte, 14)
			s.ReadRaw(100, got)
			if string(got) != "committed-data" {
				t.Fatalf("after commit: %q", got)
			}
			if s.Committed() != 1 {
				t.Fatalf("Committed() = %d", s.Committed())
			}

			// Abort restores.
			tx, err = s.Begin()
			if err != nil {
				t.Fatal(err)
			}
			must(t, tx.SetRange(100, 16))
			must(t, tx.Write(100, []byte("doomed-write!!")))
			must(t, tx.Abort())

			s.ReadRaw(100, got)
			if string(got) != "committed-data" {
				t.Fatalf("after abort: %q", got)
			}
			if s.Committed() != 1 {
				t.Fatalf("abort bumped Committed() to %d", s.Committed())
			}
			st := s.Stats()
			if st.Begins != 2 || st.Commits != 1 || st.Aborts != 1 {
				t.Fatalf("stats %+v", st)
			}
		})
	}
}

func TestOverlappingSetRangesAbort(t *testing.T) {
	// Two overlapping set_ranges in one transaction: undo must restore
	// the ORIGINAL bytes, not the intermediate ones.
	for _, v := range allVersions {
		t.Run(v.String(), func(t *testing.T) {
			s, _, _ := newTestStore(t, Config{Version: v, DBSize: 1 << 16})
			must(t, s.Load(0, []byte("AAAAAAAAAAAAAAAA")))

			tx, err := s.Begin()
			if err != nil {
				t.Fatal(err)
			}
			must(t, tx.SetRange(0, 16))
			must(t, tx.Write(0, []byte("BBBBBBBBBBBBBBBB")))
			must(t, tx.SetRange(8, 8)) // captures B's as before-image
			must(t, tx.Write(8, []byte("CCCCCCCC")))
			must(t, tx.Abort())

			got := make([]byte, 16)
			s.ReadRaw(0, got)
			if string(got) != "AAAAAAAAAAAAAAAA" {
				t.Fatalf("overlapping abort left %q", got)
			}
		})
	}
}

func TestLocalRecoveryRollsBackInFlight(t *testing.T) {
	// Simulate a Rio reboot: the store object dies mid-transaction, a
	// new one recovers over the same reliable memory.
	for _, v := range allVersions {
		t.Run(v.String(), func(t *testing.T) {
			s, rm, acc := newTestStore(t, Config{Version: v, DBSize: 1 << 16})
			must(t, s.Load(0, []byte("stable-state----")))

			tx, err := s.Begin()
			if err != nil {
				t.Fatal(err)
			}
			must(t, tx.SetRange(0, 16))
			must(t, tx.Write(0, []byte("torn-in-flight--")))
			// Crash here: the Store value is abandoned.

			s2, err := Recover(Config{Version: v, DBSize: 1 << 16}, acc, rm, RecoverLocal)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 16)
			s2.ReadRaw(0, got)
			if string(got) != "stable-state----" {
				t.Fatalf("recovery left %q", got)
			}
			// The recovered store serves new transactions.
			tx, err = s2.Begin()
			if err != nil {
				t.Fatal(err)
			}
			must(t, tx.SetRange(32, 8))
			must(t, tx.Write(32, []byte("newlife!")))
			must(t, tx.Commit())
		})
	}
}

func TestRecoveryAfterCleanCommitIsNoop(t *testing.T) {
	for _, v := range allVersions {
		t.Run(v.String(), func(t *testing.T) {
			s, rm, acc := newTestStore(t, Config{Version: v, DBSize: 1 << 16})
			tx, err := s.Begin()
			if err != nil {
				t.Fatal(err)
			}
			must(t, tx.SetRange(0, 8))
			must(t, tx.Write(0, []byte("settled!")))
			must(t, tx.Commit())

			s2, err := Recover(Config{Version: v, DBSize: 1 << 16}, acc, rm, RecoverLocal)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 8)
			s2.ReadRaw(0, got)
			if string(got) != "settled!" {
				t.Fatalf("recovery disturbed committed state: %q", got)
			}
			if s2.Committed() != 1 {
				t.Fatalf("Committed() = %d after recovery", s2.Committed())
			}
		})
	}
}

func TestResourceExhaustion(t *testing.T) {
	t.Run("v3 log full", func(t *testing.T) {
		s, _, _ := newTestStore(t, Config{Version: V3InlineLog, DBSize: 1 << 20, LogSize: 4096})
		tx, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		var last error
		for i := 0; i < 100 && last == nil; i++ {
			last = tx.SetRange(i*512, 512)
		}
		if last == nil {
			t.Fatal("4KB undo log absorbed 50KB of ranges")
		}
	})
	t.Run("mirror srarray full", func(t *testing.T) {
		s, _, _ := newTestStore(t, Config{Version: V1MirrorCopy, DBSize: 1 << 20, SRMax: 4})
		tx, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			must(t, tx.SetRange(i*64, 16))
		}
		if err := tx.SetRange(512, 16); err == nil {
			t.Fatal("set-range array overflow accepted")
		}
	})
	t.Run("v0 heap exhausted", func(t *testing.T) {
		s, _, _ := newTestStore(t, Config{Version: V0Vista, DBSize: 1 << 20, HeapSize: 2048})
		tx, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		var last error
		for i := 0; i < 100 && last == nil; i++ {
			last = tx.SetRange(i*600, 600)
		}
		if last == nil {
			t.Fatal("2KB heap absorbed 60KB of undo areas")
		}
	})
}

func TestV3OversizedRangeSplits(t *testing.T) {
	s, _, _ := newTestStore(t, Config{Version: V3InlineLog, DBSize: 1 << 20, LogSize: 1 << 20})
	big := 80_000 // exceeds the 16-bit record length
	payload := bytes.Repeat([]byte{0xAB}, big)
	must(t, s.Load(0, bytes.Repeat([]byte{0x11}, big)))

	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	must(t, tx.SetRange(0, big))
	must(t, tx.Write(0, payload))
	must(t, tx.Abort())

	got := make([]byte, big)
	s.ReadRaw(0, got)
	if !bytes.Equal(got, bytes.Repeat([]byte{0x11}, big)) {
		t.Fatal("oversized-range abort did not restore")
	}
}

// TestRandomOpsMatchModel drives every engine with a random mix of
// committed and aborted transactions and compares the database against a
// plain shadow model after each transaction.
func TestRandomOpsMatchModel(t *testing.T) {
	const dbSize = 1 << 16
	for _, v := range allVersions {
		t.Run(v.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				s, _, _ := newTestStore(t, Config{Version: v, DBSize: dbSize})
				model := make([]byte, dbSize)
				r := rand.New(rand.NewPCG(seed, uint64(v)))

				for i := 0; i < 150; i++ {
					tx, err := s.Begin()
					if err != nil {
						t.Fatal(err)
					}
					type write struct {
						off int
						buf []byte
					}
					var staged []write
					nRanges := 1 + r.IntN(4)
					for j := 0; j < nRanges; j++ {
						off := r.IntN(dbSize - 256)
						n := 8 * (1 + r.IntN(16))
						must(t, tx.SetRange(off, n))
						wn := 1 + r.IntN(n)
						buf := make([]byte, wn)
						for k := range buf {
							buf[k] = byte(r.Uint32())
						}
						woff := off + r.IntN(n-wn+1)
						must(t, tx.Write(woff, buf))
						staged = append(staged, write{off: woff, buf: buf})
					}
					if r.IntN(4) == 0 {
						must(t, tx.Abort())
					} else {
						must(t, tx.Commit())
						for _, w := range staged {
							copy(model[w.off:], w.buf)
						}
					}
					db := make([]byte, dbSize)
					s.ReadRaw(0, db)
					if !bytes.Equal(db, model) {
						t.Fatalf("seed %d: txn %d diverged from model", seed, i)
					}
				}
			}
		})
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
