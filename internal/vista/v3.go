package vista

import (
	"fmt"

	"repro/internal/mem"
)

// v3 is the paper's improved logging design (Section 4.4): undo records
// live inline in a bump-pointer log — header followed by the saved data —
// so all undo-path stores are sequential. Sequential stores coalesce into
// full 32-byte Memory Channel packets, which is exactly why this version
// wins the primary-backup comparison despite shipping more bytes than
// mirroring by diff.
//
// Log record layout (8-byte aligned, starting at log offset 0 for every
// transaction):
//
//	[+0] base  (u32)  database offset
//	[+4] len   (u16)  range length
//	[+6] tag   (u16)  committed-count-plus-one of the writing txn, mod 2^16
//	[+8] data  (len bytes, padded to 8)
//
// The tag is truncated to 16 bits to keep the header at one word (Vista's
// logs carried similarly terse headers); a stale record escapes detection
// only if a record boundary from exactly 65536 transactions ago lines up
// at the same offset AND passes the bounds checks — within the already
// documented 1-safe window, this shrinks the residual hazard to practical
// irrelevance while halving the log's metadata volume.
//
// There is no persistent tail pointer and no fencing: commit is the single
// coalescible store that advances the committed count (1-safe — the paper's
// commit does not wait for the backup either). Recovery scans the log from
// offset zero and undoes the maximal prefix of records tagged with the
// in-flight transaction id; records from earlier transactions (stale bytes,
// or bytes that never reached the backup) fail the tag check and stop the
// scan. Because log stores are strictly sequential, write buffers drain
// them in order and the delivered log is always a prefix — the tag check is
// therefore exact up to the documented 1-safe window.
type v3 struct {
	logReg *mem.Region
	// tail is the volatile bump pointer (reset at commit/abort); the log
	// needs no persistent pointer thanks to the tag discipline.
	tail int
	// txnID tags records of the current transaction.
	txnID uint64
}

const (
	v3HdrSize = 8
	// v3MaxRange is the largest single set_range the 16-bit length field
	// can describe.
	v3MaxRange = 1<<16 - 1
)

func newV3(s *Store) (*v3, error) {
	lr, err := s.mem.Lookup(RegionUndoLog)
	if err != nil {
		return nil, err
	}
	return &v3{logReg: lr}, nil
}

func (e *v3) begin(s *Store) {
	e.tail = 0
	e.txnID = s.acc.ReadU64(s.control.Base+ctlCommitSeq) + 1
}

func (e *v3) setRange(s *Store, off, n int) error {
	if n > v3MaxRange {
		// Split oversized ranges into tail-recursive halves; real
		// applications' set_ranges are far smaller.
		if err := e.setRange(s, off, v3MaxRange); err != nil {
			return err
		}
		return e.setRange(s, off+v3MaxRange, n-v3MaxRange)
	}
	rec := v3HdrSize + pad8(n)
	if e.tail+rec > e.logReg.Size() {
		return fmt.Errorf("vista: undo log full (%d of %d bytes)", e.tail, e.logReg.Size())
	}
	addr := e.logReg.Base + uint64(e.tail)
	// Header and before-image are appended with strictly sequential
	// stores: the whole record coalesces into 32-byte packets.
	s.acc.WriteU32(addr, uint32(off), mem.CatMeta)
	s.acc.WriteU32(addr+4, uint32(n)|uint32(uint16(e.txnID))<<16, mem.CatMeta)
	s.acc.Copy(addr+v3HdrSize, s.dbAddr(off), n, mem.CatUndo)
	e.tail += rec
	return nil
}

func (e *v3) commit(s *Store) error {
	// "De-allocate by moving the log pointer back": volatile, free. The
	// committed count is the single durable commit point; its store
	// coalesces with neighbouring control-word updates.
	e.tail = 0
	s.bumpCommitSeq()
	return nil
}

func (e *v3) abort(s *Store) error { return e.undoScan(s) }

// undoScan restores the before-images of the in-flight transaction: it
// scans records from log offset zero while they carry the in-flight tag
// (committed count + 1) and pass bounds checks, then applies them in
// reverse so overlapping set_ranges resolve to the oldest image. The scan
// is idempotent — re-running after an interrupted recovery replays the
// same restores.
func (e *v3) undoScan(s *Store) error {
	seq := s.acc.ReadU64(s.control.Base + ctlCommitSeq)
	want := uint16(seq + 1)
	type recRef struct{ base, n, dataOff int }
	var recs []recRef
	for off := 0; off+v3HdrSize <= e.logReg.Size(); {
		addr := e.logReg.Base + uint64(off)
		base := int(s.acc.ReadU32(addr))
		lenTag := s.acc.ReadU32(addr + 4)
		if uint16(lenTag>>16) != want {
			break // stale, zero, or never-delivered record: end of scan
		}
		n := int(lenTag & 0xFFFF)
		if n <= 0 || base < 0 || base+n > s.cfg.DBSize || off+v3HdrSize+pad8(n) > e.logReg.Size() {
			break // torn header inside the 1-safe window
		}
		recs = append(recs, recRef{base: base, n: n, dataOff: off + v3HdrSize})
		off += v3HdrSize + pad8(n)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		s.acc.Copy(s.dbAddr(r.base), e.logReg.Base+uint64(r.dataOff), r.n, mem.CatModified)
	}
	e.tail = 0
	return nil
}

func (e *v3) recoverInFlight(s *Store) error { return e.undoScan(s) }

// recoverBackup is identical: the log is replicated and the tag discipline
// already rejects bytes the SAN never delivered.
func (e *v3) recoverBackup(s *Store) error { return e.undoScan(s) }

func pad8(n int) int { return (n + 7) &^ 7 }

var _ engine = (*v3)(nil)
