package vista

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/rio"
)

// v0 is the original Vista design (paper Section 4.1): on set_range, an
// undo record and a data area are allocated from the persistent heap, the
// current contents are copied into the area, and the record is pushed onto
// a linked list rooted in the control region. Every allocation, free and
// list operation writes heap metadata — which, in the straightforward
// primary-backup configuration, is all doubled onto the SAN. That metadata
// storm is the paper's Table 2.
//
// Undo record layout (payload of a 40-byte heap allocation):
//
//	[+0]  next    absolute address of next record (0 = end of list)
//	[+8]  base    database offset of the range
//	[+16] len     range length in bytes
//	[+24] dataPtr absolute address of the saved before-image
//	[+32] txnID   tag: committed-count-plus-one of the writing txn
//
// Like Version 3, records carry a transaction-id tag so takeover on a
// backup can reject records whose bytes never fully reached it (heap
// stores are scattered, so — unlike the sequential undo log — delivery
// order is not a prefix; the tag plus bounds checks stop the walk at the
// first inconsistent record, bounding the damage to the paper's 1-safe
// window).
type v0 struct {
	heap    *rio.Heap
	heapReg *mem.Region
	txnID   uint64
}

const v0RecSize = 40

func newV0(s *Store, format bool) (*v0, error) {
	reg, err := s.mem.Lookup(RegionHeap)
	if err != nil {
		return nil, err
	}
	e := &v0{heapReg: reg}
	if format {
		e.heap, err = rio.NewHeap(s.acc, reg, reg.Base, reg.Size())
	} else {
		e.heap, err = rio.OpenHeap(s.acc, reg, reg.Base)
	}
	if err != nil {
		return nil, err
	}
	return e, nil
}

func (e *v0) begin(s *Store) {
	e.txnID = s.acc.ReadU64(s.control.Base+ctlCommitSeq) + 1
}

func (e *v0) setRange(s *Store, off, n int) error {
	rec, err := e.heap.Alloc(v0RecSize)
	if err != nil {
		return fmt.Errorf("vista: v0 undo record: %w", err)
	}
	area, err := e.heap.Alloc(n)
	if err != nil {
		return fmt.Errorf("vista: v0 undo area: %w", err)
	}
	// Save the before-image.
	s.acc.Copy(area, s.dbAddr(off), n, mem.CatUndo)

	// Fill the record and push it on the undo list (newest first, so
	// reverse-chronological undo falls out of list order).
	head := s.acc.ReadU64(s.control.Base + ctlRoot)
	s.acc.Charge(s.acc.Params.ListOp)
	s.acc.WriteU64(rec+0, head, mem.CatMeta)
	s.acc.WriteU64(rec+8, uint64(off), mem.CatMeta)
	s.acc.WriteU64(rec+16, uint64(n), mem.CatMeta)
	s.acc.WriteU64(rec+24, area, mem.CatMeta)
	s.acc.WriteU64(rec+32, e.txnID, mem.CatMeta)
	s.acc.WriteU64(s.control.Base+ctlRoot, rec, mem.CatMeta)
	return nil
}

func (e *v0) commit(s *Store) error {
	// Detach the list and advance the committed count first — both live
	// in the same control-region cache block, so they travel to the
	// backup in one packet and form the atomic commit point.
	head := s.acc.ReadU64(s.control.Base + ctlRoot)
	s.acc.WriteU64(s.control.Base+ctlRoot, 0, mem.CatMeta)
	s.bumpCommitSeq()

	for rec := head; rec != 0; {
		s.acc.Charge(s.acc.Params.ListOp)
		next := s.acc.ReadU64(rec + 0)
		area := s.acc.ReadU64(rec + 24)
		e.heap.Free(area)
		e.heap.Free(rec)
		rec = next
	}
	return nil
}

func (e *v0) abort(s *Store) error {
	restored, err := e.undoWalk(s)
	if err != nil {
		return err
	}
	// Release the records (safe after the root was cleared by undoWalk).
	for _, rec := range restored {
		area := s.acc.ReadU64(rec + 24)
		e.heap.Free(area)
		e.heap.Free(rec)
	}
	return nil
}

// undoWalk restores before-images from the undo list (newest first), then
// clears the root. It validates every record against the heap region, the
// database bounds and the in-flight transaction tag, stopping at the first
// inconsistency: on a backup, such a record simply never finished arriving
// (1-safe window); locally it cannot occur. It returns the records walked.
func (e *v0) undoWalk(s *Store) ([]uint64, error) {
	seq := s.acc.ReadU64(s.control.Base + ctlCommitSeq)
	want := seq + 1
	maxRecs := e.heapReg.Size()/v0RecSize + 1

	head := s.acc.ReadU64(s.control.Base + ctlRoot)
	var walked []uint64
	for rec := head; rec != 0 && len(walked) < maxRecs; {
		if !e.heapReg.Contains(rec, v0RecSize) {
			break
		}
		s.acc.Charge(s.acc.Params.ListOp)
		next := s.acc.ReadU64(rec + 0)
		base := s.acc.ReadU64(rec + 8)
		n := s.acc.ReadU64(rec + 16)
		area := s.acc.ReadU64(rec + 24)
		tag := s.acc.ReadU64(rec + 32)
		if tag != want || n == 0 || base+n > uint64(s.cfg.DBSize) || !e.heapReg.Contains(area, int(n)) {
			break
		}
		s.acc.Copy(s.dbAddr(int(base)), area, int(n), mem.CatModified)
		walked = append(walked, rec)
		rec = next
	}
	s.acc.WriteU64(s.control.Base+ctlRoot, 0, mem.CatMeta)
	return walked, nil
}

func (e *v0) recoverInFlight(s *Store) error {
	if _, err := e.undoWalk(s); err != nil {
		return err
	}
	// A crash in the middle of commit- or abort-time frees can leave the
	// heap's free list inconsistent. The heap holds no live data between
	// transactions (only undo state, which was just released), so
	// recovery reformats it — Vista's recovery performs the equivalent
	// cleanup of its Rio heap.
	heap, err := rio.NewHeap(s.acc, e.heapReg, e.heapReg.Base, e.heapReg.Size())
	if err != nil {
		return err
	}
	e.heap = heap
	return nil
}

// recoverBackup is identical to local recovery: the heap and list are
// replicated, and the tag/bounds validation already rejects partially
// delivered records.
func (e *v0) recoverBackup(s *Store) error { return e.recoverInFlight(s) }

var _ engine = (*v0)(nil)
