// Package vista implements the paper's transaction server: the RVM-style
// API (begin_transaction, set_range, commit_transaction, abort_transaction;
// Section 2.1) over Rio-style reliable memory, in the four restructured
// versions the paper compares (Section 4):
//
//	Version 0 — Vista's original design: undo records allocated from a
//	            persistent heap and chained on a linked list.
//	Version 1 — mirroring by copying: a set-range coordinate array plus a
//	            full mirror copy of the database, updated by copying the
//	            set-range areas on commit.
//	Version 2 — mirroring by diffing: as Version 1, but on commit the
//	            database and mirror are compared and only differing words
//	            are written to the mirror.
//	Version 3 — improved logging: a bump-pointer undo log holding the
//	            before-images inline with their headers.
//
// One deviation from Vista's raw-pointer interface: application reads and
// writes go through Store/Tx methods instead of direct loads and stores, so
// the simulator can charge cache costs and double writes onto the SAN. The
// set-range discipline is enforced: a transactional write outside every
// declared range is an error.
package vista

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// Version selects one of the paper's four engine designs.
type Version int

// Engine versions, numbered as in the paper.
const (
	V0Vista Version = iota
	V1MirrorCopy
	V2MirrorDiff
	V3InlineLog
)

// String returns the paper's name for the version.
func (v Version) String() string {
	switch v {
	case V0Vista:
		return "Version 0 (Vista)"
	case V1MirrorCopy:
		return "Version 1 (Mirror by Copy)"
	case V2MirrorDiff:
		return "Version 2 (Mirror by Diff)"
	case V3InlineLog:
		return "Version 3 (Improved Log)"
	default:
		return fmt.Sprintf("Version(%d)", int(v))
	}
}

// Valid reports whether v is a defined version.
func (v Version) Valid() bool { return v >= V0Vista && v <= V3InlineLog }

// API misuse and resource errors.
var (
	// ErrTxActive is returned by Begin while a transaction is open: the
	// paper's API leaves concurrency control to a separate layer, so a
	// Store serves one transaction at a time.
	ErrTxActive = errors.New("vista: transaction already active")
	// ErrTxDone is returned by operations on a committed or aborted Tx.
	ErrTxDone = errors.New("vista: transaction already completed")
	// ErrOutOfRange is returned by Tx.Write for bytes not covered by any
	// SetRange of the transaction.
	ErrOutOfRange = errors.New("vista: write outside any declared set_range")
	// ErrBounds is returned for accesses outside the database.
	ErrBounds = errors.New("vista: access outside database bounds")
	// ErrCrashed is returned once the store's node has crashed.
	ErrCrashed = errors.New("vista: store has crashed")
)

// Config sizes a Store.
type Config struct {
	// Version selects the engine design.
	Version Version
	// DBSize is the database size in bytes (the paper's default is 50 MB).
	DBSize int
	// HeapSize is the Version 0 persistent heap size (default 4 MB).
	HeapSize int
	// LogSize is the Version 3 undo log size (default 1 MB).
	LogSize int
	// SRMax is the Version 1/2 set-range array capacity (default 1024).
	SRMax int
	// SparseDB backs the database (and mirror) with page-on-demand
	// storage for the large-database experiment (paper Table 8).
	SparseDB bool
	// UncheckedWrites disables set-range enforcement on Tx.Write,
	// matching Vista's raw (unchecked) memory interface.
	UncheckedWrites bool
}

// withDefaults fills in unset sizes.
func (c Config) withDefaults() (Config, error) {
	if !c.Version.Valid() {
		return c, fmt.Errorf("vista: invalid version %d", int(c.Version))
	}
	if c.DBSize <= 0 {
		return c, fmt.Errorf("vista: invalid database size %d", c.DBSize)
	}
	if c.HeapSize == 0 {
		c.HeapSize = 4 << 20
	}
	if c.LogSize == 0 {
		c.LogSize = 1 << 20
	}
	if c.SRMax == 0 {
		c.SRMax = 1024
	}
	return c, nil
}

// Region names used by every Store.
const (
	RegionControl = "control"
	RegionDB      = "db"
	RegionHeap    = "heap"
	RegionMirror  = "mirror"
	RegionSRArray = "srarray"
	RegionUndoLog = "undolog"
)

// RegionSpec describes one region a Store needs; the replication layer (or
// the standalone constructor) materializes the specs into two address
// spaces with identical layout.
type RegionSpec struct {
	Name string
	Size int
	// Sparse requests page-on-demand backing.
	Sparse bool
	// Replicated regions are mapped write-through in the passive
	// primary-backup configuration. The set-range array is deliberately
	// not replicated: the paper's Section 5.1 optimization trades it for
	// a full mirror-to-database copy at takeover.
	Replicated bool
}

// regionAlign keeps region bases L3-sized-aligned so large structures
// (database, mirror) conflict in the direct-mapped board cache exactly as
// same-sized structures would on the real machine.
const regionAlign = 8 << 20

// Layout returns the region set for a configuration, in allocation order.
func Layout(cfg Config) ([]RegionSpec, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	specs := []RegionSpec{
		{Name: RegionControl, Size: 4096, Replicated: true},
		{Name: RegionDB, Size: cfg.DBSize, Sparse: cfg.SparseDB, Replicated: true},
	}
	switch cfg.Version {
	case V0Vista:
		specs = append(specs, RegionSpec{Name: RegionHeap, Size: cfg.HeapSize, Replicated: true})
	case V1MirrorCopy, V2MirrorDiff:
		specs = append(specs,
			RegionSpec{Name: RegionMirror, Size: cfg.DBSize, Sparse: cfg.SparseDB, Replicated: true},
			RegionSpec{Name: RegionSRArray, Size: 16 + 16*cfg.SRMax, Replicated: false},
		)
	case V3InlineLog:
		specs = append(specs, RegionSpec{Name: RegionUndoLog, Size: cfg.LogSize, Replicated: true})
	}
	return specs, nil
}

// dirtyPage is the dirty-tracking granule: the delta of a resumed replica
// is measured and shipped in pages of this size.
const dirtyPage = 4096

// pageStagger offsets successive region bases by an odd number of pages so
// that regions do not artificially collide in page-indexed structures; real
// virtual layouts are not megabyte-aligned across segments.
const pageStagger = 13 * 8 << 10

// PlaceRegions materializes specs into a space starting at the given base,
// returning the first address past the last region (aligned).
func PlaceRegions(space *mem.Space, specs []RegionSpec, base uint64) (uint64, error) {
	for i, sp := range specs {
		var b mem.Backing
		if sp.Sparse {
			b = mem.NewSparse(sp.Size)
		} else {
			b = mem.NewDense(sp.Size)
		}
		r := mem.NewRegion(sp.Name, base+uint64(i+1)*pageStagger, b)
		r.WriteThrough = sp.Replicated
		// Every engine region is dirty-tracked so a briefly-partitioned
		// replica can be delta-resynced: the tracker stamps written pages,
		// and re-enrollment ships only the pages stamped after the
		// replica's gating epoch (see replication's online repair).
		r.Dirty = mem.NewDirtyLog(sp.Size, dirtyPage)
		if err := space.Add(r); err != nil {
			return 0, err
		}
		base = r.End() + regionAlign - 1
		base &^= regionAlign - 1
		base += regionAlign // guard gap
	}
	return base, nil
}
