package harness

import (
	"fmt"
	"runtime"
	"sort"

	"repro"
	"repro/internal/replication"
	"repro/internal/tpc"
	"repro/internal/vista"
)

// Beyond-the-paper capability experiments: the N-replica group's
// replication-degree/safety trade-off and the sharded front-end's
// throughput scaling. Registered separately from the paper's exhibits
// (Extensions) so `replbench -experiment all` shows them after the tables.
func init() {
	register(Experiment{
		ID:    "repl-degree",
		Title: "Active-group throughput vs replication degree and commit safety",
		Run:   runReplDegree,
	})
	register(Experiment{
		ID:    "shard-scaling",
		Title: "Aggregate throughput vs shard count (sharded cluster front-end)",
		Run:   runShardScaling,
	})
	register(Experiment{
		ID:    "parallel-shards",
		Title: "Wall-clock throughput vs shard count (concurrent clients)",
		Run:   runParallelShards,
	})
	register(Experiment{
		ID:    "group-commit",
		Title: "Group-commit batch size vs commit-safety cost",
		Run:   runGroupCommit,
	})
}

// runReplDegree sweeps the backup count K for each commit-safety level on
// the active scheme: 1-safe throughput is nearly flat in K (one broadcast,
// no waiting), quorum pays the median backup's round trip, 2-safe the
// slowest backup's.
func runReplDegree(cfg RunConfig) (*Table, error) {
	maxK := cfg.Backups
	if maxK < 1 {
		maxK = 3
	}
	t := &Table{
		ID:      "repl-degree",
		Title:   "Active-group Debit-Credit throughput (txns/sec) by backups K and commit safety",
		Headers: []string{"Backups", "1-safe", "quorum", "2-safe", "quorum acks"},
		Notes: append(runNotes(cfg),
			"quorum = ceil((K+1)/2) backup acks; an acked commit survives the primary plus any minority of backups"),
	}
	for k := 1; k <= maxK; k++ {
		row := []string{fmt.Sprintf("%d", k)}
		for _, s := range []replication.Safety{replication.OneSafe, replication.QuorumSafe, replication.TwoSafe} {
			group, err := replication.NewGroup(replication.Config{
				Mode:    replication.Active,
				Store:   vista.Config{Version: vista.V3InlineLog, DBSize: cfg.DBSize},
				Backups: k,
				Safety:  s,
			})
			if err != nil {
				return nil, err
			}
			w, err := tpc.NewDebitCredit(cfg.DBSize)
			if err != nil {
				return nil, err
			}
			res, err := tpc.Run(group, w, tpc.Options{
				Txns: cfg.DCTxns, Warmup: cfg.Warmup, Seed: cfg.Seed, WarmCache: true,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, f0(res.TPS))
		}
		row = append(row, fmt.Sprintf("%d", replication.QuorumAcks(k)))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// shardCounts returns the sweep for the shard-scaling experiment: the
// powers of two up to (and always including) the configured shard count.
func shardCounts(cfg RunConfig) []int {
	want := cfg.Shards
	if want < 1 {
		want = 4
	}
	set := map[int]bool{1: true, want: true}
	for n := 2; n < want; n *= 2 {
		set[n] = true
	}
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// runShardScaling drives the same total transaction count against 1..N
// shards of the sharded cluster front-end. Shards are independent replica
// groups on disjoint hardware, so the run's wall-clock is the slowest
// shard's simulated time and aggregate txn/s grows with the shard count.
func runShardScaling(cfg RunConfig) (*Table, error) {
	backups := cfg.Backups
	if backups < 1 {
		backups = 1
	}
	t := &Table{
		ID:      "shard-scaling",
		Title:   "Aggregate Debit-Credit throughput (txns/sec) vs shard count",
		Headers: []string{"Shards", "Aggregate txn/s", "Per-shard txn/s", "Speedup"},
		Notes: append(runNotes(cfg),
			fmt.Sprintf("same total transaction count per row, striped round-robin across shards (active backup, K=%d, %s commit)",
				backups, cfg.Safety)),
	}
	txns := cfg.DCTxns
	if txns > 20_000 {
		txns = 20_000 // the sweep repeats the work per row
	}
	var base float64
	for _, shards := range shardCounts(cfg) {
		tps, err := shardCell(cfg, shards, txns)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = tps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards), f0(tps), f0(tps / float64(shards)),
			fmt.Sprintf("%.2fx", tps/base),
		})
	}
	return t, nil
}

// shardCell measures one shard count through the same tpc.RunSharded
// driver every concurrent run uses (one client goroutine keeps the cell
// deterministic), dividing the row's transaction budget evenly across the
// shards: throughput is aggregated over the slowest shard's clock.
func shardCell(cfg RunConfig, shards int, txns int64) (float64, error) {
	sc, err := repro.NewSharded(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  cfg.DBSize,
		Backups: cfg.Backups,
		Safety:  repro.Safety(cfg.Safety),
	}, shards)
	if err != nil {
		return 0, err
	}
	perShard := txns / int64(shards)
	if perShard < 1 {
		perShard = 1
	}
	warm := cfg.Warmup / int64(shards)
	if warm > perShard {
		warm = perShard
	}
	res, err := tpc.RunSharded(sc, func(dbSize int) (tpc.Workload, error) {
		return tpc.NewDebitCredit(dbSize)
	}, tpc.Options{Txns: perShard, Warmup: warm, Seed: cfg.Seed, Clients: 1})
	if err != nil {
		return 0, err
	}
	if res.TPS <= 0 {
		return 0, fmt.Errorf("harness: shard cell consumed no simulated time")
	}
	return res.TPS, nil
}

// runParallelShards is the wall-clock face of shard scaling: the same
// per-shard work driven by concurrent client goroutines (tpc.RunSharded),
// one stream per shard, reporting how fast the simulator itself runs when
// shards execute on independent goroutines. Sim txn/s is the paper-style
// metric (slowest shard's simulated clock); wall txn/s scales with
// min(shards, GOMAXPROCS) on the host.
func runParallelShards(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:    "parallel-shards",
		Title: "Debit-Credit throughput vs shard count, concurrent clients (wall clock)",
		Headers: []string{"Shards", "Clients", "Wall txn/s", "Wall speedup",
			"Sim txn/s", "Wall ms"},
		Notes: append(runNotes(cfg),
			"per-shard transaction count held constant across rows; wall speedup is relative to 1 shard",
			fmt.Sprintf("host GOMAXPROCS=%d — wall speedup saturates at min(shards, GOMAXPROCS)", runtime.GOMAXPROCS(0))),
	}
	txns := cfg.DCTxns
	if txns > 10_000 {
		txns = 10_000 // per shard; the sweep repeats the work per row
	}
	warm := cfg.Warmup
	if warm > txns {
		warm = txns
	}
	var base float64
	for _, shards := range shardCounts(cfg) {
		sc, err := repro.NewSharded(repro.Config{
			Version: repro.V3InlineLog,
			Backup:  repro.ActiveBackup,
			DBSize:  cfg.DBSize,
			Backups: cfg.Backups,
			Safety:  repro.Safety(cfg.Safety),
		}, shards)
		if err != nil {
			return nil, err
		}
		res, err := tpc.RunSharded(sc, func(dbSize int) (tpc.Workload, error) {
			return tpc.NewDebitCredit(dbSize)
		}, tpc.Options{Txns: txns, Warmup: warm, Seed: cfg.Seed, Clients: cfg.Clients})
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.WallTPS
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%d", res.Clients),
			f0(res.WallTPS),
			fmt.Sprintf("%.2fx", res.WallTPS/base),
			f0(res.TPS),
			fmt.Sprintf("%.0f", res.WallElapsed.Seconds()*1e3),
		})
	}
	return t, nil
}

// runGroupCommit sweeps the group-commit batch size under each commit
// safety level on the active scheme: 1-safe gains only the amortized
// pointer publish, while quorum and 2-safe amortize the acknowledgement
// round trip — the batched generalization of the paper's "commit does not
// wait" argument.
func runGroupCommit(cfg RunConfig) (*Table, error) {
	batches := []int{1, 4, 16}
	if cfg.CommitBatch > 1 {
		batches = append(batches, cfg.CommitBatch)
		sort.Ints(batches)
	}
	t := &Table{
		ID:      "group-commit",
		Title:   "Active-group Debit-Credit throughput (txns/sec) by commit batch and safety",
		Headers: []string{"Batch", "1-safe", "quorum", "2-safe"},
		Notes: append(runNotes(cfg),
			"K=3 backups; batch 1 = group commit off; commits in an unflushed batch at a crash are lost (batched 1-safe window)"),
	}
	txns := cfg.DCTxns
	if txns > 20_000 {
		txns = 20_000
	}
	for _, batch := range batches {
		row := []string{fmt.Sprintf("%d", batch)}
		for _, s := range []replication.Safety{replication.OneSafe, replication.QuorumSafe, replication.TwoSafe} {
			group, err := replication.NewGroup(replication.Config{
				Mode:        replication.Active,
				Store:       vista.Config{Version: vista.V3InlineLog, DBSize: cfg.DBSize},
				Backups:     3,
				Safety:      s,
				CommitBatch: batch,
			})
			if err != nil {
				return nil, err
			}
			w, err := tpc.NewDebitCredit(cfg.DBSize)
			if err != nil {
				return nil, err
			}
			res, err := tpc.Run(group, w, tpc.Options{
				Txns: txns, Warmup: cfg.Warmup, Seed: cfg.Seed, WarmCache: true,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, f0(res.TPS))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
