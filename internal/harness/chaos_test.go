package harness

import (
	"strings"
	"testing"
)

// TestChaosCell regenerates the chaos exhibit at a reduced scale and
// checks its shape: one row per detected fault, MTTD within the
// configured bound, and every event eventually restored.
func TestChaosCell(t *testing.T) {
	skipShort(t)
	cfg := testConfig()
	cfg.SMPDBSize = 4 << 20 // keep the healing transfers short
	cfg.ChaosEvents = 2
	tbl, err := registry["chaos"].Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("chaos cell produced no events")
	}
	// MTTD column stays under the suspect-timeout + heartbeat bound the
	// cell configures (250 us).
	for i := range tbl.Rows {
		if mttd := cell(t, tbl, i, 4); mttd <= 0 || mttd > 250 {
			t.Errorf("event %d MTTD %.1f us outside (0, 250]", i, mttd)
		}
		if mttr := cell(t, tbl, i, 7); mttr <= 0 {
			t.Errorf("event %d never restored", i)
		}
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "zero manual Failover/Repair calls") {
			found = true
		}
	}
	if !found {
		t.Error("chaos cell notes missing the unattended statement")
	}
}
