package harness

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/tpc"
)

// The chaos experiment is the autopilot's acceptance run: a seeded,
// unattended fault schedule (crash the primary, crash a backup, crash the
// primary mid-repair) lands on a self-healing cluster, and the cell reports
// what a production replica manager would page on — per-event detection
// latency (MTTD), failover latency, repair duration and time-to-restored
// (MTTR) — next to the windowed throughput the cluster kept delivering.
func init() {
	register(Experiment{
		ID:    "chaos",
		Title: "Unattended fault schedule: detection, failover and repair latencies",
		Run:   runChaos,
	})
}

func runChaos(cfg RunConfig) (*Table, error) {
	db := cfg.SMPDBSize
	if db <= 0 {
		db = 10 << 20
	}
	backups := cfg.Backups
	if backups < 2 {
		backups = 3
	}
	events := cfg.ChaosEvents
	if events <= 0 {
		events = 4
	}
	hb := 50 * time.Microsecond
	suspect := 200 * time.Microsecond
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  db,
		Backups: backups,
		Safety:  repro.Safety(cfg.Safety),
		Autopilot: repro.AutopilotConfig{
			HeartbeatPeriod: hb,
			SuspectTimeout:  suspect,
			AutoFailover:    true,
			AutoRepair:      true,
			Spares:          2 * events,
		},
	})
	if err != nil {
		return nil, err
	}
	w, err := tpc.NewDebitCredit(db)
	if err != nil {
		return nil, err
	}
	warm := cfg.Warmup
	if warm > 2000 {
		warm = 2000
	}
	res, err := tpc.RunChaos(c, w, tpc.ChaosOptions{
		Window: 5 * time.Millisecond,
		Events: events,
		Warmup: warm,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	ms := func(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()*1e3) }
	us := func(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()*1e6) }
	t := &Table{
		ID:      "chaos",
		Title:   "Unattended chaos run: per-event fault timeline (Debit-Credit workload)",
		Headers: []string{"Event", "Kind", "Node", "Failed (ms)", "MTTD (us)", "Failover (us)", "Repair (ms)", "MTTR (ms)"},
		Notes: append(runNotes(cfg),
			fmt.Sprintf("active backup, K=%d, %s commit, %d MB database, autopilot: heartbeat %v, suspect %v, %d spares",
				backups, cfg.Safety, db>>20, hb, suspect, 2*events),
			fmt.Sprintf("schedule: %d seeded injections (%s); zero manual Failover/Repair calls", len(res.Injected), injectedKinds(res.Injected)),
			fmt.Sprintf("detection: mean MTTD %s us (max %s, bound %s); restoration: %d/%d events, mean MTTR %s ms (max %s)",
				us(res.MeanMTTD), us(res.MaxMTTD), us(suspect+hb), res.Restored, len(res.Events), ms(res.MeanMTTR), ms(res.MaxMTTR)),
			fmt.Sprintf("throughput: healthy %.0f txn/s, worst window %.0f txn/s (%.0f%% of baseline), %d committed",
				res.BaseTPS, res.MinTPS, 100*res.MinTPS/res.BaseTPS, res.Committed),
		),
	}
	for i, e := range res.Events {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i),
			e.Kind,
			e.Node,
			ms(e.FailedAt),
			us(e.MTTD()),
			us(e.FailoverLatency()),
			ms(e.RepairDuration()),
			ms(e.MTTR()),
		})
	}
	return t, nil
}

func injectedKinds(faults []tpc.InjectedFault) string {
	s := ""
	for i, f := range faults {
		if i > 0 {
			s += ", "
		}
		s += f.Kind
	}
	return s
}
