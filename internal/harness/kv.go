package harness

import (
	"fmt"

	"repro"
	"repro/internal/tpc"
)

// The kv experiment exercises the redesigned API stack end to end: the
// typed key-value layer (repro/kv) laid out inside the replicated bytes,
// driven by the YCSB-style mixes of tpc.RunKV — and, because the driver
// sees only the DB interface, the same cell runs over both facades. The
// per-row comparison is the redesign's point: a Cluster and a sharded
// front-end serve the identical typed workload, and the sharded rows pay
// the kv layer's two-phase record-then-flip commit in exchange for
// torn-write safety across shard boundaries.
func init() {
	register(Experiment{
		ID:    "kv",
		Title: "Replicated key-value store: YCSB-style mixes over the DB interface",
		Run:   runKV,
	})
}

func runKV(cfg RunConfig) (*Table, error) {
	db := cfg.SMPDBSize
	if db <= 0 {
		db = 8 << 20
	}
	backups := cfg.Backups
	if backups < 1 {
		backups = 2
	}
	ops := cfg.KVOps
	if ops <= 0 {
		ops = 20_000
	}
	records := cfg.KVRecords
	if records <= 0 {
		records = 5_000
	}
	warm := ops / 10

	t := &Table{
		ID:      "kv",
		Title:   "Key-value YCSB-style mixes (kv layer over repro.DB)",
		Headers: []string{"Deployment", "Mix", "ops/s", "Reads", "Updates", "Inserts", "Scans", "SAN B/op"},
		Notes: append(runNotes(cfg),
			fmt.Sprintf("active backup, K=%d, %s commit, %d MB database, %d records preloaded, %d measured ops per cell",
				backups, cfg.Safety, db>>20, records, ops),
			"read-heavy = 95/5 read/update (YCSB-B), update-heavy = 50/50 (YCSB-A), scan = 95/5 scan/insert (YCSB-E)",
			"one driver, one storage abstraction: the sharded rows run the identical code path through repro.DB"),
	}
	deployments := []struct {
		name   string
		shards int
	}{
		{"cluster", 1},
		{"sharded-4", 4},
	}
	for _, d := range deployments {
		for _, mix := range tpc.KVMixes() {
			cfgc := repro.Config{
				Version: repro.V3InlineLog,
				Backup:  repro.ActiveBackup,
				DBSize:  db,
				Backups: backups,
				Safety:  repro.Safety(cfg.Safety),
			}
			var dep repro.DB
			var err error
			if d.shards == 1 {
				dep, err = repro.New(cfgc)
			} else {
				dep, err = repro.NewSharded(cfgc, d.shards)
			}
			if err != nil {
				return nil, err
			}
			res, err := tpc.RunKV(dep, tpc.KVOptions{
				Mix: mix, Records: records, Ops: ops, Warmup: warm, Seed: cfg.Seed,
				ScanLen: cfg.KVScanLen,
			})
			if err != nil {
				return nil, fmt.Errorf("harness: kv %s/%s: %w", d.name, mix, err)
			}
			t.Rows = append(t.Rows, []string{
				d.name,
				mix,
				f0(res.OPS),
				fmt.Sprintf("%d", res.Reads),
				fmt.Sprintf("%d", res.Updates),
				fmt.Sprintf("%d", res.Inserts),
				fmt.Sprintf("%d", res.Scans),
				f1(res.BytesPerOp()),
			})
		}
	}
	return t, nil
}
