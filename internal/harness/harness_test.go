package harness

import (
	"strconv"
	"strings"
	"testing"
)

// skipShort drops the heaviest exhibit regenerations under -short (the
// race-detector run multiplies every simulated transaction's cost).
func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy exhibit regeneration skipped in -short mode")
	}
}

// testConfig is small enough for CI but large enough that the paper's
// qualitative orderings hold.
func testConfig() RunConfig {
	return RunConfig{
		DBSize:     16 << 20,
		DCTxns:     6000,
		OETxns:     2500,
		Warmup:     600,
		Seed:       1,
		SMPStreams: []int{1, 2, 4},
		SMPDBSize:  10 << 20,
	}
}

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tbl, err := e.Run(testConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return tbl
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "table1", "table2", "table3", "table4", "table5",
		"table6", "table7", "table8", "fig2", "fig3"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d is %s, want %s (exhibit order)", i, all[i].ID, id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus experiment found")
	}
}

func TestFig1Shape(t *testing.T) {
	tbl := runExp(t, "fig1")
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	prev := 0.0
	for i := range tbl.Rows {
		bw := cell(t, tbl, i, 1)
		if bw <= prev {
			t.Fatalf("bandwidth not increasing with packet size: %v", tbl.Rows)
		}
		prev = bw
	}
	if got := cell(t, tbl, 3, 1); got < 78 || got > 82 {
		t.Fatalf("32-byte bandwidth %.1f, want ~80 (paper)", got)
	}
}

func TestTable1Shape(t *testing.T) {
	skipShort(t)
	tbl := runExp(t, "table1")
	for col := 1; col <= 2; col++ {
		single, pb := cell(t, tbl, 0, col), cell(t, tbl, 1, col)
		if ratio := single / pb; ratio < 2 {
			t.Errorf("%s: straightforward port dropped throughput only %.2fx (paper: 5.6x/2.7x)",
				tbl.Headers[col], ratio)
		}
	}
}

func TestTable2MetadataDominates(t *testing.T) {
	tbl := runExp(t, "table2")
	// Rows: modified, undo, meta, total.
	for col := 1; col <= 2; col++ {
		mod, undo, meta, total := cell(t, tbl, 0, col), cell(t, tbl, 1, col), cell(t, tbl, 2, col), cell(t, tbl, 3, col)
		if meta < mod+undo {
			t.Errorf("col %d: metadata (%.0f) does not dominate data (%.0f) — paper's core Table 2 finding",
				col, meta, mod+undo)
		}
		if diff := total - (mod + undo + meta); diff > 0.5 || diff < -0.5 {
			t.Errorf("col %d: total %.1f != sum %.1f", col, total, mod+undo+meta)
		}
	}
}

func TestTable3StandaloneOrdering(t *testing.T) {
	tbl := runExp(t, "table3")
	// Paper: V3 > V1 > V2 > V0 for both benchmarks.
	for col := 1; col <= 2; col++ {
		v0, v1, v2, v3 := cell(t, tbl, 0, col), cell(t, tbl, 1, col), cell(t, tbl, 2, col), cell(t, tbl, 3, col)
		if !(v3 > v1 && v1 > v2 && v2 > v0) {
			t.Errorf("%s standalone ordering V3>V1>V2>V0 violated: %v/%v/%v/%v",
				tbl.Headers[col], v0, v1, v2, v3)
		}
	}
}

func TestTable4PassiveOrdering(t *testing.T) {
	tbl := runExp(t, "table4")
	// The robust paper claims: V0 collapses; V3 wins Debit-Credit by a
	// clear margin; every restructured version beats V0.
	for col := 1; col <= 2; col++ {
		v0 := cell(t, tbl, 0, col)
		for row := 1; row <= 3; row++ {
			if cell(t, tbl, row, col) < 2*v0 {
				t.Errorf("%s: restructured version row %d not clearly above V0", tbl.Headers[col], row)
			}
		}
	}
	v1, v2, v3 := cell(t, tbl, 1, 1), cell(t, tbl, 2, 1), cell(t, tbl, 3, 1)
	if !(v3 > v1 && v3 > v2) {
		t.Errorf("Debit-Credit passive: V3 (%v) must beat both mirroring versions (%v, %v)", v3, v1, v2)
	}
	if v2 < v1*0.93 {
		t.Errorf("Debit-Credit passive: V2 (%v) far below V1 (%v); paper has V2 >= V1", v2, v1)
	}
}

func TestTable5LoggingShipsMoreThanDiff(t *testing.T) {
	tbl := runExp(t, "table5")
	// Rows: DC x {V0..V3}, OE x {V0..V3}; columns: bench, version,
	// modified, undo, meta, total. The paper's headline: V3's total
	// exceeds V2's, yet V3 wins Table 4.
	for _, base := range []int{0, 4} {
		v2 := cell(t, tbl, base+2, 5)
		v3 := cell(t, tbl, base+3, 5)
		v0 := cell(t, tbl, base+0, 5)
		if v3 <= v2 {
			t.Errorf("rows %d: V3 total (%v) not above V2 (%v)", base, v3, v2)
		}
		if v0 <= v3 {
			t.Errorf("rows %d: V0 total (%v) not the largest", base, v0)
		}
	}
	// V1's metadata is tiny (the set-range array is not replicated).
	if meta := cell(t, tbl, 1, 4); meta > 16 {
		t.Errorf("V1 metadata %.1f B/txn, want <= 16 (paper: 8)", meta)
	}
}

func TestTable6ActiveWins(t *testing.T) {
	tbl := runExp(t, "table6")
	for col := 1; col <= 2; col++ {
		passive, active := cell(t, tbl, 0, col), cell(t, tbl, 1, col)
		if active <= passive {
			t.Errorf("%s: active (%v) does not beat best passive (%v)", tbl.Headers[col], active, passive)
		}
	}
}

func TestTable7ActiveShipsLess(t *testing.T) {
	tbl := runExp(t, "table7")
	for _, base := range []int{0, 2} {
		passive := cell(t, tbl, base, 5)
		active := cell(t, tbl, base+1, 5)
		if active >= passive {
			t.Errorf("rows %d: active total (%v) not below passive (%v)", base, active, passive)
		}
		if undo := cell(t, tbl, base+1, 3); undo != 0 {
			t.Errorf("active ships undo data (%v)", undo)
		}
	}
}

func TestTable8GracefulDegradation(t *testing.T) {
	skipShort(t)
	cfg := testConfig()
	cfg.DCTxns, cfg.OETxns = 4000, 1500
	e, _ := Lookup("table8")
	tbl, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 2; row++ {
		small, large := cell(t, tbl, row, 1), cell(t, tbl, row, 3)
		if large >= small {
			t.Errorf("%s: 1GB (%v) not below 10MB (%v)", tbl.Rows[row][0], large, small)
		}
		if large < small*0.5 {
			t.Errorf("%s: degradation %.0f%% is not graceful (paper: 13-22%%)",
				tbl.Rows[row][0], 100*(1-large/small))
		}
	}
}

func TestFig2SMPShape(t *testing.T) {
	skipShort(t)
	tbl := runExp(t, "fig2")
	// Columns: procs, Active, PassV3, PassV2, PassV1. The paper's robust
	// claims at the largest processor count: the active version is far
	// ahead of every passive one; passive logging is not below the
	// mirroring versions (our model has V3 and V2 saturating within a
	// few percent — see EXPERIMENTS.md); V1 trails.
	last := len(tbl.Rows) - 1
	active, v3, v2, v1 := cell(t, tbl, last, 1), cell(t, tbl, last, 2), cell(t, tbl, last, 3), cell(t, tbl, last, 4)
	if active < 1.4*v3 || active < 1.4*v2 {
		t.Errorf("active (%v) not clearly ahead of passives (%v, %v)", active, v3, v2)
	}
	if v3 < 0.97*v2 || v3 <= v1 {
		t.Errorf("passive logging (%v) fell below mirroring (%v, %v)", v3, v2, v1)
	}
	// Active scales: 4 CPUs at least 1.7x one CPU (paper: near-linear).
	if active < 1.7*cell(t, tbl, 0, 1) {
		t.Errorf("active backup does not scale: %v -> %v", cell(t, tbl, 0, 1), active)
	}
	// Passive versions saturate: growth from 2 to 4 CPUs is marginal.
	mid := 1 // row for 2 CPUs in the test config {1,2,4}
	for col := 2; col <= 4; col++ {
		if cell(t, tbl, last, col) > 1.25*cell(t, tbl, mid, col) {
			t.Errorf("passive column %d kept scaling past 2 CPUs: %v -> %v",
				col, cell(t, tbl, mid, col), cell(t, tbl, last, col))
		}
	}
}

func TestFig3SMPShape(t *testing.T) {
	skipShort(t)
	tbl := runExp(t, "fig3")
	last := len(tbl.Rows) - 1
	active := cell(t, tbl, last, 1)
	for col := 2; col <= 4; col++ {
		if active <= cell(t, tbl, last, col) {
			t.Errorf("Order-Entry: active (%v) not above passive column %d (%v)",
				active, col, cell(t, tbl, last, col))
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Headers: []string{"a", "bee"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	out := tbl.Render()
	for _, want := range []string{"T — demo", "a", "bee", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "a,bee\n1,2\n") {
		t.Errorf("CSV() = %q", csv)
	}
}

func TestAblationShapes(t *testing.T) {
	skipShort(t)
	cfg := testConfig()
	cfg.DCTxns = 3000

	// CPU-speed ablation: the write-through slowdown must SHRINK as the
	// processor slows — the paper's Section 9 resolution of the Zhou et
	// al. disagreement.
	e, ok := Lookup("ablation-cpu")
	if !ok {
		t.Fatal("ablation-cpu not registered")
	}
	tbl, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow := func(row int) float64 {
		return cell(t, tbl, row, 1) / cell(t, tbl, row, 2)
	}
	if !(slow(0) > slow(1) && slow(1) > slow(2)) {
		t.Fatalf("slowdown not decreasing with CPU speed: %.2f %.2f %.2f",
			slow(0), slow(1), slow(2))
	}
	if slow(2) > 2 {
		t.Fatalf("Pentium-era slowdown %.2fx, want <2x (Zhou et al. regime)", slow(2))
	}

	// Packet-cap ablation: V3 must lose its advantage below the 32-byte
	// full-line packet.
	e, _ = Lookup("ablation-packet")
	tbl, err = e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := len(tbl.Rows) - 1 // 32B row is last
	v3At32 := cell(t, tbl, first, 2) / cell(t, tbl, first, 1)
	v3At4 := cell(t, tbl, 0, 2) / cell(t, tbl, 0, 1)
	if v3At32 <= 1 {
		t.Fatalf("V3 not ahead at 32B packets (%.2fx)", v3At32)
	}
	if v3At4 >= 1 {
		t.Fatalf("V3 still ahead at 4B packets (%.2fx) — the full-line mechanism is broken", v3At4)
	}

	// 2-safe ablation: closing the window costs throughput.
	e, _ = Lookup("ablation-2safe")
	tbl, err = e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tbl, 1, 1) >= cell(t, tbl, 0, 1) {
		t.Fatal("2-safe commit did not cost throughput")
	}
}
