package harness

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/tpc"
)

// The availability experiment is the paper's headline concern made
// measurable end to end: windowed throughput across crash → failover →
// online repair → restored redundancy, with the repair's state transfer
// sharing the SAN with the live commit stream.
func init() {
	register(Experiment{
		ID:    "availability",
		Title: "Throughput timeline across crash, failover and online repair",
		Run:   runAvailability,
	})
}

// runAvailability measures the crash→failover→repair timeline on an
// active-scheme cluster. The database is kept at the SMP per-stream size
// so the repair transfer spans several windows instead of vanishing into
// one.
func runAvailability(cfg RunConfig) (*Table, error) {
	db := cfg.SMPDBSize
	if db <= 0 {
		db = 10 << 20
	}
	backups := cfg.Backups
	if backups < 1 {
		backups = 2
	}
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  db,
		Backups: backups,
		Safety:  repro.Safety(cfg.Safety),
	})
	if err != nil {
		return nil, err
	}
	w, err := tpc.NewDebitCredit(db)
	if err != nil {
		return nil, err
	}
	warm := cfg.Warmup
	if warm > 2000 {
		warm = 2000
	}
	res, err := tpc.RunAvailability(c, w, tpc.AvailabilityOptions{
		Window: 10 * time.Millisecond,
		Warmup: warm,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "availability",
		Title:   "Debit-Credit availability timeline (windowed txns/sec)",
		Headers: []string{"Window", "Phase", "Start (ms)", "Txns", "txn/s", "vs healthy"},
		Notes: append(runNotes(cfg),
			fmt.Sprintf("active backup, K=%d, %s commit, %d MB database, 10 ms windows", backups, cfg.Safety, db>>20),
			fmt.Sprintf("repair: %.1f ms, %.2f MB shipped; min window %.0f txn/s; restored quorum %.1f ms after the crash",
				res.RepairDur.Seconds()*1e3, float64(res.RepairBytes)/(1<<20), res.MinTPS,
				(res.RestoredAt-res.CrashAt).Seconds()*1e3),
		),
	}
	for i, win := range res.Windows {
		rel := 0.0
		if res.BaseTPS > 0 {
			rel = win.TPS / res.BaseTPS
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i),
			win.Phase,
			fmt.Sprintf("%.1f", win.Start.Seconds()*1e3),
			fmt.Sprintf("%d", win.Txns),
			f0(win.TPS),
			fmt.Sprintf("%.2fx", rel),
		})
	}
	return t, nil
}
