package harness

import (
	"fmt"

	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/tpc"
	"repro/internal/vista"
)

// Ablation experiments: the design-choice sensitivities DESIGN.md calls
// out. They go beyond the paper's exhibits to show *why* its conclusions
// hold — and where they would flip.
func init() {
	register(Experiment{
		ID:    "ablation-wbuf",
		Title: "Sensitivity to the number of coalescing write buffers",
		Run:   runAblationWriteBuffers,
	})
	register(Experiment{
		ID:    "ablation-packet",
		Title: "Sensitivity to the maximum SAN packet size",
		Run:   runAblationPacketSize,
	})
	register(Experiment{
		ID:    "ablation-cpu",
		Title: "The Zhou et al. disagreement: write-through vs processor speed",
		Run:   runAblationCPUSpeed,
	})
	register(Experiment{
		ID:    "ablation-san",
		Title: "Would a faster SAN rescue mirroring?",
		Run:   runAblationSANSpeed,
	})
	register(Experiment{
		ID:    "ablation-2safe",
		Title: "The price of closing the 1-safe window (active backup)",
		Run:   runAblationTwoSafe,
	})
}

// ablationCell runs Debit-Credit under custom parameters.
func ablationCell(cfg RunConfig, params sim.Params, ver vista.Version, mode replication.Mode) (tpc.Result, error) {
	pair, err := replication.NewPair(replication.Config{
		Mode:   mode,
		Store:  vista.Config{Version: ver, DBSize: cfg.DBSize},
		Params: &params,
	})
	if err != nil {
		return tpc.Result{}, err
	}
	w, err := tpc.NewDebitCredit(cfg.DBSize)
	if err != nil {
		return tpc.Result{}, err
	}
	return tpc.Run(pair, w, tpc.Options{
		Txns: cfg.DCTxns, Warmup: cfg.Warmup, Seed: cfg.Seed, WarmCache: true,
	})
}

// runAblationWriteBuffers sweeps the write-buffer count: the paper's
// locality argument rests on six buffers being scarce — with many more,
// scattered stores coalesce longer and mirroring recovers some ground.
func runAblationWriteBuffers(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "ablation-wbuf",
		Title:   "Passive-backup Debit-Credit throughput vs write-buffer count (txns/sec)",
		Headers: []string{"Write buffers", "Version 1", "Version 2", "Version 3"},
		Notes:   append(runNotes(cfg), "the Alpha 21164A has 6"),
	}
	for _, n := range []int{2, 4, 6, 12, 24} {
		params := sim.Default()
		params.WriteBuffers = n
		row := []string{fmt.Sprintf("%d", n)}
		for _, v := range []vista.Version{vista.V1MirrorCopy, vista.V2MirrorDiff, vista.V3InlineLog} {
			res, err := ablationCell(cfg, params, v, replication.Passive)
			if err != nil {
				return nil, err
			}
			row = append(row, f0(res.TPS))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// runAblationPacketSize sweeps the maximum SAN packet: larger packets
// reward sequential logging even more; tiny packets flatten everything
// toward the per-packet overhead.
func runAblationPacketSize(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "ablation-packet",
		Title:   "Passive-backup Debit-Credit throughput vs max packet size (txns/sec)",
		Headers: []string{"Max packet", "Version 2", "Version 3", "V3 advantage"},
		Notes: append(runNotes(cfg),
			"Memory Channel II caps packets at 32 bytes; smaller caps fragment full buffers"),
	}
	for _, max := range []int{4, 8, 16, 32} {
		params := sim.Default()
		params.MaxPacket = max
		// The coalescing granule stays at the CPU's 32-byte write
		// buffer; caps below 32 split full buffers into several packets
		// — taking away exactly the aggregation advantage logging lives
		// on. (Caps above 32 change nothing: the buffer is the limit.)
		v2, err := ablationCell(cfg, params, vista.V2MirrorDiff, replication.Passive)
		if err != nil {
			return nil, err
		}
		v3, err := ablationCell(cfg, params, vista.V3InlineLog, replication.Passive)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dB", max), f0(v2.TPS), f0(v3.TPS),
			fmt.Sprintf("%.2fx", v3.TPS/v2.TPS),
		})
	}
	return t, nil
}

// runAblationCPUSpeed reproduces the paper's explanation of why its
// conclusion differs from Zhou et al. (Section 9): on a 66 MHz Pentium the
// straightforward write-through port costs little, because the processor —
// not the SAN — is the bottleneck. Scaling every CPU cost reproduces both
// regimes.
func runAblationCPUSpeed(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:    "ablation-cpu",
		Title: "Straightforward write-through (V0) slowdown vs processor speed",
		Headers: []string{"CPU speed", "Standalone TPS", "Primary-backup TPS",
			"Slowdown"},
		Notes: append(runNotes(cfg),
			"1x ~ the paper's 600MHz Alpha; 1/9x ~ Zhou et al.'s 66MHz Pentium",
			"the paper attributes the disagreement with Zhou et al. to exactly this ratio"),
	}
	for _, scale := range []struct {
		label  string
		factor sim.Dur
	}{
		{"1x (Alpha 600MHz)", 1},
		{"1/3x", 3},
		{"1/9x (Pentium 66MHz)", 9},
	} {
		params := sim.Default()
		scaleCPU(&params, scale.factor)
		alone, err := ablationCell(cfg, params, vista.V0Vista, replication.Standalone)
		if err != nil {
			return nil, err
		}
		pb, err := ablationCell(cfg, params, vista.V0Vista, replication.Passive)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			scale.label, f0(alone.TPS), f0(pb.TPS),
			fmt.Sprintf("%.2fx", alone.TPS/pb.TPS),
		})
	}
	return t, nil
}

// scaleCPU multiplies every processor-side cost by factor, leaving the SAN
// untouched — a slower machine on the same network.
func scaleCPU(p *sim.Params, factor sim.Dur) {
	p.TxBegin *= factor
	p.TxCommit *= factor
	p.TxAbort *= factor
	p.SetRangeCall *= factor
	p.StoreWord *= factor
	p.LoadWord *= factor
	p.CopyByte *= factor
	p.CompareByte *= factor
	p.Alloc *= factor
	p.Free *= factor
	p.ListOp *= factor
	p.L2Hit *= factor
	p.L3Hit *= factor
	p.MemAccess *= factor
	p.WriteMiss *= factor
	p.TLBFill *= factor
}

// runAblationTwoSafe compares the paper's 1-safe commit (return on local
// commit; a microsecond window can lose the last transactions) with a
// 2-safe variant (commit waits for the backup's acknowledgement): the
// window closes, and every commit pays a SAN round trip plus the backup's
// apply time.
func runAblationTwoSafe(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "ablation-2safe",
		Title:   "Active-backup throughput: 1-safe vs 2-safe commit (txns/sec)",
		Headers: []string{"Commit discipline", "Debit-Credit", "Loss window"},
		Notes:   append(runNotes(cfg), "the paper chose 1-safe (Section 2.1); 2-safe is the natural extension"),
	}
	for _, twoSafe := range []bool{false, true} {
		pair, err := replication.NewPair(replication.Config{
			Mode:    replication.Active,
			Store:   vista.Config{Version: vista.V3InlineLog, DBSize: cfg.DBSize},
			TwoSafe: twoSafe,
		})
		if err != nil {
			return nil, err
		}
		w, err := tpc.NewDebitCredit(cfg.DBSize)
		if err != nil {
			return nil, err
		}
		res, err := tpc.Run(pair, w, tpc.Options{
			Txns: cfg.DCTxns, Warmup: cfg.Warmup, Seed: cfg.Seed, WarmCache: true,
		})
		if err != nil {
			return nil, err
		}
		label, window := "1-safe (paper)", "a few microseconds"
		if twoSafe {
			label, window = "2-safe", "none"
		}
		t.Rows = append(t.Rows, []string{label, f0(res.TPS), window})
	}
	return t, nil
}

// runAblationSANSpeed scales the link: with a SAN an order of magnitude
// faster (relative to the CPU), the write-through penalty shrinks and the
// strategies converge — the regime shift the paper predicts for future
// networks.
func runAblationSANSpeed(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "ablation-san",
		Title:   "Passive-backup Debit-Credit throughput vs SAN speed (txns/sec)",
		Headers: []string{"SAN speed", "Version 0", "Version 2", "Version 3"},
		Notes:   append(runNotes(cfg), "1x = Memory Channel II (80 MB/s peak)"),
	}
	for _, s := range []struct {
		label string
		div   sim.Dur
	}{
		{"1x", 1},
		{"4x", 4},
		{"16x", 16},
	} {
		params := sim.Default()
		params.PacketOverhead /= s.div
		params.PacketPerByte /= s.div
		params.PartialDrainPerByte /= s.div
		params.IOStoreWord /= s.div
		row := []string{s.label}
		for _, v := range []vista.Version{vista.V0Vista, vista.V2MirrorDiff, vista.V3InlineLog} {
			res, err := ablationCell(cfg, params, v, replication.Passive)
			if err != nil {
				return nil, err
			}
			row = append(row, f0(res.TPS))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
