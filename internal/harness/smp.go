package harness

import (
	"fmt"
	"sync"

	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/tpc"
	"repro/internal/vista"
)

// smpSeries is the protocol grid of the paper's Figures 2 and 3.
var smpSeries = []struct {
	label string
	ver   vista.Version
	mode  replication.Mode
}{
	{"Active", vista.V3InlineLog, replication.Active},
	{"Pass. Ver. 3", vista.V3InlineLog, replication.Passive},
	{"Pass. Ver. 2", vista.V2MirrorDiff, replication.Passive},
	{"Pass. Ver. 1", vista.V1MirrorCopy, replication.Passive},
}

func runFig2(cfg RunConfig) (*Table, error) { return runSMP(cfg, "fig2", benchDC) }
func runFig3(cfg RunConfig) (*Table, error) { return runSMP(cfg, "fig3", benchOE) }

// runSMP reproduces Section 8: N independent transaction streams on one
// SMP primary, each with a 10 MB private database, all replicating through
// one shared Memory Channel. Stream traces are captured in isolation and
// replayed against the shared link (the streams interact only through SAN
// bandwidth, exactly as in the paper's disjoint-data setup).
func runSMP(cfg RunConfig, id, bench string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Aggregate throughput with an SMP primary (%s, txns/sec)", bench),
		Headers: []string{"Processors"},
		Notes: append(runNotes(cfg),
			fmt.Sprintf("%d MB database per stream, as in the paper", cfg.SMPDBSize>>20)),
	}
	for _, s := range smpSeries {
		t.Headers = append(t.Headers, s.label)
	}

	maxStreams := 0
	for _, n := range cfg.SMPStreams {
		if n > maxStreams {
			maxStreams = n
		}
	}

	// Capture one trace per (series, stream ordinal); stream k gets its
	// own seed so replays mix distinct access patterns.
	traces := make([][]*sim.Trace, len(smpSeries))
	for i, s := range smpSeries {
		traces[i] = make([]*sim.Trace, maxStreams)
		for k := 0; k < maxStreams; k++ {
			tr, err := captureTrace(cfg, bench, s.ver, s.mode, uint64(k))
			if err != nil {
				return nil, fmt.Errorf("harness: capture %s stream %d: %w", s.label, k, err)
			}
			traces[i][k] = tr
		}
	}

	params := sim.Default()
	for _, n := range cfg.SMPStreams {
		row := []string{fmt.Sprintf("%d", n)}
		for i := range smpSeries {
			res := sim.Replay(&params, traces[i][:n])
			row = append(row, f0(res.AggregateTPS()))
		}
		t.Rows = append(t.Rows, row)
	}

	// SAN goodput at the largest configuration — the paper's Section 8
	// observation that the mirroring protocols see "below 20 Mbytes/sec".
	last := cfg.SMPStreams[len(cfg.SMPStreams)-1]
	good := fmt.Sprintf("SAN goodput at %d CPUs (MB/s):", last)
	for i, s := range smpSeries {
		res := sim.Replay(&params, traces[i][:last])
		mbps := float64(res.Link.Bytes) / 1e6 / res.Makespan.Seconds()
		good += fmt.Sprintf(" %s=%.1f", s.label, mbps)
	}
	t.Notes = append(t.Notes, good)
	return t, nil
}

// traceKey identifies a captured stream trace.
type traceKey struct {
	bench  string
	ver    vista.Version
	mode   replication.Mode
	dbSize int
	txns   int64
	seed   uint64
}

var (
	traceMu   sync.Mutex
	traceMemo = map[traceKey]*sim.Trace{}
)

// captureTrace runs one stream alone, recording its SAN-interaction trace
// during the measured interval.
func captureTrace(cfg RunConfig, bench string, ver vista.Version, mode replication.Mode, streamSeed uint64) (*sim.Trace, error) {
	txns := benchTxns(cfg, bench) / 4
	if txns < 1000 {
		txns = 1000
	}
	key := traceKey{bench: bench, ver: ver, mode: mode, dbSize: cfg.SMPDBSize, txns: txns, seed: cfg.Seed + streamSeed}
	traceMu.Lock()
	if tr, ok := traceMemo[key]; ok {
		traceMu.Unlock()
		return tr, nil
	}
	traceMu.Unlock()

	pair, err := replication.NewPair(replication.Config{
		Mode:  mode,
		Store: vista.Config{Version: ver, DBSize: cfg.SMPDBSize},
	})
	if err != nil {
		return nil, err
	}
	w, err := newWorkload(bench, cfg.SMPDBSize)
	if err != nil {
		return nil, err
	}
	trace := &sim.Trace{}
	res, err := tpc.Run(pair, w, tpc.Options{
		Txns:          txns,
		Warmup:        cfg.Warmup,
		Seed:          key.seed,
		StartMeasured: func() { pair.SetTrace(trace) },
	})
	if err != nil {
		return nil, err
	}
	trace.Txns = res.Txns

	traceMu.Lock()
	traceMemo[key] = trace
	traceMu.Unlock()
	return trace, nil
}
