package harness

import (
	"fmt"

	"repro"
	"repro/internal/tpc"
)

// The readscale experiment measures the replica-read subsystem: the
// read-heavy mix on one replicated cluster, once per consistency mode.
// The primary row is the baseline — every read serialized through the
// primary, exactly the pre-extension behavior — and the ryw/bounded/
// quorum rows route reads through the backups' applied views, reporting
// throughput on the replica-aware wall clock (primary and read-serving
// backups run in parallel). RunKV's built-in staleness audit runs in
// every replica row: a read that breaks its mode's advertised bound is a
// counted violation, and the cell fails the repro if any appear.
func init() {
	register(Experiment{
		ID:    "readscale",
		Title: "Read scaling: backups serving reads under a consistency knob",
		Run:   runReadScale,
	})
}

func runReadScale(cfg RunConfig) (*Table, error) {
	db := cfg.SMPDBSize
	if db <= 0 {
		db = 8 << 20
	}
	backups := cfg.Backups
	if backups < 1 {
		backups = 3
	}
	ops := cfg.KVOps
	if ops <= 0 {
		ops = 20_000
	}
	records := cfg.KVRecords
	if records <= 0 {
		records = 2_000
	}
	batch := cfg.CommitBatch
	if batch <= 0 {
		batch = 96
	}
	// The advertised bound must exceed the group-commit batch: commits
	// parked in the open batch count against every backup's lag.
	bound := uint64(batch) + 32

	modes := []string{"primary", "ryw", "bounded", "quorum"}
	if cfg.ReadMode != "" && cfg.ReadMode != "primary" {
		if _, err := tpc.ParseReadMode(cfg.ReadMode); err != nil {
			return nil, fmt.Errorf("harness: readscale: %w", err)
		}
		modes = []string{"primary", cfg.ReadMode} // keep the baseline for the ratio
	}

	t := &Table{
		ID:      "readscale",
		Title:   "Replica reads per consistency mode (read-heavy mix)",
		Headers: []string{"Mode", "ops/s", "x primary", "Replica reads", "Primary reads", "Repaired", "Stale violations"},
		Notes: append(runNotes(cfg),
			fmt.Sprintf("active backup, K=%d, %s commit, group-commit batch %d, %d records, %d measured ops per cell",
				backups, cfg.Safety, batch, records, ops),
			fmt.Sprintf("bounded rows advertise a staleness bound of %d commit sequences; the audit fails any read outside its bound", bound),
			"ops/s uses the replica-aware wall clock: the primary and the read-serving backups run in parallel"),
	}
	var base float64
	for _, mode := range modes {
		c, err := repro.New(repro.Config{
			Version:     repro.V3InlineLog,
			Backup:      repro.ActiveBackup,
			DBSize:      db,
			Backups:     backups,
			Safety:      repro.Safety(cfg.Safety),
			CommitBatch: batch,
		})
		if err != nil {
			return nil, err
		}
		res, err := tpc.RunKV(c, tpc.KVOptions{
			Mix:            tpc.MixReadHeavy,
			Records:        records,
			Ops:            ops,
			Warmup:         ops / 10,
			Seed:           cfg.Seed,
			ScanLen:        cfg.KVScanLen,
			ReadMode:       mode,
			StalenessBound: bound,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: readscale %s: %w", mode, err)
		}
		if res.StaleViolations != 0 {
			return nil, fmt.Errorf("harness: readscale %s: %d stale-read violations", mode, res.StaleViolations)
		}
		if mode == "primary" {
			base = res.OPS
		}
		ratio := "1.00"
		if base > 0 {
			ratio = fmt.Sprintf("%.2f", res.OPS/base)
		}
		t.Rows = append(t.Rows, []string{
			mode,
			f0(res.OPS),
			ratio,
			fmt.Sprintf("%d", res.ReplicaReads),
			fmt.Sprintf("%d", res.PrimaryReads),
			fmt.Sprintf("%d", res.Repaired),
			fmt.Sprintf("%d", res.StaleViolations),
		})
	}
	return t, nil
}
