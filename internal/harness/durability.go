package harness

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/tpc"
)

// The durability experiment is the disk tier's kill-and-restart matrix:
// at each snapshot interval, a committed Debit-Credit run is cut down by
// a full-cluster power loss, the unsynced WAL tails are corrupted per
// mode, and a cold restart over the same directory must recover every
// acked-durable transaction with a replay-exact image. The interval
// column is the operational trade the tier exposes: tighter snapshots
// buy shorter replay at the cost of more checkpoint writes.
func init() {
	register(Experiment{
		ID:    "durability",
		Title: "Disk tier: cold-restart recovery vs snapshot interval, with torn-write tails",
		Run:   runDurability,
	})
}

func runDurability(cfg RunConfig) (*Table, error) {
	db := cfg.SMPDBSize
	if db <= 0 {
		db = 4 << 20
	}
	backups := cfg.Backups
	if backups < 1 {
		backups = 2
	}
	txns := int(cfg.DCTxns / 10)
	if txns < 100 {
		txns = 100
	}

	t := &Table{
		ID:    "durability",
		Title: "Cold-restart recovery: snapshot interval × corrupt-tail mode",
		Headers: []string{"SnapshotEvery", "Tail", "Committed", "Durable", "Recovered",
			"Replayed", "TruncBytes", "Recovery ms", "LostAcked"},
		Notes: append(runNotes(cfg),
			fmt.Sprintf("passive-style disk tier under the active scheme, K=%d, quorum commit, batch 8, kill after ~%d txns (seeded)", backups, txns),
			"Durable = last fdatasync'd commit at the power loss; LostAcked must be 0 in every row",
			"Recovery ms is host wall time (disk replay is host work, not simulated work)"),
	}
	for _, every := range []int{32, 128, 512} {
		for _, mode := range []string{tpc.TailIntact, tpc.TailTorn, tpc.TailMixed} {
			dir, err := os.MkdirTemp("", "repro-durability-*")
			if err != nil {
				return nil, err
			}
			open := func() (tpc.FaultDB, error) {
				return repro.New(repro.Config{
					Version:     repro.V3InlineLog,
					Backup:      repro.ActiveBackup,
					DBSize:      db,
					Backups:     backups,
					Safety:      repro.QuorumSafe,
					CommitBatch: 8,
					Durability: repro.DurabilityConfig{
						Dir:           dir,
						SnapshotEvery: every,
					},
				})
			}
			w, err := tpc.NewDebitCredit(db)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			res, err := tpc.RunDurability(open, w, tpc.DurabilityOptions{
				Txns:    txns,
				Corrupt: mode,
				Seed:    cfg.Seed,
			})
			os.RemoveAll(dir)
			if err != nil {
				return nil, fmt.Errorf("harness: durability snap=%d/%s: %w", every, mode, err)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", every),
				mode,
				fmt.Sprintf("%d", res.Total),
				fmt.Sprintf("%d", res.AckedDurable),
				fmt.Sprintf("%d", res.Recovered),
				fmt.Sprintf("%d", res.Replayed),
				fmt.Sprintf("%d", res.TruncatedBytes),
				f1(res.RecoveryWall.Seconds() * 1e3),
				fmt.Sprintf("%d", res.LostAckedWrites),
			})
		}
	}
	return t, nil
}
