// Package harness regenerates every table and figure of the paper's
// evaluation: one experiment function per exhibit, each returning a Table
// that prints like the original. The per-experiment index lives in
// DESIGN.md; EXPERIMENTS.md records measured-versus-paper values.
package harness

import (
	"fmt"
	"strings"

	"repro/internal/replication"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // "table4", "fig2", ...
	Title   string
	Headers []string
	Rows    [][]string
	// Notes carries provenance (workload sizes, transaction counts).
	Notes []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is a registered exhibit reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig) (*Table, error)
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// paperExhibits lists the paper's tables and figures in exhibit order.
var paperExhibits = []string{"fig1", "table1", "table2", "table3", "table4",
	"table5", "table6", "table7", "table8", "fig2", "fig3"}

// ablationExhibits lists the beyond-the-paper sensitivity studies.
var ablationExhibits = []string{"ablation-wbuf", "ablation-packet",
	"ablation-cpu", "ablation-san", "ablation-2safe"}

// extensionExhibits lists the capability experiments that go beyond the
// paper's two-node deployments: N-replica groups, the sharded cluster,
// the elastic online rebalance, the autopilot's unattended chaos run,
// the key-value layer's YCSB-style mixes, the replica-read scaling
// cell, and the disk tier's cold-restart recovery matrix.
var extensionExhibits = []string{"repl-degree", "shard-scaling", "rebalance", "chaos", "kv", "readscale", "durability"}

// All returns the paper's experiments in exhibit order.
func All() []Experiment { return byIDs(paperExhibits) }

// Ablations returns the design-sensitivity experiments.
func Ablations() []Experiment { return byIDs(ablationExhibits) }

// Extensions returns the replication-degree and sharding experiments.
func Extensions() []Experiment { return byIDs(extensionExhibits) }

func byIDs(ids []string) []Experiment {
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		if e, ok := registry[id]; ok {
			out = append(out, e)
		}
	}
	return out
}

// RunConfig scales the experiments. The defaults aim at a few seconds per
// exhibit; the paper's own runs used millions of transactions, which the
// -full flag of cmd/replbench approaches.
type RunConfig struct {
	// DBSize is the database size (paper default 50 MB).
	DBSize int
	// DCTxns and OETxns are measured transaction counts per cell.
	DCTxns int64
	OETxns int64
	// Warmup transactions run before measurement in every cell.
	Warmup int64
	// Seed feeds the workload generators.
	Seed uint64
	// SMPStreams is the processor-count sweep for Figures 2 and 3.
	SMPStreams []int
	// SMPDBSize is the per-stream database size in the SMP experiments
	// (paper: 10 MB per transaction stream).
	SMPDBSize int
	// Backups is the replication degree for the repl-degree and
	// shard-scaling experiments (0 = their defaults).
	Backups int
	// Shards is the largest shard count the shard-scaling experiment
	// sweeps to (0 = its default of 4).
	Shards int
	// TargetShards are the growth steps of the rebalance experiment as
	// absolute shard counts from its 2-shard start (nil = {4, 8}).
	TargetShards []int
	// Safety is the commit discipline the shard-scaling experiment runs
	// under (default 1-safe).
	Safety replication.Safety
	// Clients is the concurrent client-goroutine count for the
	// parallel-shards experiment (0 = one client per shard).
	Clients int
	// CommitBatch is the group-commit batch size for the group-commit
	// experiment cell (0 = its default sweep).
	CommitBatch int
	// ChaosEvents is the number of fault injections the chaos experiment
	// schedules (0 = its default of 4); the schedule is seeded by Seed.
	ChaosEvents int
	// KVRecords and KVOps size the kv experiment: preloaded keys and
	// measured operations per mix cell (0 = the cell's defaults).
	KVRecords int
	KVOps     int64
	// KVScanLen is the range-scan length of the kv and readscale scan
	// operations (0 = tpc.RunKV's default of 10).
	KVScanLen int
	// ReadMode restricts the readscale experiment to one replica-read
	// consistency mode ("ryw", "bounded", "quorum"), always alongside the
	// primary baseline row ("" = sweep every mode).
	ReadMode string
}

// DefaultRunConfig returns the scaled-down default configuration.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		DBSize:     50 << 20,
		DCTxns:     60_000,
		OETxns:     15_000,
		Warmup:     3_000,
		Seed:       1,
		SMPStreams: []int{1, 2, 3, 4},
		SMPDBSize:  10 << 20,
	}
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
