package harness

import (
	"strings"
	"testing"
)

// TestRebalanceCellShape: the elastic experiment reports every phase,
// transactions keep committing in every grow phase, and the acked-write
// audit note records zero losses.
func TestRebalanceCellShape(t *testing.T) {
	cfg := testConfig()
	cfg.DBSize = 8 << 20
	e, ok := Lookup("rebalance")
	if !ok {
		t.Fatal("rebalance not registered")
	}
	tbl, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"baseline", "grow-4", "grow-8", "final"}
	if len(tbl.Rows) != len(want) {
		t.Fatalf("%d rows, want %d: %v", len(tbl.Rows), len(want), tbl.Rows)
	}
	for i, phase := range want {
		if tbl.Rows[i][0] != phase {
			t.Fatalf("row %d phase = %q, want %q", i, tbl.Rows[i][0], phase)
		}
		if worst := cell(t, tbl, i, 3); worst <= 0 {
			t.Errorf("%s worst txn/s = %v, want > 0", phase, worst)
		}
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "0 lost") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no zero-loss audit note in %v", tbl.Notes)
	}
}
