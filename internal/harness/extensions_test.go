package harness

import (
	"strings"
	"testing"
)

// TestReplDegreeShape: 1-safe throughput does not depend on the backup
// count (one broadcast, no waiting); quorum commit is never slower than
// 2-safe; at K=3 the quorum wait (median backup) strictly beats the
// 2-safe wait (slowest backup).
func TestReplDegreeShape(t *testing.T) {
	cfg := testConfig()
	cfg.DCTxns = 3000
	cfg.Backups = 3
	e, ok := Lookup("repl-degree")
	if !ok {
		t.Fatal("repl-degree not registered")
	}
	tbl, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows, want 3 (K=1..3)", len(tbl.Rows))
	}
	for row := 0; row < 3; row++ {
		one, quorum, two := cell(t, tbl, row, 1), cell(t, tbl, row, 2), cell(t, tbl, row, 3)
		if one <= quorum {
			t.Errorf("K=%d: 1-safe (%v) not above quorum (%v)", row+1, one, quorum)
		}
		if quorum < two {
			t.Errorf("K=%d: quorum (%v) below 2-safe (%v)", row+1, quorum, two)
		}
	}
	// K=3: quorum waits for the median backup, 2-safe for the slowest.
	if q, two := cell(t, tbl, 2, 2), cell(t, tbl, 2, 3); q <= two {
		t.Errorf("K=3: quorum (%v) not strictly above 2-safe (%v)", q, two)
	}
	// 1-safe is flat in K.
	if a, c := cell(t, tbl, 0, 1), cell(t, tbl, 2, 1); a != c {
		t.Errorf("1-safe throughput varies with K: %v vs %v", a, c)
	}
}

// TestShardScalingShape: aggregate throughput grows near-linearly with the
// shard count (independent replica groups on disjoint hardware).
func TestShardScalingShape(t *testing.T) {
	cfg := testConfig()
	cfg.DCTxns = 3000
	cfg.Shards = 4
	e, ok := Lookup("shard-scaling")
	if !ok {
		t.Fatal("shard-scaling not registered")
	}
	tbl, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // 1, 2, 4
		t.Fatalf("%d rows, want 3", len(tbl.Rows))
	}
	one := cell(t, tbl, 0, 1)
	four := cell(t, tbl, len(tbl.Rows)-1, 1)
	if four < 3*one {
		t.Errorf("4 shards (%v) not near-linear over 1 shard (%v)", four, one)
	}
	if !strings.HasPrefix(tbl.Rows[0][3], "1.00x") {
		t.Errorf("baseline speedup %q", tbl.Rows[0][3])
	}
}

func TestExtensionsRegistered(t *testing.T) {
	exts := Extensions()
	want := []string{"repl-degree", "shard-scaling", "rebalance", "chaos", "kv", "readscale", "durability"}
	if len(exts) != len(want) {
		t.Fatalf("Extensions() = %v", exts)
	}
	for i, id := range want {
		if exts[i].ID != id {
			t.Fatalf("Extensions()[%d] = %q, want %q", i, exts[i].ID, id)
		}
	}
}
