package harness

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/memchannel"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/tpc"
	"repro/internal/vista"
)

func init() {
	register(Experiment{ID: "fig1", Title: "Effective bandwidth vs Memory Channel packet size", Run: runFig1})
	register(Experiment{ID: "table1", Title: "Transaction throughput, straightforward implementation", Run: runTable1})
	register(Experiment{ID: "table2", Title: "Data communicated to the backup, straightforward implementation", Run: runTable2})
	register(Experiment{ID: "table3", Title: "Standalone transaction throughput of the restructured versions", Run: runTable3})
	register(Experiment{ID: "table4", Title: "Primary-backup throughput (passive backup)", Run: runTable4})
	register(Experiment{ID: "table5", Title: "Data transferred to passive backup by version", Run: runTable5})
	register(Experiment{ID: "table6", Title: "Passive vs active backup throughput", Run: runTable6})
	register(Experiment{ID: "table7", Title: "Data transferred: best passive vs active", Run: runTable7})
	register(Experiment{ID: "table8", Title: "Active backup throughput for increasing database sizes", Run: runTable8})
	register(Experiment{ID: "fig2", Title: "SMP primary throughput, Debit-Credit", Run: runFig2})
	register(Experiment{ID: "fig3", Title: "SMP primary throughput, Order-Entry", Run: runFig3})
}

var allVersions = []vista.Version{vista.V0Vista, vista.V1MirrorCopy, vista.V2MirrorDiff, vista.V3InlineLog}

// runFig1 reproduces the stride bandwidth probe of Section 2.3.
func runFig1(cfg RunConfig) (*Table, error) {
	params := sim.Default()
	points := memchannel.MeasureBandwidth(&params, 1<<20, []int{4, 8, 16, 32})
	t := &Table{
		ID:      "fig1",
		Title:   "Effective bandwidth (MB/s) with different packet sizes",
		Headers: []string{"Packet size", "Bandwidth (MB/s)"},
		Notes: []string{fmt.Sprintf("one-way 4-byte write latency: %.2f us (paper: 3.3 us)",
			memchannel.MeasureLatency(&params).Nanoseconds()/1000)},
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%dbytes", pt.PacketBytes), f1(pt.MBPerSec)})
	}
	return t, nil
}

// runTable1 compares the single-machine server with the straightforward
// write-through port (Version 0 under a passive backup).
func runTable1(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Transaction throughput, straightforward implementation (txns/sec)",
		Headers: []string{"", "Debit-Credit", "Order-Entry"},
		Notes:   runNotes(cfg),
	}
	rows := []struct {
		label string
		mode  replication.Mode
	}{
		{"Single machine", replication.Standalone},
		{"Primary-backup", replication.Passive},
	}
	for _, r := range rows {
		cells := []string{r.label}
		for _, bench := range []string{benchDC, benchOE} {
			res, err := runCell(cfg, bench, vista.V0Vista, r.mode, cfg.DBSize, benchTxns(cfg, bench), false)
			if err != nil {
				return nil, err
			}
			cells = append(cells, f0(res.TPS))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, nil
}

// runTable2 breaks down the straightforward port's SAN traffic.
func runTable2(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Data communicated to the backup, straightforward implementation",
		Headers: []string{"", "Debit-Credit", "Order-Entry"},
		Notes:   append(runNotes(cfg), "values are bytes per transaction (the paper reports run totals in MB; per-transaction figures are count-independent)"),
	}
	byCat := map[mem.Category][]string{}
	totals := []string{"Total data"}
	for _, bench := range []string{benchDC, benchOE} {
		res, err := runCell(cfg, bench, vista.V0Vista, replication.Passive, cfg.DBSize, benchTxns(cfg, bench), false)
		if err != nil {
			return nil, err
		}
		for c := mem.CatModified; c <= mem.CatMeta; c++ {
			byCat[c] = append(byCat[c], f1(res.PerTxn(res.Net[c])))
		}
		totals = append(totals, f1(res.PerTxn(res.NetTotal())))
	}
	for c := mem.CatModified; c <= mem.CatMeta; c++ {
		t.Rows = append(t.Rows, append([]string{c.String()}, byCat[c]...))
	}
	t.Rows = append(t.Rows, totals)
	return t, nil
}

// runTable3 measures the standalone throughput of all four versions.
func runTable3(cfg RunConfig) (*Table, error) {
	return versionSweep(cfg, "table3",
		"Standalone transaction throughput of the restructured versions (txns/sec)",
		replication.Standalone)
}

// runTable4 measures the passive primary-backup throughput of all versions.
func runTable4(cfg RunConfig) (*Table, error) {
	return versionSweep(cfg, "table4",
		"Primary-backup throughput, passive backup (txns/sec)",
		replication.Passive)
}

func versionSweep(cfg RunConfig, id, title string, mode replication.Mode) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"", "Debit-Credit", "Order-Entry"},
		Notes:   runNotes(cfg),
	}
	for _, v := range allVersions {
		cells := []string{v.String()}
		for _, bench := range []string{benchDC, benchOE} {
			res, err := runCell(cfg, bench, v, mode, cfg.DBSize, benchTxns(cfg, bench), false)
			if err != nil {
				return nil, err
			}
			cells = append(cells, f0(res.TPS))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, nil
}

// runTable5 breaks down passive-backup traffic per version.
func runTable5(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "table5",
		Title:   "Data transferred to passive backup (bytes per transaction)",
		Headers: []string{"Benchmark", "Version", "Modified", "Undo", "Meta", "Total"},
		Notes:   runNotes(cfg),
	}
	for _, bench := range []string{benchDC, benchOE} {
		for _, v := range allVersions {
			res, err := runCell(cfg, bench, v, replication.Passive, cfg.DBSize, benchTxns(cfg, bench), false)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, trafficRow(bench, v.String(), &res))
		}
	}
	return t, nil
}

// runTable6 compares the best passive scheme with the active backup.
func runTable6(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "table6",
		Title:   "Passive vs active backup throughput (txns/sec)",
		Headers: []string{"", "Debit-Credit", "Order-Entry"},
		Notes:   runNotes(cfg),
	}
	rows := []struct {
		label string
		mode  replication.Mode
	}{
		{"Best Passive (Version 3)", replication.Passive},
		{"Active", replication.Active},
	}
	for _, r := range rows {
		cells := []string{r.label}
		for _, bench := range []string{benchDC, benchOE} {
			res, err := runCell(cfg, bench, vista.V3InlineLog, r.mode, cfg.DBSize, benchTxns(cfg, bench), false)
			if err != nil {
				return nil, err
			}
			cells = append(cells, f0(res.TPS))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, nil
}

// runTable7 breaks down traffic for passive V3 versus active.
func runTable7(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "table7",
		Title:   "Data transferred: best passive vs active (bytes per transaction)",
		Headers: []string{"Benchmark", "Strategy", "Modified", "Undo", "Meta", "Total"},
		Notes:   runNotes(cfg),
	}
	for _, bench := range []string{benchDC, benchOE} {
		for _, r := range []struct {
			label string
			mode  replication.Mode
		}{
			{"Best Passive (Version 3)", replication.Passive},
			{"Active", replication.Active},
		} {
			res, err := runCell(cfg, bench, vista.V3InlineLog, r.mode, cfg.DBSize, benchTxns(cfg, bench), false)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, trafficRow(bench, r.label, &res))
		}
	}
	return t, nil
}

// runTable8 scales the active backup to larger databases.
func runTable8(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "table8",
		Title:   "Throughput for active backup with increasing database sizes (txns/sec)",
		Headers: []string{"Benchmark", "10 MB", "100 MB", "1 GB"},
		Notes:   runNotes(cfg),
	}
	sizes := []struct {
		bytes  int
		sparse bool
	}{
		{10 << 20, false},
		{100 << 20, false},
		{1 << 30, true},
	}
	for _, bench := range []string{benchDC, benchOE} {
		cells := []string{bench}
		for _, sz := range sizes {
			res, err := runCell(cfg, bench, vista.V3InlineLog, replication.Active, sz.bytes, benchTxns(cfg, bench), sz.sparse)
			if err != nil {
				return nil, err
			}
			cells = append(cells, f0(res.TPS))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, nil
}

func trafficRow(bench, label string, res *tpc.Result) []string {
	return []string{
		bench, label,
		f1(res.PerTxn(res.Net[mem.CatModified])),
		f1(res.PerTxn(res.Net[mem.CatUndo])),
		f1(res.PerTxn(res.Net[mem.CatMeta])),
		f1(res.PerTxn(res.NetTotal())),
	}
}

func runNotes(cfg RunConfig) []string {
	return []string{fmt.Sprintf("db=%dMB, dc-txns=%d, oe-txns=%d, warmup=%d, seed=%d",
		cfg.DBSize>>20, cfg.DCTxns, cfg.OETxns, cfg.Warmup, cfg.Seed)}
}
