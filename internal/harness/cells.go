package harness

import (
	"fmt"
	"sync"

	"repro/internal/replication"
	"repro/internal/tpc"
	"repro/internal/vista"
)

// Benchmark selectors.
const (
	benchDC = "Debit-Credit"
	benchOE = "Order-Entry"
)

// newWorkload constructs a fresh workload laid out for dbSize.
func newWorkload(bench string, dbSize int) (tpc.Workload, error) {
	switch bench {
	case benchDC:
		return tpc.NewDebitCredit(dbSize)
	case benchOE:
		return tpc.NewOrderEntry(dbSize)
	default:
		return nil, fmt.Errorf("harness: unknown benchmark %q", bench)
	}
}

// cellKey identifies one measured configuration.
type cellKey struct {
	bench  string
	ver    vista.Version
	mode   replication.Mode
	dbSize int
	txns   int64
	warmup int64
	seed   uint64
	sparse bool
}

// cellMemo caches cell results: paired exhibits (Tables 1/2, 4/5, 6/7)
// reuse the same runs.
var (
	cellMu   sync.Mutex
	cellMemo = map[cellKey]tpc.Result{}
)

// ResetCache drops memoized cell results (tests use it when they vary
// parameters that are not part of the key).
func ResetCache() {
	cellMu.Lock()
	defer cellMu.Unlock()
	cellMemo = map[cellKey]tpc.Result{}
}

// runCell measures one (benchmark, version, mode) configuration.
func runCell(cfg RunConfig, bench string, ver vista.Version, mode replication.Mode, dbSize int, txns int64, sparse bool) (tpc.Result, error) {
	key := cellKey{bench: bench, ver: ver, mode: mode, dbSize: dbSize,
		txns: txns, warmup: cfg.Warmup, seed: cfg.Seed, sparse: sparse}
	cellMu.Lock()
	if res, ok := cellMemo[key]; ok {
		cellMu.Unlock()
		return res, nil
	}
	cellMu.Unlock()

	pair, err := replication.NewPair(replication.Config{
		Mode:         mode,
		Store:        vista.Config{Version: ver, DBSize: dbSize, SparseDB: sparse},
		SparseBackup: sparse,
	})
	if err != nil {
		return tpc.Result{}, err
	}
	w, err := newWorkload(bench, dbSize)
	if err != nil {
		return tpc.Result{}, err
	}
	res, err := tpc.Run(pair, w, tpc.Options{Txns: txns, Warmup: cfg.Warmup, Seed: cfg.Seed, WarmCache: true})
	if err != nil {
		return tpc.Result{}, fmt.Errorf("harness: %s/%s/%s: %w", bench, ver, mode, err)
	}

	cellMu.Lock()
	cellMemo[key] = res
	cellMu.Unlock()
	return res, nil
}

// benchTxns returns the configured transaction count for a benchmark.
func benchTxns(cfg RunConfig, bench string) int64 {
	if bench == benchDC {
		return cfg.DCTxns
	}
	return cfg.OETxns
}
