package harness

import (
	"fmt"
	"strings"

	"repro"
	"repro/internal/tpc"
)

// The elastic-placement experiment: throughput delivered while the
// deployment grows 2 → 4 → 8 shards online, ranges migrating under the
// live commit stream, with the exact acked-write audit as the soundness
// column. Registered with the capability extensions.
func init() {
	register(Experiment{
		ID:    "rebalance",
		Title: "Online rebalance: throughput while the deployment grows 2 → 4 → 8 shards",
		Run:   runRebalance,
	})
}

func runRebalance(cfg RunConfig) (*Table, error) {
	targets := cfg.TargetShards
	if len(targets) == 0 {
		targets = []int{4, 8}
	}
	backups := cfg.Backups
	if backups < 1 {
		backups = 1
	}
	sc, err := repro.NewSharded(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  cfg.DBSize,
		Backups: backups,
		Safety:  repro.Safety(cfg.Safety),
		Metrics: true,
	}, 2)
	if err != nil {
		return nil, err
	}
	res, err := tpc.RunRebalance(sc, func(dbSize int) (tpc.Workload, error) {
		return tpc.NewDebitCredit(dbSize)
	}, tpc.RebalanceOptions{
		TargetShards: targets,
		Warmup:       cfg.Warmup,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	names := []string{"baseline"}
	for _, tgt := range targets {
		names = append(names, fmt.Sprintf("grow-%d", tgt))
	}
	names = append(names, "final")
	t := &Table{
		ID:    "rebalance",
		Title: "Debit-Credit throughput (txns/sec) while the deployment grows online",
		Headers: []string{"Phase", "Windows", "Mean txn/s", "Worst txn/s",
			"vs baseline"},
		Notes: append(runNotes(cfg),
			fmt.Sprintf("grows 2 → %s shards online (active backup, K=%d, %s commit); the mover rides the commit stream",
				strings.Join(intStrings(targets), " → "), backups, cfg.Safety),
			fmt.Sprintf("migration: %d ranges, %d bytes shipped, placement epoch %d, %d cut-over stalls",
				res.RangesMoved, res.BytesShipped, res.PlacementEpoch, sc.RebalanceProgress().Stalls),
			fmt.Sprintf("acked-write audit: %d stamps acknowledged, %d lost (must be 0)",
				res.AuditWrites, res.LostAckedWrites)),
	}
	for _, phase := range names {
		var sum, worst float64
		n := 0
		for _, w := range res.Windows {
			if w.Phase != phase {
				continue
			}
			sum += w.TPS
			if n == 0 || w.TPS < worst {
				worst = w.TPS
			}
			n++
		}
		if n == 0 {
			continue
		}
		mean := sum / float64(n)
		t.Rows = append(t.Rows, []string{
			phase, fmt.Sprintf("%d", n), f0(mean), f0(worst),
			fmt.Sprintf("%.2fx", mean/res.BaseTPS),
		})
	}
	if res.LostAckedWrites != 0 {
		return nil, fmt.Errorf("harness: rebalance lost %d acked writes", res.LostAckedWrites)
	}
	return t, nil
}

func intStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}
