package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTestCache() (*Cache, *sim.Clock, *sim.Params) {
	p := sim.Default()
	clk := &sim.Clock{}
	return New(&p, clk), clk, &p
}

func TestColdMissThenHit(t *testing.T) {
	c, clk, p := newTestCache()
	c.Access(0x1000, 8, false)
	if got := clk.Now(); got != sim.Time(p.MemAccess) {
		t.Fatalf("cold read charged %v, want %v", got, p.MemAccess)
	}
	before := clk.Now()
	c.Access(0x1000, 8, false)
	if clk.Now() != before {
		t.Fatalf("L1 hit charged %v", clk.Now()-before)
	}
	s := c.Stats()
	if s.Misses != 1 || s.L1Hits != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestReadMissVsWriteMissAsymmetry(t *testing.T) {
	// The paper's V1-vs-V2 standalone result depends on write misses
	// being absorbed by the write buffer while read misses stall.
	c, clk, p := newTestCache()
	c.Access(0x10000, 8, true)
	writeCost := clk.Now()
	if writeCost != sim.Time(p.WriteMiss) {
		t.Fatalf("cold write charged %v, want WriteMiss %v", writeCost, p.WriteMiss)
	}
	c2, clk2, _ := newTestCache()
	c2.Access(0x10000, 8, false)
	if readCost := clk2.Now(); readCost <= writeCost {
		t.Fatalf("read miss (%v) not more expensive than write miss (%v)", readCost, writeCost)
	}
}

func TestWriteAllocateMakesReadsHit(t *testing.T) {
	c, clk, _ := newTestCache()
	c.Access(0x2000, 8, true)
	before := clk.Now()
	c.Access(0x2000, 8, false) // must hit: write-allocate
	if clk.Now() != before {
		t.Fatal("read after write missed: no write-allocate")
	}
}

func TestMultiLineAccessTouchesEveryLine(t *testing.T) {
	c, _, p := newTestCache()
	c.Access(0, p.L3Line*4, false)
	if got := c.Stats().Accesses; got != 4 {
		t.Fatalf("4-line access counted %d lines", got)
	}
	// Unaligned span crossing one boundary touches two lines.
	c2, _, _ := newTestCache()
	c2.Access(uint64(p.L3Line-1), 2, false)
	if got := c2.Stats().Accesses; got != 2 {
		t.Fatalf("boundary-crossing access counted %d lines, want 2", got)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// a and b alias in the direct-mapped L1 and L3 and share an L2 set;
	// the 3-way L2 retains both, so the re-access to a is an L2 hit
	// (missing L1 where b evicted it).
	c, _, p := newTestCache()
	a := uint64(0)
	b := uint64(p.L3Size)
	c.Access(a, 8, false)
	c.Access(b, 8, false)
	c.Access(a, 8, false)
	s := c.Stats()
	if s.Misses != 2 || s.L2Hits != 1 {
		t.Fatalf("conflicting lines: %+v, want 2 memory misses and 1 L2 hit", s)
	}
}

func TestL2Associativity(t *testing.T) {
	// Three addresses mapping to the same L2 set fit in a 3-way L2; the
	// L1 is direct-mapped so they conflict there, but L2 must hold all
	// three (round-robin re-access stays off memory).
	c, _, p := newTestCache()
	stride := uint64(p.L2Size / p.L2Assoc)
	addrs := []uint64{0, stride, 2 * stride}
	for _, a := range addrs {
		c.Access(a, 8, false)
	}
	c.ResetStats()
	for _, a := range addrs {
		c.Access(a, 8, false)
	}
	s := c.Stats()
	if s.Misses != 0 {
		t.Fatalf("3-way set should hold 3 conflicting lines; %d memory misses (%+v)", s.Misses, s)
	}
}

func TestFlush(t *testing.T) {
	c, _, _ := newTestCache()
	c.Access(0x3000, 8, false)
	c.Flush()
	c.ResetStats()
	c.Access(0x3000, 8, false)
	if got := c.Stats().Misses; got != 1 {
		t.Fatalf("access after Flush: %d misses, want 1", got)
	}
}

func TestTLBMissAndRefill(t *testing.T) {
	c, clk, p := newTestCache()
	c.AccessVM(0x100000, 8, false)
	s := c.Stats()
	if s.TLBMisses != 1 {
		t.Fatalf("TLBMisses = %d, want 1", s.TLBMisses)
	}
	// Cost: TLB fill + PTE read miss + data read miss.
	want := sim.Time(p.TLBFill + 2*p.MemAccess)
	if clk.Now() != want {
		t.Fatalf("cold VM access charged %v, want %v", clk.Now(), want)
	}
	c.AccessVM(0x100000+8, 8, false)
	if got := c.Stats().TLBMisses; got != 1 {
		t.Fatalf("same-page access re-missed TLB: %d", got)
	}
}

func TestTLBPageCrossing(t *testing.T) {
	c, _, p := newTestCache()
	c.AccessVM(uint64(p.PageSize)-4, 8, false) // spans two pages
	if got := c.Stats().TLBMisses; got != 2 {
		t.Fatalf("page-crossing access: %d TLB misses, want 2", got)
	}
}

func TestTLBCapacity(t *testing.T) {
	c, _, p := newTestCache()
	// Touch far more pages than TLB entries, then re-touch the first:
	// it must have been evicted.
	for i := 0; i < p.TLBEntries*4; i++ {
		c.AccessVM(uint64(i*p.PageSize), 8, false)
	}
	c.ResetStats()
	c.AccessVM(0, 8, false)
	if got := c.Stats().TLBMisses; got != 1 {
		t.Fatalf("first page still in TLB after 4x capacity sweep (misses=%d)", got)
	}
}

func TestZeroLengthAccess(t *testing.T) {
	c, clk, _ := newTestCache()
	c.Access(0, 0, false)
	c.AccessVM(0, 0, true)
	if clk.Now() != 0 || c.Stats().Accesses != 0 {
		t.Fatal("zero-length access had effects")
	}
}

// TestRepeatAccessAlwaysHits: any address re-accessed immediately is an L1
// hit, regardless of the address pattern that preceded it.
func TestRepeatAccessAlwaysHits(t *testing.T) {
	c, _, _ := newTestCache()
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(uint64(a), 4, a%2 == 0)
			c.ResetStats()
			c.Access(uint64(a), 4, false)
			s := c.Stats()
			if s.L1Hits != s.Accesses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	c, _, _ := newTestCache()
	c.Access(0, 8, false)
	s := c.Stats()
	if s.MissRatio() != 1 {
		t.Fatalf("MissRatio = %v", s.MissRatio())
	}
	if s.String() == "" {
		t.Fatal("empty Stats.String()")
	}
	var empty Stats
	if empty.MissRatio() != 0 {
		t.Fatal("empty MissRatio should be 0")
	}
}
