// Package cache models the Alpha 21164A's three-level cache hierarchy:
// an 8 KB direct-mapped on-chip L1 data cache, a 96 KB 3-way set-associative
// on-chip L2, and an 8 MB direct-mapped board-level L3 with 64-byte lines
// (paper Section 2.3).
//
// The model is driven by the real (simulated-address) access stream of the
// transaction engines and charges incremental latencies to the owning
// stream's clock. It is the mechanism behind two of the paper's findings:
// the standalone superiority of the locality-friendly inline log (Version 3)
// over the mirroring versions, and the graceful throughput degradation with
// growing database size (Table 8).
package cache

import (
	"fmt"

	"repro/internal/sim"
)

// Stats counts where accesses were satisfied.
type Stats struct {
	Accesses  int64
	L1Hits    int64
	L2Hits    int64
	L3Hits    int64
	Misses    int64 // satisfied by memory
	TLBMisses int64
	// Charged is the total latency charged to the clock.
	Charged sim.Dur
}

// MissRatio returns the fraction of accesses that went to memory.
func (s *Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

func (s *Stats) String() string {
	return fmt.Sprintf("acc=%d l1=%d l2=%d l3=%d mem=%d (%.1f%% mem)",
		s.Accesses, s.L1Hits, s.L2Hits, s.L3Hits, s.Misses, 100*s.MissRatio())
}

// Cache is one stream's private cache hierarchy plus its data TLB. It is
// not safe for concurrent use; every simulated CPU owns one Cache.
type Cache struct {
	clock  *sim.Clock
	params *sim.Params

	l1 directMapped
	l2 setAssoc
	l3 directMapped
	// tlb models the Alpha's associative data translation buffer; 4-way
	// associativity approximates the 21164's fully associative DTB well
	// enough to keep hot pages (logs, control words) resident.
	tlb setAssoc

	stats Stats
}

// New returns a cold cache hierarchy charging latencies to clock.
func New(p *sim.Params, clock *sim.Clock) *Cache {
	c := &Cache{clock: clock, params: p}
	c.l1.init(p.L1Size, p.L1Line)
	c.l2.init(p.L2Size, p.L2Line, p.L2Assoc)
	c.l3.init(p.L3Size, p.L3Line)
	c.tlb.init(p.TLBEntries*p.PageSize, p.PageSize, 4)
	return c
}

// pteBase is the synthetic address of the page-table array, far above any
// data region, so PTE lines compete for cache space like real page tables.
const pteBase = uint64(1) << 40

// AccessVM is Access preceded by address translation: each 8 KB page
// touched probes the data TLB; a miss charges the fill handler and walks
// the page-table entry through the *data caches*, so the walk is cheap
// while the working set's PTEs stay cached and expensive for very large
// databases — the mechanism behind the paper's Table 8 degradation.
func (c *Cache) AccessVM(addr uint64, n int, write bool) {
	if n <= 0 {
		return
	}
	page := uint64(c.params.PageSize)
	for p := addr / page; p <= (addr+uint64(n)-1)/page; p++ {
		va := p * page
		if c.tlb.probe(va) {
			continue
		}
		c.stats.TLBMisses++
		c.tlb.fill(va)
		c.clock.Advance(c.params.TLBFill)
		c.Access(pteBase+p*8, 8, false)
	}
	c.Access(addr, n, write)
}

// Access touches [addr, addr+n) and charges the owning clock for every
// cache line involved.
//
// Reads and writes are charged asymmetrically, like on the modelled
// machine: a read miss stalls the processor for the full memory latency,
// while a write miss is largely absorbed by the store/write buffers and
// costs only the (much smaller) WriteMiss drain pressure. This asymmetry
// is load-bearing for the paper's standalone result that mirroring by
// diff (which *reads* the cold mirror) loses to mirroring by copy (which
// only *writes* it) — Section 4.5.
func (c *Cache) Access(addr uint64, n int, write bool) {
	if n <= 0 {
		return
	}
	line := uint64(c.params.L3Line)
	first := addr / line
	last := (addr + uint64(n) - 1) / line
	for l := first; l <= last; l++ {
		c.touchLine(l*line, write)
	}
}

// touchLine simulates one L3-line-sized access at the given aligned
// address, filling all levels on the way (write-allocate keeps later reads
// of freshly written lines hot).
func (c *Cache) touchLine(addr uint64, write bool) {
	c.stats.Accesses++

	// L1 has a smaller line; probing with the L3-aligned address is a
	// deliberate simplification: one probe per 64-byte touch.
	if c.l1.probe(addr) {
		c.stats.L1Hits++
		return
	}
	var d sim.Dur
	switch {
	case c.l2.probe(addr):
		c.stats.L2Hits++
		d = c.params.L2Hit
	case c.l3.probe(addr):
		c.stats.L3Hits++
		d = c.params.L3Hit
	default:
		c.stats.Misses++
		d = c.params.MemAccess
		c.l3.fill(addr)
	}
	if write {
		// Stores retire through the write buffer; only lines missing
		// all on-chip levels exert measurable drain pressure.
		if d == c.params.MemAccess {
			d = c.params.WriteMiss
		} else {
			d = 0
		}
	}
	c.l2.fill(addr)
	c.l1.fill(addr)
	c.stats.Charged += d
	c.clock.Advance(d)
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears counters without flushing cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush empties all levels (a cold restart, e.g. after failover to the
// backup processor).
func (c *Cache) Flush() {
	c.l1.flush()
	c.l2.flush()
	c.l3.flush()
	c.tlb.flush()
}

// directMapped is a direct-mapped tag array.
type directMapped struct {
	tags  []uint64 // tag+1, 0 = invalid
	sets  uint64
	shift uint
}

func log2(v int) uint {
	s := uint(0)
	for 1<<s < v {
		s++
	}
	return s
}

func (d *directMapped) init(size, line int) {
	d.sets = uint64(size / line)
	d.shift = log2(line)
	d.tags = make([]uint64, d.sets)
}

func (d *directMapped) probe(addr uint64) bool {
	b := addr >> d.shift
	idx := b % d.sets
	return d.tags[idx] == b+1
}

func (d *directMapped) fill(addr uint64) {
	b := addr >> d.shift
	d.tags[b%d.sets] = b + 1
}

func (d *directMapped) flush() {
	for i := range d.tags {
		d.tags[i] = 0
	}
}

// setAssoc is an N-way set-associative tag array with LRU replacement.
type setAssoc struct {
	tags  []uint64 // sets*assoc entries, tag+1, 0 = invalid
	used  []uint32 // LRU ticks, parallel to tags
	assoc int
	sets  uint64
	shift uint
	tick  uint32
}

func (s *setAssoc) init(size, line, assoc int) {
	s.assoc = assoc
	s.sets = uint64(size / (line * assoc))
	s.shift = log2(line)
	s.tags = make([]uint64, int(s.sets)*assoc)
	s.used = make([]uint32, int(s.sets)*assoc)
}

func (s *setAssoc) probe(addr uint64) bool {
	b := addr >> s.shift
	base := int(b%s.sets) * s.assoc
	s.tick++
	for w := 0; w < s.assoc; w++ {
		if s.tags[base+w] == b+1 {
			s.used[base+w] = s.tick
			return true
		}
	}
	return false
}

func (s *setAssoc) fill(addr uint64) {
	b := addr >> s.shift
	base := int(b%s.sets) * s.assoc
	victim, oldest := base, s.used[base]
	for w := 0; w < s.assoc; w++ {
		if s.tags[base+w] == 0 {
			victim = base + w
			break
		}
		if s.used[base+w] < oldest {
			victim, oldest = base+w, s.used[base+w]
		}
	}
	s.tick++
	s.tags[victim] = b + 1
	s.used[victim] = s.tick
}

func (s *setAssoc) flush() {
	for i := range s.tags {
		s.tags[i] = 0
		s.used[i] = 0
	}
}
