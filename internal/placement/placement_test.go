package placement

import (
	"testing"
)

func TestRingDeterministicOwner(t *testing.T) {
	a, b := NewRing(0), NewRing(0)
	for i := 0; i < 4; i++ {
		a.Add(i)
		b.Add(i)
	}
	for p := 0; p < 256; p++ {
		oa, ok := a.Owner(PartKey(p))
		ob, _ := b.Owner(PartKey(p))
		if !ok || oa != ob {
			t.Fatalf("partition %d: owners %d vs %d (ok=%v)", p, oa, ob, ok)
		}
	}
}

func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(i)
	}
	const parts = 1024
	before := make([]int, parts)
	for p := range before {
		before[p], _ = r.Owner(PartKey(p))
	}
	r.Add(4)
	moved := 0
	for p := range before {
		after, _ := r.Owner(PartKey(p))
		if after != before[p] {
			moved++
			if after != 4 {
				t.Fatalf("partition %d moved %d -> %d, not to the new shard", p, before[p], after)
			}
		}
	}
	// The new shard should capture roughly 1/5 of the space; accept a
	// generous band around it.
	if moved < parts/10 || moved > parts/2 {
		t.Fatalf("adding 1 of 5 shards moved %d/%d partitions", moved, parts)
	}
	// Removing it restores the old ownership exactly.
	r.Remove(4)
	for p := range before {
		after, _ := r.Owner(PartKey(p))
		if after != before[p] {
			t.Fatalf("partition %d did not return to shard %d after removal", p, before[p])
		}
	}
}

func TestRingOwnerExcludingAndOwners(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Add(i)
	}
	key := PartKey(7)
	first, ok := r.Owner(key)
	if !ok {
		t.Fatal("empty owner on a populated ring")
	}
	second, ok := r.OwnerExcluding(key, func(s int) bool { return s == first })
	if !ok || second == first {
		t.Fatalf("successor %d (ok=%v) should differ from owner %d", second, ok, first)
	}
	owners := r.Owners(key, 3)
	if len(owners) != 3 || owners[0] != first || owners[1] != second {
		t.Fatalf("Owners(3) = %v, want [%d %d x]", owners, first, second)
	}
	if _, ok := r.OwnerExcluding(key, func(int) bool { return true }); ok {
		t.Fatal("all-excluded lookup reported an owner")
	}
}

func TestTableUniformMatchesStride(t *testing.T) {
	const stride = 64 << 10
	tb := Uniform(1, stride)
	if !tb.IsUniform() {
		t.Fatal("uniform table not flagged uniform")
	}
	for _, off := range []int{0, 1, stride - 1, stride, 3*stride + 17} {
		sh, lo, run := tb.Locate(off)
		if sh != off/stride || lo != off%stride || run != stride-off%stride {
			t.Fatalf("Locate(%d) = (%d,%d,%d), want (%d,%d,%d)",
				off, sh, lo, run, off/stride, off%stride, stride-off%stride)
		}
	}
}

func TestLayoutCompileUniform(t *testing.T) {
	l := NewLayout(4, 256<<10, 0)
	tb := l.Compile(1)
	if !tb.IsUniform() || tb.Epoch != 1 {
		t.Fatalf("fresh layout compiled non-uniform (epoch %d)", tb.Epoch)
	}
	if l.PartSize()%pageSize != 0 || (256<<10)%l.PartSize() != 0 {
		t.Fatalf("partition size %d does not tile the shard", l.PartSize())
	}
	if per := (256 << 10) / l.PartSize(); per < 16 {
		t.Fatalf("only %d partitions per shard", per)
	}
}

func TestLayoutGrowPlanApplyCompile(t *testing.T) {
	const shardSize = 256 << 10
	l := NewLayout(2, shardSize, 0)
	added := l.Grow(2)
	if len(added) != 2 || added[0] != 2 || added[1] != 3 {
		t.Fatalf("Grow ids = %v", added)
	}
	moves := l.PlanGrow(added)
	if len(moves) == 0 {
		t.Fatal("grow plan moved nothing")
	}
	total := 0
	for _, m := range moves {
		if m.To != 2 && m.To != 3 {
			t.Fatalf("move %+v targets an old shard", m)
		}
		if m.From == m.To {
			t.Fatalf("self-move %+v", m)
		}
		if m.Bytes()%l.PartSize() != 0 {
			t.Fatalf("move %+v not partition-aligned", m)
		}
		total += m.Bytes()
	}
	span := 2 * shardSize
	if total >= span || total < span/16 {
		t.Fatalf("grow moved %d of %d bytes", total, span)
	}
	// Before any Apply the routing is still the uniform fast path.
	if !l.Compile(1).IsUniform() {
		t.Fatal("unapplied plan already changed routing")
	}
	for _, m := range moves {
		l.Apply(m)
	}
	tb := l.Compile(2)
	if tb.IsUniform() {
		t.Fatal("applied plan still uniform")
	}
	// The compiled table must tile the whole span and agree with the
	// layout's partition ownership.
	covered := 0
	for _, r := range tb.Ranges() {
		covered += r.End - r.Start
		for off := r.Start; off < r.End; off += l.PartSize() {
			if own := l.Owner(off / l.PartSize()); own != r.Shard {
				t.Fatalf("range %+v disagrees with owner %d at %d", r, own, off)
			}
		}
	}
	if covered != span {
		t.Fatalf("table covers %d of %d bytes", covered, span)
	}
	// Locate agrees with the ranges and reports sane local offsets.
	for off := 0; off < span; off += l.PartSize() / 2 {
		sh, lo, run := tb.Locate(off)
		if sh < 0 || sh > 3 || lo < 0 || lo >= shardSize || run <= 0 {
			t.Fatalf("Locate(%d) = (%d,%d,%d)", off, sh, lo, run)
		}
	}
}

func TestLayoutDrainAndRemove(t *testing.T) {
	const shardSize = 256 << 10
	l := NewLayout(2, shardSize, 0)
	added := l.Grow(2)
	for _, m := range l.PlanGrow(added) {
		l.Apply(m)
	}
	moves, err := l.PlanDrain(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range moves {
		if m.From != 3 || m.To == 3 {
			t.Fatalf("drain move %+v", m)
		}
		l.Apply(m)
	}
	for p := 0; p < l.Parts(); p++ {
		if l.Owner(p) == 3 {
			t.Fatalf("partition %d still on the drained shard", p)
		}
	}
	l.Remove(3)
	if !l.Removed(3) || l.Serving() != 3 {
		t.Fatalf("removed=%v serving=%d", l.Removed(3), l.Serving())
	}
	// A later grow-plan never lands partitions on the tombstone.
	added = l.Grow(1)
	for _, m := range l.PlanGrow(added) {
		if m.To == 3 || m.From == 3 {
			t.Fatalf("post-remove plan touches the tombstone: %+v", m)
		}
	}
}

func TestLayoutDrainNoCapacity(t *testing.T) {
	// Two shards, everything occupied: draining one cannot fit.
	l := NewLayout(2, 64<<10, 0)
	if _, err := l.PlanDrain(1); err == nil {
		t.Fatal("drain into a full layout succeeded")
	}
}
