package placement

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoCapacity is returned by PlanDrain when the surviving shards do
// not have enough free partition slots to absorb the draining shard.
var ErrNoCapacity = errors.New("placement: not enough free slots on the surviving shards")

// pageSize is the alignment grain of shard and partition sizes.
const pageSize = 4096

// Move is one planned range migration: copy the global bytes
// [Start, End) from their current home (shard From, local offset
// FromLocal) to shard To at local offset ToLocal, then flip routing.
// Plans coalesce adjacent partitions heading the same way, so one Move
// usually covers several partitions.
type Move struct {
	Start, End int
	From, To   int
	FromLocal  int
	ToLocal    int
}

// Bytes returns the move's payload size.
func (m Move) Bytes() int { return m.End - m.Start }

// slot is a partition's current home: a shard and a local slot index
// (in partition units, not bytes).
type slot struct {
	shard int32
	local int32
}

// Layout is the mutable partition-level placement state from which
// routing Tables are compiled. The global space [0, Parts*PartSize) is
// tiled by fixed-size partitions that never straddle a shard's local
// space; each shard contributes ShardSize/PartSize local slots of
// capacity. The caller (the facade's rebalance engine) serializes all
// mutation; Layout itself holds no locks.
type Layout struct {
	shardSize int
	partSize  int

	parts   []slot  // partition -> current home
	free    [][]int // per shard: free local slots, ascending
	removed []bool  // tombstoned (drained) shards, excluded from planning
	ring    *Ring
	uniform bool // still bit-for-bit the construction-time striping
}

// NewLayout returns the construction-time layout: shards groups of
// shardSize bytes each (a pageSize multiple), uniformly striped —
// partition p lives on shard p/perShard at local slot p%perShard. vnodes
// tunes the ring (DefaultVnodes if <= 0).
func NewLayout(shards, shardSize, vnodes int) *Layout {
	if shards < 1 || shardSize < pageSize || shardSize%pageSize != 0 {
		panic(fmt.Sprintf("placement: bad layout geometry shards=%d shardSize=%d", shards, shardSize))
	}
	l := &Layout{
		shardSize: shardSize,
		partSize:  partSizeFor(shardSize),
		ring:      NewRing(vnodes),
		uniform:   true,
	}
	per := shardSize / l.partSize
	l.parts = make([]slot, shards*per)
	for p := range l.parts {
		l.parts[p] = slot{shard: int32(p / per), local: int32(p % per)}
	}
	l.free = make([][]int, shards)
	l.removed = make([]bool, shards)
	for i := 0; i < shards; i++ {
		l.ring.Add(i)
	}
	return l
}

// partSizeFor picks the partition granularity: the largest page multiple
// dividing shardSize that still yields at least 16 partitions per shard
// (so a grow moves a meaningful fraction of the space range by range),
// falling back to a single page when the shard is too small to split 16
// ways evenly.
func partSizeFor(shardSize int) int {
	m := shardSize / pageSize
	for g := m / 16; g >= 1; g-- {
		if m%g == 0 {
			return g * pageSize
		}
	}
	return pageSize
}

// PartSize returns the partition granularity in bytes.
func (l *Layout) PartSize() int { return l.partSize }

// Parts returns the partition count tiling the global space.
func (l *Layout) Parts() int { return len(l.parts) }

// Shards returns the shard slot count, tombstoned slots included.
func (l *Layout) Shards() int { return len(l.free) }

// Serving returns the count of shards still eligible for placement.
func (l *Layout) Serving() int {
	n := 0
	for _, r := range l.removed {
		if !r {
			n++
		}
	}
	return n
}

// Removed reports whether a shard slot has been tombstoned by a drain.
func (l *Layout) Removed(shard int) bool {
	return shard >= 0 && shard < len(l.removed) && l.removed[shard]
}

// Owner returns partition p's current home shard.
func (l *Layout) Owner(p int) int { return int(l.parts[p].shard) }

// Grow appends n empty shard slots (all local slots free), places them
// on the ring, and returns their ids.
func (l *Layout) Grow(n int) []int {
	per := l.shardSize / l.partSize
	var ids []int
	for k := 0; k < n; k++ {
		id := len(l.free)
		slots := make([]int, per)
		for i := range slots {
			slots[i] = i
		}
		l.free = append(l.free, slots)
		l.removed = append(l.removed, false)
		l.ring.Add(id)
		ids = append(ids, id)
	}
	return ids
}

// Remove tombstones an empty shard slot: off the ring, excluded from all
// future planning. It panics if the shard still owns partitions — drain
// first (PlanDrain + Apply).
func (l *Layout) Remove(shard int) {
	for p, s := range l.parts {
		if int(s.shard) == shard {
			panic(fmt.Sprintf("placement: removing shard %d still owning partition %d", shard, p))
		}
	}
	l.removed[shard] = true
	l.free[shard] = nil
	l.ring.Remove(shard)
}

// PlanGrow plans the minimal-move rebalance after Grow: every partition
// whose ring owner is one of the newly added shards moves there (slots
// allowing); everything else stays put. With the added shards holding
// ~added/total of the ring, the plan moves ~that fraction of the space.
// Destination slots are allocated here (ascending), so the returned
// moves must each be Apply'd (or the layout rebuilt) — a plan is not a
// dry run. Adjacent partitions heading the same way coalesce.
func (l *Layout) PlanGrow(added []int) []Move {
	isNew := map[int]bool{}
	for _, s := range added {
		isNew[s] = true
	}
	var moves []Move
	for p := range l.parts {
		owner, ok := l.ring.Owner(PartKey(p))
		if !ok || !isNew[owner] || int(l.parts[p].shard) == owner {
			continue
		}
		if m, ok := l.reserve(p, owner); ok {
			moves = append(moves, m)
		}
	}
	return coalesce(moves)
}

// PlanDrain plans moving every partition off shard: each goes to its
// ring successor (the first clockwise owner that is neither the draining
// shard nor tombstoned), falling back to any serving shard with a free
// slot. ErrNoCapacity if the survivors cannot absorb it all; the layout
// is left unchanged in that case.
func (l *Layout) PlanDrain(shard int) ([]Move, error) {
	needed := 0
	for _, s := range l.parts {
		if int(s.shard) == shard {
			needed++
		}
	}
	avail := 0
	for i, f := range l.free {
		if i != shard && !l.removed[i] {
			avail += len(f)
		}
	}
	if avail < needed {
		return nil, fmt.Errorf("placement: draining shard %d needs %d slots, %d free elsewhere: %w",
			shard, needed, avail, ErrNoCapacity)
	}
	skip := func(s int) bool { return s == shard || l.Removed(s) }
	var moves []Move
	for p := range l.parts {
		if int(l.parts[p].shard) != shard {
			continue
		}
		if owner, ok := l.ring.OwnerExcluding(PartKey(p), skip); ok {
			if m, mok := l.reserve(p, owner); mok {
				moves = append(moves, m)
				continue
			}
		}
		// Successor full (or no ring successor): first serving shard
		// with room.
		placed := false
		for s := range l.free {
			if skip(s) {
				continue
			}
			if m, mok := l.reserve(p, s); mok {
				moves = append(moves, m)
				placed = true
				break
			}
		}
		if !placed {
			// The capacity pre-check makes this unreachable; keep the
			// invariant loud rather than silently leaving data behind.
			panic(fmt.Sprintf("placement: no slot for partition %d despite capacity check", p))
		}
	}
	return coalesce(moves), nil
}

// reserve allocates the lowest free slot on dst for partition p and
// returns the single-partition move. ok is false when dst has no room
// (the partition then stays where it is).
func (l *Layout) reserve(p, dst int) (Move, bool) {
	if dst < 0 || dst >= len(l.free) || len(l.free[dst]) == 0 {
		return Move{}, false
	}
	lo := l.free[dst][0]
	l.free[dst] = l.free[dst][1:]
	cur := l.parts[p]
	return Move{
		Start:     p * l.partSize,
		End:       (p + 1) * l.partSize,
		From:      int(cur.shard),
		FromLocal: int(cur.local) * l.partSize,
		To:        dst,
		ToLocal:   lo * l.partSize,
	}, true
}

// coalesce merges moves that are adjacent in global space with the same
// endpoints and contiguous local offsets.
func coalesce(moves []Move) []Move {
	var out []Move
	for _, m := range moves {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			run := prev.End - prev.Start
			if m.Start == prev.End && m.From == prev.From && m.To == prev.To &&
				m.FromLocal == prev.FromLocal+run && m.ToLocal == prev.ToLocal+run {
				prev.End = m.End
				continue
			}
		}
		out = append(out, m)
	}
	return out
}

// Apply commits one completed move into the layout: the covered
// partitions re-home to their reserved destination slots and the vacated
// source slots return to the free pool. The layout leaves the uniform
// fast path permanently on the first Apply.
func (l *Layout) Apply(m Move) {
	p0, p1 := m.Start/l.partSize, m.End/l.partSize
	for p := p0; p < p1; p++ {
		old := l.parts[p]
		l.parts[p] = slot{
			shard: int32(m.To),
			local: int32((m.ToLocal + (p-p0)*l.partSize) / l.partSize),
		}
		l.release(int(old.shard), int(old.local))
	}
	l.uniform = false
}

// release returns a local slot to a shard's free pool, keeping it
// ascending.
func (l *Layout) release(shard, lo int) {
	f := l.free[shard]
	i := sort.SearchInts(f, lo)
	f = append(f, 0)
	copy(f[i+1:], f[i:])
	f[i] = lo
	l.free[shard] = f
}

// Compile builds the immutable routing table for the current placement.
// While the layout is untouched it returns the uniform fast path —
// bit-for-bit the pre-placement arithmetic.
func (l *Layout) Compile(epoch uint64) *Table {
	if l.uniform {
		return Uniform(epoch, l.shardSize)
	}
	var ranges []Range
	for p, s := range l.parts {
		start := p * l.partSize
		local := int(s.local) * l.partSize
		if n := len(ranges); n > 0 {
			prev := &ranges[n-1]
			if prev.Shard == int(s.shard) && prev.End == start &&
				prev.Local+(prev.End-prev.Start) == local {
				prev.End += l.partSize
				continue
			}
		}
		ranges = append(ranges, Range{
			Start: start, End: start + l.partSize,
			Shard: int(s.shard), Local: local,
		})
	}
	return FromRanges(epoch, ranges)
}
