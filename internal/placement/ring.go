// Package placement decides which shard group owns which slice of a
// sharded deployment's global offset space — and lets that decision
// change while the deployment serves.
//
// Three layers, coldest to hottest:
//
//   - Ring is a consistent-hash ring over shard ids (vnodes smooth the
//     distribution). It answers "who should own this partition", and its
//     defining property is minimal movement: adding a shard reassigns
//     only the partitions the new shard's vnodes capture (~1/N of the
//     space), removing one reassigns only the partitions it held.
//   - Layout tracks where every fixed-size partition currently lives
//     (shard + local slot) and plans rebalances: a grow plan moves to the
//     new shards exactly the partitions the ring awards them; a drain
//     plan moves a departing shard's partitions to their ring successors.
//   - Table is the compiled, immutable routing table the facade's hot
//     paths read through an atomic pointer: sorted global ranges, each
//     mapping to a (shard, local offset) pair, with a divide-only fast
//     path while the layout is still the construction-time uniform
//     striping — so a deployment that never rebalances routes bit-for-bit
//     like the fixed arithmetic it replaced.
//
// The package is pure bookkeeping: no locks, no clocks, no I/O. The
// rebalance engine in the repro facade owns mutation ordering and
// publishes compiled Tables; everything here is deterministic in its
// inputs, so seeded tests reproduce exact move plans.
package placement

import "sort"

// DefaultVnodes is the per-shard virtual-node count: enough points that
// a new shard's share of the space concentrates near 1/N with a few
// dozen partitions, while keeping the ring a few hundred points.
const DefaultVnodes = 64

// point is one virtual node: a shard id pinned at a hash position.
type point struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring over shard ids. The zero value is not
// usable; build with NewRing. Not safe for concurrent mutation.
type Ring struct {
	vnodes int
	points []point // sorted by (hash, shard)
}

// NewRing returns an empty ring placing each shard at vnodes positions
// (DefaultVnodes if vnodes <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes}
}

// Add places shard's virtual nodes on the ring. Adding a shard twice is
// a no-op.
func (r *Ring) Add(shard int) {
	for _, p := range r.points {
		if p.shard == shard {
			return
		}
	}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{hash: pointHash(shard, v), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// Remove deletes shard's virtual nodes from the ring.
func (r *Ring) Remove(shard int) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Shards returns the distinct shard ids on the ring, ascending.
func (r *Ring) Shards() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range r.points {
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	sort.Ints(out)
	return out
}

// Owner returns the shard owning key: the first virtual node at or
// clockwise after the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key uint64) (shard int, ok bool) {
	return r.OwnerExcluding(key, nil)
}

// OwnerExcluding returns the first clockwise owner for which skip
// returns false — the successor rule that re-homes a draining shard's
// partitions. A nil skip excludes nothing. ok is false when every
// shard on the ring is excluded (or the ring is empty).
func (r *Ring) OwnerExcluding(key uint64, skip func(shard int) bool) (shard int, ok bool) {
	n := len(r.points)
	if n == 0 {
		return 0, false
	}
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= key })
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		if skip == nil || !skip(p.shard) {
			return p.shard, true
		}
	}
	return 0, false
}

// Owners returns up to n distinct shards clockwise from the key — the
// placement-replication view for callers that spread a partition across
// several groups. The repro facade's shard groups already replicate
// internally, so its rebalancer uses n=1; the wider surface keeps the
// ring reusable for placement-replicated layouts.
func (r *Ring) Owners(key uint64, n int) []int {
	cnt := len(r.points)
	if cnt == 0 || n <= 0 {
		return nil
	}
	start := sort.Search(cnt, func(i int) bool { return r.points[i].hash >= key })
	var out []int
	for i := 0; i < cnt && len(out) < n; i++ {
		sh := r.points[(start+i)%cnt].shard
		dup := false
		for _, s := range out {
			if s == sh {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, sh)
		}
	}
	return out
}

// PartKey hashes a partition index onto the ring's key space.
func PartKey(part int) uint64 {
	return fnv1a('p', uint64(part))
}

// pointHash positions virtual node v of a shard — the hash of the
// deterministic spelling "shard-<id>#<v>", so plans are reproducible
// across runs and processes.
func pointHash(shard, v int) uint64 {
	return fnv1a('s', uint64(shard), uint64(v))
}

// fnv1a is FNV-1a over a tag byte and the big-endian bytes of each
// word, finished with a splitmix64-style avalanche — sequential shard
// and partition ids are low-entropy input, and without the finisher
// their hashes cluster instead of interleaving on the ring.
func fnv1a(tag byte, words ...uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(tag)) * prime
	for _, w := range words {
		for shift := 56; shift >= 0; shift -= 8 {
			h = (h ^ (w >> uint(shift) & 0xff)) * prime
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
