package placement

import (
	"fmt"
	"sort"
)

// Range maps the global offsets [Start, End) onto one shard: global
// offset o lands at local offset Local + (o - Start) on Shard. Ranges in
// a Table are sorted by Start and tile the covered span exactly.
type Range struct {
	Start, End int
	Shard      int
	Local      int
}

// Table is one immutable placement version: the routing table the
// sharded facade's hot paths consult through an atomic pointer. Epoch
// identifies the version — it advances by one at every rebalance
// cut-over, and readers compare Table pointers (not epochs) to detect a
// flip mid-operation.
type Table struct {
	// Epoch is the placement version, 1 for the construction-time layout.
	Epoch uint64

	// stride > 0 is the uniform fast path: shard = off/stride,
	// local = off%stride — bit-for-bit the fixed arithmetic the facade
	// used before placement existed. Exactly one of stride/ranges is set.
	stride int
	ranges []Range
}

// Uniform returns the degenerate table for the construction-time
// striping: shard i owns [i*stride, (i+1)*stride).
func Uniform(epoch uint64, stride int) *Table {
	if stride <= 0 {
		panic(fmt.Sprintf("placement: non-positive stride %d", stride))
	}
	return &Table{Epoch: epoch, stride: stride}
}

// FromRanges returns a table routing through an explicit sorted tiling.
func FromRanges(epoch uint64, ranges []Range) *Table {
	if len(ranges) == 0 {
		panic("placement: empty range table")
	}
	for i, r := range ranges {
		if r.End <= r.Start {
			panic(fmt.Sprintf("placement: empty range %+v", r))
		}
		if i > 0 && ranges[i-1].End != r.Start {
			panic(fmt.Sprintf("placement: gap between %+v and %+v", ranges[i-1], r))
		}
	}
	return &Table{Epoch: epoch, ranges: ranges}
}

// IsUniform reports whether the table is still the construction-time
// striping (the divide-only fast path).
func (t *Table) IsUniform() bool { return t.stride > 0 }

// Ranges returns a copy of the table's tiling; for a uniform table it
// returns nil (the tiling is implicit in the stride).
func (t *Table) Ranges() []Range {
	if t.ranges == nil {
		return nil
	}
	out := make([]Range, len(t.ranges))
	copy(out, t.ranges)
	return out
}

// Locate routes one global offset: the owning shard, the local offset on
// that shard, and run — the count of bytes from off (inclusive) that stay
// contiguous on the same shard and local span, so callers split
// multi-shard operations by walking Locate over the span.
func (t *Table) Locate(off int) (shard, local, run int) {
	if t.stride > 0 {
		local = off % t.stride
		return off / t.stride, local, t.stride - local
	}
	i := sort.Search(len(t.ranges), func(i int) bool { return t.ranges[i].End > off })
	if i == len(t.ranges) {
		// Past the covered span — only reachable through the public
		// ShardFor probe, never through bounds-checked operations; pin to
		// the last range like the old off/stride arithmetic pinned to the
		// last shard.
		i--
	}
	r := t.ranges[i]
	d := off - r.Start
	if d < 0 {
		d = 0
	}
	return r.Shard, r.Local + d, r.End - off
}
