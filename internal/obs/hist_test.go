package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistBucketRoundTrip: every bucket's representative value indexes
// back into the same bucket, and indices are monotone in the value.
func TestHistBucketRoundTrip(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		v := histValue(i)
		if got := histIndex(v); got != i {
			t.Fatalf("histIndex(histValue(%d)) = %d", i, got)
		}
		if lo := histLower(i); histIndex(lo) != i {
			t.Fatalf("histIndex(histLower(%d)) = %d", i, histIndex(lo))
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, 1 << 40, math.MaxUint64 / 2} {
		idx := histIndex(v)
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

// TestHistPercentiles: a known uniform population reads back within the
// bucketing's relative resolution.
func TestHistPercentiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 10_000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 10_000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 5000 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
		{0.999, 9990 * time.Microsecond},
	}
	for _, c := range checks {
		got := h.Percentile(c.q)
		rel := math.Abs(float64(got-c.want)) / float64(c.want)
		if rel > 0.05 {
			t.Errorf("p%g = %v, want ~%v (rel err %.3f)", c.q*100, got, c.want, rel)
		}
		snap := h.Snapshot().Percentile(c.q)
		if snap != got {
			t.Errorf("snapshot p%g = %v, live %v", c.q*100, snap, got)
		}
	}
	if m := h.Mean(); m < 4500*time.Microsecond || m > 5500*time.Microsecond {
		t.Errorf("mean = %v, want ~5ms", m)
	}
}

// TestHistInterpolation pins the bucket-boundary fix: with every sample
// in one wide bucket, quantiles spread across the bucket's span instead
// of all reporting the inclusive upper edge (the old behavior, a
// systematic ~3% upward bias), and the extremes stay inside the bucket.
func TestHistInterpolation(t *testing.T) {
	var h Hist
	v := 1000 * time.Microsecond // one log bucket holds all samples
	for i := 0; i < 1000; i++ {
		h.Record(v)
	}
	i := histIndex(uint64(v))
	lo, hi := time.Duration(histLower(i)), time.Duration(histValue(i))
	p01, p50, p999 := h.Percentile(0.01), h.Percentile(0.5), h.Percentile(0.999)
	if p01 < lo || p999 > hi {
		t.Fatalf("percentiles escaped the bucket: p01=%v p999=%v, bucket [%v, %v]", p01, p999, lo, hi)
	}
	if !(p01 < p50 && p50 < p999) {
		t.Fatalf("percentiles not interpolated within the bucket: p01=%v p50=%v p999=%v", p01, p50, p999)
	}
	mid := lo + (hi-lo)/2
	if d := p50 - mid; d < -(hi-lo)/4 || d > (hi-lo)/4 {
		t.Fatalf("p50 = %v, want near bucket midpoint %v", p50, mid)
	}
}

// TestHistSnapshotMerge: merging sparse snapshots equals merging the
// live histograms.
func TestHistSnapshotMerge(t *testing.T) {
	var a, b, both Hist
	for i := 1; i <= 500; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		both.Record(time.Duration(i) * time.Microsecond)
	}
	for i := 400; i <= 900; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
		both.Record(time.Duration(i) * time.Millisecond)
	}
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	if sa.Count != both.Count() || time.Duration(sa.Sum) != both.Sum() {
		t.Fatalf("merged snapshot count/sum = %d/%d, want %d/%v", sa.Count, sa.Sum, both.Count(), both.Sum())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := sa.Percentile(q), both.Percentile(q); got != want {
			t.Fatalf("merged snapshot p%g = %v, live merged %v", q*100, got, want)
		}
	}
	for i := 1; i < len(sa.Buckets); i++ {
		if sa.Buckets[i-1].I >= sa.Buckets[i].I {
			t.Fatalf("merged buckets not sorted at %d", i)
		}
	}
}

// TestHistMergeConcurrent: concurrent recording plus a merge preserves
// the total sample count and sum.
func TestHistMergeConcurrent(t *testing.T) {
	var a, b Hist
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Record(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	b.Record(time.Millisecond)
	b.Merge(&a)
	if b.Count() != 8001 {
		t.Fatalf("merged count = %d, want 8001", b.Count())
	}
	if b.Sum() != a.Sum()+time.Millisecond {
		t.Fatalf("merged sum = %v, want %v", b.Sum(), a.Sum()+time.Millisecond)
	}
	if b.Percentile(1) < time.Millisecond {
		t.Fatalf("max percentile %v below the merged max", b.Percentile(1))
	}
}
