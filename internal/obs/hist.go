// Package obs is the repository's dependency-free observability layer:
// a registry of atomic counters, gauges and log-bucketed latency
// histograms, plus a fixed-size structured event ring for control-plane
// traces (failover, lease expiry, epoch bumps, repair phase
// transitions, WAL rotation and fsync, healer retries).
//
// The layer is built for two hostile environments at once. On the
// simulated side, instruments must not perturb the deterministic sim
// metrics the bench harness pins bit-for-bit, so nothing in this
// package reads a clock or advances one: callers hand in durations and
// timestamps they already computed. On the serving side, instruments
// sit on paths that commit hundreds of thousands of transactions per
// second, so every recording operation is a handful of atomic adds with
// zero allocations; maps and locks appear only at registration and
// scrape time. Every instrument method is nil-receiver-safe, so an
// uninstrumented deployment pays one predictable branch per site.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a concurrency-safe log-bucketed latency histogram — promoted
// from internal/tpc, where it was the shared wall-clock instrument of
// the serving stack (cmd/kvload, the kvserver tests). Values are
// recorded in nanoseconds into buckets of ~3% relative width (32
// sub-buckets per power of two), so a p999 read out of the histogram is
// within a few percent of the exact order statistic while Record stays
// a single atomic add — cheap enough to call from thousands of client
// goroutines without coordinating.
//
// The zero value is ready to use. Record, Count, Sum, Percentile,
// Snapshot and Merge may be called concurrently; percentiles read a
// live histogram with no snapshot (fine for reporting after the workers
// have joined — use Snapshot for a coherent scrape).
type Hist struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
}

// Bucketing: values below histSub land in linear buckets [0, histSub);
// larger values are normalized to a mantissa in [histSub, 2*histSub)
// and indexed by (exponent, mantissa).
const (
	histSubBits = 5
	histSub     = 1 << histSubBits             // 32 sub-buckets per power of two
	histBuckets = histSub * (64 - histSubBits) // covers the full uint64 range
)

// histIndex maps a nanosecond value to its bucket.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - histSubBits - 1 // v>>exp is in [histSub, 2*histSub)
	return exp*histSub + int(v>>exp)
}

// histValue returns the inclusive upper edge of bucket i.
func histValue(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := i/histSub - 1
	mant := uint64(i%histSub) + histSub
	return (mant+1)<<exp - 1
}

// histLower returns the inclusive lower edge of bucket i.
func histLower(i int) uint64 {
	if i == 0 {
		return 0
	}
	return histValue(i-1) + 1
}

// Record adds one latency sample.
func (h *Hist) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[histIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all recorded samples.
func (h *Hist) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average recorded latency (0 with no samples).
func (h *Hist) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// interp returns the value at 1-based rank `pos` of the `c` samples in
// bucket i, linearly interpolated across the bucket's span. A rank at
// the bucket's last sample reads the upper edge (the old behavior); a
// rank at its first sample reads just past the lower edge instead of
// jumping a full bucket width, which removes the systematic ~3% upward
// bias the upper-edge-only read had at every bucket boundary.
func interp(i int, pos, c uint64) time.Duration {
	lo, hi := histLower(i), histValue(i)
	if lo >= hi || c <= 1 {
		return time.Duration(hi)
	}
	return time.Duration(float64(lo) + float64(hi-lo)*float64(pos)/float64(c))
}

// Percentile returns the latency at quantile q in [0, 1] —
// Percentile(0.5) is the median, Percentile(0.999) the p999 — with the
// ~3% relative resolution of the bucketing, interpolated within the
// landing bucket. Returns 0 with no samples.
func (h *Hist) Percentile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := percentileRank(q, n)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			return interp(i, rank-(cum-c), c)
		}
	}
	return time.Duration(histValue(histBuckets - 1))
}

// percentileRank maps quantile q over n samples to a 1-based rank.
func percentileRank(q float64, n uint64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return uint64(q*float64(n-1)) + 1
}

// Merge folds other's samples into h.
func (h *Hist) Merge(other *Hist) {
	if h == nil || other == nil {
		return
	}
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// Reset zeroes the histogram. Concurrent with Record it is not a
// point-in-time cut — samples racing the sweep land on either side —
// but the registry serializes Reset against Snapshot, which is the
// coherence scrape deltas need.
func (h *Hist) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Snapshot captures the histogram's current contents as a sparse,
// serializable copy. The per-bucket reads are individually atomic, so a
// snapshot taken concurrently with Record may be mid-sample by one
// count — fine for scraping.
func (h *Hist) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			s.Buckets = append(s.Buckets, HistBucket{I: i, N: c})
		}
	}
	return s
}

// HistBucket is one occupied bucket of a HistSnapshot.
type HistBucket struct {
	// I is the bucket index; N the sample count in it.
	I int    `json:"i"`
	N uint64 `json:"n"`
}

// HistSnapshot is a serializable point-in-time copy of a Hist: the
// form histograms travel in (DB.Metrics, the kvwire METRICS opcode)
// while still answering percentile queries on the far side.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"` // nanoseconds
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns the snapshot's average sample (0 with no samples).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Percentile returns the latency at quantile q, with the same
// interpolated bucket resolution as Hist.Percentile.
func (s HistSnapshot) Percentile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := percentileRank(q, s.Count)
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= rank {
			return interp(b.I, rank-(cum-b.N), b.N)
		}
	}
	return time.Duration(histValue(histBuckets - 1))
}

// Merge folds other into s, summing per-bucket counts. Both operands'
// bucket lists are index-sorted (Snapshot emits them in order); the
// result stays sorted.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	if other.Count == 0 && len(other.Buckets) == 0 {
		return
	}
	merged := make([]HistBucket, 0, len(s.Buckets)+len(other.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(other.Buckets) {
		switch {
		case j >= len(other.Buckets) || (i < len(s.Buckets) && s.Buckets[i].I < other.Buckets[j].I):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || other.Buckets[j].I < s.Buckets[i].I:
			merged = append(merged, other.Buckets[j])
			j++
		default:
			merged = append(merged, HistBucket{I: s.Buckets[i].I, N: s.Buckets[i].N + other.Buckets[j].N})
			i++
			j++
		}
	}
	s.Buckets = merged
	s.Count += other.Count
	s.Sum += other.Sum
}
