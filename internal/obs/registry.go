package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count (operations, bytes,
// errors). All methods are nil-receiver-safe no-ops, so an instrumented
// component can hold nil instruments when no registry is attached.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed level (window occupancy, backlog,
// per-backup lag). Gauges are state, not accumulation: ResetMeasurement
// clears counters and histograms but leaves gauges in place.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// MetricName reports whether name is a legal metric name: lowercase
// dotted identifiers, `^[a-z][a-z0-9_.]*$`. The same predicate is
// linted over the emitted catalog by `benchjson -check`.
func MetricName(name string) bool {
	if len(name) == 0 || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' && c != '.' {
			return false
		}
	}
	return true
}

// Registry owns a deployment's instruments and its event ring. All
// registration happens at component construction (cold, under a lock);
// the returned instrument pointers are then recorded through with plain
// atomics, so the hot paths never touch the registry again. A nil
// *Registry is the off switch: every method no-ops (registrations
// return nil instruments, which are themselves no-ops), and the
// instrumented code paths stay bit-for-bit identical to the
// pre-observability behavior.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	window   uint64 // bumped by Reset; stamps snapshots so scrape deltas detect window cuts
	ring     Ring
}

// NewRegistry returns an empty registry with an empty event ring.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// register validates name and uniqueness across all instrument kinds.
// Invalid or cross-kind duplicate names are programmer errors and
// panic; same-kind re-registration returns the existing instrument.
func (r *Registry) register(name, kind string) {
	if !MetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want ^[a-z][a-z0-9_.]*$)", name))
	}
	var clash string
	switch {
	case kind != "counter" && r.counters[name] != nil:
		clash = "counter"
	case kind != "gauge" && r.gauges[name] != nil:
		clash = "gauge"
	case kind != "hist" && r.hists[name] != nil:
		clash = "hist"
	}
	if clash != "" {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s", name, clash))
	}
}

// Counter registers (or returns the already-registered) counter name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, "counter")
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or returns the already-registered) gauge name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, "gauge")
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist registers (or returns the already-registered) histogram name.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, "hist")
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Emit appends a structured event to the registry's ring. Safe on a nil
// registry; allocation-free (kind must be a constant or otherwise
// retained string).
func (r *Registry) Emit(kind string, at int64, node int, a, b uint64) {
	if r == nil {
		return
	}
	r.ring.Emit(kind, at, node, a, b)
}

// Reset zeroes every counter and histogram and bumps the window epoch —
// the ResetMeasurement hook. Gauges (instantaneous state) and the event
// ring (a timeline, like the FailureEvent record) are left in place.
// Reset holds the registry lock, so it is atomic with respect to
// Snapshot: a scrape sees either the old window or the new one, never a
// half-cleared mix.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, h := range r.hists {
		h.Reset()
	}
	r.window++
}

// Snapshot captures every instrument and the event ring into a
// serializable copy. Scrape-path only: it allocates freely.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Window: r.window}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.v.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.v.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Hists[n] = h.Snapshot()
		}
	}
	s.Events = r.ring.Snapshot(nil)
	return s
}
