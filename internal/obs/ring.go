package obs

import "sync"

// Event kinds emitted by the instrumented packages. Kinds are dotted
// constants so a consumer can prefix-filter (all "repair." events, all
// "wal." events); the A/B payload words are kind-specific and
// documented in DESIGN.md's catalog.
const (
	EventDetectSuspect = "detect.suspect" // node suspected; A = epoch
	EventDetectDead    = "detect.dead"    // node declared dead; A = epoch
	EventLeaseExpired  = "lease.expired"  // admission fenced; A = epoch
	EventEpochBump     = "epoch.bump"     // membership era advanced; A = new epoch
	EventFailover      = "failover"       // A = new epoch, B = promoted backup index
	EventRepairStart   = "repair.start"   // A = chunks to copy
	EventRepairCatchup = "repair.catchup" // copy done, redo catch-up begins; A = copied bytes
	EventRepairCutover = "repair.cutover" // replica enrolled; A = epoch
	EventRepairAbort   = "repair.abort"   // job abandoned (source died mid-copy)
	EventWALRotate     = "wal.rotate"     // checkpoint snapshot + log rotation; A = synced seq
	EventWALFsync      = "wal.fsync"      // A = batched frames, B = bytes (sampled: first sync and every 1024th)
	EventWALTruncate   = "wal.truncate"   // torn tail dropped on recovery; A = bytes
	EventHealRetry     = "heal.retry"     // kvserver healer attempt failed; A = attempt, B = backoff ns
	EventHealed        = "heal.ok"        // kvserver healer reopened the store; A = attempts

	EventRebalanceStart = "rebalance.start" // elastic rebalance begins; A = planned moves, B = planned bytes
	EventRangeCutover   = "range.cutover"   // one range's routing flipped; A = new placement epoch, B = range start offset
	EventRebalanceDone  = "rebalance.done"  // plan drained; A = ranges moved, B = bytes shipped
)

// RingSize is the fixed capacity of an event ring. Older events are
// overwritten; Seq numbers stay monotone so a scraper can detect loss.
const RingSize = 1024

// Event is one structured trace record. At is nanoseconds in the
// producer's time domain: simulated time for replication-tier events,
// host wall time for server-tier events (the Kind implies which).
type Event struct {
	Seq   uint64 `json:"seq"`
	At    int64  `json:"at"`
	Kind  string `json:"kind"`
	Node  int    `json:"node"`        // replica index, -1 when not applicable
	Shard int    `json:"shard"`       // stamped by the sharded facade
	A     uint64 `json:"a,omitempty"` // kind-specific detail words
	B     uint64 `json:"b,omitempty"`
}

// Ring is a fixed-size overwrite-oldest buffer of Events. Emit takes a
// mutex — events fire on control paths (failovers, repairs, fsyncs),
// not per-transaction — and never allocates: the buffer is a fixed
// array and Kind strings are constants.
type Ring struct {
	mu  sync.Mutex
	seq uint64 // total events ever emitted
	buf [RingSize]Event
}

// Emit appends one event.
func (r *Ring) Emit(kind string, at int64, node int, a, b uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.seq%RingSize] = Event{Seq: r.seq, At: at, Kind: kind, Node: node, A: a, B: b}
	r.seq++
	r.mu.Unlock()
}

// Len returns the number of events currently held (≤ RingSize).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < RingSize {
		return int(r.seq)
	}
	return RingSize
}

// Snapshot appends the ring's events, oldest first, to dst and returns
// the extended slice.
func (r *Ring) Snapshot(dst []Event) []Event {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start := uint64(0)
	if r.seq > RingSize {
		start = r.seq - RingSize
	}
	for s := start; s < r.seq; s++ {
		dst = append(dst, r.buf[s%RingSize])
	}
	return dst
}
