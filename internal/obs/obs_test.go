package obs

import (
	"strings"
	"testing"
	"time"
)

func TestMetricName(t *testing.T) {
	good := []string{"a", "repl.commit.latency.quorum", "server.op.put", "x_y.z9"}
	bad := []string{"", "Repl.commit", "9abc", "_x", "repl-commit", "repl commit", "répl"}
	for _, n := range good {
		if !MetricName(n) {
			t.Errorf("MetricName(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if MetricName(n) {
			t.Errorf("MetricName(%q) = true, want false", n)
		}
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(3)
	r.Hist("c").Record(time.Millisecond)
	r.Emit(EventFailover, 1, 0, 2, 3)
	r.Reset()
	if s := r.Snapshot(); !s.Empty() {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	if n := r.Names(); n != nil {
		t.Fatalf("nil registry names: %v", n)
	}
}

func TestRegistryRegisterAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repl.commit.txns")
	c.Add(41)
	c.Inc()
	if c2 := r.Counter("repl.commit.txns"); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	r.Gauge("repl.backup0.lag").Set(-7)
	r.Hist("repl.flush.latency").Record(2 * time.Millisecond)
	r.Emit(EventEpochBump, 100, 1, 2, 0)

	s := r.Snapshot()
	if s.Counter("repl.commit.txns") != 42 {
		t.Fatalf("counter = %d", s.Counter("repl.commit.txns"))
	}
	if s.Gauge("repl.backup0.lag") != -7 {
		t.Fatalf("gauge = %d", s.Gauge("repl.backup0.lag"))
	}
	if s.Hist("repl.flush.latency").Count != 1 {
		t.Fatalf("hist count = %d", s.Hist("repl.flush.latency").Count)
	}
	if ev := s.EventsKind(EventEpochBump); len(ev) != 1 || ev[0].A != 2 || ev[0].Node != 1 {
		t.Fatalf("events = %+v", ev)
	}
	want := []string{"repl.backup0.lag", "repl.commit.txns", "repl.flush.latency"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		f()
	}
	mustPanic(func() { r.Counter("Bad-Name") })
	r.Counter("dup.name")
	mustPanic(func() { r.Gauge("dup.name") }) // cross-kind clash
	mustPanic(func() { r.Hist("dup.name") })
}

// TestRegistryReset: counters and histograms clear, gauges and the
// event ring survive, and the window epoch stamps the next snapshot.
func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(9)
	r.Hist("h").Record(time.Second)
	r.Emit(EventFailover, 7, 0, 1, 0)
	r.Reset()
	s := r.Snapshot()
	if s.Window != 1 {
		t.Fatalf("window = %d, want 1", s.Window)
	}
	if s.Counter("c") != 0 || s.Hist("h").Count != 0 {
		t.Fatalf("counter/hist survived reset: %+v", s)
	}
	if s.Gauge("g") != 9 {
		t.Fatalf("gauge cleared by reset: %d", s.Gauge("g"))
	}
	if len(s.Events) != 1 {
		t.Fatalf("event ring cleared by reset: %d events", len(s.Events))
	}
}

// TestRingWrap: a ring past capacity keeps the newest RingSize events
// with monotone sequence numbers.
func TestRingWrap(t *testing.T) {
	var r Ring
	const n = RingSize + 100
	for i := 0; i < n; i++ {
		r.Emit(EventWALFsync, int64(i), -1, uint64(i), 0)
	}
	if r.Len() != RingSize {
		t.Fatalf("len = %d", r.Len())
	}
	ev := r.Snapshot(nil)
	if len(ev) != RingSize {
		t.Fatalf("snapshot len = %d", len(ev))
	}
	if ev[0].Seq != n-RingSize || ev[len(ev)-1].Seq != n-1 {
		t.Fatalf("seq range [%d, %d], want [%d, %d]", ev[0].Seq, ev[len(ev)-1].Seq, n-RingSize, n-1)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("gap at %d", i)
		}
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("ops").Add(10)
	a.Gauge("lag").Set(3)
	a.Hist("lat").Record(time.Millisecond)
	b := NewRegistry()
	b.Counter("ops").Add(5)
	b.Counter("errs").Add(1)
	b.Gauge("lag").Set(4)
	b.Hist("lat").Record(3 * time.Millisecond)
	b.Emit(EventFailover, 9, 2, 0, 0)

	s := a.Snapshot()
	sb := b.Snapshot()
	for i := range sb.Events {
		sb.Events[i].Shard = 1
	}
	s.Merge(sb)
	if s.Counter("ops") != 15 || s.Counter("errs") != 1 {
		t.Fatalf("merged counters: %+v", s.Counters)
	}
	if s.Gauge("lag") != 7 {
		t.Fatalf("merged gauge = %d", s.Gauge("lag"))
	}
	if h := s.Hist("lat"); h.Count != 2 || time.Duration(h.Sum) != 4*time.Millisecond {
		t.Fatalf("merged hist: %+v", h)
	}
	if ev := s.EventsKind(EventFailover); len(ev) != 1 || ev[0].Shard != 1 {
		t.Fatalf("merged events: %+v", s.Events)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.ops.put").Add(3)
	r.Gauge("repl.backup0.lag").Set(2)
	h := r.Hist("server.op.put.latency")
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE server_ops_put counter\nserver_ops_put 3\n",
		"# TYPE repl_backup0_lag gauge\nrepl_backup0_lag 2\n",
		"# TYPE server_op_put_latency summary\n",
		"server_op_put_latency{quantile=\"0.5\"} ",
		"server_op_put_latency_count 100\n",
		"obs_window 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ".") && strings.Contains(out, "# TYPE server.ops") {
		t.Fatal("unmangled metric name leaked into prometheus output")
	}
}
