package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is a serializable point-in-time copy of a registry: the
// shape metrics travel in across every exposure surface (DB.Metrics on
// the facades, the kvwire METRICS opcode body, the Prometheus text
// endpoint's source). The zero value means "no registry attached".
type Snapshot struct {
	// Window is the registry's reset epoch: it increments on every
	// ResetMeasurement, so a scraper computing deltas between two
	// snapshots can discard pairs that straddle a window cut.
	Window   uint64                  `json:"window"`
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
	Events   []Event                 `json:"events,omitempty"`
}

// Empty reports whether the snapshot carries no instruments and no
// events — the signature of a deployment with observability off.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Hists) == 0 && len(s.Events) == 0
}

// Counter returns the named counter's value (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge's level (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Hist returns the named histogram snapshot (zero if absent).
func (s Snapshot) Hist(name string) HistSnapshot { return s.Hists[name] }

// EventsKind returns the snapshot's events of the given kind, in ring
// order.
func (s Snapshot) EventsKind(kind string) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Merge folds other into s: counters and gauges sum, same-name
// histograms merge bucket-wise, events concatenate (the sharded facade
// stamps Shard before merging so provenance survives), and Window takes
// the max. Merging into a zero Snapshot copies other.
func (s *Snapshot) Merge(other Snapshot) {
	if other.Window > s.Window {
		s.Window = other.Window
	}
	if len(other.Counters) > 0 {
		if s.Counters == nil {
			s.Counters = make(map[string]uint64, len(other.Counters))
		}
		for n, v := range other.Counters {
			s.Counters[n] += v
		}
	}
	if len(other.Gauges) > 0 {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64, len(other.Gauges))
		}
		for n, v := range other.Gauges {
			s.Gauges[n] += v
		}
	}
	if len(other.Hists) > 0 {
		if s.Hists == nil {
			s.Hists = make(map[string]HistSnapshot, len(other.Hists))
		}
		for n, h := range other.Hists {
			cur := s.Hists[n]
			cur.Merge(h)
			s.Hists[n] = cur
		}
	}
	s.Events = append(s.Events, other.Events...)
}

// Names returns every metric name present in the snapshot, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Hists))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// promName mangles a dotted metric name into the Prometheus exposition
// charset ([a-zA-Z_:][a-zA-Z0-9_:]*): dots become underscores.
func promName(name string) string { return strings.ReplaceAll(name, ".", "_") }

// promQuantiles are the summary quantiles the text endpoint exports.
var promQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as-is,
// histograms as summaries with p50/p90/p99/p999 quantiles plus _sum
// (seconds) and _count. Metric names have dots mangled to underscores.
func WritePrometheus(w io.Writer, s Snapshot) error {
	// Deterministic output order: sorted within each kind.
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		emit("# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		emit("# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Hists[n]
		pn := promName(n)
		emit("# TYPE %s summary\n", pn)
		for _, q := range promQuantiles {
			emit("%s{quantile=\"%g\"} %.9f\n", pn, q, h.Percentile(q).Seconds())
		}
		emit("%s_sum %.9f\n%s_count %d\n", pn, (float64(h.Sum) / 1e9), pn, h.Count)
	}
	emit("# TYPE obs_window gauge\nobs_window %d\n", s.Window)
	emit("# TYPE obs_events gauge\nobs_events %d\n", len(s.Events))
	return err
}
