// Package detect is the failure-detection and membership substrate of the
// autopilot: a per-node heartbeat detector that moves peers through the
// classic Alive → Suspect → Dead lifecycle, and a simulated-time lease that
// lets a deposed primary prove to itself that it must stop serving.
//
// The detector is deliberately ignorant of the replication machinery: it
// sees only named peers and the simulated instants their heartbeats were
// heard. The replication layer owns the semantics of a transition (promote,
// re-enroll, drop) and the traffic accounting of the beats themselves
// (mem.CatControl on the Memory Channel).
//
// # Timing model
//
// Peers beat every Config.HeartbeatPeriod. A peer whose last beat is older
// than SuspectTimeout is Suspect; one more missed beat — SuspectTimeout +
// HeartbeatPeriod of silence — confirms it Dead. Transitions are stamped
// with the threshold-crossing instant, not the instant of the Tick that
// observed them: the simulation pumps the detector at commit grain, and
// stamping the crossing keeps detection latency a property of the
// configured timeouts rather than of the pump schedule. The resulting
// bound, for a peer that fails at time F having last beaten at B ≤ F, is
//
//	detectedAt = B + SuspectTimeout + HeartbeatPeriod
//	           ≤ F + SuspectTimeout + HeartbeatPeriod
//
// which is the MTTD guarantee the chaos harness asserts.
package detect

import (
	"fmt"

	"repro/internal/sim"
)

// State is one peer's position in the failure-detection lifecycle.
type State int

// Detector states.
const (
	// Alive means heartbeats are arriving within the suspect timeout.
	Alive State = iota
	// Suspect means the peer has been silent past SuspectTimeout: it is
	// excluded from nothing yet, but one more missed beat condemns it.
	Suspect
	// Dead means the peer stayed silent past SuspectTimeout plus a full
	// heartbeat period: the monitor acts (failover, re-enrollment).
	Dead
)

// String names the state.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config times the detector.
type Config struct {
	// HeartbeatPeriod is the interval between beats.
	HeartbeatPeriod sim.Dur
	// SuspectTimeout is the silence that moves a peer to Suspect.
	SuspectTimeout sim.Dur
}

// SuspectAfter returns the silence that makes a peer Suspect.
func (c Config) SuspectAfter() sim.Dur { return c.SuspectTimeout }

// DeadAfter returns the silence that confirms a peer Dead: the suspect
// timeout plus one more whole missed beat.
func (c Config) DeadAfter() sim.Dur { return c.SuspectTimeout + c.HeartbeatPeriod }

// Transition is one observed state change.
type Transition struct {
	Peer string
	From State
	To   State
	// At is the simulated instant the peer crossed the threshold (for
	// Suspect/Dead) or the beat that revived it (for Alive).
	At sim.Time
}

// peerState is the detector's record of one watched peer.
type peerState struct {
	name      string
	lastHeard sim.Time
	state     State
}

// Detector watches a set of named peers. Not safe for concurrent use; the
// owning node drives it under its own serialization (the replica group's
// mutex).
type Detector struct {
	cfg   Config
	peers []*peerState // watch order, for deterministic transition reports
	index map[string]*peerState
}

// New returns an empty detector.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg, index: make(map[string]*peerState)}
}

// Watch enrolls a peer, treating now as its first heartbeat. Re-watching a
// known peer resets it to Alive.
func (d *Detector) Watch(name string, now sim.Time) {
	if p, ok := d.index[name]; ok {
		p.lastHeard, p.state = now, Alive
		return
	}
	p := &peerState{name: name, lastHeard: now}
	d.peers = append(d.peers, p)
	d.index[name] = p
}

// Forget drops a peer from the watch set (it left the membership).
func (d *Detector) Forget(name string) {
	p, ok := d.index[name]
	if !ok {
		return
	}
	delete(d.index, name)
	for i, q := range d.peers {
		if q == p {
			d.peers = append(d.peers[:i], d.peers[i+1:]...)
			return
		}
	}
}

// Heartbeat records a beat from the peer at the given instant. A beat
// revives a Suspect or Dead peer (the transition is reported by the next
// Tick as usual state evaluation — a beat IS the evaluation, so the revival
// is applied immediately and returned).
func (d *Detector) Heartbeat(name string, at sim.Time) (Transition, bool) {
	p, ok := d.index[name]
	if !ok {
		return Transition{}, false
	}
	if at > p.lastHeard {
		p.lastHeard = at
	}
	if p.state != Alive {
		tr := Transition{Peer: name, From: p.state, To: Alive, At: at}
		p.state = Alive
		return tr, true
	}
	return Transition{}, false
}

// Tick evaluates every peer against the current simulated time and returns
// the transitions that occurred, in watch order. A peer that sailed past
// both thresholds since the last tick reports only its final transition
// (X → Dead), stamped with the Dead threshold-crossing instant.
func (d *Detector) Tick(now sim.Time) []Transition {
	var out []Transition
	for _, p := range d.peers {
		target, at := d.eval(p, now)
		if target != p.state {
			out = append(out, Transition{Peer: p.name, From: p.state, To: target, At: at})
			p.state = target
		}
	}
	return out
}

// eval returns the state the peer should hold at now, and the instant it
// crossed into it.
func (d *Detector) eval(p *peerState, now sim.Time) (State, sim.Time) {
	silence := sim.Dur(now - p.lastHeard)
	switch {
	case silence >= d.cfg.DeadAfter():
		return Dead, p.lastHeard + sim.Time(d.cfg.DeadAfter())
	case silence >= d.cfg.SuspectAfter():
		return Suspect, p.lastHeard + sim.Time(d.cfg.SuspectAfter())
	default:
		return Alive, p.lastHeard
	}
}

// State returns the peer's current state as of the last Tick/Heartbeat
// (Dead for an unknown peer: a machine the membership does not name is
// simply gone).
func (d *Detector) State(name string) State {
	if p, ok := d.index[name]; ok {
		return p.state
	}
	return Dead
}

// LastHeard returns the instant of the peer's most recent beat.
func (d *Detector) LastHeard(name string) sim.Time {
	if p, ok := d.index[name]; ok {
		return p.lastHeard
	}
	return 0
}

// DeadlineFor returns the instant the peer will be declared Dead if it
// stays silent: its last beat plus the dead-after silence.
func (d *Detector) DeadlineFor(name string) sim.Time {
	if p, ok := d.index[name]; ok {
		return p.lastHeard + sim.Time(d.cfg.DeadAfter())
	}
	return 0
}

// Peers returns the watched peer names in watch order.
func (d *Detector) Peers() []string {
	out := make([]string, len(d.peers))
	for i, p := range d.peers {
		out[i] = p.name
	}
	return out
}

// Lease is a simulated-time lease on the right to serve. The primary renews
// it at every heartbeat round it successfully exchanges; a primary that
// cannot renew (partitioned, deposed) watches its own lease run out and
// refuses new commits from that instant — the fencing half of the
// no-split-brain argument. The promotion half is timing: a new primary is
// promoted no earlier than the old one's dead-declaration instant, and the
// lease duration never exceeds that silence (Config.DeadAfter), so the old
// primary has always fenced itself by the time the new one serves.
type Lease struct {
	dur    sim.Dur
	expiry sim.Time
}

// NewLease returns a lease of the given duration, initially renewed at now.
func NewLease(dur sim.Dur, now sim.Time) *Lease {
	return &Lease{dur: dur, expiry: now + sim.Time(dur)}
}

// Renew extends the lease from the given renewal instant. Renewals never
// shorten the lease.
func (l *Lease) Renew(now sim.Time) {
	if e := now + sim.Time(l.dur); e > l.expiry {
		l.expiry = e
	}
}

// Valid reports whether the lease still holds at now.
func (l *Lease) Valid(now sim.Time) bool { return now < l.expiry }

// Expiry returns the instant the lease runs out absent renewal.
func (l *Lease) Expiry() sim.Time { return l.expiry }
