package detect

import (
	"testing"

	"repro/internal/sim"
)

var cfg = Config{
	HeartbeatPeriod: 50 * sim.Microsecond,
	SuspectTimeout:  200 * sim.Microsecond,
}

func TestLifecycleThresholds(t *testing.T) {
	d := New(cfg)
	d.Watch("b0", 0)

	if got := d.State("b0"); got != Alive {
		t.Fatalf("fresh peer state = %v, want alive", got)
	}
	// Beats keep it alive.
	for at := sim.Time(0); at < sim.Time(1*sim.Millisecond); at += sim.Time(cfg.HeartbeatPeriod) {
		d.Heartbeat("b0", at)
		if trs := d.Tick(at + sim.Time(cfg.HeartbeatPeriod)/2); len(trs) != 0 {
			t.Fatalf("spurious transitions while beating: %v", trs)
		}
	}
	last := d.LastHeard("b0")

	// Silence past SuspectTimeout: suspect, stamped at the crossing.
	trs := d.Tick(last + sim.Time(cfg.SuspectAfter()) + 1)
	if len(trs) != 1 || trs[0].To != Suspect {
		t.Fatalf("transitions = %v, want one ->suspect", trs)
	}
	if trs[0].At != last+sim.Time(cfg.SuspectAfter()) {
		t.Fatalf("suspect stamped %v, want %v", trs[0].At, last+sim.Time(cfg.SuspectAfter()))
	}

	// One more missed beat: dead.
	trs = d.Tick(last + sim.Time(cfg.DeadAfter()) + 1)
	if len(trs) != 1 || trs[0].To != Dead {
		t.Fatalf("transitions = %v, want one ->dead", trs)
	}
	if trs[0].At != last+sim.Time(cfg.DeadAfter()) {
		t.Fatalf("dead stamped %v, want %v", trs[0].At, last+sim.Time(cfg.DeadAfter()))
	}
	if d.DeadlineFor("b0") != last+sim.Time(cfg.DeadAfter()) {
		t.Fatalf("DeadlineFor = %v, want %v", d.DeadlineFor("b0"), last+sim.Time(cfg.DeadAfter()))
	}
}

func TestSkippedSuspectReportsOnlyDead(t *testing.T) {
	d := New(cfg)
	d.Watch("b0", 0)
	// A tick far past both thresholds reports the final transition only.
	trs := d.Tick(sim.Time(10 * sim.Millisecond))
	if len(trs) != 1 || trs[0].From != Alive || trs[0].To != Dead {
		t.Fatalf("transitions = %v, want exactly alive->dead", trs)
	}
}

func TestHeartbeatRevives(t *testing.T) {
	d := New(cfg)
	d.Watch("b0", 0)
	d.Tick(sim.Time(10 * sim.Millisecond)) // dead
	tr, ok := d.Heartbeat("b0", sim.Time(11*sim.Millisecond))
	if !ok || tr.From != Dead || tr.To != Alive {
		t.Fatalf("revival = %v ok=%v, want dead->alive", tr, ok)
	}
	if d.State("b0") != Alive {
		t.Fatalf("state after revival = %v", d.State("b0"))
	}
}

func TestForgetAndUnknown(t *testing.T) {
	d := New(cfg)
	d.Watch("b0", 0)
	d.Watch("b1", 0)
	d.Forget("b0")
	if got := d.Peers(); len(got) != 1 || got[0] != "b1" {
		t.Fatalf("peers after forget = %v", got)
	}
	if d.State("b0") != Dead {
		t.Fatalf("unknown peer state = %v, want dead", d.State("b0"))
	}
	if _, ok := d.Heartbeat("b0", 1); ok {
		t.Fatal("heartbeat from forgotten peer should be ignored")
	}
}

func TestLeaseFencing(t *testing.T) {
	l := NewLease(cfg.DeadAfter(), 0)
	if !l.Valid(0) {
		t.Fatal("fresh lease invalid")
	}
	if l.Valid(sim.Time(cfg.DeadAfter())) {
		t.Fatal("lease valid at its own expiry")
	}
	l.Renew(sim.Time(cfg.HeartbeatPeriod))
	want := sim.Time(cfg.HeartbeatPeriod) + sim.Time(cfg.DeadAfter())
	if l.Expiry() != want {
		t.Fatalf("expiry after renew = %v, want %v", l.Expiry(), want)
	}
	// Renewals never shorten.
	l.Renew(0)
	if l.Expiry() != want {
		t.Fatalf("stale renew shortened lease: %v", l.Expiry())
	}

	// The no-split-brain inequality: for any last beat B, the lease the
	// primary renewed at B expires no later than the instant a detector
	// that last heard it at B declares it dead.
	d := New(cfg)
	d.Watch("p", 7)
	lp := NewLease(cfg.DeadAfter(), 7)
	if lp.Expiry() > d.DeadlineFor("p") {
		t.Fatalf("lease %v outlives dead declaration %v", lp.Expiry(), d.DeadlineFor("p"))
	}
}
