package tpc

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"repro/internal/replication"
)

// Debit-Credit layout constants. Records are 128 bytes like classic TPC-B
// implementations pad them; each transaction touches one 16-byte aligned
// balance window per record plus one 16-byte history entry, so a
// transaction's undo footprint is 4 x 16 = 64 bytes and its modified data
// 3 x 4 + 16 = 28 bytes — matching the per-transaction volumes implied by
// the paper's Tables 2 and 5.
const (
	dcRecSize     = 128
	dcRangeSize   = 16
	dcHistRecSize = 16
	dcHistBytes   = 2 << 20 // "a 2 Mbytes circular buffer" (Section 2.4)
	dcHeaderSize  = 64

	// tellersPerBranch follows TPC-B's 10 tellers per branch.
	tellersPerBranch = 10
	// accountsPerBranch follows TPC-B's 100,000 accounts per branch.
	accountsPerBranch = 100000
)

// DebitCredit is the TPC-B-variant workload.
type DebitCredit struct {
	dbSize int

	nBranches int
	nTellers  int
	nAccounts int

	branchesOff int
	tellersOff  int
	accountsOff int
	historyOff  int
	histCap     int64

	buf [dcHistRecSize]byte
	// bal stages the balance read-modify-write. A stack array would
	// escape through the TxHandle interface and cost one allocation per
	// record update; workloads are single-stream, so a field is safe.
	bal [4]byte
}

var _ Workload = (*DebitCredit)(nil)

// NewDebitCredit lays the benchmark out over a database of dbSize bytes
// (the paper's default is 50 MB).
func NewDebitCredit(dbSize int) (*DebitCredit, error) {
	avail := dbSize - dcHeaderSize - dcHistBytes
	records := avail / dcRecSize
	perBranch := 1 + tellersPerBranch + accountsPerBranch
	if records < perBranch {
		// Small databases keep the TPC-B shape with fewer accounts.
		if records < 1+tellersPerBranch+100 {
			return nil, fmt.Errorf("tpc: database of %d bytes too small for Debit-Credit", dbSize)
		}
		w := &DebitCredit{dbSize: dbSize, nBranches: 1, nTellers: tellersPerBranch,
			nAccounts: records - 1 - tellersPerBranch}
		w.place()
		return w, nil
	}
	b := records / perBranch
	w := &DebitCredit{
		dbSize:    dbSize,
		nBranches: b,
		nTellers:  b * tellersPerBranch,
		nAccounts: records - b - b*tellersPerBranch,
	}
	w.place()
	return w, nil
}

func (w *DebitCredit) place() {
	w.branchesOff = dcHeaderSize
	w.tellersOff = w.branchesOff + w.nBranches*dcRecSize
	w.accountsOff = w.tellersOff + w.nTellers*dcRecSize
	w.historyOff = w.accountsOff + w.nAccounts*dcRecSize
	w.histCap = int64(dcHistBytes / dcHistRecSize)
}

// Name implements Workload.
func (w *DebitCredit) Name() string { return "Debit-Credit" }

// DBSize implements Workload.
func (w *DebitCredit) DBSize() int { return w.dbSize }

// Branches, Tellers, Accounts report the scaled layout.
func (w *DebitCredit) Branches() int { return w.nBranches }

// Tellers returns the teller count.
func (w *DebitCredit) Tellers() int { return w.nTellers }

// Accounts returns the account count.
func (w *DebitCredit) Accounts() int { return w.nAccounts }

// Populate writes the layout header; balances start at zero.
func (w *DebitCredit) Populate(load func(off int, data []byte) error) error {
	hdr := make([]byte, dcHeaderSize)
	copy(hdr, "DEBITCRD")
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.nBranches))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(w.nTellers))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(w.nAccounts))
	return load(0, hdr)
}

// Txn implements one Debit-Credit transaction: update a random account's
// balance, the owning teller's and branch's balances, and append an audit
// record to the in-memory history ring.
func (w *DebitCredit) Txn(r *rand.Rand, tx replication.TxHandle, i int64) error {
	aid := r.IntN(w.nAccounts)
	tid := r.IntN(w.nTellers)
	bid := tid / tellersPerBranch
	delta := int32(r.IntN(1_999_999)) - 999_999

	if err := w.updateBalance(tx, w.accountsOff+aid*dcRecSize, delta); err != nil {
		return err
	}
	if err := w.updateBalance(tx, w.tellersOff+tid*dcRecSize, delta); err != nil {
		return err
	}
	if err := w.updateBalance(tx, w.branchesOff+bid*dcRecSize, delta); err != nil {
		return err
	}

	hOff := w.historyOff + int(i%w.histCap)*dcHistRecSize
	if err := tx.SetRange(hOff, dcHistRecSize); err != nil {
		return err
	}
	h := w.buf[:dcHistRecSize]
	binary.LittleEndian.PutUint32(h[0:], uint32(aid))
	binary.LittleEndian.PutUint32(h[4:], uint32(tid))
	binary.LittleEndian.PutUint32(h[8:], uint32(delta))
	binary.LittleEndian.PutUint32(h[12:], uint32(i))
	return tx.Write(hOff, h)
}

// updateBalance is the read-modify-write at the head of a 128-byte record.
func (w *DebitCredit) updateBalance(tx replication.TxHandle, off int, delta int32) error {
	if err := tx.SetRange(off, dcRangeSize); err != nil {
		return err
	}
	if err := tx.Read(off, w.bal[:]); err != nil {
		return err
	}
	bal := int32(binary.LittleEndian.Uint32(w.bal[:])) + delta
	binary.LittleEndian.PutUint32(w.bal[:], uint32(bal))
	return tx.Write(off, w.bal[:])
}
