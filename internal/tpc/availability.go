package tpc

import (
	"errors"
	"fmt"
	"time"

	"repro"
)

// RunAvailability drives the paper's availability experiment end to end:
// throughput delivered while a replica fails and recovers. The timeline is
// measured in fixed simulated-time windows — healthy windows first, then
// the primary is crashed, the cluster fails over, an online repair
// (RepairAsync) starts, and windows keep being measured while the chunked
// state transfer shares the SAN with the live commit stream; once the
// repair cuts over, a few restored windows close the run. The windowed
// transactions-per-second curve, the repair duration and bytes shipped,
// and the time back to full redundancy are the availability metrics
// production replica managers track.
//
// The cluster must tolerate serving with a degraded replica set between
// the failover and the repair cut-over — 1-safe always does; quorum and
// 2-safe refuse commits until enough replicas are back, which the result
// reports as zero-throughput windows rather than an error.

// AvailabilityOptions tunes a RunAvailability timeline.
type AvailabilityOptions struct {
	// Window is the simulated duration of one throughput window
	// (default 10 ms).
	Window time.Duration
	// HealthyWindows measures the pre-crash baseline (default 3).
	HealthyWindows int
	// RestoredWindows measures after the repair completes (default 3).
	RestoredWindows int
	// MaxRepairWindows caps the windows spent waiting for the repair
	// (default 200); the run errors out if the repair has not completed
	// by then.
	MaxRepairWindows int
	// Warmup transactions run before the first window (cache and SAN
	// state carry over; counters reset).
	Warmup int64
	// Seed feeds the deterministic generator.
	Seed uint64
}

func (o AvailabilityOptions) withDefaults() AvailabilityOptions {
	if o.Window <= 0 {
		o.Window = 10 * time.Millisecond
	}
	if o.HealthyWindows <= 0 {
		o.HealthyWindows = 3
	}
	if o.RestoredWindows <= 0 {
		o.RestoredWindows = 3
	}
	if o.MaxRepairWindows <= 0 {
		o.MaxRepairWindows = 200
	}
	return o
}

// AvailabilityWindow is one measured throughput window.
type AvailabilityWindow struct {
	// Phase is "healthy", "repair" (between the crash and the repair
	// cut-over) or "restored".
	Phase string
	// Start is the window's opening instant on the cumulative timeline.
	Start time.Duration
	// Txns is the number of transactions committed in the window.
	Txns int64
	// TPS is the window's throughput in transactions per simulated
	// second.
	TPS float64
}

// AvailabilityResult is the measured timeline.
type AvailabilityResult struct {
	Windows []AvailabilityWindow
	// BaseTPS is the mean healthy-window throughput; MinTPS the worst
	// window after the crash (the availability dip); RestoredTPS the
	// mean restored-window throughput.
	BaseTPS, MinTPS, RestoredTPS float64
	// CrashAt is the cumulative simulated instant of the primary crash.
	CrashAt time.Duration
	// RepairDur is the simulated time the online repair ran and
	// RepairBytes its state-transfer payload.
	RepairDur   time.Duration
	RepairBytes int64
	// RestoredAt is the cumulative instant the cluster was back at full
	// redundancy (repair cut-over); RestoredAt - CrashAt is the
	// time-to-restored-quorum.
	RestoredAt time.Duration
}

// RunAvailability populates the workload, warms up, and measures the
// crash → failover → repair → restored timeline on the deployment. It is
// written against the DB abstraction: any FaultDB — a Cluster or a
// ShardedCluster (the crash and repair land on shard 0) — can sit under
// it.
func RunAvailability(c FaultDB, w Workload, opts AvailabilityOptions) (AvailabilityResult, error) {
	opts = opts.withDefaults()
	if err := w.Populate(c.Load); err != nil {
		return AvailabilityResult{}, err
	}
	st := &stream{db: c, w: w, r: NewRand(opts.Seed)}
	one := st.one
	for i := int64(0); i < opts.Warmup; i++ {
		if err := one(); err != nil {
			return AvailabilityResult{}, fmt.Errorf("tpc: warmup txn %d: %w", i, err)
		}
	}
	c.ResetMeasurement()

	var res AvailabilityResult
	// cum stitches the cumulative timeline across the failover, which
	// re-pins the serving clock to the promoted machine.
	cum := time.Duration(0)
	last := time.Duration(0)
	window := func(phase string) error {
		startC := c.Committed()
		start := c.Elapsed()
		for c.Elapsed()-start < opts.Window {
			if err := one(); err != nil {
				// A safety level that refuses degraded service shows up
				// as an empty window, not a failed run.
				if errors.Is(err, repro.ErrSafetyUnavailable) && phase == "repair" {
					c.Settle()
					continue
				}
				return fmt.Errorf("tpc: %s window: %w", phase, err)
			}
		}
		end := c.Elapsed()
		cum += end - last
		last = end
		n := int64(c.Committed() - startC)
		res.Windows = append(res.Windows, AvailabilityWindow{
			Phase: phase,
			Start: cum - (end - start),
			Txns:  n,
			TPS:   float64(n) / (end - start).Seconds(),
		})
		return nil
	}

	for i := 0; i < opts.HealthyWindows; i++ {
		if err := window("healthy"); err != nil {
			return res, err
		}
	}

	// Crash, fail over, and start healing online.
	if err := c.CrashPrimary(); err != nil {
		return res, err
	}
	res.CrashAt = cum
	if err := c.Failover(); err != nil {
		return res, err
	}
	last = c.Elapsed() // the serving clock moved machines
	if err := c.RepairAsync(); err != nil {
		return res, err
	}

	repaired := false
	for i := 0; i < opts.MaxRepairWindows; i++ {
		if err := window("repair"); err != nil {
			return res, err
		}
		if !c.RepairProgress().Active {
			repaired = true
			break
		}
	}
	if !repaired {
		return res, fmt.Errorf("tpc: repair did not complete within %d windows", opts.MaxRepairWindows)
	}
	p := c.RepairProgress()
	res.RepairDur = p.Elapsed
	res.RepairBytes = p.BytesShipped
	res.RestoredAt = res.CrashAt + p.Elapsed

	for i := 0; i < opts.RestoredWindows; i++ {
		if err := window("restored"); err != nil {
			return res, err
		}
	}

	var healthySum, restoredSum float64
	var healthyN, restoredN int
	for _, win := range res.Windows {
		switch win.Phase {
		case "healthy":
			healthySum += win.TPS
			healthyN++
		case "restored":
			restoredSum += win.TPS
			restoredN++
		case "repair":
			if res.MinTPS == 0 || win.TPS < res.MinTPS {
				res.MinTPS = win.TPS
			}
		}
	}
	if healthyN > 0 {
		res.BaseTPS = healthySum / float64(healthyN)
	}
	if restoredN > 0 {
		res.RestoredTPS = restoredSum / float64(restoredN)
	}
	return res, nil
}
