package tpc

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/mem"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/vista"
)

// Result summarizes one measured benchmark run.
type Result struct {
	Workload string
	Txns     int64
	Elapsed  sim.Time
	// TPS is transactions per simulated second — the paper's headline
	// metric.
	TPS float64
	// WallElapsed and WallTPS report the host's real clock for the
	// multi-client sharded runs (RunSharded): how fast the simulator
	// itself executes when shards are driven from parallel goroutines.
	// Zero for single-stream runs, where wall time measures nothing but
	// the host.
	WallElapsed time.Duration
	WallTPS     float64
	// Clients is the number of concurrent client goroutines that drove
	// the run (1 for single-stream runs).
	Clients int
	// Net is the SAN payload broken down as in paper Tables 2/5/7
	// (zero-valued in standalone runs).
	Net map[mem.Category]int64
	// Link carries the SAN's packet statistics.
	Link sim.LinkStats
}

// NetTotal returns total SAN payload bytes.
func (r *Result) NetTotal() int64 {
	var t int64
	for _, v := range r.Net {
		t += v
	}
	return t
}

// PerTxn returns a per-transaction byte figure.
func (r *Result) PerTxn(v int64) float64 {
	if r.Txns == 0 {
		return 0
	}
	return float64(v) / float64(r.Txns)
}

// Options tunes a driver run.
type Options struct {
	// Txns is the measured transaction count.
	Txns int64
	// Warmup transactions run before measurement starts (cache and SAN
	// state carry over; clocks and counters reset).
	Warmup int64
	// Seed feeds the deterministic generator.
	Seed uint64
	// Oracle, when set, shadows every committed transaction for state
	// verification.
	Oracle *Oracle
	// AbortEvery aborts one transaction in every AbortEvery (0 = never);
	// aborted transactions do not count toward Txns.
	AbortEvery int64
	// StartMeasured, when set, is invoked after warmup, immediately after
	// statistics reset (the SMP experiments attach trace recorders here).
	StartMeasured func()
	// WarmCache sweeps the database through the primary's cache before
	// the warmup transactions, reproducing the steady-state cache
	// occupancy of the paper's multi-million-transaction runs without
	// their wall-clock cost. Measured intervals start after a reset, so
	// the sweep itself is never charged.
	WarmCache bool
	// Clients is the number of concurrent client goroutines RunSharded
	// drives (capped at the shard count; 0 means one client per shard).
	// Ignored by the single-stream Run.
	Clients int
}

// Run populates the workload's database, warms up, and drives the measured
// transaction count against the deployment, returning throughput and
// traffic figures in simulated time.
func Run(pair *replication.Pair, w Workload, opts Options) (Result, error) {
	if opts.Txns <= 0 {
		return Result{}, fmt.Errorf("tpc: non-positive transaction count %d", opts.Txns)
	}
	if err := w.Populate(pair.Load); err != nil {
		return Result{}, err
	}
	r := NewRand(opts.Seed)

	if opts.WarmCache {
		warmCache(pair, w.DBSize())
	}
	for i := int64(0); i < opts.Warmup; i++ {
		if err := one(pair, w, r, i, false, opts.Oracle); err != nil {
			return Result{}, fmt.Errorf("tpc: warmup txn %d: %w", i, err)
		}
	}
	pair.ResetMeasurement()
	if opts.StartMeasured != nil {
		opts.StartMeasured()
	}

	done := int64(0)
	for i := opts.Warmup; done < opts.Txns; i++ {
		abort := opts.AbortEvery > 0 && (i+1)%opts.AbortEvery == 0
		if err := one(pair, w, r, i, abort, opts.Oracle); err != nil {
			return Result{}, fmt.Errorf("tpc: txn %d: %w", i, err)
		}
		if !abort {
			done++
		}
	}

	res := Result{
		Workload: w.Name(),
		Txns:     done,
		Elapsed:  pair.Elapsed(),
		Net:      pair.NetBytes(),
	}
	if pair.Link() != nil {
		res.Link = pair.Link().Stats()
	}
	if res.Elapsed > 0 {
		res.TPS = float64(res.Txns) / res.Elapsed.Seconds()
	}
	return res, nil
}

// warmCache sweeps the database region through the primary's cache
// hierarchy, line by line.
func warmCache(pair *replication.Pair, dbSize int) {
	node := pair.Primary()
	db := node.Space.ByName(vista.RegionDB)
	if db == nil {
		return
	}
	const line = 64
	for off := 0; off < dbSize; off += line {
		node.Cache.AccessVM(db.Base+uint64(off), 8, false)
	}
}

// one executes a single transaction, committing it or (for failure
// injection) aborting it.
func one(pair *replication.Pair, w Workload, r *rand.Rand, i int64, abort bool, oracle *Oracle) error {
	tx, err := pair.Begin()
	if err != nil {
		return err
	}
	var h replication.TxHandle = tx
	if oracle != nil {
		h = oracle.wrap(tx)
	}
	if err := w.Txn(r, h, i); err != nil {
		abortErr := h.Abort()
		if abortErr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
		}
		return err
	}
	if abort {
		return h.Abort()
	}
	return h.Commit()
}
