package tpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro"
)

// RunRebalance drives the elastic-placement experiment end to end:
// throughput delivered while the deployment grows online. The timeline is
// measured in fixed simulated-time windows — baseline windows on the
// initial shard count first, then for each growth step the driver adds
// the new shard groups, starts the rebalance asynchronously, and keeps
// measuring windows while the range mover rides the commit stream
// (paced chunked copy, dirty-range delta resync, per-range cut-over
// barrier); once the plan drains, the next step begins, and a few final
// windows close the run on the full fleet. The windowed throughput
// curve, the ranges and bytes migrated, and the exact acked-write audit
// are the elasticity metrics a resharding production system tracks.
//
// The acked-write audit is the correctness half of the run: a slice of
// version-stamped slots is reserved at the tail of the database (outside
// the workload's layout), the driver interleaves single-slot stamp
// transactions with the benchmark stream, and records the highest
// version each slot acknowledged. After the last window every slot is
// read back raw; a slot whose stored version is below its acknowledged
// version is a lost acked write — the number the result must report as
// zero for the rebalance to be sound.

// auditSlot is the byte size of one audit slot: an 8-byte version
// followed by the version XOR auditMagic (torn stamps are detectable).
const auditSlot = 16

// auditMagic tags the second word of an audit slot.
const auditMagic uint64 = 0xA5D1_57A3_0B5E_55ED

// RebalanceOptions tunes a RunRebalance timeline.
type RebalanceOptions struct {
	// Window is the simulated duration of one throughput window
	// (default 10 ms).
	Window time.Duration
	// BaselineWindows measures the pre-growth baseline (default 3).
	BaselineWindows int
	// FinalWindows measures after the last growth step (default 3).
	FinalWindows int
	// MaxRebalanceWindows caps the windows spent waiting for one growth
	// step's plan to drain (default 400); the run errors out if the
	// mover has not finished by then.
	MaxRebalanceWindows int
	// TargetShards are the growth steps as absolute shard counts, each
	// larger than the last (default {4, 8} from a 2-shard start). Every
	// step adds the missing groups and rebalances onto them.
	TargetShards []int
	// AuditSlots is the number of version-stamped audit slots reserved
	// at the database tail (default 64).
	AuditSlots int
	// AuditEvery interleaves one audit stamp transaction every N
	// workload transactions (default 4).
	AuditEvery int
	// Warmup transactions run before the first window (cache and SAN
	// state carry over; counters reset).
	Warmup int64
	// Seed feeds the deterministic generator.
	Seed uint64
}

func (o RebalanceOptions) withDefaults() RebalanceOptions {
	if o.Window <= 0 {
		o.Window = 10 * time.Millisecond
	}
	if o.BaselineWindows <= 0 {
		o.BaselineWindows = 3
	}
	if o.FinalWindows <= 0 {
		o.FinalWindows = 3
	}
	if o.MaxRebalanceWindows <= 0 {
		o.MaxRebalanceWindows = 400
	}
	if len(o.TargetShards) == 0 {
		o.TargetShards = []int{4, 8}
	}
	if o.AuditSlots <= 0 {
		o.AuditSlots = 64
	}
	if o.AuditEvery <= 0 {
		o.AuditEvery = 4
	}
	return o
}

// RebalanceWindow is one measured throughput window.
type RebalanceWindow struct {
	// Phase is "baseline", "grow-<target>" (while that step's ranges
	// migrate) or "final".
	Phase string
	// Start is the window's opening instant on the cumulative timeline.
	Start time.Duration
	// Txns is the number of transactions committed in the window
	// (workload and audit transactions both count).
	Txns int64
	// TPS is the window's throughput in transactions per simulated
	// second.
	TPS float64
}

// RebalanceResult is the measured timeline plus the migration totals and
// the acked-write audit verdict.
type RebalanceResult struct {
	Windows []RebalanceWindow
	// BaseTPS is the mean baseline-window throughput; MinTPS the worst
	// window measured while any rebalance was in flight (the elasticity
	// dip); FinalTPS the mean final-window throughput on the full fleet.
	BaseTPS, MinTPS, FinalTPS float64
	// RangesMoved and BytesShipped total the migration work across every
	// growth step.
	RangesMoved  int64
	BytesShipped int64
	// PlacementEpoch is the routing table's version after the last
	// cut-over.
	PlacementEpoch uint64
	// AuditWrites is the number of acknowledged audit stamps;
	// LostAckedWrites counts slots whose read-back version was below the
	// acknowledged one — any non-zero value means an acked transaction
	// vanished during a migration.
	AuditWrites     int64
	LostAckedWrites int64
}

// RunRebalance populates the workload over the database minus the audit
// reserve, warms up, and measures the grow → rebalance → grown timeline
// on the deployment. It is written against the driver-facing FaultDB
// surface but requires an elastic deployment underneath: a Cluster
// refuses the first AddShards with ErrNotElastic.
func RunRebalance(c FaultDB, mk func(dbSize int) (Workload, error), opts RebalanceOptions) (RebalanceResult, error) {
	opts = opts.withDefaults()
	reserve := opts.AuditSlots * auditSlot
	usable := c.DBSize() - reserve
	if usable <= 0 {
		return RebalanceResult{}, fmt.Errorf("tpc: database %d too small for %d audit slots", c.DBSize(), opts.AuditSlots)
	}
	w, err := mk(usable)
	if err != nil {
		return RebalanceResult{}, err
	}
	if err := w.Populate(c.Load); err != nil {
		return RebalanceResult{}, err
	}

	var res RebalanceResult
	auditBase := c.DBSize() - reserve
	issued := make([]uint64, opts.AuditSlots)
	acked := make([]uint64, opts.AuditSlots)
	var auditN int64
	// stamp writes the next version into one audit slot in its own
	// transaction and records the acknowledgement iff Commit returned.
	stamp := func() error {
		slot := int(auditN % int64(opts.AuditSlots))
		auditN++
		ver := issued[slot] + 1
		issued[slot] = ver
		var buf [auditSlot]byte
		binary.LittleEndian.PutUint64(buf[0:], ver)
		binary.LittleEndian.PutUint64(buf[8:], ver^auditMagic)
		tx, err := c.Begin()
		if err != nil {
			return err
		}
		off := auditBase + slot*auditSlot
		if err := tx.SetRange(off, auditSlot); err != nil {
			if abortErr := tx.Abort(); abortErr != nil {
				return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
			}
			return err
		}
		if err := tx.Write(off, buf[:]); err != nil {
			if abortErr := tx.Abort(); abortErr != nil {
				return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
			}
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		acked[slot] = ver
		res.AuditWrites++
		return nil
	}

	st := &stream{db: c, w: w, r: NewRand(opts.Seed)}
	one := func() error {
		if err := st.one(); err != nil {
			return err
		}
		if st.n%int64(opts.AuditEvery) == 0 {
			return stamp()
		}
		return nil
	}
	for i := int64(0); i < opts.Warmup; i++ {
		if err := one(); err != nil {
			return res, fmt.Errorf("tpc: warmup txn %d: %w", i, err)
		}
	}
	c.ResetMeasurement()

	cum := time.Duration(0)
	last := time.Duration(0)
	rebalancing := false
	window := func(phase string) error {
		startC := c.Committed()
		start := c.Elapsed()
		for c.Elapsed()-start < opts.Window {
			if err := one(); err != nil {
				// A safety level briefly below strength (a shard mid
				// cut-over under a strict mode) shows up as a slow
				// window, not a failed run.
				if errors.Is(err, repro.ErrSafetyUnavailable) && rebalancing {
					c.Settle()
					continue
				}
				return fmt.Errorf("tpc: %s window: %w", phase, err)
			}
		}
		end := c.Elapsed()
		cum += end - last
		last = end
		n := int64(c.Committed() - startC)
		win := RebalanceWindow{
			Phase: phase,
			Start: cum - (end - start),
			Txns:  n,
			TPS:   float64(n) / (end - start).Seconds(),
		}
		res.Windows = append(res.Windows, win)
		if rebalancing && (res.MinTPS == 0 || win.TPS < res.MinTPS) {
			res.MinTPS = win.TPS
		}
		return nil
	}

	for i := 0; i < opts.BaselineWindows; i++ {
		if err := window("baseline"); err != nil {
			return res, err
		}
	}

	for _, target := range opts.TargetShards {
		cur := c.Shards()
		if target <= cur {
			return res, fmt.Errorf("tpc: growth target %d not above current %d shards", target, cur)
		}
		if _, err := c.AddShards(target - cur); err != nil {
			return res, err
		}
		if err := c.RebalanceAsync(); err != nil {
			return res, err
		}
		rebalancing = true
		phase := fmt.Sprintf("grow-%d", target)
		done := false
		for i := 0; i < opts.MaxRebalanceWindows; i++ {
			if err := window(phase); err != nil {
				return res, err
			}
			if !c.RebalanceProgress().Active {
				done = true
				break
			}
		}
		if !done {
			return res, fmt.Errorf("tpc: rebalance to %d shards did not drain within %d windows", target, opts.MaxRebalanceWindows)
		}
		rebalancing = false
		p := c.RebalanceProgress()
		res.RangesMoved += int64(p.MovesDone)
		res.BytesShipped += p.BytesShipped
	}

	for i := 0; i < opts.FinalWindows; i++ {
		if err := window("final"); err != nil {
			return res, err
		}
	}
	c.Settle()

	var baseSum, finalSum float64
	var baseN, finalN int
	for _, win := range res.Windows {
		switch win.Phase {
		case "baseline":
			baseSum += win.TPS
			baseN++
		case "final":
			finalSum += win.TPS
			finalN++
		}
	}
	if baseN > 0 {
		res.BaseTPS = baseSum / float64(baseN)
	}
	if finalN > 0 {
		res.FinalTPS = finalSum / float64(finalN)
	}
	res.PlacementEpoch = c.PlacementEpoch()

	// The audit: every slot's stored version must be at least the last
	// acknowledged one (and never past the last issued one).
	var buf [auditSlot]byte
	for slot := 0; slot < opts.AuditSlots; slot++ {
		c.ReadRaw(auditBase+slot*auditSlot, buf[:])
		got := binary.LittleEndian.Uint64(buf[0:])
		tag := binary.LittleEndian.Uint64(buf[8:])
		if got != 0 && tag != got^auditMagic {
			res.LostAckedWrites++ // torn stamp: the slot's bytes are not any committed version
			continue
		}
		if got < acked[slot] || got > issued[slot] {
			res.LostAckedWrites++
		}
	}
	return res, nil
}
