package tpc_test

import (
	"testing"
	"time"

	"repro"
	"repro/internal/tpc"
)

func chaosCluster(t *testing.T, db int) *repro.Cluster {
	t.Helper()
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  db,
		Backups: 3,
		Autopilot: repro.AutopilotConfig{
			HeartbeatPeriod: 50 * time.Microsecond,
			SuspectTimeout:  200 * time.Microsecond,
			AutoFailover:    true,
			AutoRepair:      true,
			Spares:          8,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunChaosNeedsAutopilot(t *testing.T) {
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tpc.NewDebitCredit(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpc.RunChaos(c, w, tpc.ChaosOptions{}); err == nil {
		t.Fatal("chaos accepted a cluster without autopilot")
	}
}

func TestRunChaosUnattended(t *testing.T) {
	const db = 4 << 20
	c := chaosCluster(t, db)
	w, err := tpc.NewDebitCredit(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tpc.RunChaos(c, w, tpc.ChaosOptions{
		Window: 2 * time.Millisecond,
		Events: 3,
		Warmup: 200,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Injected) != 3 && len(res.Injected) != 4 {
		// crash-during-repair may land as two injections (backup then
		// mid-repair primary).
		t.Fatalf("injected %d faults: %+v", len(res.Injected), res.Injected)
	}
	if len(res.Events) == 0 {
		t.Fatal("no autopilot events recorded")
	}
	if res.MeanMTTD <= 0 || res.MaxMTTD < res.MeanMTTD {
		t.Fatalf("MTTD aggregates inconsistent: mean %v max %v", res.MeanMTTD, res.MaxMTTD)
	}
	// Detection latency bound: SuspectTimeout + HeartbeatPeriod.
	if bound := 250 * time.Microsecond; res.MaxMTTD > bound {
		t.Fatalf("MaxMTTD %v exceeds bound %v", res.MaxMTTD, bound)
	}
	if res.Restored == 0 || res.MeanMTTR <= 0 {
		t.Fatalf("no restorations recorded: %+v", res)
	}
	if res.BaseTPS <= 0 {
		t.Fatalf("baseline tps %v", res.BaseTPS)
	}
	// The tail windows prove committed throughput recovered.
	var tail float64
	var tailN int
	for _, win := range res.Windows {
		if win.Phase == "tail" {
			tail += win.TPS
			tailN++
		}
	}
	if tailN == 0 || tail/float64(tailN) < res.BaseTPS/4 {
		t.Fatalf("throughput never recovered: tail %.0f vs base %.0f", tail/float64(tailN), res.BaseTPS)
	}
}

// TestRunChaosDeterministic: the same seed reproduces the same schedule and
// the same timeline, window for window.
func TestRunChaosDeterministic(t *testing.T) {
	const db = 4 << 20
	run := func() tpc.ChaosResult {
		c := chaosCluster(t, db)
		w, err := tpc.NewDebitCredit(db)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tpc.RunChaos(c, w, tpc.ChaosOptions{
			Window: 2 * time.Millisecond,
			Events: 2,
			Warmup: 100,
			Seed:   42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Windows) != len(b.Windows) || len(a.Injected) != len(b.Injected) {
		t.Fatalf("run shapes differ: %d/%d windows, %d/%d injections",
			len(a.Windows), len(b.Windows), len(a.Injected), len(b.Injected))
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, a.Windows[i], b.Windows[i])
		}
	}
	for i := range a.Injected {
		if a.Injected[i] != b.Injected[i] {
			t.Fatalf("injection %d differs: %+v vs %+v", i, a.Injected[i], b.Injected[i])
		}
	}
	if a.Committed != b.Committed || a.MeanMTTD != b.MeanMTTD || a.MeanMTTR != b.MeanMTTR {
		t.Fatalf("aggregates differ: %+v vs %+v", a, b)
	}
}
