package tpc

import (
	"testing"

	"repro"
)

func kvDeployment(t testing.TB, shards int) repro.DB {
	t.Helper()
	cfg := repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  1 << 20,
	}
	if shards <= 1 {
		c, err := repro.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	sc, err := repro.NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRunKVMixes drives every mix over both facades through the one DB
// interface and checks the operation accounting.
func TestRunKVMixes(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, mix := range KVMixes() {
			name := map[int]string{1: "cluster/", 4: "sharded4/"}[shards] + mix
			t.Run(name, func(t *testing.T) {
				db := kvDeployment(t, shards)
				res, err := RunKV(db, KVOptions{
					Mix: mix, Records: 500, Ops: 1500, Warmup: 100, Seed: 7,
				})
				if err != nil {
					t.Fatal(err)
				}
				total := res.Reads + res.Updates + res.Inserts + res.Scans
				if total != res.Ops || res.Ops != 1500 {
					t.Fatalf("op accounting: %d+%d+%d+%d != %d",
						res.Reads, res.Updates, res.Inserts, res.Scans, res.Ops)
				}
				if res.OPS <= 0 || res.Elapsed <= 0 {
					t.Fatalf("no throughput measured: %+v", res)
				}
				switch mix {
				case MixReadHeavy:
					if res.Reads < res.Updates*10 || res.Scans != 0 {
						t.Fatalf("read-heavy mix off: %+v", res)
					}
				case MixUpdateHeavy:
					if res.Reads == 0 || res.Updates == 0 || res.Scans != 0 {
						t.Fatalf("update-heavy mix off: %+v", res)
					}
				case MixScan:
					if res.Scans < res.Inserts*10 || res.ScanItems == 0 {
						t.Fatalf("scan mix off: %+v", res)
					}
				}
				if res.Net.Total() == 0 {
					t.Fatal("no SAN traffic measured on a replicated deployment")
				}
			})
		}
	}
}

// TestRunKVDeterministic pins the driver's reproducibility: same seed,
// same simulated throughput, on both facades.
func TestRunKVDeterministic(t *testing.T) {
	for _, shards := range []int{1, 4} {
		var first KVResult
		for round := 0; round < 2; round++ {
			res, err := RunKV(kvDeployment(t, shards), KVOptions{
				Mix: MixUpdateHeavy, Records: 300, Ops: 800, Warmup: 50, Seed: 11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if round == 0 {
				first = res
				continue
			}
			if res != first {
				t.Fatalf("shards=%d run not deterministic:\n  %+v\n  %+v", shards, first, res)
			}
		}
	}
}
