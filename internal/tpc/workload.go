// Package tpc implements the paper's two benchmarks (Section 2.4):
//
//   - Debit-Credit, a TPC-B variant — branch/teller/account balance updates
//     plus an audit-trail record appended to a 2 MB circular buffer kept in
//     memory.
//   - Order-Entry, a TPC-C variant restricted to the three database-updating
//     transaction types (New-Order, Payment, Delivery).
//
// Record layouts and set-range extents are sized so the per-transaction
// byte profile (modified data, undo data, metadata) lands near the paper's
// Tables 2/5/7 columns; EXPERIMENTS.md records the measured values.
package tpc

import (
	"math/rand/v2"

	"repro/internal/replication"
)

// Workload is one benchmark: a database layout plus a transaction mix.
// Implementations are not safe for concurrent use; the multiprocessor
// experiments give each stream its own Workload over its own Pair.
type Workload interface {
	// Name returns the paper's benchmark name.
	Name() string
	// DBSize returns the database size the workload was laid out for.
	DBSize() int
	// Populate loads initial database content through the supplied
	// raw loader (outside the measured interval).
	Populate(load func(off int, data []byte) error) error
	// Txn issues the body of transaction number i on tx: set_range
	// declarations, reads, and in-place writes. The driver commits.
	Txn(r *rand.Rand, tx replication.TxHandle, i int64) error
}

// NewRand returns the deterministic generator used by drivers and tests.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
}
