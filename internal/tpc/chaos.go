package tpc

import (
	"errors"
	"fmt"
	"time"

	"repro"
)

// RunChaos extends RunAvailability into an unattended chaos experiment: a
// seeded schedule of fault injections — crash the primary, crash a backup,
// crash the primary in the middle of a repair — lands on a cluster whose
// autopilot must notice and respond on its own. The driver never calls
// Failover, Repair or RepairAsync; it only keeps the workload running (and
// sits out windows a strict safety level refuses to serve). What comes back
// is the availability record production replica managers track: the
// windowed throughput curve across every incident, and per-event detection
// latency (MTTD), failover latency, repair duration and time-to-restored
// (MTTR) aggregated over the run.

// Chaos fault kinds, as scheduled by the seeded generator.
const (
	FaultCrashPrimary      = "crash-primary"
	FaultCrashBackup       = "crash-backup"
	FaultCrashDuringRepair = "crash-during-repair"
)

// ChaosOptions tunes a RunChaos schedule.
type ChaosOptions struct {
	// Window is the simulated duration of one throughput window
	// (default 5 ms).
	Window time.Duration
	// Events is the number of fault injections (default 4).
	Events int
	// HealthyWindows measures the pre-fault baseline (default 2).
	HealthyWindows int
	// TailWindows measures after the last event settles (default 2).
	TailWindows int
	// MaxWindows caps the run (default 600); exceeding it is an error —
	// the cluster never settled.
	MaxWindows int
	// MaxGap bounds the seeded number of windows between injections
	// (default 4; minimum gap is 1).
	MaxGap int
	// Warmup transactions run before the first window.
	Warmup int64
	// Seed feeds both the workload and the fault schedule, making the
	// whole run reproducible.
	Seed uint64
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Window <= 0 {
		o.Window = 5 * time.Millisecond
	}
	if o.Events <= 0 {
		o.Events = 4
	}
	if o.HealthyWindows <= 0 {
		o.HealthyWindows = 2
	}
	if o.TailWindows <= 0 {
		o.TailWindows = 2
	}
	if o.MaxWindows <= 0 {
		o.MaxWindows = 600
	}
	if o.MaxGap <= 0 {
		o.MaxGap = 4
	}
	return o
}

// InjectedFault records one scheduled injection.
type InjectedFault struct {
	// Kind is one of the Fault* constants.
	Kind string
	// At is the cumulative simulated instant of the injection.
	At time.Duration
	// Backup is the crashed backup's index (backup faults only).
	Backup int
}

// ChaosResult is the measured record of an unattended chaos run.
type ChaosResult struct {
	// Windows is the throughput timeline; Phase is "healthy", "chaos" or
	// "tail".
	Windows []AvailabilityWindow
	// Injected lists the fault schedule actually executed.
	Injected []InjectedFault
	// Events is the autopilot's per-fault timeline (detection, failover,
	// repair, restoration), in detection order.
	Events []repro.FailureEvent
	// BaseTPS is the mean healthy-window throughput; MinTPS the worst
	// window after the first fault.
	BaseTPS, MinTPS float64
	// MeanMTTD/MaxMTTD aggregate detection latency over all events;
	// MeanMTTR/MaxMTTR aggregate fault-to-restored over the events whose
	// repair completed (Restored counts them).
	MeanMTTD, MaxMTTD time.Duration
	MeanMTTR, MaxMTTR time.Duration
	Restored          int
	// Committed is the cluster's committed-transaction count at the end.
	Committed uint64
}

// RunChaos populates the workload, warms up, and runs the seeded fault
// schedule against the deployment's autopilot. Written against the DB
// abstraction: any FaultDB with Config.Autopilot enabled (AutoFailover,
// AutoRepair, and enough Spares for the schedule) can sit under it; the
// injections land on shard 0.
func RunChaos(c FaultDB, w Workload, opts ChaosOptions) (ChaosResult, error) {
	opts = opts.withDefaults()
	if !c.AutopilotEnabled() {
		return ChaosResult{}, errors.New("tpc: chaos needs Config.Autopilot enabled")
	}
	if err := w.Populate(c.Load); err != nil {
		return ChaosResult{}, err
	}
	faults := NewRand(opts.Seed ^ 0xC3A05)
	st := &stream{db: c, w: w, r: NewRand(opts.Seed)}
	one := st.one
	for i := int64(0); i < opts.Warmup; i++ {
		if err := one(); err != nil {
			return ChaosResult{}, fmt.Errorf("tpc: warmup txn %d: %w", i, err)
		}
	}
	c.ResetMeasurement()

	var res ChaosResult
	cum := time.Duration(0)
	last := time.Duration(0)
	// window measures one fixed simulated-time slice of throughput. The
	// autopilot keeps Elapsed continuous across unattended takeovers, so
	// the cumulative timeline needs no stitching; the committed counter
	// can dip at a takeover (the 1-safe tail died with the old primary),
	// which shows up as a clamped-to-zero window.
	window := func(phase string) error {
		startC := c.Committed()
		start := c.Elapsed()
		settles := 0
		for c.Elapsed()-start < opts.Window {
			if err := one(); err != nil {
				if errors.Is(err, repro.ErrSafetyUnavailable) && phase != "healthy" {
					// A strict safety level refuses degraded service;
					// idle time still heals the cluster.
					if settles++; settles > 10_000 {
						return fmt.Errorf("tpc: cluster never regained its safety level")
					}
					c.Settle()
					continue
				}
				return fmt.Errorf("tpc: %s window: %w", phase, err)
			}
		}
		end := c.Elapsed()
		cum += end - last
		last = end
		n := int64(c.Committed()) - int64(startC)
		if n < 0 {
			n = 0
		}
		res.Windows = append(res.Windows, AvailabilityWindow{
			Phase: phase,
			Start: cum - (end - start),
			Txns:  n,
			TPS:   float64(n) / (end - start).Seconds(),
		})
		return nil
	}

	for i := 0; i < opts.HealthyWindows; i++ {
		if err := window("healthy"); err != nil {
			return res, err
		}
	}

	// The seeded schedule: Events injections separated by 1..MaxGap
	// chaos windows, a primary crash pending while a repair is in flight
	// for the crash-during-repair kind.
	injected := 0
	gap := 1 + faults.IntN(opts.MaxGap)
	pendingMidRepair := false
	pendingSince := 0
	for wi := 0; ; wi++ {
		if len(res.Windows) >= opts.MaxWindows {
			return res, fmt.Errorf("tpc: chaos did not settle within %d windows", opts.MaxWindows)
		}
		acted := false
		if pendingMidRepair {
			switch {
			case c.RepairProgress().Active:
				// The repair the previous backup crash triggered is
				// running: kill the transfer source mid-flight.
				if err := c.CrashPrimary(); err == nil {
					res.Injected = append(res.Injected, InjectedFault{Kind: FaultCrashDuringRepair, At: cum})
				}
				pendingMidRepair = false
				acted = true
			case wi-pendingSince >= 2:
				// The repair came and went inside a window (or never
				// started): nothing left to hit mid-flight. Drop the
				// pending half so the run can settle.
				pendingMidRepair = false
			}
		}
		if !acted && !pendingMidRepair && injected < opts.Events && wi >= gap {
			kind := faults.IntN(3)
			switch {
			case kind == FaultKindPrimary || c.Backups() == 0:
				if err := c.CrashPrimary(); err == nil {
					res.Injected = append(res.Injected, InjectedFault{Kind: FaultCrashPrimary, At: cum})
				}
			default:
				i := faults.IntN(c.Backups())
				if err := c.CrashBackup(i); err == nil {
					f := InjectedFault{Kind: FaultCrashBackup, At: cum, Backup: i}
					if kind == FaultKindDuringRepair {
						f.Kind = FaultCrashDuringRepair
						pendingMidRepair = true
						pendingSince = wi
					}
					res.Injected = append(res.Injected, f)
				}
			}
			injected++
			gap = wi + 1 + faults.IntN(opts.MaxGap)
		}
		if err := window("chaos"); err != nil {
			return res, err
		}
		if injected >= opts.Events && !pendingMidRepair && !c.RepairProgress().Active {
			// All faults landed and the last repair cut over; let any
			// trailing detection work (a dead backup not yet declared)
			// surface before closing.
			c.Settle()
			if !c.RepairProgress().Active {
				break
			}
		}
	}

	for i := 0; i < opts.TailWindows; i++ {
		if err := window("tail"); err != nil {
			return res, err
		}
	}

	res.Events = c.AutopilotEvents()
	res.Committed = c.Committed()
	aggregate(&res)
	return res, nil
}

// Seeded fault kinds (indices into the generator's 0..2 draw).
const (
	FaultKindPrimary = iota
	FaultKindBackup
	FaultKindDuringRepair
)

// aggregate computes the run's throughput and latency summaries.
func aggregate(res *ChaosResult) {
	var healthySum float64
	var healthyN int
	minSeen := false
	for _, win := range res.Windows {
		switch win.Phase {
		case "healthy":
			healthySum += win.TPS
			healthyN++
		default:
			// A window can genuinely hold zero transactions (the
			// committed counter clamps at a takeover), so zero is a
			// value, not the unset sentinel.
			if !minSeen || win.TPS < res.MinTPS {
				res.MinTPS, minSeen = win.TPS, true
			}
		}
	}
	if healthyN > 0 {
		res.BaseTPS = healthySum / float64(healthyN)
	}
	var mttdSum, mttrSum time.Duration
	for _, e := range res.Events {
		d := e.MTTD()
		mttdSum += d
		if d > res.MaxMTTD {
			res.MaxMTTD = d
		}
		if r := e.MTTR(); r > 0 {
			mttrSum += r
			res.Restored++
			if r > res.MaxMTTR {
				res.MaxMTTR = r
			}
		}
	}
	if n := len(res.Events); n > 0 {
		res.MeanMTTD = mttdSum / time.Duration(n)
	}
	if res.Restored > 0 {
		res.MeanMTTR = mttrSum / time.Duration(res.Restored)
	}
}
