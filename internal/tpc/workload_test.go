package tpc

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/replication"
	"repro/internal/vista"
)

func TestDebitCreditScaling(t *testing.T) {
	cases := []struct {
		dbMB       int
		minAccount int
	}{
		{8, 100},
		{10, 50_000},
		{50, 290_000},
		{100, 600_000},
	}
	for _, c := range cases {
		w, err := NewDebitCredit(c.dbMB << 20)
		if err != nil {
			t.Fatalf("%dMB: %v", c.dbMB, err)
		}
		if w.Accounts() < c.minAccount {
			t.Errorf("%dMB: %d accounts, want >= %d", c.dbMB, w.Accounts(), c.minAccount)
		}
		if w.Tellers() != w.Branches()*10 {
			t.Errorf("%dMB: %d tellers for %d branches", c.dbMB, w.Tellers(), w.Branches())
		}
		if w.DBSize() != c.dbMB<<20 {
			t.Errorf("DBSize() = %d", w.DBSize())
		}
	}
	if _, err := NewDebitCredit(1 << 20); err == nil {
		t.Fatal("1MB database accepted (history alone needs 2MB)")
	}
}

func TestOrderEntryScaling(t *testing.T) {
	for _, mb := range []int{8, 10, 50, 100} {
		w, err := NewOrderEntry(mb << 20)
		if err != nil {
			t.Fatalf("%dMB: %v", mb, err)
		}
		if w.Warehouses() < 1 {
			t.Fatalf("%dMB: no warehouses", mb)
		}
	}
	w50, _ := NewOrderEntry(50 << 20)
	if w50.Warehouses() < 3 {
		t.Fatalf("50MB laid out %d warehouses, want >= 3", w50.Warehouses())
	}
	if _, err := NewOrderEntry(1 << 20); err == nil {
		t.Fatal("1MB database accepted")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range []string{"dc", "oe"} {
		run := func() []byte {
			pair, err := replication.NewPair(replication.Config{
				Mode:  replication.Standalone,
				Store: vista.Config{Version: vista.V3InlineLog, DBSize: 8 << 20},
			})
			if err != nil {
				t.Fatal(err)
			}
			var w Workload
			if name == "dc" {
				w, err = NewDebitCredit(8 << 20)
			} else {
				w, err = NewOrderEntry(8 << 20)
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(pair, w, Options{Txns: 200, Seed: 5}); err != nil {
				t.Fatal(err)
			}
			db := make([]byte, 8<<20)
			pair.Store().ReadRaw(0, db)
			return db
		}
		a, b := run(), run()
		if firstMismatch(a, b) >= 0 {
			t.Fatalf("%s: two identical runs diverged", name)
		}
	}
}

// TestByteProfileShape pins the per-transaction traffic profile that the
// paper's tables depend on: Debit-Credit near 28B modified / 64B undo per
// transaction, Order-Entry with a much larger undo-to-modified ratio.
func TestByteProfileShape(t *testing.T) {
	profile := func(name string) (mod, undo, meta float64) {
		pair, err := replication.NewPair(replication.Config{
			Mode:  replication.Passive,
			Store: vista.Config{Version: vista.V3InlineLog, DBSize: 16 << 20},
		})
		if err != nil {
			t.Fatal(err)
		}
		var w Workload
		if name == "dc" {
			w, err = NewDebitCredit(16 << 20)
		} else {
			w, err = NewOrderEntry(16 << 20)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(pair, w, Options{Txns: 3000, Warmup: 300, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerTxn(res.Net[mem.CatModified]),
			res.PerTxn(res.Net[mem.CatUndo]),
			res.PerTxn(res.Net[mem.CatMeta])
	}

	mod, undo, _ := profile("dc")
	if mod < 24 || mod > 32 {
		t.Errorf("Debit-Credit modified %.1f B/txn, want ~28 (paper)", mod)
	}
	if undo < 56 || undo > 70 {
		t.Errorf("Debit-Credit undo %.1f B/txn, want ~64 (paper: 65)", undo)
	}

	oMod, oUndo, _ := profile("oe")
	if oUndo/oMod < 2 {
		t.Errorf("Order-Entry undo/modified = %.1f, want conservatively declared ranges (>2)", oUndo/oMod)
	}
	if oUndo < 300 || oUndo > 700 {
		t.Errorf("Order-Entry undo %.1f B/txn, want a few hundred (paper: 437)", oUndo)
	}
}

func TestDriverAbortSchedule(t *testing.T) {
	pair, err := replication.NewPair(replication.Config{
		Mode:  replication.Standalone,
		Store: vista.Config{Version: vista.V0Vista, DBSize: 8 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewDebitCredit(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pair, w, Options{Txns: 100, Seed: 1, AbortEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 100 {
		t.Fatalf("committed %d, want 100 (aborts excluded)", res.Txns)
	}
	st := pair.Store().Stats()
	if st.Aborts == 0 {
		t.Fatal("no aborts executed")
	}
	if pair.Store().Committed() != 100 {
		t.Fatalf("store recorded %d commits", pair.Store().Committed())
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	pair, err := replication.NewPair(replication.Config{
		Mode:  replication.Standalone,
		Store: vista.Config{Version: vista.V3InlineLog, DBSize: 8 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewDebitCredit(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pair, w, Options{Txns: 0}); err == nil {
		t.Fatal("zero transactions accepted")
	}
}

func TestOrderEntryMixCoverage(t *testing.T) {
	// All three transaction types must execute and mutate state.
	pair, err := replication.NewPair(replication.Config{
		Mode:  replication.Standalone,
		Store: vista.Config{Version: vista.V3InlineLog, DBSize: 16 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewOrderEntry(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewOracle(16 << 20)
	if err := w.Populate(oracle.Load); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pair, w, Options{Txns: 2000, Seed: 4, Oracle: oracle}); err != nil {
		t.Fatal(err)
	}
	db := make([]byte, 16<<20)
	pair.Store().ReadRaw(0, db)
	if err := oracle.Compare(db); err != nil {
		t.Fatal(err)
	}

	// District next-order ids advanced (NewOrder ran), warehouse ytd
	// moved (Payment ran), and some order has a carrier (Delivery ran).
	var next [4]byte
	pair.Store().ReadRaw(w.distOff+distNextOID, next[:])
	if next[0] == 0 && next[1] == 0 && next[2] == 0 && next[3] == 0 {
		// District 0 of warehouse 0 might just be unlucky; scan all.
		found := false
		for d := 0; d < w.warehouses*districtsPerWH; d++ {
			pair.Store().ReadRaw(w.distOff+d*oeDistRec+distNextOID, next[:])
			if next[0]|next[1]|next[2]|next[3] != 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("no NewOrder executed")
		}
	}
}
