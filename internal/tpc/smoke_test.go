package tpc

import (
	"testing"

	"repro/internal/replication"
	"repro/internal/vista"
)

// TestSmokeAllModes drives a small Debit-Credit run through every
// version/mode combination and verifies the primary database against the
// oracle.
func TestSmokeAllModes(t *testing.T) {
	const dbSize = 8 << 20
	versions := []vista.Version{vista.V0Vista, vista.V1MirrorCopy, vista.V2MirrorDiff, vista.V3InlineLog}
	modes := []replication.Mode{replication.Standalone, replication.Passive}

	for _, mode := range modes {
		for _, v := range versions {
			t.Run(mode.String()+"/"+v.String(), func(t *testing.T) {
				runSmoke(t, mode, v, dbSize)
			})
		}
	}
	t.Run("Active/V3", func(t *testing.T) {
		runSmoke(t, replication.Active, vista.V3InlineLog, dbSize)
	})
}

func runSmoke(t *testing.T, mode replication.Mode, v vista.Version, dbSize int) {
	t.Helper()
	pair, err := replication.NewPair(replication.Config{
		Mode:  mode,
		Store: vista.Config{Version: v, DBSize: dbSize},
	})
	if err != nil {
		t.Fatalf("NewPair: %v", err)
	}
	w, err := NewDebitCredit(dbSize)
	if err != nil {
		t.Fatalf("NewDebitCredit: %v", err)
	}
	oracle := NewOracle(dbSize)
	opts := Options{Txns: 500, Warmup: 50, Seed: 42, Oracle: oracle, AbortEvery: 7}
	if err := w.Populate(oracle.Load); err != nil {
		t.Fatalf("populate oracle: %v", err)
	}
	res, err := Run(pair, w, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Txns != opts.Txns {
		t.Fatalf("committed %d txns, want %d", res.Txns, opts.Txns)
	}
	if res.TPS <= 0 {
		t.Fatalf("non-positive TPS %v (elapsed %v)", res.TPS, res.Elapsed)
	}

	db := make([]byte, dbSize)
	pair.Store().ReadRaw(0, db)
	if err := oracle.Compare(db); err != nil {
		t.Fatalf("primary state: %v", err)
	}

	// Replay must agree with the live oracle.
	w2, err := NewDebitCredit(dbSize)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(w2, opts, opts.Txns)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := oracle.Compare(replayed); err == nil {
		// Compare checks db against shadow; use it in reverse to check
		// replay against shadow.
		if i := firstMismatch(replayed, oracle.Shadow()); i >= 0 {
			t.Fatalf("replay diverges from oracle at %d", i)
		}
	} else {
		t.Fatalf("replay state: %v", err)
	}

	t.Logf("%s %s: %.0f sim-TPS, %d net bytes", mode, v, res.TPS, res.NetTotal())
}
