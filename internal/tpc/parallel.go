package tpc

import (
	"fmt"
	"sync"
	"time"

	"repro"
	"repro/internal/mem"
	"repro/internal/sim"
)

// RunSharded drives a sharded cluster with opts.Clients concurrent client
// goroutines, partitioned by shard: client c owns shards {i : i mod C ==
// c} and interleaves their streams round-robin, so no two clients ever
// contend on one shard's lock. Each shard gets its own workload instance
// (built by mk for the shard's size) over its own slice of the database
// and its own deterministic generator, keeping every shard's transaction
// stream reproducible regardless of goroutine scheduling.
//
// opts.Txns and opts.Warmup are per shard: the measured total is
// opts.Txns * Shards. The result reports both the paper's metric —
// simulated txn/s over the slowest shard's clock — and the wall-clock
// txn/s of the simulator itself, which is what actually scales with
// min(shards, GOMAXPROCS) now that shards run on independent goroutines.
// opts.Oracle, AbortEvery, WarmCache and StartMeasured are not supported
// here (they are single-stream concepts).
func RunSharded(sc *repro.ShardedCluster, mk func(dbSize int) (Workload, error), opts Options) (Result, error) {
	if opts.Txns <= 0 {
		return Result{}, fmt.Errorf("tpc: non-positive per-shard transaction count %d", opts.Txns)
	}
	shards := sc.Shards()
	clients := opts.Clients
	if clients < 1 || clients > shards {
		clients = shards
	}

	streams := make([]*stream, shards)
	for i := 0; i < shards; i++ {
		w, err := mk(sc.ShardSize())
		if err != nil {
			return Result{}, err
		}
		if err := w.Populate(sc.Shard(i).Load); err != nil {
			return Result{}, fmt.Errorf("tpc: shard %d populate: %w", i, err)
		}
		streams[i] = &stream{
			db: sc.Shard(i),
			w:  w,
			r:  NewRand(opts.Seed + uint64(i)),
		}
	}

	// Warmup runs concurrently too (cache and SAN state carry over into
	// the measured interval, like the single-stream driver).
	if opts.Warmup > 0 {
		if err := driveClients(streams, clients, opts.Warmup); err != nil {
			return Result{}, fmt.Errorf("tpc: warmup: %w", err)
		}
	}
	sc.ResetMeasurement()

	wallStart := time.Now()
	if err := driveClients(streams, clients, opts.Txns); err != nil {
		return Result{}, err
	}
	wall := time.Since(wallStart)

	tr := sc.NetTraffic()
	res := Result{
		Workload: streams[0].w.Name(),
		Txns:     opts.Txns * int64(shards),
		Elapsed:  sim.Time(sc.Elapsed().Nanoseconds()) * sim.Time(sim.Nanosecond),
		Clients:  clients,
		Net: map[mem.Category]int64{
			mem.CatModified: tr.ModifiedBytes,
			mem.CatUndo:     tr.UndoBytes,
			mem.CatMeta:     tr.MetaBytes,
		},
		WallElapsed: wall,
	}
	if res.Elapsed > 0 {
		res.TPS = float64(res.Txns) / res.Elapsed.Seconds()
	}
	if wall > 0 {
		res.WallTPS = float64(res.Txns) / wall.Seconds()
	}
	return res, nil
}

// driveClients runs count transactions on every stream, clients goroutines
// at a time, client c interleaving its owned streams round-robin.
func driveClients(streams []*stream, clients int, count int64) error {
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Interleave the client's shards transaction by transaction
			// so every shard progresses evenly.
			for k := int64(0); k < count; k++ {
				for i := c; i < len(streams); i += clients {
					if err := streams[i].one(); err != nil {
						errs[c] = fmt.Errorf("tpc: shard %d txn %d: %w", i, k, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
