package tpc

import (
	"fmt"
	"math/rand/v2"

	"repro"
)

// FaultDB is the driver-facing surface of a deployment under test: the
// full data plane (repro.DB) plus the harmonized fault-injection surface
// (repro.Admin). Both repro.Cluster and repro.ShardedCluster satisfy it,
// so the availability and chaos drivers run unchanged over either facade.
type FaultDB interface {
	repro.DB
	repro.Admin
}

// stream is one deterministic transaction sequence against a DB: the
// deployment, a workload laid out for it, the stream's generator and its
// transaction index. It is the single transaction-driving code path every
// facade-level driver shares — availability, chaos and the sharded
// multi-client runs all advance their workloads through stream.one.
type stream struct {
	db repro.DB
	w  Workload
	r  *rand.Rand
	n  int64
}

// one executes the stream's next transaction.
func (s *stream) one() error {
	tx, err := s.db.Begin()
	if err != nil {
		return err
	}
	if err := s.w.Txn(s.r, tx, s.n); err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
		}
		return err
	}
	s.n++
	return tx.Commit()
}
