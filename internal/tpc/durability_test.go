package tpc_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/tpc"
)

// durOpen returns an open callback over one durability directory: each
// call builds a fresh deployment over the same files, which is exactly
// what a cold restart is.
func durOpen(dir string, snapshotEvery int) func() (tpc.FaultDB, error) {
	return func() (tpc.FaultDB, error) {
		return repro.New(repro.Config{
			Version:     repro.V3InlineLog,
			Backup:      repro.ActiveBackup,
			DBSize:      4 << 20,
			Backups:     2,
			Safety:      repro.QuorumSafe,
			CommitBatch: 8,
			Durability: repro.DurabilityConfig{
				Dir:           dir,
				SnapshotEvery: snapshotEvery,
			},
		})
	}
}

func TestRunDurabilityNeedsDisk(t *testing.T) {
	open := func() (tpc.FaultDB, error) {
		return repro.New(repro.Config{Version: repro.V3InlineLog, Backup: repro.ActiveBackup, DBSize: 4 << 20})
	}
	w, err := tpc.NewDebitCredit(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpc.RunDurability(open, w, tpc.DurabilityOptions{}); err == nil || !strings.Contains(err.Error(), "Durability") {
		t.Fatalf("drill accepted a deployment without the disk tier: %v", err)
	}
}

// TestRunDurabilityDrill: every corrupt-tail mode recovers with zero lost
// acked writes and a replay-exact image across seeds.
func TestRunDurabilityDrill(t *testing.T) {
	for _, mode := range []string{tpc.TailIntact, tpc.TailTorn, tpc.TailBitFlip, tpc.TailZeroed, tpc.TailMixed} {
		t.Run(mode, func(t *testing.T) {
			w, err := tpc.NewDebitCredit(4 << 20)
			if err != nil {
				t.Fatal(err)
			}
			res, err := tpc.RunDurability(durOpen(t.TempDir(), 50), w, tpc.DurabilityOptions{
				Txns:    160,
				Corrupt: mode,
				Seed:    uint64(31 + len(mode)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.LostAckedWrites != 0 {
				t.Fatalf("lost %d acked writes: %+v", res.LostAckedWrites, res)
			}
			if res.Recovered < res.AckedDurable || res.Recovered > res.Total {
				t.Fatalf("recovered %d outside [%d,%d]", res.Recovered, res.AckedDurable, res.Total)
			}
			if res.Tails == 0 {
				t.Fatalf("no WAL tails captured: %+v", res)
			}
			if res.RecoveryWall <= 0 {
				t.Fatalf("recovery wall time %v", res.RecoveryWall)
			}
		})
	}
}

// TestRunDurabilitySnapshotInterval: a tighter snapshot interval replays
// fewer records at recovery — the knob the BENCH sweep turns.
func TestRunDurabilitySnapshotInterval(t *testing.T) {
	replayed := func(every int) int {
		w, err := tpc.NewDebitCredit(4 << 20)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tpc.RunDurability(durOpen(t.TempDir(), every), w, tpc.DurabilityOptions{
			Txns:    200,
			Corrupt: tpc.TailIntact,
			Seed:    99,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.LostAckedWrites != 0 {
			t.Fatalf("every=%d lost %d acked writes", every, res.LostAckedWrites)
		}
		return res.Replayed
	}
	tight, loose := replayed(20), replayed(100000)
	if tight >= loose {
		t.Fatalf("replayed %d records at snapshot-every=20 vs %d with snapshots off the table", tight, loose)
	}
}
