package tpc_test

import (
	"testing"

	"repro"
	"repro/internal/tpc"
)

const parDB = 12 << 20 // 4 MB per shard at 3 shards: enough for Debit-Credit

func newParSharded(t *testing.T, shards int) *repro.ShardedCluster {
	t.Helper()
	sc, err := repro.NewSharded(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  parDB,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func runPar(t *testing.T, shards, clients int) tpc.Result {
	t.Helper()
	res, err := tpc.RunSharded(newParSharded(t, shards), func(dbSize int) (tpc.Workload, error) {
		return tpc.NewDebitCredit(dbSize)
	}, tpc.Options{Txns: 300, Warmup: 50, Seed: 7, Clients: clients})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunShardedBasics: the concurrent driver reports per-shard-scaled
// totals, a positive simulated rate and a positive wall rate.
func TestRunShardedBasics(t *testing.T) {
	res := runPar(t, 3, 3)
	if res.Txns != 900 {
		t.Fatalf("Txns = %d, want 900 (300 per shard)", res.Txns)
	}
	if res.Clients != 3 {
		t.Fatalf("Clients = %d, want 3", res.Clients)
	}
	if res.TPS <= 0 || res.WallTPS <= 0 {
		t.Fatalf("rates not positive: sim %f wall %f", res.TPS, res.WallTPS)
	}
	if res.NetTotal() <= 0 {
		t.Fatal("no SAN traffic recorded")
	}
}

// TestRunShardedDeterministicAcrossClients: every shard's transaction
// stream is seeded per shard, so the simulated outcome — elapsed time,
// transaction totals, SAN bytes — is identical no matter how many client
// goroutines drove it or how the scheduler interleaved them. Wall clock
// varies; simulated truth does not.
func TestRunShardedDeterministicAcrossClients(t *testing.T) {
	one := runPar(t, 3, 1)
	three := runPar(t, 3, 3)
	if one.Elapsed != three.Elapsed {
		t.Fatalf("sim elapsed differs by client count: %v vs %v", one.Elapsed, three.Elapsed)
	}
	if one.Txns != three.Txns {
		t.Fatalf("txn totals differ: %d vs %d", one.Txns, three.Txns)
	}
	if one.NetTotal() != three.NetTotal() {
		t.Fatalf("SAN bytes differ: %d vs %d", one.NetTotal(), three.NetTotal())
	}
}

// TestRunShardedClientCap: client counts are clamped to the shard count.
func TestRunShardedClientCap(t *testing.T) {
	res := runPar(t, 2, 16)
	if res.Clients != 2 {
		t.Fatalf("Clients = %d, want clamp to 2", res.Clients)
	}
}
