package tpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro"
	"repro/kv"
)

// RunKV drives a YCSB-style key-value workload against any repro.DB
// through the kv layer: the store is formatted inside the deployment's
// replicated bytes, preloaded with a keyspace, and then hit with one of
// three operation mixes modeled on the standard YCSB core workloads:
//
//   - read-heavy (YCSB-B): 95% point reads, 5% value updates
//   - update-heavy (YCSB-A): 50% point reads, 50% value updates
//   - scan (YCSB-E): 95% short range scans, 5% fresh-key inserts
//
// Because the driver sees only the DB interface, the same run works over
// a Cluster and a ShardedCluster — the measured difference is exactly the
// facades' difference (sharded deployments pay the kv layer's two-phase
// record-then-flip commit; single groups merge it into one transaction).

// The YCSB-style operation mixes RunKV accepts.
const (
	MixReadHeavy   = "read-heavy"
	MixUpdateHeavy = "update-heavy"
	MixScan        = "scan"
)

// KVMixes lists the mixes in reporting order.
func KVMixes() []string { return []string{MixReadHeavy, MixUpdateHeavy, MixScan} }

// KVOptions tunes a RunKV run.
type KVOptions struct {
	// Mix is one of MixReadHeavy, MixUpdateHeavy, MixScan (default
	// read-heavy).
	Mix string
	// Records is the preloaded keyspace size (default 2000).
	Records int
	// Ops is the measured operation count.
	Ops int64
	// Warmup operations run before measurement starts.
	Warmup int64
	// ValueSize is the value payload per record (default 100 bytes, the
	// YCSB default field size).
	ValueSize int
	// ScanLen is the range-scan length of the scan mix (default 10).
	ScanLen int
	// Seed feeds the deterministic generator.
	Seed uint64
	// ReadMode routes the mix's point reads and scans through replica
	// read views: "" or "primary" (the default — every read serialized
	// through the primary, bit-for-bit today's run), "ryw"
	// (read-your-writes via the session's commit token), "bounded"
	// (bounded staleness within StalenessBound), or "quorum" (majority
	// reads with read repair). See ParseReadMode.
	ReadMode string
	// StalenessBound is the "bounded" mode's advertised lag bound in
	// commit sequences (default 64).
	StalenessBound uint64
}

func (o KVOptions) withDefaults() KVOptions {
	if o.Mix == "" {
		o.Mix = MixReadHeavy
	}
	if o.Records <= 0 {
		o.Records = 2000
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 100
	}
	if o.ScanLen <= 0 {
		o.ScanLen = 10
	}
	if o.StalenessBound == 0 {
		o.StalenessBound = 64
	}
	return o
}

// ParseReadMode maps a RunKV/flag spelling to the facade's read mode.
func ParseReadMode(s string) (repro.ReadMode, error) {
	switch s {
	case "", "primary":
		return repro.ReadPrimary, nil
	case "ryw", "read-your-writes":
		return repro.ReadYourWrites, nil
	case "bounded":
		return repro.ReadBounded, nil
	case "quorum":
		return repro.ReadQuorum, nil
	default:
		return repro.ReadPrimary, fmt.Errorf("tpc: unknown read mode %q (want primary, ryw, bounded or quorum)", s)
	}
}

// KVResult is one measured key-value run.
type KVResult struct {
	Mix string
	// Ops is the measured operation count; the per-kind counters break
	// it down (ScanItems counts entries the scans visited).
	Ops                            int64
	Reads, Updates, Inserts, Scans int64
	ScanItems                      int64
	// Elapsed is the simulated time of the measured interval; OPS the
	// headline operations per simulated second.
	Elapsed time.Duration
	OPS     float64
	// Net is the SAN traffic of the measured interval.
	Net repro.Traffic
	// Keys is the live keyspace size at the end of the run.
	Keys int
	// ReadMode echoes the run's read routing ("primary" when unset).
	ReadMode string
	// ReplicaReads and PrimaryReads split the measured reads and scans by
	// who served them (replica modes only; the default mix leaves both 0
	// and counts reads under Reads/Scans alone). Repaired totals the
	// quorum-read laggards pumped by read repair.
	ReplicaReads, PrimaryReads, Repaired int64
	// StaleViolations counts reads that broke their mode's contract —
	// a read-your-writes or quorum read returning anything but the
	// session's latest version, or a bounded read staler than its
	// advertised bound. Counted across warmup and the measured interval;
	// any non-zero value is a consistency bug, and the harness and bench
	// cells fail on it.
	StaleViolations int64
}

// BytesPerOp returns the SAN payload per measured operation.
func (r *KVResult) BytesPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Net.Total()) / float64(r.Ops)
}

// RunKV formats a kv store inside db, preloads the keyspace, warms up,
// and drives the measured operation mix.
func RunKV(db repro.DB, opts KVOptions) (KVResult, error) {
	opts = opts.withDefaults()
	if opts.Ops <= 0 {
		return KVResult{}, fmt.Errorf("tpc: non-positive kv operation count %d", opts.Ops)
	}
	store, err := kv.Open(db)
	if err != nil {
		return KVResult{}, err
	}
	// Updates are out of place, so even an overwrite transiently needs a
	// free slot: require headroom beyond the preloaded keyspace.
	if opts.Records >= store.Slots() {
		return KVResult{}, fmt.Errorf("tpc: %d records leave no slot headroom in the store's %d slots", opts.Records, store.Slots())
	}
	mode, err := ParseReadMode(opts.ReadMode)
	if err != nil {
		return KVResult{}, err
	}
	replica := mode != repro.ReadPrimary
	if replica && opts.ValueSize < 8 {
		return KVResult{}, fmt.Errorf("tpc: replica-read audit needs an 8-byte version prefix; value size %d too small", opts.ValueSize)
	}
	r := NewRand(opts.Seed)
	value := make([]byte, opts.ValueSize)
	fillValue := func(tag int64) {
		for i := range value {
			value[i] = byte(tag + int64(i)*131)
		}
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("user%08d", i)) }

	// Replica-read audit state: per-key version counters stamped into the
	// first 8 value bytes (content-only — the sim charges by sizes and
	// offsets, never byte values), the session's commit token, and — on a
	// single shard, where the session is the only writer and commits are
	// serial — the exact commit sequence of each key's latest write
	// (keySeq), predicted by counting the session's own commits (putSeq).
	var (
		tok    repro.Token
		vers   []uint64
		keySeq []uint64
		putSeq uint64
		single = db.Shards() == 1
	)
	ensureKey := func(idx int) {
		for len(vers) <= idx {
			vers = append(vers, 0)
			keySeq = append(keySeq, 0)
		}
	}
	// stamp bumps key idx's version and embeds it in the staged value;
	// the caller has already run fillValue.
	stamp := func(idx int) {
		ensureKey(idx)
		vers[idx]++
		binary.BigEndian.PutUint64(value[:8], vers[idx])
	}
	// strictAck-mode runs seal every write's group-commit batch, so each
	// write is acknowledged — not merely locally committed — before the
	// next operation, and the audit may demand it unconditionally. Quorum
	// mode needs this (its contract covers exactly the acknowledged
	// commits, and a parked write is indistinguishable from an acked one
	// out here); sharded runs need it because per-shard commit sequences
	// can't be predicted from a flat session. Read-your-writes and bounded
	// runs keep full batching: their contracts are auditable from the
	// token floor and the serving view's own sequence numbers.
	strictAck := !single || mode == repro.ReadQuorum
	// Quorum reads owe every *quorum-acknowledged* commit: any read
	// majority intersects every commit quorum. Under 1-safe or 2-safe no
	// commit quorum exists — Flush returns before the backups hold the
	// batch — so the unconditional quorum-freshness demand only holds on
	// quorum-committing deployments.
	quorumAcked := false
	if sr, ok := db.(interface{ Safety() repro.Safety }); ok {
		quorumAcked = sr.Safety() == repro.QuorumSafe
	}
	// wrote records the session floor after a successful mutation of idx.
	wrote := func(idx int) error {
		if strictAck {
			if err := db.Flush(); err != nil {
				return err
			}
		}
		tok = db.Token(tok)
		if single {
			putSeq++
			keySeq[idx] = putSeq
		}
		return nil
	}

	res := KVResult{Mix: opts.Mix, ReadMode: mode.String()}

	// audit checks one read-back version against the mode's contract.
	// Note the commit counter (and so the token) advances at local commit:
	// a write parked in an open group-commit batch is token-covered before
	// it is acknowledged or shipped — routing must treat it as a floor,
	// while quorum's acked-commits contract needs strictAck to be audited.
	audit := func(idx int, got uint64, rres repro.ReadResult) {
		// Routing-contract checks, independent of the value read:
		if rres.Replica > 0 {
			switch {
			case mode == repro.ReadYourWrites && len(tok) > 0 && rres.Seq < tok[0]:
				// The serving view never reached the session's floor.
				res.StaleViolations++
			case mode == repro.ReadBounded && rres.Primary-rres.Seq > opts.StalenessBound:
				// Staler than the advertised bound.
				res.StaleViolations++
			}
		}
		switch {
		case got > vers[idx]:
			// Newer than anything the session ever wrote.
			res.StaleViolations++
		case got == vers[idx]:
			// Fresh.
		case rres.Replica == 0:
			// The primary is never stale — it sees even parked writes.
			res.StaleViolations++
		case single && rres.Seq >= keySeq[idx]:
			// Any view whose applied sequence reached the write's commit
			// sequence must return it, whatever the mode. With the token
			// covering parked writes, this is also the read-your-writes
			// value check: a replica qualifying for the floor has
			// Seq >= tok >= keySeq, so a missing write lands here.
			res.StaleViolations++
		case strictAck && (mode == repro.ReadYourWrites || (mode == repro.ReadQuorum && quorumAcked)):
			// Every write was sealed and (on a quorum-committing
			// deployment) quorum-acknowledged in wrote(): these modes owe
			// all of them unconditionally.
			res.StaleViolations++
		}
	}
	served := func(rres repro.ReadResult, measured bool) {
		if !measured {
			return
		}
		if rres.Replica > 0 {
			res.ReplicaReads++
		} else {
			res.PrimaryReads++
		}
		res.Repaired += int64(rres.Repaired)
	}
	// Scan audit: the callback records each visited entry (parsing the
	// key's index back out of its "user%08d" spelling); the recorded
	// samples are audited after ScanAt reports who served the snapshot.
	type scanSample struct {
		idx int
		got uint64
	}
	var pend []scanSample
	record := func(k, v []byte) error {
		if len(k) != 12 || len(v) < 8 {
			pend = append(pend, scanSample{idx: -1})
			return nil
		}
		idx := 0
		for _, c := range k[4:] {
			if c < '0' || c > '9' {
				pend = append(pend, scanSample{idx: -1})
				return nil
			}
			idx = idx*10 + int(c-'0')
		}
		pend = append(pend, scanSample{idx: idx, got: binary.BigEndian.Uint64(v[:8])})
		return nil
	}
	flushScanAudit := func(rres repro.ReadResult) {
		for _, smp := range pend {
			if smp.idx < 0 {
				res.StaleViolations++
				continue
			}
			ensureKey(smp.idx)
			audit(smp.idx, smp.got, rres)
		}
		pend = pend[:0]
	}

	// Preload in multi-key transaction batches: one commit per batch
	// instead of two per key.
	const batch = 64
	for base := 0; base < opts.Records; base += batch {
		txn, err := store.Begin()
		if err != nil {
			return KVResult{}, err
		}
		for i := base; i < base+batch && i < opts.Records; i++ {
			fillValue(int64(i))
			if replica {
				stamp(i)
			}
			if err := txn.Put(key(i), value); err != nil {
				return KVResult{}, fmt.Errorf("tpc: kv preload %d: %w", i, err)
			}
		}
		if err := txn.Commit(); err != nil {
			return KVResult{}, fmt.Errorf("tpc: kv preload commit: %w", err)
		}
	}
	if replica {
		if err := db.Flush(); err != nil {
			return KVResult{}, err
		}
		// Let the shipped preload land on every backup before reads route
		// there: under 1-safe nothing else waits for the deliveries, and a
		// backup view missing whole preloaded keys would fail lookups
		// (staleness is a value property, existence is not). Pre-warmup,
		// so the measured interval is untouched.
		db.Settle()
		tok = db.Token(tok)
		putSeq = db.Committed() // preload commits, all sealed by the flush
	}
	nextKey := opts.Records // fresh-key counter for the scan mix's inserts
	// scanOnce runs one range scan, routed per the run's read mode.
	scanOnce := func(measured bool) error {
		start := key(r.IntN(nextKey))
		var (
			n   int
			err error
		)
		if replica {
			var rres repro.ReadResult
			n, rres, err = store.ScanAt(start, opts.ScanLen, repro.ReadOpts{Mode: mode, Token: tok, Bound: opts.StalenessBound}, record)
			if err != nil {
				pend = pend[:0]
				return err
			}
			flushScanAudit(rres)
			served(rres, measured)
		} else {
			n, err = store.Scan(start, opts.ScanLen, func(k, v []byte) error { return nil })
			if err != nil {
				return err
			}
		}
		if measured {
			res.Scans++
			res.ScanItems += int64(n)
		}
		return nil
	}
	one := func(measured bool) error {
		count := func(p *int64) {
			if measured {
				*p++
			}
		}
		draw := r.IntN(100)
		switch {
		case opts.Mix == MixScan && draw < 95:
			return scanOnce(measured)
		case opts.Mix == MixScan:
			// Insert a fresh key; at slot capacity substitute a scan —
			// the mix's dominant operation — since every write
			// (overwrites included, being out of place) needs a free
			// slot and would just re-raise ErrFull.
			fillValue(int64(nextKey))
			if replica {
				stamp(nextKey)
			}
			err := store.Put(key(nextKey), value)
			if errors.Is(err, kv.ErrFull) {
				if replica {
					vers[nextKey]-- // the write never happened
				}
				return scanOnce(measured)
			}
			if err == nil {
				if replica {
					if err := wrote(nextKey); err != nil {
						return err
					}
				}
				nextKey++
				count(&res.Inserts)
			}
			return err
		case (opts.Mix == MixReadHeavy && draw < 95) || (opts.Mix == MixUpdateHeavy && draw < 50):
			i := r.IntN(opts.Records)
			if replica {
				val, rres, err := store.GetAt(key(i), repro.ReadOpts{Mode: mode, Token: tok, Bound: opts.StalenessBound})
				if err != nil {
					return err
				}
				served(rres, measured)
				audit(i, binary.BigEndian.Uint64(val[:8]), rres)
			} else if _, err := store.Get(key(i)); err != nil {
				return err
			}
			count(&res.Reads)
			return nil
		default:
			i := r.IntN(opts.Records)
			fillValue(int64(i) * 31)
			if replica {
				stamp(i)
			}
			if err := store.Put(key(i), value); err != nil {
				return err
			}
			if replica {
				if err := wrote(i); err != nil {
					return err
				}
			}
			count(&res.Updates)
			return nil
		}
	}

	for i := int64(0); i < opts.Warmup; i++ {
		if err := one(false); err != nil {
			return KVResult{}, fmt.Errorf("tpc: kv warmup op %d: %w", i, err)
		}
	}
	db.ResetMeasurement()
	for i := int64(0); i < opts.Ops; i++ {
		if err := one(true); err != nil {
			return KVResult{}, fmt.Errorf("tpc: kv op %d: %w", i, err)
		}
	}
	res.Ops = opts.Ops
	if replica {
		// A read-scaled run is paced by its busiest node — primary or
		// read-serving backup — not by the primary alone.
		res.Elapsed = db.ReplicaElapsed()
	} else {
		res.Elapsed = db.Elapsed()
	}
	res.Net = db.NetTraffic()
	res.Keys = store.Len()
	if res.Elapsed > 0 {
		res.OPS = float64(res.Ops) / res.Elapsed.Seconds()
	}
	return res, nil
}
