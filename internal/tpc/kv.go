package tpc

import (
	"errors"
	"fmt"
	"time"

	"repro"
	"repro/kv"
)

// RunKV drives a YCSB-style key-value workload against any repro.DB
// through the kv layer: the store is formatted inside the deployment's
// replicated bytes, preloaded with a keyspace, and then hit with one of
// three operation mixes modeled on the standard YCSB core workloads:
//
//   - read-heavy (YCSB-B): 95% point reads, 5% value updates
//   - update-heavy (YCSB-A): 50% point reads, 50% value updates
//   - scan (YCSB-E): 95% short range scans, 5% fresh-key inserts
//
// Because the driver sees only the DB interface, the same run works over
// a Cluster and a ShardedCluster — the measured difference is exactly the
// facades' difference (sharded deployments pay the kv layer's two-phase
// record-then-flip commit; single groups merge it into one transaction).

// The YCSB-style operation mixes RunKV accepts.
const (
	MixReadHeavy   = "read-heavy"
	MixUpdateHeavy = "update-heavy"
	MixScan        = "scan"
)

// KVMixes lists the mixes in reporting order.
func KVMixes() []string { return []string{MixReadHeavy, MixUpdateHeavy, MixScan} }

// KVOptions tunes a RunKV run.
type KVOptions struct {
	// Mix is one of MixReadHeavy, MixUpdateHeavy, MixScan (default
	// read-heavy).
	Mix string
	// Records is the preloaded keyspace size (default 2000).
	Records int
	// Ops is the measured operation count.
	Ops int64
	// Warmup operations run before measurement starts.
	Warmup int64
	// ValueSize is the value payload per record (default 100 bytes, the
	// YCSB default field size).
	ValueSize int
	// ScanLen is the range-scan length of the scan mix (default 10).
	ScanLen int
	// Seed feeds the deterministic generator.
	Seed uint64
}

func (o KVOptions) withDefaults() KVOptions {
	if o.Mix == "" {
		o.Mix = MixReadHeavy
	}
	if o.Records <= 0 {
		o.Records = 2000
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 100
	}
	if o.ScanLen <= 0 {
		o.ScanLen = 10
	}
	return o
}

// KVResult is one measured key-value run.
type KVResult struct {
	Mix string
	// Ops is the measured operation count; the per-kind counters break
	// it down (ScanItems counts entries the scans visited).
	Ops                            int64
	Reads, Updates, Inserts, Scans int64
	ScanItems                      int64
	// Elapsed is the simulated time of the measured interval; OPS the
	// headline operations per simulated second.
	Elapsed time.Duration
	OPS     float64
	// Net is the SAN traffic of the measured interval.
	Net repro.Traffic
	// Keys is the live keyspace size at the end of the run.
	Keys int
}

// BytesPerOp returns the SAN payload per measured operation.
func (r *KVResult) BytesPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Net.Total()) / float64(r.Ops)
}

// RunKV formats a kv store inside db, preloads the keyspace, warms up,
// and drives the measured operation mix.
func RunKV(db repro.DB, opts KVOptions) (KVResult, error) {
	opts = opts.withDefaults()
	if opts.Ops <= 0 {
		return KVResult{}, fmt.Errorf("tpc: non-positive kv operation count %d", opts.Ops)
	}
	store, err := kv.Open(db)
	if err != nil {
		return KVResult{}, err
	}
	// Updates are out of place, so even an overwrite transiently needs a
	// free slot: require headroom beyond the preloaded keyspace.
	if opts.Records >= store.Slots() {
		return KVResult{}, fmt.Errorf("tpc: %d records leave no slot headroom in the store's %d slots", opts.Records, store.Slots())
	}
	r := NewRand(opts.Seed)
	value := make([]byte, opts.ValueSize)
	fillValue := func(tag int64) {
		for i := range value {
			value[i] = byte(tag + int64(i)*131)
		}
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("user%08d", i)) }

	// Preload in multi-key transaction batches: one commit per batch
	// instead of two per key.
	const batch = 64
	for base := 0; base < opts.Records; base += batch {
		txn, err := store.Begin()
		if err != nil {
			return KVResult{}, err
		}
		for i := base; i < base+batch && i < opts.Records; i++ {
			fillValue(int64(i))
			if err := txn.Put(key(i), value); err != nil {
				return KVResult{}, fmt.Errorf("tpc: kv preload %d: %w", i, err)
			}
		}
		if err := txn.Commit(); err != nil {
			return KVResult{}, fmt.Errorf("tpc: kv preload commit: %w", err)
		}
	}

	res := KVResult{Mix: opts.Mix}
	nextKey := opts.Records // fresh-key counter for the scan mix's inserts
	one := func(measured bool) error {
		count := func(p *int64) {
			if measured {
				*p++
			}
		}
		draw := r.IntN(100)
		switch {
		case opts.Mix == MixScan && draw < 95:
			n, err := store.Scan(key(r.IntN(nextKey)), opts.ScanLen, func(k, v []byte) error { return nil })
			if err != nil {
				return err
			}
			count(&res.Scans)
			if measured {
				res.ScanItems += int64(n)
			}
			return nil
		case opts.Mix == MixScan:
			// Insert a fresh key; at slot capacity substitute a scan —
			// the mix's dominant operation — since every write
			// (overwrites included, being out of place) needs a free
			// slot and would just re-raise ErrFull.
			fillValue(int64(nextKey))
			err := store.Put(key(nextKey), value)
			if errors.Is(err, kv.ErrFull) {
				n, err := store.Scan(key(r.IntN(nextKey)), opts.ScanLen, func(k, v []byte) error { return nil })
				if err != nil {
					return err
				}
				count(&res.Scans)
				if measured {
					res.ScanItems += int64(n)
				}
				return nil
			}
			if err == nil {
				nextKey++
				count(&res.Inserts)
			}
			return err
		case (opts.Mix == MixReadHeavy && draw < 95) || (opts.Mix == MixUpdateHeavy && draw < 50):
			_, err := store.Get(key(r.IntN(opts.Records)))
			if err != nil {
				return err
			}
			count(&res.Reads)
			return nil
		default:
			i := r.IntN(opts.Records)
			fillValue(int64(i) * 31)
			if err := store.Put(key(i), value); err != nil {
				return err
			}
			count(&res.Updates)
			return nil
		}
	}

	for i := int64(0); i < opts.Warmup; i++ {
		if err := one(false); err != nil {
			return KVResult{}, fmt.Errorf("tpc: kv warmup op %d: %w", i, err)
		}
	}
	db.ResetMeasurement()
	for i := int64(0); i < opts.Ops; i++ {
		if err := one(true); err != nil {
			return KVResult{}, fmt.Errorf("tpc: kv op %d: %w", i, err)
		}
	}
	res.Ops = opts.Ops
	res.Elapsed = db.Elapsed()
	res.Net = db.NetTraffic()
	res.Keys = store.Len()
	if res.Elapsed > 0 {
		res.OPS = float64(res.Ops) / res.Elapsed.Seconds()
	}
	return res, nil
}
