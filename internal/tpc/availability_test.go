package tpc_test

import (
	"testing"
	"time"

	"repro"
	"repro/internal/tpc"
)

// TestRunAvailabilityTimeline runs a small crash→failover→repair timeline
// and checks the shape of the measured curve: a healthy baseline, commits
// flowing in every repair window (the non-blocking property at driver
// level), a completed repair with real transfer bytes, and a restored
// tail.
func TestRunAvailabilityTimeline(t *testing.T) {
	const db = 4 << 20
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  db,
		Backups: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tpc.NewDebitCredit(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tpc.RunAvailability(c, w, tpc.AvailabilityOptions{
		Window:          2 * time.Millisecond,
		HealthyWindows:  2,
		RestoredWindows: 2,
		Warmup:          100,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseTPS <= 0 {
		t.Fatalf("no healthy baseline: %+v", res)
	}
	if res.RepairBytes == 0 || res.RepairDur <= 0 {
		t.Fatalf("repair did no measurable work: %+v", res)
	}
	if res.RestoredAt <= res.CrashAt {
		t.Fatalf("restoration instant %v not after the crash %v", res.RestoredAt, res.CrashAt)
	}
	phases := map[string]int{}
	lastPhase := ""
	for _, win := range res.Windows {
		phases[win.Phase]++
		switch {
		case win.Phase == "healthy" && lastPhase != "" && lastPhase != "healthy":
			t.Fatalf("healthy window after %q", lastPhase)
		case win.Phase == "restored" && lastPhase == "healthy":
			t.Fatal("restored window with no repair phase between")
		}
		if win.Phase == "repair" && win.Txns == 0 {
			t.Fatalf("1-safe repair window committed nothing: %+v", win)
		}
		lastPhase = win.Phase
	}
	if phases["healthy"] != 2 || phases["restored"] != 2 || phases["repair"] == 0 {
		t.Fatalf("unexpected phase mix: %v", phases)
	}
	if res.MinTPS >= res.BaseTPS {
		t.Fatalf("no availability dip: min %f >= base %f", res.MinTPS, res.BaseTPS)
	}
}
