package tpc

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"repro/internal/replication"
)

// Order-Entry layout constants. The workload follows TPC-C's shape —
// warehouses with 10 districts, customers, a stock table, per-district
// order rings — restricted to the three database-updating transaction
// types the paper uses (Section 2.4). set_range extents cover whole
// records (the conservative declaration a real application makes), which
// is what gives Order-Entry its large undo-to-modified ratio.
const (
	oeHeaderSize = 64
	oeWHRec      = 256
	oeDistRec    = 256
	oeCustRec    = 256
	oeStockRec   = 64
	oeOrderHdr   = 32
	oeLineRec    = 24
	oeMaxLines   = 12
	oeOrderSlot  = oeOrderHdr + oeMaxLines*oeLineRec // 320
	oeHistRec    = 48
	oeHistBytes  = 1 << 20

	districtsPerWH = 10
	// perWHFootprint is the full-scale per-warehouse budget used to pick
	// the warehouse count for a database size.
	perWHFootprint = 15 << 20

	// Transaction mix: the three TPC-C update types renormalized
	// (New-Order 45 : Payment 43 : Delivery 4 of the standard mix).
	mixNewOrder = 49
	mixPayment  = 47 // Delivery gets the remaining 4%
)

// District record fields.
const (
	distNextOID = 0
	distYTD     = 4
)

// Order header fields.
const (
	ordOID     = 0
	ordCID     = 4
	ordCnt     = 8
	ordCarrier = 12
	ordDate    = 16
)

// Order line fields.
const (
	olItem     = 0
	olQty      = 4
	olAmount   = 8
	olDelivery = 16
)

// OrderEntry is the TPC-C-variant workload.
type OrderEntry struct {
	dbSize int

	warehouses int
	custPerD   int
	stockPerWH int
	slotsPerD  int

	whOff    int
	distOff  int
	custOff  int
	stockOff int
	orderOff int
	histOff  int
	histCap  int64

	buf [64]byte
}

var _ Workload = (*OrderEntry)(nil)

// NewOrderEntry lays the benchmark out over a database of dbSize bytes.
func NewOrderEntry(dbSize int) (*OrderEntry, error) {
	avail := dbSize - oeHeaderSize - oeHistBytes
	if avail < 1<<20 {
		return nil, fmt.Errorf("tpc: database of %d bytes too small for Order-Entry", dbSize)
	}
	w := &OrderEntry{dbSize: dbSize}
	w.warehouses = dbSize / perWHFootprint
	if w.warehouses < 1 {
		w.warehouses = 1
	}
	perWH := avail/w.warehouses - oeWHRec - districtsPerWH*oeDistRec

	w.custPerD = clamp(perWH*55/100/oeCustRec/districtsPerWH, 100, 3000)
	w.stockPerWH = clamp(perWH*38/100/oeStockRec, 1000, 100000)
	w.slotsPerD = clamp(perWH*7/100/oeOrderSlot/districtsPerWH, 64, 1024)

	w.whOff = oeHeaderSize
	w.distOff = w.whOff + w.warehouses*oeWHRec
	w.custOff = w.distOff + w.warehouses*districtsPerWH*oeDistRec
	w.stockOff = w.custOff + w.warehouses*districtsPerWH*w.custPerD*oeCustRec
	w.orderOff = w.stockOff + w.warehouses*w.stockPerWH*oeStockRec
	w.histOff = w.orderOff + w.warehouses*districtsPerWH*w.slotsPerD*oeOrderSlot
	w.histCap = int64(oeHistBytes / oeHistRec)

	if w.histOff+oeHistBytes > dbSize {
		return nil, fmt.Errorf("tpc: Order-Entry layout overflows %d-byte database", dbSize)
	}
	return w, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Name implements Workload.
func (w *OrderEntry) Name() string { return "Order-Entry" }

// DBSize implements Workload.
func (w *OrderEntry) DBSize() int { return w.dbSize }

// Warehouses reports the scaled layout.
func (w *OrderEntry) Warehouses() int { return w.warehouses }

// Populate writes the layout header; numeric fields start at zero.
func (w *OrderEntry) Populate(load func(off int, data []byte) error) error {
	hdr := make([]byte, oeHeaderSize)
	copy(hdr, "ORDERENT")
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.warehouses))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(w.custPerD))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(w.stockPerWH))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(w.slotsPerD))
	return load(0, hdr)
}

// Txn implements Workload, dispatching on the paper's transaction mix.
func (w *OrderEntry) Txn(r *rand.Rand, tx replication.TxHandle, i int64) error {
	switch p := r.IntN(100); {
	case p < mixNewOrder:
		return w.newOrder(r, tx)
	case p < mixNewOrder+mixPayment:
		return w.payment(r, tx, i)
	default:
		return w.delivery(r, tx)
	}
}

// newOrder inserts an order with 3..10 lines: it advances the district's
// next-order id, fills an order slot, and decrements stock quantities.
func (w *OrderEntry) newOrder(r *rand.Rand, tx replication.TxHandle) error {
	wh := r.IntN(w.warehouses)
	d := r.IntN(districtsPerWH)
	items := 3 + r.IntN(8)

	// District: read-modify-write next_o_id.
	dOff := w.districtOff(wh, d)
	if err := tx.SetRange(dOff, 32); err != nil {
		return err
	}
	var b4 [4]byte
	if err := tx.Read(dOff+distNextOID, b4[:]); err != nil {
		return err
	}
	oid := binary.LittleEndian.Uint32(b4[:])
	binary.LittleEndian.PutUint32(b4[:], oid+1)
	if err := tx.Write(dOff+distNextOID, b4[:]); err != nil {
		return err
	}

	// Order slot: header plus one entry per line.
	cid := r.IntN(w.custPerD)
	slot := w.orderSlotOff(wh, d, int(oid)%w.slotsPerD)
	if err := tx.SetRange(slot, oeOrderHdr+items*oeLineRec); err != nil {
		return err
	}
	hdr := w.buf[:20]
	binary.LittleEndian.PutUint32(hdr[ordOID:], oid)
	binary.LittleEndian.PutUint32(hdr[ordCID:], uint32(cid))
	binary.LittleEndian.PutUint32(hdr[ordCnt:], uint32(items))
	binary.LittleEndian.PutUint32(hdr[ordCarrier:], 0)
	binary.LittleEndian.PutUint32(hdr[ordDate:], oid^uint32(cid))
	if err := tx.Write(slot, hdr); err != nil {
		return err
	}
	for l := 0; l < items; l++ {
		item := r.IntN(w.stockPerWH)
		qty := 1 + r.IntN(10)
		amount := uint32(qty) * uint32(1+item%97)

		line := w.buf[:12]
		binary.LittleEndian.PutUint32(line[olItem:], uint32(item))
		binary.LittleEndian.PutUint32(line[olQty:], uint32(qty))
		binary.LittleEndian.PutUint32(line[olAmount:], amount)
		if err := tx.Write(slot+oeOrderHdr+l*oeLineRec, line); err != nil {
			return err
		}

		// Stock: read-modify-write quantity and year-to-date.
		sOff := w.stockRecOff(wh, item)
		if err := tx.SetRange(sOff, 16); err != nil {
			return err
		}
		var sb [8]byte
		if err := tx.Read(sOff, sb[:]); err != nil {
			return err
		}
		sq := binary.LittleEndian.Uint32(sb[0:4])
		sy := binary.LittleEndian.Uint32(sb[4:8])
		if sq < uint32(qty) {
			sq += 91 // TPC-C restock rule
		}
		binary.LittleEndian.PutUint32(sb[0:4], sq-uint32(qty))
		binary.LittleEndian.PutUint32(sb[4:8], sy+uint32(qty))
		if err := tx.Write(sOff, sb[:]); err != nil {
			return err
		}
	}
	return nil
}

// payment updates warehouse and district year-to-date totals, the
// customer's balance triple, and appends a history record.
func (w *OrderEntry) payment(r *rand.Rand, tx replication.TxHandle, i int64) error {
	wh := r.IntN(w.warehouses)
	d := r.IntN(districtsPerWH)
	c := r.IntN(w.custPerD)
	amount := uint32(1 + r.IntN(5000))

	wOff := w.whOff + wh*oeWHRec
	if err := w.rmwU32(tx, wOff, 16, 0, amount); err != nil {
		return err
	}
	dOff := w.districtOff(wh, d)
	if err := w.rmwU32(tx, dOff, 16, distYTD, amount); err != nil {
		return err
	}

	// Customer: the whole record is declared (balance, ytd, count live
	// together with the payment data fields).
	cOff := w.custRecOff(wh, d, c)
	if err := tx.SetRange(cOff, oeCustRec); err != nil {
		return err
	}
	var cb [12]byte
	if err := tx.Read(cOff, cb[:]); err != nil {
		return err
	}
	bal := binary.LittleEndian.Uint32(cb[0:4]) - amount
	ytd := binary.LittleEndian.Uint32(cb[4:8]) + amount
	cnt := binary.LittleEndian.Uint32(cb[8:12]) + 1
	binary.LittleEndian.PutUint32(cb[0:4], bal)
	binary.LittleEndian.PutUint32(cb[4:8], ytd)
	binary.LittleEndian.PutUint32(cb[8:12], cnt)
	if err := tx.Write(cOff, cb[:]); err != nil {
		return err
	}

	// History append.
	hOff := w.histOff + int(i%w.histCap)*oeHistRec
	if err := tx.SetRange(hOff, oeHistRec); err != nil {
		return err
	}
	h := w.buf[:40]
	binary.LittleEndian.PutUint32(h[0:], uint32(wh))
	binary.LittleEndian.PutUint32(h[4:], uint32(d))
	binary.LittleEndian.PutUint32(h[8:], uint32(c))
	binary.LittleEndian.PutUint32(h[12:], amount)
	binary.LittleEndian.PutUint32(h[16:], uint32(i))
	for j := 20; j < 40; j += 4 {
		binary.LittleEndian.PutUint32(h[j:], amount^uint32(j))
	}
	return tx.Write(hOff, h)
}

// delivery processes the most recent order of every district in one
// warehouse: stamps carrier and per-line delivery dates, and credits the
// ordering customer's balance.
func (w *OrderEntry) delivery(r *rand.Rand, tx replication.TxHandle) error {
	wh := r.IntN(w.warehouses)
	carrier := uint32(1 + r.IntN(10))

	for d := 0; d < districtsPerWH; d++ {
		dOff := w.districtOff(wh, d)
		var b4 [4]byte
		if err := tx.Read(dOff+distNextOID, b4[:]); err != nil {
			return err
		}
		nextOID := binary.LittleEndian.Uint32(b4[:])
		if nextOID == 0 {
			continue // no orders yet in this district
		}
		slot := w.orderSlotOff(wh, d, int(nextOID-1)%w.slotsPerD)

		var hdr [12]byte
		if err := tx.Read(slot, hdr[:]); err != nil {
			return err
		}
		cid := binary.LittleEndian.Uint32(hdr[ordCID:])
		cnt := int(binary.LittleEndian.Uint32(hdr[ordCnt:]))
		if cnt < 1 || cnt > oeMaxLines {
			continue // slot not populated yet (ring wrap at startup)
		}

		if err := tx.SetRange(slot, oeOrderHdr+cnt*oeLineRec); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(b4[:], carrier)
		if err := tx.Write(slot+ordCarrier, b4[:]); err != nil {
			return err
		}
		total := uint32(0)
		for l := 0; l < cnt; l++ {
			line := slot + oeOrderHdr + l*oeLineRec
			var amt [4]byte
			if err := tx.Read(line+olAmount, amt[:]); err != nil {
				return err
			}
			total += binary.LittleEndian.Uint32(amt[:])
			binary.LittleEndian.PutUint32(amt[:], carrier+uint32(l))
			if err := tx.Write(line+olDelivery, amt[:]); err != nil {
				return err
			}
		}

		// Credit the customer.
		cOff := w.custRecOff(wh, d, int(cid))
		if err := tx.SetRange(cOff, oeCustRec); err != nil {
			return err
		}
		var cb [8]byte
		if err := tx.Read(cOff, cb[:]); err != nil {
			return err
		}
		bal := binary.LittleEndian.Uint32(cb[0:4]) + total
		dcnt := binary.LittleEndian.Uint32(cb[4:8]) + 1
		binary.LittleEndian.PutUint32(cb[0:4], bal)
		binary.LittleEndian.PutUint32(cb[4:8], dcnt)
		if err := tx.Write(cOff, cb[:]); err != nil {
			return err
		}
	}
	return nil
}

// rmwU32 declares a range and adds delta to the u32 at off+field.
func (w *OrderEntry) rmwU32(tx replication.TxHandle, off, rangeLen, field int, delta uint32) error {
	if err := tx.SetRange(off, rangeLen); err != nil {
		return err
	}
	var b [4]byte
	if err := tx.Read(off+field, b[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b[:], binary.LittleEndian.Uint32(b[:])+delta)
	return tx.Write(off+field, b[:])
}

func (w *OrderEntry) districtOff(wh, d int) int {
	return w.distOff + (wh*districtsPerWH+d)*oeDistRec
}

func (w *OrderEntry) custRecOff(wh, d, c int) int {
	return w.custOff + ((wh*districtsPerWH+d)*w.custPerD+c)*oeCustRec
}

func (w *OrderEntry) stockRecOff(wh, item int) int {
	return w.stockOff + (wh*w.stockPerWH+item)*oeStockRec
}

func (w *OrderEntry) orderSlotOff(wh, d, slot int) int {
	return w.orderOff + ((wh*districtsPerWH+d)*w.slotsPerD+slot)*oeOrderSlot
}
