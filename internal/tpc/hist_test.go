package tpc

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistBucketRoundTrip: every bucket's representative value indexes
// back into the same bucket, and indices are monotone in the value.
func TestHistBucketRoundTrip(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		v := histValue(i)
		if got := histIndex(v); got != i {
			t.Fatalf("histIndex(histValue(%d)) = %d", i, got)
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, 1 << 40, math.MaxUint64 / 2} {
		idx := histIndex(v)
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

// TestHistPercentiles: a known uniform population reads back within the
// bucketing's relative resolution.
func TestHistPercentiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 10_000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 10_000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 5000 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
		{0.999, 9990 * time.Microsecond},
	}
	for _, c := range checks {
		got := h.Percentile(c.q)
		rel := math.Abs(float64(got-c.want)) / float64(c.want)
		if rel > 0.05 {
			t.Errorf("p%g = %v, want ~%v (rel err %.3f)", c.q*100, got, c.want, rel)
		}
	}
	if m := h.Mean(); m < 4500*time.Microsecond || m > 5500*time.Microsecond {
		t.Errorf("mean = %v, want ~5ms", m)
	}
}

// TestHistMergeConcurrent: concurrent recording plus a merge preserves
// the total sample count and sum.
func TestHistMergeConcurrent(t *testing.T) {
	var a, b Hist
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Record(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	b.Record(time.Millisecond)
	b.Merge(&a)
	if b.Count() != 8001 {
		t.Fatalf("merged count = %d, want 8001", b.Count())
	}
	if b.Sum() != a.Sum()+time.Millisecond {
		t.Fatalf("merged sum = %v, want %v", b.Sum(), a.Sum()+time.Millisecond)
	}
	if b.Percentile(1) < time.Millisecond {
		t.Fatalf("max percentile %v below the merged max", b.Percentile(1))
	}
}
