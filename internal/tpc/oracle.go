package tpc

import (
	"bytes"
	"fmt"

	"repro/internal/replication"
)

// Oracle shadows committed transactions in a plain byte array so tests can
// verify that the instrumented, replicated store computes exactly the same
// database state as a trivial executor.
type Oracle struct {
	shadow []byte
	cur    oracleTx
}

// NewOracle returns an oracle for a database of the given size. The
// workload's Populate must be applied via Load before driving.
func NewOracle(dbSize int) *Oracle {
	return &Oracle{shadow: make([]byte, dbSize)}
}

// Load mirrors Pair.Load for initial content.
func (o *Oracle) Load(off int, data []byte) error {
	copy(o.shadow[off:off+len(data)], data)
	return nil
}

// Shadow returns the oracle's database image.
func (o *Oracle) Shadow() []byte { return o.shadow }

// Compare checks a database image against the shadow and reports the first
// mismatching offset.
func (o *Oracle) Compare(db []byte) error {
	if len(db) != len(o.shadow) {
		return fmt.Errorf("tpc: oracle size %d != database size %d", len(o.shadow), len(db))
	}
	if i := firstMismatch(o.shadow, db); i >= 0 {
		return fmt.Errorf("tpc: database diverges from oracle at offset %d (%#x != %#x)", i, db[i], o.shadow[i])
	}
	return nil
}

func firstMismatch(a, b []byte) int {
	if bytes.Equal(a, b) {
		return -1
	}
	n := len(a)
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// wrap returns a handle that stages writes and applies them to the shadow
// if and only if the underlying commit succeeds.
func (o *Oracle) wrap(tx replication.TxHandle) replication.TxHandle {
	o.cur = oracleTx{o: o, tx: tx, offs: o.cur.offs[:0], data: o.cur.data[:0], lens: o.cur.lens[:0]}
	return &o.cur
}

type oracleTx struct {
	o    *Oracle
	tx   replication.TxHandle
	offs []int
	lens []int
	data []byte
}

var _ replication.TxHandle = (*oracleTx)(nil)

func (t *oracleTx) SetRange(off, n int) error { return t.tx.SetRange(off, n) }

func (t *oracleTx) Read(off int, dst []byte) error { return t.tx.Read(off, dst) }

func (t *oracleTx) Write(off int, src []byte) error {
	if err := t.tx.Write(off, src); err != nil {
		return err
	}
	t.offs = append(t.offs, off)
	t.lens = append(t.lens, len(src))
	t.data = append(t.data, src...)
	return nil
}

func (t *oracleTx) Commit() error {
	if err := t.tx.Commit(); err != nil {
		return err
	}
	cursor := 0
	for i, off := range t.offs {
		copy(t.o.shadow[off:off+t.lens[i]], t.data[cursor:cursor+t.lens[i]])
		cursor += t.lens[i]
	}
	return nil
}

func (t *oracleTx) Abort() error { return t.tx.Abort() }

// shadowTx executes transactions directly against a byte array: the pure
// reference semantics used to reconstruct "state after K commits" for
// crash/failover verification.
type shadowTx struct {
	db []byte
}

var _ replication.TxHandle = (*shadowTx)(nil)

func (t *shadowTx) SetRange(int, int) error { return nil }

func (t *shadowTx) Read(off int, dst []byte) error {
	copy(dst, t.db[off:off+len(dst)])
	return nil
}

func (t *shadowTx) Write(off int, src []byte) error {
	copy(t.db[off:off+len(src)], src)
	return nil
}

func (t *shadowTx) Commit() error { return nil }
func (t *shadowTx) Abort() error  { return nil }

// Replay reconstructs the database image after exactly commits committed
// transactions of the given workload/seed/abort schedule, mirroring Run's
// loop (including its warmup prefix, which also mutates state). Workloads
// are deterministic given the seed and the evolving database image, so the
// result is the unique "state after K commits".
//
// The returned slice is freshly allocated; w must be a fresh workload laid
// out for the same database size.
func Replay(w Workload, opts Options, commits int64) ([]byte, error) {
	db := make([]byte, w.DBSize())
	load := func(off int, data []byte) error {
		copy(db[off:off+len(data)], data)
		return nil
	}
	if err := w.Populate(load); err != nil {
		return nil, err
	}
	r := NewRand(opts.Seed)
	tx := &shadowTx{db: db}
	scratch := make([]byte, len(db))

	done := int64(0)
	for i := int64(0); done < opts.Warmup+commits; i++ {
		abort := i >= opts.Warmup && opts.AbortEvery > 0 && (i+1)%opts.AbortEvery == 0
		if abort {
			// Run against a scratch copy so aborted effects vanish,
			// while consuming exactly the same randomness.
			copy(scratch, db)
			sc := &shadowTx{db: scratch}
			if err := w.Txn(r, sc, i); err != nil {
				return nil, err
			}
			continue
		}
		if err := w.Txn(r, tx, i); err != nil {
			return nil, err
		}
		done++
	}
	return db, nil
}
