package tpc

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"repro"
)

// RunDurability is the crash-recovery scenario family of the disk tier: a
// committed workload is cut down by a full-cluster power loss at a seeded
// kill point — every machine at once, backups included — the unsynced
// tail of each replica's WAL is optionally torn, bit-flipped or
// zero-filled, and a cold restart over the same durability directory must
// come back with every acked-durable transaction and an image that
// exactly matches the deterministic replay oracle at whatever sequence it
// recovered. The driver measures what an operator would: host wall time
// from "power restored" to "serving again", records replayed, bytes
// truncated, and — the invariant the whole tier exists for — zero lost
// acked writes.

// Corrupt-tail modes a power loss may leave behind (the unsynced tail of
// the live WAL segment sat in the page cache; anything can have happened
// to it).
const (
	// TailIntact leaves the files exactly as the page cache flushed them.
	TailIntact = "intact"
	// TailTorn truncates the tail mid-record (a partial sector write).
	TailTorn = "torn"
	// TailBitFlip flips a few bits in the tail (a misdirected or
	// corrupted sector).
	TailBitFlip = "bit-flip"
	// TailZeroed zero-fills a range of the tail (an unwritten extent
	// read back as zeros).
	TailZeroed = "zero-fill"
	// TailMixed draws one of the four outcomes per replica, seeded.
	TailMixed = "mixed"
)

// DurabilityOptions tunes one RunDurability drill.
type DurabilityOptions struct {
	// Txns bounds the workload: the power fails after a seeded number
	// of committed transactions in [Txns/2, Txns] (default 300).
	Txns int
	// Corrupt is the tail treatment after the power loss: one of the
	// Tail* constants (default TailMixed).
	Corrupt string
	// Seed feeds the workload, the kill point and the corruption draws,
	// making the whole drill reproducible.
	Seed uint64
}

func (o DurabilityOptions) withDefaults() DurabilityOptions {
	if o.Txns <= 0 {
		o.Txns = 300
	}
	if o.Corrupt == "" {
		o.Corrupt = TailMixed
	}
	return o
}

// DurabilityResult is the measured record of one kill-and-restart drill.
type DurabilityResult struct {
	// Total is the locally committed transaction count at the instant
	// the power failed; AckedDurable is the prefix the last fdatasync
	// had covered — the transactions whose loss would be a lie to the
	// client.
	Total        uint64
	AckedDurable uint64
	// Recovered is the committed count the cold restart came back with;
	// it lies in [AckedDurable, Total] — the unsynced tail may or may
	// not have survived the tearing.
	Recovered uint64
	// LostAckedWrites is max(0, AckedDurable-Recovered): the invariant
	// under test is that it is always zero.
	LostAckedWrites int64
	// SnapshotSeq, Replayed and TruncatedBytes describe the recovery:
	// the winning snapshot's base, WAL records replayed on top of it,
	// and corrupt/torn bytes dropped across the replica directories.
	SnapshotSeq    uint64
	Replayed       int
	TruncatedBytes int64
	// Resynced and Rejoined count how the surviving replicas came back:
	// in place, or rebuilt through the chunked transfer engine.
	Resynced, Rejoined int
	// RecoveryWall is the host wall time of the cold restart (the
	// construction of the restarted deployment) — the only number in
	// the package measured on the host clock, because disk recovery is
	// host work, not simulated work.
	RecoveryWall time.Duration
	// Tails counts the WAL segments the drill corrupted.
	Tails int
}

// RunDurability runs one seeded kill-and-restart drill. open constructs
// the deployment; it is called twice — once for the doomed incarnation,
// once, after the power loss and tail corruption, for the cold restart —
// and must return a deployment over the same Durability.Dir both times.
// The drill needs a single replica group (Shards() == 1): the replay
// oracle reconstructs "state after K commits", which has no meaning
// across independently-failing shards.
func RunDurability(open func() (FaultDB, error), w Workload, opts DurabilityOptions) (DurabilityResult, error) {
	opts = opts.withDefaults()
	var res DurabilityResult

	db, err := open()
	if err != nil {
		return res, err
	}
	if db.Shards() != 1 {
		return res, errors.New("tpc: durability drill needs a single replica group")
	}
	if !db.Durability().Enabled {
		return res, errors.New("tpc: durability drill needs Config.Durability")
	}
	if err := w.Populate(db.Load); err != nil {
		return res, err
	}
	kills := NewRand(opts.Seed ^ 0xD15C)
	kill := opts.Txns/2 + kills.IntN(opts.Txns/2+1)
	st := &stream{db: db, w: w, r: NewRand(opts.Seed)}
	for i := 0; i < kill; i++ {
		if err := st.one(); err != nil {
			return res, fmt.Errorf("tpc: txn %d: %w", i, err)
		}
	}
	res.Total = db.Committed()
	res.AckedDurable = db.Durability().DurableSeq
	if err := db.PowerFail(); err != nil {
		return res, fmt.Errorf("tpc: power fail: %w", err)
	}
	tails := db.WALTails()
	res.Tails = len(tails)
	for _, tail := range tails {
		if err := corruptTail(kills, opts.Corrupt, tail); err != nil {
			return res, fmt.Errorf("tpc: corrupt %s: %w", tail.Path, err)
		}
	}

	wallStart := time.Now()
	db2, err := open()
	if err != nil {
		return res, fmt.Errorf("tpc: cold restart: %w", err)
	}
	res.RecoveryWall = time.Since(wallStart)
	rec := db2.Durability().Recovery
	res.SnapshotSeq = rec.SnapSeq
	res.Replayed = rec.Replayed
	res.TruncatedBytes = rec.TruncatedBytes
	res.Resynced = rec.Resynced
	res.Rejoined = rec.Rejoined
	res.Recovered = db2.Committed()
	if res.Recovered < res.AckedDurable {
		res.LostAckedWrites = int64(res.AckedDurable) - int64(res.Recovered)
	}
	if res.Recovered > res.Total {
		return res, fmt.Errorf("tpc: recovered %d commits from a run of %d", res.Recovered, res.Total)
	}

	// The recovered image must be exactly "state after Recovered
	// commits" of the deterministic workload — not one byte of a torn
	// transaction applied, not one byte of a recovered one missing.
	want, err := Replay(w, Options{Seed: opts.Seed}, int64(res.Recovered))
	if err != nil {
		return res, err
	}
	got := make([]byte, w.DBSize())
	db2.ReadRaw(0, got)
	if i := firstMismatch(want, got); i >= 0 {
		return res, fmt.Errorf("tpc: recovered image diverges from the replay oracle at offset %d (recovered seq %d)", i, res.Recovered)
	}

	// The restarted deployment serves: continue the stream where the
	// recovered prefix ends, then shut down cleanly.
	st2 := &stream{db: db2, w: w, r: NewRand(opts.Seed ^ 0xAF7E12), n: int64(res.Recovered)}
	for i := 0; i < 5; i++ {
		if err := st2.one(); err != nil {
			return res, fmt.Errorf("tpc: post-restart txn %d: %w", i, err)
		}
	}
	db2.Settle()
	if err := db2.Close(); err != nil {
		return res, fmt.Errorf("tpc: close: %w", err)
	}
	return res, nil
}

// corruptTail applies one corrupt-tail mode to the bytes of a WAL segment
// strictly past its synced offset — the durable prefix is what an fsync
// promised and stays untouched, exactly as on a real disk.
func corruptTail(r *rand.Rand, mode string, tail repro.WALTail) error {
	info, err := os.Stat(tail.Path)
	if err != nil {
		return err
	}
	if info.Size() <= tail.Synced {
		return nil // nothing unsynced to corrupt
	}
	if mode == TailMixed {
		mode = [...]string{TailIntact, TailTorn, TailBitFlip, TailZeroed}[r.IntN(4)]
	}
	if mode == TailIntact {
		return nil
	}
	buf, err := os.ReadFile(tail.Path)
	if err != nil {
		return err
	}
	unsynced := buf[tail.Synced:]
	switch mode {
	case TailTorn:
		buf = buf[:tail.Synced+int64(r.IntN(len(unsynced)+1))]
	case TailBitFlip:
		for i := 0; i < 3; i++ {
			unsynced[r.IntN(len(unsynced))] ^= 1 << r.IntN(8)
		}
	case TailZeroed:
		from := r.IntN(len(unsynced))
		to := from + 1 + r.IntN(len(unsynced)-from)
		for i := from; i < to; i++ {
			unsynced[i] = 0
		}
	default:
		return fmt.Errorf("tpc: unknown corrupt-tail mode %q", mode)
	}
	return os.WriteFile(tail.Path, buf, 0o644)
}
