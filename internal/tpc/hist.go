package tpc

import "repro/internal/obs"

// Hist is the shared wall-clock latency histogram of the serving stack
// (cmd/kvload, the kvserver tests and any driver that wants
// client-observed percentiles). The implementation was promoted into
// internal/obs — the deployment-wide metrics registry records into the
// same log-bucketed histogram — and this alias keeps existing drivers
// compiling unchanged.
type Hist = obs.Hist
