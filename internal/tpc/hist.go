package tpc

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a concurrency-safe log-bucketed latency histogram: the shared
// wall-clock latency instrument of the serving stack (cmd/kvload, the
// kvserver tests and any driver that wants client-observed percentiles).
// Values are recorded in nanoseconds into buckets of ~3% relative width
// (32 sub-buckets per power of two), so a p999 read out of the histogram
// is within a few percent of the exact order statistic while Record stays
// a single atomic add — cheap enough to call from thousands of client
// goroutines without coordinating.
//
// The zero value is ready to use. Record, Count, Sum, Percentile and
// Merge may be called concurrently; percentiles read a live histogram
// with no snapshot (fine for reporting after the workers have joined).
type Hist struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
}

// Bucketing: values below histSub land in linear buckets [0, histSub);
// larger values are normalized to a mantissa in [histSub, 2*histSub) and
// indexed by (exponent, mantissa).
const (
	histSubBits = 5
	histSub     = 1 << histSubBits             // 32 sub-buckets per power of two
	histBuckets = histSub * (64 - histSubBits) // covers the full uint64 range
)

// histIndex maps a nanosecond value to its bucket.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - histSubBits - 1 // v>>exp is in [histSub, 2*histSub)
	return exp*histSub + int(v>>exp)
}

// histValue returns the inclusive upper edge of bucket i — the value a
// percentile read reports for samples in that bucket.
func histValue(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := i/histSub - 1
	mant := uint64(i%histSub) + histSub
	return (mant+1)<<exp - 1
}

// Record adds one latency sample.
func (h *Hist) Record(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[histIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Sum returns the total of all recorded samples.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average recorded latency (0 with no samples).
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Percentile returns the latency at quantile q in [0, 1] — Percentile(0.5)
// is the median, Percentile(0.999) the p999 — with the ~3% relative
// resolution of the bucketing. Returns 0 with no samples.
func (h *Hist) Percentile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The rank of the q-th order statistic, 1-based.
	rank := uint64(q*float64(n-1)) + 1
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			return time.Duration(histValue(i))
		}
	}
	return time.Duration(histValue(histBuckets - 1))
}

// Merge folds other's samples into h.
func (h *Hist) Merge(other *Hist) {
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}
