package tpc_test

import (
	"testing"

	"repro"
	"repro/internal/tpc"
)

func newElastic(t *testing.T, shards int) *repro.ShardedCluster {
	t.Helper()
	sc, err := repro.NewSharded(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  8 << 20,
		Backups: 2,
		Safety:  repro.QuorumSafe,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRunRebalanceTimeline: the elastic driver grows 2 → 4 → 8 shards
// mid-workload, every growth step drains, the audit loses nothing, and
// the timeline covers all three phases.
func TestRunRebalanceTimeline(t *testing.T) {
	sc := newElastic(t, 2)
	res, err := tpc.RunRebalance(sc, func(dbSize int) (tpc.Workload, error) {
		return tpc.NewDebitCredit(dbSize)
	}, tpc.RebalanceOptions{
		TargetShards: []int{4, 8},
		Warmup:       50,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", sc.Shards())
	}
	if res.LostAckedWrites != 0 {
		t.Fatalf("LostAckedWrites = %d, want 0", res.LostAckedWrites)
	}
	if res.AuditWrites == 0 {
		t.Fatal("no audit writes acknowledged")
	}
	if res.RangesMoved <= 0 || res.BytesShipped <= 0 {
		t.Fatalf("no migration recorded: ranges %d bytes %d", res.RangesMoved, res.BytesShipped)
	}
	if res.PlacementEpoch != 1+uint64(res.RangesMoved) {
		t.Fatalf("PlacementEpoch = %d, want %d (1 + one per cut-over)", res.PlacementEpoch, 1+res.RangesMoved)
	}
	if res.BaseTPS <= 0 || res.FinalTPS <= 0 {
		t.Fatalf("rates not positive: base %f final %f", res.BaseTPS, res.FinalTPS)
	}
	if res.MinTPS <= 0 {
		t.Fatalf("MinTPS = %f, want > 0 (transactions must keep committing mid-migration)", res.MinTPS)
	}
	phases := map[string]int{}
	for _, w := range res.Windows {
		phases[w.Phase]++
	}
	for _, p := range []string{"baseline", "grow-4", "grow-8", "final"} {
		if phases[p] == 0 {
			t.Fatalf("no %q window in the timeline (got %v)", p, phases)
		}
	}
}

// TestRunRebalanceDeterministic: same seed, same simulated outcome.
func TestRunRebalanceDeterministic(t *testing.T) {
	run := func() tpc.RebalanceResult {
		res, err := tpc.RunRebalance(newElastic(t, 2), func(dbSize int) (tpc.Workload, error) {
			return tpc.NewDebitCredit(dbSize)
		}, tpc.RebalanceOptions{TargetShards: []int{4}, Warmup: 20, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BytesShipped != b.BytesShipped || a.RangesMoved != b.RangesMoved ||
		a.AuditWrites != b.AuditWrites || len(a.Windows) != len(b.Windows) {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, a.Windows[i], b.Windows[i])
		}
	}
}

// TestRunRebalanceNonElastic: a plain Cluster underneath refuses growth.
func TestRunRebalanceNonElastic(t *testing.T) {
	c, err := repro.New(repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tpc.RunRebalance(c, func(dbSize int) (tpc.Workload, error) {
		return tpc.NewDebitCredit(dbSize)
	}, tpc.RebalanceOptions{TargetShards: []int{2}})
	if err == nil {
		t.Fatal("expected ErrNotElastic from a Cluster")
	}
}
