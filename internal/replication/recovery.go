// Online repair: the non-blocking incremental state transfer that enrolls
// (or delta-resyncs) backup replicas while transactions keep committing.
//
// A join runs in three phases (see BackupState):
//
//  1. Syncing — a fuzzy chunked background copy of the primary's
//     recoverable regions crosses the Memory Channel while the joiner is
//     already attached to the live replication stream. Each page is copied
//     atomically at a commit boundary, and every page written after the
//     attach instant is (re)delivered by the live stream, so the copy
//     converges on the primary's current state without ever stopping the
//     world. Chunk bytes occupy the SAN like any other traffic (the
//     recovering cluster's availability dip) and are accounted under
//     mem.CatSync.
//  2. CatchingUp — active scheme only: the joiner drains the redo ring
//     from its copy-start sequence until the unapplied lag falls under the
//     cut-over threshold. Redo records are absolute physical writes, so
//     replaying them over the fuzzy copy is idempotent-forward.
//  3. Cut-over — a brief fence delivers the pointer tail, the last records
//     are applied, and the replica flips to InSync: from this instant it
//     counts toward quorum and acknowledges commits.
//
// A replica that was only briefly partitioned re-enrolls by delta: the
// dirty-page epochs snapshotted when it left the stream bound exactly the
// pages it missed, so the transfer ships the delta instead of the whole
// database — and when the gap is provably empty (a clean, commit-free
// partition), it rejoins with no transfer at all.
package replication

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/memchannel"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vista"
)

// ErrNotRepairable is returned by Repair/RepairAsync when the group has
// nothing to repair: every configured replica is enrolled and in sync.
var ErrNotRepairable = errors.New("replication: nothing to repair")

// Online-repair tuning defaults (overridable via Config).
const (
	// defaultRepairChunk bounds the bytes one pump ships, so the copier
	// interleaves with commits at a fine grain.
	defaultRepairChunk = 64 << 10
	// defaultRepairShare is the fraction of the SAN bandwidth the
	// background copier may consume while transactions run.
	defaultRepairShare = 0.5
	// cutoverLag is the unapplied redo-ring span under which a
	// catching-up joiner is close enough for the brief cut-over.
	cutoverLag = 4096
)

// RepairStatus reports the progress of the current (or most recent)
// online repair.
type RepairStatus struct {
	// Active is true while at least one join is in flight.
	Active bool
	// Joining counts the backups still mid-join.
	Joining int
	// Phase is "idle", "syncing" or "catching-up" (the earliest phase of
	// any in-flight join; "idle" when none).
	Phase string
	// BytesShipped is the state-transfer payload shipped so far.
	BytesShipped int64
	// BytesPlanned is the payload the transfer plan covers (delta pages
	// for a resumed replica, whole regions for a fresh one).
	BytesPlanned int64
	// Elapsed is the simulated time the repair has been running (its
	// final value once Active goes false).
	Elapsed sim.Dur
}

// repairRegion is one region's transfer cursor within a join.
type repairRegion struct {
	src, dst *mem.Region
	// epoch > 0 restricts the copy to pages dirtied after it (delta
	// resync); 0 copies the whole region.
	epoch    uint64
	page     int
	pageSize int
	done     bool
}

// repairJob is one backup's in-flight join.
type repairJob struct {
	b        *backup
	regions  []repairRegion
	planned  int64
	shipped  int64
	credit   float64 // byte budget bought by elapsed simulated time
	lastPump sim.Time
	buf      []byte
}

// chunkBytes returns the per-pump transfer bound.
func (g *Group) chunkBytes() int {
	if g.cfg.RepairChunk > 0 {
		return g.cfg.RepairChunk
	}
	return defaultRepairChunk
}

// repairRate returns the copier's bandwidth in bytes per picosecond: the
// configured share of the SAN's full-packet bandwidth.
func (g *Group) repairRate() float64 {
	share := g.cfg.RepairShare
	if share <= 0 || share > 1 {
		share = defaultRepairShare
	}
	pt := g.params.PacketTime(g.params.MaxPacket)
	if pt <= 0 {
		return 0
	}
	return share * float64(g.params.MaxPacket) / float64(pt)
}

// syncRegionsLocked returns the serving node's regions a joiner must hold:
// every write-through (replicated) region in the passive era, and the
// database copy alone in the active era (control is seeded from the ring
// sequence at takeover, and the engine's local structures are formatted
// fresh).
func (g *Group) syncRegionsLocked() []*mem.Region {
	var out []*mem.Region
	for _, r := range g.primary.Space.Regions() {
		if g.redo != nil {
			if r.Name == vista.RegionDB {
				out = append(out, r)
			}
			continue
		}
		if r.WriteThrough {
			out = append(out, r)
		}
	}
	return out
}

// RepairAsync starts the online repair of every deficiency the group has:
// resumed (Gated) backups are re-enrolled by delta, crashed backups are
// replaced by fresh nodes, and the group is filled back to its configured
// replication degree after a failover. The call returns immediately; the
// transfer advances in the background of the commit stream (every commit
// grants the copier the simulated time that has passed) and of Settle's
// idle periods. Progress is visible through RepairStatus; a joiner starts
// acknowledging — and counting toward quorum — at its cut-over.
//
// Returns ErrNotRepairable when every configured replica is enrolled and
// in sync, and ErrCrashed when the primary is down (call Failover first).
func (g *Group) RepairAsync() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.repairAsyncLocked()
}

func (g *Group) repairAsyncLocked() error {
	if g.crashed {
		return ErrCrashed
	}
	if g.autop != nil && g.autop.partitioned {
		// A partitioned primary cannot source a transfer: nothing it ships
		// reaches the far side of the cut.
		return ErrPartitioned
	}
	if g.cfg.Mode == Standalone {
		return ErrNotRepairable
	}
	started := false
	// Re-enroll resumed backups: by delta when their gating snapshot
	// bounds the gap, with no transfer at all when the gap is empty.
	for _, b := range g.backups {
		if b.state != StateGated {
			continue
		}
		if g.gapFreeLocked(b) {
			b.setState(StateInSync)
			b.fuzzy = false
			b.gateEpochs = nil
			g.durActivateBackupLocked(b)
		} else {
			g.startJoinLocked(b, g.deltaEpochsLocked(b))
		}
		started = true
	}
	// Drop crashed backups — detaching their receive targets so the live
	// mappings neither pin nor iterate dead regions — and enroll fresh
	// nodes up to the configured degree (the post-failover path, and
	// mid-era backup replacement).
	live := make([]*backup, 0, g.cfg.Backups)
	for _, b := range g.backups {
		if b.alive() {
			live = append(live, b)
			continue
		}
		if g.primary.MC != nil {
			g.primary.MC.RemoveTargets(&b.off)
		}
	}
	g.backups = live
	// A primary that lost every backup has no Memory Channel attachment
	// left; rebuild the SAN wiring before fresh nodes can attach to it.
	wired := g.primary.MC != nil
	var fresh []*backup
	for len(g.backups) < g.cfg.Backups {
		if g.autop != nil && g.autop.spares <= 0 {
			// The spare pool is dry: the group keeps serving degraded
			// until an operator supplies hardware.
			break
		}
		b, err := g.enrollFreshLocked(len(g.backups), wired)
		if err != nil {
			return err
		}
		if g.autop != nil {
			g.autop.spares--
		}
		g.backups = append(g.backups, b)
		fresh = append(fresh, b)
		started = true
	}
	if !wired && len(fresh) > 0 {
		g.link = sim.NewLink(g.params)
		g.primary.MC = memchannel.NewNode(g.params, g.primary.Clock, g.link)
		g.primary.Acc.IO = g.primary.MC
		if err := g.mapFanout(); err != nil {
			return err
		}
	}
	for _, b := range fresh {
		g.startJoinLocked(b, nil)
	}
	if started {
		// Membership changed: restore the deterministic per-index ack
		// stagger, exactly as a full rewire would assign it, bump the
		// membership epoch (fencing acks from the old membership), and
		// re-anchor the failure detector's watch set.
		for i, b := range g.backups {
			b.ackLag = ackStagger(g.params, i)
		}
		g.bumpEpochLocked()
		if g.autop != nil {
			g.autop.rewatch(g, g.primary.Clock.Now())
		}
	}
	if !started {
		if len(g.jobs) > 0 {
			return nil // an earlier RepairAsync is still healing the group
		}
		return ErrNotRepairable
	}
	if !g.repair.Active {
		g.repair = RepairStatus{Active: len(g.jobs) > 0}
		g.repairStarted = g.primary.Clock.Now()
	}
	for _, j := range g.jobs {
		g.repair.BytesPlanned += j.planned
		j.planned = 0 // folded into the aggregate exactly once
	}
	g.repair.Joining = len(g.jobs)
	return nil
}

// Repair restores the group to its configured replication degree and
// drives the transfer to completion before returning — the synchronous
// face of RepairAsync, used by demos and orchestration that want "repaired"
// as a postcondition. The transfer still runs through the incremental
// engine (chunk by chunk, releasing the group between chunks, bytes
// accounted), so concurrent transactions keep committing while it runs.
// It returns the (rewired) group itself.
func (g *Group) Repair() (*Group, error) {
	g.mu.Lock()
	if err := g.repairAsyncLocked(); err != nil {
		g.mu.Unlock()
		return nil, err
	}
	g.mu.Unlock()
	for {
		g.mu.Lock()
		if g.crashed {
			g.mu.Unlock()
			return nil, ErrCrashed
		}
		if len(g.jobs) == 0 {
			// Enrollment is not part of any measured interval, exactly
			// like the initial Load transfer.
			g.resetMeasurementLocked()
			g.mu.Unlock()
			return g, nil
		}
		g.pumpRepairLocked(true, true)
		g.mu.Unlock()
	}
}

// RepairStatus returns the progress of the current or most recent repair.
func (g *Group) RepairStatus() RepairStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.repair
	if st.Active {
		st.Elapsed = sim.Dur(g.primary.Clock.Now() - g.repairStarted)
		st.Phase = "syncing"
		allCatching := true
		for _, j := range g.jobs {
			if j.b.state != StateCatchingUp {
				allCatching = false
			}
		}
		if allCatching && len(g.jobs) > 0 {
			st.Phase = "catching-up"
		}
	} else {
		st.Phase = "idle"
	}
	return st
}

// deltaEpochsLocked returns the dirty epochs bounding backup b's gap, or
// nil when only a full transfer is safe (a fuzzy copy, a snapshot from an
// earlier era, or no snapshot at all).
func (g *Group) deltaEpochsLocked(b *backup) map[string]uint64 {
	if b.fuzzy || b.gateEpochs == nil || b.gateGen != g.generation {
		return nil
	}
	return b.gateEpochs
}

// gapFreeLocked reports whether backup b's stream gap is provably empty:
// it left cleanly (nothing coalescing toward it), nothing has committed
// since, no tracked page has been dirtied since, and the era is unchanged.
// Such a replica rejoins by ring catch-up alone — zero transfer bytes.
func (g *Group) gapFreeLocked(b *backup) bool {
	if b.fuzzy || !b.cleanGate || b.gateEpochs == nil || b.gateGen != g.generation {
		return false
	}
	if b.gateCommitted != g.store.Committed() {
		return false
	}
	for _, r := range g.syncRegionsLocked() {
		e, ok := b.gateEpochs[r.Name]
		if !ok || r.Dirty == nil {
			return false
		}
		if r.Dirty.BytesSince(e) != 0 {
			return false
		}
	}
	return true
}

// startJoinLocked attaches backup b to the live stream and opens its
// transfer plan: delta pages when epochs bound the gap, whole regions
// otherwise. The copy is fuzzy from here on, so the replica is not
// promotion-eligible until cut-over.
func (g *Group) startJoinLocked(b *backup, epochs map[string]uint64) {
	now := g.primary.Clock.Now()
	j := &repairJob{b: b, lastPump: now}
	for _, src := range g.syncRegionsLocked() {
		dst := b.node.Space.ByName(src.Name)
		if dst == nil || dst.Size() < src.Size() {
			continue
		}
		rr := repairRegion{src: src, dst: dst, pageSize: 4096}
		if src.Dirty != nil {
			rr.pageSize = src.Dirty.PageSize()
		}
		if epochs != nil {
			e, ok := epochs[src.Name]
			if ok && src.Dirty != nil {
				rr.epoch = e
				j.planned += src.Dirty.BytesSince(e)
				j.regions = append(j.regions, rr)
				continue
			}
		}
		j.planned += int64(src.Size())
		j.regions = append(j.regions, rr)
	}
	b.fuzzy = true
	b.setState(StateSyncing)
	if g.redo != nil {
		// The joiner consumes the redo ring from this instant: records
		// before the attach are covered by the state transfer, records
		// after it arrive in its (now open) ring copy.
		b.appliedTotal = g.redo.prodTotal
		b.appliedTxns = g.store.Committed()
	}
	b.job = j
	g.jobs = append(g.jobs, j)
	g.emit(obs.EventRepairStart, g.nodeIndexLocked(b.node.Name), uint64(j.planned), 0)
}

// abortJobLocked cancels backup b's in-flight join (pause or crash landed
// mid-transfer). The copy stays fuzzy: only a fresh transfer can make the
// replica consistent again.
func (g *Group) abortJobLocked(b *backup) {
	if b.job == nil {
		return
	}
	for i, j := range g.jobs {
		if j == b.job {
			g.jobs = append(g.jobs[:i], g.jobs[i+1:]...)
			break
		}
	}
	b.job = nil
	g.emit(obs.EventRepairAbort, g.nodeIndexLocked(b.node.Name), 0, 0)
	g.finishRepairIfIdleLocked()
}

// enrollFreshLocked builds a brand-new backup node with the group's region
// layout. With wire set it attaches the node to every live replication
// window on the spot — without touching the serving node's Memory Channel
// state; the caller wires the whole fanout afresh otherwise (the primary
// had no attachment left).
func (g *Group) enrollFreshLocked(i int, wire bool) (*backup, error) {
	specs, err := vista.Layout(g.store.Config())
	if err != nil {
		return nil, err
	}
	b := &backup{
		node:   NewNode(backupName(g.generation, i), g.params, nil),
		ackLag: ackStagger(g.params, i),
	}
	if g.dur != nil {
		// A fresh machine brings a fresh disk: allocate its slot now so
		// the cut-over checkpoint has a directory to land in.
		b.walIdx = g.dur.newSlot()
	}
	b.setState(StateGated) // gated until its join opens the stream
	if _, err := vista.PlaceRegions(b.node.Space, g.backupSpecs(specs), regionBase); err != nil {
		return nil, err
	}
	if g.redo != nil {
		b.ring = sim.NewRing(g.params, g.redo.ringSize)
		b.bRing = mem.NewRegion(regionRedoRing, g.redo.ringIO.Base, mem.NewDense(g.redo.ringSize))
		b.bCtl = mem.NewRegion(regionRingCtl, g.redo.ctlIO.Base, mem.NewDense(64))
		for _, r := range []*mem.Region{b.bRing, b.bCtl} {
			if err := b.node.Space.Add(r); err != nil {
				return nil, err
			}
		}
	}
	if wire {
		for _, r := range g.primary.Space.Regions() {
			if !r.WriteThrough && !r.IOOnly {
				continue
			}
			d := b.node.Space.ByName(r.Name)
			if d == nil {
				return nil, fmt.Errorf("replication: joiner %q lacks region %q", b.node.Name, r.Name)
			}
			if err := g.primary.MC.AddTarget(r.Base, memchannel.Target{Dst: d, Down: &b.off}); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// pumpRepairLocked advances every in-flight join. With sync false (the
// background mode), each job's transfer budget is the simulated time that
// passed since its last pump, bought at the configured share of the SAN
// bandwidth; with sync true one chunk ships unconditionally per call (the
// synchronous Repair loop). charged bulk bytes occupy the link and are
// accounted under mem.CatSync; the failover re-sync runs uncharged, like
// the initial Load transfer.
func (g *Group) pumpRepairLocked(sync, charged bool) {
	if len(g.jobs) == 0 || g.crashed {
		// A crashed primary's regions may hold a torn mid-transaction
		// state: nothing ships until failover re-establishes a serving
		// source (which drops these jobs).
		return
	}
	now := g.primary.Clock.Now()
	for i := 0; i < len(g.jobs); {
		j := g.jobs[i]
		g.pumpJobLocked(j, now, sync, charged)
		if j.b.job != j { // cut over (slot cleared): drop the job
			g.jobs = append(g.jobs[:i], g.jobs[i+1:]...)
			continue
		}
		i++
	}
	g.finishRepairIfIdleLocked()
}

// pumpJobLocked advances one join: chunk copies while Syncing, ring drain
// and cut-over once CatchingUp.
func (g *Group) pumpJobLocked(j *repairJob, now sim.Time, sync, charged bool) {
	b := j.b
	if b.state == StateSyncing {
		allow := int64(g.chunkBytes())
		if !sync {
			if dt := now - j.lastPump; dt > 0 {
				j.credit += float64(dt) * g.repairRate()
			}
			if j.credit < float64(allow) {
				allow = int64(j.credit)
			}
		}
		j.lastPump = now
		shipped := j.copyChunk(allow)
		if shipped > 0 {
			j.credit -= float64(shipped)
			j.shipped += shipped
			g.repair.BytesShipped += shipped
			if charged && g.primary.MC != nil {
				g.primary.MC.EmitBulk(now, int(shipped), mem.CatSync)
			}
		}
		if j.copyDone() {
			if g.redo != nil {
				b.setState(StateCatchingUp)
				g.emit(obs.EventRepairCatchup, g.nodeIndexLocked(b.node.Name), uint64(j.shipped), 0)
			} else {
				// Passive cut-over: the live stream has covered every
				// page written since the attach, so the copy already
				// equals the primary modulo in-flight write buffers —
				// exactly a normal backup's position.
				g.cutOverLocked(b)
			}
		}
	}
	if b.state == StateCatchingUp {
		c := g.redo
		c.applyDelivered(b)
		// Cut-over requires the group-commit batch to be closed: records
		// in an open batch were produced before the joiner acked, so they
		// were never reserved on its ring — enrolling now would let the
		// eventual flush publish unreserved bytes to it. With group commit
		// off the batch is always closed and this is the plain lag check.
		if c.prodTotal == c.pubTotal && c.prodTotal-b.appliedTotal <= cutoverLag {
			// Brief cut-over: drain the pointer tail through the write
			// buffers, apply the last records, and enroll.
			g.primary.Acc.Fence()
			c.applyDelivered(b)
			g.cutOverLocked(b)
		}
	}
}

// cutOverLocked completes backup b's join: from this instant it is a full
// member — it receives, acknowledges, counts toward quorum, and is
// promotion-eligible again.
func (g *Group) cutOverLocked(b *backup) {
	b.job = nil
	b.fuzzy = false
	b.gateEpochs = nil
	b.epoch = g.epoch // full member of the current era from this instant
	b.setState(StateInSync)
	g.durActivateBackupLocked(b)
	g.emit(obs.EventRepairCutover, g.nodeIndexLocked(b.node.Name), uint64(g.epoch), 0)
}

// finishRepairIfIdleLocked closes the repair summary once the last join
// has cut over.
func (g *Group) finishRepairIfIdleLocked() {
	if !g.repair.Active {
		return
	}
	g.repair.Joining = len(g.jobs)
	if len(g.jobs) == 0 {
		g.repair.Active = false
		g.repair.Elapsed = sim.Dur(g.primary.Clock.Now() - g.repairStarted)
		if g.autop != nil && g.restoredLocked() {
			// Genuinely back at full redundancy — not merely out of jobs
			// (an aborted join also empties the list): stamp the open
			// fault events' MTTR.
			g.autop.closeOpen(g.primary.Clock.Now())
		}
	}
}

// restoredLocked reports whether the group is back at full redundancy:
// every configured replica enrolled and acknowledging. This — not an empty
// job list — is what closes a fault event's MTTR: a join aborted by the
// next fault leaves the group degraded with no jobs in flight.
func (g *Group) restoredLocked() bool {
	if g.crashed || len(g.backups) != g.cfg.Backups {
		return false
	}
	for _, b := range g.backups {
		if b.state != StateInSync {
			return false
		}
	}
	return true
}

// copyChunk ships up to allow bytes of the job's remaining pages (whole
// pages, copied atomically at the current commit boundary) and returns the
// bytes shipped.
func (j *repairJob) copyChunk(allow int64) int64 {
	if allow <= 0 {
		return 0
	}
	var shipped int64
	for i := range j.regions {
		rr := &j.regions[i]
		for !rr.done && shipped < allow {
			if rr.epoch > 0 {
				next := rr.src.Dirty.NextDirty(rr.page, rr.epoch)
				if next < 0 {
					rr.done = true
					break
				}
				rr.page = next
			}
			off := rr.page * rr.pageSize
			if off >= rr.src.Size() {
				rr.done = true
				break
			}
			n := rr.pageSize
			if off+n > rr.src.Size() {
				n = rr.src.Size() - off
			}
			if cap(j.buf) < n {
				j.buf = make([]byte, n)
			}
			buf := j.buf[:n]
			rr.src.ReadRaw(off, buf)
			rr.dst.WriteRaw(off, buf)
			rr.page++
			shipped += int64(n)
		}
		if !rr.done && rr.epoch == 0 && rr.page*rr.pageSize >= rr.src.Size() {
			rr.done = true
		}
		if shipped >= allow {
			break
		}
	}
	return shipped
}

// copyDone reports whether every region's transfer has completed.
func (j *repairJob) copyDone() bool {
	for i := range j.regions {
		rr := &j.regions[i]
		if !rr.done {
			if rr.epoch > 0 {
				if rr.src.Dirty.NextDirty(rr.page, rr.epoch) >= 0 {
					return false
				}
				rr.done = true
			} else if rr.page*rr.pageSize < rr.src.Size() {
				return false
			} else {
				rr.done = true
			}
		}
	}
	return true
}

// resyncSurvivorLocked brings a failover survivor behind the new primary
// with a full transfer driven to completion on the spot. Takeover happens
// with the cluster already down, so there is no stream to stay available
// for; the transfer is raw and uncharged, like Load's initial copy, and
// the survivor emerges InSync.
func (g *Group) resyncSurvivorLocked(b *backup) {
	j := &repairJob{b: b}
	for _, src := range g.syncRegionsLocked() {
		dst := b.node.Space.ByName(src.Name)
		if dst == nil || dst.Size() < src.Size() {
			// Regions with no counterpart on this backup (a promoted
			// active backup's old redo ring) are not replicated.
			continue
		}
		ps := 4096
		if src.Dirty != nil {
			ps = src.Dirty.PageSize()
		}
		j.regions = append(j.regions, repairRegion{src: src, dst: dst, pageSize: ps})
	}
	for !j.copyDone() {
		j.copyChunk(int64(g.chunkBytes()))
	}
	b.job = nil
	b.fuzzy = false
	b.gateEpochs = nil
	b.setState(StateInSync)
}
