package replication

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vista"
)

// Mode selects the backup architecture.
type Mode int

// Backup modes.
const (
	// Standalone runs the server with no backup (paper Table 3).
	Standalone Mode = iota + 1
	// Passive replicates the engine's own structures by write-through
	// doubling; the backup CPU idles (paper Section 5).
	Passive
	// Active ships a redo log through a circular buffer that the backup
	// CPU applies to its database copy (paper Section 6). The primary
	// runs the best local scheme, Version 3, for its own recoverability.
	Active
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case Standalone:
		return "Standalone"
	case Passive:
		return "Passive"
	case Active:
		return "Active"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes a replicated (or standalone) deployment.
type Config struct {
	Mode  Mode
	Store vista.Config
	// Params defaults to sim.Default().
	Params *sim.Params
	// Link, when set, is a shared SAN link (the SMP experiments attach
	// several pairs to one link via trace capture and replay). When nil,
	// a replicated pair gets a private link.
	Link *sim.Link
	// SparseBackup backs the backup's large regions with page-on-demand
	// storage (Table 8's 1 GB database without 3x host memory).
	SparseBackup bool
	// TwoSafe upgrades the active backup's commit to 2-safe (paper
	// Section 2.1 discusses the choice): Commit returns only after the
	// redo record has crossed the SAN, been applied by the backup CPU,
	// and acknowledged — closing the lost-transaction window at the
	// price of a round trip per commit. Active mode only.
	TwoSafe bool
}

// TxHandle is the transactional surface shared by all modes; vista.Tx
// satisfies it, and the active mode wraps it with redo capture.
type TxHandle interface {
	SetRange(off, n int) error
	Write(off int, src []byte) error
	Read(off int, dst []byte) error
	Commit() error
	Abort() error
}

var _ TxHandle = (*vista.Tx)(nil)

// Pair is one deployment: a primary store plus (outside Standalone) a
// backup node receiving its replicated state.
type Pair struct {
	cfg    Config
	params *sim.Params
	link   *sim.Link

	primary *Node
	backup  *Node
	store   *vista.Store

	redo *redoChannel // active mode only

	crashed      bool
	failedOver   bool
	takeover     *vista.Store
	measureStart sim.Time
}

// Pair state errors.
var (
	ErrCrashed            = errors.New("replication: primary has crashed")
	ErrNotCrashed         = errors.New("replication: primary still alive")
	ErrNoBackup           = errors.New("replication: deployment has no backup")
	ErrFailedOver         = errors.New("replication: already failed over")
	ErrActiveNeedV3       = errors.New("replication: active backup requires the Version 3 local scheme")
	ErrTwoSafeNeedsActive = errors.New("replication: 2-safe commit requires the active backup")
)

// NewPair constructs and wires a deployment.
func NewPair(cfg Config) (*Pair, error) {
	params := cfg.Params
	if params == nil {
		def := sim.Default()
		params = &def
	}
	if cfg.Mode == Active && cfg.Store.Version != vista.V3InlineLog {
		return nil, ErrActiveNeedV3
	}
	if cfg.TwoSafe && cfg.Mode != Active {
		return nil, ErrTwoSafeNeedsActive
	}

	p := &Pair{cfg: cfg, params: params}

	specs, err := vista.Layout(cfg.Store)
	if err != nil {
		return nil, err
	}

	switch cfg.Mode {
	case Standalone:
		p.primary = NewNode("primary", params, nil)
		if _, err := vista.PlaceRegions(p.primary.Space, specs, regionBase); err != nil {
			return nil, err
		}
	case Passive:
		if err := p.buildPassive(specs); err != nil {
			return nil, err
		}
	case Active:
		if err := p.buildActive(specs); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("replication: invalid mode %d", int(cfg.Mode))
	}

	store, err := vista.Open(cfg.Store, p.primary.Acc, p.primary.Rio)
	if err != nil {
		return nil, err
	}
	p.store = store
	// Initialization traffic (heap formatting and the like) is not part
	// of any measured interval.
	p.ResetMeasurement()
	return p, nil
}

// regionBase leaves the zero page unmapped so a zero address is always a
// wild pointer.
const regionBase = 8 << 20

func (p *Pair) buildPassive(specs []vista.RegionSpec) error {
	p.link = p.cfg.Link
	if p.link == nil {
		p.link = sim.NewLink(p.params)
	}
	p.primary = NewNode("primary", p.params, p.link)
	p.backup = NewNode("backup", p.params, nil)

	if _, err := vista.PlaceRegions(p.primary.Space, specs, regionBase); err != nil {
		return err
	}
	bspecs := p.backupSpecs(specs)
	if _, err := vista.PlaceRegions(p.backup.Space, bspecs, regionBase); err != nil {
		return err
	}
	return p.primary.MapIdentity(p.backup.Space)
}

// backupSpecs optionally converts big regions to sparse backing.
func (p *Pair) backupSpecs(specs []vista.RegionSpec) []vista.RegionSpec {
	out := make([]vista.RegionSpec, len(specs))
	copy(out, specs)
	if p.cfg.SparseBackup {
		for i := range out {
			if out[i].Size >= 1<<20 {
				out[i].Sparse = true
			}
		}
	}
	return out
}

// Store returns the primary transaction server (nil after failover).
func (p *Pair) Store() *vista.Store { return p.store }

// Primary and Backup expose the nodes for instrumentation.
func (p *Pair) Primary() *Node { return p.primary }

// Backup returns the backup node, or nil in Standalone mode.
func (p *Pair) Backup() *Node { return p.backup }

// Mode returns the deployment mode.
func (p *Pair) Mode() Mode { return p.cfg.Mode }

// Params returns the simulation parameters in effect.
func (p *Pair) Params() *sim.Params { return p.params }

// Link returns the SAN link, or nil in Standalone mode.
func (p *Pair) Link() *sim.Link { return p.link }

// Begin opens a transaction on the primary. In Active mode the returned
// handle additionally captures the transaction's writes as redo records.
func (p *Pair) Begin() (TxHandle, error) {
	if p.crashed {
		return nil, ErrCrashed
	}
	tx, err := p.store.Begin()
	if err != nil {
		return nil, err
	}
	if p.cfg.Mode == Active {
		return p.redo.wrap(tx), nil
	}
	return tx, nil
}

// Load installs initial database content on the primary and, when a backup
// exists, synchronizes the backup's copies raw (the initial full-database
// transfer that precedes failure-free operation).
func (p *Pair) Load(off int, data []byte) error {
	if err := p.store.Load(off, data); err != nil {
		return err
	}
	if p.backup == nil {
		return nil
	}
	for _, name := range []string{vista.RegionDB, vista.RegionMirror} {
		src := p.primary.Space.ByName(name)
		dst := p.backup.Space.ByName(name)
		if src == nil || dst == nil {
			continue
		}
		dst.WriteRaw(off, readRaw(src, off, len(data)))
	}
	return nil
}

// ResetMeasurement starts a measured interval: statistics are zeroed and
// the interval origin is pinned to the current simulated time. Simulated
// time itself flows on — cache warmth, link queues and ring timelines keep
// their state, exactly like starting a stopwatch mid-run.
func (p *Pair) ResetMeasurement() {
	nodes := []*Node{p.primary, p.backup}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		n.Cache.ResetStats()
		if n.MC != nil {
			n.MC.ResetStats()
		}
	}
	if p.link != nil {
		p.link.ResetStats()
	}
	p.measureStart = p.primary.Clock.Now()
}

// Elapsed returns the primary's simulated time since the last
// ResetMeasurement.
func (p *Pair) Elapsed() sim.Time {
	return p.primary.Clock.Now() - p.measureStart
}

// NetBytes returns SAN payload bytes by category (paper Tables 2, 5, 7).
func (p *Pair) NetBytes() map[mem.Category]int64 {
	if p.primary.MC == nil {
		return map[mem.Category]int64{}
	}
	return p.primary.MC.CategoryBytes()
}

// Settle lets the deployment go idle for d of simulated time: pending
// write buffers self-drain, so everything committed before Settle is on
// the backup afterwards. Demos use it to separate "crash right now" (the
// 1-safe window applies) from "crash after a quiet moment" (no loss).
func (p *Pair) Settle(d sim.Dur) {
	if p.primary.MC != nil && !p.crashed {
		p.primary.MC.Idle(d)
	}
	if p.redo != nil {
		// The backup's applier catches up on everything delivered
		// during the quiet period.
		p.redo.applyDelivered()
	}
}

// Crash kills the primary: stores still coalescing in its write buffers
// are lost (the 1-safe window); everything already emitted is delivered.
func (p *Pair) Crash() error {
	if p.crashed {
		return ErrCrashed
	}
	p.crashed = true
	p.store.MarkCrashed()
	if p.primary.MC != nil {
		p.primary.MC.Crash()
	}
	return nil
}

// Failover performs takeover on the backup and returns the recovered
// store, ready to serve transactions standalone. The backup starts cold:
// its cache is flushed before recovery so takeover time is charged fairly.
func (p *Pair) Failover() (*vista.Store, error) {
	switch {
	case p.backup == nil:
		return nil, ErrNoBackup
	case !p.crashed:
		return nil, ErrNotCrashed
	case p.failedOver:
		return nil, ErrFailedOver
	}
	p.failedOver = true
	p.backup.Cache.Flush()

	var (
		st  *vista.Store
		err error
	)
	if p.cfg.Mode == Active {
		st, err = p.redo.takeover(p)
	} else {
		st, err = vista.Recover(p.cfg.Store, p.backup.Acc, p.backup.Rio, vista.RecoverBackup)
	}
	if err != nil {
		return nil, err
	}
	p.takeover = st
	return st, nil
}

// Takeover returns the post-failover store, or nil.
func (p *Pair) Takeover() *vista.Store { return p.takeover }

// BackupRead serves a read-only query from the active backup's database
// copy — the paper's Section 1 asks "whether the backup can or should be
// used to execute transactions itself"; with the active scheme its copy is
// transaction-consistent at every applied commit, so read-only work can be
// offloaded. The read observes the applied prefix (which trails the
// primary by the 1-safe window) and charges the backup's own CPU.
func (p *Pair) BackupRead(off int, dst []byte) error {
	if p.cfg.Mode != Active {
		return fmt.Errorf("replication: backup reads require the active backup (mode %s)", p.cfg.Mode)
	}
	db := p.backup.Space.ByName(vista.RegionDB)
	if db == nil || off < 0 || off+len(dst) > db.Size() {
		return vista.ErrBounds
	}
	p.redo.applyDelivered() // serve the freshest applied prefix
	p.backup.Acc.Read(db.Base+uint64(off), dst)
	return nil
}

// BackupApplied returns how many transactions the active backup has
// applied (trails the primary's commit count by the in-flight window).
func (p *Pair) BackupApplied() uint64 {
	if p.redo == nil {
		return 0
	}
	p.redo.applyDelivered()
	return p.redo.appliedTxns
}

// SetTrace attaches a trace recorder to the primary's SAN interactions for
// the SMP capture runs; nil detaches. Redo-ring reserve and publish events
// are recorded through the same node, so one recorder sees everything.
func (p *Pair) SetTrace(t *sim.Trace) {
	if p.primary.MC != nil {
		p.primary.MC.SetTrace(t)
	}
}

func readRaw(r *mem.Region, off, n int) []byte {
	buf := make([]byte, n)
	r.ReadRaw(off, buf)
	return buf
}
