package replication

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vista"
)

// Mode selects the backup architecture.
type Mode int

// Backup modes.
const (
	// Standalone runs the server with no backup (paper Table 3).
	Standalone Mode = iota + 1
	// Passive replicates the engine's own structures by write-through
	// doubling; the backup CPUs idle (paper Section 5).
	Passive
	// Active ships a redo log through a circular buffer that each backup
	// CPU applies to its database copy (paper Section 6). The primary
	// runs the best local scheme, Version 3, for its own recoverability.
	Active
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case Standalone:
		return "Standalone"
	case Passive:
		return "Passive"
	case Active:
		return "Active"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Safety selects the commit discipline of a replicated deployment (the
// paper's Section 2.1 discusses 1-safe versus 2-safe; quorum commit is the
// natural middle ground once a group has more than one backup).
type Safety int

// Safety levels.
const (
	// OneSafe returns from Commit at the local commit point; a crash in
	// the next few microseconds may lose the transaction (paper default).
	OneSafe Safety = iota
	// TwoSafe holds Commit until every live backup has applied and
	// acknowledged the transaction: the loss window closes at the price
	// of a SAN round trip to the slowest backup per commit.
	TwoSafe
	// QuorumSafe holds Commit until ceil((K+1)/2) of the K backups have
	// acknowledged: an acked transaction survives the simultaneous loss
	// of the primary and any minority of the backups, and the commit
	// latency is set by the median backup rather than the slowest.
	QuorumSafe
)

// String names the safety level.
func (s Safety) String() string {
	switch s {
	case OneSafe:
		return "1-safe"
	case TwoSafe:
		return "2-safe"
	case QuorumSafe:
		return "quorum"
	default:
		return fmt.Sprintf("Safety(%d)", int(s))
	}
}

// Valid reports whether s is a defined safety level.
func (s Safety) Valid() bool { return s >= OneSafe && s <= QuorumSafe }

// QuorumAcks returns the number of backup acknowledgements QuorumSafe
// requires in a group of k backups: ceil((k+1)/2), capped at k. The
// primary itself is the remaining member of the majority.
func QuorumAcks(k int) int {
	q := (k + 2) / 2
	if q > k {
		q = k
	}
	return q
}

// Config describes a replicated (or standalone) deployment.
type Config struct {
	Mode  Mode
	Store vista.Config
	// Params defaults to sim.Default().
	Params *sim.Params
	// Link, when set, is a shared SAN link (the SMP experiments attach
	// several groups to one link via trace capture and replay). When nil,
	// a replicated group gets a private link.
	Link *sim.Link
	// SparseBackup backs the backups' large regions with page-on-demand
	// storage (Table 8's 1 GB database without 3x host memory).
	SparseBackup bool
	// Backups is the replication degree K: the number of backup nodes fed
	// by the primary. Zero means one backup for the replicated modes
	// (the paper's pair); Standalone ignores it.
	Backups int
	// Safety selects the commit discipline (default OneSafe). Anything
	// stronger than OneSafe requires a replicated mode.
	Safety Safety
	// TwoSafe is the legacy toggle for Safety == TwoSafe; setting it with
	// Safety left at OneSafe upgrades the safety level.
	TwoSafe bool
	// CommitBatch enables group commit: up to CommitBatch transactions
	// committing back to back coalesce into one producer-pointer publish
	// and (under TwoSafe/QuorumSafe) one acknowledgement wait. 0 or 1
	// disables batching, reproducing the per-commit pipeline exactly.
	// Commits sitting in an unflushed batch at a primary crash are lost —
	// the batched generalization of the paper's 1-safe window.
	CommitBatch int
	// CommitWindow bounds, in simulated time, how long a commit may wait
	// in an open batch: a commit landing CommitWindow or more after the
	// batch opened seals and flushes it (itself included). Setting only
	// CommitWindow (CommitBatch 0) gives pure window-based batching;
	// setting neither disables group commit. Settle and Flush always ship
	// the open batch.
	CommitWindow sim.Dur
	// RepairChunk bounds the bytes one background-repair pump ships, so
	// the state transfer interleaves with commits at a fine grain
	// (default 64 KB).
	RepairChunk int
	// RepairShare is the fraction of the SAN bandwidth the online
	// repair's background copier may consume while transactions run
	// (default 0.5; must lie in (0, 1]).
	RepairShare float64
	// SettleGrace overrides the derived quiesce duration QuiesceGrace
	// computes from the platform constants (drain age, posted window,
	// link latency). Zero derives.
	SettleGrace sim.Dur
	// Autopilot switches on the unattended failure-detection/response
	// subsystem (heartbeats, lease-guarded auto-failover, self-healing
	// repair). The zero value disables it, leaving every fault to the
	// manual Crash/Failover/Repair calls exactly as before.
	Autopilot AutopilotConfig
	// Durability switches on the per-replica disk tier (redo WAL +
	// snapshots + cold-restart recovery; see durability.go). The zero
	// value disables it: no files are written and the simulation's
	// metrics are bit-for-bit those of a purely memory-replicated group.
	Durability DurabilityConfig
	// Obs attaches a metrics registry and event ring (see internal/obs
	// and obs.go): commit/flush latency histograms, read-routing
	// counters, per-backup lag gauges, and failover/repair/WAL traces.
	// Nil (the default) disables the whole layer: no instrument is
	// registered, no event is emitted, and the simulated metrics are
	// bit-for-bit those of an unobserved group.
	Obs *obs.Registry
}

// TxHandle is the transactional surface shared by all modes; vista.Tx
// satisfies it, and the replicated modes wrap it with redo capture and/or
// the configured commit-safety wait.
type TxHandle interface {
	SetRange(off, n int) error
	Write(off int, src []byte) error
	Read(off int, dst []byte) error
	Commit() error
	Abort() error
}

var _ TxHandle = (*vista.Tx)(nil)

// Group state errors.
var (
	// ErrCrashed is aliased as the facade's public crashed sentinel, so
	// its message speaks the facade's language.
	ErrCrashed             = errors.New("repro: primary crashed; call Failover")
	ErrNotCrashed          = errors.New("replication: primary still alive")
	ErrNoBackup            = errors.New("replication: no surviving backup")
	ErrActiveNeedV3        = errors.New("replication: active backup requires the Version 3 local scheme")
	ErrSafetyNeedsBackup   = errors.New("replication: 2-safe and quorum commit require a replicated mode")
	ErrSafetyUnavailable   = errors.New("replication: not enough reachable backups for the configured safety level")
	ErrNoSuchBackup        = errors.New("replication: no such backup")
	ErrAutopilotNeedsPeers = errors.New("replication: autopilot requires a replicated mode")
	ErrLeaseExpired        = errors.New("replication: primary lease expired; deposed primary refuses new commits")
	ErrPartitioned         = errors.New("replication: primary is partitioned from the SAN")
)

// Pair is the historical name for a Group: the paper evaluates exactly one
// primary and one backup, and every single-backup call site keeps working
// through this alias.
type Pair = Group

// NewPair constructs a deployment with the default replication degree
// (one backup outside Standalone) — the paper's configuration.
func NewPair(cfg Config) (*Pair, error) { return NewGroup(cfg) }

// regionBase leaves the zero page unmapped so a zero address is always a
// wild pointer.
const regionBase = 8 << 20
