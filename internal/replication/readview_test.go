package replication_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/vista"
)

// TestReadAtServesInSyncBackups: every fully enrolled backup of an active
// group serves ReadAt with the primary's committed data and reports the
// applied sequence it read at.
func TestReadAtServesInSyncBackups(t *testing.T) {
	g := newGroup(t, replication.Active, 2, replication.QuorumSafe)
	for i := 0; i < 5; i++ {
		commitSlot(t, g, i, byte(0xA0+i))
	}
	g.Settle(10 * sim.Microsecond)

	dst := make([]byte, 64)
	for r := 0; r < 2; r++ {
		seq, err := g.ReadAt(r, 3*64, dst)
		if err != nil {
			t.Fatalf("ReadAt(backup %d): %v", r, err)
		}
		if seq != g.Committed() {
			t.Fatalf("backup %d applied seq %d, committed %d", r, seq, g.Committed())
		}
		if !bytes.Equal(dst, bytes.Repeat([]byte{0xA3}, 64)) {
			t.Fatalf("backup %d served wrong bytes: % x...", r, dst[:8])
		}
	}
	if _, err := g.ReadAt(7, 0, dst); err == nil {
		t.Fatal("out-of-range replica index served")
	}
	if _, err := g.ReadAt(0, -64, dst); err == nil {
		t.Fatal("negative offset served")
	}
}

// TestReadAtRefusesNotFullyEnrolled: paused, crashed, and epoch-fenced
// replicas are not read views — exactly the acknowledgement predicate.
func TestReadAtRefusesNotFullyEnrolled(t *testing.T) {
	g := newGroup(t, replication.Active, 3, replication.QuorumSafe)
	commitSlot(t, g, 0, 0x11)
	g.Settle(10 * sim.Microsecond)

	dst := make([]byte, 64)
	if err := g.PauseBackup(0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ReadAt(0, 0, dst); !errors.Is(err, replication.ErrReplicaUnavailable) {
		t.Fatalf("paused backup served: %v", err)
	}
	if err := g.CrashBackup(1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ReadAt(1, 0, dst); !errors.Is(err, replication.ErrReplicaUnavailable) {
		t.Fatalf("crashed backup served: %v", err)
	}
	g.SetBackupEpochForTest(2, g.Epoch()+1)
	if _, err := g.ReadAt(2, 0, dst); !errors.Is(err, replication.ErrReplicaUnavailable) {
		t.Fatalf("epoch-fenced backup served: %v", err)
	}
}

// TestReadAtPassiveNeverServes: the passive scheme's mirror copies are
// torn mid-transaction, so they are never read views.
func TestReadAtPassiveNeverServes(t *testing.T) {
	g := newGroup(t, replication.Passive, 2, replication.OneSafe)
	commitSlot(t, g, 0, 0x22)
	g.Settle(10 * sim.Microsecond)
	dst := make([]byte, 64)
	if _, err := g.ReadAt(0, 0, dst); !errors.Is(err, replication.ErrReplicaUnavailable) {
		t.Fatalf("passive mirror served a replica read: %v", err)
	}
	// Routed reads still work — they fall back to the primary.
	res, err := g.RouteRead(0, dst, replication.ReadSpec{Mode: replication.ReadQuorum})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica != 0 {
		t.Fatalf("passive group routed to replica %d", res.Replica)
	}
}

// TestReadAtMidJoinNeverServes is the enrollment-gate acceptance test: a
// replica being rebuilt by the online repair (Syncing/CatchingUp from the
// join state machine) holds a fuzzy copy and must refuse reads for the
// whole transfer, then serve again once cut over to InSync.
func TestReadAtMidJoinNeverServes(t *testing.T) {
	g := newActiveGroup(t, 2, replication.OneSafe)
	for i := 0; i < 30; i++ {
		commitSlot(t, g, i, byte(i))
	}
	g.Settle(g.QuiesceGrace())
	if err := g.CrashBackup(1); err != nil {
		t.Fatal(err)
	}
	if err := g.RepairAsync(); err != nil {
		t.Fatal(err)
	}
	if !g.RepairStatus().Active {
		t.Fatal("repair not active after RepairAsync")
	}

	dst := make([]byte, 64)
	probes := 0
	for i := 0; i < 200000 && g.RepairStatus().Active; i++ {
		commitSlot(t, g, i%64, byte(i))
		if st := g.BackupState(1); st == replication.StateSyncing || st == replication.StateCatchingUp {
			probes++
			if _, err := g.ReadAt(1, 0, dst); !errors.Is(err, replication.ErrReplicaUnavailable) {
				t.Fatalf("mid-join replica (state %v) served: %v", st, err)
			}
		}
		if i%100 == 0 {
			g.Settle(g.QuiesceGrace())
		}
	}
	if g.RepairStatus().Active {
		t.Fatal("repair never completed")
	}
	if probes == 0 {
		t.Fatal("never observed the joiner mid-transfer")
	}
	g.Settle(g.QuiesceGrace())
	if got := g.BackupState(1); got != replication.StateInSync {
		t.Fatalf("joiner state %v after cut-over", got)
	}
	if _, err := g.ReadAt(1, 0, dst); err != nil {
		t.Fatalf("re-enrolled replica refuses reads: %v", err)
	}
}

// TestRouteReadYourWrites: a backup at or past the caller's token serves;
// a token past every backup falls back to the primary; a pinned read
// never falls back.
func TestRouteReadYourWrites(t *testing.T) {
	g := newGroup(t, replication.Active, 2, replication.QuorumSafe)
	for i := 0; i < 10; i++ {
		commitSlot(t, g, i, byte(0x30+i))
	}
	g.Settle(10 * sim.Microsecond)
	tok := g.Committed()

	dst := make([]byte, 64)
	res, err := g.RouteRead(2*64, dst, replication.ReadSpec{Mode: replication.ReadYourWrites, MinSeq: tok})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica == 0 || res.Seq < tok {
		t.Fatalf("caught-up backup not chosen: %+v (token %d)", res, tok)
	}
	if !bytes.Equal(dst, bytes.Repeat([]byte{0x32}, 64)) {
		t.Fatalf("replica served wrong bytes: % x...", dst[:8])
	}

	// A token from the future (no backup can have applied it): primary.
	res, err = g.RouteRead(2*64, dst, replication.ReadSpec{Mode: replication.ReadYourWrites, MinSeq: tok + 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica != 0 || res.Seq != res.Primary {
		t.Fatalf("unsatisfiable token did not fall back to primary: %+v", res)
	}

	// Pinned reads surface the refusal instead of falling back.
	_, err = g.RouteRead(2*64, dst, replication.ReadSpec{
		Mode: replication.ReadYourWrites, MinSeq: tok + 100, Replica: 1,
	})
	if !errors.Is(err, replication.ErrReplicaUnavailable) {
		t.Fatalf("pinned unsatisfiable read fell back: %v", err)
	}
}

// TestRouteReadBounded: with group commit holding a batch open the primary's
// committed counter runs ahead of every backup (parked commits are local),
// giving a deterministic lag to route against.
func TestRouteReadBounded(t *testing.T) {
	g, err := replication.NewGroup(replication.Config{
		Mode:        replication.Active,
		Store:       vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Backups:     2,
		Safety:      replication.QuorumSafe,
		CommitBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		commitSlot(t, g, i, byte(0x50+i)) // parked in the open batch
	}
	if got := g.Committed(); got != 5 {
		t.Fatalf("committed %d with open batch, want 5", got)
	}

	// Lag 5 > bound 2: no backup qualifies, the primary serves.
	dst := make([]byte, 64)
	res, err := g.RouteRead(0, dst, replication.ReadSpec{Mode: replication.ReadBounded, Bound: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica != 0 || res.Seq != 5 {
		t.Fatalf("over-bound lag not routed to primary: %+v", res)
	}

	// Lag 5 ≤ bound 16: a backup serves its (stale but in-bound) view.
	res, err = g.RouteRead(0, dst, replication.ReadSpec{Mode: replication.ReadBounded, Bound: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica == 0 {
		t.Fatalf("in-bound backup not chosen: %+v", res)
	}
	if res.Primary-res.Seq > 16 {
		t.Fatalf("served view exceeds the advertised bound: %+v", res)
	}

	// After a flush + settle the lag collapses and even Bound: 0 is
	// satisfiable from a backup.
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	g.Settle(10 * sim.Microsecond)
	res, err = g.RouteRead(0, dst, replication.ReadSpec{Mode: replication.ReadBounded, Bound: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica == 0 || res.Seq != res.Primary {
		t.Fatalf("caught-up backup not chosen at bound 0: %+v", res)
	}
	if !bytes.Equal(dst, bytes.Repeat([]byte{0x50}, 64)) {
		t.Fatalf("bounded read served wrong bytes: % x...", dst[:8])
	}
}

// TestRouteReadQuorum: a majority of enrolled backups is inspected and the
// max-sequence view serves; when the enrolled set falls below the read
// quorum, the primary completes it.
func TestRouteReadQuorum(t *testing.T) {
	g := newGroup(t, replication.Active, 3, replication.QuorumSafe)
	for i := 0; i < 20; i++ {
		commitSlot(t, g, i, byte(0x70+i))
	}
	g.Settle(10 * sim.Microsecond)

	dst := make([]byte, 64)
	res, err := g.RouteRead(4*64, dst, replication.ReadSpec{Mode: replication.ReadQuorum})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica == 0 {
		t.Fatalf("quorum read served by primary with 3 healthy backups: %+v", res)
	}
	if res.Seq != g.Committed() {
		// Any read-majority intersects every commit quorum, so the max view
		// has everything acknowledged — here everything, period (settled).
		t.Fatalf("quorum view seq %d, committed %d", res.Seq, g.Committed())
	}
	if !bytes.Equal(dst, bytes.Repeat([]byte{0x74}, 64)) {
		t.Fatalf("quorum read served wrong bytes: % x...", dst[:8])
	}

	// Two of three paused: one servable backup < read quorum of 2 — the
	// primary completes the quorum and serves.
	if err := g.PauseBackup(0); err != nil {
		t.Fatal(err)
	}
	if err := g.PauseBackup(1); err != nil {
		t.Fatal(err)
	}
	res, err = g.RouteRead(4*64, dst, replication.ReadSpec{Mode: replication.ReadQuorum})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replica != 0 || res.Seq != res.Primary {
		t.Fatalf("undersized quorum not completed by primary: %+v", res)
	}

	// A crashed group serves nothing.
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RouteRead(0, dst, replication.ReadSpec{Mode: replication.ReadQuorum}); !errors.Is(err, replication.ErrCrashed) {
		t.Fatalf("crashed group routed a read: %v", err)
	}
	if _, err := g.ReadAt(2, 0, dst); !errors.Is(err, replication.ErrCrashed) {
		t.Fatalf("crashed group served ReadAt: %v", err)
	}
}

// TestReplicaElapsed: backup-served reads run on the backups' clocks, in
// parallel with the primary — the measured interval is the max over
// serving nodes, equals Elapsed when no backup served, and resets with
// ResetMeasurement.
func TestReplicaElapsed(t *testing.T) {
	g := newGroup(t, replication.Active, 2, replication.QuorumSafe)
	for i := 0; i < 8; i++ {
		commitSlot(t, g, i, byte(i))
	}
	g.Settle(10 * sim.Microsecond)
	if e, re := g.Elapsed(), g.ReplicaElapsed(); re != e {
		t.Fatalf("no replica reads yet, ReplicaElapsed %v != Elapsed %v", re, e)
	}

	// An interval of pure backup reads: the primary sits idle while the
	// backup's clock accumulates the charged reads.
	g.ResetMeasurement()
	dst := make([]byte, 64)
	for i := 0; i < 200; i++ {
		if _, err := g.ReadAt(0, (i%8)*64, dst); err != nil {
			t.Fatal(err)
		}
	}
	if e, re := g.Elapsed(), g.ReplicaElapsed(); re <= e {
		t.Fatalf("200 backup reads invisible: ReplicaElapsed %v <= Elapsed %v", re, e)
	}

	// The next interval starts clean.
	g.ResetMeasurement()
	if e, re := g.Elapsed(), g.ReplicaElapsed(); re != e {
		t.Fatalf("after reset, ReplicaElapsed %v != Elapsed %v", re, e)
	}
}

// TestReadModeNames pins the mode names used across flags, metrics, and
// bench output.
func TestReadModeNames(t *testing.T) {
	want := map[replication.ReadMode]string{
		replication.ReadPrimary:    "primary",
		replication.ReadYourWrites: "ryw",
		replication.ReadBounded:    "bounded",
		replication.ReadQuorum:     "quorum",
	}
	for m, name := range want {
		if m.String() != name {
			t.Errorf("mode %d: %q, want %q", m, m.String(), name)
		}
		if !m.Valid() {
			t.Errorf("mode %q invalid", name)
		}
	}
	if replication.ReadMode(9).Valid() {
		t.Error("ReadMode(9) claims valid")
	}
}
