package replication_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/tpc"
	"repro/internal/vista"
)

// Randomized crash-point tests: drive a workload, crash the primary at a
// random point — between transactions, mid-SAN-stream, with or without a
// settling grace, with backups paused or killed — fail over, and assert
// that the recovered database is exactly the state after some committed
// prefix, with no acknowledged commit lost and no torn transaction.
//
// The seed is fixed and logged so any failure replays deterministically;
// override it with the iteration index printed in the failure message.

const (
	crashDB = 4 << 20
	// crashWindow bounds the 1-safe loss window for a clean (uninjected)
	// crash: at most the commits still coalescing in the write buffers.
	crashWindow = 8
)

// crashScenario is one randomized configuration.
type crashScenario struct {
	mode    replication.Mode
	safety  replication.Safety
	backups int
	commits int
	settle  bool
	// injectPackets > 0 freezes the SAN at that packet mid-run (1-safe
	// only: stronger levels gate commits on acknowledged delivery).
	injectPackets int64
	// pauseAt maps a backup index to the commit count at which it is
	// partitioned away.
	pauseAt map[int]int
	// crashBackups lists backups killed together with the primary.
	crashBackups []int
	workSeed     uint64
}

// maxPausable returns how many backups a scenario may partition while the
// safety level still accepts commits.
func maxPausable(s replication.Safety, k int) int {
	switch s {
	case replication.TwoSafe:
		return 0
	case replication.QuorumSafe:
		return k - replication.QuorumAcks(k)
	default:
		return k - 1
	}
}

// drawScenario samples one configuration.
func drawScenario(rng *rand.Rand) crashScenario {
	modes := []replication.Mode{replication.Passive, replication.Active}
	safeties := []replication.Safety{replication.OneSafe, replication.TwoSafe, replication.QuorumSafe}
	sc := crashScenario{
		mode:     modes[rng.Intn(len(modes))],
		safety:   safeties[rng.Intn(len(safeties))],
		backups:  1 + rng.Intn(3),
		commits:  20 + rng.Intn(80),
		settle:   rng.Intn(2) == 0,
		workSeed: uint64(rng.Int63()) | 1,
	}
	if sc.safety == replication.OneSafe && !sc.settle && rng.Intn(2) == 0 {
		sc.injectPackets = int64(40 + rng.Intn(1500))
	}
	// Partition a random subset of the pausable backups mid-run.
	if p := maxPausable(sc.safety, sc.backups); p > 0 && sc.injectPackets == 0 && rng.Intn(2) == 0 {
		sc.pauseAt = map[int]int{}
		for len(sc.pauseAt) < 1+rng.Intn(p) {
			sc.pauseAt[rng.Intn(sc.backups)] = 1 + rng.Intn(sc.commits)
		}
	}
	// Kill a subset of the backups along with the primary, always leaving
	// at least one survivor.
	perm := rng.Perm(sc.backups)
	for _, i := range perm[:rng.Intn(sc.backups)] {
		sc.crashBackups = append(sc.crashBackups, i)
	}
	return sc
}

// runScenario executes the scenario and checks the recovery invariants.
func runScenario(t *testing.T, iter int, sc crashScenario) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("iter %d %+v: "+format, append([]any{iter, sc}, args...)...)
	}

	g, err := replication.NewGroup(replication.Config{
		Mode:    sc.mode,
		Store:   vista.Config{Version: vista.V3InlineLog, DBSize: crashDB},
		Backups: sc.backups,
		Safety:  sc.safety,
	})
	if err != nil {
		fail("build: %v", err)
	}
	w, err := tpc.NewDebitCredit(crashDB)
	if err != nil {
		fail("workload: %v", err)
	}
	if err := w.Populate(g.Load); err != nil {
		fail("populate: %v", err)
	}
	if sc.injectPackets > 0 {
		g.Primary().MC.CrashAfterPackets(sc.injectPackets)
	}

	// Drive the workload with the same loop shape as tpc.Run (warmup 0,
	// no aborts) so tpc.Replay reconstructs reference states.
	r := tpc.NewRand(sc.workSeed)
	for i := 0; i < sc.commits; i++ {
		for b, at := range sc.pauseAt {
			if at == i {
				if err := g.PauseBackup(b); err != nil {
					fail("pause %d: %v", b, err)
				}
			}
		}
		tx, err := g.Begin()
		if err != nil {
			fail("begin %d: %v", i, err)
		}
		if err := w.Txn(r, tx, int64(i)); err != nil {
			fail("txn %d: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			fail("commit %d: %v", i, err)
		}
	}
	if sc.settle {
		g.Settle(20 * sim.Microsecond)
	}
	if err := g.Crash(); err != nil {
		fail("crash: %v", err)
	}
	for _, b := range sc.crashBackups {
		if err := g.CrashBackup(b); err != nil {
			fail("crash backup %d: %v", b, err)
		}
	}
	st, err := g.Failover()
	if err != nil {
		fail("failover: %v", err)
	}

	// Invariant 1: the survivor serves some prefix, never more than the
	// primary committed.
	k := int64(st.Committed())
	n := int64(sc.commits)
	if k > n {
		fail("recovered %d commits, primary did %d", k, n)
	}

	// Invariant 2: no acknowledged commit is lost. Work out the floor
	// guaranteed by the best intact survivor (the promotion rule always
	// reaches at least that replica's prefix).
	floor := int64(0)
	if sc.injectPackets == 0 {
		crashed := map[int]bool{}
		for _, b := range sc.crashBackups {
			crashed[b] = true
		}
		for i := 0; i < sc.backups; i++ {
			if crashed[i] {
				continue
			}
			f := n - crashWindow
			if sc.settle || sc.safety != replication.OneSafe {
				f = n
			}
			if at, paused := sc.pauseAt[i]; paused {
				f = int64(at) - crashWindow
			}
			if f > floor {
				floor = f
			}
		}
		if floor < 0 {
			floor = 0
		}
	}
	if k < floor {
		fail("recovered %d commits, acked floor is %d", k, floor)
	}

	// Invariant 3: the state is exactly the prefix state — no torn
	// transaction. (Passive mirror-less V3 under a mid-stream packet cut
	// may expose the transaction that was crossing the SAN; the active
	// scheme never does.)
	ref, err := tpc.Replay(mustDC(t), tpc.Options{Seed: sc.workSeed}, k)
	if err != nil {
		fail("replay: %v", err)
	}
	got := make([]byte, crashDB)
	st.ReadRaw(0, got)
	if bytes.Equal(got, ref) {
		return
	}
	tornOK := sc.mode == replication.Passive && sc.injectPackets > 0
	if !tornOK {
		fail("state does not match the %d-commit prefix", k)
	}
	next, err := tpc.Replay(mustDC(t), tpc.Options{Seed: sc.workSeed}, k+1)
	if err != nil {
		fail("replay k+1: %v", err)
	}
	for i := range got {
		if got[i] != ref[i] && got[i] != next[i] {
			fail("byte %d matches neither state %d nor %d", i, k, k+1)
		}
	}
}

func mustDC(t *testing.T) tpc.Workload {
	t.Helper()
	w, err := tpc.NewDebitCredit(crashDB)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRandomizedCrashPoints sweeps the full {mode} x {safety} x {backups}
// matrix with randomized crash points, pauses and co-crashed backups.
func TestRandomizedCrashPoints(t *testing.T) {
	const seed = 20260730
	iters := 150
	if testing.Short() {
		iters = 40
	}
	t.Logf("crashpoint seed %d, %d iterations", seed, iters)
	rng := rand.New(rand.NewSource(seed))
	for iter := 0; iter < iters; iter++ {
		runScenario(t, iter, drawScenario(rng))
	}
}

// repairScenario is one randomized crash-during-repair configuration: a
// backup dies, an online repair starts, and the primary or the joining
// backup is killed with the state transfer still in flight.
type repairScenario struct {
	safety       replication.Safety
	backups      int
	preCommits   int
	midCommits   int
	crashJoiner  bool // kill the joiner mid-transfer instead of the primary
	settleBefore bool // settle before the final crash (closes the 1-safe window)
	workSeed     uint64
}

// runRepairScenario executes the scenario and checks that the committed-
// prefix and quorum zero-loss properties hold in every interleaving.
func runRepairScenario(t *testing.T, iter int, sc repairScenario) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("iter %d %+v: "+format, append([]any{iter, sc}, args...)...)
	}

	g, err := replication.NewGroup(replication.Config{
		Mode:    replication.Active,
		Store:   vista.Config{Version: vista.V3InlineLog, DBSize: crashDB},
		Backups: sc.backups,
		Safety:  sc.safety,
	})
	if err != nil {
		fail("build: %v", err)
	}
	w, err := tpc.NewDebitCredit(crashDB)
	if err != nil {
		fail("workload: %v", err)
	}
	if err := w.Populate(g.Load); err != nil {
		fail("populate: %v", err)
	}
	r := tpc.NewRand(sc.workSeed)
	txn := 0
	commit := func() {
		tx, err := g.Begin()
		if err != nil {
			fail("begin %d: %v", txn, err)
		}
		if err := w.Txn(r, tx, int64(txn)); err != nil {
			fail("txn %d: %v", txn, err)
		}
		if err := tx.Commit(); err != nil {
			fail("commit %d: %v", txn, err)
		}
		txn++
	}

	for i := 0; i < sc.preCommits; i++ {
		commit()
	}
	g.Settle(g.QuiesceGrace())
	victim := sc.backups - 1
	if err := g.CrashBackup(victim); err != nil {
		fail("crash backup: %v", err)
	}
	if err := g.RepairAsync(); err != nil {
		fail("repair async: %v", err)
	}
	joiner := sc.backups - 1 // the fresh node takes the freed slot
	for i := 0; i < sc.midCommits; i++ {
		commit()
	}
	if st := g.RepairStatus(); !st.Active {
		fail("transfer finished before the crash point (need a mid-flight crash)")
	}

	if sc.crashJoiner {
		// The joining backup dies mid-transfer: the group must shrug it
		// off, repair again with another fresh node, and lose nothing.
		if err := g.CrashBackup(joiner); err != nil {
			fail("crash joiner: %v", err)
		}
		for i := 0; i < 5; i++ {
			commit()
		}
		if _, err := g.Repair(); err != nil {
			fail("re-repair after joiner crash: %v", err)
		}
		g.Settle(g.QuiesceGrace())
		if err := g.Crash(); err != nil {
			fail("crash: %v", err)
		}
		st, err := g.Failover()
		if err != nil {
			fail("failover: %v", err)
		}
		if got := st.Committed(); got != uint64(txn) {
			fail("settled failover after re-repair lost commits: %d of %d", got, txn)
		}
		return
	}

	// The primary dies with the transfer in flight: the mid-join replica
	// holds a fuzzy copy and must never serve; promotion picks an intact
	// survivor and the recovered state is exactly a committed prefix.
	if sc.settleBefore {
		g.Settle(g.QuiesceGrace())
	}
	if err := g.Crash(); err != nil {
		fail("crash: %v", err)
	}
	st, err := g.Failover()
	if err != nil {
		fail("failover: %v", err)
	}
	k := int64(st.Committed())
	n := int64(txn)
	if k > n {
		fail("recovered %d commits, primary did %d", k, n)
	}
	floor := n - crashWindow
	if sc.settleBefore || sc.safety == replication.QuorumSafe {
		// Every commit was quorum-acked by intact replicas (the joiner
		// never acks before cut-over), so zero loss is guaranteed even
		// without a settling grace.
		floor = n
	}
	if floor < 0 {
		floor = 0
	}
	if k < floor {
		fail("recovered %d commits, acked floor is %d", k, floor)
	}
	ref, err := tpc.Replay(mustDC(t), tpc.Options{Seed: sc.workSeed}, k)
	if err != nil {
		fail("replay: %v", err)
	}
	got := make([]byte, crashDB)
	st.ReadRaw(0, got)
	if !bytes.Equal(got, ref) {
		fail("recovered state does not match the %d-commit prefix", k)
	}
}

// TestCrashDuringRepairRandomized hammers the online repair with crashes
// landing mid-transfer: the primary or the joining backup dies while the
// chunked copy is in flight, across randomized commit counts, safety
// levels and crash points. The committed-prefix property and the quorum
// zero-loss property must hold in every interleaving.
func TestCrashDuringRepairRandomized(t *testing.T) {
	const seed = 77001122
	iters := 60
	if testing.Short() {
		iters = 20
	}
	t.Logf("crash-during-repair seed %d, %d iterations", seed, iters)
	rng := rand.New(rand.NewSource(seed))
	for iter := 0; iter < iters; iter++ {
		sc := repairScenario{
			safety:       replication.OneSafe,
			backups:      2 + rng.Intn(2),
			preCommits:   10 + rng.Intn(40),
			midCommits:   1 + rng.Intn(40),
			crashJoiner:  rng.Intn(2) == 0,
			settleBefore: rng.Intn(2) == 0,
			workSeed:     uint64(rng.Int63()) | 1,
		}
		if rng.Intn(2) == 0 {
			// Quorum needs ceil((K+1)/2) ackers among the intact
			// replicas while one is mid-join: K=3 with one joiner
			// leaves exactly the 2 required.
			sc.safety = replication.QuorumSafe
			sc.backups = 3
		}
		runRepairScenario(t, iter, sc)
	}
}

// TestQuorumCrashRandomized is the acceptance property hammered on its
// own: QuorumSafe with three backups survives the crash of the primary
// plus one backup with zero acked-commit loss, across randomized commit
// counts, crash victims and workload seeds.
func TestQuorumCrashRandomized(t *testing.T) {
	const seed = 424242
	const iters = 120
	t.Logf("quorum crashpoint seed %d, %d iterations", seed, iters)
	rng := rand.New(rand.NewSource(seed))
	for iter := 0; iter < iters; iter++ {
		sc := crashScenario{
			mode:         replication.Active,
			safety:       replication.QuorumSafe,
			backups:      3,
			commits:      10 + rng.Intn(60),
			settle:       false,
			crashBackups: []int{rng.Intn(3)},
			workSeed:     uint64(rng.Int63()) | 1,
		}
		runScenario(t, iter, sc)
	}
}
