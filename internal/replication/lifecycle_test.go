package replication_test

import (
	"errors"
	"testing"

	"repro/internal/replication"
	"repro/internal/vista"
)

// The BackupState machine, exhaustively: every (state, event) pair is
// driven through the public API and the resulting state asserted against
// the lifecycle matrix documented on BackupState. Illegal transitions are
// the pairs whose row says "stays put" — a crashed replica cannot be
// paused back to life, a pause cannot skip the gate on resume, and so on;
// the new autopilot paths (detection-driven crash and repair) ride on
// exactly these transitions, so the matrix pins them down.

type lifecycleEvent string

const (
	evPause  lifecycleEvent = "pause"
	evResume lifecycleEvent = "resume"
	evCrash  lifecycleEvent = "crash"
	evRepair lifecycleEvent = "repair"
)

// lifecycleRig builds a passive K=2 group with backup 1 driven into the
// given state. Backup 0 stays in-sync throughout, so the group always has
// a live replica and RepairAsync's behavior is attributable to backup 1.
func lifecycleRig(t *testing.T, state replication.BackupState) *replication.Group {
	t.Helper()
	g := newGroup(t, replication.Passive, 2, replication.OneSafe)
	for i := 0; i < 8; i++ {
		commitSlot(t, g, i, 1)
	}
	g.Settle(g.QuiesceGrace())
	switch state {
	case replication.StateInSync:
	case replication.StatePaused:
		mustNil(t, g.PauseBackup(1))
	case replication.StateGated:
		mustNil(t, g.PauseBackup(1))
		// Dirty pages while away, so re-enrollment needs a real transfer
		// (a clean, commit-free gap would re-enroll with no transfer).
		for i := 0; i < 300; i++ {
			commitSlot(t, g, i%64, 2)
		}
		g.Settle(g.QuiesceGrace())
		mustNil(t, g.ResumeBackup(1))
	case replication.StateSyncing:
		mustNil(t, g.PauseBackup(1))
		for i := 0; i < 300; i++ {
			commitSlot(t, g, i%64, 2)
		}
		g.Settle(g.QuiesceGrace())
		mustNil(t, g.ResumeBackup(1))
		mustNil(t, g.RepairAsync())
	case replication.StateCrashed:
		mustNil(t, g.CrashBackup(1))
	default:
		t.Fatalf("state %v unreachable in the passive rig", state)
	}
	if got := g.BackupState(1); got != state {
		t.Fatalf("rig built %v, want %v", got, state)
	}
	return g
}

func applyLifecycleEvent(t *testing.T, g *replication.Group, ev lifecycleEvent) {
	t.Helper()
	switch ev {
	case evPause:
		mustNil(t, g.PauseBackup(1))
	case evResume:
		mustNil(t, g.ResumeBackup(1))
	case evCrash:
		mustNil(t, g.CrashBackup(1))
	case evRepair:
		if err := g.RepairAsync(); err != nil && !errors.Is(err, replication.ErrNotRepairable) {
			t.Fatal(err)
		}
	}
}

func TestBackupStateMachine(t *testing.T) {
	S := replication.StateInSync
	P := replication.StatePaused
	G := replication.StateGated
	Y := replication.StateSyncing
	C := replication.StateCrashed
	matrix := []struct {
		from replication.BackupState
		next map[lifecycleEvent]replication.BackupState
	}{
		// A live stream member pauses, crashes, and has nothing to
		// repair; resume is a no-op outside Paused.
		{S, map[lifecycleEvent]replication.BackupState{evPause: P, evResume: S, evCrash: C, evRepair: S}},
		// A partitioned replica re-pauses idempotently, resumes only to
		// Gated (never straight back to the stream — its gap would tear
		// the copy), and is not repairable until it resumes.
		{P, map[lifecycleEvent]replication.BackupState{evPause: P, evResume: G, evCrash: C, evRepair: P}},
		// A gated replica re-enrolls through a join; pausing it again is
		// legal, "resuming" it again changes nothing.
		{G, map[lifecycleEvent]replication.BackupState{evPause: P, evResume: G, evCrash: C, evRepair: Y}},
		// A mid-join replica aborts its transfer on pause or crash;
		// another RepairAsync leaves the in-flight join running.
		{Y, map[lifecycleEvent]replication.BackupState{evPause: P, evResume: Y, evCrash: C, evRepair: Y}},
		// Dead machines stay dead under every event except repair, which
		// replaces the slot with a fresh joining node.
		{C, map[lifecycleEvent]replication.BackupState{evPause: C, evResume: C, evCrash: C, evRepair: Y}},
	}
	for _, row := range matrix {
		for _, ev := range []lifecycleEvent{evPause, evResume, evCrash, evRepair} {
			t.Run(row.from.String()+"/"+string(ev), func(t *testing.T) {
				g := lifecycleRig(t, row.from)
				applyLifecycleEvent(t, g, ev)
				if got, want := g.BackupState(1), row.next[ev]; got != want {
					t.Fatalf("%v + %s = %v, want %v", row.from, ev, got, want)
				}
				if g.Backups() != 2 {
					t.Fatalf("membership leaked: %d backups", g.Backups())
				}
				// The group still serves whatever happened to backup 1.
				commitSlot(t, g, 70, 3)
			})
		}
	}
}

// TestBackupStateCatchingUp drives the active-only CatchingUp state: the
// join's chunk copy completes while a large unflushed group-commit batch
// keeps the redo lag above the cut-over threshold, then the flush drains
// the lag and the replica cuts over to InSync; pause and crash mid-catch-up
// abort the join.
func TestBackupStateCatchingUp(t *testing.T) {
	rig := func(t *testing.T) *replication.Group {
		t.Helper()
		g, err := replication.NewGroup(replication.Config{
			Mode:        replication.Active,
			Store:       vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
			Backups:     2,
			CommitBatch: 256,
			RepairChunk: testDB, // one pump ships the whole plan
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			commitSlot(t, g, i, 1)
		}
		mustNil(t, g.Flush())
		g.Settle(g.QuiesceGrace())
		mustNil(t, g.PauseBackup(1))
		for i := 0; i < 200; i++ {
			commitSlot(t, g, i%64, 2)
		}
		mustNil(t, g.Flush())
		g.Settle(g.QuiesceGrace())
		mustNil(t, g.ResumeBackup(1))
		mustNil(t, g.RepairAsync())
		// Build an open batch: the commits grant the copier enough credit
		// to finish its (single-chunk) plan mid-batch, and the unflushed
		// batch keeps the replica catching up — the regression this rig
		// pins is a joiner cutting over inside an open batch, which would
		// let the flush publish unreserved bytes to its ring.
		for i := 0; i < 120; i++ {
			commitSlot(t, g, i%64, 3)
		}
		if got := g.BackupState(1); got != replication.StateCatchingUp {
			t.Fatalf("rig reached %v, want catching-up", got)
		}
		return g
	}

	t.Run("flush-cuts-over", func(t *testing.T) {
		g := rig(t)
		mustNil(t, g.Flush())
		g.Settle(g.QuiesceGrace())
		if got := g.BackupState(1); got != replication.StateInSync {
			t.Fatalf("after flush: %v, want in-sync", got)
		}
	})
	t.Run("pause-aborts", func(t *testing.T) {
		g := rig(t)
		mustNil(t, g.PauseBackup(1))
		if got := g.BackupState(1); got != replication.StatePaused {
			t.Fatalf("after pause: %v, want paused", got)
		}
	})
	t.Run("crash-aborts", func(t *testing.T) {
		g := rig(t)
		mustNil(t, g.CrashBackup(1))
		if got := g.BackupState(1); got != replication.StateCrashed {
			t.Fatalf("after crash: %v, want crashed", got)
		}
	})
}

func mustNil(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
