package replication_test

import (
	"errors"
	"testing"

	"repro/internal/replication"
	"repro/internal/tpc"
	"repro/internal/vista"
)

func TestTwoSafeRequiresBackup(t *testing.T) {
	if _, err := replication.NewPair(replication.Config{
		Mode:    replication.Standalone,
		Store:   vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		TwoSafe: true,
	}); !errors.Is(err, replication.ErrSafetyNeedsBackup) {
		t.Fatalf("2-safe standalone accepted: %v", err)
	}
	if _, err := replication.NewPair(replication.Config{
		Mode:   replication.Standalone,
		Store:  vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Safety: replication.QuorumSafe,
	}); !errors.Is(err, replication.ErrSafetyNeedsBackup) {
		t.Fatalf("quorum standalone accepted: %v", err)
	}
}

// TestTwoSafeClosesTheWindow: with 2-safe commits, a crash at ANY moment —
// no settling — loses nothing: every commit that returned is on the backup.
func TestTwoSafeClosesTheWindow(t *testing.T) {
	pair, err := replication.NewPair(replication.Config{
		Mode:    replication.Active,
		Store:   vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		TwoSafe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	opts := tpc.Options{Txns: 250, Seed: 13}
	if _, err := tpc.Run(pair, w, opts); err != nil {
		t.Fatal(err)
	}
	// Crash immediately: no Settle, no drain grace.
	if err := pair.Crash(); err != nil {
		t.Fatal(err)
	}
	st, err := pair.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Committed(); got != 250 {
		t.Fatalf("2-safe lost commits: %d of 250 survived", got)
	}
	verifyCommittedPrefix(t, st, opts, 250, 0, false)
}

// TestTwoSafeCostsThroughput: closing the window must cost simulated time
// (a SAN round trip plus the backup's apply per commit).
func TestTwoSafeCostsThroughput(t *testing.T) {
	run := func(twoSafe bool) float64 {
		pair, err := replication.NewPair(replication.Config{
			Mode:    replication.Active,
			Store:   vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
			TwoSafe: twoSafe,
		})
		if err != nil {
			t.Fatal(err)
		}
		w, err := tpc.NewDebitCredit(testDB)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tpc.Run(pair, w, tpc.Options{Txns: 400, Warmup: 50, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.TPS
	}
	oneSafe, twoSafe := run(false), run(true)
	if twoSafe >= oneSafe {
		t.Fatalf("2-safe (%0.f) not slower than 1-safe (%0.f)", twoSafe, oneSafe)
	}
	// The latency hit is a round trip (~6-7us) per commit: substantial
	// but not catastrophic at these transaction sizes.
	if twoSafe < oneSafe/20 {
		t.Fatalf("2-safe collapsed: %0.f vs %0.f", twoSafe, oneSafe)
	}
}
