package replication_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/tpc"
	"repro/internal/vista"
)

func newGroup(t *testing.T, mode replication.Mode, backups int, safety replication.Safety) *replication.Group {
	t.Helper()
	g, err := replication.NewGroup(replication.Config{
		Mode:    mode,
		Store:   vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Backups: backups,
		Safety:  safety,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func commitSlot(t *testing.T, g *replication.Group, slot int, fill byte) {
	t.Helper()
	tx, err := g.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(slot*64, 64); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(slot*64, bytes.Repeat([]byte{fill}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := replication.NewGroup(replication.Config{
		Mode:    replication.Passive,
		Store:   vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Backups: -1,
	}); err == nil {
		t.Fatal("negative backup count accepted")
	}
	if _, err := replication.NewGroup(replication.Config{
		Mode:   replication.Active,
		Store:  vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Safety: replication.Safety(9),
	}); err == nil {
		t.Fatal("bogus safety level accepted")
	}
	g := newGroup(t, replication.Standalone, 0, replication.OneSafe)
	if g.Backups() != 0 || g.Degree() != 0 {
		t.Fatalf("standalone group has backups: %d/%d", g.Backups(), g.Degree())
	}
	g = newGroup(t, replication.Active, 3, replication.QuorumSafe)
	if g.Backups() != 3 || g.Degree() != 3 {
		t.Fatalf("K=3 group reports %d/%d", g.Backups(), g.Degree())
	}
	if g.Safety() != replication.QuorumSafe {
		t.Fatalf("safety %v", g.Safety())
	}
}

func TestQuorumAcksMath(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 4}
	for k, want := range cases {
		if got := replication.QuorumAcks(k); got != want {
			t.Errorf("QuorumAcks(%d) = %d, want %d", k, got, want)
		}
	}
}

// TestGroupFanoutReplicates: with K=3 passive backups, a settled commit is
// on every backup's database copy.
func TestGroupFanoutReplicates(t *testing.T) {
	for _, mode := range []replication.Mode{replication.Passive, replication.Active} {
		g := newGroup(t, mode, 3, replication.OneSafe)
		for i := 0; i < 20; i++ {
			commitSlot(t, g, i, byte(i+1))
		}
		g.Settle(10 * sim.Microsecond)
		for i := 0; i < 3; i++ {
			if mode == replication.Active {
				if got := g.AppliedTxns(i); got != 20 {
					t.Fatalf("%s: backup %d applied %d of 20", mode, i, got)
				}
			}
			db := g.BackupNode(i).Space.ByName(vista.RegionDB)
			buf := make([]byte, 64)
			db.ReadRaw(5*64, buf)
			if !bytes.Equal(buf, bytes.Repeat([]byte{6}, 64)) {
				t.Fatalf("%s: backup %d missing slot 5", mode, i)
			}
		}
	}
}

// TestFailoverPromotesMostCaughtUp: with three backups at unequal apply
// progress (two paused at different points), promotion picks the replica
// with the highest applied commit sequence, and the surviving backups are
// re-synced behind the new primary.
func TestFailoverPromotesMostCaughtUp(t *testing.T) {
	g := newGroup(t, replication.Active, 3, replication.OneSafe)

	for i := 0; i < 30; i++ {
		commitSlot(t, g, i, 1)
	}
	g.Settle(10 * sim.Microsecond)
	if err := g.PauseBackup(1); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 60; i++ {
		commitSlot(t, g, i, 2)
	}
	g.Settle(10 * sim.Microsecond)
	if err := g.PauseBackup(2); err != nil {
		t.Fatal(err)
	}
	for i := 60; i < 100; i++ {
		commitSlot(t, g, i, 3)
	}
	g.Settle(10 * sim.Microsecond)

	if a, b, c := g.AppliedTxns(0), g.AppliedTxns(1), g.AppliedTxns(2); a != 100 || b != 30 || c != 60 {
		t.Fatalf("applied progress %d/%d/%d, want 100/30/60", a, b, c)
	}

	promoted := g.BackupNode(0)
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}
	st, err := g.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Committed(); got != 100 {
		t.Fatalf("promoted store has %d commits, want 100 (most caught-up)", got)
	}
	if g.Primary() != promoted {
		t.Fatalf("promotion picked %q, want the most-caught-up backup %q",
			g.Primary().Name, promoted.Name)
	}

	// The survivors (both formerly paused) re-synced behind the new
	// primary: their database copies now equal the promoted state.
	if g.Backups() != 2 {
		t.Fatalf("%d survivors wired, want 2", g.Backups())
	}
	want := make([]byte, testDB)
	st.ReadRaw(0, want)
	for i := 0; i < g.Backups(); i++ {
		got := make([]byte, testDB)
		g.BackupNode(i).Space.ByName(vista.RegionDB).ReadRaw(0, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("survivor %d not re-synced behind the new primary", i)
		}
	}

	// Replication continues: another commit, crash, failover — sequential
	// failures are tolerated while replicas remain.
	commitSlot(t, g, 100, 4)
	g.Settle(10 * sim.Microsecond)
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}
	st2, err := g.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Committed(); got != 101 {
		t.Fatalf("second failover lost commits: %d of 101", got)
	}
	if g.Generation() != 2 {
		t.Fatalf("generation %d after two failovers", g.Generation())
	}
}

// TestQuorumSurvivesPrimaryPlusBackupCrash is the headline guarantee:
// QuorumSafe with three backups loses nothing when the primary and one
// backup die together, with no settling grace.
func TestQuorumSurvivesPrimaryPlusBackupCrash(t *testing.T) {
	for victim := 0; victim < 3; victim++ {
		g := newGroup(t, replication.Active, 3, replication.QuorumSafe)
		const commits = 80
		for i := 0; i < commits; i++ {
			commitSlot(t, g, i, byte(i%250+1))
		}
		// Crash immediately: every Commit above was quorum-acked.
		if err := g.Crash(); err != nil {
			t.Fatal(err)
		}
		if err := g.CrashBackup(victim); err != nil {
			t.Fatal(err)
		}
		st, err := g.Failover()
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Committed(); got != commits {
			t.Fatalf("victim %d: %d of %d acked commits survived", victim, got, commits)
		}
		buf := make([]byte, 64)
		st.ReadRaw((commits-1)*64, buf)
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte((commits-1)%250 + 1)}, 64)) {
			t.Fatalf("victim %d: last acked commit's data lost", victim)
		}
	}
}

// TestSafetyCommitLatencyOrdering: 1-safe commits are the fastest, quorum
// waits for the median backup, 2-safe for the slowest.
func TestSafetyCommitLatencyOrdering(t *testing.T) {
	run := func(s replication.Safety) float64 {
		g := newGroup(t, replication.Active, 3, s)
		w, err := tpc.NewDebitCredit(testDB)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tpc.Run(g, w, tpc.Options{Txns: 400, Warmup: 50, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.TPS
	}
	one, quorum, two := run(replication.OneSafe), run(replication.QuorumSafe), run(replication.TwoSafe)
	if !(one > quorum && quorum > two) {
		t.Fatalf("TPS ordering violated: 1-safe %.0f, quorum %.0f, 2-safe %.0f", one, quorum, two)
	}
}

// TestSafetyUnavailable: stronger safety levels refuse transactions when
// too few backups are reachable, instead of acking what they cannot hold.
func TestSafetyUnavailable(t *testing.T) {
	g := newGroup(t, replication.Active, 3, replication.QuorumSafe)
	if err := g.PauseBackup(0); err != nil {
		t.Fatal(err)
	}
	tx, err := g.Begin()
	if err != nil {
		t.Fatalf("quorum with 2 of 3 reachable must serve: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := g.PauseBackup(1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Begin(); !errors.Is(err, replication.ErrSafetyUnavailable) {
		t.Fatalf("quorum with 1 of 3 reachable: %v", err)
	}
	// A resumed backup is still stale (it missed part of the stream), so
	// it must not count toward the quorum until a re-sync.
	if err := g.ResumeBackup(1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Begin(); !errors.Is(err, replication.ErrSafetyUnavailable) {
		t.Fatalf("quorum counted a stale resumed backup: %v", err)
	}

	// Crashed backups shrink the group below the configured quorum for
	// good: the guarantee is over the configured degree, not survivors.
	g3 := newGroup(t, replication.Active, 3, replication.QuorumSafe)
	if err := g3.CrashBackup(0); err != nil {
		t.Fatal(err)
	}
	if err := g3.CrashBackup(1); err != nil {
		t.Fatal(err)
	}
	if _, err := g3.Begin(); !errors.Is(err, replication.ErrSafetyUnavailable) {
		t.Fatalf("quorum served with 2 of 3 backups crashed: %v", err)
	}

	g2 := newGroup(t, replication.Active, 2, replication.TwoSafe)
	if err := g2.PauseBackup(1); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Begin(); !errors.Is(err, replication.ErrSafetyUnavailable) {
		t.Fatalf("2-safe with a partitioned backup: %v", err)
	}
}

// TestRepairRestoresDegree: after a failover, Repair enrolls fresh nodes
// back up to the configured replication degree and replication is live to
// all of them.
func TestRepairRestoresDegree(t *testing.T) {
	g := newGroup(t, replication.Passive, 2, replication.OneSafe)
	for i := 0; i < 25; i++ {
		commitSlot(t, g, i, 9)
	}
	g.Settle(10 * sim.Microsecond)
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Failover(); err != nil {
		t.Fatal(err)
	}
	if g.Backups() != 1 {
		t.Fatalf("%d survivors, want 1", g.Backups())
	}
	if _, err := g.Repair(); err != nil {
		t.Fatal(err)
	}
	if g.Backups() != 2 {
		t.Fatalf("repair left %d backups, want the configured degree 2", g.Backups())
	}

	commitSlot(t, g, 30, 7)
	g.Settle(10 * sim.Microsecond)
	buf := make([]byte, 64)
	for i := 0; i < 2; i++ {
		g.BackupNode(i).Space.ByName(vista.RegionDB).ReadRaw(30*64, buf)
		if !bytes.Equal(buf, bytes.Repeat([]byte{7}, 64)) {
			t.Fatalf("backup %d missed the post-repair commit", i)
		}
	}
	if got := g.Store().Committed(); got != 26 {
		t.Fatalf("%d commits on the serving store, want 26", got)
	}
}

// TestPausedBackupNotPromotedOverFresher: a stale (paused) backup is
// eligible for promotion but loses to any fresher survivor; crashed
// backups are never promoted.
func TestPausedBackupNotPromotedOverFresher(t *testing.T) {
	g := newGroup(t, replication.Active, 2, replication.OneSafe)
	for i := 0; i < 10; i++ {
		commitSlot(t, g, i, 1)
	}
	g.Settle(10 * sim.Microsecond)
	if err := g.PauseBackup(0); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 40; i++ {
		commitSlot(t, g, i, 2)
	}
	g.Settle(10 * sim.Microsecond)
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}
	st, err := g.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Committed(); got != 40 {
		t.Fatalf("promotion chose the stale replica: %d commits, want 40", got)
	}
}

// TestFailoverNoSurvivors: crashing every backup leaves nothing to promote.
func TestFailoverNoSurvivors(t *testing.T) {
	g := newGroup(t, replication.Passive, 2, replication.OneSafe)
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := g.CrashBackup(0); err != nil {
		t.Fatal(err)
	}
	if err := g.CrashBackup(1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Failover(); !errors.Is(err, replication.ErrNoBackup) {
		t.Fatalf("failover with no survivors: %v", err)
	}
}
