package replication

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vista"
)

// BackupState is the explicit lifecycle of one backup replica. The happy
// path of an online join runs Syncing → CatchingUp → InSync; partitions
// move a replica through Paused → Gated → (repair) → InSync.
//
//	InSync      receiving the live stream and acknowledging commits;
//	            promotion-eligible with its full applied prefix.
//	Paused      partitioned away from the SAN: receives nothing, acks
//	            nothing; its applied prefix is frozen but consistent, so
//	            it remains promotion-eligible at that prefix.
//	Gated       reachable again after a partition but with a gap in its
//	            stream: receive stays gated (applying past a gap would
//	            tear the copy) until RepairAsync re-enrolls it.
//	Syncing     mid-join: the background chunked state transfer is
//	            copying the primary's recoverable pages while the live
//	            stream is already being received. The copy is fuzzy, so
//	            the replica is not promotion-eligible.
//	CatchingUp  transfer complete (active scheme): draining the redo ring
//	            from its copy-start sequence until the lag falls under
//	            the cut-over threshold. Still not promotion-eligible.
//	Crashed     dead; dropped and replaced at the next failover or repair.
type BackupState int

// Backup lifecycle states.
const (
	StateInSync BackupState = iota
	StatePaused
	StateGated
	StateSyncing
	StateCatchingUp
	StateCrashed
)

// String names the state.
func (s BackupState) String() string {
	switch s {
	case StateInSync:
		return "in-sync"
	case StatePaused:
		return "paused"
	case StateGated:
		return "gated"
	case StateSyncing:
		return "syncing"
	case StateCatchingUp:
		return "catching-up"
	case StateCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("BackupState(%d)", int(s))
	}
}

// backup is one backup node plus its replication state.
type backup struct {
	node  *Node
	state BackupState
	// off gates the broadcast receive mappings; it shadows the state
	// (true outside the receiving states) because memchannel targets hold
	// a stable pointer to it.
	off bool
	// fuzzy marks a database copy torn by an interrupted state transfer:
	// the replica holds a mix of old and new pages and must never be
	// promoted until a fresh transfer completes.
	fuzzy bool
	// ackLag is the deterministic extra delivery/ack latency of this
	// backup relative to backup 0 (commodity clusters are not uniform;
	// the stagger is what separates quorum from 2-safe commit latency).
	ackLag sim.Dur
	// epoch is the membership epoch the replica last enrolled under.
	// Acknowledgements only count while it matches the group's epoch; a
	// replica that missed a membership change is fenced until it
	// re-enrolls (see Group.bumpEpochLocked).
	epoch int

	// Gating snapshot, captured when the backup leaves the live stream:
	// the dirty-log epochs of the primary's recoverable regions, the
	// committed count, and whether the departure was clean (no bytes
	// still coalescing toward it). RepairAsync uses it to ship only the
	// pages dirtied since — or to skip the transfer entirely when the
	// stream has a provably empty gap.
	gateEpochs    map[string]uint64
	gateCommitted uint64
	gateGen       int
	cleanGate     bool

	// Active-mode consumer state.
	ring         *sim.Ring
	bRing, bCtl  *mem.Region
	appliedTotal uint64 // bytes of the redo stream applied (monotonic)
	appliedTxns  uint64

	// job is the in-flight join while Syncing/CatchingUp.
	job *repairJob

	// walIdx is this machine's durability slot (directory index) when the
	// disk tier is enabled; meaningless otherwise.
	walIdx int

	// Read-view measurement anchor: the replica's clock reading at the
	// start of the current measured interval (see Group.ReplicaElapsed).
	// readGen ties the anchor to a measurement generation so replicas
	// enrolled mid-interval pin a fresh origin on their first served read.
	readGen    uint64
	readOrigin sim.Time
}

// alive reports whether the backup still exists as a machine.
func (b *backup) alive() bool { return b.state != StateCrashed }

// acking reports whether the backup participates in commit
// acknowledgement: only a fully enrolled (InSync) replica may vouch for
// data — a joiner counts toward quorum exactly from its cut-over instant.
func (b *backup) acking() bool { return b.state == StateInSync }

// receiving reports whether the backup consumes the live stream (its
// receive mappings are open).
func (b *backup) receiving() bool {
	return b.state == StateInSync || b.state == StateSyncing || b.state == StateCatchingUp
}

// joining reports whether an online join is in flight on this backup.
func (b *backup) joining() bool {
	return b.state == StateSyncing || b.state == StateCatchingUp
}

// promotable reports whether failover may serve from this replica: it must
// be alive and hold a consistent committed prefix, which a fuzzy or
// mid-join copy does not.
func (b *backup) promotable() bool { return b.alive() && !b.fuzzy && !b.joining() }

// setState moves the backup to s and keeps the receive gate in step.
func (b *backup) setState(s BackupState) {
	b.state = s
	b.off = !b.receiving()
}

// ackStagger returns backup i's extra one-way latency. Backup 0 has none,
// so a single-backup group reproduces the paper's pair timing exactly.
func ackStagger(p *sim.Params, i int) sim.Dur {
	return sim.Dur(i) * p.LinkLatency / 8
}

func backupName(generation, i int) string {
	if generation == 0 {
		if i == 0 {
			return "backup"
		}
		return fmt.Sprintf("backup-%d", i+1)
	}
	return fmt.Sprintf("backup-g%d-%d", generation, i+1)
}

// backupAt validates a backup index.
func (g *Group) backupAt(i int) (*backup, error) {
	if i < 0 || i >= len(g.backups) {
		return nil, ErrNoSuchBackup
	}
	return g.backups[i], nil
}

// BackupState returns backup i's lifecycle state (StateCrashed for an
// out-of-range index, matching a machine that is simply gone).
func (g *Group) BackupState(i int) BackupState {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, err := g.backupAt(i)
	if err != nil {
		return StateCrashed
	}
	return b.state
}

// snapshotGateLocked captures the departure point of a backup leaving the
// live stream: the per-region dirty epochs, the committed count, and
// whether any bytes destined for it were still coalescing.
func (g *Group) snapshotGateLocked(b *backup) {
	epochs := make(map[string]uint64)
	for _, r := range g.syncRegionsLocked() {
		if r.Dirty != nil {
			epochs[r.Name] = r.Dirty.Seq()
		}
	}
	b.gateEpochs = epochs
	b.gateCommitted = g.store.Committed()
	b.gateGen = g.generation
	b.cleanGate = g.primary.MC == nil || g.primary.MC.PendingBufs() == 0
}

// PauseBackup partitions backup i away from the SAN: it stops receiving
// (and acknowledging) until repaired. Its applied prefix freezes at the
// pause point, which is how tests — and commodity clusters — get replicas
// at unequal progress. Pausing a mid-join backup aborts the transfer and
// leaves the copy fuzzy.
func (g *Group) PauseBackup(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, err := g.backupAt(i)
	if err != nil {
		return err
	}
	g.pauseBackupLocked(b)
	return nil
}

// pauseBackupLocked partitions one backup away from the SAN (shared by
// PauseBackup and PartitionPrimary, which severs every backup at once).
func (g *Group) pauseBackupLocked(b *backup) {
	switch b.state {
	case StateCrashed, StatePaused:
		return
	case StateInSync:
		if g.redo != nil {
			g.redo.applyDelivered(b) // capture the delivered prefix first
		}
		g.snapshotGateLocked(b)
	case StateSyncing, StateCatchingUp:
		g.abortJobLocked(b)
	case StateGated:
		// Keep the earlier snapshot: the gap began at the original pause.
	}
	if g.autop != nil {
		g.autop.noteFault(b.node.Name, g.primary.Clock.Now())
	}
	// A partition is not a power loss: the replica's WAL closes cleanly
	// at its frozen prefix.
	g.durDropBackupLocked(b, true)
	b.setState(StatePaused)
}

// ResumeBackup reconnects a paused backup. It stays Gated — applying a
// stream with a gap would tear its copy — until RepairAsync re-enrolls it,
// shipping only the delta its dirty-epoch snapshot names (or nothing at
// all when the gap is provably empty).
func (g *Group) ResumeBackup(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, err := g.backupAt(i)
	if err != nil {
		return err
	}
	if b.state != StatePaused {
		return nil
	}
	b.setState(StateGated)
	return nil
}

// CrashBackup kills backup i: it stops receiving, never acknowledges, and
// is not eligible for promotion. A mid-join victim's transfer is aborted.
func (g *Group) CrashBackup(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, err := g.backupAt(i)
	if err != nil {
		return err
	}
	if b.state == StateCrashed {
		return nil
	}
	if b.joining() {
		g.abortJobLocked(b)
	}
	if g.autop != nil {
		g.autop.noteFault(b.node.Name, g.primary.Clock.Now())
	}
	g.durDropBackupLocked(b, false)
	b.setState(StateCrashed)
	return nil
}

// AppliedTxns returns how many transactions backup i has applied (active
// era; passive backups report the committed count in their control copy).
func (g *Group) AppliedTxns(i int) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, err := g.backupAt(i)
	if err != nil {
		return 0
	}
	return g.backupProgress(b)
}

// backupProgress returns the backup's committed-prefix length.
func (g *Group) backupProgress(b *backup) uint64 {
	if g.redo != nil {
		if b.receiving() {
			g.redo.applyDelivered(b)
		}
		return b.appliedTxns
	}
	ctl := b.node.Space.ByName(vista.RegionControl)
	if ctl == nil {
		return 0
	}
	var buf [8]byte
	ctl.ReadRaw(0, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}
