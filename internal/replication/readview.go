// Replica read views: backups serving reads under an explicit consistency
// knob. The paper buys K backups for fault tolerance and then leaves them
// idle between failures; with the active scheme every backup's database
// copy is transaction-consistent at each applied redo record, so the idle
// capacity can serve reads — the only question is how stale a view the
// caller will tolerate.
//
// The redo stream gives every commit a dense, totally ordered sequence
// number (the store's committed counter on the primary, the applied-record
// counter on a backup), so the three classic consistency disciplines
// reduce to monotonic integer comparisons instead of vector clocks:
//
//	ReadYourWrites  serve from any backup whose applied sequence has
//	                reached the caller's commit token; else the primary.
//	ReadBounded     serve from any backup whose applied sequence is
//	                within d commit sequences of the primary's committed
//	                counter; else the primary.
//	ReadQuorum      inspect a majority of the backups — ceil((K+1)/2),
//	                which intersects every commit quorum — take the
//	                max-sequence view, and repair the laggards.
//
// Only a fully enrolled replica may serve: InSync state AND the current
// membership epoch, the same predicate that gates acknowledgements. A
// mid-join replica (Syncing/CatchingUp) holds a fuzzy copy; a Paused or
// Gated replica holds a consistent but frozen prefix whose lag is
// unbounded; neither is a read view. Read repair never writes data back —
// it pumps the laggard's applyDelivered, an ordered-prefix advance of
// records the primary already published, so a repair can never plant bytes
// that a failover would have discarded.
package replication

import (
	"errors"

	"repro/internal/sim"
	"repro/internal/vista"
)

// ErrReplicaUnavailable is returned when a read pinned to a specific
// replica cannot be served by it: the group runs the passive scheme (whose
// mirror copies are torn mid-transaction), the replica is not fully
// enrolled (mid-join, paused, gated, crashed, or epoch-fenced), or its
// applied sequence cannot satisfy the requested consistency mode.
var ErrReplicaUnavailable = errors.New("replication: replica cannot serve this read")

// ReadMode selects the consistency discipline of a routed read.
type ReadMode int

const (
	// ReadPrimary serializes the read through the primary (the default;
	// identical to Group.Read).
	ReadPrimary ReadMode = iota
	// ReadYourWrites serves from a backup whose applied sequence has
	// reached ReadSpec.MinSeq, else the primary.
	ReadYourWrites
	// ReadBounded serves from a backup within ReadSpec.Bound commit
	// sequences of the primary's committed counter, else the primary.
	ReadBounded
	// ReadQuorum reads a majority of the replica group and serves the
	// max-sequence view, repairing laggards.
	ReadQuorum
)

// String names the mode.
func (m ReadMode) String() string {
	switch m {
	case ReadPrimary:
		return "primary"
	case ReadYourWrites:
		return "ryw"
	case ReadBounded:
		return "bounded"
	case ReadQuorum:
		return "quorum"
	default:
		return "ReadMode(?)"
	}
}

// Valid reports whether m is a defined read mode.
func (m ReadMode) Valid() bool { return m >= ReadPrimary && m <= ReadQuorum }

// ReadSpec describes one routed read.
type ReadSpec struct {
	Mode ReadMode
	// MinSeq is the caller's commit-sequence token floor (ReadYourWrites).
	MinSeq uint64
	// Bound is the tolerated lag in commit sequences (ReadBounded).
	Bound uint64
	// Replica pins the read: 0 routes automatically, r ≥ 1 serves only
	// from backup r-1 (after re-checking the mode's constraint there).
	Replica int
}

// ReadResult reports where a routed read was served.
type ReadResult struct {
	// Replica is 0 when the primary served, r ≥ 1 when backup r-1 did.
	Replica int
	// Seq is the serving view's commit sequence (the applied-record count
	// of the backup, or the committed counter when the primary served).
	Seq uint64
	// Primary is the primary's committed counter at routing time.
	Primary uint64
	// Repaired counts quorum-read laggards whose applied prefix the read
	// pumped forward.
	Repaired int
}

// servableLocked reports whether backup b may serve reads: fully enrolled
// in the current membership era — exactly the acknowledgement predicate.
func (g *Group) servableLocked(b *backup) bool {
	return b.state == StateInSync && b.epoch == g.epoch
}

// readBackupLocked performs the charged read on backup b's database copy,
// pinning the replica's measured-interval origin on its first served read.
func (g *Group) readBackupLocked(b *backup, off int, dst []byte) error {
	db := b.node.Space.ByName(vista.RegionDB)
	if db == nil || off < 0 || off+len(dst) > db.Size() {
		return vista.ErrBounds
	}
	if b.readGen != g.measureGen {
		b.readGen = g.measureGen
		b.readOrigin = b.node.Clock.Now()
	}
	b.node.Acc.Read(db.Base+uint64(off), dst)
	return nil
}

// ReadAt serves a read from backup replica's applied view and returns the
// view's commit sequence. Valid only under the active scheme and only from
// a fully enrolled (InSync, current-epoch) replica — a mid-join replica
// never serves. The read observes the freshest applied prefix and charges
// the backup's own CPU, not the primary's.
func (g *Group) ReadAt(replica, off int, dst []byte) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.crashed {
		return 0, ErrCrashed
	}
	b, err := g.backupAt(replica)
	if err != nil {
		return 0, err
	}
	if g.redo == nil || !g.servableLocked(b) {
		return 0, ErrReplicaUnavailable
	}
	g.redo.applyDelivered(b)
	if err := g.readBackupLocked(b, off, dst); err != nil {
		return 0, err
	}
	return b.appliedTxns, nil
}

// RouteRead serves one read under spec's consistency discipline, picking a
// replica (or falling back to the primary) as the mode demands.
func (g *Group) RouteRead(off int, dst []byte, spec ReadSpec) (ReadResult, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.crashed {
		return ReadResult{}, ErrCrashed
	}
	primary := g.store.Committed()

	if spec.Replica > 0 {
		res, err := g.pinnedReadLocked(off, dst, spec, primary)
		g.observeRoute(res, err, spec.Mode)
		return res, err
	}
	if spec.Mode == ReadPrimary || g.redo == nil || len(g.backups) == 0 {
		res, err := g.primaryReadLocked(off, dst, primary)
		g.observeRoute(res, err, ReadPrimary)
		return res, err
	}
	switch spec.Mode {
	case ReadYourWrites, ReadBounded:
		n := len(g.backups)
		start := g.readCursor
		g.readCursor++
		for i := 0; i < n; i++ {
			r := int((start + uint64(i)) % uint64(n))
			b := g.backups[r]
			if !g.servableLocked(b) {
				continue
			}
			g.redo.applyDelivered(b)
			seq := b.appliedTxns
			if spec.Mode == ReadYourWrites && seq < spec.MinSeq {
				continue
			}
			if spec.Mode == ReadBounded && primary-seq > spec.Bound {
				continue
			}
			if err := g.readBackupLocked(b, off, dst); err != nil {
				return ReadResult{}, err
			}
			res := ReadResult{Replica: r + 1, Seq: seq, Primary: primary}
			g.observeRoute(res, nil, spec.Mode)
			return res, nil
		}
		// No backup can satisfy the mode right now (all lagging, fenced,
		// or mid-join): the primary trivially can.
		res, err := g.primaryReadLocked(off, dst, primary)
		g.observeRoute(res, err, spec.Mode)
		return res, err
	case ReadQuorum:
		res, err := g.quorumReadLocked(off, dst, primary)
		g.observeRoute(res, err, spec.Mode)
		return res, err
	default:
		res, err := g.primaryReadLocked(off, dst, primary)
		g.observeRoute(res, err, ReadPrimary)
		return res, err
	}
}

// observeRoute counts one routed read's outcome: a replica serve, a
// primary serve by choice, or a primary fallback under a replica-seeking
// mode. Quorum-read repair pumps count separately.
func (g *Group) observeRoute(res ReadResult, err error, mode ReadMode) {
	o := g.obs
	if o == nil || err != nil {
		return
	}
	switch {
	case res.Replica > 0:
		o.readReplica.Inc()
	case mode == ReadPrimary:
		o.readPrimary.Inc()
	default:
		o.readFallback.Inc()
	}
	if res.Repaired > 0 {
		o.readRepaired.Add(uint64(res.Repaired))
	}
}

// primaryReadLocked serves the read through the primary, serialized with
// the group's transactions exactly like Group.Read.
func (g *Group) primaryReadLocked(off int, dst []byte, primary uint64) (ReadResult, error) {
	if err := g.store.Read(off, dst); err != nil {
		return ReadResult{}, err
	}
	return ReadResult{Replica: 0, Seq: primary, Primary: primary}, nil
}

// pinnedReadLocked serves from exactly backup spec.Replica-1, re-checking
// the mode's constraint there; it never falls back (the caller owns that
// policy).
func (g *Group) pinnedReadLocked(off int, dst []byte, spec ReadSpec, primary uint64) (ReadResult, error) {
	b, err := g.backupAt(spec.Replica - 1)
	if err != nil {
		return ReadResult{}, ErrReplicaUnavailable
	}
	if g.redo == nil || !g.servableLocked(b) {
		return ReadResult{}, ErrReplicaUnavailable
	}
	g.redo.applyDelivered(b)
	seq := b.appliedTxns
	if spec.Mode == ReadYourWrites && seq < spec.MinSeq {
		return ReadResult{}, ErrReplicaUnavailable
	}
	if spec.Mode == ReadBounded && primary-seq > spec.Bound {
		return ReadResult{}, ErrReplicaUnavailable
	}
	if err := g.readBackupLocked(b, off, dst); err != nil {
		return ReadResult{}, err
	}
	return ReadResult{Replica: spec.Replica, Seq: seq, Primary: primary}, nil
}

// quorumReadLocked reads a majority of the replica group: it inspects (and
// pumps — the read repair) ceil((K+1)/2) enrolled backup views, rotating
// which ones across calls, and serves from the max-sequence member. Any
// majority of the backups intersects every commit quorum, so the max view
// has seen every acknowledged commit. When fewer enrolled backups exist,
// the primary completes the quorum and serves (it is the freshest replica
// by definition); the available laggards are still repaired.
func (g *Group) quorumReadLocked(off int, dst []byte, primary uint64) (ReadResult, error) {
	need := QuorumAcks(g.cfg.Backups)
	n := len(g.backups)
	start := g.readCursor
	g.readCursor++

	var (
		best     *backup
		bestIdx  int
		maxSeq   uint64
		views    int
		repaired int // views whose applied prefix the pump advanced
	)
	for i := 0; i < n && views < need; i++ {
		r := int((start + uint64(i)) % uint64(n))
		b := g.backups[r]
		if !g.servableLocked(b) {
			continue
		}
		before := b.appliedTxns
		g.redo.applyDelivered(b) // the repair pump: ordered-prefix advance
		if b.appliedTxns > before {
			repaired++
		}
		views++
		seq := b.appliedTxns
		if best == nil || seq > maxSeq {
			best, bestIdx, maxSeq = b, r, seq
		}
	}
	if views < need {
		// The primary completes the quorum and, as the max-sequence view,
		// serves the read.
		res, err := g.primaryReadLocked(off, dst, primary)
		if err != nil {
			return res, err
		}
		res.Repaired = repaired
		return res, nil
	}
	if err := g.readBackupLocked(best, off, dst); err != nil {
		return ReadResult{}, err
	}
	return ReadResult{Replica: bestIdx + 1, Seq: maxSeq, Primary: primary, Repaired: repaired}, nil
}

// ReplicaElapsed returns the longest simulated time any node of the group
// — primary or read-serving backup — has accumulated since the last
// ResetMeasurement. With reads routed to backups the primary and the K
// read views run in parallel (like shards of a ShardedCluster), so the
// interval's wall time is the max over nodes, not the sum. Identical to
// Elapsed when no backup served a read this interval.
func (g *Group) ReplicaElapsed() sim.Time {
	e := g.Elapsed()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, b := range g.backups {
		if b.readGen != g.measureGen {
			continue
		}
		if be := b.node.Clock.Now() - b.readOrigin; be > e {
			e = be
		}
	}
	return e
}
