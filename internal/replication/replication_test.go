package replication_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/tpc"
	"repro/internal/vista"
)

const testDB = 8 << 20

func newPair(t *testing.T, mode replication.Mode, v vista.Version) *replication.Pair {
	t.Helper()
	pair, err := replication.NewPair(replication.Config{
		Mode:  mode,
		Store: vista.Config{Version: v, DBSize: testDB},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

func TestNewPairValidation(t *testing.T) {
	if _, err := replication.NewPair(replication.Config{
		Mode:  replication.Active,
		Store: vista.Config{Version: vista.V1MirrorCopy, DBSize: testDB},
	}); !errors.Is(err, replication.ErrActiveNeedV3) {
		t.Fatalf("active+V1: %v", err)
	}
	if _, err := replication.NewPair(replication.Config{
		Mode:  replication.Mode(42),
		Store: vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
	}); err == nil {
		t.Fatal("invalid mode accepted")
	}
	if _, err := replication.NewPair(replication.Config{
		Mode:  replication.Standalone,
		Store: vista.Config{Version: vista.V3InlineLog, DBSize: -1},
	}); err == nil {
		t.Fatal("invalid store config accepted")
	}
}

func TestModeString(t *testing.T) {
	if replication.Standalone.String() != "Standalone" ||
		replication.Passive.String() != "Passive" ||
		replication.Active.String() != "Active" {
		t.Fatal("mode names changed")
	}
}

func TestFailoverPreconditions(t *testing.T) {
	standalone := newPair(t, replication.Standalone, vista.V3InlineLog)
	if err := standalone.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := standalone.Failover(); !errors.Is(err, replication.ErrNoBackup) {
		t.Fatalf("standalone failover: %v", err)
	}

	pair := newPair(t, replication.Passive, vista.V3InlineLog)
	if _, err := pair.Failover(); !errors.Is(err, replication.ErrNotCrashed) {
		t.Fatalf("failover before crash: %v", err)
	}
	if err := pair.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := pair.Crash(); !errors.Is(err, replication.ErrCrashed) {
		t.Fatalf("double crash: %v", err)
	}
	if _, err := pair.Begin(); !errors.Is(err, replication.ErrCrashed) {
		t.Fatalf("begin after crash: %v", err)
	}
	if _, err := pair.Failover(); err != nil {
		t.Fatal(err)
	}
	// The group rewires itself at failover: a second Failover needs a new
	// crash first.
	if _, err := pair.Failover(); !errors.Is(err, replication.ErrNotCrashed) {
		t.Fatalf("double failover: %v", err)
	}
	if pair.Takeover() == nil {
		t.Fatal("Takeover() nil after failover")
	}
}

// driveAndCrash commits `commits` Debit-Credit transactions, optionally
// schedules a packet-level crash mid-run, then crashes and fails over.
// It returns the takeover store and the workload options used (for
// reconstructing reference states via tpc.Replay).
func driveAndCrash(t *testing.T, mode replication.Mode, v vista.Version,
	commits int64, crashAfterPackets int64) (*vista.Store, tpc.Options) {
	t.Helper()
	pair := newPair(t, mode, v)
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	opts := tpc.Options{Txns: commits, Seed: 77}
	if crashAfterPackets > 0 {
		pair.Primary().MC.CrashAfterPackets(crashAfterPackets)
	}
	if _, err := tpc.Run(pair, w, opts); err != nil {
		t.Fatal(err)
	}
	if err := pair.Crash(); err != nil {
		t.Fatal(err)
	}
	st, err := pair.Failover()
	if err != nil {
		t.Fatal(err)
	}
	return st, opts
}

// verifyCommittedPrefix checks 1-safe semantics: the takeover store serves
// the state after exactly K committed transactions for its claimed K, and
// K is within the window of the primary's commit count. For the mirroring
// versions the transaction that was mid-commit may additionally be torn
// across its declared ranges; tornOK widens the check accordingly.
func verifyCommittedPrefix(t *testing.T, st *vista.Store, opts tpc.Options, primaryCommits int64, window int64, tornOK bool) {
	t.Helper()
	k := int64(st.Committed())
	if k > primaryCommits {
		t.Fatalf("backup claims %d commits, primary did %d", k, primaryCommits)
	}
	if primaryCommits-k > window {
		t.Fatalf("backup lost %d commits, window allows %d", primaryCommits-k, window)
	}

	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tpc.Replay(w, opts, k)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testDB)
	st.ReadRaw(0, got)
	if bytes.Equal(got, ref) {
		return
	}
	if !tornOK {
		t.Fatalf("takeover state does not match reference after %d commits (first diff at %d)",
			k, firstDiff(got, ref))
	}
	// Torn-tail tolerance: every divergent byte must be explainable by
	// transaction K+1 — i.e. it must match the state after K+1 commits.
	w2, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	next, err := tpc.Replay(w2, opts, k+1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != ref[i] && got[i] != next[i] {
			t.Fatalf("byte %d (=%#x) matches neither state K (%#x) nor K+1 (%#x)",
				i, got[i], ref[i], next[i])
		}
	}
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

func TestFailoverCleanCrash(t *testing.T) {
	// Crash between transactions: everything except at most the last
	// few in-buffer commits survives.
	cases := []struct {
		mode   replication.Mode
		v      vista.Version
		window int64
		torn   bool
	}{
		{replication.Passive, vista.V0Vista, 4, false},
		{replication.Passive, vista.V1MirrorCopy, 4, true},
		{replication.Passive, vista.V2MirrorDiff, 4, true},
		{replication.Passive, vista.V3InlineLog, 4, false},
		{replication.Active, vista.V3InlineLog, 4, false},
	}
	for _, c := range cases {
		t.Run(c.mode.String()+"/"+c.v.String(), func(t *testing.T) {
			const commits = 400
			st, opts := driveAndCrash(t, c.mode, c.v, commits, 0)
			verifyCommittedPrefix(t, st, opts, commits, c.window, c.torn)
		})
	}
}

func TestFailoverMidStreamCrash(t *testing.T) {
	// Packet-level injection: the backup's view freezes at an arbitrary
	// packet boundary, very likely mid-commit.
	cases := []struct {
		mode   replication.Mode
		v      vista.Version
		window int64
		torn   bool
	}{
		{replication.Passive, vista.V0Vista, 8, true},
		{replication.Passive, vista.V1MirrorCopy, 8, true},
		{replication.Passive, vista.V2MirrorDiff, 8, true},
		{replication.Passive, vista.V3InlineLog, 8, true},
		{replication.Active, vista.V3InlineLog, 8, false},
	}
	for _, c := range cases {
		for _, pkts := range []int64{50, 137, 503, 1009} {
			st, opts := driveAndCrash(t, c.mode, c.v, 300, pkts)
			verifyCommittedPrefix(t, st, opts, 300, 300, c.torn)
			_ = st
			_ = pkts
		}
	}
}

func TestTakeoverServesNewTransactions(t *testing.T) {
	st, _ := driveAndCrash(t, replication.Passive, vista.V3InlineLog, 100, 0)
	tx, err := st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(0, 16); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(0, []byte("life-after-death")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	st.ReadRaw(0, got)
	if string(got) != "life-after-death" {
		t.Fatalf("takeover store write lost: %q", got)
	}
}

func TestActiveRingWraparound(t *testing.T) {
	// A ring far smaller than the run's redo volume forces wrap markers
	// and space reuse; state must stay exact.
	params := sim.Default()
	params.RingBytes = 4096
	pair, err := replication.NewPair(replication.Config{
		Mode:   replication.Active,
		Store:  vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Params: &params,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	opts := tpc.Options{Txns: 500, Seed: 3}
	if _, err := tpc.Run(pair, w, opts); err != nil {
		t.Fatal(err)
	}
	if err := pair.Crash(); err != nil {
		t.Fatal(err)
	}
	st, err := pair.Failover()
	if err != nil {
		t.Fatal(err)
	}
	verifyCommittedPrefix(t, st, opts, 500, 4, false)
}

func TestPassiveBackupSeesNoTrafficWhenStandalone(t *testing.T) {
	pair := newPair(t, replication.Standalone, vista.V3InlineLog)
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tpc.Run(pair, w, tpc.Options{Txns: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetTotal() != 0 {
		t.Fatalf("standalone run shipped %d bytes", res.NetTotal())
	}
	if pair.Backup() != nil {
		t.Fatal("standalone pair has a backup node")
	}
}

func TestNetBytesCategories(t *testing.T) {
	pair := newPair(t, replication.Passive, vista.V3InlineLog)
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpc.Run(pair, w, tpc.Options{Txns: 200, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	pair.Settle(10 * sim.Microsecond)
	n := pair.NetBytes()
	for _, c := range []struct {
		name string
		got  int64
	}{
		{"modified", n[1]}, {"undo", n[2]}, {"meta", n[3]},
	} {
		if c.got <= 0 {
			t.Fatalf("category %s shipped %d bytes", c.name, c.got)
		}
	}
}

func TestSettleMakesCommitsDurable(t *testing.T) {
	for _, mode := range []replication.Mode{replication.Passive, replication.Active} {
		pair := newPair(t, mode, vista.V3InlineLog)
		w, err := tpc.NewDebitCredit(testDB)
		if err != nil {
			t.Fatal(err)
		}
		opts := tpc.Options{Txns: 120, Seed: 9}
		if _, err := tpc.Run(pair, w, opts); err != nil {
			t.Fatal(err)
		}
		pair.Settle(20 * sim.Microsecond)
		if err := pair.Crash(); err != nil {
			t.Fatal(err)
		}
		st, err := pair.Failover()
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Committed(); got != 120 {
			t.Fatalf("%s: %d commits survived a settled crash, want all 120", mode, got)
		}
		verifyCommittedPrefix(t, st, opts, 120, 0, false)
	}
}
