package replication_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"testing"

	"repro/internal/replication"
	"repro/internal/vista"
)

const durDB = 1 << 16

// durGroup opens a group with the disk tier on dir.
func durGroup(t *testing.T, dir string, mode replication.Mode, backups int, safety replication.Safety, batch int) *replication.Group {
	t.Helper()
	g, err := replication.NewGroup(replication.Config{
		Mode:        mode,
		Store:       vista.Config{Version: vista.V3InlineLog, DBSize: durDB},
		Backups:     backups,
		Safety:      safety,
		CommitBatch: batch,
		Durability: replication.DurabilityConfig{
			Dir:           dir,
			SnapshotEvery: 40,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// durCommit runs transaction k of the deterministic workload: a 16-byte
// self-describing value into slot k mod 61.
func durCommit(t *testing.T, g *replication.Group, k uint64) {
	t.Helper()
	tx, err := g.Begin()
	if err != nil {
		t.Fatal(err)
	}
	off := int(k%61) * 64
	var val [16]byte
	for i := range val[:8] {
		val[i] = byte(k >> (8 * i))
		val[i+8] = ^val[i]
	}
	if err := tx.SetRange(off, 64); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(off, val[:]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// durOracle is the expected image after transactions 1..seq.
func durOracle(seq uint64) []byte {
	img := make([]byte, durDB)
	for k := uint64(1); k <= seq; k++ {
		off := int(k%61) * 64
		for i := 0; i < 8; i++ {
			img[off+i] = byte(k >> (8 * i))
			img[off+i+8] = ^img[off+i]
		}
	}
	return img
}

func durCheckImage(t *testing.T, g *replication.Group, seq uint64) {
	t.Helper()
	got := make([]byte, durDB)
	g.ReadRaw(0, got)
	if !bytes.Equal(got, durOracle(seq)) {
		t.Fatalf("recovered image does not match the oracle at seq %d", seq)
	}
}

func TestDurabilityOffByDefault(t *testing.T) {
	g := newGroup(t, replication.Passive, 1, replication.TwoSafe)
	if st := g.Durability(); st.Enabled {
		t.Fatal("durability enabled without configuration")
	}
	if err := g.PowerFail(); !errors.Is(err, replication.ErrNoDurability) {
		t.Fatalf("PowerFail without durability: err = %v", err)
	}
	if g.WALDirs() != nil || g.WALTails() != nil {
		t.Fatal("WAL handles exist without durability")
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close without durability: %v", err)
	}
}

// TestDurabilityColdRestart: a clean shutdown (Settle makes everything
// durable) followed by a full-cluster power loss recovers every
// transaction on reopen, across Standalone and a replicated mode.
func TestDurabilityColdRestart(t *testing.T) {
	cases := []struct {
		name    string
		mode    replication.Mode
		backups int
		safety  replication.Safety
	}{
		{"standalone", replication.Standalone, 0, replication.OneSafe},
		{"passive-2safe", replication.Passive, 2, replication.TwoSafe},
		{"active-quorum", replication.Active, 2, replication.QuorumSafe},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			g := durGroup(t, dir, tc.mode, tc.backups, tc.safety, 8)
			const n = 123
			for k := uint64(1); k <= n; k++ {
				durCommit(t, g, k)
			}
			g.Settle(g.QuiesceGrace())
			st := g.Durability()
			if !st.Enabled || st.Seq != n || st.DurableSeq != n {
				t.Fatalf("status seq=%d durable=%d, want %d durable", st.Seq, st.DurableSeq, n)
			}
			if err := g.PowerFail(); err != nil {
				t.Fatal(err)
			}
			if err := g.PowerFail(); !errors.Is(err, replication.ErrCrashed) {
				t.Fatalf("second PowerFail: err = %v", err)
			}

			g2 := durGroup(t, dir, tc.mode, tc.backups, tc.safety, 8)
			rec := g2.Durability().Recovery
			if !rec.Recovered || rec.Seq != n {
				t.Fatalf("recovery = %+v, want recovered at seq %d", rec, n)
			}
			if got := g2.Committed(); got != n {
				t.Fatalf("recovered committed count %d, want %d", got, n)
			}
			durCheckImage(t, g2, n)
			// The restarted group must serve and replicate as usual.
			durCommit(t, g2, n+1)
			g2.Settle(g2.QuiesceGrace())
			durCheckImage(t, g2, n+1)
			if err := g2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurabilityTornTail: a power loss mid-load, with the unsynced tail
// of every replica's live segment torn, bit-flipped or zero-filled,
// recovers at least the synced (acked-durable) prefix and an image that
// exactly matches the oracle at whatever sequence it recovered.
func TestDurabilityTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBEEF))
	for it := 0; it < 6; it++ {
		dir := t.TempDir()
		g := durGroup(t, dir, replication.Passive, 2, replication.TwoSafe, 8)
		total := uint64(90 + rng.Intn(80))
		for k := uint64(1); k <= total; k++ {
			durCommit(t, g, k)
		}
		durable := g.Durability().DurableSeq
		if err := g.PowerFail(); err != nil {
			t.Fatal(err)
		}
		for _, tail := range g.WALTails() {
			tearSegmentTail(t, rng, tail.Path, tail.Synced)
		}

		g2 := durGroup(t, dir, replication.Passive, 2, replication.TwoSafe, 8)
		got := g2.Committed()
		if got < durable || got > total {
			t.Fatalf("iter %d: recovered seq %d outside [%d,%d]", it, got, durable, total)
		}
		durCheckImage(t, g2, got)
		if err := g2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// tearSegmentTail corrupts a segment strictly past its synced offset.
func tearSegmentTail(t *testing.T, rng *rand.Rand, path string, synced int64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil || info.Size() <= synced {
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tail := buf[synced:]
	switch rng.Intn(4) {
	case 0: // intact
	case 1: // torn
		buf = buf[:synced+int64(rng.Intn(len(tail)+1))]
	case 2: // bit flips
		for i := 0; i < 3; i++ {
			tail[rng.Intn(len(tail))] ^= 1 << uint(rng.Intn(8))
		}
	case 3: // zero-filled range
		from := rng.Intn(len(tail))
		to := from + rng.Intn(len(tail)-from) + 1
		for i := from; i < to; i++ {
			tail[i] = 0
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDurabilityFailoverEraFencing: after a crash and failover, the
// promoted lineage keeps writing under a new era; a later power loss
// recovers the promoted lineage — never the deposed primary's orphaned
// tail, even though its directory may hold higher old-era sequences.
func TestDurabilityFailoverEraFencing(t *testing.T) {
	dir := t.TempDir()
	g := durGroup(t, dir, replication.Passive, 2, replication.TwoSafe, 4)
	for k := uint64(1); k <= 50; k++ {
		durCommit(t, g, k)
	}
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Failover(); err != nil {
		t.Fatal(err)
	}
	promoted := g.Committed()
	for k := promoted + 1; k <= promoted+30; k++ {
		durCommit(t, g, k)
	}
	g.Settle(g.QuiesceGrace())
	want := promoted + 30
	if err := g.PowerFail(); err != nil {
		t.Fatal(err)
	}

	g2 := durGroup(t, dir, replication.Passive, 2, replication.TwoSafe, 4)
	if got := g2.Committed(); got != want {
		t.Fatalf("recovered committed %d, want the promoted lineage at %d", got, want)
	}
	durCheckImage(t, g2, want)
	if err := g2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurabilityRestartRejoinsLaggard: a backup whose directory froze at
// an old prefix (it was paused well before the power loss) lags the
// winner at cold restart and must rejoin through the chunked transfer
// engine; the restarted group emerges at full redundancy.
func TestDurabilityRestartRejoinsLaggard(t *testing.T) {
	// 1-safe, so the primary keeps committing while backup 1 is paused.
	dir := t.TempDir()
	g := durGroup(t, dir, replication.Passive, 2, replication.OneSafe, 4)
	for k := uint64(1); k <= 30; k++ {
		durCommit(t, g, k)
	}
	if err := g.PauseBackup(1); err != nil {
		t.Fatal(err)
	}
	for k := uint64(31); k <= 80; k++ {
		durCommit(t, g, k)
	}
	g.Settle(g.QuiesceGrace())
	if err := g.PowerFail(); err != nil {
		t.Fatal(err)
	}

	g2 := durGroup(t, dir, replication.Passive, 2, replication.OneSafe, 4)
	rec := g2.Durability().Recovery
	if !rec.Recovered || rec.Seq != 80 {
		t.Fatalf("recovery = %+v, want seq 80", rec)
	}
	if rec.Rejoined == 0 {
		t.Fatalf("recovery = %+v, want at least one chunked rejoin", rec)
	}
	for i := 0; i < 2; i++ {
		if st := g2.BackupState(i); st != replication.StateInSync {
			t.Fatalf("backup %d restarted in state %v", i, st)
		}
	}
	durCheckImage(t, g2, 80)
	// The rejoined replica participates in durability again: another
	// clean restart recovers through it too.
	durCommit(t, g2, 81)
	g2.Settle(g2.QuiesceGrace())
	if err := g2.PowerFail(); err != nil {
		t.Fatal(err)
	}
	g3 := durGroup(t, dir, replication.Passive, 2, replication.OneSafe, 4)
	if got := g3.Committed(); got != 81 {
		t.Fatalf("second restart recovered %d, want 81", got)
	}
	if err := g3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurabilityMetricsUnchanged: with the tier off, nothing differs;
// with it on, the simulated clock and SAN counters are bit-for-bit those
// of a group without it — the disk is host-side bookkeeping only.
func TestDurabilityMetricsUnchanged(t *testing.T) {
	run := func(dir string) (uint64, int64) {
		cfg := replication.Config{
			Mode:        replication.Passive,
			Store:       vista.Config{Version: vista.V3InlineLog, DBSize: durDB},
			Backups:     2,
			Safety:      replication.TwoSafe,
			CommitBatch: 8,
		}
		if dir != "" {
			cfg.Durability = replication.DurabilityConfig{Dir: dir, SnapshotEvery: 20}
		}
		g, err := replication.NewGroup(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= 100; k++ {
			durCommit(t, g, k)
		}
		g.Settle(g.QuiesceGrace())
		var net int64
		for _, v := range g.NetBytes() {
			net += v
		}
		return uint64(g.Elapsed()), net
	}
	bareT, bareN := run("")
	durT, durN := run(t.TempDir())
	if bareT != durT || bareN != durN {
		t.Fatalf("durability perturbed the simulation: elapsed %d vs %d, net %d vs %d",
			bareT, durT, bareN, durN)
	}
}
