// Package replication builds the paper's primary-backup configurations out
// of the substrate packages: a primary transaction server whose state is
// replicated to a backup node either passively (write-through doubling of
// the engine's own structures, Section 5) or actively (a redo-log circular
// buffer consumed by the backup CPU, Section 6), with crash orchestration
// and failover.
//
// State truth is end-to-end real: crash the primary at any point and the
// backup's regions contain exactly what the modelled SAN delivered; Failover
// runs the engine's recovery code over those bytes and produces a store
// serving the committed prefix (1-safe semantics).
package replication

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/memchannel"
	"repro/internal/rio"
	"repro/internal/sim"
)

// Node bundles one simulated machine: a CPU clock, a private cache
// hierarchy, an address space in reliable memory, and a Memory Channel
// attachment.
type Node struct {
	Name  string
	Clock *sim.Clock
	Cache *cache.Cache
	Space *mem.Space
	Rio   *rio.Memory
	Acc   *mem.Accessor
	MC    *memchannel.Node
}

// NewNode constructs a node. link may be nil for a machine that never
// transmits (a passive backup's CPU, a standalone server).
func NewNode(name string, p *sim.Params, link *sim.Link) *Node {
	clk := &sim.Clock{}
	ch := cache.New(p, clk)
	sp := mem.NewSpace()
	n := &Node{
		Name:  name,
		Clock: clk,
		Cache: ch,
		Space: sp,
		Rio:   rio.New(sp),
		Acc:   mem.NewAccessor(p, clk, ch, sp),
	}
	if link != nil {
		n.MC = memchannel.NewNode(p, clk, link)
		n.Acc.IO = n.MC
	}
	return n
}

// MapIdentity maps every write-through region of the node's space onto the
// same-named region of the destination space (the identity layout both
// sides of a pair share).
func (n *Node) MapIdentity(dst *mem.Space) error {
	if n.MC == nil {
		return fmt.Errorf("replication: node %q has no Memory Channel", n.Name)
	}
	for _, r := range n.Space.Regions() {
		if !r.WriteThrough && !r.IOOnly {
			continue
		}
		d := dst.ByName(r.Name)
		if d == nil {
			return fmt.Errorf("replication: destination lacks region %q", r.Name)
		}
		if d.Size() < r.Size() {
			return fmt.Errorf("replication: destination region %q smaller than source", r.Name)
		}
		if err := n.MC.Map(memchannel.Mapping{
			SrcBase: r.Base,
			Size:    r.Size(),
			Dst:     d,
		}); err != nil {
			return err
		}
	}
	return nil
}
