package replication_test

import (
	"bytes"
	"testing"

	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/vista"
)

// TestBackupServesConsistentReads: the active backup's database copy is
// transaction-consistent at every applied commit, so read-only queries can
// be offloaded to it while the primary keeps committing.
func TestBackupServesConsistentReads(t *testing.T) {
	pair := newPair(t, replication.Active, vista.V3InlineLog)

	write := func(slot int, fill byte) {
		tx, err := pair.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.SetRange(slot*64, 64); err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(slot*64, bytes.Repeat([]byte{fill}, 64)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		write(i, byte(i+1))
	}
	pair.Settle(10 * sim.Microsecond)

	if got := pair.BackupApplied(); got != 60 {
		t.Fatalf("backup applied %d of 60 commits after settle", got)
	}
	buf := make([]byte, 64)
	for i := 0; i < 60; i++ {
		if err := pair.BackupRead(i*64, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte(i + 1)}, 64)) {
			t.Fatalf("backup read of slot %d inconsistent", i)
		}
	}
	// Reads charge the backup's CPU, not the primary's.
	if pair.Backup().Clock.Now() == 0 {
		t.Fatal("backup reads charged no simulated time")
	}
}

func TestBackupReadValidation(t *testing.T) {
	passive := newPair(t, replication.Passive, vista.V3InlineLog)
	if err := passive.BackupRead(0, make([]byte, 8)); err == nil {
		t.Fatal("passive backup served a read")
	}
	active := newPair(t, replication.Active, vista.V3InlineLog)
	if err := active.BackupRead(testDB-4, make([]byte, 8)); err == nil {
		t.Fatal("out-of-bounds backup read accepted")
	}
}
