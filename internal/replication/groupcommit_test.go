package replication_test

import (
	"bytes"
	"testing"

	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/tpc"
	"repro/internal/vista"
)

const gcDB = 4 << 20

func newGCGroup(t *testing.T, safety replication.Safety, batch int, window sim.Dur) *replication.Group {
	t.Helper()
	g, err := replication.NewGroup(replication.Config{
		Mode:         replication.Active,
		Store:        vista.Config{Version: vista.V3InlineLog, DBSize: gcDB},
		Backups:      3,
		Safety:       safety,
		CommitBatch:  batch,
		CommitWindow: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// driveDC runs commits Debit-Credit transactions against the group.
func driveDC(t *testing.T, g *replication.Group, seed uint64, commits int) tpc.Workload {
	t.Helper()
	w, err := tpc.NewDebitCredit(gcDB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(g.Load); err != nil {
		t.Fatal(err)
	}
	r := tpc.NewRand(seed)
	for i := 0; i < commits; i++ {
		tx, err := g.Begin()
		if err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		if err := w.Txn(r, tx, int64(i)); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	return w
}

// TestGroupCommitQuorumZeroLoss is the acceptance property under group
// commit: batched quorum commits still lose nothing acknowledged. With
// CommitBatch=5 every fifth commit seals a batch, publishes one pointer
// and waits for the quorum once; crashing the primary plus one backup
// right after a sealed batch must preserve every flushed transaction, on
// exactly the replayed prefix state — the same invariant
// crashpoint_test.go checks for unbatched commits.
func TestGroupCommitQuorumZeroLoss(t *testing.T) {
	const seed = 77
	for _, tc := range []struct {
		name        string
		commits     int
		wantApplied int64
	}{
		// 40 = 8 full batches: everything flushed, everything survives.
		{"full-batches", 40, 40},
		// 43 leaves 3 commits in an open batch: they were never named by
		// a delivered pointer, so the survivors serve exactly the
		// 40-commit prefix — the batched 1-safe window, quantified.
		{"open-tail", 43, 40},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := newGCGroup(t, replication.QuorumSafe, 5, 0)
			w := driveDC(t, g, seed, tc.commits)

			if err := g.Crash(); err != nil {
				t.Fatal(err)
			}
			if err := g.CrashBackup(1); err != nil { // any minority
				t.Fatal(err)
			}
			st, err := g.Failover()
			if err != nil {
				t.Fatal(err)
			}
			k := int64(st.Committed())
			if k != tc.wantApplied {
				t.Fatalf("recovered %d commits, want %d", k, tc.wantApplied)
			}
			ref, err := tpc.Replay(w, tpc.Options{Seed: seed}, k)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, gcDB)
			st.ReadRaw(0, got)
			if !bytes.Equal(got, ref) {
				t.Fatalf("recovered state does not match the %d-commit prefix", k)
			}
		})
	}
}

// TestGroupCommitFlushShipsTail: Flush (and Settle) seal the open batch,
// so an explicit flush before the crash closes the batched loss window.
func TestGroupCommitFlushShipsTail(t *testing.T) {
	g := newGCGroup(t, replication.QuorumSafe, 5, 0)
	w := driveDC(t, g, 99, 43)
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}
	st, err := g.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Committed(); got != 43 {
		t.Fatalf("recovered %d commits after explicit Flush, want 43", got)
	}
	ref, err := tpc.Replay(w, tpc.Options{Seed: 99}, 43)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, gcDB)
	st.ReadRaw(0, got)
	if !bytes.Equal(got, ref) {
		t.Fatal("recovered state does not match the full prefix")
	}
}

// TestGroupCommitWindowDefers: with only a (large) CommitWindow set, the
// backups see nothing until the window closes or a flush forces the seal —
// the producer pointer is what publishes a batch.
func TestGroupCommitWindowDefers(t *testing.T) {
	g := newGCGroup(t, replication.OneSafe, 0, sim.Dur(10)*sim.Millisecond)
	driveDC(t, g, 5, 10)
	if got := g.BackupApplied(); got != 0 {
		t.Fatalf("backup applied %d transactions before any flush, want 0", got)
	}
	// Settle seals the batch and lets the (1-safe, unfenced) pointer
	// packet drain out of the write buffers to the backups.
	g.Settle(10 * sim.Microsecond)
	if got := g.BackupApplied(); got != 10 {
		t.Fatalf("backup applied %d transactions after Settle, want 10", got)
	}

	// A small window seals batches on its own: a commit landing past the
	// window flushes without any explicit Flush.
	g2 := newGCGroup(t, replication.OneSafe, 0, sim.Dur(1)*sim.Microsecond)
	driveDC(t, g2, 5, 10)
	if got := g2.BackupApplied(); got == 0 {
		t.Fatal("small commit window never sealed a batch")
	}
}

// TestGroupCommitRingCapacityFlush: reserved-but-unpublished redo bytes
// must never outgrow the ring. An unbounded window-only batch pushing
// multiple ring capacities of large records through the channel forces
// early capacity flushes instead of deadlocking the ring reservation
// (this panicked before the capacity guard in activeTx.Commit).
func TestGroupCommitRingCapacityFlush(t *testing.T) {
	// Window-only batching: batchLimit is unbounded, so only the
	// capacity guard seals batches. Default ring is 1 MB; 400 x 8 KB
	// records push ~3.3 MB through it.
	g := newGCGroup(t, replication.QuorumSafe, 0, sim.Dur(1)*sim.Second)
	const (
		txns    = 400
		payload = 8 << 10
	)
	buf := make([]byte, payload)
	for i := range buf {
		buf[i] = byte(i + 1)
	}
	for i := 0; i < txns; i++ {
		tx, err := g.Begin()
		if err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		if err := tx.SetRange(0, payload); err != nil {
			t.Fatalf("setrange %d: %v", i, err)
		}
		if err := tx.Write(0, buf); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	g.Settle(10 * sim.Microsecond)
	if got := g.BackupApplied(); got != txns {
		t.Fatalf("backup applied %d of %d large-record commits", got, txns)
	}
}

// TestGroupCommitAmortizesAcks: batching must make the strong safety
// levels cheaper in simulated time (one ack round trip per batch instead
// of per transaction) while leaving the transaction stream's final state
// identical.
func TestGroupCommitAmortizesAcks(t *testing.T) {
	elapsed := func(batch int) (sim.Time, []byte) {
		g := newGCGroup(t, replication.TwoSafe, batch, 0)
		g.ResetMeasurement()
		driveDC(t, g, 7, 60)
		if err := g.Flush(); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, gcDB)
		g.Store().ReadRaw(0, buf)
		return g.Elapsed(), buf
	}
	plainTime, plainState := elapsed(1)
	batchTime, batchState := elapsed(8)
	if !bytes.Equal(plainState, batchState) {
		t.Fatal("group commit changed the committed state")
	}
	if batchTime >= plainTime {
		t.Fatalf("2-safe with batch 8 took %v, not faster than unbatched %v", batchTime, plainTime)
	}
}

// TestGroupCommitOffMatchesUnbatched: CommitBatch 0 and 1 are the same
// per-commit pipeline, bit-for-bit in simulated time — group commit off by
// default preserves the unbatched numbers exactly.
func TestGroupCommitOffMatchesUnbatched(t *testing.T) {
	run := func(batch int) sim.Time {
		g := newGCGroup(t, replication.QuorumSafe, batch, 0)
		g.ResetMeasurement()
		driveDC(t, g, 11, 50)
		return g.Elapsed()
	}
	if t0, t1 := run(0), run(1); t0 != t1 {
		t.Fatalf("batch 0 elapsed %v != batch 1 elapsed %v", t0, t1)
	}
}
