package replication

import (
	"time"

	"repro/internal/obs"
)

// Metric names owned by internal/replication. The latency histograms
// record *simulated* nanoseconds (the tier's native time domain); the
// occupancy histogram records a dimensionless count. Full catalog with
// units in DESIGN.md §Observability.
const (
	// per-safety-level histogram name prefixes; the registered name has
	// the group's safety suffix ("1safe", "2safe", "quorum") appended.
	MetricCommitLatency = "repl.commit.latency." // sim ns, batch open → ack release
	MetricFlushLatency  = "repl.flush.latency."  // sim ns, seal → ack release

	MetricCommitTxns     = "repl.commit.txns"     // counter: committed transactions flushed
	MetricCommitBatches  = "repl.commit.batches"  // counter: sealed group-commit batches
	MetricBatchOccupancy = "repl.batch.occupancy" // hist: commits per sealed batch
	MetricReadPrimary    = "repl.read.primary"    // counter: reads served by the primary by choice
	MetricReadReplica    = "repl.read.replica"    // counter: reads served by a backup view
	MetricReadFallback   = "repl.read.fallback"   // counter: replica-mode reads that fell back to the primary
	MetricReadRepaired   = "repl.read.repaired"   // counter: laggard views pumped by quorum reads
	MetricBackupLag      = "repl.backup"          // gauge repl.backup<i>.lag: commit seqs behind the primary
	MetricWALTruncated   = "wal.truncate.bytes"   // counter: torn-tail bytes dropped at recovery
)

// safetyMetric is the Safety's metric-name suffix (Safety.String uses
// dashes, which metric names forbid).
func safetyMetric(s Safety) string {
	switch s {
	case TwoSafe:
		return "2safe"
	case QuorumSafe:
		return "quorum"
	default:
		return "1safe"
	}
}

// groupObs holds the group's pre-registered instruments. A nil
// *groupObs (no registry in Config.Obs) turns every instrumented site
// into a single predictable branch, leaving the simulated metrics
// bit-for-bit identical to an unobserved group — registration happens
// once at construction, and recording is atomic adds on pointers below,
// so the commit path stays allocation-free either way.
type groupObs struct {
	reg            *obs.Registry
	commitTxns     *obs.Counter
	commitBatches  *obs.Counter
	commitLatency  *obs.Hist
	flushLatency   *obs.Hist
	batchOccupancy *obs.Hist
	readPrimary    *obs.Counter
	readReplica    *obs.Counter
	readFallback   *obs.Counter
	readRepaired   *obs.Counter
	truncBytes     *obs.Counter
	backupLag      []*obs.Gauge
}

// newGroupObs registers the group's instrument set on reg (nil reg →
// nil groupObs, the off switch).
func newGroupObs(reg *obs.Registry, cfg Config) *groupObs {
	if reg == nil {
		return nil
	}
	suffix := safetyMetric(cfg.Safety)
	o := &groupObs{
		reg:            reg,
		commitTxns:     reg.Counter(MetricCommitTxns),
		commitBatches:  reg.Counter(MetricCommitBatches),
		commitLatency:  reg.Hist(MetricCommitLatency + suffix),
		flushLatency:   reg.Hist(MetricFlushLatency + suffix),
		batchOccupancy: reg.Hist(MetricBatchOccupancy),
		readPrimary:    reg.Counter(MetricReadPrimary),
		readReplica:    reg.Counter(MetricReadReplica),
		readFallback:   reg.Counter(MetricReadFallback),
		readRepaired:   reg.Counter(MetricReadRepaired),
		truncBytes:     reg.Counter(MetricWALTruncated),
	}
	for i := 0; i < cfg.Backups; i++ {
		o.backupLag = append(o.backupLag, reg.Gauge(backupLagName(i)))
	}
	return o
}

// backupLagName returns "repl.backup<i>.lag" without fmt (construction
// is cold, but keep it simple and allocation-bounded anyway).
func backupLagName(i int) string {
	if i < 10 {
		return MetricBackupLag + string(rune('0'+i)) + ".lag"
	}
	return MetricBackupLag + string(rune('0'+i/10)) + string(rune('0'+i%10)) + ".lag"
}

// emit traces a structured event at the group's current simulated
// instant. Nil-safe; allocation-free (kind must be a constant).
func (g *Group) emit(kind string, node int, a, b uint64) {
	if g.obs == nil {
		return
	}
	g.obs.reg.Emit(kind, int64(g.primary.Clock.Now()), node, a, b)
}

// observeFlush records one sealed batch: its occupancy, the flush's
// simulated cost, the batch's open→release commit latency, and each
// active-era backup's applied-sequence lag.
func (g *Group) observeFlush(batch int, opened, sealed, released int64) {
	o := g.obs
	o.commitTxns.Add(uint64(batch))
	o.commitBatches.Inc()
	o.batchOccupancy.Record(time.Duration(batch))
	o.flushLatency.Record(time.Duration(released - sealed))
	o.commitLatency.Record(time.Duration(released - opened))
	if g.redo != nil {
		committed := g.store.Committed()
		for i, b := range g.backups {
			if i >= len(o.backupLag) {
				break
			}
			o.backupLag[i].Set(int64(committed) - int64(b.appliedTxns))
		}
	}
}
