package replication

// SetBackupEpochForTest regresses backup i onto an arbitrary membership
// epoch — white-box access for the epoch-fencing tests, which need a
// replica that "missed" a membership change without rebuilding one.
func (g *Group) SetBackupEpochForTest(i, epoch int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i >= 0 && i < len(g.backups) {
		g.backups[i].epoch = epoch
	}
}
