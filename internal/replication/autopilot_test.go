package replication_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/detect"
	"repro/internal/mem"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/vista"
)

// apTiming is the deterministic detector timing used across these tests.
var apTiming = replication.AutopilotConfig{
	HeartbeatPeriod: 20 * sim.Microsecond,
	SuspectTimeout:  80 * sim.Microsecond,
}

func newAutopilotGroup(t *testing.T, mode replication.Mode, backups int, safety replication.Safety, ap replication.AutopilotConfig) *replication.Group {
	t.Helper()
	g, err := replication.NewGroup(replication.Config{
		Mode:      mode,
		Store:     vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Backups:   backups,
		Safety:    safety,
		Autopilot: ap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAutopilotOffByDefault(t *testing.T) {
	g := newGroup(t, replication.Active, 2, replication.OneSafe)
	if st := g.Autopilot(); st.Enabled {
		t.Fatal("autopilot enabled without configuration")
	}
	for i := 0; i < 50; i++ {
		commitSlot(t, g, i, 1)
	}
	g.Settle(g.QuiesceGrace())
	if ctl := g.NetBytes()[mem.CatControl]; ctl != 0 {
		t.Fatalf("control traffic with autopilot off: %d bytes", ctl)
	}
	if evs := g.AutopilotEvents(); evs != nil {
		t.Fatalf("events with autopilot off: %v", evs)
	}
}

func TestAutopilotValidation(t *testing.T) {
	if _, err := replication.NewGroup(replication.Config{
		Mode:      replication.Standalone,
		Store:     vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Autopilot: apTiming,
	}); !errors.Is(err, replication.ErrAutopilotNeedsPeers) {
		t.Fatalf("standalone autopilot: err = %v", err)
	}
	if _, err := replication.NewGroup(replication.Config{
		Mode:      replication.Passive,
		Store:     vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Autopilot: replication.AutopilotConfig{HeartbeatPeriod: -1},
	}); err == nil {
		t.Fatal("negative heartbeat period accepted")
	}
	if _, err := replication.NewGroup(replication.Config{
		Mode:  replication.Passive,
		Store: vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Autopilot: replication.AutopilotConfig{
			HeartbeatPeriod: apTiming.HeartbeatPeriod, Spares: -1,
		},
	}); err == nil {
		t.Fatal("negative spare count accepted")
	}
}

// TestHeartbeatTrafficAccounted: with the autopilot on, heartbeat rounds
// occupy the SAN under mem.CatControl; the commit-path categories are
// unaffected.
func TestHeartbeatTrafficAccounted(t *testing.T) {
	g := newAutopilotGroup(t, replication.Active, 2, replication.OneSafe, apTiming)
	for i := 0; i < 200; i++ {
		commitSlot(t, g, i, 1)
	}
	g.Settle(g.QuiesceGrace())
	ctl := g.NetBytes()[mem.CatControl]
	if ctl == 0 {
		t.Fatal("no control traffic despite enabled autopilot")
	}
	// Every watched peer is alive.
	st := g.Autopilot()
	if !st.Enabled || len(st.Peers) != 3 {
		t.Fatalf("status = %+v, want 3 watched peers", st)
	}
	for p, s := range st.Peers {
		if s != detect.Alive {
			t.Fatalf("peer %s state %v, want alive", p, s)
		}
	}
}

// TestSettleTerminatesWithAutopilot: Settle must stay a bounded quiesce
// with heartbeats flowing — control traffic bypasses the write buffers, so
// it cannot starve the drain loop or stretch QuiesceGrace.
func TestSettleTerminatesWithAutopilot(t *testing.T) {
	plain := newGroup(t, replication.Active, 2, replication.OneSafe)
	ap := newAutopilotGroup(t, replication.Active, 2, replication.OneSafe,
		replication.AutopilotConfig{HeartbeatPeriod: 1 * sim.Microsecond})
	if plain.QuiesceGrace() != ap.QuiesceGrace() {
		t.Fatalf("autopilot changed QuiesceGrace: %v vs %v", ap.QuiesceGrace(), plain.QuiesceGrace())
	}
	for i := 0; i < 10; i++ {
		commitSlot(t, ap, i, 1)
	}
	before := ap.Elapsed()
	for i := 0; i < 3; i++ {
		ap.Settle(ap.QuiesceGrace())
	}
	// Three quiesce periods advance roughly three graces — not a runaway.
	adv := sim.Dur(ap.Elapsed() - before)
	if adv > 5*ap.QuiesceGrace() {
		t.Fatalf("Settle advanced %v for 3 graces of %v", adv, ap.QuiesceGrace())
	}
	commitSlot(t, ap, 11, 2) // still serving
}

// TestGroupCommitBatchUnaffectedByControl: heartbeat traffic must not join
// (or seal) group-commit batches. With CommitBatch=8, commits are released
// in batches of exactly 8 acknowledgement waits whether or not heartbeats
// interleave — observable as an identical committed count and an identical
// batch flush pattern on the backup's applied counter.
func TestGroupCommitBatchUnaffectedByControl(t *testing.T) {
	run := func(ap replication.AutopilotConfig) (applied []uint64) {
		g, err := replication.NewGroup(replication.Config{
			Mode:        replication.Active,
			Store:       vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
			Backups:     1,
			CommitBatch: 8,
			Autopilot:   ap,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 24; i++ {
			commitSlot(t, g, i, byte(i+1))
			applied = append(applied, g.AppliedTxns(0))
		}
		return applied
	}
	plain := run(replication.AutopilotConfig{})
	withAP := run(apTiming)
	for i := range plain {
		if plain[i] != withAP[i] {
			t.Fatalf("batch flush pattern diverged at commit %d: %d vs %d (control traffic leaked into batching)",
				i, plain[i], withAP[i])
		}
	}
}

// TestBackupDeathDetectionLatency: a crashed backup is declared dead within
// SuspectTimeout + HeartbeatPeriod of the fault, and self-healing re-enrolls
// a spare without any manual Repair call.
func TestBackupDeathDetectionLatency(t *testing.T) {
	ap := apTiming
	ap.AutoRepair = true
	ap.Spares = 1
	g := newAutopilotGroup(t, replication.Active, 2, replication.OneSafe, ap)
	for i := 0; i < 50; i++ {
		commitSlot(t, g, i, 1)
	}
	if err := g.CrashBackup(1); err != nil {
		t.Fatal(err)
	}
	// Keep the cluster busy: commits pump detection and the repair
	// copier, Settle streams the transfer through the quiet periods.
	for i := 0; i < 400; i++ {
		commitSlot(t, g, i%1000, 2)
		g.Settle(2 * sim.Millisecond)
		if evs := g.AutopilotEvents(); len(evs) > 0 && evs[0].RestoredAt > 0 {
			break
		}
	}
	evs := g.AutopilotEvents()
	if len(evs) != 1 {
		t.Fatalf("events = %+v, want exactly one backup fault", evs)
	}
	ev := evs[0]
	if ev.Kind != "backup" {
		t.Fatalf("event kind %q", ev.Kind)
	}
	mttd := sim.Dur(ev.DetectedAt - ev.FailedAt)
	bound := ap.SuspectTimeout + ap.HeartbeatPeriod
	if mttd <= 0 || mttd > bound {
		t.Fatalf("MTTD %v outside (0, %v]", mttd, bound)
	}
	if ev.RestoredAt == 0 || ev.RestoredAt < ev.DetectedAt {
		t.Fatalf("restoration not recorded: %+v", ev)
	}
	if g.Backups() != 2 {
		t.Fatalf("group not healed: %d backups", g.Backups())
	}
	if st := g.Autopilot(); st.Spares != 0 {
		t.Fatalf("spare not consumed: %d left", st.Spares)
	}
}

// TestAutoFailoverUnattended: a primary crash mid-workload is detected and
// failed over by the next Begin — zero manual Failover/Repair calls — with
// detection latency bounded by SuspectTimeout + HeartbeatPeriod, and the
// spare pool heals the group back to its configured degree.
func TestAutoFailoverUnattended(t *testing.T) {
	ap := apTiming
	ap.AutoFailover = true
	ap.AutoRepair = true
	ap.Spares = 1
	g := newAutopilotGroup(t, replication.Active, 3, replication.QuorumSafe, ap)

	for i := 0; i < 100; i++ {
		commitSlot(t, g, i, 1)
	}
	preGen := g.Generation()
	preEpoch := g.Epoch()
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}

	// The very next Begin performs detection + takeover internally; the
	// Settles stream the healing transfer to completion.
	for i := 0; i < 400; i++ {
		commitSlot(t, g, i%1000, 2)
		g.Settle(2 * sim.Millisecond)
		if !g.RepairStatus().Active && g.Backups() == 3 && g.Generation() > preGen {
			break
		}
	}
	if g.Generation() != preGen+1 {
		t.Fatalf("generation %d, want %d", g.Generation(), preGen+1)
	}
	if g.Epoch() <= preEpoch {
		t.Fatalf("epoch not bumped: %d -> %d", preEpoch, g.Epoch())
	}
	if g.Backups() != 3 {
		t.Fatalf("group not healed to degree: %d backups", g.Backups())
	}

	evs := g.AutopilotEvents()
	var primary *replication.FailureEvent
	for i := range evs {
		if evs[i].Kind == "primary" {
			primary = &evs[i]
		}
	}
	if primary == nil {
		t.Fatalf("no primary event in %+v", evs)
	}
	mttd := sim.Dur(primary.DetectedAt - primary.FailedAt)
	bound := ap.SuspectTimeout + ap.HeartbeatPeriod
	if mttd <= 0 || mttd > bound {
		t.Fatalf("primary MTTD %v outside (0, %v]", mttd, bound)
	}
	if primary.FailedOverAt < primary.DetectedAt {
		t.Fatalf("failover precedes detection: %+v", primary)
	}
	if primary.RestoredAt == 0 {
		t.Fatalf("restoration not recorded: %+v", primary)
	}

	// Post-recovery commits replicate: settle and check a backup copy.
	commitSlot(t, g, 7, 9)
	g.Settle(g.QuiesceGrace())
	db := g.BackupNode(0).Space.ByName(vista.RegionDB)
	buf := make([]byte, 64)
	db.ReadRaw(7*64, buf)
	if !bytes.Equal(buf, bytes.Repeat([]byte{9}, 64)) {
		t.Fatal("post-failover commit not replicated")
	}
}

// TestDeposedPrimaryCannotCommit: a primary partitioned from the cluster
// keeps serving only while its lease holds; once the lease runs out, Begin
// refuses with ErrLeaseExpired — before any instant at which the surviving
// majority could have promoted a replacement. No split-brain.
func TestDeposedPrimaryCannotCommit(t *testing.T) {
	g := newAutopilotGroup(t, replication.Passive, 2, replication.OneSafe, apTiming)
	for i := 0; i < 50; i++ {
		commitSlot(t, g, i, 1)
	}
	if err := g.PartitionPrimary(); err != nil {
		t.Fatal(err)
	}
	leaseExpiry := g.Autopilot().LeaseExpiry

	// The deposed primary may serve inside its lease; once simulated time
	// passes the expiry, admission must be refused.
	var refused bool
	for i := 0; i < 10000; i++ {
		tx, err := g.Begin()
		if errors.Is(err, replication.ErrLeaseExpired) {
			refused = true
			break
		}
		if err != nil {
			t.Fatalf("unexpected Begin error: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if !refused {
		// Idle time also runs the lease out.
		g.Settle(sim.Dur(leaseExpiry) + g.QuiesceGrace())
		if _, err := g.Begin(); !errors.Is(err, replication.ErrLeaseExpired) {
			t.Fatalf("deposed primary still admits commits: %v", err)
		}
	}

	// The operator fences the deposed node and promotes manually; the new
	// era serves.
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Failover(); err != nil {
		t.Fatal(err)
	}
	commitSlot(t, g, 3, 5)
}

// TestDeposedPrimaryAutoPromotes: with AutoFailover on, the partition is
// resolved unattended — Begin deposes the dead-declared primary, promotes
// the most-caught-up survivor, and serves the caller's transaction from it.
func TestDeposedPrimaryAutoPromotes(t *testing.T) {
	ap := apTiming
	ap.AutoFailover = true
	g := newAutopilotGroup(t, replication.Passive, 2, replication.OneSafe, ap)
	for i := 0; i < 50; i++ {
		commitSlot(t, g, i, 1)
	}
	if err := g.PartitionPrimary(); err != nil {
		t.Fatal(err)
	}
	leaseExpiry := g.Autopilot().LeaseExpiry
	preGen := g.Generation()
	var promoted bool
	for i := 0; i < 10000 && !promoted; i++ {
		commitSlot(t, g, i%100, 2)
		promoted = g.Generation() > preGen
	}
	if !promoted {
		t.Fatal("partitioned primary never deposed")
	}
	evs := g.AutopilotEvents()
	if len(evs) == 0 || evs[len(evs)-1].Kind != "primary" {
		t.Fatalf("no primary event recorded: %+v", evs)
	}
	// No split-brain: the new primary was promoted no earlier than the
	// old one's dead declaration, which coincides with its lease expiry —
	// the deposed node had fenced itself before the new era's first
	// possible commit.
	ev := evs[len(evs)-1]
	if ev.DetectedAt < leaseExpiry {
		t.Fatalf("dead declaration %v precedes lease expiry %v (split-brain window)", ev.DetectedAt, leaseExpiry)
	}
	if ev.FailedOverAt < ev.DetectedAt {
		t.Fatalf("promotion %v precedes detection %v", ev.FailedOverAt, ev.DetectedAt)
	}
}

// TestEpochFencesStaleAcks: an InSync replica carrying an older membership
// epoch is excluded from acknowledgement — 2-safe refuses rather than count
// a vouch from a replica that missed a membership change.
func TestEpochFencesStaleAcks(t *testing.T) {
	g := newGroup(t, replication.Active, 2, replication.TwoSafe)
	commitSlot(t, g, 0, 1)

	// Force a membership change: crash backup 1 and re-enroll a fresh
	// replacement, bumping the epoch.
	if err := g.CrashBackup(1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Repair(); err != nil {
		t.Fatal(err)
	}
	commitSlot(t, g, 1, 2) // both members ack under the new epoch

	// White-box: regress one member onto the previous epoch.
	g.SetBackupEpochForTest(0, g.Epoch()-1)
	if _, err := g.Begin(); !errors.Is(err, replication.ErrSafetyUnavailable) {
		t.Fatalf("stale-epoch member still vouches: %v", err)
	}
	g.SetBackupEpochForTest(0, g.Epoch())
	commitSlot(t, g, 2, 3)
}

// TestAutoRepairReplacesPartitionedBackup: a partitioned replica that
// stays silent past the dead timeout is expelled and replaced from the
// spare pool — under 2-safe the cluster would otherwise refuse every
// commit forever with no way to heal unattended.
func TestAutoRepairReplacesPartitionedBackup(t *testing.T) {
	ap := apTiming
	ap.AutoRepair = true
	ap.Spares = 1
	g := newAutopilotGroup(t, replication.Active, 2, replication.TwoSafe, ap)
	for i := 0; i < 50; i++ {
		commitSlot(t, g, i, 1)
	}
	if err := g.PauseBackup(1); err != nil {
		t.Fatal(err)
	}
	// 2-safe refuses while the partitioned member is enrolled-but-silent.
	if _, err := g.Begin(); !errors.Is(err, replication.ErrSafetyUnavailable) {
		t.Fatalf("2-safe served with a partitioned member: %v", err)
	}
	// Idle time runs detection, expulsion, and the replacement transfer
	// (2-safe re-admits as soon as the silent member is expelled — the
	// joiner is not yet a member — and full redundancy follows at its
	// cut-over).
	healed, restored := false, false
	for i := 0; i < 400 && !restored; i++ {
		g.Settle(2 * sim.Millisecond)
		if tx, err := g.Begin(); err == nil {
			healed = true
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if evs := g.AutopilotEvents(); len(evs) > 0 && evs[0].RestoredAt > 0 {
			restored = true
		}
	}
	if !healed {
		t.Fatal("cluster never healed around the partitioned backup")
	}
	if st := g.Autopilot(); st.Spares != 0 {
		t.Fatalf("spare not consumed: %d left", st.Spares)
	}
	evs := g.AutopilotEvents()
	if len(evs) == 0 || evs[0].Kind != "backup" || evs[0].RestoredAt == 0 {
		t.Fatalf("partition event not recorded/restored: %+v", evs)
	}
}

// TestAutoRepairSparePoolBounds: the spare pool limits how many fresh
// nodes self-healing may enroll; once dry the group serves degraded.
func TestAutoRepairSparePoolBounds(t *testing.T) {
	ap := apTiming
	ap.AutoRepair = true
	ap.Spares = 1
	g := newAutopilotGroup(t, replication.Active, 2, replication.OneSafe, ap)
	for i := 0; i < 20; i++ {
		commitSlot(t, g, i, 1)
	}

	heal := func() {
		for i := 0; i < 400; i++ {
			commitSlot(t, g, i%1000, 2)
			g.Settle(2 * sim.Millisecond)
			if st := g.Autopilot(); st.Spares == 0 && !g.RepairStatus().Active {
				break
			}
		}
	}
	if err := g.CrashBackup(1); err != nil {
		t.Fatal(err)
	}
	heal()
	if g.Backups() != 2 {
		t.Fatalf("first fault not healed: %d backups", g.Backups())
	}
	if st := g.Autopilot(); st.Spares != 0 {
		t.Fatalf("spares = %d after one replacement", st.Spares)
	}

	// Second fault: pool is dry, the group stays degraded but serving.
	if err := g.CrashBackup(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		commitSlot(t, g, i%1000, 3)
		g.Settle(1 * sim.Millisecond)
	}
	if g.Backups() != 1 {
		t.Fatalf("degraded group has %d backups, want 1", g.Backups())
	}
}
